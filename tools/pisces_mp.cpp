// pisces_mp: launcher/supervisor for a process-per-host PiSCES deployment.
//
//   $ pisces_mp --config <deployment.conf> [--windows N]
//
// Reads the deployment config, spawns one pisces_hostd per host (restarting
// any that crash), and embeds the hypervisor/coordinator: it boots the
// cluster, uploads a demo file through the stock client, runs N proactive
// update windows (refresh + secure-reboot schedule is driven by crash
// announcements), and verifies a bit-exact download before shutting the
// fleet down. Exit status 0 means every step held.
//
// The hostd binary is named by the config's `hostd` key; when absent the
// launcher assumes it sits next to this binary.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.h"
#include "common/rng.h"
#include "field/primes.h"
#include "net/async_tcp.h"
#include "pisces/client.h"
#include "pisces/mp_config.h"
#include "pisces/mp_coordinator.h"
#include "pisces/mp_supervisor.h"

namespace {

using namespace pisces;

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  int windows = 1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--config") == 0) {
      config_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--windows") == 0) {
      windows = std::atoi(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (config_path.empty()) {
    std::fprintf(stderr, "usage: pisces_mp --config <file> [--windows N]\n");
    return 2;
  }
  SetLogLevel(LogLevel::kWarn);

  MpConfig cfg = MpConfig::Load(config_path);
  if (cfg.hostd.empty()) cfg.hostd = SelfDir() + "/pisces_hostd";

  MpSupervisor supervisor(cfg, config_path);
  supervisor.StartAll();
  std::printf("pisces_mp: %u hosts on 127.0.0.1:%u..%u, run dir %s\n", cfg.n,
              cfg.base_port, cfg.base_port + cfg.n + 1, cfg.run_dir.c_str());

  net::AsyncTcpOptions hopts;
  hopts.id = net::kHypervisorId;
  hopts.listen_port = cfg.HypervisorPort();
  hopts.seed = cfg.seed ^ 0x51;
  hopts.heartbeat_interval_ms = cfg.heartbeat_ms;
  net::AsyncTcpEndpoint hyper_ep(hopts);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    hyper_ep.AddPeer(i, cfg.HostPort(i));
  }
  hyper_ep.AddPeer(net::kClientId, cfg.ClientPort());

  MpCoordinator coord(cfg, hyper_ep);
  coord.SetTick([&supervisor] { supervisor.Poll(); });

  auto [client_cert, client_sk] = coord.IssueClient();
  if (!coord.BootAll()) {
    std::printf("FAILED: cluster bring-up\n");
    return 1;
  }
  std::printf("cluster booted (%u hosts)\n", cfg.n);

  // Stock client over its own endpoint.
  net::AsyncTcpOptions copts;
  copts.id = net::kClientId;
  copts.listen_port = cfg.ClientPort();
  copts.seed = cfg.seed ^ 0x52;
  copts.heartbeat_interval_ms = cfg.heartbeat_ms;
  net::AsyncTcpEndpoint client_ep(copts);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    client_ep.AddPeer(i, cfg.HostPort(i));
  }
  client_ep.AddPeer(net::kHypervisorId, cfg.HypervisorPort());

  ClientConfig cc;
  cc.params = cfg.ToParams();
  cc.ctx = std::make_shared<const field::FpCtx>(
      field::StandardPrimeBe(cfg.field_bits));
  cc.encrypt_links = cfg.encrypt;
  Client client(cc, client_ep, crypto::SchnorrGroup::Default(), coord.ca_pk(),
                client_cert, client_sk);
  for (const auto& [id, cert] : coord.directory()) {
    if (id != net::kClientId) client.InstallPeerCert(cert);
  }

  auto pump_client = [&](auto done, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    bool ok = done();
    while (!ok && std::chrono::steady_clock::now() < deadline) {
      auto msg = client_ep.ReceiveWait(50);
      if (msg) client.HandleMessage(*msg);
      supervisor.Poll();
      ok = done();
    }
    return ok;
  };

  Rng file_rng(cfg.seed + 55);
  const Bytes file = file_rng.RandomBytes(8 * 1024);
  const FileMeta meta = client.BeginUpload(1, file);
  if (!pump_client([&] { return client.UploadAcks(1) == cfg.n; }, 15000)) {
    std::printf("FAILED: upload not acknowledged by all hosts\n");
    return 1;
  }
  client.FinishUpload(1);
  coord.RegisterUpload(meta);
  std::printf("uploaded %zu bytes to %u hosts\n", file.size(), cfg.n);

  for (int w = 0; w < windows; ++w) {
    const MpWindowReport report = coord.RunWindow();
    std::printf("window %d: refresh %s (%u attempts), %u reboots, "
                "%u deadline expiries\n",
                w, report.refresh_ok ? "ok" : "FAILED",
                report.refresh_attempts, report.hosts_rebooted,
                report.deadline_expiries);
    if (!report.refresh_ok) return 1;
  }

  client.BeginDownload(pisces::ReadSpec::Classic(1));
  Bytes back;
  const bool got = pump_client(
      [&] {
        if (client.ResponsesFor(1) < cc.params.degree() + 1) {
          client.RetryDownload(pisces::ReadSpec::Classic(1));
          return false;
        }
        auto data = client.TryAssemble(1);
        if (!data) return false;
        back = *data;
        return true;
      },
      15000);
  std::printf("download: %s\n",
              (got && back == file) ? "bit-exact" : "FAILED");

  supervisor.StopAll();
  return (got && back == file) ? 0 : 1;
}
