// pisces_hostd: one storage host as an operating-system process.
//
//   $ pisces_hostd --config <deployment.conf> --id <host id>
//
// Listens on its configured loopback port, announces itself to the
// coordinator, and serves forever: boot material arrives over the wire
// (kBootHost), protocol traffic goes to the Host state machine, and the
// process dies only by signal -- a SIGKILL here is the crash the
// supervisor's restart path and the coordinator's secure-reboot path exist
// for (tests/mp_drill.cpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.h"
#include "pisces/host_process.h"

int main(int argc, char** argv) {
  std::string config_path;
  long id = -1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--config") == 0) {
      config_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--id") == 0) {
      id = std::atol(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (config_path.empty() || id < 0) {
    std::fprintf(stderr, "usage: pisces_hostd --config <file> --id <host>\n");
    return 2;
  }
  pisces::SetLogLevel(pisces::LogLevel::kWarn);
  return pisces::RunHostProcess(config_path,
                                static_cast<std::uint32_t>(id));
}
