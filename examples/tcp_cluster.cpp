// Distributed harness: the same Host state machines running over REAL TCP
// sockets on loopback, one thread per host, with a driver playing the
// hypervisor and the stock Client doing upload/download.
//
// Demonstrates that the protocol layer is transport-agnostic: everything the
// simulator runs (share upload, rerandomization, reboot + recovery,
// reconstruction) also runs over an actual network stack.
//
//   $ ./tcp_cluster [base_port]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/log.h"
#include "net/tcp_transport.h"
#include "pisces/pisces.h"

namespace {

using namespace pisces;

constexpr std::size_t kN = 7;

struct HostRunner {
  std::unique_ptr<net::TcpEndpoint> endpoint;
  std::unique_ptr<Host> host;
  std::thread thread;
  std::atomic<bool> running{false};

  void Start() {
    running.store(true);
    thread = std::thread([this] {
      while (running.load()) {
        auto msg = endpoint->ReceiveWait(50);
        if (msg) host->HandleMessage(*msg);
      }
    });
  }
  void Stop() {
    running.store(false);
    if (thread.joinable()) thread.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  const std::uint16_t base =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 47100;

  pss::Params params;
  params.n = kN;
  params.t = 1;
  params.l = 2;  // d = 3
  params.r = 1;
  params.field_bits = 256;
  params.Validate();
  auto ctx = std::make_shared<const field::FpCtx>(
      field::StandardPrimeBe(params.field_bits));

  const auto& group = crypto::SchnorrGroup::Default();
  Rng rng(1234);
  crypto::CertAuthority ca(group, rng);

  const std::uint16_t client_port = base + kN;
  const std::uint16_t hyper_port = base + kN + 1;

  std::printf("PiSCES over TCP: %zu hosts on 127.0.0.1:%u..%u\n", kN, base,
              base + kN + 1);

  // Bring up endpoints and the full peer mesh.
  std::vector<HostRunner> runners(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    runners[i].endpoint = std::make_unique<net::TcpEndpoint>(
        i, static_cast<std::uint16_t>(base + i));
  }
  net::TcpEndpoint client_ep(net::kClientId, client_port);
  net::TcpEndpoint hyper_ep(net::kHypervisorId, hyper_port);
  auto add_all_peers = [&](net::TcpEndpoint& ep) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      if (ep.id() != j) ep.AddPeer(j, static_cast<std::uint16_t>(base + j));
    }
    if (ep.id() != net::kClientId) ep.AddPeer(net::kClientId, client_port);
    if (ep.id() != net::kHypervisorId) {
      ep.AddPeer(net::kHypervisorId, hyper_port);
    }
  };
  for (auto& r : runners) add_all_peers(*r.endpoint);
  add_all_peers(client_ep);
  add_all_peers(hyper_ep);

  // Create hosts and boot them with CA-signed keys (the driver is the
  // hypervisor: it holds the CA and the cert directory).
  std::vector<std::uint32_t> peers;
  for (std::uint32_t i = 0; i < kN; ++i) peers.push_back(i);
  peers.push_back(net::kClientId);
  std::map<std::uint32_t, crypto::HostCert> directory;
  for (std::uint32_t i = 0; i < kN; ++i) {
    HostConfig hc;
    hc.id = i;
    hc.params = params;
    hc.ctx = ctx;
    hc.rng_seed = 7 + i;
    runners[i].host = std::make_unique<Host>(hc, *runners[i].endpoint, group,
                                             ca.public_key());
    auto [cert, sk] = ca.IssueHostKey(i, 1, rng);
    directory[i] = cert;
    runners[i].host->Boot(1, cert, std::move(sk), peers);
  }
  // Provision every host with the full directory (certs also flow over TCP
  // via the boot broadcasts; direct install avoids startup races).
  auto [client_cert, client_sk] = ca.IssueHostKey(net::kClientId, 0, rng);
  directory[net::kClientId] = client_cert;
  for (auto& r : runners) {
    for (const auto& [id, cert] : directory) {
      if (id != r.host->id()) r.host->InstallPeerCert(cert);
    }
  }
  for (auto& r : runners) r.Start();

  // The stock Client over the TCP endpoint.
  ClientConfig cc;
  cc.params = params;
  cc.ctx = ctx;
  Client client(cc, client_ep, group, ca.public_key(), client_cert,
                client_sk);
  for (const auto& [id, cert] : directory) {
    if (id != net::kClientId) client.InstallPeerCert(cert);
  }
  // done() may consume state on success (TryAssemble erases the pending
  // download), so remember the first true rather than re-evaluating.
  auto pump_client = [&](auto done, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    bool ok = done();
    while (!ok && std::chrono::steady_clock::now() < deadline) {
      auto msg = client_ep.ReceiveWait(50);
      if (msg) client.HandleMessage(*msg);
      ok = done();
    }
    return ok;
  };

  // 1. Upload.
  Rng file_rng(5);
  Bytes file = file_rng.RandomBytes(6 * 1024);
  client.BeginUpload(1, file);
  if (!pump_client([&] { return client.UploadAcks(1) == kN; }, 10000)) {
    std::printf("FAILED: upload not acknowledged by all hosts\n");
    return 1;
  }
  std::printf("uploaded %zu bytes to %zu hosts over TCP\n", file.size(), kN);

  // 2. Rerandomize (driver acts as hypervisor).
  for (std::uint32_t i = 0; i < kN; ++i) {
    net::Message m;
    m.from = net::kHypervisorId;
    m.to = i;
    m.type = net::MsgType::kStartRefresh;
    m.file_id = 1;
    m.epoch = 100;
    hyper_ep.Send(std::move(m));
  }
  std::size_t done_count = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (done_count < kN && std::chrono::steady_clock::now() < deadline) {
    auto msg = hyper_ep.ReceiveWait(100);
    if (msg && msg->type == net::MsgType::kPhaseDone && msg->row == 0) {
      if (msg->payload.empty() || msg->payload[0] != 1) {
        std::printf("FAILED: host %u reported refresh failure\n", msg->from);
        for (auto& r : runners) r.Stop();
        return 1;
      }
      ++done_count;
    }
  }
  std::printf("rerandomization complete on %zu/%zu hosts\n", done_count, kN);

  // 3. Reboot host 0 and recover its shares.
  FileMeta meta = runners[1].host->store().MetaOf(1);
  runners[0].Stop();
  runners[0].host->Shutdown();
  {
    auto [cert, sk] = ca.IssueHostKey(0, 2, rng);
    directory[0] = cert;
    runners[0].host->Boot(2, cert, std::move(sk), peers);
    for (const auto& [id, cert2] : directory) {
      if (id != 0) runners[0].host->InstallPeerCert(cert2);
    }
  }
  runners[0].Start();
  // Give the cert broadcast a moment to propagate before recovery traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (std::uint32_t i = 0; i < kN; ++i) {
    net::Message m;
    m.from = net::kHypervisorId;
    m.to = i;
    m.type = net::MsgType::kStartRecovery;
    m.file_id = 1;
    m.epoch = 101;
    ByteWriter w;
    w.Blob(meta.Serialize());
    w.U32(1);
    w.U32(0);  // target host 0
    m.payload = w.Take();
    hyper_ep.Send(std::move(m));
  }
  bool recovered = false;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    auto msg = hyper_ep.ReceiveWait(100);
    if (msg && msg->type == net::MsgType::kPhaseDone && msg->row == 1 &&
        msg->from == 0) {
      recovered = !msg->payload.empty() && msg->payload[0] == 1;
      break;
    }
  }
  std::printf("host 0 rebooted and recovered its shares: %s\n",
              recovered ? "yes" : "NO");

  // 4. Download and verify.
  client.BeginDownload(pisces::ReadSpec::Classic(1));
  Bytes back;
  bool got = pump_client(
      [&] {
        if (client.ResponsesFor(1) < params.degree() + 1) return false;
        auto data = client.TryAssemble(1);
        if (!data) return false;
        back = *data;
        return true;
      },
      10000);
  std::printf("download over TCP: %s\n",
              (got && back == file) ? "bit-exact" : "FAILED");

  for (auto& r : runners) r.Stop();
  return (recovered && got && back == file) ? 0 : 1;
}
