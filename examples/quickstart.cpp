// Quickstart: the smallest complete PiSCES deployment.
//
// Creates a single-cloud cluster of n = 13 share storage hosts, uploads a
// file, runs two proactive update windows (share rerandomization plus a
// complete reboot-and-recover schedule), and downloads the file back.
//
//   $ ./quickstart
#include <cstdio>

#include "pisces/pisces.h"

int main() {
  using namespace pisces;

  // Parameters (paper SectionIII-B): n hosts, t tolerated corruptions per
  // period, l secrets packed per polynomial, r hosts rebooted per batch,
  // g-bit prime field. 3t + l < n and r + l <= n - 3t must hold.
  ClusterConfig cfg;
  cfg.params.n = 13;
  cfg.params.t = 2;
  cfg.params.l = 3;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 2017;

  std::printf("Creating a single-cloud PiSCES cluster: n=%zu t=%zu l=%zu "
              "r=%zu g=%zu\n",
              cfg.params.n, cfg.params.t, cfg.params.l, cfg.params.r,
              cfg.params.field_bits);
  Cluster cluster(cfg);

  // Upload: the client splits the file into packed Shamir shares; no single
  // host (or any t of them) learns anything about the contents.
  Rng rng(42);
  Bytes document = rng.RandomBytes(20 * 1024);
  FileMeta meta = cluster.Upload(/*file_id=*/1, document);
  std::printf("Uploaded %llu bytes -> %llu field elements in %llu blocks "
              "(one share per block per host)\n",
              static_cast<unsigned long long>(meta.raw_size),
              static_cast<unsigned long long>(meta.num_elems),
              static_cast<unsigned long long>(meta.num_blocks));

  // Proactive update windows. Each window rerandomizes every share and
  // reboots every host (in batches of r) with share recovery, so shares
  // captured before the window are useless after it.
  for (int window = 0; window < 2; ++window) {
    WindowReport report = cluster.RunUpdateWindow();
    std::printf("Window %d: ok=%s reboots=%zu refreshed_files=%zu "
                "rerand=%.1f KB sent, recover=%.1f KB sent\n",
                window, report.ok ? "true" : "false", report.reboots,
                report.files_refreshed,
                report.rerandomize_total.bytes_sent / 1024.0,
                report.recover_total.bytes_sent / 1024.0);
    if (!report.ok) {
      for (const auto& f : report.failures) std::printf("  failure: %s\n", f.c_str());
      return 1;
    }
  }

  // Download: any d+1 = t+l+1 responsive hosts suffice.
  Bytes back = cluster.Download(pisces::ReadSpec::Classic(1));
  std::printf("Downloaded %zu bytes; matches upload: %s\n", back.size(),
              back == document ? "YES" : "NO");

  std::printf("Done. For measured time/cost sweeps on the paper's EC2 "
              "instance types, run the binaries in build/bench/.\n");
  return back == document ? 0 : 1;
}
