// Mobile adversary drill: watch proactive security work (and watch it fail
// when the assumptions are violated).
//
// Scenario A: an adversary corrupts t hosts every period, rotating across the
// fleet. Over enough periods it has touched every host -- classically fatal
// for plain secret sharing -- yet it can never reconstruct, because refresh
// rotates the shares between its visits.
//
// Scenario B: the same adversary corrupts more than the reconstruction
// threshold within ONE period, and the file falls.
//
//   $ ./mobile_adversary_drill
#include <cstdio>

#include "pisces/pisces.h"

int main() {
  using namespace pisces;

  ClusterConfig cfg;
  cfg.params.n = 10;
  cfg.params.t = 2;
  cfg.params.l = 2;  // d = 4: reconstruction needs 5 same-period shares
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 5;

  std::printf("PiSCES mobile-adversary drill: n=%zu t=%zu l=%zu "
              "(reconstruction threshold d+1=%zu)\n\n",
              cfg.params.n, cfg.params.t, cfg.params.l,
              cfg.params.degree() + 1);

  // --- Scenario A: rotating adversary, always within the threshold ---
  Cluster cluster(cfg);
  Rng rng(1);
  Bytes secret_file = rng.RandomBytes(4 * 1024);
  cluster.Upload(1, secret_file);

  Adversary adv(cluster);
  std::printf("Scenario A: corrupt t=2 hosts per period, rotating.\n");
  for (std::uint32_t period = 0; period < 5; ++period) {
    std::uint32_t h1 = (2 * period) % cfg.params.n;
    std::uint32_t h2 = (2 * period + 1) % cfg.params.n;
    adv.Corrupt(h1);
    adv.Corrupt(h2);
    std::printf("  period %u: corrupted hosts {%u, %u}; "
                "max same-period shares so far: %zu\n",
                period, h1, h2, adv.MaxSamePeriodShares(1));
    WindowReport report = cluster.RunUpdateWindow();
    if (!report.ok) {
      std::printf("  window failed!\n");
      return 1;
    }
    adv.ObserveWindow();  // reboots expel the adversary
  }
  std::printf("  adversary has touched all %zu hosts across periods.\n",
              cfg.params.n);
  auto stolen = adv.AttemptReconstruction(1);
  auto mixed = adv.AttemptMixedReconstruction(1);
  std::printf("  same-period reconstruction attempt: %s\n",
              stolen ? "SUCCEEDED (bug!)" : "failed (as designed)");
  std::printf("  mixed-period reconstruction attempt: %s\n",
              mixed ? "SUCCEEDED (bug!)" : "failed (as designed)");
  std::printf("  file still downloads for the legitimate user: %s\n\n",
              cluster.Download(pisces::ReadSpec::Classic(1)) == secret_file ? "yes" : "no");

  // --- Scenario B: threshold crossed within one period ---
  std::printf("Scenario B: corrupt d+1=%zu hosts in ONE period.\n",
              cfg.params.degree() + 1);
  Cluster cluster2(cfg);
  cluster2.Upload(1, secret_file);
  Adversary adv2(cluster2);
  for (std::uint32_t h = 0; h <= cfg.params.degree(); ++h) adv2.Corrupt(h);
  auto stolen2 = adv2.AttemptReconstruction(1);
  std::printf("  reconstruction attempt: %s\n",
              stolen2 ? "SUCCEEDED (threshold crossed -- expected)"
                      : "failed (unexpected!)");
  bool b_ok = stolen2.has_value() && *stolen2 == secret_file;

  bool a_ok = !stolen && !mixed;
  std::printf("\nDrill result: %s\n",
              (a_ok && b_ok) ? "proactive security held exactly at its "
                               "advertised threshold"
                             : "UNEXPECTED BEHAVIOUR");
  return (a_ok && b_ok) ? 0 : 1;
}
