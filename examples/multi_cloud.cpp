// Multi-cloud and hybrid deployments (paper SectionI, Figures 1-3).
//
// Shows how the same n shares are placed across one CSP, several CSPs, or a
// trusted local server plus CSPs -- and what each placement means for
// confidentiality: which provider coalitions can cross the corruption
// threshold.
//
//   $ ./multi_cloud
#include <cstdio>

#include "pisces/pisces.h"

namespace {

void Analyze(const pisces::Deployment& d, std::size_t t) {
  std::printf("  %s\n", d.Describe().c_str());
  std::printf("    min providers to exceed t=%zu: %zu\n", t,
              d.MinProvidersToBreach(t));
  std::vector<std::uint32_t> single{0};
  std::printf("    provider 0 alone breaches: %s\n",
              d.CoalitionBreaches(single, t) ? "yes" : "no");
}

}  // namespace

int main() {
  using namespace pisces;

  pss::Params params;
  params.n = 30;
  params.t = 7;
  params.l = 6;
  params.r = 3;
  params.field_bits = 256;

  std::printf("Share placement analysis for n=%zu, t=%zu:\n\n", params.n,
              params.t);

  std::printf("1) Single cloud (Figure 1): the prototyped configuration.\n");
  Analyze(Deployment::SingleCloud(params.n), params.t);
  std::printf("   -> one compromised provider exposes every share; security\n"
              "      rests entirely on the proactive refresh cycle.\n\n");

  std::printf("2) Multi-cloud across M=5 CSPs (Figure 2):\n");
  Analyze(Deployment::MultiCloud(params.n, 5), params.t);
  std::printf("   -> data survives the FULL compromise of any single CSP.\n\n");

  std::printf("3) Hybrid: trusted local server + 4 CSPs (Figure 3):\n");
  Analyze(Deployment::Hybrid(params.n, 4), params.t);
  std::printf("   -> the local server holds n/3 shares; remote CSPs alone\n"
              "      need more than half their shares compromised.\n\n");

  // Run a real cluster under the multi-cloud placement to show the protocol
  // is placement-agnostic (placement affects trust math, not correctness).
  ClusterConfig cfg;
  cfg.params = params;
  cfg.deployment = Deployment::MultiCloud(params.n, 5);
  cfg.seed = 99;
  Cluster cluster(cfg);
  Rng rng(7);
  Bytes archive = rng.RandomBytes(8 * 1024);
  cluster.Upload(1, archive);
  WindowReport report = cluster.RunUpdateWindow();
  Bytes back = cluster.Download(pisces::ReadSpec::Classic(1));
  std::printf("Multi-cloud cluster: window ok=%s, download intact=%s\n",
              report.ok ? "true" : "false",
              back == archive ? "true" : "false");
  return (report.ok && back == archive) ? 0 : 1;
}
