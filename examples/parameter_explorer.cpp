// Parameter explorer: run one PiSCES experiment for parameters given on the
// command line and print the full measurement report. This is the
// single-point version of the paper's benchmarking driver -- useful for
// finding deployment-specific optima the way SectionVIII describes.
//
//   $ ./parameter_explorer n t l r g file_bytes [instance]
//   $ ./parameter_explorer 21 4 6 3 1024 102400 Medium
#include <cstdio>
#include <cstdlib>

#include "pisces/pisces.h"

int main(int argc, char** argv) {
  using namespace pisces;
  if (argc < 7) {
    std::fprintf(stderr,
                 "usage: %s n t l r g file_bytes [Small|Medium|Large]\n"
                 "constraints: 3t + l < n, r + l <= n - 3t, "
                 "g in {256,512,1024,2048}\n",
                 argv[0]);
    return 2;
  }
  ExperimentConfig cfg;
  cfg.params.n = std::strtoul(argv[1], nullptr, 10);
  cfg.params.t = std::strtoul(argv[2], nullptr, 10);
  cfg.params.l = std::strtoul(argv[3], nullptr, 10);
  cfg.params.r = std::strtoul(argv[4], nullptr, 10);
  cfg.params.field_bits = std::strtoul(argv[5], nullptr, 10);
  cfg.file_bytes = std::strtoul(argv[6], nullptr, 10);
  if (argc > 7) cfg.instance = InstanceFromName(argv[7]);

  try {
    cfg.params.Validate();
  } catch (const Error& e) {
    std::fprintf(stderr, "invalid parameters: %s\n", e.what());
    return 2;
  }

  std::printf("Running one full update window: n=%zu t=%zu l=%zu r=%zu "
              "g=%zu file=%zu B on %s instances...\n",
              cfg.params.n, cfg.params.t, cfg.params.l, cfg.params.r,
              cfg.params.field_bits, cfg.file_bytes,
              SpecOf(cfg.instance).name);
  ExperimentResult r = RunRefreshExperiment(cfg);

  std::printf("\n-- integrity --\n");
  std::printf("file survived refresh + full reboot schedule: %s\n",
              r.ok ? "yes" : "NO");
  std::printf("blocks: %zu (packing %zu secrets/polynomial)\n", r.file_blocks,
              cfg.params.l);

  std::printf("\n-- measured on this machine --\n");
  std::printf("rerandomization: %.3f s CPU, %.2f MB, %llu msgs\n",
              r.cpu_rerand_s, r.bytes_rerand / 1e6,
              static_cast<unsigned long long>(r.msgs_rerand));
  std::printf("recovery:        %.3f s CPU, %.2f MB, %llu msgs\n",
              r.cpu_recover_s, r.bytes_recover / 1e6,
              static_cast<unsigned long long>(r.msgs_recover));

  std::printf("\n-- modeled on %s (per server averages) --\n",
              SpecOf(cfg.instance).name);
  std::printf("computing: rerand %.4f s, recovery %.4f s\n",
              r.compute_rerand_s, r.compute_recover_s);
  std::printf("sending:   rerand %.4f s, recovery %.4f s\n", r.send_rerand_s,
              r.send_recover_s);
  std::printf("update window: %.4f s (%.3e s/byte)\n", r.window_time_s,
              r.WindowTimePerByte());
  std::printf("cost: $%.6f dedicated, $%.6f spot (%.4f cents/KB)\n",
              r.cost_dedicated, r.cost_spot,
              r.cost_dedicated * 100.0 / (cfg.file_bytes / 1024.0));
  return r.ok ? 0 : 1;
}
