// Figure 11: fraction of uptime spent refreshing for varying window size w
// (the time between share refreshes), several (n, t) configurations.
//
// Expected shape (paper): even with t near its maximum, PiSCES spends under
// 1% of its uptime actively refreshing for daily windows; the fraction is
// inversely proportional to w.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 11",
                "Fraction of uptime spent refreshing vs window size w");

  struct Series {
    std::size_t n, t;
  };
  std::vector<Series> series = bench::PaperScale()
                                   ? std::vector<Series>{{21, 4}, {21, 6},
                                                         {29, 7}, {37, 9}}
                                   : std::vector<Series>{{21, 4}, {37, 9}};
  const double hours[] = {6, 12, 24, 48, 96};

  Recorder rec({"series", "window_h", "window_work_s", "fraction"});
  std::printf("%-10s %10s %16s %12s\n", "series", "window(h)", "work(s)",
              "fraction");
  for (const Series& s : series) {
    std::size_t l = bench::MaxPacking(s.n, s.t, 3);
    ExperimentConfig cfg =
        bench::MakeConfig(s.n, s.t, l, 3, 1024, bench::FileBytes(s.n));
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::string name = "n" + std::to_string(s.n) + "_t" + std::to_string(s.t);
    for (double h : hours) {
      double fraction = res.window_time_s / (h * 3600.0);
      std::printf("%-10s %10.0f %16.3f %12.3e\n", name.c_str(), h,
                  res.window_time_s, fraction);
      rec.NewRow()
          .Set("series", name)
          .Set("window_h", h)
          .Set("window_work_s", res.window_time_s)
          .Set("fraction", fraction)
          .Commit();
    }
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: fraction < 1%% for daily (24h) windows in every "
      "configuration;\nfraction scales as 1/w.\n");
  return 0;
}
