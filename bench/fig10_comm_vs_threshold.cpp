// Figure 10: total communication overhead vs corruption threshold t, one
// series per deployment configuration (n in {21, 29, 37}).
//
// Expected shape: communication rises with t (the packing parameter is
// squeezed), sharply near the threshold.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 10",
                "Total communication overhead vs corruption threshold t");

  std::vector<std::size_t> ns{21, 29, 37};
  const std::size_t r = 1;

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-6s %3s %3s %14s %14s %16s\n", "series", "t", "l",
              "rerand(MB)", "recover(MB)", "bytes/file-byte");
  for (std::size_t n : ns) {
    const std::size_t t_max = (n - 2) / 3;  // 3t + l < n with l >= 1
    std::size_t step = bench::PaperScale() ? 1 : 2;
    for (std::size_t t = 2; t <= t_max; t += step) {
      std::size_t l = bench::MaxPacking(n, t, r);
      ExperimentConfig cfg =
          bench::MakeConfig(n, t, l, r, 1024, bench::FileBytes(n));
      ExperimentResult res = RunRefreshExperiment(cfg);
      std::string name = "n" + std::to_string(n);
      std::printf("%-6s %3zu %3zu %14.2f %14.2f %16.1f\n", name.c_str(), t, l,
                  res.bytes_rerand / 1e6, res.bytes_recover / 1e6,
                  res.TotalBytes() / static_cast<double>(res.file_bytes));
      RecordExperiment(rec, name, res);
    }
  }
  bench::Finish(rec, opts);
  std::printf("\nShape check: overhead rises with t for every n series.\n");
  return 0;
}
