// Figure 8: time to refresh (s/byte) as the packing parameter l increases,
// for configurations (n,t) in {(21,4),(21,5),(29,6),(29,7),(37,8),(37,9)}.
//
// Expected shape: l = 1 is catastrophically slow (no amortization); cost
// falls steeply with l, then flattens -- and increasing l is NOT monotonically
// beneficial: past an interior optimum the curve turns back up (paper's
// "interesting" observation, Figures 8/9).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 8", "Time to refresh (s/byte) vs packing parameter l");

  struct Series {
    std::size_t n, t;
  };
  std::vector<Series> series =
      bench::PaperScale()
          ? std::vector<Series>{{21, 4}, {21, 5}, {29, 6}, {29, 7}, {37, 8}, {37, 9}}
          : std::vector<Series>{{21, 4}, {21, 5}, {37, 9}};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-10s %3s %16s (s/byte)\n", "series", "l", "window/byte");
  for (const Series& s : series) {
    const std::size_t r = 1;
    const std::size_t l_max = bench::MaxPacking(s.n, s.t, r);
    for (std::size_t l = 1; l <= l_max; l += (bench::PaperScale() ? 1 : 2)) {
      ExperimentConfig cfg =
          bench::MakeConfig(s.n, s.t, l, r, 1024, bench::FileBytes(s.n));
      ExperimentResult res = RunRefreshExperiment(cfg);
      std::string name =
          "n" + std::to_string(s.n) + "_t" + std::to_string(s.t);
      std::printf("%-10s %3zu %16.3e\n", name.c_str(), l,
                  res.WindowTimePerByte());
      RecordExperiment(rec, name, res);
    }
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: steep drop from l=1, then flattening; interior minimum"
      "\n(per-byte time rises again at the largest l values).\n");
  return 0;
}
