// Figure 9: total communication overhead vs packing parameter l, for the
// same deployment configurations as Figure 8.
//
// Expected shape: mirrors Figure 8 -- large at l = 1, falling with l, with an
// interior minimum per configuration (increasing l is "not a strictly
// beneficial thing to do").
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 9",
                "Total communication overhead vs packing parameter l");

  struct Series {
    std::size_t n, t;
  };
  std::vector<Series> series =
      bench::PaperScale()
          ? std::vector<Series>{{21, 4}, {21, 5}, {29, 6}, {29, 7}, {37, 8}, {37, 9}}
          : std::vector<Series>{{21, 4}, {29, 7}, {37, 9}};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-10s %3s %14s %14s %16s\n", "series", "l", "rerand(MB)",
              "recover(MB)", "bytes/file-byte");
  for (const Series& s : series) {
    const std::size_t r = 1;
    const std::size_t l_max = bench::MaxPacking(s.n, s.t, r);
    for (std::size_t l = 1; l <= l_max; l += (bench::PaperScale() ? 1 : 2)) {
      ExperimentConfig cfg =
          bench::MakeConfig(s.n, s.t, l, r, 1024, bench::FileBytes(s.n));
      ExperimentResult res = RunRefreshExperiment(cfg);
      std::string name =
          "n" + std::to_string(s.n) + "_t" + std::to_string(s.t);
      std::printf("%-10s %3zu %14.2f %14.2f %16.1f\n", name.c_str(), l,
                  res.bytes_rerand / 1e6, res.bytes_recover / 1e6,
                  res.TotalBytes() / static_cast<double>(res.file_bytes));
      RecordExperiment(rec, name, res);
    }
  }
  bench::Finish(rec, opts);
  std::printf("\nShape check: minimum at an interior l per configuration.\n");
  return 0;
}
