// Ablation A2: restart batch size r and worker pool size b.
//
// r batches reboots together (paper SectionVI-D: "both schemes can be
// expedited by batching reboots"); b is the per-host process pool (Fig 5).
// Also compares the round-robin complete schedule against the randomized one.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Ablation A2", "Restart batch r, worker pool b, schedule");

  Recorder rec = MakeExperimentRecorder();
  const std::size_t n = 21, t = 4, g = 1024;

  std::printf("-- restart batch size r (n=21, t=4) --\n");
  std::printf("%3s %3s %14s %14s\n", "r", "l", "window_s", "recover(MB)");
  for (std::size_t r : {1u, 2u, 3u, 4u}) {
    std::size_t l = bench::MaxPacking(n, t, r);
    ExperimentConfig cfg = bench::MakeConfig(n, t, l, r, g, bench::FileBytes(n));
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::printf("%3zu %3zu %14.4f %14.2f\n", r, l, res.window_time_s,
                res.bytes_recover / 1e6);
    RecordExperiment(rec, "r" + std::to_string(r), res);
  }

  std::printf("\n-- worker pool b (n=21, t=4, r=3; modeled on 2-vCPU Medium) --\n");
  std::printf("%3s %14s %18s\n", "b", "cpu_total_s", "modeled window_s");
  for (std::size_t b : {1u, 2u, 4u}) {
    ExperimentConfig cfg = bench::MakeConfig(n, t, 6, 3, g, bench::FileBytes(n));
    cfg.params.b = b;
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::printf("%3zu %14.3f %18.4f\n", b, res.cpu_rerand_s + res.cpu_recover_s,
                res.window_time_s);
    RecordExperiment(rec, "b" + std::to_string(b), res);
  }

  std::printf("\n-- schedule type (n=21, t=4, r=3) --\n");
  for (const char* sched : {"round-robin", "randomized"}) {
    ExperimentConfig cfg = bench::MakeConfig(n, t, 6, 3, g, bench::FileBytes(n));
    cfg.schedule = sched;
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::printf("%-12s window_s=%.4f ok=%d\n", sched, res.window_time_s,
                res.ok);
    RecordExperiment(rec, sched, res);
  }

  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: window time falls as r grows (fewer recovery phases);"
      "\nb=2 halves modeled compute on the 2-vCPU instance, b=4 adds "
      "nothing.\n");
  return 0;
}
