// Ablation A4: link encryption on/off.
//
// The paper's deployment carries protocol traffic over TLS; our channels are
// ChaCha20+HMAC under hypervisor-signed per-epoch keys. This sweep measures
// what the channel layer adds on top of the bare PSS protocol (compute from
// sealing/opening, bytes from framing) for a full update window.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Ablation A4", "Channel encryption overhead");

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-10s %14s %14s %16s\n", "links", "cpu_total_s", "window_s",
              "bytes_total(MB)");
  for (bool encrypted : {false, true}) {
    ExperimentConfig cfg = bench::MakeConfig(13, 2, 3, 2, 1024, 32 * 1024);
    cfg.encrypt_links = encrypted;
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::printf("%-10s %14.3f %14.4f %16.2f\n",
                encrypted ? "sealed" : "plain",
                res.cpu_rerand_s + res.cpu_recover_s, res.window_time_s,
                res.TotalBytes() / 1e6);
    RecordExperiment(rec, encrypted ? "sealed" : "plain", res);
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: sealing adds a few percent of bytes (framing + tags)"
      "\nand a modest CPU overhead -- the PSS protocol dominates.\n");
  return 0;
}
