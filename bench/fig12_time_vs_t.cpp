// Figure 12: total time to refresh for varying number of tolerated
// corruptions t, one series per n in {21, 29, 37}.
//
// Expected shape (paper SectionVII-B): at a FIXED t, larger n is FASTER --
// the total number of servers has little direct cost while more parties mean
// more packing and better amortization.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 12",
                "Total time to refresh vs tolerated corruptions t");
  if (opts.threads > 0) std::printf("threads: %zu\n", opts.threads);

  std::vector<std::size_t> ns{21, 29, 37};
  // r = 3 keeps the reboot schedule affordable; the series compare n at
  // fixed t, which is unaffected.
  const std::size_t r = 3;
  // The n-amortization the paper reports (larger n cheaper at fixed t) only
  // materializes when the block count is well above the usable-row count of
  // the hyperinvertible batch; tiny files bottom out at one group per batch
  // and fixed costs dominate, so this figure uses a larger file.
  const std::size_t file_bytes =
      bench::PaperScale() ? 512 * 1024 : 192 * 1024;
  std::vector<std::size_t> ts =
      bench::PaperScale() ? std::vector<std::size_t>{2, 3, 4, 5, 6}
                          : std::vector<std::size_t>{2, 4, 6};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-6s %3s %3s %16s %16s\n", "series", "t", "l", "window_s",
              "window_s/byte");
  for (std::size_t n : ns) {
    for (std::size_t t : ts) {
      // Shrink the reboot batch near the threshold so l stays >= 1.
      std::size_t r_eff = std::min(r, n - 3 * t - 1);
      std::size_t l = bench::MaxPacking(n, t, r_eff);
      ExperimentConfig cfg =
          bench::MakeConfig(n, t, l, r_eff, 1024, file_bytes);
      cfg.threads = opts.threads;
      ExperimentResult res = RunRefreshExperiment(cfg);
      std::string name = "n" + std::to_string(n);
      std::printf("%-6s %3zu %3zu %16.4f %16.3e\n", name.c_str(), t, l,
                  res.window_time_s, res.WindowTimePerByte());
      RecordExperiment(rec, name, res);
    }
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: for each fixed t, the n=37 series sits below n=29 below"
      "\nn=21 (more servers -> faster refresh at constant threat level).\n");
  return 0;
}
