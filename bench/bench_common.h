// Shared helpers for the figure benches.
//
// Every bench runs the REAL protocol (field arithmetic, VSS, messages,
// channel crypto) on the deterministic cluster for a sweep of parameter
// points, then prints the paper's series as an aligned table plus a CSV dump.
//
// Scale: the default ("quick") uses a reduced file size so that running every
// bench binary finishes in minutes on a laptop; PISCES_BENCH_SCALE=paper uses
// the paper's 100 KB files (and wider sweeps where noted). Shapes are the
// same at both scales -- per-byte metrics are reported throughout.
//
// Every bench main starts with `bench::Options opts = bench::Parse(argc,
// argv);` -- the one place command-line handling lives:
//   --threads N   size the global task pool (wall time only; results are
//                 identical at any setting, see docs/parallelism.md)
//   --seed S      override the experiment seed MakeConfig derives
//   --out PATH    also write the CSV dump to PATH
//   --trace PATH  record a protocol trace; Finish() writes Chrome-trace JSON
//                 to PATH and prints the per-window flame summary
// Each flag falls back to its environment variable (PISCES_THREADS,
// PISCES_SEED, PISCES_OUT, PISCES_TRACE). Unrecognized arguments are kept in
// opts.rest for binaries that forward to another parser (google-benchmark).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/task_pool.h"
#include "obs/trace.h"
#include "pisces/pisces.h"

namespace pisces::bench {

namespace detail {
// --seed override consumed by MakeConfig (0 = use the derived default).
inline std::uint64_t g_seed_override = 0;
}  // namespace detail

struct Options {
  std::size_t threads = 0;   // 0 = leave pool/params.b at their defaults
  std::uint64_t seed = 0;    // 0 = per-bench derived seed
  std::string out;           // "" = CSV to stdout only
  std::string trace;         // "" = tracing disabled
  std::vector<char*> rest;   // argv[0] + args not consumed here
};

// Parses the shared flags (with environment fallbacks), applies the side
// effects every bench wants -- pool sizing, seed override, trace collection --
// and returns the result. Call once, first thing in main().
inline Options Parse(int argc, char** argv) {
  Options opts;
  if (argc > 0) opts.rest.push_back(argv[0]);
  auto value_of = [&](const std::string& arg, const char* flag, int& i,
                      std::string& out_val) {
    const std::string prefix = std::string(flag) + "=";
    if (arg == flag && i + 1 < argc) {
      out_val = argv[++i];
      return true;
    }
    if (arg.rfind(prefix, 0) == 0) {
      out_val = arg.substr(prefix.size());
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (value_of(a, "--threads", i, v)) {
      opts.threads = static_cast<std::size_t>(
          std::strtoull(v.c_str(), nullptr, 10));
    } else if (value_of(a, "--seed", i, v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (value_of(a, "--out", i, v)) {
      opts.out = v;
    } else if (value_of(a, "--trace", i, v)) {
      opts.trace = v;
    } else {
      opts.rest.push_back(argv[i]);
    }
  }
  auto env_or = [](const char* name, const std::string& cur) {
    if (!cur.empty()) return cur;
    const char* e = std::getenv(name);
    return e != nullptr ? std::string(e) : std::string();
  };
  if (opts.threads == 0) {
    const std::string e = env_or("PISCES_THREADS", "");
    if (!e.empty()) {
      opts.threads = static_cast<std::size_t>(
          std::strtoull(e.c_str(), nullptr, 10));
    }
  }
  if (opts.seed == 0) {
    const std::string e = env_or("PISCES_SEED", "");
    if (!e.empty()) opts.seed = std::strtoull(e.c_str(), nullptr, 10);
  }
  opts.out = env_or("PISCES_OUT", opts.out);
  opts.trace = env_or("PISCES_TRACE", opts.trace);

  if (opts.threads > 0) SetGlobalPoolThreads(opts.threads);
  detail::g_seed_override = opts.seed;
  if (!opts.trace.empty()) obs::EnableTracing(opts.trace);
  return opts;
}

inline bool PaperScale() {
  const char* s = std::getenv("PISCES_BENCH_SCALE");
  return s != nullptr && std::string(s) == "paper";
}

// Default synthetic file size for a given party count (larger n costs more
// per experiment, so quick mode shrinks the file further).
inline std::size_t FileBytes(std::size_t n) {
  if (PaperScale()) return 100 * 1024;
  return n >= 29 ? 12 * 1024 : 16 * 1024;
}

// Maximum packing parameter for (n, t) with r reboots per batch:
// l <= n - 3t - r by the (non-strict) paper constraint.
inline std::size_t MaxPacking(std::size_t n, std::size_t t, std::size_t r) {
  return n - 3 * t - r;
}

inline ExperimentConfig MakeConfig(std::size_t n, std::size_t t, std::size_t l,
                                   std::size_t r, std::size_t g,
                                   std::size_t file_bytes) {
  ExperimentConfig cfg;
  cfg.params.n = n;
  cfg.params.t = t;
  cfg.params.l = l;
  cfg.params.r = r;
  cfg.params.field_bits = g;
  cfg.file_bytes = file_bytes;
  cfg.seed = detail::g_seed_override != 0 ? detail::g_seed_override
                                          : 0xBE7C4 + n * 131 + t * 17 + l * 3 + r;
  // The paper's own measurement isolates the PSS protocol; channel crypto is
  // modeled by TLS in their deployment and metered separately here, so the
  // figure benches run with plaintext links (tests cover encryption).
  cfg.encrypt_links = false;
  return cfg;
}

inline void Banner(const char* artifact, const char* title) {
  std::printf("============================================================\n");
  std::printf("PiSCES reproduction -- %s\n%s\n", artifact, title);
  std::printf("scale: %s (set PISCES_BENCH_SCALE=paper for paper scale)\n",
              PaperScale() ? "paper" : "quick");
  std::printf("============================================================\n");
}

// Dumps the series CSV and finalizes the shared outputs: writes the CSV to
// --out when given, and when tracing is on writes the Chrome-trace JSON to
// the --trace path and prints the per-window flame summary.
inline void Finish(const Recorder& rec, const Options& opts) {
  std::printf("\n--- CSV ---\n%s", rec.ToCsv().c_str());
  if (!opts.out.empty()) {
    rec.WriteFile(opts.out);
    std::printf("csv written to %s\n", opts.out.c_str());
  }
  if (obs::TraceEnabled()) {
    obs::WriteTrace();
    std::printf("\n%s", obs::FlameSummary().c_str());
    std::printf("trace written to %s (chrome://tracing, ui.perfetto.dev)\n",
                opts.trace.c_str());
  }
}

}  // namespace pisces::bench
