// Shared helpers for the figure benches.
//
// Every bench runs the REAL protocol (field arithmetic, VSS, messages,
// channel crypto) on the deterministic cluster for a sweep of parameter
// points, then prints the paper's series as an aligned table plus a CSV dump.
//
// Scale: the default ("quick") uses a reduced file size so that running every
// bench binary finishes in minutes on a laptop; PISCES_BENCH_SCALE=paper uses
// the paper's 100 KB files (and wider sweeps where noted). Shapes are the
// same at both scales -- per-byte metrics are reported throughout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pisces/pisces.h"

namespace pisces::bench {

// Parses `--threads N` (or `--threads=N`) from argv, falling back to the
// PISCES_THREADS environment variable. Returns 0 when unset, which leaves the
// global task pool and params.b at their defaults. Thread count changes wall
// time only -- every computed value (shares, transcripts, byte counts) is
// identical at any setting (see docs/parallelism.md).
inline std::size_t ThreadsArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
    if (a.rfind("--threads=", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(a.c_str() + 10, nullptr, 10));
    }
  }
  const char* env = std::getenv("PISCES_THREADS");
  if (env != nullptr) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 0;
}

inline bool PaperScale() {
  const char* s = std::getenv("PISCES_BENCH_SCALE");
  return s != nullptr && std::string(s) == "paper";
}

// Default synthetic file size for a given party count (larger n costs more
// per experiment, so quick mode shrinks the file further).
inline std::size_t FileBytes(std::size_t n) {
  if (PaperScale()) return 100 * 1024;
  return n >= 29 ? 12 * 1024 : 16 * 1024;
}

// Maximum packing parameter for (n, t) with r reboots per batch:
// l <= n - 3t - r by the (non-strict) paper constraint.
inline std::size_t MaxPacking(std::size_t n, std::size_t t, std::size_t r) {
  return n - 3 * t - r;
}

inline ExperimentConfig MakeConfig(std::size_t n, std::size_t t, std::size_t l,
                                   std::size_t r, std::size_t g,
                                   std::size_t file_bytes) {
  ExperimentConfig cfg;
  cfg.params.n = n;
  cfg.params.t = t;
  cfg.params.l = l;
  cfg.params.r = r;
  cfg.params.field_bits = g;
  cfg.file_bytes = file_bytes;
  cfg.seed = 0xBE7C4 + n * 131 + t * 17 + l * 3 + r;
  // The paper's own measurement isolates the PSS protocol; channel crypto is
  // modeled by TLS in their deployment and metered separately here, so the
  // figure benches run with plaintext links (tests cover encryption).
  cfg.encrypt_links = false;
  return cfg;
}

inline void Banner(const char* artifact, const char* title) {
  std::printf("============================================================\n");
  std::printf("PiSCES reproduction -- %s\n%s\n", artifact, title);
  std::printf("scale: %s (set PISCES_BENCH_SCALE=paper for paper scale)\n",
              PaperScale() ? "paper" : "quick");
  std::printf("============================================================\n");
}

inline void DumpCsv(const Recorder& rec) {
  std::printf("\n--- CSV ---\n%s", rec.ToCsv().c_str());
}

}  // namespace pisces::bench
