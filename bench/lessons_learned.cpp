// SectionVIII "Lessons Learned" point measurements:
//  * the paper's best parameter selection for n = 21 (t=4, l=6, r=3, g=1024)
//    against its immediate neighborhood;
//  * storage cost per kilobyte per refresh for a 10 KB file (the paper
//    reports ~0.08 cents/KB on 2016 EC2 -- absolute dollars depend on the
//    machine calibration, the neighborhood ordering is the check).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("SectionVIII", "Lessons learned: best-parameter neighborhood");

  struct Point {
    const char* name;
    std::size_t t, l, r, g;
  };
  const Point points[] = {
      {"paper-best (t=4,l=6,r=3,g=1024)", 4, 6, 3, 1024},
      {"less packing (l=5)", 4, 5, 3, 1024},
      {"more packing (l=7, r=2)", 4, 7, 2, 1024},
      {"single reboot (r=1)", 4, 6, 1, 1024},
      {"higher threshold (t=5,l=4)", 5, 4, 2, 1024},
      {"smaller field (g=512)", 4, 6, 3, 512},
      {"larger field (g=2048)", 4, 6, 3, 2048},
  };

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-34s %12s %16s %18s\n", "point", "window_s", "cost_usd",
              "cents/KB/refresh");
  const std::size_t kFile = 10 * 1024;  // the paper's 10 KB quote
  for (const Point& p : points) {
    ExperimentConfig cfg = bench::MakeConfig(21, p.t, p.l, p.r, p.g, kFile);
    ExperimentResult res = RunRefreshExperiment(cfg);
    double cents_per_kb = res.cost_dedicated * 100.0 / (kFile / 1024.0);
    std::printf("%-34s %12.4f %16.6f %18.4f\n", p.name, res.window_time_s,
                res.cost_dedicated, cents_per_kb);
    RecordExperiment(rec, p.name, res);
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: the paper-best point should be at or near the cheapest"
      "\nrow; g=2048 and l-off-optimum rows should be worse.\n");
  return 0;
}
