# CI smoke for --trace: runs one real-protocol bench with tracing on and
# validates that the emitted file is well-formed Chrome-trace JSON with at
# least one event. Invoked by the `trace_smoke` ctest as
#   cmake -DBENCH=<bench-binary> -DTRACE=<output-path> -P trace_smoke.cmake
execute_process(COMMAND "${BENCH}" --trace "${TRACE}"
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${rc}")
endif()
if(NOT EXISTS "${TRACE}")
  message(FATAL_ERROR "no trace written to ${TRACE}")
endif()
file(READ "${TRACE}" content)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # string(JSON) fatals on malformed JSON, which is exactly what we want.
  string(JSON n LENGTH "${content}" traceEvents)
  if(n LESS 1)
    message(FATAL_ERROR "trace has no events")
  endif()
else()
  string(FIND "${content}" "\"traceEvents\":[" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "not a chrome trace: ${TRACE}")
  endif()
endif()
