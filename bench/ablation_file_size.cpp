// Ablation A3: file size s from 10 KB up (paper SectionVII-B: "the size of
// the file being protected had surprisingly little effect ... increasing the
// file size from 100kb to 1mb resulted in a slight decrease in the time to
// refresh per-byte ... primarily due to a reduction in padding").
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Ablation A3", "File size sweep: per-byte cost vs s");

  std::vector<std::size_t> sizes =
      bench::PaperScale()
          ? std::vector<std::size_t>{10u << 10, 32u << 10, 100u << 10,
                                     316u << 10, 1u << 20}
          : std::vector<std::size_t>{10u << 10, 32u << 10, 100u << 10};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%10s %8s %12s %16s %18s\n", "bytes", "blocks", "padding",
              "window_s/byte", "cost_usd/KB");
  for (std::size_t s : sizes) {
    ExperimentConfig cfg = bench::MakeConfig(21, 4, 6, 3, 1024, s);
    ExperimentResult res = RunRefreshExperiment(cfg);
    field::FpCtx ctx(field::StandardPrimeBe(1024));
    FileCodec codec(ctx, 6);
    std::printf("%10zu %8zu %12llu %16.3e %18.6f\n", s, res.file_blocks,
                static_cast<unsigned long long>(codec.PaddingFor(s)),
                res.WindowTimePerByte(),
                res.cost_dedicated / (s / 1024.0));
    RecordExperiment(rec, std::to_string(s), res);
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: per-byte time and cost decrease slightly with file size"
      "\n(padding amortizes); absolute time grows roughly linearly.\n");
  return 0;
}
