// Microbenchmarks of the field and polynomial substrate (google-benchmark):
// the primitive costs behind every figure. Field ops dominate the protocol,
// so this is where the g parameter's cost physically lives.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "field/primes.h"
#include "math/poly.h"
#include "math/poly_engine.h"

namespace {

using pisces::Rng;
using pisces::field::FpCtx;
using pisces::field::FpElem;
using pisces::field::StandardPrimeBe;

const FpCtx& CtxFor(std::size_t bits) {
  static std::map<std::size_t, std::unique_ptr<FpCtx>> ctxs;
  auto it = ctxs.find(bits);
  if (it == ctxs.end()) {
    it = ctxs.emplace(bits, std::make_unique<FpCtx>(StandardPrimeBe(bits)))
             .first;
  }
  return *it->second;
}

// Generic runtime-width CIOS path (the pre-specialization baseline): the
// Generic-suffixed benchmarks below measure the same op on this context, so
// specialized/generic ratios come straight out of one run.
const FpCtx& GenericCtxFor(std::size_t bits) {
  static std::map<std::size_t, std::unique_ptr<FpCtx>> ctxs;
  auto it = ctxs.find(bits);
  if (it == ctxs.end()) {
    it = ctxs.emplace(bits, std::make_unique<FpCtx>(
                                StandardPrimeBe(bits),
                                pisces::field::KernelDispatch::kGeneric))
             .first;
  }
  return *it->second;
}

constexpr std::size_t kDotLen = 32;

void BM_FieldMul(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(1);
  FpElem a = ctx.Random(rng), b = ctx.Random(rng);
  for (auto _ : state) {
    a = ctx.Mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FieldMulGeneric(benchmark::State& state) {
  const FpCtx& ctx = GenericCtxFor(state.range(0));
  Rng rng(1);
  FpElem a = ctx.Random(rng), b = ctx.Random(rng);
  for (auto _ : state) {
    a = ctx.Mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMulGeneric)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FieldSqr(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(8);
  FpElem a = ctx.Random(rng);
  for (auto _ : state) {
    a = ctx.Sqr(a);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldSqr)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FieldSqrGeneric(benchmark::State& state) {
  const FpCtx& ctx = GenericCtxFor(state.range(0));
  Rng rng(8);
  FpElem a = ctx.Random(rng);
  for (auto _ : state) {
    a = ctx.Sqr(a);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldSqrGeneric)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

// Lazy-reduction dot product (one wide reduction per output) vs the naive
// Add(Mul(...)) fold it replaced in MulVec / Lagrange / VSS hot loops.
void BM_FieldDot(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(9);
  std::vector<FpElem> a, b;
  for (std::size_t i = 0; i < kDotLen; ++i) {
    a.push_back(ctx.Random(rng));
    b.push_back(ctx.Random(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Dot(a, b));
  }
}
BENCHMARK(BM_FieldDot)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FieldDotNaive(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(9);
  std::vector<FpElem> a, b;
  for (std::size_t i = 0; i < kDotLen; ++i) {
    a.push_back(ctx.Random(rng));
    b.push_back(ctx.Random(rng));
  }
  for (auto _ : state) {
    FpElem acc = ctx.Zero();
    for (std::size_t i = 0; i < kDotLen; ++i) {
      acc = ctx.Add(acc, ctx.Mul(a[i], b[i]));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FieldDotNaive)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FieldAdd(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(2);
  FpElem a = ctx.Random(rng), b = ctx.Random(rng);
  for (auto _ : state) {
    a = ctx.Add(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldAdd)->Arg(256)->Arg(2048);

void BM_FieldInv(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(3);
  FpElem a = ctx.RandomNonZero(rng);
  for (auto _ : state) {
    a = ctx.Inv(a);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInv)->Arg(256)->Arg(1024);

// Batch inversion over the poly-engine point counts (256-bit field): one Inv
// plus 3(m-1) muls, vs m full Inv exponentiations without the trick.
void BM_BatchInv(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  Rng rng(4);
  std::vector<FpElem> elems;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    elems.push_back(ctx.RandomNonZero(rng));
  }
  for (auto _ : state) {
    auto copy = elems;
    ctx.BatchInv(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_BatchInv)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_PolyEvalDeg18(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(state.range(0));
  Rng rng(5);
  auto f = pisces::math::Poly::Random(ctx, rng, 18);
  FpElem x = ctx.Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.Eval(ctx, x));
  }
}
BENCHMARK(BM_PolyEvalDeg18)->Arg(256)->Arg(1024);

void BM_Interpolate(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(1024);
  Rng rng(6);
  std::size_t m = state.range(0);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < m; ++i) {
    xs.push_back(ctx.FromUint64(i + 1));
    ys.push_back(ctx.Random(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pisces::math::Poly::Interpolate(ctx, xs, ys));
  }
}
BENCHMARK(BM_Interpolate)->Arg(8)->Arg(19)->Arg(37);

void BM_LagrangeCoeffs(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(1024);
  Rng rng(7);
  std::size_t m = state.range(0);
  std::vector<FpElem> xs;
  for (std::size_t i = 0; i < m; ++i) xs.push_back(ctx.FromUint64(i + 1));
  FpElem x = ctx.FromUint64(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pisces::math::LagrangeCoeffs(ctx, xs, x));
  }
}
BENCHMARK(BM_LagrangeCoeffs)->Arg(19)->Arg(37);

// --- Poly-engine suite (docs/polynomial_engine.md) ------------------------
// Engine-vs-oracle pairs at n in {16, 64, 256, 1024} on the 256-bit field
// (the serving hot path); scripts/bench_micro.sh turns these into the
// eval/interp sections of BENCH_field.json and the measured crossover.

// Share-generation shape: a degree n/2 polynomial evaluated at n points.
std::vector<FpElem> BenchPoints(const FpCtx& ctx, std::size_t n) {
  std::vector<FpElem> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(ctx.FromUint64(i + 1));
  return xs;
}

void BM_PolyEvalTree(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  Rng rng(10);
  const std::size_t n = state.range(0);
  const std::vector<FpElem> xs = BenchPoints(ctx, n);
  // Domain built once outside the loop: the cache amortizes it in the
  // protocol exactly the same way (BM_PolyDomainBuild prices the build).
  pisces::math::SubproductTree tree(ctx, xs);
  auto f = pisces::math::Poly::Random(ctx, rng, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.EvalAll(f.coeffs()));
  }
}
BENCHMARK(BM_PolyEvalTree)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_PolyEvalHorner(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  Rng rng(10);
  const std::size_t n = state.range(0);
  const std::vector<FpElem> xs = BenchPoints(ctx, n);
  auto f = pisces::math::Poly::Random(ctx, rng, n / 2);
  for (auto _ : state) {
    std::vector<FpElem> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = f.Eval(ctx, xs[i]);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PolyEvalHorner)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_PolyInterpTree(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  Rng rng(11);
  const std::size_t n = state.range(0);
  const std::vector<FpElem> xs = BenchPoints(ctx, n);
  pisces::math::SubproductTree tree(ctx, xs);
  std::vector<FpElem> ys;
  for (std::size_t i = 0; i < n; ++i) ys.push_back(ctx.Random(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Interpolate(ys));
  }
}
BENCHMARK(BM_PolyInterpTree)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_PolyInterpLagrange(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  Rng rng(11);
  const std::size_t n = state.range(0);
  const std::vector<FpElem> xs = BenchPoints(ctx, n);
  std::vector<FpElem> ys;
  for (std::size_t i = 0; i < n; ++i) ys.push_back(ctx.Random(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pisces::math::Poly::InterpolateLagrange(ctx, xs, ys));
  }
}
BENCHMARK(BM_PolyInterpLagrange)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// One-time domain cost: tree + per-node inverse series + barycentric
// weights. Amortized across every block/window that reuses the point set.
void BM_PolyDomainBuild(benchmark::State& state) {
  const FpCtx& ctx = CtxFor(256);
  const std::size_t n = state.range(0);
  const std::vector<FpElem> xs = BenchPoints(ctx, n);
  for (auto _ : state) {
    pisces::math::SubproductTree tree(ctx, xs);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_PolyDomainBuild)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared flags (--threads,
// --trace, ...) are stripped by bench::Parse before google-benchmark sees
// argv, since ReportUnrecognizedArguments treats any leftover as fatal.
int main(int argc, char** argv) {
  pisces::bench::Options opts = pisces::bench::Parse(argc, argv);
  // Trustworthy build-type marker for scripts/bench_micro.sh's release gate.
  // google-benchmark's own "library_build_type" context key reflects the
  // NDEBUG state of the *library* when IT was compiled (the distro package
  // reports "debug" regardless of how this binary is built), so the gate
  // keys on our translation unit instead.
#ifdef NDEBUG
  benchmark::AddCustomContext("pisces_build_type", "release");
#else
  benchmark::AddCustomContext("pisces_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "pisces_poly_crossover",
      std::to_string(pisces::math::PolyEngineCrossover()));
  int rest_argc = static_cast<int>(opts.rest.size());
  benchmark::Initialize(&rest_argc, opts.rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, opts.rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (obs::TraceEnabled()) obs::WriteTrace();
  return 0;
}
