// Figure 6: total dollar cost to refresh vs corruption threshold t, one
// series per instance type (n = 21 fixed).
//
// Expected shape (paper SectionVII-B): cost explodes as t approaches the
// cryptographic maximum n/3 because the packing parameter l is squeezed
// toward 1 and the amortization of the underlying PSS is lost.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 6", "Total cost to refresh vs corruption threshold t");

  const std::size_t n = 21;
  const std::size_t r = 1;
  std::vector<std::size_t> ts =
      bench::PaperScale() ? std::vector<std::size_t>{1, 2, 3, 4, 5, 6}
                          : std::vector<std::size_t>{2, 4, 6};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%-8s %3s %3s %3s %16s %14s\n", "series", "t", "l", "ok",
              "window_s", "cost_usd");
  for (InstanceType type :
       {InstanceType::kSmall, InstanceType::kMedium, InstanceType::kLarge}) {
    for (std::size_t t : ts) {
      std::size_t l = bench::MaxPacking(n, t, r);  // best packing for this t
      ExperimentConfig cfg =
          bench::MakeConfig(n, t, l, r, 1024, bench::FileBytes(n));
      cfg.instance = type;
      ExperimentResult res = RunRefreshExperiment(cfg);
      std::printf("%-8s %3zu %3zu %3d %16.4f %14.6f\n", SpecOf(type).name, t,
                  l, res.ok, res.window_time_s, res.cost_dedicated);
      RecordExperiment(rec, SpecOf(type).name, res);
    }
  }
  bench::Finish(rec, opts);
  std::printf("\nShape check: cost should rise sharply as t -> n/3 = 7.\n");
  return 0;
}
