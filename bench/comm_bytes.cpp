// Bytes-on-wire bench for the communication-efficient read and repair
// codepoints (BENCH_comm.json).
//
// Unlike the timing benches, the metric here is deterministic: the per-
// message-type obs counters (net.bytes_sent.<type>) meter exactly what each
// protocol variant ships. One run uploads a file to an n = 16 fleet and
// compares
//   * download: classic full-share oracle (ReadSpec::Classic) vs the
//     staircase striped read (ReadSpec::Staircase, fallback disabled so a
//     silent oracle retry can never flatter the numbers) -- ShareResponse
//     payload bytes plus the ReconstructRequest descriptor overhead;
//   * repair: full masked-vector recovery vs the reduced stripe
//     (ClusterConfig::repair.path = kStaircase) -- MaskedShare bytes for one
//     RebootAndRecover batch.
// Both staircase downloads are byte-compared against the upload, and the
// staircase run asserts zero comm.staircase_fallbacks, so the reported
// ratios are only ever produced by the cheap path actually completing.
//
// The CostModel planner's prediction for the same point is printed next to
// the measurement (PlanRead: share-byte ratio and egress dollars/read), so
// the deployment planner's hook is validated against live counters.
//
// Flags (after the shared --threads/--seed/--out/--trace of bench_common.h):
//   --file-bytes B   upload payload size (default 16384)
//   --reps R         repetitions; min bytes across reps reported (default 3)
//   --contacts D     staircase contact budget d, 0 = all n (default 0)
//   --json PATH      summary JSON (default BENCH_comm.json)
// Environment fallback: PISCES_COMM_JSON.
//
// Gates (exit 1 on failure): staircase/classic ShareResponse ratio <= 0.70
// at d = n (theory: need/n = 7/16 plus framing), reduced/full MaskedShare
// ratio <= 0.85 (theory: (degree+3)/survivors = 9/15 plus framing),
// downloads bit-identical, zero staircase fallbacks.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/message.h"
#include "obs/registry.h"

namespace pisces {
namespace {

struct CommOptions {
  std::size_t file_bytes = 16384;
  std::size_t reps = 3;
  std::uint32_t contacts = 0;  // 0 = all n
  std::string json = "BENCH_comm.json";
  std::uint64_t seed = 23;
};

CommOptions ParseComm(const bench::Options& shared) {
  CommOptions o;
  if (shared.seed != 0) o.seed = shared.seed;
  if (const char* e = std::getenv("PISCES_COMM_JSON")) o.json = e;
  const auto& rest = shared.rest;
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const std::string a = rest[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return rest[++i];
    };
    if (a == "--file-bytes") {
      o.file_bytes = std::stoul(next());
    } else if (a == "--reps") {
      o.reps = std::stoul(next());
    } else if (a == "--contacts") {
      o.contacts = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--json") {
      o.json = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

Bytes MakeFile(std::size_t size) {
  Bytes file(size);
  for (std::size_t i = 0; i < size; ++i) {
    file[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xFF);
  }
  return file;
}

std::uint64_t Sent(const obs::Snapshot& delta, net::MsgType type) {
  return obs::Value(delta,
                    std::string("net.bytes_sent.") + net::MsgTypeName(type));
}

// Meters one action: returns the counter delta it produced.
template <typename Fn>
obs::Snapshot Metered(Fn&& fn) {
  const obs::Snapshot before = obs::TakeSnapshot();
  fn();
  return obs::Delta(before, obs::TakeSnapshot());
}

int Main(int argc, char** argv) {
  bench::Options shared = bench::Parse(argc, argv);
  CommOptions opt = ParseComm(shared);
  bench::Banner("communication bytes",
                "Bytes on the wire per download / repair: classic full-share "
                "oracle vs staircase striped read and reduced recovery");

  ClusterConfig cfg;
  // n = 16: t = 4, l = 2, degree = 6, need = 7 -- the widest stripe cuts a
  // read's share payload to need/n = 7/16 and 15 survivors ship budget =
  // degree+3 = 9 points per block instead of their full masked vectors.
  cfg.params = pss::Params::Natural(16, 256);
  cfg.seed = opt.seed;
  // Figure-bench convention (bench_common.h): channel crypto is metered
  // separately, so the byte counters price the protocol, not the sealing.
  cfg.encrypt_links = false;

  const std::size_t n = cfg.params.n;
  const std::size_t need = cfg.params.degree() + 1;
  const Bytes file = MakeFile(opt.file_bytes);

  Cluster cluster(cfg);
  cluster.Upload(1, file);

  std::uint64_t classic_resp = UINT64_MAX, classic_req = UINT64_MAX;
  std::uint64_t striped_resp = UINT64_MAX, striped_req = UINT64_MAX;
  std::uint64_t fallbacks = 0;
  bool identical = true;

  for (std::size_t rep = 0; rep < opt.reps; ++rep) {
    Bytes got_classic, got_striped;
    const obs::Snapshot d1 =
        Metered([&] { got_classic = cluster.Download(ReadSpec::Classic(1)); });
    classic_resp = std::min(classic_resp, Sent(d1, net::MsgType::kShareResponse));
    classic_req =
        std::min(classic_req, Sent(d1, net::MsgType::kReconstructRequest));

    // Fallback disabled: if the striped path cannot complete the bench must
    // fail loudly rather than silently re-measure the oracle.
    const obs::Snapshot d2 = Metered([&] {
      got_striped = cluster.Download(
          ReadSpec::Staircase(1, opt.contacts, ReadFallback::kFail));
    });
    striped_resp = std::min(striped_resp, Sent(d2, net::MsgType::kShareResponse));
    striped_req =
        std::min(striped_req, Sent(d2, net::MsgType::kReconstructRequest));
    fallbacks += obs::Value(d2, "comm.staircase_fallbacks");
    identical = identical && got_classic == file && got_striped == file;
  }

  // Repair: twin fleets, same seed, full vs reduced masked-share policy.
  const std::vector<std::uint32_t> batch{0};
  std::uint64_t full_masked = UINT64_MAX, reduced_masked = UINT64_MAX;
  bool healed = true;
  {
    Cluster full(cfg);
    full.Upload(1, file);
    ClusterConfig red_cfg = cfg;
    red_cfg.repair.path = ReadPath::kStaircase;
    Cluster reduced(red_cfg);
    reduced.Upload(1, file);
    for (std::size_t rep = 0; rep < opt.reps; ++rep) {
      bool ok_full = false, ok_reduced = false;
      const obs::Snapshot d1 =
          Metered([&] { ok_full = full.hypervisor().RebootAndRecover(batch); });
      full_masked = std::min(full_masked, Sent(d1, net::MsgType::kMaskedShare));
      const obs::Snapshot d2 = Metered(
          [&] { ok_reduced = reduced.hypervisor().RebootAndRecover(batch); });
      reduced_masked =
          std::min(reduced_masked, Sent(d2, net::MsgType::kMaskedShare));
      healed = healed && ok_full && ok_reduced;
    }
    healed = healed && full.Download(ReadSpec::Classic(1)) == file &&
             reduced.Download(ReadSpec::Classic(1)) == file;
  }

  const double share_ratio = static_cast<double>(striped_resp) /
                             static_cast<double>(classic_resp);
  const double total_ratio =
      static_cast<double>(striped_resp + striped_req) /
      static_cast<double>(classic_resp + classic_req);
  const double masked_ratio = static_cast<double>(reduced_masked) /
                              static_cast<double>(full_masked);

  // Deployment-planner hook: feed the planner the measured per-host classic
  // response bytes and print its prediction next to the live counters.
  const CostModel cost = cluster.cost_model();
  const double per_host = static_cast<double>(classic_resp) /
                          static_cast<double>(n);
  const ReadPlanChoice plan = cost.PlanRead(n, need, per_host);
  const double predicted_ratio =
      plan.share_bytes / (static_cast<double>(n) * per_host);

  std::printf("\n%-34s %14s\n", "metric", "value");
  std::printf("%-34s %8zu / %zu\n", "fleet n / need", n, need);
  std::printf("%-34s %14zu\n", "file bytes", opt.file_bytes);
  std::printf("%-34s %14" PRIu64 "\n", "classic ShareResponse B", classic_resp);
  std::printf("%-34s %14" PRIu64 "\n", "staircase ShareResponse B",
              striped_resp);
  std::printf("%-34s %14.3f\n", "download share ratio", share_ratio);
  std::printf("%-34s %14.3f\n", "download total ratio", total_ratio);
  std::printf("%-34s %14" PRIu64 "\n", "full MaskedShare B", full_masked);
  std::printf("%-34s %14" PRIu64 "\n", "reduced MaskedShare B", reduced_masked);
  std::printf("%-34s %14.3f\n", "repair masked ratio", masked_ratio);
  std::printf("%-34s %14" PRIu64 "\n", "staircase fallbacks", fallbacks);
  std::printf("%-34s %14.3f\n", "planner predicted share ratio",
              predicted_ratio);
  std::printf("%-34s %14.6f\n", "planner $/read (egress)",
              plan.dollars_per_read);

  const bool download_gate = share_ratio <= 0.70;
  const bool repair_gate = masked_ratio <= 0.85;
  const bool honest = identical && healed && fallbacks == 0;
  const bool ok = download_gate && repair_gate && honest;

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif

  FILE* f = std::fopen(opt.json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"comm_bytes\",\n"
      "  \"context\": {\"pisces_build_type\": \"%s\"},\n"
      "  \"n\": %zu,\n"
      "  \"need\": %zu,\n"
      "  \"contacts\": %u,\n"
      "  \"file_bytes\": %zu,\n"
      "  \"reps\": %zu,\n"
      "  \"download\": {\n"
      "    \"classic_share_response_bytes\": %" PRIu64 ",\n"
      "    \"staircase_share_response_bytes\": %" PRIu64 ",\n"
      "    \"classic_request_bytes\": %" PRIu64 ",\n"
      "    \"staircase_request_bytes\": %" PRIu64 ",\n"
      "    \"share_ratio\": %.4f,\n"
      "    \"total_ratio\": %.4f\n"
      "  },\n"
      "  \"repair\": {\n"
      "    \"full_masked_share_bytes\": %" PRIu64 ",\n"
      "    \"reduced_masked_share_bytes\": %" PRIu64 ",\n"
      "    \"masked_ratio\": %.4f\n"
      "  },\n"
      "  \"planner\": {\n"
      "    \"staircase\": %s,\n"
      "    \"contacts\": %zu,\n"
      "    \"predicted_share_ratio\": %.4f,\n"
      "    \"dollars_per_read\": %.8f\n"
      "  },\n"
      "  \"acceptance\": {\n"
      "    \"download_share_ratio_le_0.70\": %s,\n"
      "    \"repair_masked_ratio_le_0.85\": %s,\n"
      "    \"bit_identical_and_healed\": %s,\n"
      "    \"zero_staircase_fallbacks\": %s\n"
      "  },\n"
      "  \"ok\": %s\n"
      "}\n",
      build_type, n, need, opt.contacts, opt.file_bytes, opt.reps,
      classic_resp, striped_resp, classic_req, striped_req, share_ratio,
      total_ratio, full_masked, reduced_masked, masked_ratio,
      plan.staircase ? "true" : "false", plan.contacts, predicted_ratio,
      plan.dollars_per_read, download_gate ? "true" : "false",
      repair_gate ? "true" : "false", (identical && healed) ? "true" : "false",
      fallbacks == 0 ? "true" : "false", ok ? "true" : "false");
  std::fclose(f);
  std::printf("\njson written to %s\n", opt.json.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
