// Figure 7: n = 37, refresh time per byte vs t, split into four series:
// {Sending, Computing} x {Rerandomization, Recovery}.
//
// Expected shape: every series rises with t (packing shrinks); recovery
// dominates rerandomization; near the threshold the curves blow up.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Figure 7",
                "n=37: refresh time per byte vs t, sending/computing split");
  if (opts.threads > 0) std::printf("threads: %zu\n", opts.threads);

  const std::size_t n = 37;
  const std::size_t r = 3;
  std::vector<std::size_t> ts = bench::PaperScale()
                                    ? std::vector<std::size_t>{7, 8, 9, 10, 11}
                                    : std::vector<std::size_t>{7, 9, 11};

  Recorder rec = MakeExperimentRecorder();
  std::printf("%3s %3s | %18s %18s %18s %18s  (s/byte)\n", "t", "l",
              "send-rerand", "send-recover", "comp-rerand", "comp-recover");
  for (std::size_t t : ts) {
    std::size_t l = bench::MaxPacking(n, t, r);
    ExperimentConfig cfg =
        bench::MakeConfig(n, t, l, r, 1024, bench::FileBytes(n));
    cfg.threads = opts.threads;
    ExperimentResult res = RunRefreshExperiment(cfg);
    const double fb = static_cast<double>(res.file_bytes);
    std::printf("%3zu %3zu | %18.3e %18.3e %18.3e %18.3e\n", t, l,
                res.send_rerand_s / fb, res.send_recover_s / fb,
                res.compute_rerand_s / fb, res.compute_recover_s / fb);
    RecordExperiment(rec, "n37", res);
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: all four series rise with t; recovery > rerandomization;"
      "\nnear t = 11 (l -> 1 region) the per-byte time spikes.\n");
  return 0;
}
