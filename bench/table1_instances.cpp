// Table I: Amazon EC2 instance specifications and prices, plus cost-model
// sanity rows (what one hour of an n-host deployment costs).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Table I", "Amazon EC2 instance specifications");

  std::printf("%-8s %4s %12s %12s %18s %16s\n", "Type", "CPU", "Memory(GiB)",
              "Storage(GB)", "$/h (Dedicated)", "$/h (Spot)");
  for (InstanceType type :
       {InstanceType::kSmall, InstanceType::kMedium, InstanceType::kLarge}) {
    const InstanceSpec& s = SpecOf(type);
    std::printf("%-8s %4u %12.1f %12.0f %18.3f %16.4f\n", s.name, s.vcpus,
                s.memory_gib, s.storage_gb, s.dedicated_per_hour,
                s.spot_per_hour);
  }
  std::printf("Note: +$%.2f flat fee per hour any dedicated instance runs.\n",
              kDedicatedRegionFeePerHour);

  std::printf("\nDerived: one hour of an n-host fleet (dedicated / spot):\n");
  Recorder rec({"instance", "n", "dedicated_usd_per_h", "spot_usd_per_h"});
  for (std::size_t n : {11u, 21u, 29u, 37u}) {
    for (InstanceType type :
         {InstanceType::kSmall, InstanceType::kMedium, InstanceType::kLarge}) {
      CostModel cost;
      cost.machine.instance = type;
      double ded = cost.WindowCost(n, 3600.0, false);
      double spot = cost.WindowCost(n, 3600.0, true);
      std::printf("  %-8s n=%2zu  $%7.3f / $%7.4f\n", SpecOf(type).name, n,
                  ded, spot);
      rec.NewRow()
          .Set("instance", SpecOf(type).name)
          .Set("n", n)
          .Set("dedicated_usd_per_h", ded)
          .Set("spot_usd_per_h", spot)
          .Commit();
    }
  }
  bench::Finish(rec, opts);
  return 0;
}
