// Open-loop serving-plane throughput bench (BENCH_serving.json).
//
// Unlike the figure benches (closed sweeps over protocol parameters), this
// drives the SHARDED SERVING PLANE the way a load generator drives a storage
// service: arrivals are scheduled on a wall-clock rate that does not care
// whether earlier requests finished (open loop, so queueing delay is measured
// honestly instead of being hidden by generator back-off), sessions multiplex
// many requests over one plane, and admission control is allowed to shed.
//
// Reported per run: offered/accepted/completed/rejected ops, achieved ops/sec,
// and p50/p99 completion latency measured from the request's SCHEDULED arrival
// time (coordinated-omission-safe: a stalled plane charges every queued
// arrival for the stall). Preload uploads are accounted separately
// (preload_accepted); every other counter is a measured-window delta, and the
// gate asserts accepted <= offered_ops.
//
// Flags (after the shared --threads/--seed/--out/--trace of bench_common.h):
//   --shards N        shard count (default 2; the acceptance gate needs >= 2)
//   --rate R          offered load, requests/second (default 300)
//   --duration-ms D   open-loop phase length (default 2000)
//   --preload F       files uploaded before the clock starts (default 16)
//   --file-bytes B    upload payload size (default 2048)
//   --json PATH       write the summary JSON (default BENCH_serving.json)
// Environment fallbacks: PISCES_SERVING_SHARDS, _RATE, _DURATION_MS, _JSON.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"

namespace pisces {
namespace {

using net::ServingOp;
using net::ServingStatus;

struct LoadOptions {
  std::uint32_t shards = 2;
  double rate = 300.0;         // requests per second
  std::uint64_t duration_ms = 2000;
  std::size_t preload = 16;
  std::size_t file_bytes = 2048;
  std::string json = "BENCH_serving.json";
  std::uint64_t seed = 0xC10D;
};

LoadOptions ParseLoad(const bench::Options& shared) {
  LoadOptions o;
  if (shared.seed != 0) o.seed = shared.seed;
  auto env_u64 = [](const char* name, std::uint64_t cur) {
    const char* e = std::getenv(name);
    return e != nullptr ? std::strtoull(e, nullptr, 10) : cur;
  };
  o.shards = static_cast<std::uint32_t>(
      env_u64("PISCES_SERVING_SHARDS", o.shards));
  o.rate = static_cast<double>(env_u64("PISCES_SERVING_RATE",
                                       static_cast<std::uint64_t>(o.rate)));
  o.duration_ms = env_u64("PISCES_SERVING_DURATION_MS", o.duration_ms);
  if (const char* e = std::getenv("PISCES_SERVING_JSON")) o.json = e;

  const auto& rest = shared.rest;
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const std::string a = rest[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return rest[++i];
    };
    if (a == "--shards") {
      o.shards = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--rate") {
      o.rate = std::stod(next());
    } else if (a == "--duration-ms") {
      o.duration_ms = std::stoull(next());
    } else if (a == "--preload") {
      o.preload = std::stoul(next());
    } else if (a == "--file-bytes") {
      o.file_bytes = std::stoul(next());
    } else if (a == "--json") {
      o.json = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

double PercentileMs(std::vector<std::uint64_t> sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[idx]) / 1e6;
}

int Main(int argc, char** argv) {
  bench::Options shared = bench::Parse(argc, argv);
  LoadOptions opt = ParseLoad(shared);
  bench::Banner("serving throughput",
                "Open-loop load vs the sharded serving plane: ops/sec and "
                "p50/p99 completion latency under admission control");

  ServingConfig cfg;
  cfg.shards = opt.shards;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = opt.seed;
  // Figure-bench convention: channel crypto is metered separately.
  cfg.encrypt_links = false;
  cfg.admission_capacity = 64;
  cfg.max_inflight = 8;
  ServingPlane plane(cfg);
  Rng rng(opt.seed ^ 0x10AD);

  // Eight multiplexed sessions round-robin the offered load.
  std::vector<std::uint64_t> sessions;
  for (int k = 0; k < 8; ++k) sessions.push_back(plane.OpenSession());

  // Mirror of each session's accepted-request ordinal (Submit() assigns
  // last_request + 1; refusals and rejections do not advance it), so a
  // completion can be matched back to its scheduled arrival time.
  std::map<std::uint64_t, std::uint64_t> next_req;

  std::map<std::uint64_t, Bytes> content;
  std::vector<std::uint64_t> live;
  std::uint64_t next_file = 1;
  for (std::size_t k = 0; k < opt.preload; ++k) {
    const std::uint64_t id = next_file++;
    const std::uint64_t session = sessions[k % sessions.size()];
    Bytes data = rng.RandomBytes(opt.file_bytes);
    plane.Submit(session, ServingOp::kUpload, id, data);
    ++next_req[session];
    content[id] = std::move(data);
    live.push_back(id);
    plane.Drain();
  }
  plane.TakeCompletions();
  // Preload flows through the same stats ledger as measured load; snapshot
  // here so the summary reports measured-WINDOW deltas. Without this the run
  // double-counted (accepted > offered_ops: preload uploads were admitted
  // but never offered on the open-loop clock).
  const ServingStats preload_stats = plane.stats();

  // (session, request) -> scheduled arrival, for open-loop latency.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> scheduled;
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t offered = 0, completed_ops = 0, failed_ops = 0;

  const std::uint64_t start_ns = MonotonicNanos();
  const std::uint64_t end_ns = start_ns + opt.duration_ms * 1'000'000ull;
  const double gap_ns = 1e9 / opt.rate;
  double next_arrival = static_cast<double>(start_ns);
  std::size_t rr = 0;

  auto absorb = [&]() {
    for (ServingCompletion& c : plane.TakeCompletions()) {
      ++completed_ops;
      if (c.status != ServingStatus::kOk) ++failed_ops;
      auto it = scheduled.find({c.session, c.request});
      if (it == scheduled.end()) continue;
      latencies_ns.push_back(MonotonicNanos() - it->second);
      scheduled.erase(it);
    }
  };

  while (true) {
    const std::uint64_t now = MonotonicNanos();
    if (now >= end_ns) break;
    // Submit every arrival that is due, whether or not the plane kept up.
    while (static_cast<double>(now) >= next_arrival) {
      const std::uint64_t due =
          static_cast<std::uint64_t>(next_arrival);
      next_arrival += gap_ns;
      ++offered;
      const std::uint64_t session = sessions[rr++ % sessions.size()];
      const std::uint64_t dice = rng.Below(100);
      ServingPlane::Admission adm;
      std::uint64_t req_file = 0;
      if (dice < 20 || live.empty()) {
        const std::uint64_t id = next_file++;
        Bytes data = rng.RandomBytes(opt.file_bytes);
        adm = plane.Submit(session, ServingOp::kUpload, id, data);
        if (adm.status == ServingStatus::kOk) {
          content[id] = std::move(data);
          live.push_back(id);
          req_file = id;
        }
      } else if (dice < 95) {
        req_file = live[rng.Below(live.size())];
        adm = plane.Submit(session, ServingOp::kDownload, req_file);
      } else {
        const std::size_t pick = rng.Below(live.size());
        req_file = live[pick];
        adm = plane.Submit(session, ServingOp::kDelete, req_file);
        if (adm.status == ServingStatus::kOk) {
          live[pick] = live.back();
          live.pop_back();
        }
      }
      if (adm.status == ServingStatus::kOk) {
        scheduled[{session, ++next_req[session]}] = due;
      }
    }
    plane.Poll();
    absorb();
  }
  plane.Drain();
  absorb();
  const std::uint64_t elapsed_ns = MonotonicNanos() - start_ns;

  const ServingStats& st = plane.stats();
  // Measured-window deltas: only work offered on the open-loop clock.
  const std::uint64_t win_accepted = st.accepted - preload_stats.accepted;
  const std::uint64_t win_completed = st.completed - preload_stats.completed;
  const std::uint64_t win_rejected = st.rejected - preload_stats.rejected;
  const std::uint64_t win_refused = st.refused - preload_stats.refused;
  const std::uint64_t win_failed = st.failed - preload_stats.failed;
  const double secs = static_cast<double>(elapsed_ns) / 1e9;
  const double ops_per_sec = static_cast<double>(completed_ops) / secs;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const double p50 = PercentileMs(latencies_ns, 0.50);
  const double p99 = PercentileMs(latencies_ns, 0.99);

  std::printf("\n%-22s %12s\n", "metric", "value");
  std::printf("%-22s %12u\n", "shards", cfg.shards);
  std::printf("%-22s %12.0f\n", "offered rate (ops/s)", opt.rate);
  std::printf("%-22s %12zu\n", "preload uploads", opt.preload);
  std::printf("%-22s %12" PRIu64 "\n", "offered ops", offered);
  std::printf("%-22s %12" PRIu64 "\n", "accepted", win_accepted);
  std::printf("%-22s %12" PRIu64 "\n", "completed", win_completed);
  std::printf("%-22s %12" PRIu64 "\n", "rejected", win_rejected);
  std::printf("%-22s %12" PRIu64 "\n", "refused", win_refused);
  std::printf("%-22s %12" PRIu64 "\n", "queue peak", st.queue_peak);
  std::printf("%-22s %12.1f\n", "achieved ops/sec", ops_per_sec);
  std::printf("%-22s %12.3f\n", "p50 latency (ms)", p50);
  std::printf("%-22s %12.3f\n", "p99 latency (ms)", p99);

  // Accounting sanity is part of the gate: the measured window can never
  // admit more than the open loop offered.
  const bool ok = failed_ops == 0 && win_completed == win_accepted &&
                  win_accepted <= offered && completed_ops > 0 &&
                  cfg.shards >= 2;

  FILE* f = std::fopen(opt.json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"throughput_serving\",\n"
               "  \"shards\": %u,\n"
               "  \"offered_rate_per_sec\": %.1f,\n"
               "  \"duration_ms\": %" PRIu64 ",\n"
               "  \"file_bytes\": %zu,\n"
               "  \"preload_files\": %zu,\n"
               "  \"preload_accepted\": %" PRIu64 ",\n"
               "  \"offered_ops\": %" PRIu64 ",\n"
               "  \"accepted\": %" PRIu64 ",\n"
               "  \"completed\": %" PRIu64 ",\n"
               "  \"rejected\": %" PRIu64 ",\n"
               "  \"refused\": %" PRIu64 ",\n"
               "  \"failed\": %" PRIu64 ",\n"
               "  \"queue_peak\": %" PRIu64 ",\n"
               "  \"ops_per_sec\": %.1f,\n"
               "  \"p50_ms\": %.3f,\n"
               "  \"p99_ms\": %.3f,\n"
               "  \"live_files\": %zu,\n"
               "  \"ok\": %s\n"
               "}\n",
               cfg.shards, opt.rate, opt.duration_ms, opt.file_bytes,
               opt.preload, preload_stats.accepted, offered,
               win_accepted, win_completed, win_rejected, win_refused,
               win_failed, st.queue_peak,
               ops_per_sec, p50, p99, plane.files().size(),
               ok ? "true" : "false");
  std::fclose(f);
  std::printf("\njson written to %s\n", opt.json.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
