// Ablation A5 -- THE headline comparison: the paper's chosen PSS ([7],
// hyperinvertible batching, O(1) amortized per secret) against the prior
// state of the art it displaces (HJKY'95 [25], O(n^2) per secret, no
// packing, no batching).
//
// Both sides refresh the same number of raw secret field elements; we report
// field elements sent and CPU per secret. Expected shape: the baseline's
// per-secret communication grows ~n^2 while the batched scheme's stays flat
// (and far lower), exactly the gap that makes bulk-data proactive storage
// feasible (paper SectionII / SectionIII-C).
#include "bench_common.h"

#include "pss/baseline.h"
#include "pss/refresh.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Ablation A5",
                "Batched PSS [7] vs HJKY'95 baseline [25], per-secret cost");

  Recorder rec({"n", "t", "scheme", "secrets", "elems_sent",
                "elems_per_secret", "cpu_us_per_secret"});
  std::printf("%3s %3s %-10s %10s %14s %18s %18s\n", "n", "t", "scheme",
              "secrets", "elems_sent", "elems/secret", "cpu_us/secret");

  for (std::size_t n : {13u, 21u, 29u, 37u}) {
    const std::size_t t = n / 4;
    const std::size_t l = bench::MaxPacking(n, t, 1);
    auto ctx = std::make_shared<const field::FpCtx>(
        field::StandardPrimeBe(1024));
    Rng rng(0xBA5E + n);
    // Enough raw secrets for several batching groups on the [7] side.
    const std::size_t blocks = 4 * (n - 2 * t);
    const std::size_t secrets = blocks * l;

    // --- batched scheme of [7] (the library's refresh pipeline) ---
    pss::Params params;
    params.n = n;
    params.t = t;
    params.l = l;
    params.field_bits = 1024;
    pss::PackedShamir shamir(ctx, params);
    std::vector<std::vector<field::FpElem>> packed(
        n, std::vector<field::FpElem>(blocks));
    std::vector<field::FpElem> block(l, ctx->Zero());
    for (std::size_t b = 0; b < blocks; ++b) {
      for (auto& e : block) e = ctx->Random(rng);
      auto sh = shamir.ShareBlock(block, rng);
      for (std::size_t i = 0; i < n; ++i) packed[i][b] = sh[i];
    }
    CpuTimer cpu;
    cpu.Start();
    pss::ReferenceRefresh(shamir, packed, rng);
    cpu.Stop();
    // Wire accounting for one batch round (mirrors the host protocol):
    // deals n(n-1)G + check shares 2t*G*(n-1) + verdict broadcast (1 elem
    // equivalent ignored -- verdicts are single bytes).
    pss::RefreshPlan plan = pss::RefreshPlan::For(blocks, params);
    std::uint64_t elems = static_cast<std::uint64_t>(n) * (n - 1) * plan.groups +
                          static_cast<std::uint64_t>(2 * t) * plan.groups * (n - 1);
    double eps = static_cast<double>(elems) / secrets;
    double cpu_us = cpu.nanos() / 1000.0 / secrets;
    std::printf("%3zu %3zu %-10s %10zu %14llu %18.2f %18.2f\n", n, t,
                "batched", secrets, static_cast<unsigned long long>(elems),
                eps, cpu_us);
    rec.NewRow()
        .Set("n", n)
        .Set("t", t)
        .Set("scheme", "batched")
        .Set("secrets", secrets)
        .Set("elems_sent", elems)
        .Set("elems_per_secret", eps)
        .Set("cpu_us_per_secret", cpu_us)
        .Commit();

    // --- HJKY'95 baseline: same raw secrets, no packing, no batching ---
    pss::EvalPoints points(*ctx, n, 1);
    std::vector<field::FpElem> raw(secrets, ctx->Zero());
    for (auto& e : raw) e = ctx->Random(rng);
    auto naive = pss::BaselineShare(*ctx, points, n, t, raw, rng);
    pss::BaselineStats stats =
        pss::BaselineRefresh(*ctx, points, n, t, naive, rng);
    double eps_b = static_cast<double>(stats.elems_sent) / secrets;
    double cpu_us_b = stats.cpu_ns / 1000.0 / secrets;
    std::printf("%3zu %3zu %-10s %10zu %14llu %18.2f %18.2f\n", n, t, "hjky95",
                secrets, static_cast<unsigned long long>(stats.elems_sent),
                eps_b, cpu_us_b);
    rec.NewRow()
        .Set("n", n)
        .Set("t", t)
        .Set("scheme", "hjky95")
        .Set("secrets", secrets)
        .Set("elems_sent", stats.elems_sent)
        .Set("elems_per_secret", eps_b)
        .Set("cpu_us_per_secret", cpu_us_b)
        .Commit();
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: hjky95 elems/secret grows ~n^2 (each secret pays a "
      "full\nall-to-all round); batched stays near-constant and orders of "
      "magnitude\nlower -- the gap that makes MB-scale proactive storage "
      "feasible.\n");
  return 0;
}
