// Ablation A1: field size g from 256 to 2048 bits at fixed (n, t, l, r).
//
// g is not a security parameter (paper SectionVI-A) but drives the size and
// number of shares and the cost of each field operation: bigger fields mean
// fewer, larger elements. This sweep quantifies the tradeoff.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pisces;
  const bench::Options opts = bench::Parse(argc, argv);
  bench::Banner("Ablation A1", "Field size g sweep at fixed (n,t,l,r)");

  Recorder rec = MakeExperimentRecorder();
  std::printf("%5s %8s %14s %16s %16s\n", "g", "blocks", "window_s",
              "s/byte", "bytes/file-byte");
  for (std::size_t g : {256u, 512u, 1024u, 2048u}) {
    ExperimentConfig cfg =
        bench::MakeConfig(13, 2, 3, 2, g, bench::FileBytes(13));
    ExperimentResult res = RunRefreshExperiment(cfg);
    std::printf("%5zu %8zu %14.4f %16.3e %16.1f\n", g, res.file_blocks,
                res.window_time_s, res.WindowTimePerByte(),
                res.TotalBytes() / static_cast<double>(res.file_bytes));
    RecordExperiment(rec, "g" + std::to_string(g), res);
  }
  bench::Finish(rec, opts);
  std::printf(
      "\nShape check: larger g -> fewer blocks but costlier arithmetic; the"
      "\nper-byte optimum sits at an intermediate g (the paper picked 1024).\n");
  return 0;
}
