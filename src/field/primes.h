// Standard primes for the paper's field-size parameter g, plus the
// Miller-Rabin primality test used to validate them and to generate the
// Schnorr signature group.
//
// The paper sweeps g over powers of two from 256 to 2048 bits (§VI-A). We use
// the largest prime below 2^g for each size, so that almost the full g bits
// of every share are usable payload and serialized shares are exactly g/8
// bytes, matching the paper's accounting of share size.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"

namespace pisces::field {

// Supported field sizes (bits of the prime modulus).
inline constexpr std::size_t kStandardFieldBits[] = {256, 512, 1024, 2048};

// Big-endian bytes of the standard prime for a supported g; throws
// InvalidArgument for unsupported sizes.
Bytes StandardPrimeBe(std::size_t bits);

// Probabilistic primality test (big-endian input). `rounds` random bases;
// error probability <= 4^-rounds for composites.
bool MillerRabinIsPrime(std::span<const std::uint8_t> n_be, int rounds,
                        Rng& rng);

}  // namespace pisces::field
