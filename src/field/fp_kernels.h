// Width-specialized Montgomery kernels.
//
// The generic CIOS multiply in fp.cpp carries a runtime loop bound k, which
// blocks unrolling and keeps every product paying loop/branch overhead per
// limb. The paper's standard field sizes g in {256, 512, 1024, 2048} map to
// exactly k in {4, 8, 16, 32} limbs, so this header provides the same
// algorithms as function templates on a compile-time limb count K: the
// compiler sees constant trip counts, fully unrolls the small widths, and
// keeps carries in registers. FpCtx selects a KernelVTable once at
// construction (function pointers, no per-call branching on width); the
// runtime-k path in fp.cpp remains both the fallback for odd widths and the
// differential-test oracle (tests/field_kernel_test.cpp).
//
// Contract: every kernel produces the canonical (< p) representative, so
// outputs are bit-identical to the generic path. See docs/field_kernels.md
// for the dispatch scheme and the lazy-reduction accumulator bound proof.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pisces::field::kernels {

// Active limbs of the lazy dot-product accumulator for width k: 2k limbs hold
// one full product a_i*b_i < p^2, and one extra limb absorbs the carries of up
// to 2^64 summed products (n*p^2 < 2^{64(2k+1)} for n <= 2^64).
inline constexpr std::size_t WideLimbs(std::size_t k) { return 2 * k + 1; }

// CIOS Montgomery multiplication, compile-time width: r = a*b*R^{-1} mod p,
// canonical. Writes exactly K limbs of r. Aliasing r with a or b is allowed
// (the product is built in a local buffer).
template <std::size_t K>
inline void MontMulK(const std::uint64_t* p, std::uint64_t n0inv,
                     const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* r) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  u64 t[K + 2] = {0};
  for (std::size_t i = 0; i < K; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[K]) + carry;
    t[K] = static_cast<u64>(s);
    t[K + 1] = static_cast<u64>(s >> 64);

    u64 m = t[0] * n0inv;
    u128 cur = static_cast<u128>(m) * p[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < K; ++j) {
      cur = static_cast<u128>(m) * p[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[K]) + carry;
    t[K - 1] = static_cast<u64>(s);
    t[K] = t[K + 1] + static_cast<u64>(s >> 64);
  }
  // t < 2p: one conditional subtraction yields the canonical representative.
  bool ge = t[K] != 0;
  if (!ge) {
    ge = true;  // t == p also subtracts (yields zero)
    for (std::size_t i = K; i-- > 0;) {
      if (t[i] != p[i]) {
        ge = t[i] > p[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      u128 d = static_cast<u128>(t[i]) - p[i] - borrow;
      r[i] = static_cast<u64>(d);
      borrow = static_cast<u64>((d >> 64) & 1);
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) r[i] = t[i];
  }
}

// Wide square t[0..2K) = a^2, exploiting symmetry: cross products computed
// once and doubled, diagonal terms added after. ~K^2/2 limb multiplies
// versus K^2 for the generic schoolbook product.
template <std::size_t K>
inline void WideSqrK(const std::uint64_t* a, std::uint64_t* t) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  for (std::size_t i = 0; i < 2 * K; ++i) t[i] = 0;
  for (std::size_t i = 0; i < K; ++i) {
    u64 carry = 0;
    for (std::size_t j = i + 1; j < K; ++j) {
      u128 cur = static_cast<u128>(a[i]) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    t[i + K] = carry;
  }
  // Double the cross sum (2*sum < a^2 < 2^{128K}: the shifted-out bit is 0).
  u64 bit = 0;
  for (std::size_t i = 0; i < 2 * K; ++i) {
    u64 v = t[i];
    t[i] = (v << 1) | bit;
    bit = v >> 63;
  }
  // Add the diagonal a[i]^2 at limb 2i.
  u64 carry = 0;
  for (std::size_t i = 0; i < K; ++i) {
    u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 lo = static_cast<u128>(t[2 * i]) + static_cast<u64>(sq) + carry;
    t[2 * i] = static_cast<u64>(lo);
    u128 hi = static_cast<u128>(t[2 * i + 1]) + static_cast<u64>(sq >> 64) +
              static_cast<u64>(lo >> 64);
    t[2 * i + 1] = static_cast<u64>(hi);
    carry = static_cast<u64>(hi >> 64);
  }
}

// Montgomery reduction of a 2K-limb value T < R*p (K REDC steps): r =
// T*R^{-1} mod p, canonical. Clobbers t.
template <std::size_t K>
inline void MontRedcK(const std::uint64_t* p, std::uint64_t n0inv,
                      std::uint64_t* t, std::uint64_t* r) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  // Deferred-carry REDC (the mpn_redc_1 shape): step s's carry-out lands at
  // limb s+K >= K, and no later step reads a limb >= K when forming its m, so
  // all K carry limbs can be saved and added in one fixed-length pass at the
  // end. Every loop has a constant trip count -> full unrolling.
  u64 cys[K];
  for (std::size_t s = 0; s < K; ++s) {
    u64 m = t[s] * n0inv;
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      u128 cur = static_cast<u128>(m) * p[j] + t[s + j] + carry;
      t[s + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    cys[s] = carry;
  }
  u64 carry = 0;
  for (std::size_t s = 0; s < K; ++s) {
    u128 sum = static_cast<u128>(t[K + s]) + cys[s] + carry;
    t[K + s] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  const u64 extra = carry;  // virtual limb t[2K]; total < 2Rp < 2^{128K+1}
  // Result limbs are t[K..2K) plus `extra` on top; value < 2p.
  const u64* th = t + K;
  bool ge = extra != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = K; i-- > 0;) {
      if (th[i] != p[i]) {
        ge = th[i] > p[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      u128 d = static_cast<u128>(th[i]) - p[i] - borrow;
      r[i] = static_cast<u64>(d);
      borrow = static_cast<u64>((d >> 64) & 1);
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) r[i] = th[i];
  }
}

// Dedicated squaring kernel: wide square + one Montgomery reduction.
// r = a^2 * R^{-1} mod p, canonical (bit-identical to MontMulK(a, a)).
template <std::size_t K>
inline void MontSqrK(const std::uint64_t* p, std::uint64_t n0inv,
                     const std::uint64_t* a, std::uint64_t* r) {
  std::uint64_t t[2 * K];
  WideSqrK<K>(a, t);
  MontRedcK<K>(p, n0inv, t, r);
}

// Lazy-reduction accumulate: t[0..2K] += a*b with no reduction. The caller
// guarantees fewer than 2^64 accumulated products, so the carry never
// escapes limb 2K (see WideLimbs above).
template <std::size_t K>
inline void MulAccK(std::uint64_t* t, const std::uint64_t* a,
                    const std::uint64_t* b) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  for (std::size_t i = 0; i < K; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (std::size_t idx = i + K; carry != 0 && idx <= 2 * K; ++idx) {
      u128 sum = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
  }
}

// Reduce a (2K+1)-limb lazy accumulator T < 2^64 * p^2 with K+1 REDC steps:
// r = T * 2^{-64(K+1)} mod p, canonical. The extra 2^{-64} factor (relative
// to a plain T*R^{-1}) is corrected by the caller with one Montgomery
// multiplication by 2^64*R mod p (FpCtx::two64m_). t must have 2K+2 limbs
// with t[2K+1] == 0 on entry; clobbered.
//
// Bound: each step maps t -> (t + m*p)/2^64 <= t/2^64 + p, so after K+1
// steps the result is < T/2^{64(K+1)} + p <= (n/2^64)*(p^2/R) + p < 2p for
// n <= 2^64 accumulated products (p < R). One conditional subtraction.
template <std::size_t K>
inline void MontRedcWideK(const std::uint64_t* p, std::uint64_t n0inv,
                          std::uint64_t* t, std::uint64_t* r) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  // Two phases, all loops constant-trip. Phase 1 is the K-step deferred-carry
  // REDC of MontRedcK over t[0..2K), with the carry pass extended through the
  // two top limbs; it leaves V1 = (T + sum m_s p 2^{64s})/R < (2^64+1)p in
  // limbs t[K..2K+1]. (Step K below reads t[K] for its m, so t[K] must
  // already include the deferred carry cys[0] -- which is exactly what the
  // carry pass guarantees before phase 2 starts.)
  u64 cys[K];
  for (std::size_t s = 0; s < K; ++s) {
    u64 m = t[s] * n0inv;
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      u128 cur = static_cast<u128>(m) * p[j] + t[s + j] + carry;
      t[s + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    cys[s] = carry;
  }
  u64 carry = 0;
  for (std::size_t s = 0; s < K; ++s) {
    u128 sum = static_cast<u128>(t[K + s]) + cys[s] + carry;
    t[K + s] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  {
    u128 sum = static_cast<u128>(t[2 * K]) + carry;
    t[2 * K] = static_cast<u64>(sum);
    t[2 * K + 1] += static_cast<u64>(sum >> 64);
  }
  // Phase 2: one more REDC step on the (K+2)-limb window w = t+K, dividing by
  // the final 2^64: V2 <= V1/2^64 + p(1 - 2^-64) < 2p.
  u64* w = t + K;
  u64 m = w[0] * n0inv;
  carry = 0;
  for (std::size_t j = 0; j < K; ++j) {
    u128 cur = static_cast<u128>(m) * p[j] + w[j] + carry;
    w[j] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  {
    u128 sum = static_cast<u128>(w[K]) + carry;
    w[K] = static_cast<u64>(sum);
    w[K + 1] += static_cast<u64>(sum >> 64);
  }
  // Result limbs are t[K+1 .. 2K+1] (K+1 limbs); value < 2p so the top limb
  // t[2K+1] is at most 1.
  const u64* th = t + K + 1;
  bool ge = th[K] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = K; i-- > 0;) {
      if (th[i] != p[i]) {
        ge = th[i] > p[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      u128 d = static_cast<u128>(th[i]) - p[i] - borrow;
      r[i] = static_cast<u64>(d);
      borrow = static_cast<u64>((d >> 64) & 1);
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) r[i] = th[i];
  }
}

// Function-pointer bundle bound to one compile-time width. FpCtx resolves the
// table once at construction; a null table means the generic runtime-k path.
struct KernelVTable {
  std::size_t width;
  void (*mul)(const std::uint64_t* p, std::uint64_t n0inv,
              const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* r);
  void (*sqr)(const std::uint64_t* p, std::uint64_t n0inv,
              const std::uint64_t* a, std::uint64_t* r);
  void (*mul_acc)(std::uint64_t* t, const std::uint64_t* a,
                  const std::uint64_t* b);
  void (*redc_wide)(const std::uint64_t* p, std::uint64_t n0inv,
                    std::uint64_t* t, std::uint64_t* r);
};

// Table for a supported width (k in {4, 8, 16, 32}); nullptr otherwise.
const KernelVTable* KernelsForWidth(std::size_t k);

}  // namespace pisces::field::kernels
