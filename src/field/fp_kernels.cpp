#include "field/fp_kernels.h"

namespace pisces::field::kernels {

namespace {

template <std::size_t K>
constexpr KernelVTable MakeTable() {
  return KernelVTable{K, &MontMulK<K>, &MontSqrK<K>, &MulAccK<K>,
                      &MontRedcWideK<K>};
}

// One instantiation per standard field size g = 64*K in {256, 512, 1024,
// 2048}. Other widths fall back to the generic runtime-k path in fp.cpp.
constexpr KernelVTable kTable4 = MakeTable<4>();
constexpr KernelVTable kTable8 = MakeTable<8>();
constexpr KernelVTable kTable16 = MakeTable<16>();
constexpr KernelVTable kTable32 = MakeTable<32>();

}  // namespace

const KernelVTable* KernelsForWidth(std::size_t k) {
  switch (k) {
    case 4:
      return &kTable4;
    case 8:
      return &kTable8;
    case 16:
      return &kTable16;
    case 32:
      return &kTable32;
    default:
      return nullptr;
  }
}

}  // namespace pisces::field::kernels
