#include "field/primes.h"

#include "field/fp.h"

namespace pisces::field {

Bytes StandardPrimeBe(std::size_t bits) {
  // Largest prime below 2^g: 2^g - c. (Classic table of minimal c; each value
  // is re-verified by unit tests with Miller-Rabin.)
  std::uint32_t c;
  switch (bits) {
    case 256: c = 189; break;
    case 512: c = 569; break;
    case 1024: c = 105; break;
    case 2048: c = 1557; break;
    default:
      throw InvalidArgument("StandardPrimeBe: unsupported field size");
  }
  // p = (2^g - 1) - (c - 1): all-ones minus a small value.
  Bytes p(bits / 8, 0xFF);
  std::uint32_t borrow = c - 1;
  for (std::size_t i = p.size(); i-- > 0 && borrow > 0;) {
    std::uint32_t cur = p[i];
    if (cur >= (borrow & 0xFF)) {
      p[i] = static_cast<std::uint8_t>(cur - (borrow & 0xFF));
      borrow >>= 8;
    } else {
      p[i] = static_cast<std::uint8_t>(cur + 256 - (borrow & 0xFF));
      borrow = (borrow >> 8) + 1;
    }
  }
  return p;
}

namespace {

// n mod m for big-endian n and small m.
std::uint64_t ModSmall(std::span<const std::uint8_t> n_be, std::uint64_t m) {
  std::uint64_t r = 0;
  for (std::uint8_t b : n_be) r = ((r << 8) | b) % m;
  return r;
}

constexpr std::uint64_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137};

}  // namespace

bool MillerRabinIsPrime(std::span<const std::uint8_t> n_be, int rounds,
                        Rng& rng) {
  while (!n_be.empty() && n_be.front() == 0) n_be = n_be.subspan(1);
  if (n_be.empty()) return false;
  if (n_be.size() == 1 && n_be[0] < 4) return n_be[0] >= 2;  // 2, 3 prime
  if ((n_be.back() & 1) == 0) return false;
  for (std::uint64_t sp : kSmallPrimes) {
    if (ModSmall(n_be, sp) == 0) {
      // n divisible by sp: prime only if n == sp.
      return n_be.size() == 1 && n_be[0] == sp;
    }
  }

  FpCtx ctx(n_be);

  // n - 1 = 2^s * d.
  Limbs d{};
  {
    Bytes n_le(n_be.size());
    for (std::size_t i = 0; i < n_be.size(); ++i)
      n_le[i] = n_be[n_be.size() - 1 - i];
    for (std::size_t i = 0; i < n_le.size(); ++i)
      d[i / 8] |= static_cast<std::uint64_t>(n_le[i]) << (8 * (i % 8));
    d[0] -= 1;  // n odd, so no borrow
  }
  std::size_t s = 0;
  while (!GetBit(d.data(), 0)) {
    ShiftRight1(d.data(), kMaxLimbs);
    ++s;
  }
  // d as big-endian bytes.
  Bytes d_be;
  {
    std::size_t dbits = BitLengthN(d.data(), kMaxLimbs);
    std::size_t nbytes = (dbits + 7) / 8;
    d_be.resize(nbytes);
    for (std::size_t i = 0; i < nbytes; ++i) {
      std::size_t lo_byte = nbytes - 1 - i;
      d_be[i] = static_cast<std::uint8_t>(d[lo_byte / 8] >> (8 * (lo_byte % 8)));
    }
  }

  field::FpElem minus_one = ctx.Neg(ctx.One());
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2]; Random() then reject trivial values.
    FpElem a;
    do {
      a = ctx.Random(rng);
    } while (ctx.IsZero(a) || ctx.Eq(a, ctx.One()) || ctx.Eq(a, minus_one));

    FpElem x = ctx.PowBytes(a, d_be);
    if (ctx.Eq(x, ctx.One()) || ctx.Eq(x, minus_one)) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = ctx.Sqr(x);
      if (ctx.Eq(x, minus_one)) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace pisces::field
