// Low-level multiprecision limb arithmetic.
//
// All field elements in PiSCES are fixed-capacity arrays of 64-bit limbs
// (little-endian limb order) with a runtime-active width k chosen by the field
// context (g/64 limbs for a g-bit prime). Routines here are plain functions
// over limb pointers; everything modular lives in FpCtx.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pisces::field {

// Capacity: 2048-bit values (the paper's largest field size g).
inline constexpr std::size_t kMaxLimbs = 32;

using Limbs = std::array<std::uint64_t, kMaxLimbs>;

// r = a + b over k limbs; returns the carry-out (0 or 1). Aliasing allowed.
std::uint64_t AddN(std::uint64_t* r, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t k);

// r = a - b over k limbs; returns the borrow-out (0 or 1). Aliasing allowed.
std::uint64_t SubN(std::uint64_t* r, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t k);

// Returns -1, 0, +1 for a < b, a == b, a > b over k limbs.
int CmpN(const std::uint64_t* a, const std::uint64_t* b, std::size_t k);

// r[0..2k) = a * b (schoolbook). r must not alias a or b.
void MulN(std::uint64_t* r, const std::uint64_t* a, const std::uint64_t* b,
          std::size_t k);

// r[0..2k) = a * a, exploiting symmetry (cross products doubled, then the
// diagonal added): ~k^2/2 limb multiplies. r must not alias a.
void SqrN(std::uint64_t* r, const std::uint64_t* a, std::size_t k);

// Lazy accumulate t[0..2k] += a * b with no reduction; the top limb t[2k]
// absorbs the carries of up to 2^64 accumulated k-limb products. t must not
// alias a or b.
void MulAccN(std::uint64_t* t, const std::uint64_t* a, const std::uint64_t* b,
             std::size_t k);

// Conditional subtract: if a >= m then a -= m. Constant-shape (always computes
// the subtraction); used for Montgomery reduction tail.
void CondSubN(std::uint64_t* a, const std::uint64_t* m, std::size_t k);

bool IsZeroN(const std::uint64_t* a, std::size_t k);

// Number of significant bits (0 for zero).
std::size_t BitLengthN(const std::uint64_t* a, std::size_t k);

bool GetBit(const std::uint64_t* a, std::size_t bit);

// a >>= 1 over k limbs.
void ShiftRight1(std::uint64_t* a, std::size_t k);

// -m^{-1} mod 2^64 for odd m0 (the low limb of the modulus).
std::uint64_t MontgomeryN0Inv(std::uint64_t m0);

}  // namespace pisces::field
