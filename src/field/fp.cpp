#include "field/fp.h"

#include <algorithm>

#include "field/fp_kernels.h"
#include "obs/registry.h"

namespace pisces::field {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {

// Process-wide kernel instrumentation, held in the obs telemetry registry
// under "field.*" (relaxed counters only, never control flow, so they cannot
// perturb results or determinism). GetKernelStats/ResetKernelStats below
// stay as thin views over these registry entries.
struct KernelCounters {
  obs::Counter& mont_muls = obs::RegisterCounter(
      "field.mont_muls", "Montgomery multiplications (debug builds only)");
  obs::Counter& mont_sqrs = obs::RegisterCounter(
      "field.mont_sqrs", "Montgomery squarings (debug builds only)");
  obs::Counter& dot_calls =
      obs::RegisterCounter("field.dot_calls", "lazy dot outputs produced");
  obs::Counter& dot_products = obs::RegisterCounter(
      "field.dot_products", "products accumulated unreduced");
  obs::Counter& dot_reductions = obs::RegisterCounter(
      "field.dot_reductions", "wide reductions (== nonzero dot outputs)");
};
KernelCounters g_kernel_stats;

#ifndef NDEBUG
inline void CountMul() { g_kernel_stats.mont_muls.Add(); }
inline void CountSqr() { g_kernel_stats.mont_sqrs.Add(); }
#else
inline void CountMul() {}
inline void CountSqr() {}
#endif

// Generic Montgomery reduction of a 2k-limb value T < R*p (k REDC steps):
// r = T*R^{-1} mod p, canonical. Clobbers t. Runtime-k mirror of
// kernels::MontRedcK, kept separate as the differential-test oracle.
void MontRedcN(const u64* p, u64 n0inv, std::size_t k, u64* t, u64* r) {
  u64 extra = 0;  // virtual limb t[2k]
  for (std::size_t s = 0; s < k; ++s) {
    u64 m = t[s] * n0inv;
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(m) * p[j] + t[s + j] + carry;
      t[s + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (std::size_t idx = s + k; carry != 0 && idx < 2 * k; ++idx) {
      u128 sum = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
    extra += carry;
  }
  u64* th = t + k;
  if (extra != 0 || CmpN(th, p, k) >= 0) {
    SubN(r, th, p, k);
  } else {
    std::copy(th, th + k, r);
  }
}

// Generic reduction of a (2k+1)-limb lazy accumulator with k+1 REDC steps:
// r = T * 2^{-64(k+1)} mod p, canonical (< 2p before the conditional
// subtraction for any T < 2^64 * p^2; see docs/field_kernels.md for the
// bound). t must have 2k+2 limbs with t[2k+1] == 0 on entry; clobbered.
void MontRedcWideN(const u64* p, u64 n0inv, std::size_t k, u64* t, u64* r) {
  const std::size_t len = 2 * k + 2;
  for (std::size_t s = 0; s <= k; ++s) {
    u64 m = t[s] * n0inv;
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(m) * p[j] + t[s + j] + carry;
      t[s + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (std::size_t idx = s + k; carry != 0 && idx < len; ++idx) {
      u128 sum = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(sum);
      carry = static_cast<u64>(sum >> 64);
    }
  }
  u64* th = t + k + 1;
  if (th[k] != 0 || CmpN(th, p, k) >= 0) {
    SubN(r, th, p, k);
  } else {
    std::copy(th, th + k, r);
  }
}

Limbs LimbsFromBe(std::span<const std::uint8_t> be) {
  pisces::Require(be.size() <= kMaxLimbs * 8, "value too wide");
  Limbs out{};
  std::size_t limb = 0, shift = 0;
  for (std::size_t i = be.size(); i-- > 0;) {
    out[limb] |= static_cast<u64>(be[i]) << shift;
    shift += 8;
    if (shift == 64) {
      shift = 0;
      ++limb;
    }
  }
  return out;
}

}  // namespace

KernelStatsSnapshot GetKernelStats() {
  KernelStatsSnapshot s;
  s.mont_muls = g_kernel_stats.mont_muls.Load();
  s.mont_sqrs = g_kernel_stats.mont_sqrs.Load();
  s.dot_calls = g_kernel_stats.dot_calls.Load();
  s.dot_products = g_kernel_stats.dot_products.Load();
  s.dot_reductions = g_kernel_stats.dot_reductions.Load();
  return s;
}

void ResetKernelStats() {
  g_kernel_stats.mont_muls.Reset();
  g_kernel_stats.mont_sqrs.Reset();
  g_kernel_stats.dot_calls.Reset();
  g_kernel_stats.dot_products.Reset();
  g_kernel_stats.dot_reductions.Reset();
}

FpCtx::FpCtx(std::span<const std::uint8_t> modulus_be,
             KernelDispatch dispatch) {
  while (!modulus_be.empty() && modulus_be.front() == 0)
    modulus_be = modulus_be.subspan(1);
  Require(!modulus_be.empty(), "FpCtx: empty modulus");
  p_ = LimbsFromBe(modulus_be);
  bits_ = BitLengthN(p_.data(), kMaxLimbs);
  Require(bits_ > 8, "FpCtx: modulus too small");
  k_ = (bits_ + 63) / 64;
  Require((p_[0] & 1) != 0, "FpCtx: modulus must be odd");
  // Montgomery reduction with a single trailing conditional subtraction needs
  // the intermediate value < 2p, which holds when the modulus occupies the
  // top bit of its limb span.
  Require(bits_ > 64 * (k_ - 1), "FpCtx: modulus top limb must be nonzero");
  n0inv_ = MontgomeryN0Inv(p_[0]);

  // R mod p by repeated modular doubling of 1, then continue to R^2 mod p.
  Limbs x{};
  x[0] = 1;
  // 1 < p always; double 64k times to get R mod p.
  auto double_mod = [&](Limbs& a) {
    u64 carry = AddN(a.data(), a.data(), a.data(), k_);
    if (carry) {
      SubN(a.data(), a.data(), p_.data(), k_);
    } else {
      CondSubN(a.data(), p_.data(), k_);
    }
  };
  for (std::size_t i = 0; i < 64 * k_; ++i) double_mod(x);
  one_.v = x;  // R mod p == Montgomery form of 1
  // 64 more doublings of R mod p give 2^64 * R mod p, the fixup constant for
  // the lazy dot-product reduction (which divides by an extra 2^64).
  Limbs y = x;
  for (std::size_t i = 0; i < 64; ++i) double_mod(y);
  two64m_.v = y;
  for (std::size_t i = 0; i < 64 * k_; ++i) double_mod(x);
  r2_.v = x;  // R^2 mod p

  if (dispatch == KernelDispatch::kAuto) {
    kernels_ = kernels::KernelsForWidth(k_);
    if (kernels_ != nullptr) kernel_width_ = k_;
  }
}

void FpCtx::MulInto(const u64* a, const u64* b, u64* r) const {
  CountMul();
  if (kernels_ != nullptr) {
    kernels_->mul(p_.data(), n0inv_, a, b, r);
  } else {
    MontMul(a, b, r);
  }
}

void FpCtx::MontMul(const u64* a, const u64* b, u64* r) const {
  // CIOS Montgomery multiplication: r = a*b*R^{-1} mod p.
  u64 t[kMaxLimbs + 2] = {0};
  const std::size_t k = k_;
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(s);
    t[k + 1] = static_cast<u64>(s >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * p; t >>= 64.
    u64 m = t[0] * n0inv_;
    u128 cur = static_cast<u128>(m) * p_[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      cur = static_cast<u128>(m) * p_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(s);
    t[k] = t[k + 1] + static_cast<u64>(s >> 64);
  }
  // t < 2p here (given top-limb-occupied modulus); one conditional subtract.
  if (t[k] != 0 || CmpN(t, p_.data(), k) >= 0) {
    SubN(t, t, p_.data(), k);
  }
  std::copy(t, t + k, r);
  for (std::size_t j = k; j < kMaxLimbs; ++j) r[j] = 0;
}

FpElem FpCtx::ToMont(const Limbs& raw) const {
  FpElem out;
  MulInto(raw.data(), r2_.v.data(), out.v.data());
  return out;
}

Limbs FpCtx::FromMont(const FpElem& a) const {
  Limbs one{};
  one[0] = 1;
  Limbs out{};
  MulInto(a.v.data(), one.data(), out.data());
  return out;
}

FpElem FpCtx::FromUint64(u64 x) const {
  Limbs raw{};
  raw[0] = x;
  Require(k_ > 1 || CmpN(raw.data(), p_.data(), k_) < 0,
          "FromUint64: value >= modulus");
  return ToMont(raw);
}

FpElem FpCtx::FromBytes(std::span<const std::uint8_t> le) const {
  Require(le.size() <= elem_bytes(), "FromBytes: too many bytes");
  Limbs raw{};
  for (std::size_t i = 0; i < le.size(); ++i) {
    raw[i / 8] |= static_cast<u64>(le[i]) << (8 * (i % 8));
  }
  Require(CmpN(raw.data(), p_.data(), k_) < 0, "FromBytes: value >= modulus");
  return ToMont(raw);
}

Bytes FpCtx::ToBytes(const FpElem& a) const {
  Limbs raw = FromMont(a);
  Bytes out(elem_bytes());
  for (std::size_t i = 0; i < k_; ++i) StoreLe64(raw[i], out.data() + 8 * i);
  return out;
}

u64 FpCtx::ToUint64(const FpElem& a) const {
  Limbs raw = FromMont(a);
  for (std::size_t i = 1; i < k_; ++i)
    Require(raw[i] == 0, "ToUint64: value does not fit");
  return raw[0];
}

FpElem FpCtx::Add(const FpElem& a, const FpElem& b) const {
  FpElem r;
  u64 carry = AddN(r.v.data(), a.v.data(), b.v.data(), k_);
  if (carry) {
    SubN(r.v.data(), r.v.data(), p_.data(), k_);
  } else {
    CondSubN(r.v.data(), p_.data(), k_);
  }
  return r;
}

FpElem FpCtx::Sub(const FpElem& a, const FpElem& b) const {
  FpElem r;
  u64 borrow = SubN(r.v.data(), a.v.data(), b.v.data(), k_);
  if (borrow) AddN(r.v.data(), r.v.data(), p_.data(), k_);
  return r;
}

FpElem FpCtx::Neg(const FpElem& a) const { return Sub(Zero(), a); }

FpElem FpCtx::Mul(const FpElem& a, const FpElem& b) const {
  FpElem r;
  MulInto(a.v.data(), b.v.data(), r.v.data());
  return r;
}

FpElem FpCtx::Sqr(const FpElem& a) const {
  CountSqr();
  FpElem r;
  if (kernels_ != nullptr) {
    kernels_->sqr(p_.data(), n0inv_, a.v.data(), r.v.data());
  } else {
    u64 t[2 * kMaxLimbs];
    SqrN(t, a.v.data(), k_);
    MontRedcN(p_.data(), n0inv_, k_, t, r.v.data());
  }
  return r;
}

void FpCtx::AccMulAdd(u64* t, const FpElem& a, const FpElem& b) const {
  g_kernel_stats.dot_products.Add();
  if (kernels_ != nullptr) {
    kernels_->mul_acc(t, a.v.data(), b.v.data());
  } else {
    MulAccN(t, a.v.data(), b.v.data(), k_);
  }
}

FpElem FpCtx::AccReduce(const u64* t, std::uint64_t n_products) const {
  g_kernel_stats.dot_calls.Add();
  if (n_products == 0) return Zero();
  g_kernel_stats.dot_reductions.Add();
  // Copy: the reduction is destructive, but a DotAcc may keep accumulating.
  u64 w[2 * kMaxLimbs + 2];
  std::copy(t, t + 2 * k_ + 1, w);
  w[2 * k_ + 1] = 0;
  FpElem u;
  if (kernels_ != nullptr) {
    kernels_->redc_wide(p_.data(), n0inv_, w, u.v.data());
  } else {
    MontRedcWideN(p_.data(), n0inv_, k_, w, u.v.data());
  }
  // The wide reduction divided by R*2^64; one multiply by 2^64*R mod p
  // restores the plain Montgomery factor: result = (sum a_i*b_i)*R^{-1} mod p.
  FpElem r;
  MulInto(u.v.data(), two64m_.v.data(), r.v.data());
  return r;
}

FpElem FpCtx::Dot(std::span<const FpElem> a, std::span<const FpElem> b) const {
  Require(a.size() == b.size(), "Dot: size mismatch");
  if (a.empty()) {
    g_kernel_stats.dot_calls.Add();
    return Zero();
  }
  u64 t[2 * kMaxLimbs + 2] = {0};
  if (kernels_ != nullptr) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      kernels_->mul_acc(t, a[i].v.data(), b[i].v.data());
    }
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) {
      MulAccN(t, a[i].v.data(), b[i].v.data(), k_);
    }
  }
  g_kernel_stats.dot_products.Add(a.size());
  g_kernel_stats.dot_calls.Add();
  g_kernel_stats.dot_reductions.Add();
  FpElem u;
  if (kernels_ != nullptr) {
    kernels_->redc_wide(p_.data(), n0inv_, t, u.v.data());
  } else {
    MontRedcWideN(p_.data(), n0inv_, k_, t, u.v.data());
  }
  FpElem r;
  MulInto(u.v.data(), two64m_.v.data(), r.v.data());
  return r;
}

FpElem FpCtx::PowBytes(const FpElem& a, std::span<const std::uint8_t> e_be) const {
  FpElem acc = One();
  bool started = false;
  for (std::uint8_t byte : e_be) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) acc = Sqr(acc);
      if ((byte >> bit) & 1) {
        acc = Mul(acc, a);
        started = true;
      } else if (!started) {
        // skip leading zeros
      }
    }
  }
  return acc;
}

FpElem FpCtx::PowUint64(const FpElem& a, u64 e) const {
  std::uint8_t be[8];
  for (int i = 0; i < 8; ++i) be[i] = static_cast<std::uint8_t>(e >> (8 * (7 - i)));
  return PowBytes(a, be);
}

FpElem FpCtx::Inv(const FpElem& a) const {
  Require(!IsZero(a), "Inv: zero has no inverse");
  // exponent = p - 2, big-endian.
  Limbs e = p_;
  Limbs two{};
  two[0] = 2;
  SubN(e.data(), e.data(), two.data(), k_);
  Bytes be(k_ * 8);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t b = 0; b < 8; ++b) {
      be[k_ * 8 - 1 - (8 * i + b)] = static_cast<std::uint8_t>(e[i] >> (8 * b));
    }
  }
  return PowBytes(a, be);
}

void FpCtx::BatchInv(std::span<FpElem> elems) const {
  if (elems.empty()) return;
  // A zero element would silently poison every prefix product from its
  // position on (Inv of the zero total is 0^{p-2} = 0, so the unwind would
  // hand back garbage for ALL entries, not just the zero one). Scan first --
  // one cheap limb compare per element -- and take the compacting path only
  // when a zero is actually present, so the common all-nonzero case runs the
  // straight-line trick unchanged.
  bool has_zero = false;
  for (const FpElem& e : elems) {
    if (IsZero(e)) {
      has_zero = true;
      break;
    }
  }
  if (has_zero) {
    // Invert the nonzero entries through a compacted view; zeros stay zero
    // (0 has no inverse; callers that require invertibility must check, as
    // the interpolation paths do via their duplicate-point guards).
    std::vector<FpElem> nz;
    nz.reserve(elems.size());
    for (const FpElem& e : elems) {
      if (!IsZero(e)) nz.push_back(e);
    }
    if (nz.empty()) return;
    BatchInv(nz);
    std::size_t j = 0;
    for (FpElem& e : elems) {
      if (!IsZero(e)) e = nz[j++];
    }
    return;
  }
  // prefix[i] = e_0 * ... * e_i
  std::vector<FpElem> prefix(elems.size());
  prefix[0] = elems[0];
  for (std::size_t i = 1; i < elems.size(); ++i) {
    prefix[i] = Mul(prefix[i - 1], elems[i]);
  }
  FpElem inv_all = Inv(prefix.back());
  for (std::size_t i = elems.size(); i-- > 1;) {
    FpElem inv_i = Mul(inv_all, prefix[i - 1]);
    inv_all = Mul(inv_all, elems[i]);
    elems[i] = inv_i;
  }
  elems[0] = inv_all;
}

bool FpCtx::IsZero(const FpElem& a) const {
  return IsZeroN(a.v.data(), k_);
}

FpElem FpCtx::Random(Rng& rng) const {
  Limbs raw{};
  const u64 top_mask =
      (bits_ % 64 == 0) ? ~u64{0} : ((u64{1} << (bits_ % 64)) - 1);
  for (;;) {
    for (std::size_t i = 0; i < k_; ++i) raw[i] = rng.Next();
    raw[k_ - 1] &= top_mask;
    if (CmpN(raw.data(), p_.data(), k_) < 0) break;
  }
  // Montgomery form of a uniform raw value is uniform.
  FpElem out;
  out.v = raw;
  return out;
}

FpElem FpCtx::RandomNonZero(Rng& rng) const {
  for (;;) {
    FpElem e = Random(rng);
    if (!IsZero(e)) return e;
  }
}

Bytes FpCtx::ModulusBytes() const {
  Bytes out;
  bool started = false;
  for (std::size_t i = k_; i-- > 0;) {
    for (int b = 7; b >= 0; --b) {
      auto byte = static_cast<std::uint8_t>(p_[i] >> (8 * b));
      if (byte != 0) started = true;
      if (started) out.push_back(byte);
    }
  }
  return out;
}

Bytes SerializeElems(const FpCtx& ctx, std::span<const FpElem> elems) {
  Bytes out;
  out.reserve(elems.size() * ctx.elem_bytes());
  for (const FpElem& e : elems) {
    Bytes one = ctx.ToBytes(e);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

std::vector<FpElem> DeserializeElems(const FpCtx& ctx,
                                     std::span<const std::uint8_t> data) {
  const std::size_t sz = ctx.elem_bytes();
  if (data.size() % sz != 0) throw ParseError("DeserializeElems: ragged data");
  std::vector<FpElem> out;
  out.reserve(data.size() / sz);
  for (std::size_t off = 0; off < data.size(); off += sz) {
    out.push_back(ctx.FromBytes(data.subspan(off, sz)));
  }
  return out;
}

}  // namespace pisces::field
