#include "field/limbs.h"

namespace pisces::field {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

u64 AddN(u64* r, const u64* a, const u64* b, std::size_t k) {
  u64 carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    r[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  return carry;
}

u64 SubN(u64* r, const u64* a, const u64* b, std::size_t k) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    r[i] = static_cast<u64>(d);
    borrow = static_cast<u64>((d >> 64) & 1);
  }
  return borrow;
}

int CmpN(const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

void MulN(u64* r, const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = 0; i < 2 * k; ++i) r[i] = 0;
  for (std::size_t i = 0; i < k; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r[i + k] = carry;
  }
}

void SqrN(u64* r, const u64* a, std::size_t k) {
  for (std::size_t i = 0; i < 2 * k; ++i) r[i] = 0;
  // Cross products a[i]*a[j] for i < j, computed once.
  for (std::size_t i = 0; i < k; ++i) {
    u64 carry = 0;
    for (std::size_t j = i + 1; j < k; ++j) {
      u128 cur = static_cast<u128>(a[i]) * a[j] + r[i + j] + carry;
      r[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r[i + k] = carry;
  }
  // Double (2*cross < a^2 < 2^{128k}: the shifted-out bit is always 0).
  u64 bit = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    u64 v = r[i];
    r[i] = (v << 1) | bit;
    bit = v >> 63;
  }
  // Diagonal a[i]^2 at limb 2i.
  u64 carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 lo = static_cast<u128>(r[2 * i]) + static_cast<u64>(sq) + carry;
    r[2 * i] = static_cast<u64>(lo);
    u128 hi = static_cast<u128>(r[2 * i + 1]) + static_cast<u64>(sq >> 64) +
              static_cast<u64>(lo >> 64);
    r[2 * i + 1] = static_cast<u64>(hi);
    carry = static_cast<u64>(hi >> 64);
  }
}

void MulAccN(u64* t, const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (std::size_t idx = i + k; carry != 0 && idx <= 2 * k; ++idx) {
      u128 s = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
}

void CondSubN(u64* a, const u64* m, std::size_t k) {
  if (CmpN(a, m, k) >= 0) SubN(a, a, m, k);
}

bool IsZeroN(const u64* a, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i)
    if (a[i] != 0) return false;
  return true;
}

std::size_t BitLengthN(const u64* a, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != 0) {
      std::size_t bits = 64;
      u64 v = a[i];
      while (!(v >> 63)) {
        v <<= 1;
        --bits;
      }
      return i * 64 + bits;
    }
  }
  return 0;
}

bool GetBit(const u64* a, std::size_t bit) {
  return (a[bit / 64] >> (bit % 64)) & 1;
}

void ShiftRight1(u64* a, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    u64 hi = (i + 1 < k) ? a[i + 1] : 0;
    a[i] = (a[i] >> 1) | (hi << 63);
  }
}

u64 MontgomeryN0Inv(u64 m0) {
  // Newton iteration: x_{n+1} = x_n (2 - m0 x_n) doubles correct low bits.
  u64 x = m0;  // correct to 3 bits for odd m0
  for (int i = 0; i < 6; ++i) x *= 2 - m0 * x;
  return ~x + 1;  // -(m0^{-1}) mod 2^64
}

}  // namespace pisces::field
