// Prime-field arithmetic F_p with Montgomery representation.
//
// An FpCtx is constructed from an odd modulus (the standard g-bit primes live
// in field/primes.h) and owns all arithmetic. FpElem values are opaque
// fixed-capacity limb arrays kept internally in Montgomery form; they are only
// meaningful relative to the context that produced them. This mirrors the
// paper's parameter g (the size of the underlying prime field), which is swept
// from 256 to 2048 bits in the evaluation.
//
// The context also works for any odd modulus (Montgomery requires only
// oddness); modular exponentiation with non-prime-field use is what the
// Schnorr signature substrate builds on. Inv() requires a prime modulus.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "field/limbs.h"

namespace pisces::field {

// A field element in Montgomery form. Unused high limbs are always zero, so
// default equality over the whole array is exact.
struct FpElem {
  Limbs v{};

  bool operator==(const FpElem&) const = default;
};

class FpCtx {
 public:
  // big-endian modulus bytes; modulus must be odd and > 2.
  explicit FpCtx(std::span<const std::uint8_t> modulus_be);

  std::size_t limbs() const { return k_; }
  std::size_t bits() const { return bits_; }
  // Serialized size of one element (little-endian limb dump of k_ limbs).
  std::size_t elem_bytes() const { return k_ * 8; }
  // Bytes of application payload that always fit in one element (see codec).
  std::size_t payload_bytes() const { return (bits_ - 1) / 8; }

  FpElem Zero() const { return FpElem{}; }
  FpElem One() const { return one_; }

  FpElem FromUint64(std::uint64_t x) const;
  // Little-endian bytes, at most elem_bytes(), value must be < p.
  FpElem FromBytes(std::span<const std::uint8_t> le) const;
  Bytes ToBytes(const FpElem& a) const;
  // value as u64 (throws if it does not fit); mostly for tests.
  std::uint64_t ToUint64(const FpElem& a) const;

  FpElem Add(const FpElem& a, const FpElem& b) const;
  FpElem Sub(const FpElem& a, const FpElem& b) const;
  FpElem Neg(const FpElem& a) const;
  FpElem Mul(const FpElem& a, const FpElem& b) const;
  FpElem Sqr(const FpElem& a) const { return Mul(a, a); }
  // a^e where e is given as big-endian bytes. Not constant-time (see rng.h
  // note: the simulator models crypto, the PSS privacy is information
  // theoretic).
  FpElem PowBytes(const FpElem& a, std::span<const std::uint8_t> e_be) const;
  // a^e for small exponents.
  FpElem PowUint64(const FpElem& a, std::uint64_t e) const;
  // a^{p-2}; requires prime modulus and a != 0.
  FpElem Inv(const FpElem& a) const;
  // Inverts every element in place with Montgomery's batch-inversion trick:
  // one Inv plus 3(m-1) multiplications. All elements must be nonzero.
  // Interpolation over many points lives on this (a plain Inv is a full
  // modular exponentiation -- prohibitive at g = 1024/2048).
  void BatchInv(std::span<FpElem> elems) const;

  bool IsZero(const FpElem& a) const;
  bool Eq(const FpElem& a, const FpElem& b) const { return a == b; }

  // Uniform random element via rejection sampling.
  FpElem Random(Rng& rng) const;
  // Uniform random nonzero element.
  FpElem RandomNonZero(Rng& rng) const;

  // Modulus as big-endian bytes (as passed in, minus leading zeros).
  Bytes ModulusBytes() const;

 private:
  friend class FpMont;  // none; internal helpers only

  void MontMul(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* r) const;
  FpElem ToMont(const Limbs& raw) const;
  Limbs FromMont(const FpElem& a) const;

  std::size_t k_ = 0;
  std::size_t bits_ = 0;
  Limbs p_{};
  std::uint64_t n0inv_ = 0;
  FpElem r2_;   // R^2 mod p (Montgomery form of R)
  FpElem one_;  // Montgomery form of 1 (= R mod p)
};

// Convenience: serialize a vector of elements (used by wire messages).
Bytes SerializeElems(const FpCtx& ctx, std::span<const FpElem> elems);
std::vector<FpElem> DeserializeElems(const FpCtx& ctx,
                                     std::span<const std::uint8_t> data);

}  // namespace pisces::field
