// Prime-field arithmetic F_p with Montgomery representation.
//
// An FpCtx is constructed from an odd modulus (the standard g-bit primes live
// in field/primes.h) and owns all arithmetic. FpElem values are opaque
// fixed-capacity limb arrays kept internally in Montgomery form; they are only
// meaningful relative to the context that produced them. This mirrors the
// paper's parameter g (the size of the underlying prime field), which is swept
// from 256 to 2048 bits in the evaluation.
//
// The context also works for any odd modulus (Montgomery requires only
// oddness); modular exponentiation with non-prime-field use is what the
// Schnorr signature substrate builds on. Inv() requires a prime modulus.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "field/limbs.h"

namespace pisces::field {

namespace kernels {
struct KernelVTable;  // width-specialized fast path (field/fp_kernels.h)
}  // namespace kernels

// A field element in Montgomery form. Unused high limbs are always zero, so
// default equality over the whole array is exact.
struct FpElem {
  Limbs v{};

  bool operator==(const FpElem&) const = default;
};

// Process-wide instrumentation for the kernel layer (docs/field_kernels.md).
// The dot counters are always live (one relaxed atomic bump per Dot call,
// amortized over n products); the per-multiply counters are debug-only so the
// release hot path stays untouched.
struct KernelStatsSnapshot {
  std::uint64_t mont_muls = 0;       // debug builds only (0 under NDEBUG)
  std::uint64_t mont_sqrs = 0;       // debug builds only (0 under NDEBUG)
  std::uint64_t dot_calls = 0;       // Dot() calls + DotAcc::Reduce() calls
  std::uint64_t dot_products = 0;    // products accumulated without reduction
  std::uint64_t dot_reductions = 0;  // wide reductions: exactly 1 per output
};
KernelStatsSnapshot GetKernelStats();
void ResetKernelStats();

// Kernel selection policy for FpCtx: kAuto binds the width-specialized
// kernels when the modulus width is one of the standard sizes (k in
// {4, 8, 16, 32} limbs); kGeneric forces the runtime-width path, which the
// differential tests use as the oracle.
enum class KernelDispatch { kAuto, kGeneric };

class FpCtx {
 public:
  // big-endian modulus bytes; modulus must be odd and > 2.
  explicit FpCtx(std::span<const std::uint8_t> modulus_be,
                 KernelDispatch dispatch = KernelDispatch::kAuto);

  std::size_t limbs() const { return k_; }
  std::size_t bits() const { return bits_; }
  // Compile-time limb width of the bound fast-path kernels, or 0 when the
  // generic runtime-width path is active (odd widths / kGeneric).
  std::size_t kernel_width() const { return kernel_width_; }
  // Serialized size of one element (little-endian limb dump of k_ limbs).
  std::size_t elem_bytes() const { return k_ * 8; }
  // Bytes of application payload that always fit in one element (see codec).
  std::size_t payload_bytes() const { return (bits_ - 1) / 8; }

  FpElem Zero() const { return FpElem{}; }
  FpElem One() const { return one_; }

  FpElem FromUint64(std::uint64_t x) const;
  // Little-endian bytes, at most elem_bytes(), value must be < p.
  FpElem FromBytes(std::span<const std::uint8_t> le) const;
  Bytes ToBytes(const FpElem& a) const;
  // value as u64 (throws if it does not fit); mostly for tests.
  std::uint64_t ToUint64(const FpElem& a) const;

  FpElem Add(const FpElem& a, const FpElem& b) const;
  FpElem Sub(const FpElem& a, const FpElem& b) const;
  FpElem Neg(const FpElem& a) const;
  FpElem Mul(const FpElem& a, const FpElem& b) const;
  // Dedicated squaring kernel (cross products computed once and doubled);
  // bit-identical to Mul(a, a). Pow's square step rides on this.
  FpElem Sqr(const FpElem& a) const;
  // Lazy-reduction dot product: sum_i a[i]*b[i] with ONE Montgomery reduction
  // for the whole sum instead of one per product. Bit-identical to the naive
  // Add(Mul(...)) loop; a.size() must equal b.size(). The inner loops of
  // MulVec, Lagrange weight application, and VSS deal/transform live on this.
  FpElem Dot(std::span<const FpElem> a, std::span<const FpElem> b) const;
  // a^e where e is given as big-endian bytes. Not constant-time (see rng.h
  // note: the simulator models crypto, the PSS privacy is information
  // theoretic).
  FpElem PowBytes(const FpElem& a, std::span<const std::uint8_t> e_be) const;
  // a^e for small exponents.
  FpElem PowUint64(const FpElem& a, std::uint64_t e) const;
  // a^{p-2}; requires prime modulus and a != 0.
  FpElem Inv(const FpElem& a) const;
  // Inverts every element in place with Montgomery's batch-inversion trick:
  // one Inv plus 3(m-1) multiplications. Zero elements are left at zero (0
  // has no inverse): the all-nonzero fast path is guarded by a cheap scan,
  // and a batch containing zeros is inverted through a compacted view rather
  // than letting a zero prefix product poison every later entry.
  // Interpolation over many points lives on this (a plain Inv is a full
  // modular exponentiation -- prohibitive at g = 1024/2048).
  void BatchInv(std::span<FpElem> elems) const;

  bool IsZero(const FpElem& a) const;
  bool Eq(const FpElem& a, const FpElem& b) const { return a == b; }

  // Uniform random element via rejection sampling.
  FpElem Random(Rng& rng) const;
  // Uniform random nonzero element.
  FpElem RandomNonZero(Rng& rng) const;

  // Modulus as big-endian bytes (as passed in, minus leading zeros).
  Bytes ModulusBytes() const;

 private:
  friend class DotAcc;

  // Generic runtime-width CIOS multiply: the fallback for odd widths and the
  // oracle the specialized kernels are differentially tested against.
  void MontMul(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* r) const;
  // Dispatched multiply: specialized kernel when bound, generic otherwise.
  // Writes k_ limbs; the caller's destination high limbs must already be 0.
  void MulInto(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* r) const;
  // Lazy-accumulator primitives behind Dot/DotAcc (see docs/field_kernels.md).
  // AccReduce copies the accumulator before the (destructive) reduction, so a
  // DotAcc can keep accumulating after a Reduce.
  void AccMulAdd(std::uint64_t* t, const FpElem& a, const FpElem& b) const;
  FpElem AccReduce(const std::uint64_t* t, std::uint64_t n_products) const;
  FpElem ToMont(const Limbs& raw) const;
  Limbs FromMont(const FpElem& a) const;

  std::size_t k_ = 0;
  std::size_t bits_ = 0;
  Limbs p_{};
  std::uint64_t n0inv_ = 0;
  FpElem r2_;      // R^2 mod p (Montgomery form of R)
  FpElem one_;     // Montgomery form of 1 (= R mod p)
  FpElem two64m_;  // Montgomery form of 2^64: fixes up the wide reduction
  const kernels::KernelVTable* kernels_ = nullptr;  // null => generic path
  std::size_t kernel_width_ = 0;
};

// Streaming lazy-reduction accumulator for dot products whose terms are not
// contiguous in memory (e.g. the VSS transform accumulating over dealers).
// MulAdd accumulates double-width products with no reduction; Reduce performs
// the single Montgomery reduction and returns the canonical sum, bit-identical
// to folding Add(Mul(...)) term by term. At most 2^64 - 1 products may be
// accumulated between resets (the overflow bound; see docs/field_kernels.md).
class DotAcc {
 public:
  explicit DotAcc(const FpCtx& ctx) : ctx_(&ctx) {}

  void MulAdd(const FpElem& a, const FpElem& b) {
    ctx_->AccMulAdd(t_.data(), a, b);
    ++n_;
  }
  FpElem Reduce() const { return ctx_->AccReduce(t_.data(), n_); }
  void Reset() {
    t_.fill(0);
    n_ = 0;
  }
  std::uint64_t products() const { return n_; }

 private:
  const FpCtx* ctx_;
  // 2k+1 active limbs plus one headroom limb for the reduction steps.
  std::array<std::uint64_t, 2 * kMaxLimbs + 2> t_{};
  std::uint64_t n_ = 0;
};

// Convenience: serialize a vector of elements (used by wire messages).
Bytes SerializeElems(const FpCtx& ctx, std::span<const FpElem> elems);
std::vector<FpElem> DeserializeElems(const FpCtx& ctx,
                                     std::span<const std::uint8_t> data);

}  // namespace pisces::field
