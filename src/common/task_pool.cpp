#include "common/task_pool.h"

#include <algorithm>
#include <memory>

#include "common/clock.h"
#include "common/error.h"

namespace pisces {

namespace {
// Nesting guard: a ParallelFor issued from inside another parallel section
// (on any thread) runs inline. Depth is per thread, so independent pools in
// tests do not interfere.
thread_local int g_parallel_depth = 0;
}  // namespace

TaskPool::TaskPool(std::size_t threads) {
  const std::size_t workers = threads == 0 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

std::pair<std::size_t, std::size_t> TaskPool::ChunkBounds(std::size_t begin,
                                                          std::size_t end,
                                                          std::size_t chunks,
                                                          std::size_t c) {
  const std::size_t range = end - begin;
  const std::size_t base = range / chunks;
  const std::size_t extra = range % chunks;  // first `extra` chunks get +1
  const std::size_t lo = begin + c * base + std::min(c, extra);
  const std::size_t hi = lo + base + (c < extra ? 1 : 0);
  return {lo, hi};
}

void TaskPool::ParallelChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::uint64_t* extra_cpu_ns, std::size_t max_workers) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t chunks =
      std::min({threads(), std::max<std::size_t>(1, max_workers), range});
  if (chunks == 1 || g_parallel_depth > 0) {
    // Serial (or nested) execution: no synchronization, no worker CPU.
    ++g_parallel_depth;
    try {
      obs::Span span(obs::SpanKind::kPoolChunk, 0, 1);
      fn(begin, end);
    } catch (...) {
      --g_parallel_depth;
      throw;
    }
    --g_parallel_depth;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.fn = &fn;
    job_.begin = begin;
    job_.end = end;
    job_.chunks = chunks;
    job_.remaining = chunks - 1;  // chunk 0 runs on the caller
    job_.worker_cpu_ns = 0;
    job_.trace = obs::CurrentTraceContext();
    job_.error = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller executes chunk 0; its CPU time is visible to the caller's own
  // thread-CPU clock, so it is deliberately NOT added to worker_cpu_ns.
  ++g_parallel_depth;
  std::exception_ptr caller_error;
  auto [lo, hi] = ChunkBounds(begin, end, chunks, 0);
  try {
    obs::Span span(obs::SpanKind::kPoolChunk, 0, chunks);
    fn(lo, hi);
  } catch (...) {
    caller_error = std::current_exception();
  }
  --g_parallel_depth;

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return job_.remaining == 0; });
  job_.fn = nullptr;
  if (extra_cpu_ns != nullptr) *extra_cpu_ns += job_.worker_cpu_ns;
  std::exception_ptr error = caller_error ? caller_error : job_.error;
  job_.error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void TaskPool::ParallelFor(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t)>& fn,
                           std::uint64_t* extra_cpu_ns,
                           std::size_t max_workers) {
  ParallelChunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      extra_cpu_ns, max_workers);
}

void TaskPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = generation_;
    // Static assignment: worker w always owns chunk w+1 of this job.
    const std::size_t chunk = worker_index + 1;
    if (chunk >= job_.chunks) continue;  // no chunk for this worker
    const auto* fn = job_.fn;
    const std::size_t job_chunks = job_.chunks;
    const obs::TraceContext trace_ctx = job_.trace;
    const auto [lo, hi] =
        ChunkBounds(job_.begin, job_.end, job_.chunks, chunk);
    lock.unlock();

    const std::uint64_t cpu_start = ThreadCpuNanos();
    std::exception_ptr error;
    ++g_parallel_depth;
    try {
      obs::ScopedTraceContext trace_scope(trace_ctx);
      obs::Span span(obs::SpanKind::kPoolChunk, chunk, job_chunks);
      (*fn)(lo, hi);
    } catch (...) {
      error = std::current_exception();
    }
    --g_parallel_depth;
    const std::uint64_t cpu_delta = ThreadCpuNanos() - cpu_start;

    lock.lock();
    job_.worker_cpu_ns += cpu_delta;
    if (error && !job_.error) job_.error = error;
    if (--job_.remaining == 0) {
      lock.unlock();
      done_cv_.notify_one();
    }
  }
}

namespace {
std::unique_ptr<TaskPool>& GlobalPoolSlot() {
  static std::unique_ptr<TaskPool> pool = std::make_unique<TaskPool>(1);
  return pool;
}
}  // namespace

TaskPool& GlobalPool() { return *GlobalPoolSlot(); }

void SetGlobalPoolThreads(std::size_t threads) {
  Require(threads >= 1, "SetGlobalPoolThreads: need at least one thread");
  if (GlobalPoolSlot()->threads() == threads) return;
  GlobalPoolSlot() = std::make_unique<TaskPool>(threads);
}

void EnsureGlobalPoolThreads(std::size_t threads) {
  if (threads > GlobalPoolSlot()->threads()) {
    GlobalPoolSlot() = std::make_unique<TaskPool>(threads);
  }
}

std::size_t GlobalPoolThreads() { return GlobalPoolSlot()->threads(); }

}  // namespace pisces
