#include "common/event_loop.h"

#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>

#include "common/clock.h"
#include "common/error.h"

namespace pisces {

namespace {

std::uint32_t ToEpoll(std::uint32_t interest) {
  std::uint32_t ev = EPOLLRDHUP;
  if (interest & EventLoop::kReadable) ev |= EPOLLIN;
  if (interest & EventLoop::kWritable) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t FromEpoll(std::uint32_t ev) {
  std::uint32_t out = 0;
  if (ev & (EPOLLIN | EPOLLPRI)) out |= EventLoop::kReadable;
  if (ev & EPOLLOUT) out |= EventLoop::kWritable;
  if (ev & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) out |= EventLoop::kError;
  return out;
}

std::uint64_t NowMs() { return MonotonicNanos() / 1'000'000; }

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  Invariant(epoll_fd_ >= 0, "EventLoop: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  Invariant(wake_fd_ >= 0, "EventLoop: eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  Invariant(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
            "EventLoop: epoll_ctl(wake) failed");
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::AddFd(int fd, std::uint32_t interest, FdCallback cb) {
  Require(fds_.emplace(fd, std::move(cb)).second,
          "EventLoop::AddFd: fd already registered");
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fds_.erase(fd);
    throw InternalError("EventLoop::AddFd: epoll_ctl failed");
  }
}

void EventLoop::UpdateFd(int fd, std::uint32_t interest) {
  Require(fds_.count(fd) != 0, "EventLoop::UpdateFd: fd not registered");
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  Invariant(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
            "EventLoop::UpdateFd: epoll_ctl failed");
}

void EventLoop::RemoveFd(int fd) {
  if (fds_.erase(fd) == 0) return;
  // The fd may already be closed (EPOLL_CTL_DEL then fails with EBADF);
  // closing an fd removes it from the epoll set anyway.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::uint64_t EventLoop::AddTimer(std::uint64_t delay_ms, TimerCallback cb) {
  const std::uint64_t token = next_token_++;
  timers_.push(Timer{NowMs() + delay_ms, token});
  timer_cbs_.emplace(token, std::move(cb));
  return token;
}

void EventLoop::CancelTimer(std::uint64_t token) {
  // The heap entry stays; FireDueTimers skips tokens with no callback.
  timer_cbs_.erase(token);
}

std::size_t EventLoop::FireDueTimers() {
  std::size_t fired = 0;
  const std::uint64_t now = NowMs();
  while (!timers_.empty() && timers_.top().deadline_ms <= now) {
    const std::uint64_t token = timers_.top().token;
    timers_.pop();
    auto it = timer_cbs_.find(token);
    if (it == timer_cbs_.end()) continue;  // cancelled
    TimerCallback cb = std::move(it->second);
    timer_cbs_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

int EventLoop::TimeoutToNextTimer(int timeout_ms) const {
  // Skip cancelled heads so a cancelled short timer does not busy-poll.
  auto heap = timers_;  // cheap: tokens + deadlines only
  while (!heap.empty() && timer_cbs_.count(heap.top().token) == 0) heap.pop();
  if (heap.empty()) return timeout_ms;
  const std::uint64_t now = NowMs();
  const std::uint64_t due = heap.top().deadline_ms;
  const int until = due > now ? static_cast<int>(std::min<std::uint64_t>(
                                    due - now, 60'000))
                              : 0;
  if (timeout_ms < 0) return until;
  return std::min(timeout_ms, until);
}

std::size_t EventLoop::PollOnce(int timeout_ms) {
  std::size_t ran = FireDueTimers();
  if (ran > 0) timeout_ms = 0;  // timers may have queued I/O; don't linger

  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, TimeoutToNextTimer(timeout_ms));
  } while (n < 0 && errno == EINTR);
  Invariant(n >= 0, "EventLoop: epoll_wait failed");

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drain;
      while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;  // removed by an earlier callback
    // Copy: the callback may remove (and thereby destroy) its own entry.
    FdCallback cb = it->second;
    cb(FromEpoll(events[i].events));
    ++ran;
  }
  ran += FireDueTimers();
  return ran;
}

void EventLoop::Run() {
  stop_ = false;
  while (!stop_) PollOnce(-1);
}

void EventLoop::Stop() {
  stop_ = true;
  Wakeup();
}

void EventLoop::Wakeup() {
  const std::uint64_t one = 1;
  // write(2) on an eventfd: EINTR-retry, EAGAIN means already signaled.
  for (;;) {
    if (::write(wake_fd_, &one, sizeof(one)) >= 0 || errno != EINTR) break;
  }
}

}  // namespace pisces
