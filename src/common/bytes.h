// Small byte-buffer helpers shared across modules: hex codecs, little-endian
// integer packing, and a growable byte writer/reader pair used by the wire
// format and the file codec.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace pisces {

using Bytes = std::vector<std::uint8_t>;

std::string ToHex(std::span<const std::uint8_t> data);
Bytes FromHex(std::string_view hex);

// Little-endian fixed-width stores/loads.
void StoreLe32(std::uint32_t v, std::uint8_t* out);
void StoreLe64(std::uint64_t v, std::uint8_t* out);
std::uint32_t LoadLe32(const std::uint8_t* in);
std::uint64_t LoadLe64(const std::uint8_t* in);

// Append-only byte writer used to build wire messages.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  // Raw bytes, no length prefix.
  void Raw(std::span<const std::uint8_t> data);
  // Length-prefixed (u32) byte string.
  void Blob(std::span<const std::uint8_t> data);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Cursor-based reader matching ByteWriter. Throws ParseError on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  // Reads exactly n raw bytes.
  std::span<const std::uint8_t> Raw(std::size_t n);
  // Reads a u32 length-prefixed byte string.
  std::span<const std::uint8_t> Blob();

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace pisces
