// POSIX socket hygiene shared by every real-network component.
//
// Two classes of pitfalls are centralized here so no transport has to get
// them right independently:
//
//  * EINTR -- every blocking syscall in the net layer must retry on signal
//    interruption. The supervisor runs with SIGCHLD delivery enabled, so a
//    child reaping signal landing mid-read would otherwise surface as a bogus
//    transport error (or worse, a short write treated as success).
//  * SIGPIPE -- a peer dying mid-write must surface as a transport error
//    (EPIPE from send), never as process death. IgnoreSigpipe() is called by
//    every endpoint constructor; writes additionally pass MSG_NOSIGNAL as
//    belt-and-braces for fds that escape through other code paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sys/socket.h>
#include <sys/types.h>

namespace pisces::net {

// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
void IgnoreSigpipe();

// EINTR-retrying wrappers. Return what the syscall returns (with errno set on
// failure); they only hide the interruption case.
ssize_t RecvRetry(int fd, void* buf, std::size_t n, int flags);
ssize_t SendRetry(int fd, const void* buf, std::size_t n, int flags);
int AcceptRetry(int fd);
int ConnectRetry(int fd, const struct sockaddr* addr, unsigned addrlen);
// close() is NOT retried on EINTR (POSIX leaves the fd state unspecified and
// Linux always releases it); this wrapper just swallows the error.
void CloseQuiet(int fd);

// Reads/writes exactly n bytes, retrying short transfers and EINTR. Returns
// false on EOF or any hard error (errno preserved from the failing call).
bool ReadFull(int fd, std::uint8_t* data, std::size_t n);
bool WriteFull(int fd, const std::uint8_t* data, std::size_t n);

// Sets O_NONBLOCK (true) or clears it (false). Returns false on fcntl error.
bool SetNonBlocking(int fd, bool nonblocking);
// Disables Nagle; best-effort.
void SetNoDelay(int fd);

// Creates a loopback TCP listener on `port` (SO_REUSEADDR, backlog 64).
// Returns the listening fd; throws Error on failure.
int ListenLoopback(std::uint16_t port);

// Creates a socket and starts a connect to 127.0.0.1:port. With
// `nonblocking`, returns the fd with the connect possibly still in flight
// (errno == EINPROGRESS); completion is observed via writability + SO_ERROR.
// Returns -1 on immediate failure (socket/connect error other than
// EINPROGRESS), with the fd closed.
int ConnectLoopback(std::uint16_t port, bool nonblocking);

// SO_ERROR of a socket whose non-blocking connect completed; 0 on success.
int SocketError(int fd);

}  // namespace pisces::net
