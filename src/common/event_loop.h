// Minimal epoll-driven event loop: the reactor under the async TCP transport
// and the per-host process main loop.
//
// One thread owns the loop (the thread that calls Run or PollOnce); fd
// callbacks and timer callbacks execute on that thread, so loop-internal
// state needs no locking. The only cross-thread entry points are Wakeup()
// and Stop(), both async-signal-thin (an eventfd write).
//
// Timers are a deadline min-heap drained before each epoll_wait; epoll's
// timeout is clamped to the nearest deadline, so timer resolution is one
// poll cycle (~1 ms under load, exact when idle). That is plenty for
// heartbeat intervals and reconnect backoff, the only clients.
//
// epoll_wait and friends retry on EINTR: the supervisor keeps SIGCHLD
// deliverable and a signal mid-poll must not tear down the reactor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace pisces {

class EventLoop {
 public:
  // Bitmask passed to fd callbacks (simplified from EPOLLIN/EPOLLOUT/...).
  enum : std::uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    kError = 1u << 2,  // EPOLLERR | EPOLLHUP | EPOLLRDHUP
  };

  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` for the given interest mask (kReadable/kWritable).
  // The callback may call UpdateFd/RemoveFd on its own fd.
  void AddFd(int fd, std::uint32_t interest, FdCallback cb);
  void UpdateFd(int fd, std::uint32_t interest);
  void RemoveFd(int fd);
  bool WatchesFd(int fd) const { return fds_.count(fd) != 0; }

  // One-shot timer firing `delay_ms` from now; returns a cancel token.
  std::uint64_t AddTimer(std::uint64_t delay_ms, TimerCallback cb);
  void CancelTimer(std::uint64_t token);

  // Runs callbacks for whatever is ready, waiting at most `timeout_ms` (or
  // less if a timer is due sooner). Returns the number of callbacks run.
  // timeout_ms < 0 waits until the next event with no bound.
  std::size_t PollOnce(int timeout_ms);

  // Loops PollOnce until Stop(). Dedicated-thread mode.
  void Run();
  // Signals Run() to return; safe from any thread.
  void Stop();
  // Interrupts a PollOnce blocked in epoll_wait; safe from any thread.
  void Wakeup();

  bool stopped() const { return stop_; }

 private:
  struct Timer {
    std::uint64_t deadline_ms;
    std::uint64_t token;
  };
  struct TimerOrder {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.deadline_ms > b.deadline_ms;
    }
  };

  std::size_t FireDueTimers();
  int TimeoutToNextTimer(int timeout_ms) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::unordered_map<int, FdCallback> fds_;
  std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
  std::unordered_map<std::uint64_t, TimerCallback> timer_cbs_;
  std::uint64_t next_token_ = 1;
  std::atomic<bool> stop_{false};
};

}  // namespace pisces
