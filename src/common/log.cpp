#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pisces {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace pisces
