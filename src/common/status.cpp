#include "common/status.h"

namespace pisces {

const char* StatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kRejected: return "Rejected";
    case StatusCode::kDuplicate: return "Duplicate";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kBadRoute: return "BadRoute";
    case StatusCode::kBadSession: return "BadSession";
    case StatusCode::kFailed: return "Failed";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kBadFrame: return "BadFrame";
  }
  return "Unknown";
}

}  // namespace pisces
