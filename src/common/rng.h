// Seedable deterministic random number generation.
//
// All protocol randomness in the library flows through Rng so that every
// experiment and test is reproducible from a single seed, mirroring the
// paper's driver-controlled testbed. The generator is xoshiro256** (public
// domain algorithm by Blackman & Vigna), seeded through splitmix64.
//
// This is NOT a cryptographically secure generator; it models one. The
// security analysis of PiSCES is information-theoretic in the shares and is
// unaffected by the simulator's entropy source, and determinism is what makes
// the fault-injection and adversary tests meaningful.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace pisces {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t Next();

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t Below(std::uint64_t bound);

  void Fill(std::span<std::uint8_t> out);
  Bytes RandomBytes(std::size_t n);

  // Derives an independent child generator; used to give each simulated host
  // its own stream so per-host behaviour does not depend on scheduling order.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace pisces
