// One status vocabulary for every reply surface in the system.
//
// Before this header existed the serving frame, the serving plane's client
// API, and the coordinator's RPC helpers each spoke their own dialect: a
// wire status byte, ad-hoc bools, and log strings. StatusCode unifies them.
//
// Wire compatibility contract: the first seven values are the serving-frame
// status byte and their numeric values are FROZEN -- ServingStatus in
// net/serving_frame.h is an alias of this enum and golden vectors plus the
// structure-aware fuzzer pin the byte meanings. Codes after kFailed are
// local-only (RPC deadline expiries, transport faults); they never travel as
// a serving status byte, and ServingResponseFrame::Serialize refuses them.
#pragma once

#include <cstdint>

namespace pisces {

enum class StatusCode : std::uint8_t {
  // --- serving-frame wire values (frozen; see net/serving_frame.h) ---
  kOk = 0,
  kRejected,    // admission control: queue full; see retry_after_ms
  kDuplicate,   // upload of a file id that already exists
  kNotFound,    // download/delete of an unknown file id
  kBadRoute,    // shard header disagrees with the deterministic router
  kBadSession,  // request on a closed (or never-opened) session
  kFailed,      // backend protocol failure (quorum loss, integrity reject)

  // --- local-only codes (never serialized as a serving status byte) ---
  kTimeout,      // bounded-delay RPC deadline expired
  kUnavailable,  // peer offline / no route to host
  kBadFrame,     // payload failed structural validation
};

// Last code that may appear as a serving-frame status byte.
inline constexpr std::uint8_t kMaxWireStatus =
    static_cast<std::uint8_t>(StatusCode::kFailed);

// Stable human-readable name for traces and logs ("Ok", "Timeout", ...).
const char* StatusName(StatusCode code);

}  // namespace pisces
