#include "common/rng.h"

namespace pisces {

namespace {
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  Require(bound != 0, "Rng::Below: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % bound;
}

void Rng::Fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    StoreLe64(Next(), out.data() + i);
    i += 8;
  }
  if (i < out.size()) {
    std::uint8_t tmp[8];
    StoreLe64(Next(), tmp);
    for (std::size_t j = 0; i < out.size(); ++i, ++j) out[i] = tmp[j];
  }
}

Bytes Rng::RandomBytes(std::size_t n) {
  Bytes out(n);
  Fill(out);
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace pisces
