// Error handling primitives for the PiSCES library.
//
// Convention (per C++ Core Guidelines E.2/E.3): exceptions signal violations of
// preconditions or protocol invariants that callers cannot reasonably recover
// from in-line; recoverable runtime conditions (an unresponsive peer, a failed
// verification from an injected fault) are reported through return values on
// the specific APIs that can encounter them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace pisces {

// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Thrown when an internal invariant is violated (a library bug or memory
// corruption, never a user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

// Thrown when a wire message cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// Precondition check: throws InvalidArgument when `cond` is false.
inline void Require(bool cond, std::string_view msg) {
  if (!cond) throw InvalidArgument(std::string(msg));
}

// Invariant check: throws InternalError when `cond` is false.
inline void Invariant(bool cond, std::string_view msg) {
  if (!cond) throw InternalError(std::string(msg));
}

}  // namespace pisces
