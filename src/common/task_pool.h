// Determinism-preserving worker pool for the compute-bound protocol paths.
//
// The refresh protocol is embarrassingly parallel across blocks, dealers, and
// output rows, but the simulator's value is bit-reproducibility: the same
// seed must produce the same shares, transcripts, and CSVs under any thread
// count. The pool therefore offers exactly one primitive, a ParallelFor that
//
//   * splits [begin, end) into at most `threads()` contiguous chunks whose
//     boundaries depend only on (begin, end, chunk count) -- never on timing;
//   * requires the body to write only state owned by its index (no shared
//     accumulators, no data-dependent work stealing);
//   * runs nested invocations inline on the calling thread, so library code
//     can parallelize unconditionally without deadlocking the pool.
//
// Under that contract the result of a ParallelFor is byte-identical for any
// pool size, including 1 (where it degenerates to a plain loop with no
// synchronization at all). All protocol randomness must be drawn serially
// BEFORE entering a parallel section (see VssBatch::DrawDealRandomness).
//
// CPU accounting: thread-CPU clocks do not observe child threads, so the
// ambient CpuTimer of a caller misses work done by pool workers. Every entry
// point takes an optional `extra_cpu_ns` that accumulates the CPU time spent
// on pool worker threads (the caller's own chunk is excluded -- the caller's
// ambient timer already sees it). docs/parallelism.md has the full contract.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace pisces {

class TaskPool {
 public:
  // `threads` is total parallelism including the calling thread; the pool
  // spawns threads-1 workers. threads == 1 spawns nothing.
  explicit TaskPool(std::size_t threads = 1);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t threads() const { return workers_.size() + 1; }

  // Runs fn(chunk_begin, chunk_end) over contiguous chunks covering
  // [begin, end). At most min(threads(), max_workers, end - begin) chunks;
  // chunk c covers indices [begin + c*size .. ) with the static split below,
  // independent of scheduling. The calling thread executes chunk 0 and blocks
  // until every chunk finished. Exceptions from any chunk are rethrown on the
  // calling thread (first one in chunk order wins deterministically only when
  // a single chunk throws; treat any throw as fatal).
  void ParallelChunks(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t, std::size_t)>& fn,
                      std::uint64_t* extra_cpu_ns = nullptr,
                      std::size_t max_workers = SIZE_MAX);

  // Per-index convenience wrapper over ParallelChunks.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::uint64_t* extra_cpu_ns = nullptr,
                   std::size_t max_workers = SIZE_MAX);

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunks = 0;  // number of chunks this job was split into
    std::size_t remaining = 0;  // worker chunks not yet finished
    std::uint64_t worker_cpu_ns = 0;
    // Dispatcher's trace context, installed in each worker so chunk spans
    // parent under the protocol span that issued the job.
    obs::TraceContext trace;
    std::exception_ptr error;
  };

  // Chunk c of `chunks` over [begin, end): the canonical static split.
  static std::pair<std::size_t, std::size_t> ChunkBounds(std::size_t begin,
                                                         std::size_t end,
                                                         std::size_t chunks,
                                                         std::size_t c);

  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for remaining == 0
  std::uint64_t generation_ = 0;     // bumped per dispatched job
  Job job_;
  bool stopping_ = false;
};

// Process-wide pool shared by every protocol object (the simulator runs all
// hosts in one process; a real deployment would own one pool per host).
// Thread count does not affect any computed value -- only wall time.
TaskPool& GlobalPool();
// Replaces the global pool with one of exactly `threads` threads. Must not be
// called while a ParallelFor is in flight (the simulator's single control
// thread never does).
void SetGlobalPoolThreads(std::size_t threads);
// Grows the global pool to at least `threads`; never shrinks.
void EnsureGlobalPoolThreads(std::size_t threads);
std::size_t GlobalPoolThreads();

}  // namespace pisces
