#include "common/bytes.h"

namespace pisces {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  Require(hex.size() % 2 == 0, "FromHex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    Require(hi >= 0 && lo >= 0, "FromHex: non-hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void StoreLe32(std::uint32_t v, std::uint8_t* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void StoreLe64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t LoadLe32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint64_t LoadLe64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

void ByteWriter::U32(std::uint32_t v) {
  std::uint8_t tmp[4];
  StoreLe32(v, tmp);
  buf_.insert(buf_.end(), tmp, tmp + 4);
}

void ByteWriter::U64(std::uint64_t v) {
  std::uint8_t tmp[8];
  StoreLe64(v, tmp);
  buf_.insert(buf_.end(), tmp, tmp + 8);
}

void ByteWriter::Raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::Blob(std::span<const std::uint8_t> data) {
  U32(static_cast<std::uint32_t>(data.size()));
  Raw(data);
}

std::uint8_t ByteReader::U8() {
  if (Remaining() < 1) throw ParseError("ByteReader: underflow (u8)");
  return data_[pos_++];
}

std::uint32_t ByteReader::U32() {
  if (Remaining() < 4) throw ParseError("ByteReader: underflow (u32)");
  std::uint32_t v = LoadLe32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::U64() {
  if (Remaining() < 8) throw ParseError("ByteReader: underflow (u64)");
  std::uint64_t v = LoadLe64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::Raw(std::size_t n) {
  if (Remaining() < n) throw ParseError("ByteReader: underflow (raw)");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::Blob() {
  std::uint32_t n = U32();
  return Raw(n);
}

}  // namespace pisces
