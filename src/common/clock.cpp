#include "common/clock.h"

#include <ctime>

namespace pisces {

namespace {
std::uint64_t NanosOf(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
}  // namespace

std::uint64_t ThreadCpuNanos() { return NanosOf(CLOCK_THREAD_CPUTIME_ID); }

std::uint64_t MonotonicNanos() { return NanosOf(CLOCK_MONOTONIC); }

}  // namespace pisces
