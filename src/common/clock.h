// Time measurement utilities.
//
// The experiment harness attributes *CPU* time to each simulated host: the
// protocol genuinely executes, and CpuTimer measures the thread CPU time spent
// inside each host's compute sections. Wall-clock of the (simulated) wire is
// modeled separately by net::DelayModel.
#pragma once

#include <cstdint>

namespace pisces {

// Nanoseconds of CPU time consumed by the calling thread.
std::uint64_t ThreadCpuNanos();

// Nanoseconds of wall-clock time (monotonic).
std::uint64_t MonotonicNanos();

// Accumulating CPU-time meter. Start/Stop may be called repeatedly; nanos()
// returns the running total.
class CpuTimer {
 public:
  void Start() { start_ = ThreadCpuNanos(); running_ = true; }
  void Stop() {
    if (running_) total_ += ThreadCpuNanos() - start_;
    running_ = false;
  }
  void Reset() { total_ = 0; running_ = false; }
  std::uint64_t nanos() const { return total_; }
  double seconds() const { return static_cast<double>(total_) * 1e-9; }

 private:
  std::uint64_t start_ = 0;
  std::uint64_t total_ = 0;
  bool running_ = false;
};

// RAII guard adding a scope's CPU time to a CpuTimer.
class CpuScope {
 public:
  explicit CpuScope(CpuTimer& t) : t_(t) { t_.Start(); }
  ~CpuScope() { t_.Stop(); }
  CpuScope(const CpuScope&) = delete;
  CpuScope& operator=(const CpuScope&) = delete;

 private:
  CpuTimer& t_;
};

}  // namespace pisces
