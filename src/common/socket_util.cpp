#include "common/socket_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>

#include "common/error.h"

namespace pisces::net {

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  });
}

ssize_t RecvRetry(int fd, void* buf, std::size_t n, int flags) {
  for (;;) {
    ssize_t r = ::recv(fd, buf, n, flags);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

ssize_t SendRetry(int fd, const void* buf, std::size_t n, int flags) {
  for (;;) {
    ssize_t w = ::send(fd, buf, n, flags | MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    return w;
  }
}

int AcceptRetry(int fd) {
  for (;;) {
    // CLOEXEC: connection fds must not leak into exec'd host processes
    // (the supervisor forks children from a process full of sockets).
    int c = ::accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (c < 0 && errno == EINTR) continue;
    return c;
  }
}

int ConnectRetry(int fd, const struct sockaddr* addr, unsigned addrlen) {
  for (;;) {
    int rc = ::connect(fd, addr, addrlen);
    // A connect interrupted by a signal completes asynchronously (POSIX);
    // treat it like EINPROGRESS and let the caller observe completion.
    if (rc < 0 && errno == EINTR) {
      errno = EINPROGRESS;
      return -1;
    }
    return rc;
  }
}

void CloseQuiet(int fd) {
  if (fd >= 0) ::close(fd);
}

bool ReadFull(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = RecvRetry(fd, data + off, n - off, 0);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = SendRetry(fd, data + off, n - off, 0);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int ListenLoopback(std::uint16_t port) {
  IgnoreSigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  Require(fd >= 0, "ListenLoopback: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    CloseQuiet(fd);
    throw Error("ListenLoopback: bind/listen failed (port in use?)");
  }
  return fd;
}

int ConnectLoopback(std::uint16_t port, bool nonblocking) {
  IgnoreSigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (nonblocking && !SetNonBlocking(fd, true)) {
    CloseQuiet(fd);
    return -1;
  }
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc = ConnectRetry(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    int saved = errno;
    CloseQuiet(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int SocketError(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

}  // namespace pisces::net
