// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate the protocol.
#pragma once

#include <sstream>
#include <string>

namespace pisces {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

inline detail::LogLine LogDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine LogInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine LogWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine LogError() { return detail::LogLine(LogLevel::kError); }

}  // namespace pisces
