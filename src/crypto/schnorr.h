// Schnorr signatures over a prime-order subgroup of Z_p^*.
//
// Role in PiSCES (paper SectionIV-A "Public Key Installation" / "Secure
// Reboot"): the hypervisor holds a CA keypair; after every reboot it
// generates and signs a fresh host keypair, and the rebooted host broadcasts
// the signed key to rejoin the network. Peers verify the signature before
// accepting traffic, which is what prevents an adversary from racing a fresh
// host for network acceptance.
//
// Group parameters are DSA-style: q a 256-bit prime, p = q*m + 1 a 512-bit
// prime, g of order q. Parameters are generated deterministically from a
// fixed seed (they are public), so every process agrees on the group.
#pragma once

#include <memory>

#include "common/rng.h"
#include "field/fp.h"

namespace pisces::crypto {

class SchnorrGroup {
 public:
  // Deterministically generates a group: q_bits-bit prime order, p_bits-bit
  // modulus.
  static SchnorrGroup Generate(Rng& rng, std::size_t p_bits,
                               std::size_t q_bits);

  // Process-wide default group (512/256 bits, fixed seed).
  static const SchnorrGroup& Default();

  const field::FpCtx& p_ctx() const { return *p_ctx_; }
  const field::FpCtx& q_ctx() const { return *q_ctx_; }
  const field::FpElem& g() const { return g_; }

  // Scalar (mod q) <-> big-endian bytes of fixed q-width.
  Bytes ScalarToBe(const field::FpElem& s) const;
  field::FpElem ScalarFromBe(std::span<const std::uint8_t> be) const;

  // Digest bytes -> scalar mod q.
  field::FpElem HashToScalar(std::span<const std::uint8_t> digest) const;

 private:
  SchnorrGroup(std::shared_ptr<field::FpCtx> p_ctx,
               std::shared_ptr<field::FpCtx> q_ctx, field::FpElem g)
      : p_ctx_(std::move(p_ctx)), q_ctx_(std::move(q_ctx)), g_(g) {}

  std::shared_ptr<field::FpCtx> p_ctx_;
  std::shared_ptr<field::FpCtx> q_ctx_;
  field::FpElem g_;
};

struct SchnorrKeyPair {
  Bytes sk;  // scalar, big-endian, q-width
  Bytes pk;  // group element, serialized via p_ctx
};

struct SchnorrSignature {
  Bytes e;  // challenge scalar, big-endian q-width
  Bytes s;  // response scalar, big-endian q-width

  Bytes Serialize() const;
  static SchnorrSignature Deserialize(std::span<const std::uint8_t> data);
};

SchnorrKeyPair SchnorrKeygen(const SchnorrGroup& group, Rng& rng);

SchnorrSignature SchnorrSign(const SchnorrGroup& group,
                             std::span<const std::uint8_t> sk,
                             std::span<const std::uint8_t> msg, Rng& rng);

bool SchnorrVerify(const SchnorrGroup& group, std::span<const std::uint8_t> pk,
                   std::span<const std::uint8_t> msg,
                   const SchnorrSignature& sig);

// Static Diffie-Hellman over the group: peer_pk^sk mod p, serialized.
// Feed through HKDF to derive channel keys (see channel.h).
Bytes DhSharedSecret(const SchnorrGroup& group, std::span<const std::uint8_t> sk,
                     std::span<const std::uint8_t> peer_pk);

}  // namespace pisces::crypto
