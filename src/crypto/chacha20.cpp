#include "crypto/chacha20.h"

#include "common/error.h"

namespace pisces::crypto {

namespace {

std::uint32_t Rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                  std::uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

std::uint32_t Le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> ChaCha20Block(std::span<const std::uint8_t> key,
                                           std::span<const std::uint8_t> nonce,
                                           std::uint32_t counter) {
  Require(key.size() == kChaChaKeySize, "ChaCha20: bad key size");
  Require(nonce.size() == kChaChaNonceSize, "ChaCha20: bad nonce size");
  std::uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = Le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = Le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) w[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = w[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

void ChaCha20Xor(std::span<const std::uint8_t> key,
                 std::span<const std::uint8_t> nonce, std::uint32_t counter,
                 std::span<std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    auto block = ChaCha20Block(key, nonce, counter++);
    std::size_t take = std::min(data.size() - off, std::size_t{64});
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= block[i];
    off += take;
  }
}

}  // namespace pisces::crypto
