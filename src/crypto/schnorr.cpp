#include "crypto/schnorr.h"

#include <mutex>

#include "crypto/sha256.h"
#include "field/limbs.h"
#include "field/primes.h"

namespace pisces::crypto {

using field::FpCtx;
using field::FpElem;

namespace {

// Random prime with exactly `bits` bits (top bit forced).
Bytes RandomPrimeBe(Rng& rng, std::size_t bits) {
  Require(bits % 8 == 0, "RandomPrimeBe: bits must be byte aligned");
  for (;;) {
    Bytes cand = rng.RandomBytes(bits / 8);
    cand.front() |= 0x80;
    cand.back() |= 1;
    if (field::MillerRabinIsPrime(cand, 2, rng) &&
        field::MillerRabinIsPrime(cand, 40, rng)) {
      return cand;
    }
  }
}

Bytes BeFromLimbs(const field::Limbs& v, std::size_t nbytes) {
  Bytes out(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) {
    std::size_t lo = nbytes - 1 - i;  // byte index from LSB
    out[i] = static_cast<std::uint8_t>(v[lo / 8] >> (8 * (lo % 8)));
  }
  return out;
}

field::Limbs LimbsFromBeBytes(std::span<const std::uint8_t> be) {
  field::Limbs out{};
  std::size_t limb = 0, shift = 0;
  for (std::size_t i = be.size(); i-- > 0;) {
    out[limb] |= static_cast<std::uint64_t>(be[i]) << shift;
    shift += 8;
    if (shift == 64) { shift = 0; ++limb; }
  }
  return out;
}

}  // namespace

SchnorrGroup SchnorrGroup::Generate(Rng& rng, std::size_t p_bits,
                                    std::size_t q_bits) {
  Require(p_bits >= 2 * q_bits, "SchnorrGroup: p must be wider than q^2 scale");
  Require(p_bits % 64 == 0 && q_bits % 64 == 0,
          "SchnorrGroup: sizes must be limb aligned");
  Bytes q_be = RandomPrimeBe(rng, q_bits);
  field::Limbs q = LimbsFromBeBytes(q_be);
  const std::size_t qk = q_bits / 64;
  const std::size_t mk = (p_bits - q_bits) / 64;

  // Search p = q*m + 1 prime, with m even and sized so p has exactly p_bits.
  field::Limbs m{};
  Bytes m_be;
  for (;;) {
    m_be = rng.RandomBytes((p_bits - q_bits) / 8);
    m_be.front() |= 0xC0;  // force top bits so q*m occupies p_bits
    m_be.back() &= ~std::uint8_t{1};  // even
    m = LimbsFromBeBytes(m_be);
    std::uint64_t wide[2 * field::kMaxLimbs];
    field::MulN(wide, q.data(), m.data(), std::max(qk, mk));
    // p = q*m + 1 occupies at most qk+mk limbs.
    field::Limbs p{};
    for (std::size_t i = 0; i < qk + mk; ++i) p[i] = wide[i];
    p[0] += 1;  // q*m is even, no carry
    if (field::BitLengthN(p.data(), field::kMaxLimbs) != p_bits) continue;
    Bytes p_be = BeFromLimbs(p, p_bits / 8);
    if (!field::MillerRabinIsPrime(p_be, 2, rng)) continue;
    if (!field::MillerRabinIsPrime(p_be, 40, rng)) continue;

    auto p_ctx = std::make_shared<FpCtx>(p_be);
    auto q_ctx = std::make_shared<FpCtx>(q_be);
    // Generator: g = h^m mod p for random h; order divides q (prime), so any
    // g != 1 has order exactly q.
    for (;;) {
      FpElem h = p_ctx->Random(rng);
      if (p_ctx->IsZero(h)) continue;
      FpElem g = p_ctx->PowBytes(h, m_be);
      if (!p_ctx->Eq(g, p_ctx->One()) && !p_ctx->IsZero(g)) {
        return SchnorrGroup(std::move(p_ctx), std::move(q_ctx), g);
      }
    }
  }
}

const SchnorrGroup& SchnorrGroup::Default() {
  static std::once_flag flag;
  static std::unique_ptr<SchnorrGroup> group;
  std::call_once(flag, [] {
    Rng rng(0x5EEDF00DULL);
    group = std::make_unique<SchnorrGroup>(SchnorrGroup::Generate(rng, 512, 256));
  });
  return *group;
}

Bytes SchnorrGroup::ScalarToBe(const FpElem& s) const {
  Bytes le = q_ctx_->ToBytes(s);
  return Bytes(le.rbegin(), le.rend());
}

FpElem SchnorrGroup::ScalarFromBe(std::span<const std::uint8_t> be) const {
  Bytes le(be.rbegin(), be.rend());
  return q_ctx_->FromBytes(le);
}

FpElem SchnorrGroup::HashToScalar(std::span<const std::uint8_t> digest) const {
  // Interpret the digest as a big-endian integer and reduce mod q. q has its
  // top bit set, so a 256-bit digest needs at most one subtraction.
  field::Limbs v = LimbsFromBeBytes(digest);
  const std::size_t qk = q_ctx_->limbs();
  Require(digest.size() <= qk * 8, "HashToScalar: digest too wide");
  field::Limbs q = LimbsFromBeBytes(q_ctx_->ModulusBytes());
  field::CondSubN(v.data(), q.data(), qk);
  Bytes le(qk * 8);
  for (std::size_t i = 0; i < qk; ++i) StoreLe64(v[i], le.data() + 8 * i);
  return q_ctx_->FromBytes(le);
}

Bytes SchnorrSignature::Serialize() const {
  ByteWriter w;
  w.Blob(e);
  w.Blob(s);
  return w.Take();
}

SchnorrSignature SchnorrSignature::Deserialize(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  SchnorrSignature sig;
  auto e = r.Blob();
  auto s = r.Blob();
  sig.e.assign(e.begin(), e.end());
  sig.s.assign(s.begin(), s.end());
  return sig;
}

SchnorrKeyPair SchnorrKeygen(const SchnorrGroup& group, Rng& rng) {
  const FpCtx& q = group.q_ctx();
  const FpCtx& p = group.p_ctx();
  FpElem x = q.RandomNonZero(rng);
  Bytes x_be = group.ScalarToBe(x);
  FpElem y = p.PowBytes(group.g(), x_be);
  return SchnorrKeyPair{x_be, p.ToBytes(y)};
}

namespace {
FpElem Challenge(const SchnorrGroup& group, const Bytes& r_bytes,
                 std::span<const std::uint8_t> pk,
                 std::span<const std::uint8_t> msg) {
  Sha256 h;
  h.Update(r_bytes);
  h.Update(pk);
  h.Update(msg);
  Digest d = h.Finish();
  return group.HashToScalar(d);
}
}  // namespace

SchnorrSignature SchnorrSign(const SchnorrGroup& group,
                             std::span<const std::uint8_t> sk,
                             std::span<const std::uint8_t> msg, Rng& rng) {
  const FpCtx& p = group.p_ctx();
  const FpCtx& q = group.q_ctx();
  FpElem x = group.ScalarFromBe(sk);
  FpElem y = p.PowBytes(group.g(), sk);
  Bytes pk = p.ToBytes(y);

  FpElem k = q.RandomNonZero(rng);
  Bytes k_be = group.ScalarToBe(k);
  FpElem r = p.PowBytes(group.g(), k_be);
  Bytes r_bytes = p.ToBytes(r);

  FpElem e = Challenge(group, r_bytes, pk, msg);
  // s = k + x*e mod q
  FpElem s = q.Add(k, q.Mul(x, e));
  return SchnorrSignature{group.ScalarToBe(e), group.ScalarToBe(s)};
}

bool SchnorrVerify(const SchnorrGroup& group, std::span<const std::uint8_t> pk,
                   std::span<const std::uint8_t> msg,
                   const SchnorrSignature& sig) {
  const FpCtx& p = group.p_ctx();
  const FpCtx& q = group.q_ctx();
  if (sig.e.size() != q.elem_bytes() || sig.s.size() != q.elem_bytes()) {
    return false;
  }
  FpElem y;
  try {
    Bytes pk_le(pk.begin(), pk.end());
    y = p.FromBytes(pk_le);
  } catch (const Error&) {
    return false;
  }
  FpElem e = group.ScalarFromBe(sig.e);
  // r' = g^s * y^{-e} = g^s * y^{q-e} mod p
  FpElem neg_e = q.Neg(e);
  FpElem gs = p.PowBytes(group.g(), sig.s);
  FpElem ye = p.PowBytes(y, group.ScalarToBe(neg_e));
  FpElem r = p.Mul(gs, ye);
  FpElem e2 = Challenge(group, p.ToBytes(r), Bytes(pk.begin(), pk.end()), msg);
  return q.Eq(e, e2);
}

Bytes DhSharedSecret(const SchnorrGroup& group, std::span<const std::uint8_t> sk,
                     std::span<const std::uint8_t> peer_pk) {
  const FpCtx& p = group.p_ctx();
  Bytes pk_le(peer_pk.begin(), peer_pk.end());
  FpElem y = p.FromBytes(pk_le);
  FpElem shared = p.PowBytes(y, sk);
  return p.ToBytes(shared);
}

}  // namespace pisces::crypto
