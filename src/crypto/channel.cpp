#include "crypto/channel.h"

#include "crypto/chacha20.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace pisces::crypto {

std::pair<Bytes, Bytes> DeriveChannelKeys(std::span<const std::uint8_t> shared,
                                          std::uint32_t epoch,
                                          std::uint32_t id_lo,
                                          std::uint32_t id_hi) {
  ByteWriter info;
  info.Raw(Bytes{'p', 'i', 's', 'c', 'e', 's', '-', 'c', 'h'});
  info.U32(epoch);
  info.U32(id_lo);
  info.U32(id_hi);
  Bytes salt;  // empty salt is fine for HKDF
  Bytes okm = HkdfSha256(salt, shared, info.bytes(), 2 * (32 + 32));
  // Each direction: 32B cipher key + 32B mac key, packed together.
  Bytes lo_to_hi(okm.begin(), okm.begin() + 64);
  Bytes hi_to_lo(okm.begin() + 64, okm.end());
  return {std::move(lo_to_hi), std::move(hi_to_lo)};
}

SecureChannel::SecureChannel(Bytes send_key, Bytes recv_key)
    : send_key_(std::move(send_key)), recv_key_(std::move(recv_key)) {
  Require(send_key_.size() == 64 && recv_key_.size() == 64,
          "SecureChannel: keys must be 64 bytes (cipher||mac)");
}

namespace {
Bytes NonceFor(std::uint64_t counter) {
  Bytes nonce(kChaChaNonceSize, 0);
  StoreLe64(counter, nonce.data());
  return nonce;
}
}  // namespace

Bytes SecureChannel::Seal(std::span<const std::uint8_t> plaintext) {
  ++send_counter_;
  Bytes ct(plaintext.begin(), plaintext.end());
  Bytes nonce = NonceFor(send_counter_);
  std::span<const std::uint8_t> cipher_key(send_key_.data(), 32);
  std::span<const std::uint8_t> mac_key(send_key_.data() + 32, 32);
  ChaCha20Xor(cipher_key, nonce, 1, ct);

  ByteWriter w;
  w.U64(send_counter_);
  w.Blob(ct);
  Digest tag = HmacSha256(mac_key, w.bytes());
  w.Raw(tag);
  return w.Take();
}

std::optional<Bytes> SecureChannel::Open(std::span<const std::uint8_t> frame) {
  if (frame.size() < 8 + 4 + kSha256DigestSize) return std::nullopt;
  std::size_t body_len = frame.size() - kSha256DigestSize;
  std::span<const std::uint8_t> body = frame.subspan(0, body_len);
  std::span<const std::uint8_t> tag_bytes = frame.subspan(body_len);

  std::span<const std::uint8_t> cipher_key(recv_key_.data(), 32);
  std::span<const std::uint8_t> mac_key(recv_key_.data() + 32, 32);
  Digest expected = HmacSha256(mac_key, body);
  Digest got;
  std::copy(tag_bytes.begin(), tag_bytes.end(), got.begin());
  if (!DigestEq(expected, got)) return std::nullopt;

  try {
    ByteReader r(body);
    std::uint64_t counter = r.U64();
    auto ct = r.Blob();
    if (!r.AtEnd()) return std::nullopt;
    // Sliding-window anti-replay. recv_seen_ bit i covers counter
    // recv_highwater_ - i; bit 0 (the highwater itself) is always set.
    if (counter > recv_highwater_) {
      const std::uint64_t advance = counter - recv_highwater_;
      recv_seen_ = advance >= 64 ? 0 : recv_seen_ << advance;
      recv_seen_ |= 1;
      recv_highwater_ = counter;
    } else {
      const std::uint64_t behind = recv_highwater_ - counter;
      if (behind >= kReplayWindow) return std::nullopt;  // too old
      const std::uint64_t bit = 1ull << behind;
      if ((recv_seen_ & bit) != 0) return std::nullopt;  // replay
      recv_seen_ |= bit;
    }
    Bytes pt(ct.begin(), ct.end());
    ChaCha20Xor(cipher_key, NonceFor(counter), 1, pt);
    return pt;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

SecureChannel MakeChannel(const SchnorrGroup& group,
                          std::span<const std::uint8_t> my_sk,
                          std::span<const std::uint8_t> peer_pk,
                          std::uint32_t epoch, std::uint32_t my_id,
                          std::uint32_t peer_id) {
  Require(my_id != peer_id, "MakeChannel: identical endpoints");
  Bytes shared = DhSharedSecret(group, my_sk, peer_pk);
  std::uint32_t lo = std::min(my_id, peer_id);
  std::uint32_t hi = std::max(my_id, peer_id);
  auto [lo_to_hi, hi_to_lo] = DeriveChannelKeys(shared, epoch, lo, hi);
  if (my_id == lo) {
    return SecureChannel(std::move(lo_to_hi), std::move(hi_to_lo));
  }
  return SecureChannel(std::move(hi_to_lo), std::move(lo_to_hi));
}

}  // namespace pisces::crypto
