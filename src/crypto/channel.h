// Authenticated encrypted point-to-point channels between share storage
// hosts, replacing the paper's TLS links.
//
// Key agreement is static Diffie-Hellman over the Schnorr group using the
// hypervisor-signed host keys of the current epoch; directional keys come out
// of HKDF. Framing is encrypt-then-MAC: nonce counter || ChaCha20 ciphertext
// || HMAC-SHA256 tag. Because host keys are rotated at every reboot (Key
// Secrecy, paper SectionIII-C.3), an adversary corrupting a host in round i
// cannot decrypt traffic from rounds j > i.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/schnorr.h"

namespace pisces::crypto {

// Derives the two directional channel keys for the (lo, hi) host pair from a
// DH shared secret. Returns {key_lo_to_hi, key_hi_to_lo}.
std::pair<Bytes, Bytes> DeriveChannelKeys(std::span<const std::uint8_t> shared,
                                          std::uint32_t epoch,
                                          std::uint32_t id_lo,
                                          std::uint32_t id_hi);

// One direction of a secure channel. Sealing increments a nonce counter;
// opening rejects replays with a sliding acceptance window (IPsec/DTLS
// style): frames up to kReplayWindow counters behind the highest seen are
// accepted exactly once, anything older or already seen is rejected. Plain
// strictly-increasing enforcement would turn benign network reordering into
// silent message loss -- the fault fabric's reorder knob found exactly that.
class SecureChannel {
 public:
  // Frames this far behind the newest accepted counter are still accepted
  // (once). Bounds legitimate reorder tolerance AND replay memory.
  static constexpr std::uint64_t kReplayWindow = 64;

  SecureChannel(Bytes send_key, Bytes recv_key);

  Bytes Seal(std::span<const std::uint8_t> plaintext);
  // nullopt on tag mismatch, replay/too-old counter, or malformed frame.
  std::optional<Bytes> Open(std::span<const std::uint8_t> frame);

  std::uint64_t sent_count() const { return send_counter_; }

 private:
  Bytes send_key_;
  Bytes recv_key_;
  std::uint64_t send_counter_ = 0;
  std::uint64_t recv_highwater_ = 0;  // highest counter accepted so far
  // Bit i records whether counter recv_highwater_ - i has been accepted.
  std::uint64_t recv_seen_ = 0;
};

// Convenience: build the pair of matching channel endpoints for two hosts
// given their long-term (epoch) keys.
SecureChannel MakeChannel(const SchnorrGroup& group,
                          std::span<const std::uint8_t> my_sk,
                          std::span<const std::uint8_t> peer_pk,
                          std::uint32_t epoch, std::uint32_t my_id,
                          std::uint32_t peer_id);

}  // namespace pisces::crypto
