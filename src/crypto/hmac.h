// HMAC-SHA256 (RFC 2104), used for message authentication on secure channels
// and as the PRF inside HKDF.
#pragma once

#include "crypto/sha256.h"

namespace pisces::crypto {

Digest HmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> data);

// Constant-time digest comparison.
bool DigestEq(const Digest& a, const Digest& b);

}  // namespace pisces::crypto
