// HKDF-SHA256 (RFC 5869): extract-then-expand key derivation, used to turn
// Diffie-Hellman shared secrets into channel keys.
#pragma once

#include "crypto/hmac.h"

namespace pisces::crypto {

Bytes HkdfSha256(std::span<const std::uint8_t> salt,
                 std::span<const std::uint8_t> ikm,
                 std::span<const std::uint8_t> info, std::size_t out_len);

}  // namespace pisces::crypto
