// ChaCha20 stream cipher (RFC 8439), used to encrypt channel payloads
// between share storage hosts (the paper's TLS role).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace pisces::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

// XORs the keystream into data in place. Encryption and decryption are the
// same operation.
void ChaCha20Xor(std::span<const std::uint8_t> key,
                 std::span<const std::uint8_t> nonce, std::uint32_t counter,
                 std::span<std::uint8_t> data);

// One raw ChaCha20 block (for test vectors).
std::array<std::uint8_t, 64> ChaCha20Block(std::span<const std::uint8_t> key,
                                           std::span<const std::uint8_t> nonce,
                                           std::uint32_t counter);

}  // namespace pisces::crypto
