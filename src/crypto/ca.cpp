#include "crypto/ca.h"

namespace pisces::crypto {

Bytes HostCert::SignedPayload() const {
  ByteWriter w;
  w.U32(host_id);
  w.U32(epoch);
  w.Blob(host_pk);
  return w.Take();
}

Bytes HostCert::Serialize() const {
  ByteWriter w;
  w.U32(host_id);
  w.U32(epoch);
  w.Blob(host_pk);
  w.Blob(sig.Serialize());
  return w.Take();
}

HostCert HostCert::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HostCert cert;
  cert.host_id = r.U32();
  cert.epoch = r.U32();
  auto pk = r.Blob();
  cert.host_pk.assign(pk.begin(), pk.end());
  cert.sig = SchnorrSignature::Deserialize(r.Blob());
  return cert;
}

CertAuthority::CertAuthority(const SchnorrGroup& group, Rng& rng)
    : group_(group), keys_(SchnorrKeygen(group, rng)) {}

std::pair<HostCert, Bytes> CertAuthority::IssueHostKey(std::uint32_t host_id,
                                                       std::uint32_t epoch,
                                                       Rng& rng) const {
  SchnorrKeyPair host_keys = SchnorrKeygen(group_, rng);
  HostCert cert;
  cert.host_id = host_id;
  cert.epoch = epoch;
  cert.host_pk = host_keys.pk;
  cert.sig = SchnorrSign(group_, keys_.sk, cert.SignedPayload(), rng);
  return {std::move(cert), std::move(host_keys.sk)};
}

bool CertAuthority::VerifyCert(const SchnorrGroup& group,
                               std::span<const std::uint8_t> ca_pk,
                               const HostCert& cert) {
  return SchnorrVerify(group, ca_pk, cert.SignedPayload(), cert.sig);
}

}  // namespace pisces::crypto
