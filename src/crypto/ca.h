// The hypervisor's certificate authority.
//
// Paper SectionIV-A: "the hypervisor will install a new signed key pair --
// using a hypervisor specific key -- onto the server immediately after
// bootup. This key pair is then broadcast to the other S_i in the system,
// who in turn verify its authenticity." HostCert is that broadcastable
// object: (host id, epoch, host public key) signed by the CA.
#pragma once

#include <cstdint>

#include "crypto/schnorr.h"

namespace pisces::crypto {

struct HostCert {
  std::uint32_t host_id = 0;
  std::uint32_t epoch = 0;  // reboot epoch the key is valid for
  Bytes host_pk;
  SchnorrSignature sig;

  Bytes Serialize() const;
  static HostCert Deserialize(std::span<const std::uint8_t> data);

  // The byte string the CA signs.
  Bytes SignedPayload() const;
};

class CertAuthority {
 public:
  CertAuthority(const SchnorrGroup& group, Rng& rng);

  const Bytes& public_key() const { return keys_.pk; }

  // Issues a fresh, signed host keypair for (host_id, epoch). Returns the
  // cert plus the host's new secret key (installed onto the host by the
  // hypervisor, never sent over the network).
  std::pair<HostCert, Bytes> IssueHostKey(std::uint32_t host_id,
                                          std::uint32_t epoch, Rng& rng) const;

  static bool VerifyCert(const SchnorrGroup& group,
                         std::span<const std::uint8_t> ca_pk,
                         const HostCert& cert);

 private:
  const SchnorrGroup& group_;
  SchnorrKeyPair keys_;
};

}  // namespace pisces::crypto
