#include "crypto/hkdf.h"

namespace pisces::crypto {

Bytes HkdfSha256(std::span<const std::uint8_t> salt,
                 std::span<const std::uint8_t> ikm,
                 std::span<const std::uint8_t> info, std::size_t out_len) {
  Require(out_len <= 255 * kSha256DigestSize, "HkdfSha256: output too long");
  Digest prk = HmacSha256(salt, ikm);
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    Digest d = HmacSha256(prk, block);
    t.assign(d.begin(), d.end());
    std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

}  // namespace pisces::crypto
