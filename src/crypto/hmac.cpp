#include "crypto/hmac.h"

namespace pisces::crypto {

Digest HmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    Digest kd = Sha256Hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad);
  inner.Update(data);
  Digest inner_d = inner.Finish();
  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_d);
  return outer.Finish();
}

bool DigestEq(const Digest& a, const Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace pisces::crypto
