// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: file integrity checksums in the codec, HMAC/HKDF for channel
// keys, and the Fiat-Shamir style challenge in Schnorr signatures.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace pisces::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void Update(std::span<const std::uint8_t> data);
  Digest Finish();

  void Reset();

 private:
  void Compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

Digest Sha256Hash(std::span<const std::uint8_t> data);

}  // namespace pisces::crypto
