#include "pss/packed_shamir.h"

#include "math/berlekamp_welch.h"

namespace pisces::pss {

PackedShamir::PackedShamir(std::shared_ptr<const FpCtx> ctx, Params params)
    : ctx_(std::move(ctx)),
      params_(params),
      points_(*ctx_, params.n, params.l) {
  params_.Validate();
}

std::vector<FpElem> PackedShamir::ShareBlock(std::span<const FpElem> secrets,
                                             Rng& rng) const {
  Require(secrets.size() == params_.l, "ShareBlock: need exactly l secrets");
  math::Poly f = math::Poly::RandomWithConstraints(
      *ctx_, rng, params_.degree(), points_.betas(), secrets);
  std::vector<FpElem> shares;
  shares.reserve(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    shares.push_back(f.Eval(*ctx_, points_.alpha(i)));
  }
  return shares;
}

std::vector<FpElem> PackedShamir::ReconstructBlock(
    std::span<const std::uint32_t> parties,
    std::span<const FpElem> shares) const {
  Require(parties.size() == shares.size(), "ReconstructBlock: size mismatch");
  Require(parties.size() >= params_.degree() + 1,
          "ReconstructBlock: not enough shares (need d+1)");
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  std::vector<FpElem> secrets;
  secrets.reserve(params_.l);
  const std::size_t m = params_.degree() + 1;
  std::span<const FpElem> xs_used(xs.data(), m);
  std::span<const FpElem> ys_used(shares.data(), m);
  for (std::size_t j = 0; j < params_.l; ++j) {
    secrets.push_back(
        math::LagrangeEval(*ctx_, xs_used, ys_used, points_.beta(j)));
  }
  return secrets;
}

bool PackedShamir::ConsistentShares(std::span<const std::uint32_t> parties,
                                    std::span<const FpElem> shares) const {
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  return math::PointsOnLowDegree(*ctx_, xs, shares, params_.degree());
}

std::optional<std::vector<FpElem>> PackedShamir::RobustReconstructBlock(
    std::span<const std::uint32_t> parties,
    std::span<const FpElem> shares) const {
  Require(parties.size() == shares.size(),
          "RobustReconstructBlock: size mismatch");
  const std::size_t d = params_.degree();
  if (parties.size() < d + 1) return std::nullopt;
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  const std::size_t max_errors = (parties.size() - d - 1) / 2;
  auto f = math::RobustInterpolate(*ctx_, xs, shares, d, max_errors);
  if (!f) return std::nullopt;
  std::vector<FpElem> secrets;
  secrets.reserve(params_.l);
  for (std::size_t j = 0; j < params_.l; ++j) {
    secrets.push_back(f->Eval(*ctx_, points_.beta(j)));
  }
  return secrets;
}

std::vector<std::vector<FpElem>> PackedShamir::ReconstructionWeights(
    std::span<const std::uint32_t> parties) const {
  Require(parties.size() >= params_.degree() + 1,
          "ReconstructionWeights: not enough parties");
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  std::span<const FpElem> xs_used(xs.data(), params_.degree() + 1);
  std::vector<std::vector<FpElem>> weights;
  weights.reserve(params_.l);
  for (std::size_t j = 0; j < params_.l; ++j) {
    weights.push_back(math::LagrangeCoeffs(*ctx_, xs_used, points_.beta(j)));
  }
  return weights;
}

}  // namespace pisces::pss
