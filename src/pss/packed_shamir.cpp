#include "pss/packed_shamir.h"

#include "common/task_pool.h"
#include "math/berlekamp_welch.h"
#include "math/poly_engine.h"
#include "math/weight_cache.h"

namespace pisces::pss {

PackedShamir::PackedShamir(std::shared_ptr<const FpCtx> ctx, Params params)
    : ctx_(std::move(ctx)),
      params_(params),
      points_(*ctx_, params.n, params.l) {
  params_.Validate();
}

std::vector<FpElem> PackedShamir::ShareBlock(std::span<const FpElem> secrets,
                                             Rng& rng) const {
  Require(secrets.size() == params_.l, "ShareBlock: need exactly l secrets");
  math::Poly f = math::Poly::RandomWithConstraints(
      *ctx_, rng, params_.degree(), points_.betas(), secrets);
  std::vector<FpElem> shares;
  shares.reserve(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    shares.push_back(f.Eval(*ctx_, points_.alpha(i)));
  }
  return shares;
}

std::vector<std::vector<FpElem>> PackedShamir::ShareBlocks(
    std::span<const std::vector<FpElem>> blocks, Rng& rng,
    std::uint64_t* extra_cpu_ns) const {
  const std::size_t d = params_.degree();
  for (const auto& block : blocks) {
    Require(block.size() == params_.l, "ShareBlocks: need exactly l secrets");
  }
  // Serial randomness draw in block order: consuming the rng exactly as the
  // per-block ShareBlock loop would is what keeps multi-threaded runs
  // bit-identical to serial ones.
  std::vector<math::Poly> us;
  us.reserve(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    us.push_back(math::Poly::Random(*ctx_, rng, d - params_.l));
  }
  std::vector<std::vector<FpElem>> out(
      blocks.size(), std::vector<FpElem>(params_.n, ctx_->Zero()));
  if (params_.n >= math::PolyEvalCrossover()) {
    // Very large n: one remainder-tree multipoint evaluation per block over
    // the cached alpha domain, O(M(n) log n) instead of the O(n*d)
    // Vandermonde dots. Same elements either way (exact arithmetic,
    // canonical form); the high default crossover reflects that the dots
    // measure faster through n = 1024 (see math/poly_engine.h).
    auto domain = math::CachedSubproductTree(*ctx_, points_.alphas());
    GlobalPool().ParallelFor(
        0, blocks.size(),
        [&](std::size_t b) {
          math::Poly f = math::Poly::ConstrainedFrom(
              *ctx_, us[b], d, points_.betas(), blocks[b]);
          out[b] = domain->EvalAll(f.coeffs());
        },
        extra_cpu_ns);
    return out;
  }
  auto eval_rows =
      math::CachedVandermondeRows(*ctx_, points_.alphas(), d + 1);
  GlobalPool().ParallelFor(
      0, blocks.size(),
      [&](std::size_t b) {
        math::Poly f = math::Poly::ConstrainedFrom(*ctx_, us[b], d,
                                                   points_.betas(), blocks[b]);
        const std::vector<FpElem>& c = f.coeffs();
        for (std::size_t i = 0; i < params_.n; ++i) {
          out[b][i] = ctx_->Dot(eval_rows->Row(i).first(c.size()), c);
        }
      },
      extra_cpu_ns);
  return out;
}

std::vector<FpElem> PackedShamir::ReconstructBlock(
    std::span<const std::uint32_t> parties,
    std::span<const FpElem> shares) const {
  Require(parties.size() == shares.size(), "ReconstructBlock: size mismatch");
  Require(parties.size() >= params_.degree() + 1,
          "ReconstructBlock: not enough shares (need d+1)");
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  std::vector<FpElem> secrets;
  secrets.reserve(params_.l);
  const std::size_t m = params_.degree() + 1;
  std::span<const FpElem> xs_used(xs.data(), m);
  std::span<const FpElem> ys_used(shares.data(), m);
  for (std::size_t j = 0; j < params_.l; ++j) {
    secrets.push_back(
        math::LagrangeEval(*ctx_, xs_used, ys_used, points_.beta(j)));
  }
  return secrets;
}

bool PackedShamir::ConsistentShares(std::span<const std::uint32_t> parties,
                                    std::span<const FpElem> shares) const {
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  return math::PointsOnLowDegree(*ctx_, xs, shares, params_.degree());
}

std::optional<std::vector<FpElem>> PackedShamir::RobustReconstructBlock(
    std::span<const std::uint32_t> parties, std::span<const FpElem> shares,
    std::vector<std::size_t>* corrupted) const {
  Require(parties.size() == shares.size(),
          "RobustReconstructBlock: size mismatch");
  const std::size_t d = params_.degree();
  if (parties.size() < d + 1) return std::nullopt;
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  const std::size_t max_errors = (parties.size() - d - 1) / 2;
  auto f = math::RobustInterpolate(*ctx_, xs, shares, d, max_errors);
  if (!f) return std::nullopt;
  if (corrupted != nullptr) *corrupted = math::Mismatches(*ctx_, *f, xs, shares);
  std::vector<FpElem> secrets;
  secrets.reserve(params_.l);
  for (std::size_t j = 0; j < params_.l; ++j) {
    secrets.push_back(f->Eval(*ctx_, points_.beta(j)));
  }
  return secrets;
}

std::shared_ptr<const std::vector<std::vector<FpElem>>>
PackedShamir::ReconstructionWeights(
    std::span<const std::uint32_t> parties) const {
  Require(parties.size() >= params_.degree() + 1,
          "ReconstructionWeights: not enough parties");
  std::vector<FpElem> xs = points_.AlphasOf(parties);
  std::span<const FpElem> xs_used(xs.data(), params_.degree() + 1);
  return math::CachedLagrangeWeights(*ctx_, xs_used, points_.betas());
}

std::vector<std::vector<FpElem>> PackedShamir::ReconstructBlocks(
    std::span<const std::uint32_t> parties,
    std::span<const std::vector<FpElem>> shares_by_block,
    std::uint64_t* extra_cpu_ns) const {
  auto weights = ReconstructionWeights(parties);
  const std::size_t m = params_.degree() + 1;
  for (const auto& shares : shares_by_block) {
    Require(shares.size() == parties.size(),
            "ReconstructBlocks: size mismatch");
  }
  std::vector<std::vector<FpElem>> out(
      shares_by_block.size(), std::vector<FpElem>(params_.l, ctx_->Zero()));
  GlobalPool().ParallelFor(
      0, shares_by_block.size(),
      [&](std::size_t b) {
        std::span<const FpElem> ys(shares_by_block[b].data(), m);
        for (std::size_t j = 0; j < params_.l; ++j) {
          out[b][j] = math::PointChecker::Apply(*ctx_, (*weights)[j], ys);
        }
      },
      extra_cpu_ns);
  return out;
}

}  // namespace pisces::pss
