#include "pss/vss.h"

#include <algorithm>

#include "common/task_pool.h"
#include "math/weight_cache.h"
#include "obs/trace.h"

namespace pisces::pss {

std::size_t GroupsFor(std::size_t wanted, std::size_t usable_rows) {
  Require(usable_rows >= 1, "GroupsFor: no usable rows");
  return (wanted + usable_rows - 1) / usable_rows;
}

VssBatch::VssBatch(const FpCtx& ctx, const EvalPoints& points,
                   std::vector<std::uint32_t> holders,
                   std::vector<FpElem> vanish, std::size_t degree,
                   std::size_t check_rows, std::size_t groups, bool recovery)
    : ctx_(&ctx),
      holders_(std::move(holders)),
      vanish_(std::move(vanish)),
      degree_(degree),
      check_rows_(check_rows),
      groups_(groups),
      recovery_(recovery) {
  Require(!holders_.empty(), "VssBatch: no holders");
  Require(check_rows_ < holders_.size(),
          "VssBatch: need at least one usable row");
  Require(vanish_.size() <= degree_, "VssBatch: too many vanishing points");
  Require(groups_ >= 1, "VssBatch: need at least one group");
  holder_alphas_.reserve(holders_.size());
  for (std::uint32_t h : holders_) holder_alphas_.push_back(points.alpha(h));
  m_ = math::CachedHyperInvertible(*ctx_, holders_.size(), holders_.size());
  vanishing_poly_ = math::Poly::Vanishing(*ctx_, vanish_);
  if (holder_alphas_.size() >= math::PolyEvalCrossover()) {
    deal_domain_ = math::CachedSubproductTree(*ctx_, holder_alphas_);
  } else {
    eval_rows_ =
        math::CachedVandermondeRows(*ctx_, holder_alphas_, degree_ + 1);
  }
  Require(holders_.size() >= degree_ + 1,
          "VssBatch: verification needs degree+1 holders");
  // One weight vector per extra holder point (degree check) and per vanish
  // point (zero check), sharing one batch inversion. Every refresh window
  // rebuilds a batch with the same point sets, so the weights are memoized.
  std::vector<FpElem> eval_points(holder_alphas_.begin() + degree_ + 1,
                                  holder_alphas_.end());
  n_extra_ = eval_points.size();
  eval_points.insert(eval_points.end(), vanish_.begin(), vanish_.end());
  check_weights_ = math::CachedLagrangeWeights(
      *ctx_, std::span<const FpElem>(holder_alphas_.data(), degree_ + 1),
      eval_points);
}

std::size_t VssBatch::IndexOf(std::uint32_t party) const {
  auto it = std::find(holders_.begin(), holders_.end(), party);
  return it == holders_.end() ? npos
                              : static_cast<std::size_t>(it - holders_.begin());
}

std::vector<math::Poly> VssBatch::DrawDealRandomness(Rng& rng) const {
  std::vector<math::Poly> us;
  us.reserve(groups_);
  for (std::size_t g = 0; g < groups_; ++g) {
    us.push_back(math::Poly::Random(*ctx_, rng, degree_ - vanish_.size()));
  }
  return us;
}

std::vector<std::vector<FpElem>> VssBatch::DealFrom(
    std::span<const math::Poly> us, std::uint64_t* extra_cpu_ns,
    DealTamper* tamper) const {
  Require(us.size() == groups_, "DealFrom: wrong group count");
  const std::size_t nh = holders_.size();
  obs::Span span(obs::SpanKind::kVssDeal, groups_, nh);
  std::vector<std::vector<FpElem>> out(
      nh, std::vector<FpElem>(groups_, ctx_->Zero()));
  // Each group is independent pure compute: z_g = W * u_g evaluated at every
  // holder point via the cached Vandermonde rows. out[k][g] slots are owned
  // by (k, g), so the per-group fan-out is deterministic for any pool size.
  GlobalPool().ParallelFor(
      0, groups_,
      [&](std::size_t g) {
        math::Poly z = math::Poly::Mul(*ctx_, vanishing_poly_, us[g]);
        const std::vector<FpElem>& c = z.coeffs();
        Invariant(c.size() <= degree_ + 1, "DealFrom: dealing degree too high");
        if (deal_domain_ != nullptr) {
          const std::vector<FpElem> vals = deal_domain_->EvalAll(c);
          for (std::size_t k = 0; k < nh; ++k) out[k][g] = vals[k];
        } else {
          for (std::size_t k = 0; k < nh; ++k) {
            out[k][g] = ctx_->Dot(eval_rows_->Row(k).first(c.size()), c);
          }
        }
      },
      extra_cpu_ns);
  // Active-adversary seam: applied on the caller's thread after the pool
  // fan-out so tampering is deterministic for any pool size. Honest callers
  // pass null and take the branch-not-taken path only.
  if (tamper != nullptr) {
    tamper->TamperDeal(holders_, recovery_shape(), out);
    Require(out.size() == nh, "DealFrom: tamper changed holder count");
    for (const auto& row : out) {
      Require(row.size() == groups_, "DealFrom: tamper changed group count");
    }
  }
  return out;
}

std::vector<std::vector<FpElem>> VssBatch::Deal(Rng& rng,
                                                std::uint64_t* extra_cpu_ns,
                                                DealTamper* tamper) const {
  return DealFrom(DrawDealRandomness(rng), extra_cpu_ns, tamper);
}

std::vector<std::vector<FpElem>> VssBatch::Transform(
    const std::vector<std::vector<FpElem>>& deals_by_dealer,
    std::size_t workers, std::uint64_t* extra_cpu_ns) const {
  const std::size_t nh = holders_.size();
  Require(deals_by_dealer.size() == nh, "Transform: wrong dealer count");
  for (const auto& row : deals_by_dealer) {
    Require(row.size() == groups_, "Transform: wrong group count");
  }
  obs::Span span(obs::SpanKind::kVssTransform, nh, groups_);
  std::vector<std::vector<FpElem>> out(
      nh, std::vector<FpElem>(groups_, ctx_->Zero()));

  // Static partition over output rows: each row a is owned by exactly one
  // chunk, so results are deterministic regardless of scheduling.
  GlobalPool().ParallelChunks(
      0, nh,
      [&](std::size_t a_begin, std::size_t a_end) {
        // Lazy accumulation: one DotAcc per (row, group), fed across dealers
        // in the same cache-friendly i-outer order, reduced once per output.
        std::vector<field::DotAcc> accs(groups_, field::DotAcc(*ctx_));
        for (std::size_t a = a_begin; a < a_end; ++a) {
          for (auto& acc : accs) acc.Reset();
          for (std::size_t i = 0; i < nh; ++i) {
            const FpElem& m_ai = m_->At(a, i);
            for (std::size_t g = 0; g < groups_; ++g) {
              accs[g].MulAdd(m_ai, deals_by_dealer[i][g]);
            }
          }
          for (std::size_t g = 0; g < groups_; ++g) {
            out[a][g] = accs[g].Reduce();
          }
        }
      },
      extra_cpu_ns, std::max<std::size_t>(1, workers));
  return out;
}

bool VssBatch::VerifyCheckVector(std::span<const FpElem> values) const {
  if (values.size() != holders_.size()) return false;
  const auto& weights = *check_weights_;
  // Degree check: each point beyond the first degree+1 must match the
  // interpolant of those first points.
  for (std::size_t e = 0; e < n_extra_; ++e) {
    FpElem predicted = math::PointChecker::Apply(*ctx_, weights[e], values);
    if (!ctx_->Eq(predicted, values[degree_ + 1 + e])) return false;
  }
  // Vanishing check: evaluate the interpolant on V (precomputed weights).
  for (std::size_t v = n_extra_; v < weights.size(); ++v) {
    if (!ctx_->IsZero(math::PointChecker::Apply(*ctx_, weights[v], values))) {
      return false;
    }
  }
  return true;
}

}  // namespace pisces::pss
