#include "pss/vss.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/clock.h"

namespace pisces::pss {

std::size_t GroupsFor(std::size_t wanted, std::size_t usable_rows) {
  Require(usable_rows >= 1, "GroupsFor: no usable rows");
  return (wanted + usable_rows - 1) / usable_rows;
}

VssBatch::VssBatch(const FpCtx& ctx, const EvalPoints& points,
                   std::vector<std::uint32_t> holders,
                   std::vector<FpElem> vanish, std::size_t degree,
                   std::size_t check_rows, std::size_t groups)
    : ctx_(&ctx),
      holders_(std::move(holders)),
      vanish_(std::move(vanish)),
      degree_(degree),
      check_rows_(check_rows),
      groups_(groups) {
  Require(!holders_.empty(), "VssBatch: no holders");
  Require(check_rows_ < holders_.size(),
          "VssBatch: need at least one usable row");
  Require(vanish_.size() <= degree_, "VssBatch: too many vanishing points");
  Require(groups_ >= 1, "VssBatch: need at least one group");
  holder_alphas_.reserve(holders_.size());
  for (std::uint32_t h : holders_) holder_alphas_.push_back(points.alpha(h));
  m_ = math::CachedHyperInvertible(*ctx_, holders_.size(), holders_.size());
  vanishing_poly_ = math::Poly::Vanishing(*ctx_, vanish_);
  Require(holders_.size() >= degree_ + 1,
          "VssBatch: verification needs degree+1 holders");
  // One weight vector per extra holder point (degree check) and per vanish
  // point (zero check), sharing one batch inversion.
  std::vector<FpElem> eval_points(holder_alphas_.begin() + degree_ + 1,
                                  holder_alphas_.end());
  const std::size_t n_extra = eval_points.size();
  eval_points.insert(eval_points.end(), vanish_.begin(), vanish_.end());
  auto weights = math::LagrangeCoeffsMulti(
      *ctx_, std::span<const FpElem>(holder_alphas_.data(), degree_ + 1),
      eval_points);
  extra_weights_.assign(weights.begin(), weights.begin() + n_extra);
  vanish_weights_.assign(weights.begin() + n_extra, weights.end());
}

std::size_t VssBatch::IndexOf(std::uint32_t party) const {
  auto it = std::find(holders_.begin(), holders_.end(), party);
  return it == holders_.end() ? npos
                              : static_cast<std::size_t>(it - holders_.begin());
}

std::vector<std::vector<FpElem>> VssBatch::Deal(Rng& rng) const {
  const std::size_t nh = holders_.size();
  std::vector<std::vector<FpElem>> out(
      nh, std::vector<FpElem>(groups_, ctx_->Zero()));
  for (std::size_t g = 0; g < groups_; ++g) {
    // Random degree-<=d polynomial vanishing on V: z = W * u with W the
    // precomputed vanishing polynomial and u uniform of degree d - |V|.
    math::Poly u = math::Poly::Random(*ctx_, rng, degree_ - vanish_.size());
    math::Poly z = math::Poly::Mul(*ctx_, vanishing_poly_, u);
    for (std::size_t k = 0; k < nh; ++k) {
      out[k][g] = z.Eval(*ctx_, holder_alphas_[k]);
    }
  }
  return out;
}

std::vector<std::vector<FpElem>> VssBatch::Transform(
    const std::vector<std::vector<FpElem>>& deals_by_dealer,
    std::size_t workers, std::uint64_t* cpu_ns) const {
  const std::size_t nh = holders_.size();
  Require(deals_by_dealer.size() == nh, "Transform: wrong dealer count");
  for (const auto& row : deals_by_dealer) {
    Require(row.size() == groups_, "Transform: wrong group count");
  }
  std::vector<std::vector<FpElem>> out(
      nh, std::vector<FpElem>(groups_, ctx_->Zero()));

  std::atomic<std::uint64_t> cpu_total{0};
  auto compute_rows = [&](std::size_t a_begin, std::size_t a_end) {
    const std::uint64_t cpu_start = ThreadCpuNanos();
    for (std::size_t a = a_begin; a < a_end; ++a) {
      for (std::size_t i = 0; i < nh; ++i) {
        const FpElem& m_ai = m_->At(a, i);
        for (std::size_t g = 0; g < groups_; ++g) {
          out[a][g] =
              ctx_->Add(out[a][g], ctx_->Mul(m_ai, deals_by_dealer[i][g]));
        }
      }
    }
    cpu_total.fetch_add(ThreadCpuNanos() - cpu_start,
                        std::memory_order_relaxed);
  };

  workers = std::max<std::size_t>(1, std::min(workers, nh));
  if (workers == 1) {
    compute_rows(0, nh);
  } else {
    // Static partition over output rows: deterministic results regardless of
    // scheduling.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (nh + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      std::size_t begin = w * chunk;
      std::size_t end = std::min(nh, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(compute_rows, begin, end);
    }
    for (auto& th : pool) th.join();
  }
  if (cpu_ns != nullptr) *cpu_ns += cpu_total.load();
  return out;
}

bool VssBatch::VerifyCheckVector(std::span<const FpElem> values) const {
  if (values.size() != holders_.size()) return false;
  // Degree check: each point beyond the first degree+1 must match the
  // interpolant of those first points.
  for (std::size_t e = 0; e < extra_weights_.size(); ++e) {
    FpElem predicted =
        math::PointChecker::Apply(*ctx_, extra_weights_[e], values);
    if (!ctx_->Eq(predicted, values[degree_ + 1 + e])) return false;
  }
  // Vanishing check: evaluate the interpolant on V (precomputed weights).
  for (const auto& w : vanish_weights_) {
    if (!ctx_->IsZero(math::PointChecker::Apply(*ctx_, w, values))) {
      return false;
    }
  }
  return true;
}

}  // namespace pisces::pss
