// Resharing to a new group (extension; the paper cites BELO's follow-up
// "Communication-optimal proactive secret sharing for dynamic groups" [8] as
// the dynamic-group variant and leaves adoption to future work).
//
// Moves a packed-shared block set from an old group (n, t, l, degree d) to a
// new group (n', t', l', degree d') without ever reconstructing:
//
//   g = sum_i c_i(x) * f(alpha_i) + sum_i m_i(x)
//
// where the c_i interpolate the old secrets out of d+1 old shares and each
// old party's masking polynomial m_i is uniformly random of degree <= d'
// subject to vanishing at every beta (the new secrets must equal the old
// ones). Each old party i sends the new party rho only its own contribution
//   c_i(alpha'_rho) * f(alpha_i) + m_i(alpha'_rho),
// which is marginally uniform (m_i is random at alpha'_rho), so neither the
// new party nor any t'-subset of the new group learns anything about old
// shares beyond the new sharing itself. This is the classic
// Desmedt-Jajodia-style redistribution specialized to packed sharing.
//
// The execution path is decomposed the way the live protocol runs it
// (docs/resharding.md): MakeResharePublic fixes the public transcript of one
// round (contributor set, coefficient matrix, vanishing polynomial), each
// contributor computes ReshareContribution from nothing but its OWN share
// vector, a verifier checks each contribution with VerifyReshareContribution
// (public data only), and AccumulateReshare sums accepted contributions into
// the new shares. ReferenceReshare composes exactly these pieces with a
// single rng, so the cluster-driven path and the oracle share one algebra
// (the differential suite in tests/reshare_test.cpp pins the secrets).
//
// Verification coverage: a contribution is accepted only if every block's
// column lies on a degree-<=d' polynomial over the new alphas (catches
// equivocation and random corruption), and -- for l >= 2 -- if its values at
// the betas are proportional to the contributor's public reconstruction
// weights (catches consistent low-degree shifts, the corrupt-deal analog of
// the refresh vanishing check). For l == 1 the share part of a contribution
// is one scalar degree of freedom with no public constraint, so a
// degree-respecting scalar shift is undetectable without polynomial
// commitments; deployments that arm reshare against active adversaries use
// l >= 2 (docs/resharding.md discusses the gap).
//
// Requirements: l' == l (the packed secret slots carry over one-to-one; use
// the codec to re-pack if the new group wants a different l), plus the usual
// validity of both parameter sets.
#pragma once

#include "math/poly.h"
#include "pss/packed_shamir.h"
#include "pss/tamper.h"

namespace pisces::pss {

// Public, per-round reshare transcript: everything a contributor or verifier
// needs besides the contributor's private share. Pure function of
// (from, to, contributors); holds no secret material.
struct ResharePublic {
  const PackedShamir* from = nullptr;
  const PackedShamir* to = nullptr;
  // Old-party ids acting as contributors, exactly d_old+1 of them.
  std::vector<std::uint32_t> contributors;
  // weights[j][i]: weight of contributor i's share in old secret s_j.
  std::vector<std::vector<field::FpElem>> weights;
  // coeff[rho][i] = sum_j lb[rho][j] * weights[j][i]: contributor i's public
  // coefficient toward new party rho (c_i evaluated at alpha'_rho).
  std::vector<std::vector<field::FpElem>> coeff;
  // Vanishing polynomial on the new betas (mask constraint).
  math::Poly vanish;
};

// Builds the public round transcript. `contributors` must name exactly
// d_old+1 distinct old parties; both schemes must share one field context
// and the same packing l, and d_new >= l must hold.
ResharePublic MakeResharePublic(const PackedShamir& from, const PackedShamir& to,
                                std::vector<std::uint32_t> contributors);

// One contributor's masked sub-sharing, computed from its own share vector
// only: out[rho][blk] = c_i(alpha'_rho) * own_shares[blk] + m_i(alpha'_rho)
// with a fresh mask polynomial per block. `ordinal` indexes the contributor
// inside pub.contributors. A non-null `tamper` is applied to the finished
// matrix (the Byzantine dealer seam; holders are the new party ids).
std::vector<std::vector<field::FpElem>> ReshareContribution(
    const ResharePublic& pub, std::size_t ordinal,
    std::span<const field::FpElem> own_shares, Rng& rng,
    DealTamper* tamper = nullptr);

// Public well-formedness check of one contribution: per-block degree-<=d'
// column consistency over the new alphas, plus (l >= 2) beta-proportionality
// against the contributor's reconstruction weights. Uses public data only.
bool VerifyReshareContribution(const ResharePublic& pub, std::size_t ordinal,
                               const std::vector<std::vector<field::FpElem>>&
                                   contribution);

// acc[rho][blk] += contribution[rho][blk]. acc may be empty (initialized to
// the contribution's shape).
void AccumulateReshare(const field::FpCtx& ctx,
                       std::vector<std::vector<field::FpElem>>& acc,
                       const std::vector<std::vector<field::FpElem>>&
                           contribution);

// Redistributes shares_old[i][blk] (old group, `from` scheme) into shares for
// the new group (`to` scheme): returns shares_new[rho][blk]. Composes the
// decomposed pieces above with contributors = the first d_old+1 old parties.
std::vector<std::vector<field::FpElem>> ReferenceReshare(
    const PackedShamir& from, const PackedShamir& to,
    const std::vector<std::vector<field::FpElem>>& shares_old, Rng& rng);

}  // namespace pisces::pss
