// Resharing to a new group (extension; the paper cites BELO's follow-up
// "Communication-optimal proactive secret sharing for dynamic groups" [8] as
// the dynamic-group variant and leaves adoption to future work).
//
// Moves a packed-shared block set from an old group (n, t, l, degree d) to a
// new group (n', t', l', degree d') without ever reconstructing:
//
//   g = sum_i c_i(x) * f(alpha_i) + sum_i m_i(x)
//
// where the c_i interpolate the old secrets out of d+1 old shares and each
// old party's masking polynomial m_i is uniformly random of degree <= d'
// subject to vanishing at every beta (the new secrets must equal the old
// ones). Each old party i sends the new party rho only its own contribution
//   c_i(alpha'_rho) * f(alpha_i) + m_i(alpha'_rho),
// which is marginally uniform (m_i is random at alpha'_rho), so neither the
// new party nor any t'-subset of the new group learns anything about old
// shares beyond the new sharing itself. This is the classic
// Desmedt-Jajodia-style redistribution specialized to packed sharing,
// honest-but-curious model.
//
// Requirements: l' == l (the packed secret slots carry over one-to-one; use
// the codec to re-pack if the new group wants a different l), plus the usual
// validity of both parameter sets.
#pragma once

#include "pss/packed_shamir.h"

namespace pisces::pss {

// Redistributes shares_old[i][blk] (old group, `from` scheme) into shares for
// the new group (`to` scheme): returns shares_new[rho][blk]. Both schemes
// must share one field context and the same packing l.
std::vector<std::vector<field::FpElem>> ReferenceReshare(
    const PackedShamir& from, const PackedShamir& to,
    const std::vector<std::vector<field::FpElem>>& shares_old, Rng& rng);

}  // namespace pisces::pss
