#include "pss/recovery.h"

#include <algorithm>
#include <set>

#include "common/task_pool.h"
#include "math/berlekamp_welch.h"
#include "math/weight_cache.h"

namespace pisces::pss {

RecoveryPlan RecoveryPlan::For(std::size_t blocks, const Params& p,
                               std::span<const std::uint32_t> rebooting) {
  std::vector<std::uint32_t> all(p.n);
  for (std::uint32_t i = 0; i < p.n; ++i) all[i] = i;
  return For(blocks, p, rebooting, all);
}

RecoveryPlan RecoveryPlan::For(std::size_t blocks, const Params& p,
                               std::span<const std::uint32_t> rebooting,
                               std::span<const std::uint32_t> available) {
  Require(!rebooting.empty(), "RecoveryPlan: nothing to recover");
  Require(rebooting.size() <= p.r,
          "RecoveryPlan: reboot batch exceeds configured r");
  RecoveryPlan plan;
  plan.blocks = blocks;
  for (std::uint32_t i : available) {
    Require(i < p.n, "RecoveryPlan: available host out of range");
    if (std::find(rebooting.begin(), rebooting.end(), i) == rebooting.end()) {
      plan.survivors.push_back(i);
    }
  }
  std::sort(plan.survivors.begin(), plan.survivors.end());
  Require(plan.survivors.size() > p.check_rows(),
          "RecoveryPlan: not enough survivors for verification");
  Require(plan.survivors.size() >= p.degree() + 1,
          "RecoveryPlan: not enough survivors to interpolate");
  plan.usable = plan.survivors.size() - p.check_rows();
  plan.groups = GroupsFor(std::max<std::size_t>(blocks, 1), plan.usable);
  return plan;
}

VssBatch MakeRecoveryBatch(const PackedShamir& shamir,
                           const RecoveryPlan& plan, std::uint32_t target) {
  const Params& p = shamir.params();
  std::vector<FpElem> vanish{shamir.points().alpha(target)};
  return VssBatch(shamir.ctx(), shamir.points(), plan.survivors,
                  std::move(vanish), p.degree(), p.check_rows(), plan.groups,
                  /*recovery=*/true);
}

void ReferenceRecover(const PackedShamir& shamir,
                      std::vector<std::vector<FpElem>>& shares_by_party,
                      std::span<const std::uint32_t> rebooting, Rng& rng) {
  const Params& p = shamir.params();
  const FpCtx& ctx = shamir.ctx();
  Require(shares_by_party.size() == p.n, "ReferenceRecover: wrong party count");
  const std::size_t blocks = shares_by_party[0].size();
  RecoveryPlan plan = RecoveryPlan::For(blocks, p, rebooting);
  const std::size_t ns = plan.survivors.size();

  for (std::uint32_t target : rebooting) {
    VssBatch batch = MakeRecoveryBatch(shamir, plan, target);

    // Survivors deal masks and transform: randomness first (serial, RNG
    // order fixed), then per-dealer and per-holder fan-out on the task pool.
    std::vector<std::vector<math::Poly>> us_by_dealer;
    us_by_dealer.reserve(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      us_by_dealer.push_back(batch.DrawDealRandomness(rng));
    }
    std::vector<std::vector<std::vector<FpElem>>> deals(ns);
    GlobalPool().ParallelFor(0, ns, [&](std::size_t i) {
      deals[i] = batch.DealFrom(us_by_dealer[i]);
    });
    std::vector<std::vector<std::vector<FpElem>>> outputs(ns);
    GlobalPool().ParallelFor(0, ns, [&](std::size_t k) {
      std::vector<std::vector<FpElem>> col(ns);
      for (std::size_t i = 0; i < ns; ++i) col[i] = deals[i][k];
      outputs[k] = batch.Transform(col, p.b);
    });

    // Verify check rows (independent; failures rethrow on this thread).
    GlobalPool().ParallelFor(0, batch.check_rows(), [&](std::size_t a) {
      for (std::size_t g = 0; g < batch.groups(); ++g) {
        std::vector<FpElem> values(ns, ctx.Zero());
        for (std::size_t k = 0; k < ns; ++k) values[k] = outputs[k][a][g];
        Invariant(batch.VerifyCheckVector(values),
                  "ReferenceRecover: check row failed");
      }
    });

    // Survivors send masked shares; target interpolates at alpha_target.
    std::vector<FpElem> xs;
    xs.reserve(ns);
    for (std::uint32_t s : plan.survivors) xs.push_back(shamir.points().alpha(s));
    const std::size_t m = p.degree() + 1;
    const FpElem target_alpha = shamir.points().alpha(target);
    auto w_cached = math::CachedLagrangeWeights(
        ctx, std::span<const FpElem>(xs.data(), m),
        std::span<const FpElem>(&target_alpha, 1));
    const std::vector<FpElem>& w = (*w_cached)[0];

    std::vector<FpElem>& target_shares = shares_by_party[target];
    target_shares.assign(blocks, ctx.Zero());
    // Each block interpolates independently and writes only its own slot.
    GlobalPool().ParallelFor(0, blocks, [&](std::size_t blk) {
      std::size_t g = blk / plan.usable;
      std::size_t a = batch.check_rows() + (blk % plan.usable);
      // masked[k] = f_blk(alpha_k) + q_blk(alpha_k); lazy-accumulate the
      // weighted sum and reduce once per block.
      field::DotAcc acc(ctx);
      for (std::size_t k = 0; k < m; ++k) {
        FpElem masked = ctx.Add(shares_by_party[plan.survivors[k]][blk],
                                outputs[k][a][g]);
        acc.MulAdd(w[k], masked);
      }
      // q_blk(alpha_target) == 0, so the sum is f_blk(alpha_target).
      target_shares[blk] = acc.Reduce();
    });
  }
}

std::vector<std::uint32_t> ReferenceRecoverRobust(
    const PackedShamir& shamir,
    std::vector<std::vector<FpElem>>& shares_by_party,
    std::span<const std::uint32_t> rebooting, Rng& rng,
    std::span<const std::uint32_t> liars) {
  const Params& p = shamir.params();
  const FpCtx& ctx = shamir.ctx();
  Require(shares_by_party.size() == p.n,
          "ReferenceRecoverRobust: wrong party count");
  const std::size_t blocks = shares_by_party[0].size();
  RecoveryPlan plan = RecoveryPlan::For(blocks, p, rebooting);
  const std::size_t ns = plan.survivors.size();

  std::vector<std::uint32_t> accused;
  for (std::uint32_t target : rebooting) {
    VssBatch batch = MakeRecoveryBatch(shamir, plan, target);

    // Mask generation is honest here (dealer-side attacks are refresh.h's
    // ReferenceRefreshDetect); the attack is wrong MASKED shares in flight.
    std::vector<std::vector<math::Poly>> us_by_dealer;
    us_by_dealer.reserve(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      us_by_dealer.push_back(batch.DrawDealRandomness(rng));
    }
    std::vector<std::vector<std::vector<FpElem>>> deals(ns);
    GlobalPool().ParallelFor(0, ns, [&](std::size_t i) {
      deals[i] = batch.DealFrom(us_by_dealer[i]);
    });
    std::vector<std::vector<std::vector<FpElem>>> outputs(ns);
    GlobalPool().ParallelFor(0, ns, [&](std::size_t k) {
      std::vector<std::vector<FpElem>> col(ns);
      for (std::size_t i = 0; i < ns; ++i) col[i] = deals[i][k];
      outputs[k] = batch.Transform(col, p.b);
    });
    GlobalPool().ParallelFor(0, batch.check_rows(), [&](std::size_t a) {
      for (std::size_t g = 0; g < batch.groups(); ++g) {
        std::vector<FpElem> values(ns, ctx.Zero());
        for (std::size_t k = 0; k < ns; ++k) values[k] = outputs[k][a][g];
        Invariant(batch.VerifyCheckVector(values),
                  "ReferenceRecoverRobust: check row failed");
      }
    });

    // Every survivor mails masked[k] = f_blk(alpha_k) + q_blk(alpha_k);
    // liars add their own (nonzero) alpha as a deterministic offset.
    std::vector<FpElem> xs;
    xs.reserve(ns);
    for (std::uint32_t s : plan.survivors) {
      xs.push_back(shamir.points().alpha(s));
    }
    const FpElem target_alpha = shamir.points().alpha(target);
    const std::size_t max_errors = ns > p.degree() + 1
                                       ? (ns - p.degree() - 1) / 2
                                       : 0;
    Require(liars.size() <= max_errors,
            "ReferenceRecoverRobust: liars exceed the decoding radius");

    std::vector<FpElem>& target_shares = shares_by_party[target];
    target_shares.assign(blocks, ctx.Zero());
    std::set<std::uint32_t> accused_here;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      std::size_t g = blk / plan.usable;
      std::size_t a = batch.check_rows() + (blk % plan.usable);
      std::vector<FpElem> ys(ns, ctx.Zero());
      for (std::size_t k = 0; k < ns; ++k) {
        std::uint32_t s = plan.survivors[k];
        FpElem masked = ctx.Add(shares_by_party[s][blk], outputs[k][a][g]);
        if (std::find(liars.begin(), liars.end(), s) != liars.end()) {
          masked = ctx.Add(masked, xs[k]);
        }
        ys[k] = masked;
      }
      auto f = math::RobustInterpolate(ctx, xs, ys, p.degree(), max_errors);
      Invariant(f.has_value(), "ReferenceRecoverRobust: decode failed");
      for (std::size_t bad : math::Mismatches(ctx, *f, xs, ys)) {
        accused_here.insert(plan.survivors[bad]);
      }
      target_shares[blk] = f->Eval(ctx, target_alpha);
    }
    for (std::uint32_t s : accused_here) {
      if (std::find(accused.begin(), accused.end(), s) == accused.end()) {
        accused.push_back(s);
      }
    }
  }
  std::sort(accused.begin(), accused.end());
  return accused;
}

}  // namespace pisces::pss
