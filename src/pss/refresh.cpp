#include "pss/refresh.h"

#include "common/task_pool.h"

namespace pisces::pss {

RefreshPlan RefreshPlan::For(std::size_t blocks, const Params& p) {
  return For(blocks, p, p.n);
}

RefreshPlan RefreshPlan::For(std::size_t blocks, const Params& p,
                             std::size_t dealers) {
  Require(dealers > p.check_rows(),
          "RefreshPlan: need more than 2t dealers to refresh");
  Require(dealers <= p.n, "RefreshPlan: more dealers than parties");
  RefreshPlan plan;
  plan.blocks = blocks;
  plan.usable = p.UsableRows(dealers);
  plan.groups = GroupsFor(std::max<std::size_t>(blocks, 1), plan.usable);
  return plan;
}

VssBatch MakeRefreshBatch(const PackedShamir& shamir, std::size_t blocks) {
  const Params& p = shamir.params();
  std::vector<std::uint32_t> holders(p.n);
  for (std::size_t i = 0; i < p.n; ++i) holders[i] = static_cast<std::uint32_t>(i);
  return MakeRefreshBatch(shamir, blocks, holders);
}

VssBatch MakeRefreshBatch(const PackedShamir& shamir, std::size_t blocks,
                          std::span<const std::uint32_t> participants) {
  const Params& p = shamir.params();
  Require(!participants.empty(), "MakeRefreshBatch: empty participant set");
  for (std::uint32_t id : participants) {
    Require(id < p.n, "MakeRefreshBatch: participant out of range");
  }
  RefreshPlan plan = RefreshPlan::For(blocks, p, participants.size());
  std::vector<std::uint32_t> holders(participants.begin(), participants.end());
  std::vector<FpElem> vanish(shamir.points().betas().begin(),
                             shamir.points().betas().end());
  return VssBatch(shamir.ctx(), shamir.points(), std::move(holders),
                  std::move(vanish), p.degree(), p.check_rows(), plan.groups);
}

void ReferenceRefresh(const PackedShamir& shamir,
                      std::vector<std::vector<FpElem>>& shares_by_party,
                      Rng& rng) {
  const Params& p = shamir.params();
  const FpCtx& ctx = shamir.ctx();
  Require(shares_by_party.size() == p.n, "ReferenceRefresh: wrong party count");
  const std::size_t blocks = shares_by_party[0].size();
  RefreshPlan plan = RefreshPlan::For(blocks, p);
  VssBatch batch = MakeRefreshBatch(shamir, blocks);

  // Phase 1: every party deals. deals[i][k][g] = dealer i's value for holder k.
  // Randomness for ALL dealers is drawn serially first (RNG order is part of
  // the determinism contract); the pure-compute dealing evaluation then fans
  // out per dealer over the task pool.
  std::vector<std::vector<math::Poly>> us_by_dealer;
  us_by_dealer.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    us_by_dealer.push_back(batch.DrawDealRandomness(rng));
  }
  std::vector<std::vector<std::vector<FpElem>>> deals(p.n);
  GlobalPool().ParallelFor(0, p.n, [&](std::size_t i) {
    deals[i] = batch.DealFrom(us_by_dealer[i]);
  });

  // Phase 2: every holder transforms its received column (per-holder fan-out;
  // the per-call `workers` cap models the paper's b inside each host).
  // outputs[k][a][g] = holder k's share of output row a, group g.
  std::vector<std::vector<std::vector<FpElem>>> outputs(p.n);
  GlobalPool().ParallelFor(0, p.n, [&](std::size_t k) {
    std::vector<std::vector<FpElem>> col(p.n);
    for (std::size_t i = 0; i < p.n; ++i) col[i] = deals[i][k];
    outputs[k] = batch.Transform(col, p.b);
  });

  // Phase 3: verify the first 2t rows across all holders (independent rows;
  // a failure throws and the pool rethrows it here).
  GlobalPool().ParallelFor(0, batch.check_rows(), [&](std::size_t a) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      std::vector<FpElem> values(p.n, ctx.Zero());
      for (std::size_t k = 0; k < p.n; ++k) values[k] = outputs[k][a][g];
      Invariant(batch.VerifyCheckVector(values),
                "ReferenceRefresh: check row failed");
    }
  });

  // Phase 4: apply usable rows to blocks and discard old shares. Party k's
  // share vector is owned by iteration k.
  GlobalPool().ParallelFor(0, p.n, [&](std::size_t k) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      for (std::size_t a_rel = 0; a_rel < batch.usable_rows(); ++a_rel) {
        auto blk = plan.BlockFor(a_rel, g);
        if (!blk) continue;
        std::size_t a = batch.check_rows() + a_rel;
        shares_by_party[k][*blk] =
            ctx.Add(shares_by_party[k][*blk], outputs[k][a][g]);
      }
    }
  });
}

std::vector<std::uint32_t> ReferenceRefreshDetect(
    const PackedShamir& shamir,
    std::vector<std::vector<FpElem>>& shares_by_party, Rng& rng,
    std::uint32_t cheater, DealTamper& tamper) {
  const Params& p = shamir.params();
  const FpCtx& ctx = shamir.ctx();
  Require(shares_by_party.size() == p.n,
          "ReferenceRefreshDetect: wrong party count");
  Require(cheater < p.n, "ReferenceRefreshDetect: cheater out of range");
  const std::size_t blocks = shares_by_party[0].size();
  RefreshPlan plan = RefreshPlan::For(blocks, p);
  VssBatch batch = MakeRefreshBatch(shamir, blocks);

  // Phase 1 mirrors ReferenceRefresh, except the cheater's dealing passes
  // through the tamper hook after evaluation.
  std::vector<std::vector<math::Poly>> us_by_dealer;
  us_by_dealer.reserve(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    us_by_dealer.push_back(batch.DrawDealRandomness(rng));
  }
  std::vector<std::vector<std::vector<FpElem>>> deals(p.n);
  GlobalPool().ParallelFor(0, p.n, [&](std::size_t i) {
    deals[i] = batch.DealFrom(us_by_dealer[i], nullptr,
                              i == cheater ? &tamper : nullptr);
  });

  // Phase 2: holder transforms.
  std::vector<std::vector<std::vector<FpElem>>> outputs(p.n);
  GlobalPool().ParallelFor(0, p.n, [&](std::size_t k) {
    std::vector<std::vector<FpElem>> col(p.n);
    for (std::size_t i = 0; i < p.n; ++i) col[i] = deals[i][k];
    outputs[k] = batch.Transform(col, p.b);
  });

  // Phase 3: open the check rows. Any tampered dealing perturbs every output
  // row of its group (the hyperinvertible matrix mixes all dealer inputs into
  // each output), so a check row fails with overwhelming probability.
  bool check_failed = false;
  for (std::size_t a = 0; a < batch.check_rows() && !check_failed; ++a) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      std::vector<FpElem> values(p.n, ctx.Zero());
      for (std::size_t k = 0; k < p.n; ++k) values[k] = outputs[k][a][g];
      if (!batch.VerifyCheckVector(values)) {
        check_failed = true;
        break;
      }
    }
  }

  if (!check_failed) {
    // Clean round: apply as usual.
    GlobalPool().ParallelFor(0, p.n, [&](std::size_t k) {
      for (std::size_t g = 0; g < batch.groups(); ++g) {
        for (std::size_t a_rel = 0; a_rel < batch.usable_rows(); ++a_rel) {
          auto blk = plan.BlockFor(a_rel, g);
          if (!blk) continue;
          std::size_t a = batch.check_rows() + a_rel;
          shares_by_party[k][*blk] =
              ctx.Add(shares_by_party[k][*blk], outputs[k][a][g]);
        }
      }
    });
    return {};
  }

  // Attribution: each dealer's dealing is itself a claimed degree-<=d
  // polynomial vanishing on the betas, evaluated at every holder point -- the
  // exact vector shape VerifyCheckVector validates. An equivocating dealer
  // has no single polynomial consistent with all receivers (degree check
  // fails w.h.p.); a degree/vanishing violator fails directly. Honest
  // dealings always pass, so exactly the cheaters are attributed.
  std::vector<std::uint32_t> attributed;
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      std::vector<FpElem> values(p.n, ctx.Zero());
      for (std::size_t k = 0; k < p.n; ++k) values[k] = deals[i][k][g];
      if (!batch.VerifyCheckVector(values)) {
        attributed.push_back(static_cast<std::uint32_t>(i));
        break;
      }
    }
  }
  return attributed;
}

}  // namespace pisces::pss
