// Share refresh (rerandomization): the paper's SectionIII-B "refreshing old
// shares".
//
// Every stored block is refreshed by adding a fresh verified random
// zero-sharing (a polynomial that evaluates to zero at every beta_j): the
// secrets are unchanged while every share is rerandomized, so shares an
// adversary captured in earlier rounds become useless ("by deleting their old
// share, they render knowledge of old shares useless").
//
// RefreshPlan maps the usable outputs of a VssBatch onto block indices.
// ReferenceRefresh is a single-process implementation of the whole protocol
// used by unit tests and as executable documentation of the algebra; the
// message-passing version lives in pisces::Host and must agree with it.
#pragma once

#include <optional>

#include "pss/packed_shamir.h"
#include "pss/vss.h"

namespace pisces::pss {

struct RefreshPlan {
  std::size_t blocks = 0;
  std::size_t usable = 0;  // usable rows per group = dealers - 2t
  std::size_t groups = 0;

  static RefreshPlan For(std::size_t blocks, const Params& p);
  // Plan for a round run by a subset of `dealers` live participants (dealer
  // exclusion). Requires dealers > 2t: the hyperinvertible transform still
  // opens 2t check rows, so at least one usable row must remain.
  static RefreshPlan For(std::size_t blocks, const Params& p,
                         std::size_t dealers);

  // Block refreshed by usable row a_rel of group g; nullopt for padding
  // outputs beyond the block count.
  std::optional<std::size_t> BlockFor(std::size_t a_rel, std::size_t g) const {
    std::size_t idx = g * usable + a_rel;
    if (idx >= blocks) return std::nullopt;
    return idx;
  }
};

// Builds the VssBatch for a refresh round: all n parties, vanishing set
// {beta_1..beta_l}, degree d, 2t check rows.
VssBatch MakeRefreshBatch(const PackedShamir& shamir, std::size_t blocks);

// Same, but run among an agreed subset of live participants (dealer set ==
// holder set == participants). Used after dealer exclusion: the round
// completes from the surviving >= n-2t dealings as long as more than 2t
// participants remain. Participants must be sorted host ids.
VssBatch MakeRefreshBatch(const PackedShamir& shamir, std::size_t blocks,
                          std::span<const std::uint32_t> participants);

// Runs the complete refresh locally: shares_by_party[i][b] is party i's share
// of block b; updated in place. Throws InternalError if verification fails
// (cannot happen without fault injection).
void ReferenceRefresh(const PackedShamir& shamir,
                      std::vector<std::vector<FpElem>>& shares_by_party,
                      Rng& rng);

// Active-adversary variant: dealer `cheater` deals through `tamper` (see
// pss/tamper.h). Instead of throwing on a failed check row, the round runs
// the attribution pass the hypervisor uses after a wedged refresh: every
// dealer's dealing vector (its value at each holder point) is re-verified for
// degree <= d and vanishing on the betas, and the dealers that fail are
// returned. When the returned set is empty the round verified clean and the
// refresh was applied; otherwise shares_by_party is left untouched (the
// protocol would retry without the attributed dealers). Executable
// documentation of the algebra behind Hypervisor::AttributeCorruptDealers.
std::vector<std::uint32_t> ReferenceRefreshDetect(
    const PackedShamir& shamir,
    std::vector<std::vector<FpElem>>& shares_by_party, Rng& rng,
    std::uint32_t cheater, DealTamper& tamper);

}  // namespace pisces::pss
