// Protocol-layer tamper hook for active-adversary testing.
//
// A Byzantine dealer does not attack the wire (links are authenticated and
// encrypted); it lies at the protocol layer, before its dealing rows are
// sealed for each receiver. DealTamper is the seam: VssBatch::Deal/DealFrom
// accept an optional tamper and apply it to the finished dealing matrix on
// the caller's thread, after the parallel evaluation fan-out, so results stay
// deterministic for any pool size. The honest path is a null-pointer check --
// when no tamper is armed the produced bytes are identical to a build without
// this hook.
//
// Implementations live in src/pisces/byzantine.* (the strategy engine); this
// header keeps pss free of any dependency on them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "field/fp.h"

namespace pisces::pss {

class DealTamper {
 public:
  virtual ~DealTamper() = default;

  // deal[k][g] is the group-g evaluation destined for holders[k]. Mutating a
  // single row equivocates (receivers see inconsistent dealings); mutating
  // the whole matrix consistently submits a corrupted / degree-violating
  // sharing. `recovery` distinguishes recovery-mask dealings from refresh
  // zero-sharings so strategies can target one phase.
  virtual void TamperDeal(std::span<const std::uint32_t> holders,
                          bool recovery,
                          std::vector<std::vector<field::FpElem>>& deal) = 0;
};

}  // namespace pisces::pss
