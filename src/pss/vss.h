// Verifiable batch generation of random vanishing sharings via
// hyperinvertible matrices (the VSS technique of [16], [15] as used by the
// paper's underlying PSS scheme [7]).
//
// One batch run among `dealers` live parties:
//   1. every dealer samples G random degree-<=d polynomials that vanish on a
//      designated point set V and sends each holder its evaluations (Deal);
//   2. every holder applies a hyperinvertible matrix M across the dealer
//      dimension, producing `dealers` output sharings per group;
//   3. the first 2t output rows are opened toward verifier parties, who check
//      degree <= d and vanishing on V (Check/Verdict);
//   4. the remaining dealers-2t rows are guaranteed uniformly random
//      vanishing sharings even against t corrupt dealers.
//
// With V = {beta_1..beta_l} the usable outputs are zero-sharings for refresh;
// with V = {alpha_rho} they are recovery masks for rebooted host rho. The
// functions here are pure compute; pisces::Host wires them to messages.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/poly.h"
#include "math/poly_engine.h"
#include "pss/params.h"
#include "pss/tamper.h"

namespace pisces::pss {

using field::FpCtx;
using field::FpElem;

// Static description of one batch run, shared by all participants.
class VssBatch {
 public:
  // `holders` are the live parties (dealer set == holder set), in a globally
  // agreed order. `vanish` is V. `degree` is d. `ctx` must outlive the batch.
  // `recovery` marks recovery-mask batches (set by MakeRecoveryBatch); it
  // cannot be inferred from the vanishing set -- a refresh batch at packing
  // l = 1 also vanishes on a single point.
  VssBatch(const FpCtx& ctx, const EvalPoints& points,
           std::vector<std::uint32_t> holders, std::vector<FpElem> vanish,
           std::size_t degree, std::size_t check_rows, std::size_t groups,
           bool recovery = false);

  const FpCtx& ctx() const { return *ctx_; }
  std::size_t dealers() const { return holders_.size(); }
  std::size_t groups() const { return groups_; }
  std::size_t check_rows() const { return check_rows_; }
  std::size_t usable_rows() const { return holders_.size() - check_rows_; }
  std::size_t degree() const { return degree_; }
  const std::vector<std::uint32_t>& holders() const { return holders_; }
  // Position of a party in the holder order, or npos.
  std::size_t IndexOf(std::uint32_t party) const;

  // --- dealer side ---
  // Samples G vanishing polynomials and evaluates them for every holder.
  // Result: deal[k][g] = z_g(alpha of holders()[k]). Row k is the payload of
  // the Deal message to holder k. Randomness is drawn serially (RNG order is
  // part of the determinism contract); the evaluations fan out across the
  // global task pool. extra_cpu_ns accumulates pool-worker CPU time (the
  // caller's ambient CpuTimer cannot see it). `tamper`, when non-null, is
  // applied to the finished dealing matrix on the caller's thread (after the
  // pool fan-out) -- the active-adversary seam; see pss/tamper.h.
  std::vector<std::vector<FpElem>> Deal(Rng& rng,
                                        std::uint64_t* extra_cpu_ns = nullptr,
                                        DealTamper* tamper = nullptr) const;

  // The two halves of Deal, separated so batch callers (refresh: one dealing
  // per live party) can draw every dealer's randomness serially and then
  // evaluate all dealings in parallel. us[g] is the uniform mask polynomial
  // of group g; DealFrom is pure compute (apart from the optional tamper).
  std::vector<math::Poly> DrawDealRandomness(Rng& rng) const;
  std::vector<std::vector<FpElem>> DealFrom(
      std::span<const math::Poly> us, std::uint64_t* extra_cpu_ns = nullptr,
      DealTamper* tamper = nullptr) const;

  // True for recovery-mask batches (V = {alpha_rho}), false for refresh
  // zero-sharing batches (V = betas). Forwarded to the tamper hook so
  // strategies can target one phase.
  bool recovery_shape() const { return recovery_; }

  // --- holder side ---
  // deals_by_dealer[i][g]: the evaluation received from dealer i (order of
  // holders()). Returns out[a][g] for output rows a < dealers().
  // `workers` caps the output-row fan-out (the paper's b); the chunks run on
  // the global task pool. When extra_cpu_ns is non-null it accumulates the
  // CPU time consumed on pool worker threads -- the caller's own chunk is
  // visible to the caller's thread-CPU clock and is not included.
  std::vector<std::vector<FpElem>> Transform(
      const std::vector<std::vector<FpElem>>& deals_by_dealer,
      std::size_t workers = 1, std::uint64_t* extra_cpu_ns = nullptr) const;

  // --- verifier side ---
  // values[k]: holder k's evaluation of one check-row sharing (one group).
  // Checks degree <= d and vanishing on V.
  bool VerifyCheckVector(std::span<const FpElem> values) const;

  // Verifier responsible for check row a (round-robin over holders).
  std::uint32_t VerifierOf(std::size_t check_row) const {
    return holders_[check_row % holders_.size()];
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  const FpCtx* ctx_;
  std::vector<std::uint32_t> holders_;
  std::vector<FpElem> holder_alphas_;
  std::vector<FpElem> vanish_;
  std::size_t degree_;
  std::size_t check_rows_;
  std::size_t groups_;
  bool recovery_ = false;
  std::shared_ptr<const math::Matrix> m_;  // hyperinvertible, dealers^2
  math::Poly vanishing_poly_;  // prod over V of (x - v), reused per dealing
  // Vandermonde rows over the holder alphas (degree+1 columns): dotting row k
  // with a dealing's coefficients evaluates it at holder k. Cached across
  // batches with the same holder set (every window rebuilds this batch).
  std::shared_ptr<const math::Matrix> eval_rows_;
  // Above PolyEvalCrossover() holders the dealing evaluation runs one
  // remainder-tree multipoint evaluation per group over this cached domain
  // instead of the per-holder Vandermonde dots; null below the crossover.
  std::shared_ptr<const math::SubproductTree> deal_domain_;
  // Verification weights over the first degree+1 holder points: one weight
  // vector per extra holder point (degree check) followed by one per
  // vanishing point (zero check). All from a single batch inversion, cached
  // across batches keyed by the point sets (see math/weight_cache.h).
  std::shared_ptr<const std::vector<std::vector<FpElem>>> check_weights_;
  std::size_t n_extra_ = 0;  // first n_extra_ weight vectors are degree checks
};

// Groups needed so that usable_rows * groups >= wanted sharings.
std::size_t GroupsFor(std::size_t wanted, std::size_t usable_rows);

}  // namespace pisces::pss
