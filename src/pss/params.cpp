#include "pss/params.h"

#include <string>

namespace pisces::pss {

void Params::Validate() const {
  Require(n >= 4, "Params: need at least 4 parties");
  Require(t >= 1, "Params: t must be >= 1");
  Require(l >= 1, "Params: l must be >= 1");
  Require(r >= 1, "Params: r must be >= 1");
  Require(b >= 1, "Params: b must be >= 1");
  Require(3 * t + l < n,
          "Params: privacy/robustness requires 3t + l < n (paper III-B)");
  // The paper states r + l < n - 3t (SectionVI-D) but its own recommended
  // parameters (n=21: t=4, l=6, r=3) sit exactly at equality, so the bound is
  // interpreted as non-strict. Our construction needs n - r >= t + l + 1
  // survivors to interpolate and n - r - 2t >= 1 usable rows, both implied.
  Require(r + l <= n - 3 * t,
          "Params: batched reboot requires r + l <= n - 3t (paper VI-D)");
  Require(r < n, "Params: cannot reboot every host at once");
  // Field must be able to host n + l distinct nonzero evaluation points; any
  // supported field size trivially satisfies this, but keep the check honest.
  Require(field_bits >= 64 || n + l < (1ull << field_bits),
          "Params: field too small for evaluation points");
}

bool Params::IsValid() const {
  try {
    Validate();
    return true;
  } catch (const InvalidArgument&) {
    return false;
  }
}

Params Params::Natural(std::size_t n, std::size_t field_bits) {
  Params p;
  p.n = n;
  p.t = n / 4;
  p.l = (n / 4 > 1) ? n / 4 - 1 : 1;
  p.r = 1;
  p.field_bits = field_bits;
  // Natural parameters satisfy 3t + l < n only with slack for r; shrink l
  // until a single reboot fits.
  while (p.l > 1 && !(p.r + p.l < p.n - 3 * p.t)) --p.l;
  p.Validate();
  return p;
}

EvalPoints::EvalPoints(const field::FpCtx& ctx, std::size_t n, std::size_t l) {
  betas_.reserve(l);
  for (std::size_t j = 0; j < l; ++j) {
    betas_.push_back(ctx.FromUint64(j + 1));
  }
  alphas_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alphas_.push_back(ctx.FromUint64(l + 1 + i));
  }
}

std::vector<field::FpElem> EvalPoints::AlphasOf(
    std::span<const std::uint32_t> parties) const {
  std::vector<field::FpElem> out;
  out.reserve(parties.size());
  for (std::uint32_t p : parties) out.push_back(alpha(p));
  return out;
}

}  // namespace pisces::pss
