// Baseline: HJKY'95-style proactive refresh (Herzberg-Jarecki-Krawczyk-Yung,
// reference [25] in the paper).
//
// The paper's core systems claim is that the batched scheme of [7] reduces
// the amortized update complexity from O(n^2) per secret -- "the best
// overhead in existing schemes, i.e., [25]" -- to O(1). This module
// implements that baseline so the claim can be measured instead of cited:
//
//  * one secret per polynomial (no packing: HJKY shares at the free term);
//  * refresh deals one fresh zero-sharing PER PARTY PER SECRET: every party
//    sends every other party one element per secret, n(n-1) elements per
//    secret per round;
//  * no hyperinvertible batching: nothing is amortized across secrets.
//
// bench/ablation_baseline_hjky compares bytes and CPU per secret against the
// batched pipeline across n.
#pragma once

#include "pss/packed_shamir.h"

namespace pisces::pss {

struct BaselineStats {
  // Field elements that crossed the (modeled) wire.
  std::uint64_t elems_sent = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t cpu_ns = 0;
};

// Shares `secrets` one-per-polynomial at the free term (degree t, classic
// Shamir): returns shares_by_party[i][s].
std::vector<std::vector<field::FpElem>> BaselineShare(
    const field::FpCtx& ctx, const EvalPoints& points, std::size_t n,
    std::size_t t, std::span<const field::FpElem> secrets, Rng& rng);

// One HJKY refresh round over all secrets: every party deals a degree-t
// polynomial with zero free term per secret; everyone adds the sum of the
// dealt evaluations to its share. Updates shares in place and returns the
// communication/CPU accounting.
BaselineStats BaselineRefresh(
    const field::FpCtx& ctx, const EvalPoints& points, std::size_t n,
    std::size_t t, std::vector<std::vector<field::FpElem>>& shares_by_party,
    Rng& rng);

// Reconstructs secret s from t+1 shares (party indices 0..t used).
field::FpElem BaselineReconstruct(
    const field::FpCtx& ctx, const EvalPoints& points, std::size_t t,
    const std::vector<std::vector<field::FpElem>>& shares_by_party,
    std::size_t secret_index);

}  // namespace pisces::pss
