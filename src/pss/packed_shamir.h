// Packed Shamir secret sharing (Franklin-Yung [22] in the paper).
//
// A block of l secrets (s_1..s_l) is shared with one random polynomial f of
// degree <= d = t + l satisfying f(beta_j) = s_j; party i's share is
// f(alpha_i). Privacy holds against any t shares; any d+1 shares reconstruct.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.h"
#include "math/poly.h"
#include "pss/params.h"

namespace pisces::pss {

using field::FpCtx;
using field::FpElem;

class PackedShamir {
 public:
  PackedShamir(std::shared_ptr<const FpCtx> ctx, Params params);

  const FpCtx& ctx() const { return *ctx_; }
  const Params& params() const { return params_; }
  const EvalPoints& points() const { return points_; }

  // Shares one block; secrets.size() must be exactly l. Returns n shares,
  // indexed by party. Equivalent to ShareBlocks on a single block (same RNG
  // consumption), kept for the scalar call sites.
  std::vector<FpElem> ShareBlock(std::span<const FpElem> secrets,
                                 Rng& rng) const;

  // Shares many blocks at once: out[b][i] is party i's share of block b.
  // Randomness is drawn serially in block order (so the result is
  // bit-identical to calling ShareBlock per block with the same rng), then
  // the constraint solve and share evaluation fan out over the global task
  // pool. extra_cpu_ns accumulates pool-worker CPU (see common/task_pool.h).
  std::vector<std::vector<FpElem>> ShareBlocks(
      std::span<const std::vector<FpElem>> blocks, Rng& rng,
      std::uint64_t* extra_cpu_ns = nullptr) const;

  // Reconstructs the l secrets of one block from shares held by `parties`
  // (at least d+1 of them; extras are used for a consistency check).
  std::vector<FpElem> ReconstructBlock(std::span<const std::uint32_t> parties,
                                       std::span<const FpElem> shares) const;

  // Reconstructs many blocks against one responder set: out[b] is the secret
  // block recovered from shares_by_block[b] (aligned with `parties`). The
  // Lagrange weights are computed once (memoized across calls, see
  // ReconstructionWeights) and the per-block weighted sums fan out over the
  // global task pool.
  std::vector<std::vector<FpElem>> ReconstructBlocks(
      std::span<const std::uint32_t> parties,
      std::span<const std::vector<FpElem>> shares_by_block,
      std::uint64_t* extra_cpu_ns = nullptr) const;

  // True iff the given (party, share) points lie on a degree <= d polynomial.
  bool ConsistentShares(std::span<const std::uint32_t> parties,
                        std::span<const FpElem> shares) const;

  // Reconstruction tolerating corrupted share values (Berlekamp-Welch):
  // succeeds when at most floor((parties.size() - d - 1) / 2) shares are
  // wrong -- with the paper's 3t + l < n this covers t actively corrupted
  // responders when all n respond. nullopt when decoding fails. When
  // `corrupted` is non-null it receives the indices into `parties` whose
  // shares disagreed with the decoded polynomial (empty on clean input).
  std::optional<std::vector<FpElem>> RobustReconstructBlock(
      std::span<const std::uint32_t> parties, std::span<const FpElem> shares,
      std::vector<std::size_t>* corrupted = nullptr) const;

  // Precomputed reconstruction weights: (*recon)[j][i] is the weight of
  // parties[i]'s share in secret j. Memoized process-wide per responder set
  // (math/weight_cache.h), so reconstructing many blocks -- or many files --
  // against the same responders pays the O(d^2) Lagrange work once.
  std::shared_ptr<const std::vector<std::vector<FpElem>>>
  ReconstructionWeights(std::span<const std::uint32_t> parties) const;

 private:
  std::shared_ptr<const FpCtx> ctx_;
  Params params_;
  EvalPoints points_;
};

}  // namespace pisces::pss
