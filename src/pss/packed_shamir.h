// Packed Shamir secret sharing (Franklin-Yung [22] in the paper).
//
// A block of l secrets (s_1..s_l) is shared with one random polynomial f of
// degree <= d = t + l satisfying f(beta_j) = s_j; party i's share is
// f(alpha_i). Privacy holds against any t shares; any d+1 shares reconstruct.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.h"
#include "math/poly.h"
#include "pss/params.h"

namespace pisces::pss {

using field::FpCtx;
using field::FpElem;

class PackedShamir {
 public:
  PackedShamir(std::shared_ptr<const FpCtx> ctx, Params params);

  const FpCtx& ctx() const { return *ctx_; }
  const Params& params() const { return params_; }
  const EvalPoints& points() const { return points_; }

  // Shares one block; secrets.size() must be exactly l. Returns n shares,
  // indexed by party.
  std::vector<FpElem> ShareBlock(std::span<const FpElem> secrets,
                                 Rng& rng) const;

  // Reconstructs the l secrets of one block from shares held by `parties`
  // (at least d+1 of them; extras are used for a consistency check).
  std::vector<FpElem> ReconstructBlock(std::span<const std::uint32_t> parties,
                                       std::span<const FpElem> shares) const;

  // True iff the given (party, share) points lie on a degree <= d polynomial.
  bool ConsistentShares(std::span<const std::uint32_t> parties,
                        std::span<const FpElem> shares) const;

  // Reconstruction tolerating corrupted share values (Berlekamp-Welch):
  // succeeds when at most floor((parties.size() - d - 1) / 2) shares are
  // wrong -- with the paper's 3t + l < n this covers t actively corrupted
  // responders when all n respond. nullopt when decoding fails.
  std::optional<std::vector<FpElem>> RobustReconstructBlock(
      std::span<const std::uint32_t> parties,
      std::span<const FpElem> shares) const;

  // Precomputed reconstruction weights: recon[j][i] is the weight of
  // parties[i]'s share in secret j. Reconstructing many blocks against the
  // same responder set amortizes the O(d^2) Lagrange work (the client's
  // download path).
  std::vector<std::vector<FpElem>> ReconstructionWeights(
      std::span<const std::uint32_t> parties) const;

 private:
  std::shared_ptr<const FpCtx> ctx_;
  Params params_;
  EvalPoints points_;
};

}  // namespace pisces::pss
