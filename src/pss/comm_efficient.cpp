#include "pss/comm_efficient.h"

#include "common/task_pool.h"
#include "math/weight_cache.h"

namespace pisces::pss {

StripeLayout::StripeLayout(std::size_t contacts_, std::size_t need_)
    : contacts(contacts_), need(need_) {
  Require(need > 0 && need <= contacts,
          "StripeLayout: need must be in [1, contacts]");
}

std::vector<std::uint32_t> StripeLayout::SendersFor(std::size_t block) const {
  std::vector<std::uint32_t> out;
  out.reserve(need);
  const std::size_t start = block % contacts;
  for (std::size_t k = 0; k < need; ++k) {
    out.push_back(static_cast<std::uint32_t>((start + k) % contacts));
  }
  return out;
}

std::vector<std::size_t> StripeLayout::BlocksFor(std::size_t contact,
                                                 std::size_t blocks) const {
  std::vector<std::size_t> out;
  out.reserve(CountFor(contact, blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    if (Sends(contact, b)) out.push_back(b);
  }
  return out;
}

std::size_t StripeLayout::CountFor(std::size_t contact,
                                   std::size_t blocks) const {
  // Residues r with Sends(contact, r) each contribute the number of blocks
  // in that residue class; counting per class keeps this O(contacts).
  std::size_t count = 0;
  for (std::size_t r = 0; r < contacts && r < blocks; ++r) {
    if (Sends(contact, r)) count += (blocks - r - 1) / contacts + 1;
  }
  return count;
}

bool StaircaseFeasible(const Params& p, std::size_t contacts) {
  return contacts >= p.degree() + 1 && contacts <= p.n;
}

std::size_t ResolveContacts(const Params& p, std::uint32_t requested) {
  const std::size_t d = requested == 0 ? p.n : requested;
  return StaircaseFeasible(p, d) ? d : 0;
}

std::vector<FpElem> StripedReconstruct(
    const PackedShamir& shamir, const StripeLayout& layout,
    std::span<const std::uint32_t> contacted,
    std::span<const std::vector<FpElem>> rows_by_contact, std::size_t blocks,
    std::uint64_t* extra_cpu_ns) {
  const Params& p = shamir.params();
  const field::FpCtx& ctx = shamir.ctx();
  Require(contacted.size() == layout.contacts,
          "StripedReconstruct: contact set size mismatch");
  Require(rows_by_contact.size() == layout.contacts,
          "StripedReconstruct: row set size mismatch");
  Require(layout.need == p.degree() + 1,
          "StripedReconstruct: need must be degree+1");
  for (std::size_t j = 0; j < layout.contacts; ++j) {
    Require(rows_by_contact[j].size() == layout.CountFor(j, blocks),
            "StripedReconstruct: wrong stripe length");
  }

  // One memoized weight set per residue class: blocks b and b+contacts share
  // their sender subset, so at most `contacts` distinct Lagrange systems
  // exist regardless of the block count.
  const std::size_t classes = std::min(layout.contacts, blocks);
  std::vector<std::vector<std::uint32_t>> parties_of(classes);
  std::vector<std::shared_ptr<const std::vector<std::vector<FpElem>>>> weights(
      classes);
  for (std::size_t r = 0; r < classes; ++r) {
    for (std::uint32_t j : layout.SendersFor(r)) {
      parties_of[r].push_back(contacted[j]);
    }
    weights[r] = shamir.ReconstructionWeights(parties_of[r]);
  }

  // Position of block b inside contact j's stripe. BlocksFor lists assigned
  // blocks in ascending BLOCK order (that is the order hosts serve them), so
  // b's rank is the number of assigned blocks strictly below it: residue r
  // contributes ceil((b - r) / contacts) such blocks. O(contacts) per lookup.
  auto stripe_index = [&](std::size_t j, std::size_t b) {
    std::size_t idx = 0;
    for (std::size_t r = 0; r < layout.contacts; ++r) {
      if (b > r && layout.Sends(j, r)) {
        idx += (b - r + layout.contacts - 1) / layout.contacts;
      }
    }
    return idx;
  };

  std::vector<FpElem> secrets(blocks * p.l, ctx.Zero());
  // Blocks are independent and write disjoint slots: deterministic fan-out.
  GlobalPool().ParallelFor(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t r = b % layout.contacts;
        std::vector<FpElem> ys;
        ys.reserve(layout.need);
        for (std::uint32_t j : layout.SendersFor(b)) {
          ys.push_back(rows_by_contact[j][stripe_index(j, b)]);
        }
        for (std::size_t s = 0; s < p.l; ++s) {
          FpElem acc = ctx.Zero();
          for (std::size_t k = 0; k < layout.need; ++k) {
            acc = ctx.Add(acc, ctx.Mul((*weights[r])[s][k], ys[k]));
          }
          secrets[b * p.l + s] = acc;
        }
      },
      extra_cpu_ns);
  return secrets;
}

std::size_t DefaultRecoveryBudget(const Params& p, std::size_t survivors) {
  return std::min(survivors, p.degree() + 3);
}

}  // namespace pisces::pss
