#include "pss/reshare.h"

#include <set>

namespace pisces::pss {

using field::FpElem;

ResharePublic MakeResharePublic(const PackedShamir& from, const PackedShamir& to,
                                std::vector<std::uint32_t> contributors) {
  const field::FpCtx& ctx = from.ctx();
  Require(&ctx == &to.ctx(), "MakeResharePublic: schemes must share a field");
  Require(from.params().l == to.params().l,
          "MakeResharePublic: packing must match (re-pack via the codec "
          "otherwise)");
  const std::size_t l = from.params().l;
  const std::size_t d_old = from.params().degree();
  const std::size_t d_new = to.params().degree();
  const std::size_t n_new = to.params().n;
  Require(d_new >= l, "MakeResharePublic: new degree below packing");
  Require(contributors.size() == d_old + 1,
          "MakeResharePublic: need exactly d_old+1 contributors");
  std::set<std::uint32_t> distinct(contributors.begin(), contributors.end());
  Require(distinct.size() == contributors.size(),
          "MakeResharePublic: duplicate contributor");
  for (std::uint32_t i : contributors) {
    Require(i < from.params().n, "MakeResharePublic: contributor out of range");
  }

  ResharePublic pub;
  pub.from = &from;
  pub.to = &to;
  pub.contributors = std::move(contributors);

  // w[j][i]: weight of contributor i's share in the old secret s_j.
  auto w = from.ReconstructionWeights(pub.contributors);
  pub.weights = *w;

  // lb[rho][j]: Lagrange basis over the betas evaluated at the new party
  // points -- the degree-(l-1) interpolant of the secrets at alpha'_rho.
  std::vector<FpElem> new_alphas(to.points().alphas().begin(),
                                 to.points().alphas().end());
  auto lb = math::LagrangeCoeffsMulti(ctx, to.points().betas(), new_alphas);

  // coeff[rho][i] = sum_j lb[rho][j] * w[j][i]. Block independent.
  pub.coeff.assign(n_new, std::vector<FpElem>(d_old + 1, ctx.Zero()));
  for (std::size_t rho = 0; rho < n_new; ++rho) {
    for (std::size_t i = 0; i <= d_old; ++i) {
      FpElem acc = ctx.Zero();
      for (std::size_t j = 0; j < l; ++j) {
        acc = ctx.Add(acc, ctx.Mul(lb[rho][j], pub.weights[j][i]));
      }
      pub.coeff[rho][i] = acc;
    }
  }

  // Masking constraint: every mask polynomial vanishes at every new beta, so
  // contributions rerandomize the sharing without moving the secrets.
  pub.vanish = math::Poly::Vanishing(ctx, to.points().betas());
  return pub;
}

std::vector<std::vector<FpElem>> ReshareContribution(
    const ResharePublic& pub, std::size_t ordinal,
    std::span<const FpElem> own_shares, Rng& rng, DealTamper* tamper) {
  const field::FpCtx& ctx = pub.from->ctx();
  const std::size_t l = pub.from->params().l;
  const std::size_t d_new = pub.to->params().degree();
  const std::size_t n_new = pub.to->params().n;
  Require(ordinal < pub.contributors.size(),
          "ReshareContribution: ordinal out of range");
  const std::size_t blocks = own_shares.size();

  std::vector<std::vector<FpElem>> out(n_new,
                                       std::vector<FpElem>(blocks, ctx.Zero()));
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    // Fresh mask per block: random degree-<=d_new polynomial vanishing at
    // every beta, so each wire value is marginally uniform.
    math::Poly u = math::Poly::Random(ctx, rng, d_new - l);
    math::Poly m = math::Poly::Mul(ctx, pub.vanish, u);
    for (std::size_t rho = 0; rho < n_new; ++rho) {
      // v_i(alpha'_rho) = c_i(alpha'_rho) * f(alpha_i) + m_i(alpha'_rho).
      out[rho][blk] = ctx.Add(ctx.Mul(pub.coeff[rho][ordinal], own_shares[blk]),
                              m.Eval(ctx, pub.to->points().alpha(rho)));
    }
  }

  if (tamper != nullptr) {
    // The Byzantine dealer seam: holders are the new party ids, and a
    // reshare sub-sharing is a (non-recovery) dealing for tamper purposes.
    std::vector<std::uint32_t> holders(n_new);
    for (std::uint32_t rho = 0; rho < n_new; ++rho) holders[rho] = rho;
    tamper->TamperDeal(holders, /*recovery=*/false, out);
  }
  return out;
}

bool VerifyReshareContribution(
    const ResharePublic& pub, std::size_t ordinal,
    const std::vector<std::vector<FpElem>>& contribution) {
  const field::FpCtx& ctx = pub.from->ctx();
  const std::size_t l = pub.from->params().l;
  const std::size_t d_new = pub.to->params().degree();
  const std::size_t n_new = pub.to->params().n;
  Require(ordinal < pub.contributors.size(),
          "VerifyReshareContribution: ordinal out of range");
  if (contribution.size() != n_new) return false;
  const std::size_t blocks = contribution.at(0).size();
  for (const auto& row : contribution) {
    if (row.size() != blocks) return false;
  }

  std::vector<FpElem> xs(pub.to->points().alphas().begin(),
                         pub.to->points().alphas().end());
  math::PointChecker checker(ctx, xs, d_new);
  std::vector<FpElem> col(n_new);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t rho = 0; rho < n_new; ++rho) {
      col[rho] = contribution[rho][blk];
    }
    // Degree check (vacuous when n' == d'+1; the parameter constraints give
    // n' >= d'+2 whenever t' >= 1).
    if (!checker.Consistent(col)) return false;
    if (l < 2) continue;
    // Beta proportionality: v_i(beta_j) = w[j][i] * f(alpha_i), so the beta
    // values must be proportional to the contributor's weight column with
    // one consistent (secret) factor. Cross-multiplying removes the factor:
    //   v(beta_j) * w[k][i] == v(beta_k) * w[j][i]  for all j, k.
    std::vector<FpElem> at_beta(l, ctx.Zero());
    for (std::size_t j = 0; j < l; ++j) {
      at_beta[j] = checker.EvalAt(pub.to->points().beta(j), col);
    }
    for (std::size_t j = 1; j < l; ++j) {
      const FpElem lhs =
          ctx.Mul(at_beta[0], pub.weights[j][ordinal]);
      const FpElem rhs =
          ctx.Mul(at_beta[j], pub.weights[0][ordinal]);
      if (!ctx.Eq(lhs, rhs)) return false;
    }
  }
  return true;
}

void AccumulateReshare(const field::FpCtx& ctx,
                       std::vector<std::vector<FpElem>>& acc,
                       const std::vector<std::vector<FpElem>>& contribution) {
  if (acc.empty()) {
    acc.assign(contribution.size(),
               std::vector<FpElem>(contribution.at(0).size(), ctx.Zero()));
  }
  Require(acc.size() == contribution.size(),
          "AccumulateReshare: party-count mismatch");
  for (std::size_t rho = 0; rho < acc.size(); ++rho) {
    Require(acc[rho].size() == contribution[rho].size(),
            "AccumulateReshare: block-count mismatch");
    for (std::size_t blk = 0; blk < acc[rho].size(); ++blk) {
      acc[rho][blk] = ctx.Add(acc[rho][blk], contribution[rho][blk]);
    }
  }
}

std::vector<std::vector<FpElem>> ReferenceReshare(
    const PackedShamir& from, const PackedShamir& to,
    const std::vector<std::vector<FpElem>>& shares_old, Rng& rng) {
  const field::FpCtx& ctx = from.ctx();
  const std::size_t d_old = from.params().degree();
  Require(shares_old.size() == from.params().n,
          "ReferenceReshare: wrong party count");

  // Contributors: the first d_old+1 old parties (HBC, all responsive).
  std::vector<std::uint32_t> contributors(d_old + 1);
  for (std::uint32_t i = 0; i <= d_old; ++i) contributors[i] = i;
  ResharePublic pub = MakeResharePublic(from, to, std::move(contributors));

  std::vector<std::vector<FpElem>> shares_new;
  for (std::size_t i = 0; i < pub.contributors.size(); ++i) {
    auto contribution =
        ReshareContribution(pub, i, shares_old[pub.contributors[i]], rng);
    AccumulateReshare(ctx, shares_new, contribution);
  }
  return shares_new;
}

}  // namespace pisces::pss
