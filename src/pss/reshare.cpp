#include "pss/reshare.h"

namespace pisces::pss {

using field::FpElem;

std::vector<std::vector<FpElem>> ReferenceReshare(
    const PackedShamir& from, const PackedShamir& to,
    const std::vector<std::vector<FpElem>>& shares_old, Rng& rng) {
  const field::FpCtx& ctx = from.ctx();
  Require(&ctx == &to.ctx(), "ReferenceReshare: schemes must share a field");
  Require(from.params().l == to.params().l,
          "ReferenceReshare: packing must match (re-pack via the codec "
          "otherwise)");
  const std::size_t l = from.params().l;
  const std::size_t d_old = from.params().degree();
  const std::size_t d_new = to.params().degree();
  const std::size_t n_old = from.params().n;
  const std::size_t n_new = to.params().n;
  Require(shares_old.size() == n_old, "ReferenceReshare: wrong party count");
  const std::size_t blocks = shares_old.at(0).size();

  // Contributors: the first d_old+1 old parties (HBC, all responsive).
  std::vector<std::uint32_t> contributors(d_old + 1);
  for (std::uint32_t i = 0; i <= d_old; ++i) contributors[i] = i;

  // w[j][i]: weight of contributor i's share in the old secret s_j.
  auto w = from.ReconstructionWeights(contributors);

  // lb[rho][j]: Lagrange basis over the betas evaluated at the new party
  // points -- the degree-(l-1) interpolant of the secrets at alpha'_rho.
  std::vector<FpElem> new_alphas(to.points().alphas().begin(),
                                 to.points().alphas().end());
  auto lb = math::LagrangeCoeffsMulti(ctx, to.points().betas(), new_alphas);

  // c[rho][i] = sum_j lb[rho][j] * w[j][i]: contributor i's public
  // coefficient toward new party rho. Block independent.
  std::vector<std::vector<FpElem>> c(n_new,
                                     std::vector<FpElem>(d_old + 1, ctx.Zero()));
  for (std::size_t rho = 0; rho < n_new; ++rho) {
    for (std::size_t i = 0; i <= d_old; ++i) {
      FpElem acc = ctx.Zero();
      for (std::size_t j = 0; j < l; ++j) {
        acc = ctx.Add(acc, ctx.Mul(lb[rho][j], (*w)[j][i]));
      }
      c[rho][i] = acc;
    }
  }

  // Masking: each contributor adds a random degree-<=d_new polynomial that
  // vanishes at every beta, so its wire contribution is marginally uniform.
  math::Poly vanish = math::Poly::Vanishing(ctx, to.points().betas());
  Require(d_new >= l, "ReferenceReshare: new degree below packing");

  std::vector<std::vector<FpElem>> shares_new(
      n_new, std::vector<FpElem>(blocks, ctx.Zero()));
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t i = 0; i <= d_old; ++i) {
      math::Poly u = math::Poly::Random(ctx, rng, d_new - l);
      math::Poly m = math::Poly::Mul(ctx, vanish, u);
      const FpElem& share = shares_old[contributors[i]][blk];
      for (std::size_t rho = 0; rho < n_new; ++rho) {
        // v_i(rho) = c[rho][i] * f(alpha_i) + m_i(alpha'_rho): what old party
        // i would send new party rho. The new share is the sum over i.
        FpElem contribution = ctx.Add(ctx.Mul(c[rho][i], share),
                                      m.Eval(ctx, to.points().alpha(rho)));
        shares_new[rho][blk] = ctx.Add(shares_new[rho][blk], contribution);
      }
    }
  }
  return shares_new;
}

}  // namespace pisces::pss
