// Protocol parameters and evaluation-point layout for packed proactive
// secret sharing (paper SectionIII-B "Setting the Parameters" and SectionVI-A).
//
//   n  parties (share storage hosts)
//   t  tolerated simultaneous corruptions
//   l  packing parameter (secrets per polynomial)
//   d  polynomial degree, d = t + l
//   r  hosts rebooted per recovery batch
//   b  worker threads per host ("process pool" in the paper's Fig 5)
//   g  field size in bits
//
// Constraints: 3t + l < n (privacy + robustness) and r + l < n - 3t
// (paper SectionVI-D). The paper's natural choice is t = n/4, l = n/4 - 1.
#pragma once

#include <cstddef>
#include <vector>

#include "field/fp.h"

namespace pisces::pss {

struct Params {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t l = 0;
  std::size_t r = 1;
  std::size_t b = 1;
  std::size_t field_bits = 1024;

  std::size_t degree() const { return t + l; }
  // Rows of the hyperinvertible transform opened for verification.
  std::size_t check_rows() const { return 2 * t; }
  // Usable verified sharings per transform over `dealers` participants.
  std::size_t UsableRows(std::size_t dealers) const {
    return dealers - check_rows();
  }

  // Throws InvalidArgument when any constraint is violated.
  void Validate() const;
  bool IsValid() const;

  // The paper's natural parameter choice for a given n: t = n/4, l = n/4 - 1
  // (adjusted to stay valid for small n).
  static Params Natural(std::size_t n, std::size_t field_bits = 1024);
};

// Public evaluation points. Secrets live at beta_j = j (j = 1..l); party i
// holds evaluations at alpha_i = l + 1 + i (i = 0..n-1). Disjoint and
// nonzero by construction.
class EvalPoints {
 public:
  EvalPoints(const field::FpCtx& ctx, std::size_t n, std::size_t l);

  const field::FpElem& alpha(std::size_t party) const { return alphas_.at(party); }
  const field::FpElem& beta(std::size_t j) const { return betas_.at(j); }
  std::span<const field::FpElem> alphas() const { return alphas_; }
  std::span<const field::FpElem> betas() const { return betas_; }

  // alphas of an arbitrary subset of parties.
  std::vector<field::FpElem> AlphasOf(std::span<const std::uint32_t> parties) const;

 private:
  std::vector<field::FpElem> alphas_;
  std::vector<field::FpElem> betas_;
};

}  // namespace pisces::pss
