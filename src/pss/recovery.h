// Share recovery for rebooted hosts (the paper's SectionIII-B
// "reconstructing lost shares", the hard part of any PSS scheme).
//
// For each rebooted host rho, the surviving parties generate verified random
// degree-<=d masking sharings q_b that vanish at alpha_rho (one per block,
// produced by the same hyperinvertible pipeline as refresh, with vanishing
// set {alpha_rho}); each survivor i then sends f_b(alpha_i) + q_b(alpha_i).
// rho interpolates the masked polynomial g_b = f_b + q_b (possible: at least
// d+1 survivors) and evaluates g_b(alpha_rho) = f_b(alpha_rho), its share.
// Privacy: q_b is uniformly random everywhere except alpha_rho, so rho (and
// any t eavesdropped survivors) learn nothing beyond rho's own share.
//
// This is the vanishing-mask formulation of the paper's batched share
// reconstruction; it keeps the same O(1) amortized complexity (n dealings
// yield dealers-2t verified masks) -- see DESIGN.md SectionIII for the
// documented deviation from the share-of-shares matrix inversion.
#pragma once

#include "pss/packed_shamir.h"
#include "pss/vss.h"

namespace pisces::pss {

struct RecoveryPlan {
  std::size_t blocks = 0;
  std::size_t usable = 0;  // survivors - 2t
  std::size_t groups = 0;
  std::vector<std::uint32_t> survivors;  // live parties, ascending

  static RecoveryPlan For(std::size_t blocks, const Params& p,
                          std::span<const std::uint32_t> rebooting);
  // Restricted variant: survivors are drawn from `available` only (hosts that
  // are reachable AND hold consistent shares), minus the rebooting set. Used
  // when recovery must route around crashed or stale hosts.
  static RecoveryPlan For(std::size_t blocks, const Params& p,
                          std::span<const std::uint32_t> rebooting,
                          std::span<const std::uint32_t> available);

  std::optional<std::size_t> BlockFor(std::size_t a_rel, std::size_t g) const {
    std::size_t idx = g * usable + a_rel;
    if (idx >= blocks) return std::nullopt;
    return idx;
  }
};

// Builds the VssBatch for recovering shares of `target` among the plan's
// survivors: vanishing set {alpha_target}, degree d, 2t check rows.
VssBatch MakeRecoveryBatch(const PackedShamir& shamir,
                           const RecoveryPlan& plan, std::uint32_t target);

// Runs a complete recovery locally for every host in `rebooting`:
// shares_by_party[i][b] holds current shares; entries for rebooting parties
// are overwritten with the recovered values. Used by unit tests and as
// executable documentation; pisces::Host implements the message version.
void ReferenceRecover(const PackedShamir& shamir,
                      std::vector<std::vector<FpElem>>& shares_by_party,
                      std::span<const std::uint32_t> rebooting, Rng& rng);

// Active-adversary variant: every survivor listed in `liars` sends corrupted
// masked shares (its true value plus a fixed nonzero offset). The target
// interpolates through them with Berlekamp-Welch -- the mask dealings leave
// exactly the Reed-Solomon slack for e = (survivors - d - 1) / 2 errors --
// and identifies the lying survivors via the decoded polynomial's mismatch
// set. Returns the accused host ids (union over targets and blocks); the
// recovered shares are correct whenever liars.size() fits the radius.
// Executable documentation of the dispute path in Host::MaybeFinishTarget.
std::vector<std::uint32_t> ReferenceRecoverRobust(
    const PackedShamir& shamir,
    std::vector<std::vector<FpElem>>& shares_by_party,
    std::span<const std::uint32_t> rebooting, Rng& rng,
    std::span<const std::uint32_t> liars);

}  // namespace pisces::pss
