// Communication-efficient reconstruct and repair: staircase-style striped
// share layout (Bitar-El Rouayheb, PAPERS.md) adapted to packed Shamir.
//
// The classic download protocol asks every host for its FULL share vector
// (one evaluation per block) and reconstructs from the first degree+1
// responses -- n*B evaluations cross the wire for a B-block file. But any
// degree+1 evaluations per block suffice, and proactive refresh
// re-randomizes every block independently, so per-block downloads are
// lower-bounded at need = degree+1 evaluations. The achievable win is to
// SPREAD that need across a contact set of d in (t, n] hosts, staircase
// style: block b is served by the `need` contacts whose index follows b
// cyclically, so every contacted host ships only ceil(need/d) of its share
// vector and the total transfer is exactly need*B evaluations -- a
// need/n fraction of the classic protocol's bytes at d = n.
//
// The same rotation prices recovery: a rebooted host needs its masked share
// g_b(alpha_target) interpolated from degree+1 survivor points per block, so
// survivors can ship a reduced stripe (budget >= degree+1 points per block,
// the slack buying error detection) instead of their full masked vectors.
//
// Everything here is pure layout math plus reconstruction helpers over the
// PR 8 poly engine caches; no transport or session state.
#pragma once

#include "pss/packed_shamir.h"

namespace pisces::pss {

// Cyclic striped assignment of blocks to a contact set of size `contacts`:
// contact j in [0, contacts) serves block b iff j lies in the window of
// `need` contact indices starting at b mod contacts. Every block is covered
// by exactly `need` contacts and consecutive blocks rotate the window, so
// per-contact load is exactly equal when contacts divides the block count
// and within `need` blocks of even otherwise (ragged residue classes).
struct StripeLayout {
  std::size_t contacts = 0;  // d: hosts contacted
  std::size_t need = 0;      // evaluations required per block (degree+1)

  StripeLayout(std::size_t contacts_, std::size_t need_);

  bool Sends(std::size_t contact, std::size_t block) const {
    return (contact + contacts - block % contacts) % contacts < need;
  }
  // Contact indices serving `block`, in rotation order. All blocks with the
  // same residue mod `contacts` share one sender set, so there are at most
  // `contacts` distinct reconstruction subsets (and weight-cache entries).
  std::vector<std::uint32_t> SendersFor(std::size_t block) const;
  // Blocks (ascending) that `contact` serves out of `blocks` total.
  std::vector<std::size_t> BlocksFor(std::size_t contact,
                                     std::size_t blocks) const;
  std::size_t CountFor(std::size_t contact, std::size_t blocks) const;
};

// A staircase read needs at least need = degree+1 contacts (each block must
// find its quorum inside the contact set) and can use at most n. Degenerate
// d = need means every contact ships everything -- the t+1-style full-share
// read restricted to a subset.
bool StaircaseFeasible(const Params& p, std::size_t contacts);
// Maps a requested contact budget (0 = "all n") onto the feasible range;
// returns 0 when even the clamped budget is infeasible (caller falls back).
std::size_t ResolveContacts(const Params& p, std::uint32_t requested);

// Reconstructs all blocks' secrets from striped responses.
// rows_by_contact[j] holds contact j's assigned evaluations ascending by
// block (exactly layout.CountFor(j, blocks) of them); contacted[j] is the
// party id behind contact index j. Returns blocks*l secrets flattened in
// block-major order. Reuses the memoized reconstruction weights per residue
// class and fans blocks out over the task pool deterministically.
std::vector<FpElem> StripedReconstruct(
    const PackedShamir& shamir, const StripeLayout& layout,
    std::span<const std::uint32_t> contacted,
    std::span<const std::vector<FpElem>> rows_by_contact, std::size_t blocks,
    std::uint64_t* extra_cpu_ns = nullptr);

// Reduced-repair point budget per block: degree+1 evaluations interpolate
// the masked polynomial, +2 slack lets the target DETECT a corrupted
// contribution (consistency check) without paying for full-vector decoding
// radius. Capped at the survivor count (small fleets degenerate to full).
std::size_t DefaultRecoveryBudget(const Params& p, std::size_t survivors);

}  // namespace pisces::pss
