#include "pss/baseline.h"

#include "common/clock.h"

namespace pisces::pss {

using field::FpCtx;
using field::FpElem;

std::vector<std::vector<FpElem>> BaselineShare(
    const FpCtx& ctx, const EvalPoints& points, std::size_t n, std::size_t t,
    std::span<const FpElem> secrets, Rng& rng) {
  Require(t + 1 <= n, "BaselineShare: need t+1 <= n");
  std::vector<std::vector<FpElem>> shares(
      n, std::vector<FpElem>(secrets.size(), ctx.Zero()));
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    // Classic Shamir: f(0) = secret, degree t.
    std::vector<FpElem> coeffs(t + 1, ctx.Zero());
    coeffs[0] = secrets[s];
    for (std::size_t j = 1; j <= t; ++j) coeffs[j] = ctx.Random(rng);
    math::Poly f(std::move(coeffs));
    for (std::size_t i = 0; i < n; ++i) {
      shares[i][s] = f.Eval(ctx, points.alpha(i));
    }
  }
  return shares;
}

BaselineStats BaselineRefresh(
    const FpCtx& ctx, const EvalPoints& points, std::size_t n, std::size_t t,
    std::vector<std::vector<FpElem>>& shares_by_party, Rng& rng) {
  Require(shares_by_party.size() == n, "BaselineRefresh: wrong party count");
  const std::size_t num_secrets = shares_by_party.at(0).size();
  BaselineStats stats;
  CpuTimer cpu;
  cpu.Start();
  for (std::size_t s = 0; s < num_secrets; ++s) {
    // Every party deals an independent zero-free-term polynomial; the sum of
    // all dealt evaluations rerandomizes every share of this secret.
    for (std::size_t dealer = 0; dealer < n; ++dealer) {
      std::vector<FpElem> coeffs(t + 1, ctx.Zero());
      for (std::size_t j = 1; j <= t; ++j) coeffs[j] = ctx.Random(rng);
      math::Poly z(std::move(coeffs));
      for (std::size_t k = 0; k < n; ++k) {
        shares_by_party[k][s] =
            ctx.Add(shares_by_party[k][s], z.Eval(ctx, points.alpha(k)));
      }
    }
    // Wire accounting: each dealer sends one evaluation to each other party
    // (its own it keeps), per secret. No batching is possible.
    stats.elems_sent += static_cast<std::uint64_t>(n) * (n - 1);
    stats.msgs_sent += static_cast<std::uint64_t>(n) * (n - 1);
  }
  cpu.Stop();
  stats.cpu_ns = cpu.nanos();
  return stats;
}

FpElem BaselineReconstruct(
    const FpCtx& ctx, const EvalPoints& points, std::size_t t,
    const std::vector<std::vector<FpElem>>& shares_by_party,
    std::size_t secret_index) {
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i <= t; ++i) {
    xs.push_back(points.alpha(i));
    ys.push_back(shares_by_party.at(i).at(secret_index));
  }
  return math::LagrangeEval(ctx, xs, ys, ctx.Zero());
}

}  // namespace pisces::pss
