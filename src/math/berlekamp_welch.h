// Berlekamp-Welch decoding: interpolation that tolerates wrong points.
//
// The paper's honest-but-curious model never corrupts share VALUES, but the
// underlying scheme [7] is designed for active adversaries, where up to t of
// the n points handed to a reconstructor may be adversarial. Packed sharing
// with 3t + l < n leaves exactly the Reed-Solomon slack needed for unique
// decoding: a degree-<=d polynomial is recoverable from n points with up to
// e errors whenever n >= d + 2e + 1.
//
// Given (x_i, y_i) and a bound e, find monic E of degree e' <= e (the error
// locator) and Q of degree <= d + e' with Q(x_i) = y_i * E(x_i) for all i;
// then f = Q / E. We search e' downward so the smallest consistent error set
// wins, and verify the result explains all but <= e points.
//
// This powers the robust client download path: a minority of hosts returning
// garbage shares cannot prevent -- or silently corrupt -- reconstruction.
#pragma once

#include <optional>

#include "math/poly.h"

namespace pisces::math {

// Returns the unique degree-<=deg polynomial agreeing with all but at most
// max_errors of the points, or nullopt if none exists within the decoding
// radius. Requires xs.size() >= deg + 2*max_errors + 1 for a guarantee;
// smaller inputs are attempted best-effort.
std::optional<Poly> RobustInterpolate(const FpCtx& ctx,
                                      std::span<const FpElem> xs,
                                      std::span<const FpElem> ys,
                                      std::size_t deg,
                                      std::size_t max_errors);

// Indices whose points disagree with f (the error locations a decode found).
std::vector<std::size_t> Mismatches(const FpCtx& ctx, const Poly& f,
                                    std::span<const FpElem> xs,
                                    std::span<const FpElem> ys);

}  // namespace pisces::math
