#include "math/berlekamp_welch.h"

#include "math/matrix.h"
#include "math/poly_engine.h"

namespace pisces::math {

namespace {

// One Berlekamp-Welch attempt at a fixed error-locator degree e.
std::optional<Poly> TryDecode(const FpCtx& ctx, std::span<const FpElem> xs,
                              std::span<const FpElem> ys, std::size_t deg,
                              std::size_t e) {
  const std::size_t n = xs.size();
  const std::size_t nq = deg + e + 1;  // coefficients of Q
  const std::size_t unknowns = nq + e;  // plus e_0..e_{e-1} (E monic)
  if (n < unknowns) return std::nullopt;  // underdetermined, cannot certify

  // Row i: sum_j q_j x^j - y_i * sum_k e_k x^k = y_i * x^e.
  Matrix a(n, unknowns);
  std::vector<FpElem> b(n, ctx.Zero());
  for (std::size_t i = 0; i < n; ++i) {
    FpElem pow = ctx.One();
    for (std::size_t j = 0; j < nq; ++j) {
      a.At(i, j) = pow;
      pow = ctx.Mul(pow, xs[i]);
    }
    pow = ctx.One();
    for (std::size_t k = 0; k < e; ++k) {
      a.At(i, nq + k) = ctx.Neg(ctx.Mul(ys[i], pow));
      pow = ctx.Mul(pow, xs[i]);
    }
    // pow is now xs[i]^e.
    b[i] = ctx.Mul(ys[i], pow);
  }
  auto sol = SolveLinearSystem(ctx, std::move(a), std::move(b));
  if (!sol) return std::nullopt;

  Poly q(std::vector<FpElem>(sol->begin(), sol->begin() + nq));
  std::vector<FpElem> e_coeffs(sol->begin() + nq, sol->end());
  e_coeffs.push_back(ctx.One());  // monic
  Poly locator(std::move(e_coeffs));

  auto [f, rem] = Poly::DivMod(ctx, q, locator);
  if (rem.size() != 0) return std::nullopt;  // E does not divide Q
  if (f.Trimmed(ctx).size() > deg + 1) return std::nullopt;
  return f.Trimmed(ctx);
}

}  // namespace

std::vector<std::size_t> Mismatches(const FpCtx& ctx, const Poly& f,
                                    std::span<const FpElem> xs,
                                    std::span<const FpElem> ys) {
  // Every decode attempt audits f against ALL points, so batch the
  // evaluation: EvalMany takes the remainder tree above the crossover and
  // per-point Horner below it (identical values either way).
  const std::vector<FpElem> vals = EvalMany(ctx, f.coeffs(), xs);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!ctx.Eq(vals[i], ys[i])) out.push_back(i);
  }
  return out;
}

std::optional<Poly> RobustInterpolate(const FpCtx& ctx,
                                      std::span<const FpElem> xs,
                                      std::span<const FpElem> ys,
                                      std::size_t deg,
                                      std::size_t max_errors) {
  Require(xs.size() == ys.size(), "RobustInterpolate: xs/ys mismatch");
  Require(xs.size() >= deg + 1, "RobustInterpolate: too few points");

  // e = 0 fast path: plain interpolation of the first deg+1 points.
  if (PointsOnLowDegree(ctx, xs, ys, deg)) {
    return Poly::Interpolate(
        ctx, xs.subspan(0, deg + 1), ys.subspan(0, deg + 1));
  }

  for (std::size_t e = 1; e <= max_errors; ++e) {
    if (xs.size() < deg + 2 * e + 1) break;  // outside the decoding radius
    auto f = TryDecode(ctx, xs, ys, deg, e);
    if (f && Mismatches(ctx, *f, xs, ys).size() <= e) return f;
  }
  return std::nullopt;
}

}  // namespace pisces::math
