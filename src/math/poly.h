// Polynomials over F_p: the algebraic core of packed secret sharing.
//
// Shares are evaluations of degree-<=d polynomials; secrets sit at the packed
// evaluation points beta_1..beta_l; refresh deals polynomials constrained to
// vanish on a point set. Everything here is coefficient-form. The generic
// algorithms are O(m^2), ample for the paper's degrees (d = t + l <= ~40);
// above PolyEngineCrossover() points the entry points dispatch to the
// quasi-linear subproduct-tree engine (math/poly_engine.h), which computes
// bit-identical elements (F_p arithmetic is exact, Montgomery form is
// canonical), so callers never see which path ran.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"

namespace pisces::math {

using field::FpCtx;
using field::FpElem;

class Poly {
 public:
  Poly() = default;  // the zero polynomial
  explicit Poly(std::vector<FpElem> coeffs) : c_(std::move(coeffs)) {}

  // Number of coefficients; the zero polynomial has size 0. degree() is
  // size()-1 with the convention that deg(0) reports 0.
  std::size_t size() const { return c_.size(); }
  std::size_t degree() const { return c_.empty() ? 0 : c_.size() - 1; }
  bool IsZero(const FpCtx& ctx) const;

  const std::vector<FpElem>& coeffs() const { return c_; }

  FpElem Eval(const FpCtx& ctx, const FpElem& x) const;

  // Uniformly random polynomial of degree <= deg (deg+1 coefficients).
  static Poly Random(const FpCtx& ctx, Rng& rng, std::size_t deg);

  // Uniformly random polynomial f of degree <= deg subject to
  // f(xs[i]) == ys[i] for all i. Requires distinct xs and xs.size() <= deg+1.
  // The result is f = W(x)*u(x) + I(x) with W the vanishing polynomial of xs,
  // u uniform of degree <= deg - xs.size(), and I the interpolant. This is the
  // dealer's sampling step in packed sharing, zero-sharing, and mask dealing.
  static Poly RandomWithConstraints(const FpCtx& ctx, Rng& rng,
                                    std::size_t deg,
                                    std::span<const FpElem> xs,
                                    std::span<const FpElem> ys);

  // Deterministic half of RandomWithConstraints: builds W(x)*u(x) + I(x) from
  // a pre-drawn mask polynomial u of degree <= deg - xs.size(). Splitting the
  // randomness draw (serial, RNG-ordered) from the constraint solve (pure
  // compute) is what lets the task pool fan blocks out across threads without
  // changing which random values any block consumes.
  static Poly ConstrainedFrom(const FpCtx& ctx, const Poly& u, std::size_t deg,
                              std::span<const FpElem> xs,
                              std::span<const FpElem> ys);

  // Unique interpolating polynomial of degree <= xs.size()-1 in coefficient
  // form. xs must be distinct. Dispatches to the subproduct-tree engine
  // (math/poly_engine.h) above PolyEngineCrossover() points and to the
  // generic Lagrange path below it; both compute the exact same elements.
  static Poly Interpolate(const FpCtx& ctx, std::span<const FpElem> xs,
                          std::span<const FpElem> ys);

  // The generic O(m^2) Lagrange interpolation, always taken regardless of
  // size: the differential oracle for the engine and the bench baseline.
  static Poly InterpolateLagrange(const FpCtx& ctx, std::span<const FpElem> xs,
                                  std::span<const FpElem> ys);

  static Poly Add(const FpCtx& ctx, const Poly& a, const Poly& b);
  static Poly Mul(const FpCtx& ctx, const Poly& a, const Poly& b);

  // Vanishing polynomial prod_i (x - xs[i]).
  static Poly Vanishing(const FpCtx& ctx, std::span<const FpElem> xs);

  // Euclidean division: a = q*b + r with deg(r) < deg(b). b must be nonzero.
  static std::pair<Poly, Poly> DivMod(const FpCtx& ctx, const Poly& a,
                                      const Poly& b);

  // Drops zero leading coefficients (degree normalization).
  Poly Trimmed(const FpCtx& ctx) const;

 private:
  std::vector<FpElem> c_;  // c_[i] is the coefficient of x^i
};

// f(x) for the interpolant of (xs, ys), evaluated directly (no coefficient
// form). O(m^2); the workhorse of reconstruction.
FpElem LagrangeEval(const FpCtx& ctx, std::span<const FpElem> xs,
                    std::span<const FpElem> ys, const FpElem& x);

// Weights w_i with f(x) = sum_i w_i * ys[i] for any degree <= xs.size()-1
// interpolant. Reused across many blocks sharing the same point set.
std::vector<FpElem> LagrangeCoeffs(const FpCtx& ctx,
                                   std::span<const FpElem> xs,
                                   const FpElem& x);

// Weight vectors for many evaluation points over one base set, sharing a
// single batch inversion of the (point-independent) denominators. This is
// the cheap path for hyperinvertible-matrix and checker construction.
std::vector<std::vector<FpElem>> LagrangeCoeffsMulti(
    const FpCtx& ctx, std::span<const FpElem> xs,
    std::span<const FpElem> eval_points);

// True iff the points (xs, ys) lie on a polynomial of degree <= deg.
// This is the well-formedness check used by VSS verifiers.
bool PointsOnLowDegree(const FpCtx& ctx, std::span<const FpElem> xs,
                       std::span<const FpElem> ys, std::size_t deg);

// Precomputed consistency/evaluation machinery for a fixed point set.
//
// Construction does all the Lagrange work (one batch inversion per weight
// vector); Consistent() and EvalAt() are then multiplication-only, which
// matters when the same point set is checked for hundreds of blocks (VSS
// check rows, recovery of a whole file).
class PointChecker {
 public:
  // xs must have at least deg+1 distinct entries.
  PointChecker(const FpCtx& ctx, std::vector<FpElem> xs, std::size_t deg);

  // ys (aligned with xs) lies on a polynomial of degree <= deg?
  bool Consistent(std::span<const FpElem> ys) const;

  // f(x) where f interpolates the first deg+1 points.
  FpElem EvalAt(const FpElem& x, std::span<const FpElem> ys) const;
  // Same, with the weight vector reused across calls.
  std::vector<FpElem> WeightsAt(const FpElem& x) const;
  static FpElem Apply(const FpCtx& ctx, std::span<const FpElem> weights,
                      std::span<const FpElem> ys);

  std::size_t deg() const { return deg_; }

 private:
  const FpCtx* ctx_;
  std::vector<FpElem> xs_;
  std::size_t deg_;
  // extra_weights_[e][k]: weight of ys[k] when predicting ys[deg+1+e].
  std::vector<std::vector<FpElem>> extra_weights_;
};

}  // namespace pisces::math
