#include "math/weight_cache.h"

#include <map>
#include <mutex>

#include "math/poly.h"
#include "obs/registry.h"

namespace pisces::math {

namespace {

// Registry-held ("math.*") hit/miss counters; GetWeightCacheStats below is a
// thin view over them.
obs::Counter& g_wc_hits =
    obs::RegisterCounter("math.wc_hits", "weight/Vandermonde cache hits");
obs::Counter& g_wc_misses =
    obs::RegisterCounter("math.wc_misses", "weight/Vandermonde cache misses");

// Cache key: context identity plus the raw limb dump of every point (points
// are in Montgomery form, which is canonical for a fixed modulus) and a size
// tag separating the xs set from the evaluation set / column count.
struct CacheKey {
  const FpCtx* ctx;
  std::vector<std::uint64_t> blob;

  bool operator<(const CacheKey& o) const {
    if (ctx != o.ctx) return ctx < o.ctx;
    return blob < o.blob;
  }
};

void AppendElems(std::vector<std::uint64_t>& blob,
                 std::span<const FpElem> elems) {
  blob.push_back(elems.size());
  for (const FpElem& e : elems) {
    blob.insert(blob.end(), e.v.begin(), e.v.end());
  }
}

struct Caches {
  std::mutex mu;
  std::map<CacheKey, std::shared_ptr<const std::vector<std::vector<FpElem>>>>
      weights;
  std::map<CacheKey, std::shared_ptr<const Matrix>> vandermonde;
};

Caches& Instance() {
  static Caches caches;
  return caches;
}

}  // namespace

std::shared_ptr<const std::vector<std::vector<FpElem>>> CachedLagrangeWeights(
    const FpCtx& ctx, std::span<const FpElem> xs,
    std::span<const FpElem> eval_points) {
  CacheKey key{&ctx, {}};
  AppendElems(key.blob, xs);
  AppendElems(key.blob, eval_points);

  Caches& c = Instance();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.weights.find(key);
    if (it != c.weights.end()) {
      g_wc_hits.Add();
      return it->second;
    }
  }
  g_wc_misses.Add();
  // Compute outside the lock: misses are rare and the computation is the
  // expensive part. Two racing misses insert identical values; first wins.
  auto value = std::make_shared<const std::vector<std::vector<FpElem>>>(
      LagrangeCoeffsMulti(ctx, xs, eval_points));
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.weights.size() >= kWeightCacheMaxEntries) c.weights.clear();
  return c.weights.emplace(std::move(key), std::move(value)).first->second;
}

std::shared_ptr<const Matrix> CachedVandermondeRows(const FpCtx& ctx,
                                                    std::span<const FpElem> xs,
                                                    std::size_t cols) {
  CacheKey key{&ctx, {}};
  AppendElems(key.blob, xs);
  key.blob.push_back(cols);

  Caches& c = Instance();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.vandermonde.find(key);
    if (it != c.vandermonde.end()) {
      g_wc_hits.Add();
      return it->second;
    }
  }
  g_wc_misses.Add();
  auto value =
      std::make_shared<const Matrix>(Vandermonde(ctx, xs, cols));
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.vandermonde.size() >= kWeightCacheMaxEntries) c.vandermonde.clear();
  return c.vandermonde.emplace(std::move(key), std::move(value)).first->second;
}

void ClearWeightCaches() {
  Caches& c = Instance();
  std::lock_guard<std::mutex> lock(c.mu);
  c.weights.clear();
  c.vandermonde.clear();
}

std::size_t WeightCacheSize() {
  Caches& c = Instance();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.weights.size() + c.vandermonde.size();
}

WeightCacheStats GetWeightCacheStats() {
  return {g_wc_hits.Load(), g_wc_misses.Load()};
}

void ResetWeightCacheStats() {
  g_wc_hits.Reset();
  g_wc_misses.Reset();
}

}  // namespace pisces::math
