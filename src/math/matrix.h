// Dense matrices over F_p, Vandermonde matrices, and the hyperinvertible
// matrices (Damgard-Ishai-Kroigaard, CRYPTO'08) used by the VSS layer.
//
// A matrix M is hyperinvertible when every square submatrix is invertible.
// The VSS/refresh pipeline applies an n x n hyperinvertible M to a vector of
// n dealings: opening any 2t outputs proves well-formedness of all inputs,
// and the remaining n-2t outputs are uniformly random even conditioned on t
// corrupt dealings -- this is what gives the paper's scheme its O(1) amortized
// complexity per secret.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"

namespace pisces::math {

using field::FpCtx;
using field::FpElem;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  FpElem& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const FpElem& At(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  // Row r as a contiguous span (storage is row-major); feeds FpCtx::Dot.
  std::span<const FpElem> Row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  static Matrix Identity(const FpCtx& ctx, std::size_t n);

  Matrix Mul(const FpCtx& ctx, const Matrix& other) const;
  std::vector<FpElem> MulVec(const FpCtx& ctx,
                             std::span<const FpElem> v) const;

  // Gauss-Jordan inverse; nullopt when singular.
  std::optional<Matrix> Inverse(const FpCtx& ctx) const;

  // Submatrix selecting the given rows and columns (used by the
  // hyperinvertibility property test).
  Matrix Select(std::span<const std::size_t> row_idx,
                std::span<const std::size_t> col_idx) const;

  bool Eq(const FpCtx& ctx, const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<FpElem> data_;
};

// V[r][c] = xs[r]^c, cols columns.
Matrix Vandermonde(const FpCtx& ctx, std::span<const FpElem> xs,
                   std::size_t cols);

// The DIK hyperinvertible matrix mapping values at input nodes 1..n_in to
// values at output nodes n_in+1..n_in+n_out of the unique degree n_in-1
// interpolant: M[a][i] = L_i(n_in + 1 + a) over nodes {1..n_in}.
Matrix HyperInvertible(const FpCtx& ctx, std::size_t n_out, std::size_t n_in);

// Any solution of A x = b (free variables set to zero), or nullopt when the
// system is inconsistent. A may be rectangular (rows x cols). Used by the
// Berlekamp-Welch decoder.
std::optional<std::vector<FpElem>> SolveLinearSystem(const FpCtx& ctx,
                                                     Matrix a,
                                                     std::vector<FpElem> b);

// Process-wide memo of HyperInvertible results. The matrix depends only on
// the field and the shape, and every VSS batch in a cluster rebuilds the same
// one; in a real deployment each host computes it once per epoch and
// amortizes it over all files and recovery targets, which is what the cache
// models. Thread safe.
std::shared_ptr<const Matrix> CachedHyperInvertible(const FpCtx& ctx,
                                                    std::size_t n_out,
                                                    std::size_t n_in);

}  // namespace pisces::math
