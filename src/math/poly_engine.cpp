#include "math/poly_engine.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "math/weight_cache.h"  // kWeightCacheMaxEntries: shared cap policy
#include "obs/registry.h"

namespace pisces::math {

namespace {

obs::Counter& g_pd_hits =
    obs::RegisterCounter("math.pd_hits", "poly-domain (subproduct tree) cache hits");
obs::Counter& g_pd_misses =
    obs::RegisterCounter("math.pd_misses", "poly-domain (subproduct tree) cache misses");
obs::Counter& g_tree_evals =
    obs::RegisterCounter("math.tree_evals", "multipoint evaluations on a subproduct tree");
obs::Counter& g_tree_interps =
    obs::RegisterCounter("math.tree_interps", "interpolations on a subproduct tree");

// Karatsuba recurses while both operands are larger than this; below it the
// lazy-dot schoolbook convolution (one Montgomery reduction per output
// coefficient) is faster than the recursion's add/copy overhead.
constexpr std::size_t kKaratsubaBase = 24;

// Subproduct-tree leaves cover at most this many points; leaf work (Horner
// evaluation, synthetic-division combination) is O(leaf^2) with tiny
// constants, so small leaves just add node overhead.
constexpr std::size_t kTreeLeafSize = 8;

// Compiled defaults for the two crossovers; see the header comments and
// scripts/bench_micro.sh for the measured trajectories they were picked
// from. 17 keeps every n <= 16 configuration on the legacy interpolation
// path; 4096 reflects that tree evaluation measured slower than the cached
// Vandermonde/Horner paths at every benched size up to 1024.
constexpr std::size_t kDefaultCrossover = 17;
constexpr std::size_t kDefaultEvalCrossover = 4096;

std::size_t EnvOverride(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long x = std::strtoull(env, &end, 10);
    if (end != env && x > 0) return static_cast<std::size_t>(x);
  }
  return fallback;
}

// out[k] = sum_{i+j=k} a[i]*b[j], one wide reduction per coefficient.
std::vector<FpElem> SchoolbookMul(const FpCtx& ctx, std::span<const FpElem> a,
                                  std::span<const FpElem> b) {
  std::vector<FpElem> out(a.size() + b.size() - 1);
  field::DotAcc acc(ctx);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t lo = k >= b.size() ? k - b.size() + 1 : 0;
    const std::size_t hi = std::min(a.size() - 1, k);
    acc.Reset();
    for (std::size_t i = lo; i <= hi; ++i) acc.MulAdd(a[i], b[k - i]);
    out[k] = acc.Reduce();
  }
  return out;
}

std::vector<FpElem> MulRec(const FpCtx& ctx, std::span<const FpElem> a,
                           std::span<const FpElem> b) {
  if (a.size() < b.size()) std::swap(a, b);
  if (b.size() <= kKaratsubaBase) return SchoolbookMul(ctx, a, b);
  const std::size_t h = (a.size() + 1) / 2;
  std::span<const FpElem> a0 = a.first(h);
  std::span<const FpElem> a1 = a.subspan(h);
  std::vector<FpElem> out(a.size() + b.size() - 1, ctx.Zero());
  if (b.size() <= h) {
    // Unbalanced split: b * (a0 + x^h * a1) as two recursive products.
    std::vector<FpElem> lo = MulRec(ctx, a0, b);
    std::vector<FpElem> hi = MulRec(ctx, a1, b);
    for (std::size_t i = 0; i < lo.size(); ++i) out[i] = lo[i];
    for (std::size_t i = 0; i < hi.size(); ++i) {
      out[h + i] = ctx.Add(out[h + i], hi[i]);
    }
    return out;
  }
  std::span<const FpElem> b0 = b.first(h);
  std::span<const FpElem> b1 = b.subspan(h);
  std::vector<FpElem> z0 = MulRec(ctx, a0, b0);
  std::vector<FpElem> z2 = MulRec(ctx, a1, b1);
  std::vector<FpElem> as(a0.begin(), a0.end());
  for (std::size_t i = 0; i < a1.size(); ++i) as[i] = ctx.Add(as[i], a1[i]);
  std::vector<FpElem> bs(b0.begin(), b0.end());
  for (std::size_t i = 0; i < b1.size(); ++i) bs[i] = ctx.Add(bs[i], b1[i]);
  std::vector<FpElem> z1 = MulRec(ctx, as, bs);
  for (std::size_t i = 0; i < z0.size(); ++i) out[i] = z0[i];
  for (std::size_t i = 0; i < z2.size(); ++i) {
    out[2 * h + i] = ctx.Add(out[2 * h + i], z2[i]);
  }
  for (std::size_t i = 0; i < z1.size(); ++i) {
    FpElem mid = z1[i];
    if (i < z0.size()) mid = ctx.Sub(mid, z0[i]);
    if (i < z2.size()) mid = ctx.Sub(mid, z2[i]);
    out[h + i] = ctx.Add(out[h + i], mid);
  }
  return out;
}

// a*b mod x^l, returned as exactly l coefficients (zero-padded).
std::vector<FpElem> TruncMul(const FpCtx& ctx, std::span<const FpElem> a,
                             std::span<const FpElem> b, std::size_t l) {
  a = a.first(std::min(a.size(), l));
  b = b.first(std::min(b.size(), l));
  std::vector<FpElem> out;
  if (!a.empty() && !b.empty()) out = MulRec(ctx, a, b);
  out.resize(l, ctx.Zero());
  return out;
}

// b^{-1} mod x^l by Newton iteration; requires b[0] == 1 (rev of a monic
// polynomial), so no field inversion is ever needed.
std::vector<FpElem> InverseSeries(const FpCtx& ctx, std::span<const FpElem> b,
                                  std::size_t l) {
  std::vector<FpElem> g{ctx.One()};
  const FpElem two = ctx.Add(ctx.One(), ctx.One());
  std::size_t k = 1;
  while (k < l) {
    k = std::min(2 * k, l);
    std::vector<FpElem> e = TruncMul(ctx, b, g, k);
    for (FpElem& v : e) v = ctx.Neg(v);
    e[0] = ctx.Add(e[0], two);  // e = 2 - b*g mod x^k
    g = TruncMul(ctx, g, e, k);
  }
  return g;
}

// Schoolbook remainder of a by the monic b (leading coefficient 1, so no
// inversions). Only used for dividends larger than the tree root, which the
// protocol paths never produce.
std::vector<FpElem> ReduceByMonic(const FpCtx& ctx, std::vector<FpElem> a,
                                  std::span<const FpElem> b) {
  const std::size_t db = b.size() - 1;
  for (std::size_t i = a.size(); i-- > db;) {
    const FpElem factor = a[i];
    if (ctx.IsZero(factor)) continue;
    for (std::size_t j = 0; j < db; ++j) {
      a[i - db + j] = ctx.Sub(a[i - db + j], ctx.Mul(factor, b[j]));
    }
  }
  a.resize(db);
  return a;
}

}  // namespace

std::size_t PolyEngineCrossover() {
  static const std::size_t v =
      EnvOverride("PISCES_POLY_CROSSOVER", kDefaultCrossover);
  return v;
}

std::size_t PolyEvalCrossover() {
  static const std::size_t v =
      EnvOverride("PISCES_POLY_EVAL_CROSSOVER", kDefaultEvalCrossover);
  return v;
}

std::vector<FpElem> MulPolys(const FpCtx& ctx, std::span<const FpElem> a,
                             std::span<const FpElem> b) {
  if (a.empty() || b.empty()) return {};
  return MulRec(ctx, a, b);
}

SubproductTree::SubproductTree(const FpCtx& ctx, std::vector<FpElem> xs)
    : ctx_(&ctx), xs_(std::move(xs)) {
  Require(!xs_.empty(), "SubproductTree: empty point set");
  const std::size_t m = xs_.size();
  nodes_.reserve(4 * (m / kTreeLeafSize + 1));
  root_ = Build(0, m);
  // Inverse-series pass: each child carries rev(child)^{-1} to the precision
  // its sibling's degree demands, making every remainder-tree division two
  // truncated products (RemByNode) with zero field inversions.
  for (const Node& n : nodes_) {
    if (n.left == npos) continue;
    Node& l = nodes_[n.left];
    Node& r = nodes_[n.right];
    std::vector<FpElem> rev(l.poly.rbegin(), l.poly.rend());
    l.inv_rev = InverseSeries(*ctx_, rev, r.count);
    rev.assign(r.poly.rbegin(), r.poly.rend());
    r.inv_rev = InverseSeries(*ctx_, rev, l.count);
  }
  // Barycentric weights: P'(x_i) for all i by one multipoint evaluation of
  // the derivative, then a single batch inversion. A zero derivative value
  // is exactly a repeated point.
  const std::vector<FpElem>& pc = nodes_[root_].poly;
  std::vector<FpElem> dp(m);
  FpElem idx = ctx_->Zero();
  for (std::size_t i = 1; i <= m; ++i) {
    idx = ctx_->Add(idx, ctx_->One());
    dp[i - 1] = ctx_->Mul(pc[i], idx);
  }
  inv_derivs_ = EvalAll(dp);
  for (const FpElem& d : inv_derivs_) {
    Require(!ctx_->IsZero(d), "SubproductTree: duplicate point");
  }
  ctx_->BatchInv(inv_derivs_);
}

std::size_t SubproductTree::Build(std::size_t begin, std::size_t count) {
  Node n;
  n.begin = begin;
  n.count = count;
  if (count <= kTreeLeafSize) {
    n.left = n.right = npos;
    // Small monic vanishing polynomial, built root by root.
    n.poly.assign(1, ctx_->One());
    for (std::size_t i = 0; i < count; ++i) {
      const FpElem& root = xs_[begin + i];
      n.poly.push_back(ctx_->Zero());
      for (std::size_t j = n.poly.size() - 1; j-- > 0;) {
        n.poly[j + 1] = ctx_->Add(n.poly[j + 1], n.poly[j]);
        n.poly[j] = ctx_->Neg(ctx_->Mul(n.poly[j], root));
      }
    }
  } else {
    const std::size_t half = count / 2;
    n.left = Build(begin, half);
    n.right = Build(begin + half, count - half);
    n.poly = MulPolys(*ctx_, nodes_[n.left].poly, nodes_[n.right].poly);
  }
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

const std::vector<FpElem>& SubproductTree::root() const {
  return nodes_[root_].poly;
}

std::vector<FpElem> SubproductTree::RemByNode(const Node& n,
                                              std::span<const FpElem> a) const {
  const std::size_t db = n.count;
  std::vector<FpElem> r(db, ctx_->Zero());
  if (a.size() <= db) {
    std::copy(a.begin(), a.end(), r.begin());
    return r;
  }
  // a = q*poly + r. rev(q) = rev(a) * rev(poly)^{-1} mod x^{deg a - db + 1};
  // the stored precision (sibling degree) always covers it because the
  // parent's remainder has degree < parent count = db + sibling count.
  const std::size_t qn = a.size() - db;
  Require(qn <= n.inv_rev.size(), "SubproductTree: inverse precision exceeded");
  std::vector<FpElem> arev(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) arev[i] = a[a.size() - 1 - i];
  const std::vector<FpElem> qrev = TruncMul(*ctx_, arev, n.inv_rev, qn);
  std::vector<FpElem> q(qn);
  for (std::size_t i = 0; i < qn; ++i) q[i] = qrev[qn - 1 - i];
  const std::vector<FpElem> qb = TruncMul(*ctx_, q, n.poly, db);
  for (std::size_t i = 0; i < db; ++i) r[i] = ctx_->Sub(a[i], qb[i]);
  return r;
}

void SubproductTree::DownEval(std::size_t node_idx, std::vector<FpElem> rem,
                              std::vector<FpElem>& out) const {
  const Node& n = nodes_[node_idx];
  if (n.left == npos) {
    for (std::size_t i = 0; i < n.count; ++i) {
      const FpElem& x = xs_[n.begin + i];
      FpElem acc = ctx_->Zero();
      for (std::size_t j = rem.size(); j-- > 0;) {
        acc = ctx_->Add(ctx_->Mul(acc, x), rem[j]);
      }
      out[n.begin + i] = acc;
    }
    return;
  }
  DownEval(n.left, RemByNode(nodes_[n.left], rem), out);
  DownEval(n.right, RemByNode(nodes_[n.right], rem), out);
}

std::vector<FpElem> SubproductTree::EvalAll(std::span<const FpElem> f) const {
  const std::size_t m = xs_.size();
  std::vector<FpElem> out(m, ctx_->Zero());
  if (f.empty()) return out;
  std::vector<FpElem> rem(f.begin(), f.end());
  if (rem.size() > m) rem = ReduceByMonic(*ctx_, std::move(rem), root());
  rem.resize(m, ctx_->Zero());
  g_tree_evals.Add();
  DownEval(root_, std::move(rem), out);
  return out;
}

std::vector<FpElem> SubproductTree::UpCombine(
    std::size_t node_idx, std::span<const FpElem> scaled) const {
  const Node& n = nodes_[node_idx];
  if (n.left == npos) {
    // sum_i scaled[i] * poly/(x - x_i); each quotient by synthetic division
    // (the node polynomial is monic), O(count^2) at leaf sizes.
    std::vector<FpElem> out(n.count, ctx_->Zero());
    std::vector<FpElem> qi(n.count);
    for (std::size_t i = 0; i < n.count; ++i) {
      const FpElem& x = xs_[n.begin + i];
      FpElem carry = n.poly[n.count];  // leading coefficient (== 1)
      for (std::size_t j = n.count; j-- > 0;) {
        qi[j] = carry;
        carry = ctx_->Add(n.poly[j], ctx_->Mul(carry, x));
      }
      const FpElem& s = scaled[n.begin + i];
      if (ctx_->IsZero(s)) continue;
      for (std::size_t j = 0; j < n.count; ++j) {
        out[j] = ctx_->Add(out[j], ctx_->Mul(s, qi[j]));
      }
    }
    return out;
  }
  const std::vector<FpElem> fl = UpCombine(n.left, scaled);
  const std::vector<FpElem> fr = UpCombine(n.right, scaled);
  std::vector<FpElem> a = MulPolys(*ctx_, fl, nodes_[n.right].poly);
  const std::vector<FpElem> b = MulPolys(*ctx_, fr, nodes_[n.left].poly);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = ctx_->Add(a[i], b[i]);
  return a;  // n.count coefficients
}

std::vector<FpElem> SubproductTree::Interpolate(
    std::span<const FpElem> ys) const {
  Require(ys.size() == xs_.size(), "SubproductTree: ys size mismatch");
  std::vector<FpElem> scaled(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    scaled[i] = ctx_->Mul(ys[i], inv_derivs_[i]);
  }
  g_tree_interps.Add();
  return UpCombine(root_, scaled);
}

std::vector<FpElem> EvalMany(const FpCtx& ctx, std::span<const FpElem> f,
                             std::span<const FpElem> xs) {
  // The tree pays off when there are very many points AND the polynomial is
  // dense enough that per-point Horner is not already linear-time.
  if (xs.size() >= PolyEvalCrossover() && f.size() >= 2 * kTreeLeafSize) {
    return CachedSubproductTree(ctx, xs)->EvalAll(f);
  }
  std::vector<FpElem> out(xs.size(), ctx.Zero());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    FpElem acc = ctx.Zero();
    for (std::size_t j = f.size(); j-- > 0;) {
      acc = ctx.Add(ctx.Mul(acc, xs[i]), f[j]);
    }
    out[i] = acc;
  }
  return out;
}

namespace {

// Domain cache, following math/weight_cache.cpp to the letter: context
// address + little-endian coordinate dump as the key, immutable shared_ptr
// values, compute-outside-lock (racing misses insert identical trees; first
// wins), wholesale clear past the cap so eviction never depends on timing.
struct DomainKey {
  const FpCtx* ctx;
  std::vector<std::uint64_t> blob;

  bool operator<(const DomainKey& o) const {
    if (ctx != o.ctx) return ctx < o.ctx;
    return blob < o.blob;
  }
};

struct DomainCache {
  std::mutex mu;
  std::map<DomainKey, std::shared_ptr<const SubproductTree>> trees;
};

DomainCache& Domains() {
  static DomainCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const SubproductTree> CachedSubproductTree(
    const FpCtx& ctx, std::span<const FpElem> xs) {
  DomainKey key{&ctx, {}};
  key.blob.reserve(1 + xs.size() * field::kMaxLimbs);
  key.blob.push_back(xs.size());
  for (const FpElem& e : xs) {
    key.blob.insert(key.blob.end(), e.v.begin(), e.v.end());
  }

  DomainCache& c = Domains();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.trees.find(key);
    if (it != c.trees.end()) {
      g_pd_hits.Add();
      return it->second;
    }
  }
  g_pd_misses.Add();
  auto value = std::make_shared<const SubproductTree>(
      ctx, std::vector<FpElem>(xs.begin(), xs.end()));
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.trees.size() >= kWeightCacheMaxEntries) c.trees.clear();
  return c.trees.emplace(std::move(key), std::move(value)).first->second;
}

void ClearPolyDomainCache() {
  DomainCache& c = Domains();
  std::lock_guard<std::mutex> lock(c.mu);
  c.trees.clear();
}

std::size_t PolyDomainCacheSize() {
  DomainCache& c = Domains();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.trees.size();
}

PolyEngineStats GetPolyEngineStats() {
  return {g_pd_hits.Load(), g_pd_misses.Load(), g_tree_evals.Load(),
          g_tree_interps.Load()};
}

void ResetPolyEngineStats() {
  g_pd_hits.Reset();
  g_pd_misses.Reset();
  g_tree_evals.Reset();
  g_tree_interps.Reset();
}

}  // namespace pisces::math
