#include "math/matrix.h"

#include <map>
#include <mutex>

#include "math/poly.h"

namespace pisces::math {

Matrix Matrix::Identity(const FpCtx& ctx, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = ctx.One();
  return m;
}

Matrix Matrix::Mul(const FpCtx& ctx, const Matrix& other) const {
  Require(cols_ == other.rows_, "Matrix::Mul: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const FpElem& aik = At(i, k);
      if (ctx.IsZero(aik)) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) = ctx.Add(out.At(i, j), ctx.Mul(aik, other.At(k, j)));
      }
    }
  }
  return out;
}

std::vector<FpElem> Matrix::MulVec(const FpCtx& ctx,
                                   std::span<const FpElem> v) const {
  Require(v.size() == cols_, "Matrix::MulVec: shape mismatch");
  std::vector<FpElem> out(rows_, ctx.Zero());
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = ctx.Dot(Row(i), v);  // one reduction per output row
  }
  return out;
}

std::optional<Matrix> Matrix::Inverse(const FpCtx& ctx) const {
  Require(rows_ == cols_, "Matrix::Inverse: not square");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(ctx, n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && ctx.IsZero(a.At(pivot, col))) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.At(pivot, j), a.At(col, j));
        std::swap(inv.At(pivot, j), inv.At(col, j));
      }
    }
    FpElem piv_inv = ctx.Inv(a.At(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      a.At(col, j) = ctx.Mul(a.At(col, j), piv_inv);
      inv.At(col, j) = ctx.Mul(inv.At(col, j), piv_inv);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || ctx.IsZero(a.At(r, col))) continue;
      FpElem factor = a.At(r, col);
      for (std::size_t j = 0; j < n; ++j) {
        a.At(r, j) = ctx.Sub(a.At(r, j), ctx.Mul(factor, a.At(col, j)));
        inv.At(r, j) = ctx.Sub(inv.At(r, j), ctx.Mul(factor, inv.At(col, j)));
      }
    }
  }
  return inv;
}

Matrix Matrix::Select(std::span<const std::size_t> row_idx,
                      std::span<const std::size_t> col_idx) const {
  Matrix out(row_idx.size(), col_idx.size());
  for (std::size_t i = 0; i < row_idx.size(); ++i) {
    for (std::size_t j = 0; j < col_idx.size(); ++j) {
      Require(row_idx[i] < rows_ && col_idx[j] < cols_,
              "Matrix::Select: index out of range");
      out.At(i, j) = At(row_idx[i], col_idx[j]);
    }
  }
  return out;
}

bool Matrix::Eq(const FpCtx& ctx, const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!ctx.Eq(data_[i], other.data_[i])) return false;
  }
  return true;
}

std::optional<std::vector<FpElem>> SolveLinearSystem(const FpCtx& ctx,
                                                     Matrix a,
                                                     std::vector<FpElem> b) {
  Require(a.rows() == b.size(), "SolveLinearSystem: shape mismatch");
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  // Forward elimination with row pivoting; pivot_row[c] is the row whose
  // leading entry sits in column c.
  std::vector<std::size_t> pivot_row(cols, static_cast<std::size_t>(-1));
  std::size_t next_row = 0;
  for (std::size_t c = 0; c < cols && next_row < rows; ++c) {
    std::size_t pivot = next_row;
    while (pivot < rows && ctx.IsZero(a.At(pivot, c))) ++pivot;
    if (pivot == rows) continue;  // free column
    if (pivot != next_row) {
      for (std::size_t j = 0; j < cols; ++j) {
        std::swap(a.At(pivot, j), a.At(next_row, j));
      }
      std::swap(b[pivot], b[next_row]);
    }
    FpElem inv = ctx.Inv(a.At(next_row, c));
    for (std::size_t j = c; j < cols; ++j) {
      a.At(next_row, j) = ctx.Mul(a.At(next_row, j), inv);
    }
    b[next_row] = ctx.Mul(b[next_row], inv);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == next_row || ctx.IsZero(a.At(r, c))) continue;
      FpElem factor = a.At(r, c);
      for (std::size_t j = c; j < cols; ++j) {
        a.At(r, j) = ctx.Sub(a.At(r, j), ctx.Mul(factor, a.At(next_row, j)));
      }
      b[r] = ctx.Sub(b[r], ctx.Mul(factor, b[next_row]));
    }
    pivot_row[c] = next_row;
    ++next_row;
  }
  // Inconsistency: an all-zero row with nonzero rhs.
  for (std::size_t r = next_row; r < rows; ++r) {
    if (!ctx.IsZero(b[r])) return std::nullopt;
  }
  std::vector<FpElem> x(cols, ctx.Zero());
  for (std::size_t c = 0; c < cols; ++c) {
    if (pivot_row[c] != static_cast<std::size_t>(-1)) {
      x[c] = b[pivot_row[c]];
    }
  }
  return x;
}

Matrix Vandermonde(const FpCtx& ctx, std::span<const FpElem> xs,
                   std::size_t cols) {
  Matrix m(xs.size(), cols);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    FpElem acc = ctx.One();
    for (std::size_t c = 0; c < cols; ++c) {
      m.At(r, c) = acc;
      acc = ctx.Mul(acc, xs[r]);
    }
  }
  return m;
}

Matrix HyperInvertible(const FpCtx& ctx, std::size_t n_out, std::size_t n_in) {
  Require(n_in >= 1 && n_out >= 1, "HyperInvertible: empty shape");
  std::vector<FpElem> in_nodes(n_in);
  for (std::size_t i = 0; i < n_in; ++i) in_nodes[i] = ctx.FromUint64(i + 1);
  std::vector<FpElem> out_nodes(n_out);
  for (std::size_t a = 0; a < n_out; ++a) {
    out_nodes[a] = ctx.FromUint64(n_in + 1 + a);
  }
  auto rows = LagrangeCoeffsMulti(ctx, in_nodes, out_nodes);
  Matrix m(n_out, n_in);
  for (std::size_t a = 0; a < n_out; ++a) {
    for (std::size_t i = 0; i < n_in; ++i) m.At(a, i) = rows[a][i];
  }
  return m;
}

std::shared_ptr<const Matrix> CachedHyperInvertible(const FpCtx& ctx,
                                                    std::size_t n_out,
                                                    std::size_t n_in) {
  // The matrix is a pure function of (modulus, shape), so key on the modulus
  // bytes, not the context address: a freed context's address can be reused
  // by a context over a DIFFERENT prime (same-size allocation), and an
  // address-keyed entry would silently hand that context the wrong matrix.
  using Key = std::tuple<Bytes, std::size_t, std::size_t>;
  static std::mutex mutex;
  static std::map<Key, std::shared_ptr<const Matrix>> cache;
  Key key{ctx.ModulusBytes(), n_out, n_in};
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::make_shared<const Matrix>(
                               HyperInvertible(ctx, n_out, n_in)))
             .first;
  }
  return it->second;
}

}  // namespace pisces::math
