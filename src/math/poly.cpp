#include "math/poly.h"

#include <algorithm>

#include "math/poly_engine.h"

namespace pisces::math {

bool Poly::IsZero(const FpCtx& ctx) const {
  return std::all_of(c_.begin(), c_.end(),
                     [&](const FpElem& e) { return ctx.IsZero(e); });
}

FpElem Poly::Eval(const FpCtx& ctx, const FpElem& x) const {
  FpElem acc = ctx.Zero();
  for (std::size_t i = c_.size(); i-- > 0;) {
    acc = ctx.Add(ctx.Mul(acc, x), c_[i]);
  }
  return acc;
}

Poly Poly::Random(const FpCtx& ctx, Rng& rng, std::size_t deg) {
  std::vector<FpElem> c(deg + 1);
  for (auto& e : c) e = ctx.Random(rng);
  return Poly(std::move(c));
}

Poly Poly::RandomWithConstraints(const FpCtx& ctx, Rng& rng, std::size_t deg,
                                 std::span<const FpElem> xs,
                                 std::span<const FpElem> ys) {
  Require(xs.size() == ys.size(), "RandomWithConstraints: xs/ys mismatch");
  Require(xs.size() >= 1, "RandomWithConstraints: need >= 1 constraint");
  Require(xs.size() <= deg + 1, "RandomWithConstraints: too many constraints");
  if (xs.size() == deg + 1) return Interpolate(ctx, xs, ys);
  Poly u = Random(ctx, rng, deg - xs.size());
  return ConstrainedFrom(ctx, u, deg, xs, ys);
}

Poly Poly::ConstrainedFrom(const FpCtx& ctx, const Poly& u, std::size_t deg,
                           std::span<const FpElem> xs,
                           std::span<const FpElem> ys) {
  Require(xs.size() == ys.size(), "ConstrainedFrom: xs/ys mismatch");
  Require(xs.size() >= 1, "ConstrainedFrom: need >= 1 constraint");
  Require(xs.size() <= deg + 1, "ConstrainedFrom: too many constraints");
  Poly interp = Interpolate(ctx, xs, ys);
  if (xs.size() == deg + 1) return interp;  // fully constrained, u unused
  Require(u.size() == deg - xs.size() + 1, "ConstrainedFrom: wrong mask size");
  Poly w = Vanishing(ctx, xs);
  return Add(ctx, Mul(ctx, w, u), interp);
}

Poly Poly::Interpolate(const FpCtx& ctx, std::span<const FpElem> xs,
                       std::span<const FpElem> ys) {
  Require(xs.size() == ys.size() && !xs.empty(), "Interpolate: bad input");
  if (xs.size() >= PolyEngineCrossover()) {
    return Poly(CachedSubproductTree(ctx, xs)->Interpolate(ys));
  }
  return InterpolateLagrange(ctx, xs, ys);
}

Poly Poly::InterpolateLagrange(const FpCtx& ctx, std::span<const FpElem> xs,
                               std::span<const FpElem> ys) {
  Require(xs.size() == ys.size() && !xs.empty(), "Interpolate: bad input");
  const std::size_t m = xs.size();
  if (m == 1) return Poly(std::vector<FpElem>{ys[0]});

  // Lagrange form with one batch inversion:
  //   P(x)  = prod_i (x - x_i)
  //   Q_i   = P / (x - x_i)         (synthetic division, O(m) each)
  //   den_i = Q_i(x_i) = P'(x_i)
  //   f     = sum_i y_i * den_i^{-1} * Q_i
  Poly p = Vanishing(ctx, xs);
  const std::vector<FpElem>& pc = p.coeffs();  // degree m

  std::vector<std::vector<FpElem>> q(m, std::vector<FpElem>(m, ctx.Zero()));
  std::vector<FpElem> dens(m, ctx.Zero());
  for (std::size_t i = 0; i < m; ++i) {
    // Synthetic division of P by (x - x_i): q[m-1] down to q[0].
    FpElem carry = pc[m];  // leading coefficient (== 1)
    for (std::size_t j = m; j-- > 0;) {
      q[i][j] = carry;
      carry = ctx.Add(pc[j], ctx.Mul(carry, xs[i]));
    }
    // carry is now P(x_i) == 0; den_i = Q_i(x_i) via Horner.
    FpElem den = ctx.Zero();
    for (std::size_t j = m; j-- > 0;) {
      den = ctx.Add(ctx.Mul(den, xs[i]), q[i][j]);
    }
    Require(!ctx.IsZero(den), "Interpolate: duplicate x");
    dens[i] = den;
  }
  ctx.BatchInv(dens);

  std::vector<FpElem> c(m, ctx.Zero());
  for (std::size_t i = 0; i < m; ++i) {
    FpElem scale = ctx.Mul(ys[i], dens[i]);
    if (ctx.IsZero(scale)) continue;
    for (std::size_t j = 0; j < m; ++j) {
      c[j] = ctx.Add(c[j], ctx.Mul(scale, q[i][j]));
    }
  }
  return Poly(std::move(c));
}

Poly Poly::Add(const FpCtx& ctx, const Poly& a, const Poly& b) {
  std::vector<FpElem> c(std::max(a.c_.size(), b.c_.size()), ctx.Zero());
  for (std::size_t i = 0; i < a.c_.size(); ++i) c[i] = a.c_[i];
  for (std::size_t i = 0; i < b.c_.size(); ++i) c[i] = ctx.Add(c[i], b.c_[i]);
  return Poly(std::move(c));
}

Poly Poly::Mul(const FpCtx& ctx, const Poly& a, const Poly& b) {
  // MulPolys is the engine product: Karatsuba above its base size, lazy-dot
  // schoolbook below it -- the same exact convolution either way.
  return Poly(MulPolys(ctx, a.c_, b.c_));
}

Poly Poly::Vanishing(const FpCtx& ctx, std::span<const FpElem> xs) {
  if (xs.size() >= PolyEngineCrossover()) {
    // The tree root IS the vanishing polynomial, and the domain cache makes
    // repeated per-block calls (ConstrainedFrom in ShareBlocks) a lookup.
    return Poly(CachedSubproductTree(ctx, xs)->root());
  }
  std::vector<FpElem> c{ctx.One()};
  for (const FpElem& root : xs) {
    c.push_back(ctx.Zero());
    for (std::size_t j = c.size() - 1; j-- > 0;) {
      c[j + 1] = ctx.Add(c[j + 1], c[j]);
      c[j] = ctx.Neg(ctx.Mul(c[j], root));
    }
    // Rebuild: the loop above shifted in place; c now holds prod*(x-root).
  }
  return Poly(std::move(c));
}

Poly Poly::Trimmed(const FpCtx& ctx) const {
  std::size_t size = c_.size();
  while (size > 0 && ctx.IsZero(c_[size - 1])) --size;
  return Poly(std::vector<FpElem>(c_.begin(), c_.begin() + size));
}

std::pair<Poly, Poly> Poly::DivMod(const FpCtx& ctx, const Poly& a,
                                   const Poly& b) {
  Poly divisor = b.Trimmed(ctx);
  Require(divisor.size() > 0, "DivMod: division by zero polynomial");
  std::vector<FpElem> rem(a.c_);
  const std::size_t db = divisor.size() - 1;
  if (rem.size() <= db) return {Poly(), Poly(std::move(rem))};
  std::vector<FpElem> quot(rem.size() - db, ctx.Zero());
  FpElem lead_inv = ctx.Inv(divisor.coeffs()[db]);
  for (std::size_t i = rem.size(); i-- > db;) {
    FpElem factor = ctx.Mul(rem[i], lead_inv);
    if (ctx.IsZero(factor)) continue;
    quot[i - db] = factor;
    for (std::size_t j = 0; j <= db; ++j) {
      rem[i - db + j] =
          ctx.Sub(rem[i - db + j], ctx.Mul(factor, divisor.coeffs()[j]));
    }
  }
  rem.resize(db);
  return {Poly(std::move(quot)).Trimmed(ctx), Poly(std::move(rem)).Trimmed(ctx)};
}

std::vector<FpElem> LagrangeCoeffs(const FpCtx& ctx,
                                   std::span<const FpElem> xs,
                                   const FpElem& x) {
  const std::size_t m = xs.size();
  Require(m >= 1, "LagrangeCoeffs: empty points");
  if (m >= PolyEngineCrossover()) {
    // Barycentric form: den_i = prod_{j!=i}(x_i - x_j) = P'(x_i), which the
    // cached subproduct tree already holds inverted; the numerators are the
    // O(m) prefix/suffix products of (x - x_j).
    auto tree = CachedSubproductTree(ctx, xs);
    std::span<const FpElem> inv_dens = tree->inv_derivs();
    std::vector<FpElem> prefix(m + 1, ctx.One());
    std::vector<FpElem> suffix(m + 1, ctx.One());
    for (std::size_t j = 0; j < m; ++j) {
      prefix[j + 1] = ctx.Mul(prefix[j], ctx.Sub(x, xs[j]));
    }
    for (std::size_t j = m; j-- > 0;) {
      suffix[j] = ctx.Mul(suffix[j + 1], ctx.Sub(x, xs[j]));
    }
    std::vector<FpElem> w(m);
    for (std::size_t i = 0; i < m; ++i) {
      w[i] = ctx.Mul(ctx.Mul(prefix[i], suffix[i + 1]), inv_dens[i]);
    }
    return w;
  }
  std::vector<FpElem> nums(m, ctx.One());
  std::vector<FpElem> dens(m, ctx.One());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      nums[i] = ctx.Mul(nums[i], ctx.Sub(x, xs[j]));
      FpElem d = ctx.Sub(xs[i], xs[j]);
      Require(!ctx.IsZero(d), "LagrangeCoeffs: duplicate x");
      dens[i] = ctx.Mul(dens[i], d);
    }
  }
  ctx.BatchInv(dens);
  std::vector<FpElem> w(m);
  for (std::size_t i = 0; i < m; ++i) w[i] = ctx.Mul(nums[i], dens[i]);
  return w;
}

std::vector<std::vector<FpElem>> LagrangeCoeffsMulti(
    const FpCtx& ctx, std::span<const FpElem> xs,
    std::span<const FpElem> eval_points) {
  const std::size_t m = xs.size();
  Require(m >= 1, "LagrangeCoeffsMulti: empty points");
  // Denominators do not depend on the evaluation point: invert them once.
  // Above the crossover the cached tree supplies them (den_i = P'(x_i))
  // without the O(m^2) difference products.
  std::vector<FpElem> inv_dens;
  if (m >= PolyEngineCrossover()) {
    auto tree = CachedSubproductTree(ctx, xs);
    inv_dens.assign(tree->inv_derivs().begin(), tree->inv_derivs().end());
  } else {
    inv_dens.assign(m, ctx.One());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (j == i) continue;
        FpElem d = ctx.Sub(xs[i], xs[j]);
        Require(!ctx.IsZero(d), "LagrangeCoeffsMulti: duplicate x");
        inv_dens[i] = ctx.Mul(inv_dens[i], d);
      }
    }
    ctx.BatchInv(inv_dens);
  }

  std::vector<std::vector<FpElem>> out;
  out.reserve(eval_points.size());
  for (const FpElem& x : eval_points) {
    // prefix/suffix products of (x - xs[j]) give all numerators in O(m).
    std::vector<FpElem> prefix(m + 1, ctx.One());
    std::vector<FpElem> suffix(m + 1, ctx.One());
    for (std::size_t j = 0; j < m; ++j) {
      prefix[j + 1] = ctx.Mul(prefix[j], ctx.Sub(x, xs[j]));
    }
    for (std::size_t j = m; j-- > 0;) {
      suffix[j] = ctx.Mul(suffix[j + 1], ctx.Sub(x, xs[j]));
    }
    std::vector<FpElem> w(m);
    for (std::size_t i = 0; i < m; ++i) {
      w[i] = ctx.Mul(ctx.Mul(prefix[i], suffix[i + 1]), inv_dens[i]);
    }
    out.push_back(std::move(w));
  }
  return out;
}

FpElem LagrangeEval(const FpCtx& ctx, std::span<const FpElem> xs,
                    std::span<const FpElem> ys, const FpElem& x) {
  Require(xs.size() == ys.size(), "LagrangeEval: xs/ys mismatch");
  std::vector<FpElem> w = LagrangeCoeffs(ctx, xs, x);
  return ctx.Dot(w, ys);
}

bool PointsOnLowDegree(const FpCtx& ctx, std::span<const FpElem> xs,
                       std::span<const FpElem> ys, std::size_t deg) {
  Require(xs.size() == ys.size(), "PointsOnLowDegree: xs/ys mismatch");
  if (xs.size() <= deg + 1) return true;  // always interpolatable
  Poly f = Poly::Interpolate(ctx, xs.subspan(0, deg + 1), ys.subspan(0, deg + 1));
  std::span<const FpElem> extras = xs.subspan(deg + 1);
  if (extras.size() >= PolyEvalCrossover()) {
    // Many check points: one multipoint evaluation instead of per-point
    // Horner (the early-exit below is worthless once evaluation is batched).
    std::vector<FpElem> vals = EvalMany(ctx, f.coeffs(), extras);
    for (std::size_t i = 0; i < extras.size(); ++i) {
      if (!ctx.Eq(vals[i], ys[deg + 1 + i])) return false;
    }
    return true;
  }
  for (std::size_t i = deg + 1; i < xs.size(); ++i) {
    if (!ctx.Eq(f.Eval(ctx, xs[i]), ys[i])) return false;
  }
  return true;
}

PointChecker::PointChecker(const FpCtx& ctx, std::vector<FpElem> xs,
                           std::size_t deg)
    : ctx_(&ctx), xs_(std::move(xs)), deg_(deg) {
  Require(xs_.size() >= deg_ + 1, "PointChecker: not enough points");
  std::span<const FpElem> base(xs_.data(), deg_ + 1);
  std::span<const FpElem> extras(xs_.data() + deg_ + 1,
                                 xs_.size() - deg_ - 1);
  extra_weights_ = LagrangeCoeffsMulti(*ctx_, base, extras);
}

bool PointChecker::Consistent(std::span<const FpElem> ys) const {
  Require(ys.size() == xs_.size(), "PointChecker: ys size mismatch");
  for (std::size_t e = 0; e < extra_weights_.size(); ++e) {
    FpElem predicted = Apply(*ctx_, extra_weights_[e], ys);
    if (!ctx_->Eq(predicted, ys[deg_ + 1 + e])) return false;
  }
  return true;
}

FpElem PointChecker::EvalAt(const FpElem& x, std::span<const FpElem> ys) const {
  return Apply(*ctx_, WeightsAt(x), ys);
}

std::vector<FpElem> PointChecker::WeightsAt(const FpElem& x) const {
  std::span<const FpElem> base(xs_.data(), deg_ + 1);
  return LagrangeCoeffs(*ctx_, base, x);
}

FpElem PointChecker::Apply(const FpCtx& ctx, std::span<const FpElem> weights,
                           std::span<const FpElem> ys) {
  Require(ys.size() >= weights.size(), "PointChecker::Apply: ys too short");
  return ctx.Dot(weights, ys.first(weights.size()));
}

}  // namespace pisces::math
