// Process-wide memo for the point-set-dependent precomputations that the
// protocol re-derives every window: Lagrange weight sets (reconstruction,
// VSS check rows) and Vandermonde evaluation rows (share generation, deal
// evaluation).
//
// Every refresh window rebuilds a VssBatch per file with the SAME holder and
// vanishing point sets, and every download recomputes the same reconstruction
// weights for the same responder set; each rebuild costs O(m^2) field
// multiplications plus a batch inversion. The caches here memoize those
// results keyed by (context, evaluation-point set), following the
// CachedHyperInvertible precedent in math/matrix.h.
//
// Invalidation rules (see docs/parallelism.md):
//   * entries are immutable once inserted -- handing out shared_ptr<const T>
//     means a cached value can never change under a reader, so lookups from
//     pool workers are safe;
//   * keys include the FpCtx address AND the full little-endian dump of the
//     point coordinates, so two contexts (or two point sets) never alias;
//   * the cache is wiped wholesale when it exceeds kMaxEntries -- eviction
//     never depends on timing or thread count, keeping runs reproducible.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "field/fp.h"
#include "math/matrix.h"

namespace pisces::math {

using field::FpCtx;
using field::FpElem;

// Upper bound on retained entries per cache before a wholesale clear. A
// cluster sweep touches a handful of point sets per (n, t, l) configuration;
// 256 comfortably covers every bench sweep while bounding memory.
inline constexpr std::size_t kWeightCacheMaxEntries = 256;

// Memoized LagrangeCoeffsMulti: weight vectors for `eval_points` over the
// base set `xs` (one batch inversion on a miss, pure lookup on a hit).
std::shared_ptr<const std::vector<std::vector<FpElem>>> CachedLagrangeWeights(
    const FpCtx& ctx, std::span<const FpElem> xs,
    std::span<const FpElem> eval_points);

// Memoized Vandermonde rows: row r holds xs[r]^0 .. xs[r]^{cols-1}. Dotting a
// row with a coefficient vector evaluates a degree <= cols-1 polynomial at
// xs[r]; cached so per-block share evaluation stops re-deriving the powers.
std::shared_ptr<const Matrix> CachedVandermondeRows(const FpCtx& ctx,
                                                    std::span<const FpElem> xs,
                                                    std::size_t cols);

// Test hook: drops every cached entry (both caches).
void ClearWeightCaches();
// Test hook: total entries currently held across both caches.
std::size_t WeightCacheSize();

// Cumulative hit/miss counters across both caches (process-wide, relaxed
// atomics -- observability only, never part of control flow). The driver
// snapshots these around each experiment window and the Recorder CSV carries
// the deltas, so a sweep shows how much precomputation the caches absorbed.
struct WeightCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
WeightCacheStats GetWeightCacheStats();
void ResetWeightCacheStats();

}  // namespace pisces::math
