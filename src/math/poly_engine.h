// Quasi-linear polynomial engine: subproduct-tree multipoint evaluation and
// interpolation over F_p (docs/polynomial_engine.md).
//
// The generic algebra in math/poly.h is O(m^2) field multiplications per
// block for interpolation, Lagrange weights, and dense evaluation -- ample at
// the paper's degrees (d <= ~40) but the dominant window cost as n grows.
// This engine supplies the classical divide-and-conquer replacements
// (von zur Gathen & Gerhard, ch. 9-10):
//
//   * MulPolys          -- Karatsuba product, O(m^1.585), with a lazy-dot
//                          schoolbook base case (one Montgomery reduction per
//                          output coefficient via DotAcc);
//   * SubproductTree    -- binary tree of monic node polynomials over a point
//                          set, each node carrying the Newton inverse power
//                          series rev(node)^{-1} mod x^sibling_deg that turns
//                          every remainder-tree division into two truncated
//                          products;
//   * EvalAll           -- multipoint evaluation by the remainder tree,
//                          O(M(m) log m);
//   * Interpolate       -- barycentric interpolation: cached 1/P'(x_i)
//                          weights (one batch inversion at tree build) plus
//                          the linear-combination up-tree, O(M(m) log m);
//   * CachedSubproductTree -- process-wide per-point-set domain memo layered
//                          on the math/weight_cache discipline (immutable
//                          shared_ptr values, context + coordinate keying,
//                          wholesale clear at the size cap), so every (n, t)
//                          share domain -- holder alphas, secret betas,
//                          responder subsets -- pays tree construction once.
//
// Dispatch policy: the entry points in math/poly.h consult
// PolyEngineCrossover() and keep the generic path below it, so small-n
// behavior (and its cost profile) is byte-for-byte the pre-engine code.
// Above the crossover the engine computes the same exact field elements --
// arithmetic in F_p is exact and FpElem's Montgomery form is canonical -- so
// shares, transcripts, and wire bytes are bit-identical to the generic path
// at EVERY size; the differential suite in tests/poly_engine_test.cpp
// enforces this against the Lagrange/Vandermonde oracle.
//
// Determinism: everything here is pure serial compute over its inputs; no
// randomness, no timing dependence, no pool fan-out inside the engine. Tree
// construction racing between pool workers is resolved by the cache exactly
// like math/weight_cache (identical values, first insert wins), so results
// never depend on the task-pool size.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "field/fp.h"

namespace pisces::math {

using field::FpCtx;
using field::FpElem;

// Point-count threshold above which the subproduct-tree paths replace the
// generic O(m^2) algebra for INTERPOLATION, Lagrange weights, and vanishing
// polynomials. The compiled default is measured on the release build
// (scripts/bench_micro.sh records the trajectory in BENCH_field.json): the
// up-tree interpolation beats the Lagrange oracle from a few dozen points
// (~3.6x at n=16 already), so the default sits just above the paper-scale
// sizes to keep small-n runs on the legacy path byte-for-byte.
// PISCES_POLY_CROSSOVER overrides it (read once per process).
std::size_t PolyEngineCrossover();

// Separate, much higher threshold for multipoint EVALUATION. Measured on
// this substrate the remainder tree loses to per-point Horner / cached
// Vandermonde dot products through n = 1024 -- FpElem is a fixed
// kMaxLimbs-wide array, so Karatsuba's extra adds/copies move 256 bytes per
// coefficient regardless of field width while a lazy dot does one wide
// reduction per output -- and only wins asymptotically beyond that. The
// eval sections of BENCH_field.json record exactly this (speedup < 1 at the
// benched sizes), which is why the default keeps production shapes on the
// Vandermonde path. PISCES_POLY_EVAL_CROSSOVER overrides it.
std::size_t PolyEvalCrossover();

// Exact polynomial product, same value as the schoolbook convolution of
// math/poly.h (F_p is exact; Montgomery form is canonical). Karatsuba above
// a fixed base-case size, lazy-dot schoolbook below it. Returns the empty
// vector when either input is empty.
std::vector<FpElem> MulPolys(const FpCtx& ctx, std::span<const FpElem> a,
                             std::span<const FpElem> b);

// f(x) at every point of xs. Dispatches: remainder tree over the (cached)
// subproduct tree when xs is large and f is dense enough to amortize it,
// Horner per point otherwise. Exact either way.
std::vector<FpElem> EvalMany(const FpCtx& ctx, std::span<const FpElem> f,
                             std::span<const FpElem> xs);

// Subproduct tree over a fixed point set: the precomputed domain object for
// multipoint evaluation and interpolation. Immutable after construction;
// safe to share across threads (see docs/parallelism.md).
class SubproductTree {
 public:
  // Points must be distinct (detected at construction via P'(x_i) == 0).
  SubproductTree(const FpCtx& ctx, std::vector<FpElem> xs);

  std::size_t size() const { return xs_.size(); }
  std::span<const FpElem> points() const { return xs_; }
  const FpCtx& ctx() const { return *ctx_; }

  // Monic vanishing polynomial prod_i (x - x_i): size() + 1 coefficients.
  const std::vector<FpElem>& root() const;

  // Barycentric weights 1/P'(x_i), aligned with points(). One batch
  // inversion at construction; every per-block interpolation reuses them.
  std::span<const FpElem> inv_derivs() const { return inv_derivs_; }

  // f evaluated at every point, in point order. Any f size (a dividend
  // larger than the root is reduced by schoolbook monic division first).
  std::vector<FpElem> EvalAll(std::span<const FpElem> f) const;

  // Coefficients (size()) of the unique degree < size() interpolant through
  // (points()[i], ys[i]). ys.size() must equal size().
  std::vector<FpElem> Interpolate(std::span<const FpElem> ys) const;

 private:
  struct Node {
    std::size_t begin = 0;   // first point index covered by this node
    std::size_t count = 0;   // number of points covered
    std::size_t left = 0;    // child indices into nodes_ (leaf: left == npos)
    std::size_t right = 0;
    std::vector<FpElem> poly;     // monic, count + 1 coefficients
    std::vector<FpElem> inv_rev;  // rev(poly)^{-1} mod x^{sibling_count}
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t Build(std::size_t begin, std::size_t count);
  // Remainder of `a` (size <= node.count + sibling precision) modulo the
  // node polynomial via the precomputed inverse series: two truncated
  // products, no field inversions.
  std::vector<FpElem> RemByNode(const Node& node,
                                std::span<const FpElem> a) const;
  void DownEval(std::size_t node_idx, std::vector<FpElem> rem,
                std::vector<FpElem>& out) const;
  std::vector<FpElem> UpCombine(std::size_t node_idx,
                                std::span<const FpElem> scaled) const;

  const FpCtx* ctx_;
  std::vector<FpElem> xs_;
  std::vector<Node> nodes_;  // post-order; root is nodes_.back()
  std::size_t root_ = 0;
  std::vector<FpElem> inv_derivs_;
};

// Process-wide subproduct-tree domain cache, keyed like math/weight_cache
// (context address + little-endian coordinate dump, wholesale clear past the
// cap). Values are immutable; lookups from pool workers are safe.
std::shared_ptr<const SubproductTree> CachedSubproductTree(
    const FpCtx& ctx, std::span<const FpElem> xs);

// Test hooks, mirroring the weight-cache ones.
void ClearPolyDomainCache();
std::size_t PolyDomainCacheSize();

// Cumulative engine counters (process-wide relaxed atomics; observability
// only). domain_hits/misses track CachedSubproductTree; tree_evals and
// tree_interps count EvalAll/Interpolate calls that actually ran on a tree.
struct PolyEngineStats {
  std::uint64_t domain_hits = 0;
  std::uint64_t domain_misses = 0;
  std::uint64_t tree_evals = 0;
  std::uint64_t tree_interps = 0;
};
PolyEngineStats GetPolyEngineStats();
void ResetPolyEngineStats();

}  // namespace pisces::math
