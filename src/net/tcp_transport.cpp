#include "net/tcp_transport.h"

#include "net/net_obs.h"
#include "obs/trace.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "common/socket_util.h"

namespace pisces::net {

TcpEndpoint::TcpEndpoint(std::uint32_t id, std::uint16_t listen_port)
    : id_(id) {
  IgnoreSigpipe();
  listen_fd_ = ListenLoopback(listen_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpEndpoint::~TcpEndpoint() {
  stopping_.store(true);
  CloseAll();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Join without holding the mutex: exiting readers lock it to deregister.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers.swap(readers_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

void TcpEndpoint::CloseAll() {
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    for (auto& [id, fd] : out_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    out_fds_.clear();
  }
  // Unblock reader threads stuck in recv(); each reader closes its own fd
  // (and deregisters it) on exit.
  std::lock_guard<std::mutex> lock(readers_mutex_);
  for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpEndpoint::AddPeer(std::uint32_t peer_id, std::uint16_t port) {
  std::lock_guard<std::mutex> lock(peers_mutex_);
  peer_ports_[peer_id] = port;
}

void TcpEndpoint::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // listener retired by CloseAll
    int fd = AcceptRetry(lfd);
    if (fd < 0) return;  // listener closed
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(readers_mutex_);
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { ReadLoop(fd); });
  }
}

void TcpEndpoint::ReadLoop(int fd) {
  for (;;) {
    std::uint8_t len_buf[4];
    if (!ReadFull(fd, len_buf, 4)) break;
    std::uint32_t len = LoadLe32(len_buf);
    // Reject a lying length prefix before it can drive an allocation.
    if (!FrameLengthAcceptable(len)) break;
    Bytes frame(len);
    if (!ReadFull(fd, frame.data(), len)) break;
    try {
      Message m = Message::Deserialize(frame);
      CountReceive(m.type, m.WireSize());
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(std::move(m));
      }
      queue_cv_.notify_one();
    } catch (const ParseError&) {
      LogWarn() << "TcpEndpoint " << id_ << ": dropping malformed frame";
    }
  }
  {
    // Deregister before closing so CloseAll never touches a recycled fd.
    std::lock_guard<std::mutex> lock(readers_mutex_);
    reader_fds_.erase(std::remove(reader_fds_.begin(), reader_fds_.end(), fd),
                      reader_fds_.end());
  }
  ::close(fd);
}

int TcpEndpoint::ConnectTo(std::uint32_t peer_id) {
  // Caller holds peers_mutex_.
  auto it = out_fds_.find(peer_id);
  if (it != out_fds_.end()) return it->second;
  auto port_it = peer_ports_.find(peer_id);
  Require(port_it != peer_ports_.end(), "TcpEndpoint: unknown peer");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_it->second);
  // Reconnect with exponential backoff: a peer mid-restart (secure reboot)
  // refuses connections briefly; 1+2+4+8+16 ms of backoff rides that out
  // without stalling a healthy send path.
  int delay_ms = 1;
  for (int attempt = 0;; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    Require(fd >= 0, "TcpEndpoint: socket() failed");
    SetNoDelay(fd);
    if (ConnectRetry(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0) {
      if (attempt > 0) reconnects_.fetch_add(1);
      out_fds_[peer_id] = fd;
      return fd;
    }
    CloseQuiet(fd);
    if (attempt >= 5 || stopping_.load()) {
      throw Error("TcpEndpoint: connect() failed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms *= 2;
  }
}

void TcpEndpoint::Send(Message msg) {
  Require(msg.from == id_, "TcpEndpoint::Send: from must match endpoint id");
  CountSend(msg.type, msg.WireSize());
  obs::NetEvent("send", msg.from, msg.to, msg.WireSize());
  Bytes body = msg.Serialize();
  Bytes frame(4 + body.size());
  StoreLe32(static_cast<std::uint32_t>(body.size()), frame.data());
  std::copy(body.begin(), body.end(), frame.begin() + 4);

  std::lock_guard<std::mutex> lock(peers_mutex_);
  // A cached connection can be dead (peer restarted since the last send);
  // retry the write once through a freshly established connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = ConnectTo(msg.to);
    if (WriteFull(fd, frame.data(), frame.size())) {
      bytes_sent_.fetch_add(frame.size());
      return;
    }
    CloseQuiet(fd);
    out_fds_.erase(msg.to);
    reconnects_.fetch_add(1);
  }
  throw Error("TcpEndpoint: send failed");
}

std::optional<Message> TcpEndpoint::Receive() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  obs::NetEvent("recv", m.from, id_, m.WireSize());
  return m;
}

std::optional<Message> TcpEndpoint::ReceiveWait(int timeout_ms) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (!queue_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [this] { return !queue_.empty(); })) {
    return std::nullopt;
  }
  Message m = std::move(queue_.front());
  queue_.pop_front();
  obs::NetEvent("recv", m.from, id_, m.WireSize());
  return m;
}

}  // namespace pisces::net
