// Wire message format shared by the simulated and TCP transports.
//
// Every protocol step in PiSCES is a point-to-point message between two
// endpoints (hosts, the client, or the hypervisor). Messages carry a type,
// correlation ids (file, epoch, batch, row) so concurrent protocol sessions
// can be demultiplexed, and an opaque payload (serialized field elements,
// certificates, or control structures).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace pisces::net {

// Reserved endpoint ids; hosts are 0..n-1.
inline constexpr std::uint32_t kClientId = 0xFFFF0000;
inline constexpr std::uint32_t kHypervisorId = 0xFFFF0001;
// Serving-plane gateway (docs/serving.md); serving clients use ids above it.
inline constexpr std::uint32_t kGatewayId = 0xFFFF0002;

enum class MsgType : std::uint8_t {
  // Client / hypervisor -> host control plane.
  kSetShares = 0,       // initial share upload (paper Fig 5 event "Set")
  kReconstructRequest,  // client asks for shares of a file
  kShareResponse,       // host -> client share material
  kStartRefresh,        // hypervisor starts a rerandomization phase
  kStartRecovery,       // hypervisor starts recovery toward rebooted hosts
  kHostCert,            // freshly rebooted host broadcasts its signed key
  kDeleteFile,          // client asks hosts to drop a file

  // PSS data plane.
  kDeal,         // dealer -> holder: shares of dealt polynomials
  kCheckShare,   // holder -> verifier: share of a check row
  kVerdict,      // verifier -> all: accept/reject of its check rows
  kMaskedShare,  // surviving host -> rebooted host: f(alpha_i) + q(alpha_i)

  // Session completion notices (host -> hypervisor/driver).
  kPhaseDone,

  // Process-per-host control plane (docs/deployment.md). In-process clusters
  // never emit these: the hypervisor drives its hosts by direct privileged
  // calls. In a multiprocess deployment the same lifecycle operations travel
  // the wire between the coordinator and each pisces_hostd process.
  kBootHost,       // hypervisor -> hostd: boot material (cert, sk, directory)
  kHaltHost,       // hypervisor -> hostd: secure disassociation (wipe state)
  kStatusRequest,  // hypervisor -> hostd: report status
  kStatusReport,   // hostd -> hypervisor: online?, epoch, held file ids;
                   //   also the "needs boot" announcement of a fresh process
  kAbortStuck,     // hypervisor -> hostd: bounded-delay timeout fired; abort
                   //   wedged sessions so the next attempt starts clean

  // Serving plane (docs/serving.md): multiplexed request framing. The
  // payload is a net::ServingRequestFrame / ServingResponseFrame carrying
  // the session id, per-session request ordinal, and shard routing header,
  // so many logical client sessions share one persistent connection to a
  // serving gateway instead of one-shot Client objects.
  kServingRequest,   // client -> gateway: one serving operation
  kServingResponse,  // gateway -> client: completion or admission reject
};

// Last valid wire value of MsgType; Deserialize rejects anything above.
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kServingResponse);

const char* MsgTypeName(MsgType t);

// Fixed wire-header size: from, to, type, file_id, epoch, batch, row, and
// the payload length prefix.
inline constexpr std::size_t kWireHeaderSize = 4 + 4 + 1 + 8 + 4 + 4 + 4 + 4;

// Hard cap on the payload size accepted off the wire. A length-field lie in
// a frame must fail parsing up front instead of driving allocation; the cap
// is generous against every real payload (the largest dealings are a few MiB
// at paper-scale parameters).
inline constexpr std::size_t kMaxPayload = 64u << 20;

// Hard cap on a framed message as it appears on a TCP stream: the 4-byte
// length prefix announces at most header + max payload. Both TCP transports
// validate the prefix against this BEFORE allocating the frame buffer, so a
// lying length field can never drive a giant allocation; a zero length is a
// transport-level heartbeat, not a message.
inline constexpr std::size_t kMaxFrameBytes = kWireHeaderSize + kMaxPayload;

// Whether a received length prefix is acceptable to read and buffer.
inline constexpr bool FrameLengthAcceptable(std::uint64_t len) {
  return len <= kMaxFrameBytes;
}

struct Message {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  MsgType type = MsgType::kSetShares;
  std::uint64_t file_id = 0;
  std::uint32_t epoch = 0;  // proactive round number
  std::uint32_t batch = 0;  // batch index within a phase
  std::uint32_t row = 0;    // check-row / target-host / misc discriminator
  Bytes payload;

  Bytes Serialize() const;
  static Message Deserialize(std::span<const std::uint8_t> data);

  // Bytes this message occupies on the wire (header + payload); used by the
  // communication-overhead accounting in the experiments.
  std::size_t WireSize() const;

  std::string Describe() const;
};

}  // namespace pisces::net
