#include "net/async_tcp.h"

#include <cerrno>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"
#include "common/error.h"
#include "common/socket_util.h"
#include "net/net_obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace pisces::net {

namespace {

// Process-wide aggregates; per-peer counters are registered lazily as
// net.peer.<id>.* when a peer first exchanges traffic.
struct NetCounters {
  obs::Counter& reconnects = obs::RegisterCounter(
      "net.reconnects", "async-TCP connections re-established after loss");
  obs::Counter& heartbeat_misses = obs::RegisterCounter(
      "net.heartbeat_misses", "supervision windows a peer stayed silent");
  obs::Counter& backpressure_stalls = obs::RegisterCounter(
      "net.backpressure_stalls", "Send() calls that blocked on a full queue");
  obs::Counter& frames_sent = obs::RegisterCounter(
      "net.frames_sent", "frames fully written to peer sockets");
  obs::Counter& frames_received = obs::RegisterCounter(
      "net.frames_received", "message frames parsed off peer sockets");
  obs::Counter& bytes_sent = obs::RegisterCounter(
      "net.bytes_sent", "bytes written to peer sockets");
  obs::Counter& bytes_received = obs::RegisterCounter(
      "net.bytes_received", "bytes read from peer sockets");
  obs::Counter& frames_dropped = obs::RegisterCounter(
      "net.frames_dropped", "frames dropped after the backpressure budget");
  obs::Counter& frames_rejected = obs::RegisterCounter(
      "net.frames_rejected",
      "frames rejected before allocation (oversize prefix or parse failure)");
};

NetCounters& Counters() {
  static NetCounters c;
  return c;
}

}  // namespace

AsyncTcpEndpoint::AsyncTcpEndpoint(AsyncTcpOptions opts)
    : opts_(opts), jitter_rng_(opts.seed ^ 0x9e3779b97f4a7c15ull) {
  IgnoreSigpipe();
  Counters();  // register aggregates before the first snapshot
  listen_fd_ = ListenLoopback(opts_.listen_port);
  SetNonBlocking(listen_fd_, true);
  // Pre-thread-start: the reactor is not running yet, so touching the loop
  // from this thread is safe.
  loop_.AddFd(listen_fd_, EventLoop::kReadable,
              [this](std::uint32_t) { OnListenReady(); });
  loop_.AddTimer(opts_.heartbeat_interval_ms, [this] { HeartbeatTick(); });
  loop_thread_ = std::thread([this] { LoopMain(); });
}

AsyncTcpEndpoint::~AsyncTcpEndpoint() {
  stopping_ = true;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    send_cv_.notify_all();
    recv_cv_.notify_all();
  }
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Reactor is dead; tear down fds without it.
  for (auto& [fd, in] : inbound_) CloseQuiet(fd);
  for (auto& [id, p] : peers_) {
    if (p.fd >= 0) CloseQuiet(p.fd);
  }
  if (listen_fd_ >= 0) CloseQuiet(listen_fd_);
}

void AsyncTcpEndpoint::AddPeer(std::uint32_t peer_id, std::uint16_t port) {
  std::lock_guard<std::mutex> lk(mutex_);
  peers_[peer_id].port = port;
}

std::uint64_t AsyncTcpEndpoint::NowMs() const {
  return MonotonicNanos() / 1'000'000;
}

// ---- application-thread API ------------------------------------------------

void AsyncTcpEndpoint::Send(Message msg) {
  msg.from = opts_.id;
  if (msg.to == opts_.id) {  // local delivery; no socket round-trip
    std::lock_guard<std::mutex> lk(mutex_);
    recv_queue_bytes_ += msg.WireSize();
    recv_queue_.push_back(std::move(msg));
    recv_cv_.notify_one();
    return;
  }

  const Bytes body = msg.Serialize();
  Bytes frame(4 + body.size());
  StoreLe32(static_cast<std::uint32_t>(body.size()), frame.data());
  std::copy(body.begin(), body.end(), frame.begin() + 4);
  CountSend(msg.type, msg.WireSize());

  std::unique_lock<std::mutex> lk(mutex_);
  auto it = peers_.find(msg.to);
  Require(it != peers_.end() && it->second.port != 0,
          "AsyncTcpEndpoint::Send: unknown peer");
  Peer& p = it->second;
  p.supervised = true;

  if (p.queue_bytes + frame.size() > opts_.send_queue_cap_bytes) {
    // Backpressure: stall (bounded), never buffer unboundedly.
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    Counters().backpressure_stalls.Add();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.backpressure_stall_ms);
    while (!stopping_ &&
           p.queue_bytes + frame.size() > opts_.send_queue_cap_bytes) {
      if (send_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    if (stopping_ ||
        p.queue_bytes + frame.size() > opts_.send_queue_cap_bytes) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      Counters().frames_dropped.Add();
      p.stats.frames_dropped++;
      return;  // loss, which every protocol layer already tolerates
    }
  }
  EnqueueLocked(p, std::move(frame));
  lk.unlock();
  loop_.Wakeup();  // reactor connects / drains as needed
}

void AsyncTcpEndpoint::EnqueueLocked(Peer& p, Bytes frame) {
  p.queue_bytes += frame.size();
  p.queue.push_back(std::move(frame));
}

std::optional<Message> AsyncTcpEndpoint::Receive() {
  return ReceiveWait(0);
}

std::optional<Message> AsyncTcpEndpoint::ReceiveWait(int timeout_ms) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (timeout_ms > 0) {
    recv_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                      [this] { return !recv_queue_.empty() || stopping_; });
  }
  if (recv_queue_.empty()) return std::nullopt;
  Message m = std::move(recv_queue_.front());
  recv_queue_.pop_front();
  const std::size_t sz = m.WireSize();
  recv_queue_bytes_ = recv_queue_bytes_ > sz ? recv_queue_bytes_ - sz : 0;
  if (reading_paused_ && recv_queue_bytes_ < opts_.recv_queue_cap_bytes / 2) {
    lk.unlock();
    loop_.Wakeup();  // ServiceKicks resumes reading below the low-water mark
  }
  return m;
}

bool AsyncTcpEndpoint::PeerHealthy(std::uint32_t peer_id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = peers_.find(peer_id);
  if (it == peers_.end() || it->second.last_heard_ms == 0) return false;
  const std::uint64_t window = opts_.heartbeat_interval_ms *
                               static_cast<std::uint64_t>(
                                   opts_.heartbeat_miss_limit);
  return NowMs() - it->second.last_heard_ms <= window;
}

AsyncTcpEndpoint::PeerStats AsyncTcpEndpoint::StatsFor(
    std::uint32_t peer_id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = peers_.find(peer_id);
  return it == peers_.end() ? PeerStats{} : it->second.stats;
}

// ---- reactor thread --------------------------------------------------------

void AsyncTcpEndpoint::LoopMain() {
  while (!stopping_) {
    loop_.PollOnce(-1);
    if (stopping_) break;
    // Service cross-thread kicks: fresh send-queue data and read resumption.
    std::lock_guard<std::mutex> lk(mutex_);
    if (reading_paused_ &&
        recv_queue_bytes_ < opts_.recv_queue_cap_bytes / 2) {
      reading_paused_ = false;
      UpdateReadInterest();
    }
    for (auto& [id, p] : peers_) {
      if (p.queue.empty()) continue;
      if (p.state == Peer::State::kDown && p.retry_timer == 0 && p.port != 0) {
        StartConnect(id);
      } else if (p.state == Peer::State::kConnected) {
        DrainSendQueue(id);
      }
    }
  }
}

void AsyncTcpEndpoint::UpdateReadInterest() {
  const std::uint32_t interest = reading_paused_ ? 0 : EventLoop::kReadable;
  for (auto& [fd, in] : inbound_) {
    if (loop_.WatchesFd(fd)) loop_.UpdateFd(fd, interest);
  }
}

void AsyncTcpEndpoint::OnListenReady() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (;;) {
    const int fd = AcceptRetry(listen_fd_);
    if (fd < 0) return;  // EAGAIN (or transient error): wait for next event
    SetNonBlocking(fd, true);
    SetNoDelay(fd);
    inbound_.emplace(fd, Inbound{fd, {}});
    loop_.AddFd(fd, reading_paused_ ? 0 : EventLoop::kReadable,
                [this, fd](std::uint32_t ev) { OnInboundReady(fd, ev); });
  }
}

void AsyncTcpEndpoint::OnInboundReady(int fd, std::uint32_t events) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  Inbound& in = it->second;

  bool drained = false;  // read until EAGAIN
  if (events & EventLoop::kReadable) {
    std::uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t n = RecvRetry(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        Counters().bytes_received.Add(static_cast<std::uint64_t>(n));
        in.buf.insert(in.buf.end(), chunk, chunk + n);
        ParseInbound(in);
        if (in.fd < 0) {  // ParseInbound flagged a protocol violation
          CloseInbound(fd);
          return;
        }
        if (reading_paused_) {
          UpdateReadInterest();
          return;  // resume via ServiceKicks once the app drains
        }
        continue;
      }
      if (n == 0) {  // orderly EOF
        CloseInbound(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        drained = true;
        break;
      }
      CloseInbound(fd);  // ECONNRESET and friends: peer died; not our death
      return;
    }
  }
  if ((events & EventLoop::kError) && drained) CloseInbound(fd);
}

void AsyncTcpEndpoint::CloseInbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  loop_.RemoveFd(fd);
  CloseQuiet(fd);
  inbound_.erase(it);
}

void AsyncTcpEndpoint::ParseInbound(Inbound& in) {
  std::size_t off = 0;
  while (in.buf.size() - off >= 4) {
    const std::uint32_t len = LoadLe32(in.buf.data() + off);
    if (!FrameLengthAcceptable(len)) {
      // A lying length prefix is rejected before any allocation and the
      // stream is cut: past this point framing cannot be trusted.
      Counters().frames_rejected.Add();
      in.fd = -1;  // caller closes
      break;
    }
    if (in.buf.size() - off < 4u + len) break;  // incomplete frame
    const std::uint8_t* body = in.buf.data() + off + 4;
    off += 4u + len;

    if (len == 0) continue;  // anonymous keepalive
    if (len == kHeartbeatFrameLen) {
      TouchPeerLocked(LoadLe32(body));
      continue;
    }
    if (len < kWireHeaderSize) {  // not a Message, not a control frame
      Counters().frames_rejected.Add();
      in.fd = -1;
      break;
    }
    Message m;
    try {
      m = Message::Deserialize(std::span<const std::uint8_t>(body, len));
    } catch (const ParseError&) {
      Counters().frames_rejected.Add();
      continue;  // framing is intact; drop just this message
    }
    Peer& p = TouchPeerLocked(m.from);
    p.stats.frames_received++;
    p.stats.bytes_received += 4u + len;
    Counters().frames_received.Add();
    CountReceive(m.type, m.WireSize());
    recv_queue_bytes_ += m.WireSize();
    recv_queue_.push_back(std::move(m));
    recv_cv_.notify_one();
    if (recv_queue_bytes_ > opts_.recv_queue_cap_bytes) {
      reading_paused_ = true;  // caller updates interests; TCP pushes back
    }
  }
  in.buf.erase(in.buf.begin(), in.buf.begin() + static_cast<long>(off));
}

AsyncTcpEndpoint::Peer& AsyncTcpEndpoint::TouchPeerLocked(
    std::uint32_t peer_id) {
  Peer& p = peers_[peer_id];
  p.last_heard_ms = NowMs();
  if (p.port != 0) p.supervised = true;
  return p;
}

void AsyncTcpEndpoint::StartConnect(std::uint32_t peer_id) {
  Peer& p = peers_[peer_id];
  p.retry_timer = 0;
  const int fd = ConnectLoopback(p.port, /*nonblocking=*/true);
  if (fd < 0) {
    ScheduleReconnect(peer_id);
    return;
  }
  SetNoDelay(fd);
  p.fd = fd;
  p.state = Peer::State::kConnecting;
  p.write_off = 0;
  loop_.AddFd(fd, EventLoop::kWritable, [this, peer_id](std::uint32_t ev) {
    OnOutboundReady(peer_id, ev);
  });
}

void AsyncTcpEndpoint::OnOutboundReady(std::uint32_t peer_id,
                                       std::uint32_t events) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  Peer& p = it->second;
  if (p.state == Peer::State::kDown || p.fd < 0) return;

  if (p.state == Peer::State::kConnecting) {
    if ((events & EventLoop::kError) || SocketError(p.fd) != 0) {
      CloseOutbound(peer_id, /*reschedule=*/true);
      return;
    }
    obs::Span span(obs::SpanKind::kNetConnect, opts_.id, peer_id);
    p.state = Peer::State::kConnected;
    p.backoff_ms = 0;
    if (p.ever_connected) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      Counters().reconnects.Add();
      p.stats.reconnects++;
    }
    p.ever_connected = true;
    DrainSendQueue(peer_id);
    return;
  }
  if (events & EventLoop::kError) {
    CloseOutbound(peer_id, /*reschedule=*/true);
    return;
  }
  if (events & EventLoop::kWritable) DrainSendQueue(peer_id);
}

void AsyncTcpEndpoint::DrainSendQueue(std::uint32_t peer_id) {
  Peer& p = peers_[peer_id];
  if (p.state != Peer::State::kConnected || p.fd < 0) return;
  bool popped = false;
  while (!p.queue.empty()) {
    const Bytes& front = p.queue.front();
    const ssize_t n = SendRetry(p.fd, front.data() + p.write_off,
                                front.size() - p.write_off, 0);
    if (n > 0) {
      p.write_off += static_cast<std::size_t>(n);
      bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
      Counters().bytes_sent.Add(static_cast<std::uint64_t>(n));
      p.stats.bytes_sent += static_cast<std::uint64_t>(n);
      if (p.write_off == front.size()) {
        p.stats.frames_sent++;
        Counters().frames_sent.Add();
        p.queue_bytes -= front.size();
        p.queue.pop_front();
        p.write_off = 0;
        popped = true;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (loop_.WatchesFd(p.fd)) loop_.UpdateFd(p.fd, EventLoop::kWritable);
      if (popped) send_cv_.notify_all();
      return;
    }
    // EPIPE / ECONNRESET: the peer died mid-write. Transport error, never
    // process death -- close, keep the queue, reconnect with backoff.
    CloseOutbound(peer_id, /*reschedule=*/true);
    if (popped) send_cv_.notify_all();
    return;
  }
  if (loop_.WatchesFd(p.fd)) loop_.UpdateFd(p.fd, 0);  // RDHUP/ERR only
  if (popped) send_cv_.notify_all();
}

void AsyncTcpEndpoint::CloseOutbound(std::uint32_t peer_id, bool reschedule) {
  Peer& p = peers_[peer_id];
  if (p.fd >= 0) {
    loop_.RemoveFd(p.fd);
    CloseQuiet(p.fd);
    p.fd = -1;
  }
  p.state = Peer::State::kDown;
  p.write_off = 0;  // a cut-off partial frame is resent from its start
  if (reschedule && !stopping_ && p.port != 0 &&
      (p.supervised || !p.queue.empty())) {
    ScheduleReconnect(peer_id);
  }
}

void AsyncTcpEndpoint::ScheduleReconnect(std::uint32_t peer_id) {
  Peer& p = peers_[peer_id];
  if (p.retry_timer != 0) return;
  p.backoff_ms = p.backoff_ms == 0
                     ? opts_.backoff_min_ms
                     : std::min<std::uint64_t>(opts_.backoff_max_ms,
                                               p.backoff_ms * 2);
  const std::uint64_t jitter = jitter_rng_.Below(p.backoff_ms / 2 + 1);
  p.retry_timer = loop_.AddTimer(p.backoff_ms + jitter, [this, peer_id] {
    std::lock_guard<std::mutex> lk(mutex_);
    Peer& peer = peers_[peer_id];
    peer.retry_timer = 0;
    if (!stopping_ && peer.state == Peer::State::kDown) StartConnect(peer_id);
  });
}

void AsyncTcpEndpoint::HeartbeatTick() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (stopping_) return;
  const std::uint64_t now = NowMs();
  const std::uint64_t window =
      opts_.heartbeat_interval_ms *
      static_cast<std::uint64_t>(opts_.heartbeat_miss_limit);
  for (auto& [id, p] : peers_) {
    if (!p.supervised || p.port == 0) continue;
    if (p.last_heard_ms != 0 && now - p.last_heard_ms > window &&
        now - p.last_miss_mark_ms > window) {
      p.last_miss_mark_ms = now;
      heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
      Counters().heartbeat_misses.Add();
      if (p.state == Peer::State::kConnected) {
        // Half-open connection suspected: force a reconnect cycle.
        CloseOutbound(id, /*reschedule=*/true);
      }
    }
    if (p.state == Peer::State::kConnected) {
      Bytes hb(4 + kHeartbeatFrameLen);
      StoreLe32(kHeartbeatFrameLen, hb.data());
      StoreLe32(opts_.id, hb.data() + 4);
      EnqueueLocked(p, std::move(hb));  // tiny, allowed past the cap
      DrainSendQueue(id);
    } else if (p.state == Peer::State::kDown && p.retry_timer == 0) {
      StartConnect(id);  // supervised peers keep reconnecting
    }
  }
  loop_.AddTimer(opts_.heartbeat_interval_ms, [this] { HeartbeatTick(); });
}

}  // namespace pisces::net
