// Real TCP transport over loopback.
//
// Demonstrates that the host state machines are transport-agnostic: the
// distributed example runs a full PiSCES cluster as n endpoints exchanging
// length-prefixed frames over real sockets. Connections are established
// lazily on first send; every endpoint runs an accept thread plus one reader
// thread per inbound connection, funneling messages into a thread-safe queue.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace pisces::net {

class TcpEndpoint : public Transport {
 public:
  // Binds and listens on 127.0.0.1:listen_port immediately.
  TcpEndpoint(std::uint32_t id, std::uint16_t listen_port);
  ~TcpEndpoint() override;

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  // Registers where a peer listens. Must happen before sending to that peer.
  void AddPeer(std::uint32_t peer_id, std::uint16_t port);

  void Send(Message msg) override;
  std::optional<Message> Receive() override;
  // Blocks up to timeout_ms for a message (the paper's bounded-delay wait).
  std::optional<Message> ReceiveWait(int timeout_ms);
  std::uint32_t id() const override { return id_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  // Times a send had to re-establish a connection (peer restarted) or a
  // connect had to back off and retry before succeeding.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  void AcceptLoop();
  void ReadLoop(int fd);
  int ConnectTo(std::uint32_t peer_id);
  void CloseAll();

  std::uint32_t id_;
  // Atomic: the destructor (CloseAll) retires the listener while the accept
  // thread is still reading it between accept() calls.
  std::atomic<int> listen_fd_{-1};

  std::mutex peers_mutex_;
  std::unordered_map<std::uint32_t, std::uint16_t> peer_ports_;
  std::unordered_map<std::uint32_t, int> out_fds_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Message> queue_;

  std::thread accept_thread_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<int> reader_fds_;  // inbound fds, shut down on close
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace pisces::net
