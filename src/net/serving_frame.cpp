#include "net/serving_frame.h"

#include <sstream>

namespace pisces::net {

const char* ServingOpName(ServingOp op) {
  switch (op) {
    case ServingOp::kUpload: return "Upload";
    case ServingOp::kDownload: return "Download";
    case ServingOp::kDelete: return "Delete";
    case ServingOp::kPing: return "Ping";
    case ServingOp::kCloseSession: return "CloseSession";
  }
  return "Unknown";
}

Bytes ServingRequestFrame::Serialize() const {
  Require(payload.size() <= kMaxServingPayload,
          "ServingRequestFrame: payload exceeds wire cap");
  ByteWriter w;
  w.U64(session);
  w.U64(request);
  w.U64(epoch);
  w.U32(shard);
  w.U8(static_cast<std::uint8_t>(op));
  w.U64(file_id);
  w.Blob(payload);
  return w.Take();
}

ServingRequestFrame ServingRequestFrame::Deserialize(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ServingRequestFrame f;
  f.session = r.U64();
  f.request = r.U64();
  f.epoch = r.U64();
  f.shard = r.U32();
  const std::uint8_t raw_op = r.U8();
  if (raw_op > kMaxServingOp) {
    throw ParseError("ServingRequestFrame: unknown op");
  }
  f.op = static_cast<ServingOp>(raw_op);
  f.file_id = r.U64();
  // Inlined Blob(): the cap check must fire on the announced length, before
  // any buffer for the claimed payload exists.
  const std::uint32_t plen = r.U32();
  if (plen > kMaxServingPayload) {
    throw ParseError("ServingRequestFrame: payload exceeds wire cap");
  }
  auto p = r.Raw(plen);
  f.payload.assign(p.begin(), p.end());
  if (!r.AtEnd()) throw ParseError("ServingRequestFrame: trailing bytes");
  return f;
}

std::string ServingRequestFrame::Describe() const {
  std::ostringstream out;
  out << "serving " << ServingOpName(op) << " session=" << session
      << " req=" << request << " epoch=" << epoch << " shard=" << shard
      << " file=" << file_id << " payload=" << payload.size() << "B";
  return out.str();
}

Bytes ServingResponseFrame::Serialize() const {
  Require(payload.size() <= kMaxServingPayload,
          "ServingResponseFrame: payload exceeds wire cap");
  // Local-only StatusCode values (kTimeout, ...) have no wire meaning; a
  // frame carrying one is a programming error, not a protocol extension.
  Require(static_cast<std::uint8_t>(status) <= kMaxServingStatus,
          "ServingResponseFrame: status is not a wire status");
  ByteWriter w;
  w.U64(session);
  w.U64(request);
  w.U8(static_cast<std::uint8_t>(status));
  w.U32(retry_after_ms);
  w.Blob(payload);
  return w.Take();
}

ServingResponseFrame ServingResponseFrame::Deserialize(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ServingResponseFrame f;
  f.session = r.U64();
  f.request = r.U64();
  const std::uint8_t raw_status = r.U8();
  if (raw_status > kMaxServingStatus) {
    throw ParseError("ServingResponseFrame: unknown status");
  }
  f.status = static_cast<ServingStatus>(raw_status);
  f.retry_after_ms = r.U32();
  const std::uint32_t plen = r.U32();
  if (plen > kMaxServingPayload) {
    throw ParseError("ServingResponseFrame: payload exceeds wire cap");
  }
  auto p = r.Raw(plen);
  f.payload.assign(p.begin(), p.end());
  if (!r.AtEnd()) throw ParseError("ServingResponseFrame: trailing bytes");
  return f;
}

std::string ServingResponseFrame::Describe() const {
  std::ostringstream out;
  out << "serving " << StatusName(status) << " session=" << session
      << " req=" << request << " retry_after=" << retry_after_ms << "ms"
      << " payload=" << payload.size() << "B";
  return out.str();
}

Bytes RoutingMap::Serialize() const {
  Require(shards.size() <= kMaxRoutingShards,
          "RoutingMap: shard count exceeds wire cap");
  ByteWriter w;
  w.U64(epoch);
  w.U32(static_cast<std::uint32_t>(shards.size()));
  for (const RoutingShard& s : shards) {
    Require(s.migrating <= 1, "RoutingMap: migrating byte must be 0 or 1");
    w.U32(s.n);
    w.U32(s.t);
    w.U8(s.migrating);
  }
  return w.Take();
}

RoutingMap RoutingMap::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  RoutingMap m;
  m.epoch = r.U64();
  // Cap check fires on the announced count, before reserving anything for
  // the claimed shard list.
  const std::uint32_t count = r.U32();
  if (count > kMaxRoutingShards) {
    throw ParseError("RoutingMap: shard count exceeds wire cap");
  }
  m.shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RoutingShard s;
    s.n = r.U32();
    s.t = r.U32();
    s.migrating = r.U8();
    if (s.migrating > 1) {
      throw ParseError("RoutingMap: migrating byte must be 0 or 1");
    }
    m.shards.push_back(s);
  }
  if (!r.AtEnd()) throw ParseError("RoutingMap: trailing bytes");
  return m;
}

std::string RoutingMap::Describe() const {
  std::ostringstream out;
  out << "routing-map epoch=" << epoch << " shards=" << shards.size();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    out << " [" << i << ": n=" << shards[i].n << " t=" << shards[i].t
        << (shards[i].migrating != 0 ? " migrating" : "") << "]";
  }
  return out.str();
}

}  // namespace pisces::net
