#include "net/sim_transport.h"

#include <algorithm>

#include "net/net_obs.h"
#include "obs/trace.h"

namespace pisces::net {

void SimEndpoint::Send(Message msg) {
  Require(msg.from == id_, "SimEndpoint::Send: from must match endpoint id");
  net_.Deliver(std::move(msg));
}

std::optional<Message> SimEndpoint::Receive() { return net_.Pop(id_); }

SimEndpoint* SimNet::AddEndpoint(std::uint32_t id) {
  auto [it, inserted] = boxes_.try_emplace(id);
  Require(inserted, "SimNet::AddEndpoint: duplicate endpoint id");
  it->second.endpoint = std::make_unique<SimEndpoint>(*this, id);
  return it->second.endpoint.get();
}

SimNet::Mailbox& SimNet::BoxFor(std::uint32_t id) {
  auto it = boxes_.find(id);
  Require(it != boxes_.end(), "SimNet: unknown endpoint");
  return it->second;
}

const SimNet::Mailbox& SimNet::BoxFor(std::uint32_t id) const {
  auto it = boxes_.find(id);
  Require(it != boxes_.end(), "SimNet: unknown endpoint");
  return it->second;
}

void SimNet::SetOffline(std::uint32_t id, bool offline) {
  Mailbox& box = BoxFor(id);
  box.offline = offline;
  // Both directions leave the mailbox empty: going offline loses in-flight
  // traffic with the dead host, and coming back online must never resume
  // from a stale queue (messages from before the crash would otherwise be
  // replayed into the rebooted host's fresh state).
  box.stats.msgs_dropped += box.queue.size();
  total_dropped_ += box.queue.size();
  box.queue.clear();
  if (offline && !staged_.empty()) {
    // Delayed messages already in flight toward the dead host die too.
    auto it = std::remove_if(staged_.begin(), staged_.end(),
                             [&](const StagedMessage& s) {
                               return s.msg.to == id || s.msg.from == id;
                             });
    const auto purged = static_cast<std::uint64_t>(staged_.end() - it);
    box.stats.msgs_dropped += purged;
    total_dropped_ += purged;
    staged_.erase(it, staged_.end());
  }
}

bool SimNet::IsOffline(std::uint32_t id) const { return BoxFor(id).offline; }

void SimNet::SetFaultPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  fault_rng_ = Rng(plan_.seed);
}

void SimNet::PartitionOff(std::span<const std::uint32_t> island) {
  island_.clear();
  island_.insert(island.begin(), island.end());
}

bool SimNet::CrossesPartition(std::uint32_t from, std::uint32_t to) const {
  if (island_.empty()) return false;
  return island_.count(from) != island_.count(to);
}

bool SimNet::Chance(double p) {
  // 53-bit uniform in [0, 1); drawn only for knobs with p > 0 so enabling
  // one fault type does not perturb the stream seen by another.
  const double u =
      static_cast<double>(fault_rng_.Next() >> 11) * 0x1.0p-53;
  return u < p;
}

const SimNet::EndpointStats& SimNet::StatsFor(std::uint32_t id) const {
  return BoxFor(id).stats;
}

bool SimNet::AnyPending() const {
  if (!staged_.empty()) return true;
  for (const auto& [id, box] : boxes_) {
    if (!box.queue.empty()) return true;
  }
  return false;
}

std::size_t SimNet::PendingFor(std::uint32_t id) const {
  return BoxFor(id).queue.size();
}

void SimNet::ResetStats() {
  for (auto& [id, box] : boxes_) box.stats = EndpointStats{};
  total_bytes_ = 0;
  total_msgs_ = 0;
  total_dropped_ = 0;
}

void SimNet::DropMessage(Mailbox& src) {
  src.stats.msgs_dropped += 1;
  total_dropped_ += 1;
}

void SimNet::Enqueue(Mailbox& src, Mailbox& dst, Message msg,
                     double reorder_prob) {
  dst.stats.msgs_received += 1;
  dst.stats.bytes_received += msg.WireSize();
  CountReceive(msg.type, msg.WireSize());
  if (tap_) tap_(msg);
  if (reorder_prob > 0 && !dst.queue.empty() && Chance(reorder_prob)) {
    src.stats.msgs_reordered += 1;
    const std::size_t pos = fault_rng_.Below(dst.queue.size());
    dst.queue.insert(dst.queue.begin() + static_cast<std::ptrdiff_t>(pos),
                     std::move(msg));
  } else {
    dst.queue.push_back(std::move(msg));
  }
}

void SimNet::Deliver(Message msg) {
  Mailbox& src = BoxFor(msg.from);
  if (src.offline) return;

  // Serialize/deserialize round-trip: wire size is real, and mutation acts on
  // exactly what a network adversary could see.
  const std::size_t wire = msg.WireSize();
  src.stats.msgs_sent += 1;
  src.stats.bytes_sent += wire;
  total_bytes_ += wire;
  total_msgs_ += 1;
  CountSend(msg.type, wire);
  obs::NetEvent("send", msg.from, msg.to, wire);

  // Crash-at-Nth-message: the host dies while sending; this message and
  // everything queued toward the host is lost. The trigger is one-shot so a
  // later reboot does not immediately re-fire it.
  auto crash = plan_.crash_after.find(msg.from);
  if (crash != plan_.crash_after.end() &&
      src.stats.msgs_sent >= crash->second) {
    plan_.crash_after.erase(crash);
    src.stats.crashes += 1;
    DropMessage(src);
    SetOffline(msg.from, true);
    return;
  }

  if (mutator_ && !mutator_(msg)) {  // dropped by fault injection
    DropMessage(src);
    return;
  }

  if (CrossesPartition(msg.from, msg.to)) {
    DropMessage(src);
    return;
  }

  const LinkFault& fault = plan_.For(msg.from, msg.to);
  if (fault.drop_prob > 0 && Chance(fault.drop_prob)) {
    DropMessage(src);
    return;
  }

  auto it = boxes_.find(msg.to);
  Require(it != boxes_.end(), "SimNet::Deliver: unknown destination");
  Mailbox& dst = it->second;
  if (dst.offline) {
    DropMessage(src);
    return;
  }

  std::uint32_t copies = 1;
  if (fault.dup_prob > 0 && Chance(fault.dup_prob)) {
    copies = 2;
    src.stats.msgs_duplicated += 1;
  }

  std::uint64_t delay = fault.delay_sweeps;
  if (fault.delay_jitter > 0) delay += fault_rng_.Below(fault.delay_jitter + 1);

  // Links are TCP-like (reliable, ordered): a message must not overtake an
  // earlier message still staged on the same link, so a delay holds up the
  // stream behind it. Without this, jitter silently reorders per-link
  // traffic, which an authenticated channel's replay protection converts
  // into systematic message loss. Deliberate reordering stays available via
  // reorder_prob.
  std::uint64_t release = sweep_ + delay;
  for (const auto& s : staged_) {
    if (s.msg.from == msg.from && s.msg.to == msg.to) {
      release = std::max(release, s.release_sweep);
    }
  }

  for (std::uint32_t c = 0; c < copies; ++c) {
    Message copy = (c + 1 == copies) ? std::move(msg) : msg;
    if (release > sweep_) {
      src.stats.msgs_delayed += 1;
      staged_.push_back(StagedMessage{release, std::move(copy)});
    } else {
      Enqueue(src, dst, std::move(copy), fault.reorder_prob);
    }
  }
}

void SimNet::AdvanceSweep() {
  ++sweep_;
  if (staged_.empty()) return;
  // Release matured messages in staging order (deterministic). Reordering is
  // already expressed by the delay itself, so matured messages append plainly.
  std::vector<StagedMessage> keep;
  keep.reserve(staged_.size());
  for (auto& s : staged_) {
    if (s.release_sweep > sweep_) {
      keep.push_back(std::move(s));
      continue;
    }
    auto it = boxes_.find(s.msg.to);
    if (it == boxes_.end() || it->second.offline) {
      Mailbox& src = BoxFor(s.msg.from);
      DropMessage(src);
      continue;
    }
    Enqueue(BoxFor(s.msg.from), it->second, std::move(s.msg),
            /*reorder_prob=*/0.0);
  }
  staged_.swap(keep);
}

std::optional<Message> SimNet::Pop(std::uint32_t id) {
  Mailbox& box = BoxFor(id);
  if (box.offline || box.queue.empty()) return std::nullopt;
  Message m = std::move(box.queue.front());
  box.queue.pop_front();
  obs::NetEvent("recv", m.from, id, m.WireSize());
  return m;
}

}  // namespace pisces::net
