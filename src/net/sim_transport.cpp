#include "net/sim_transport.h"

namespace pisces::net {

void SimEndpoint::Send(Message msg) {
  Require(msg.from == id_, "SimEndpoint::Send: from must match endpoint id");
  net_.Deliver(std::move(msg));
}

std::optional<Message> SimEndpoint::Receive() { return net_.Pop(id_); }

SimEndpoint* SimNet::AddEndpoint(std::uint32_t id) {
  auto [it, inserted] = boxes_.try_emplace(id);
  Require(inserted, "SimNet::AddEndpoint: duplicate endpoint id");
  it->second.endpoint = std::make_unique<SimEndpoint>(*this, id);
  return it->second.endpoint.get();
}

SimNet::Mailbox& SimNet::BoxFor(std::uint32_t id) {
  auto it = boxes_.find(id);
  Require(it != boxes_.end(), "SimNet: unknown endpoint");
  return it->second;
}

const SimNet::Mailbox& SimNet::BoxFor(std::uint32_t id) const {
  auto it = boxes_.find(id);
  Require(it != boxes_.end(), "SimNet: unknown endpoint");
  return it->second;
}

void SimNet::SetOffline(std::uint32_t id, bool offline) {
  Mailbox& box = BoxFor(id);
  box.offline = offline;
  if (offline) box.queue.clear();  // in-flight traffic to a dead host is lost
}

bool SimNet::IsOffline(std::uint32_t id) const { return BoxFor(id).offline; }

const SimNet::EndpointStats& SimNet::StatsFor(std::uint32_t id) const {
  return BoxFor(id).stats;
}

bool SimNet::AnyPending() const {
  for (const auto& [id, box] : boxes_) {
    if (!box.queue.empty()) return true;
  }
  return false;
}

std::size_t SimNet::PendingFor(std::uint32_t id) const {
  return BoxFor(id).queue.size();
}

void SimNet::ResetStats() {
  for (auto& [id, box] : boxes_) box.stats = EndpointStats{};
  total_bytes_ = 0;
  total_msgs_ = 0;
}

void SimNet::Deliver(Message msg) {
  Mailbox& src = BoxFor(msg.from);
  if (src.offline) return;

  // Serialize/deserialize round-trip: wire size is real, and mutation acts on
  // exactly what a network adversary could see.
  const std::size_t wire = msg.WireSize();
  src.stats.msgs_sent += 1;
  src.stats.bytes_sent += wire;
  total_bytes_ += wire;
  total_msgs_ += 1;

  if (mutator_ && !mutator_(msg)) return;  // dropped by fault injection

  auto it = boxes_.find(msg.to);
  Require(it != boxes_.end(), "SimNet::Deliver: unknown destination");
  Mailbox& dst = it->second;
  if (dst.offline) return;
  dst.stats.msgs_received += 1;
  dst.stats.bytes_received += msg.WireSize();
  if (tap_) tap_(msg);
  dst.queue.push_back(std::move(msg));
}

std::optional<Message> SimNet::Pop(std::uint32_t id) {
  Mailbox& box = BoxFor(id);
  if (box.offline || box.queue.empty()) return std::nullopt;
  Message m = std::move(box.queue.front());
  box.queue.pop_front();
  return m;
}

}  // namespace pisces::net
