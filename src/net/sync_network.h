// Synchrony layer over the deterministic fabric.
//
// The paper (SectionIII-C.2, following Katz-Maurer-Tackmann-Zikas) simulates a
// synchronous network over point-to-point links using loosely synchronized
// clocks and bounded message delay. In the simulator that assumption
// materializes as sweep-based delivery: messages sent during sweep k are
// handled in sweep k+1, and a protocol that would take R communication rounds
// completes in R sweeps. Sweep counts therefore feed the latency component of
// modeled wire time, and quiescence-without-completion is exactly the
// bounded-delay timeout that flags unresponsive hosts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/sim_transport.h"

namespace pisces::net {

// Anything that consumes messages (hosts, the client, the hypervisor).
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

class SyncNetwork {
 public:
  explicit SyncNetwork(SimNet& net) : net_(net) {}

  void Register(std::uint32_t id, Transport* transport,
                MessageHandler* handler);
  void Unregister(std::uint32_t id);

  struct PumpResult {
    std::uint64_t deliveries = 0;
    // Number of delivery sweeps =~ synchronous communication rounds.
    std::uint64_t sweeps = 0;
  };

  // Delivers messages in sweeps until no endpoint has pending traffic.
  // Throws InternalError if max_sweeps is exceeded (a livelocked protocol is
  // a bug, not a condition to limp through).
  PumpResult RunToQuiescence(std::uint64_t max_sweeps = 1'000'000);

  std::uint64_t total_sweeps() const { return total_sweeps_; }

 private:
  struct Entry {
    Transport* transport = nullptr;
    MessageHandler* handler = nullptr;
  };

  SimNet& net_;
  std::vector<std::uint32_t> order_;  // registration order, deterministic
  std::unordered_map<std::uint32_t, Entry> entries_;
  std::uint64_t total_sweeps_ = 0;
};

}  // namespace pisces::net
