// Transport abstraction: a reliable point-to-point channel fabric, the
// paper's SectionIV-B network stack. Two implementations exist:
//
//  * SimTransport -- deterministic in-process fabric used by tests and by the
//    experiment harness (it meters every byte);
//  * TcpTransport -- real loopback TCP sockets, used by the distributed
//    example to show the same host code running over an actual network.
#pragma once

#include <optional>

#include "net/message.h"

namespace pisces::net {

class Transport {
 public:
  virtual ~Transport() = default;

  // Enqueues a message for delivery. Reliable and order-preserving per link
  // (the paper assumes TCP). `msg.from` must be this endpoint's id.
  virtual void Send(Message msg) = 0;

  // Next message addressed to this endpoint, or nullopt when none is
  // currently available.
  virtual std::optional<Message> Receive() = 0;

  virtual std::uint32_t id() const = 0;
};

// Simple latency/bandwidth model used to convert metered bytes and protocol
// rounds into modeled wire time (the paper's "sending" time component).
// Defaults follow SectionIV-B: intra-cloud links near the Internet backbone,
// 1 ms one-way latency, 1 Gbps, 1 s bounded-delay timeout.
struct NetworkModel {
  double latency_s = 0.001;
  double bandwidth_bytes_per_s = 125e6;  // 1 Gbps
  double timeout_s = 1.0;

  double TransferTime(std::uint64_t bytes, std::uint64_t rounds) const {
    return static_cast<double>(rounds) * latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

}  // namespace pisces::net
