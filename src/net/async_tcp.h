// Production-shaped asynchronous TCP transport: one epoll reactor thread per
// endpoint, non-blocking length-framed I/O, bounded queues with end-to-end
// backpressure, and per-peer connection supervision.
//
// This is the deployment-plane counterpart of the synchronous loopback
// TcpEndpoint (kept for the legacy example) and of the deterministic
// SimEndpoint (kept as the testing substrate). All three pass the same
// transport-conformance suite; the async endpoint is what pisces_hostd and
// the multiprocess coordinator run on (docs/deployment.md).
//
// Wire format: every frame is a 4-byte little-endian length prefix followed
// by `length` bytes. length >= kWireHeaderSize frames a serialized Message;
// length == kHeartbeatFrameLen frames a heartbeat carrying the sender id;
// anything else is a protocol violation and closes the connection. The
// length prefix is validated against kMaxFrameBytes BEFORE any allocation.
//
// Supervision model (the paper's bounded-delay synchrony, SectionIII-C.2):
//  * every peer that has ever exchanged traffic is supervised: the endpoint
//    heartbeats it each interval and tracks when it was last heard from;
//  * a connect failure or mid-stream disconnect schedules a reconnect with
//    exponential backoff plus seeded jitter (1 ms doubling to a 1 s cap);
//    queued frames survive the reconnect, cut-off partial frames are
//    retransmitted from the frame boundary;
//  * a peer silent past miss_limit heartbeat intervals counts a heartbeat
//    miss and forces a reconnect cycle (half-open connections die here);
//  * per-RPC deadlines live one layer up: callers bound each protocol wait
//    with ReceiveWait(timeout) and count expiries as net.deadline_expiries.
//
// Backpressure (stall, never unbounded-buffer):
//  * per-peer send queues are capped; Send() blocks (a counted stall) while
//    its peer's queue is full, and drops the frame (counted) only after the
//    stall budget expires -- message loss is something every protocol layer
//    already tolerates, an unbounded queue is not;
//  * the receive queue is capped too: past the cap the reactor stops reading
//    (EPOLLIN off), TCP flow control propagates the stall to the sender, and
//    reading resumes once the application drains below the low-water mark.
//
// A peer dying mid-write surfaces as EPIPE/ECONNRESET on the reactor thread
// and is handled as a reconnect; SIGPIPE is ignored process-wide
// (common/socket_util.h) and every blocking syscall retries EINTR.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/event_loop.h"
#include "common/rng.h"
#include "net/transport.h"

namespace pisces::net {

// Heartbeat frames carry exactly the 4-byte sender id.
inline constexpr std::uint32_t kHeartbeatFrameLen = 4;

struct AsyncTcpOptions {
  std::uint32_t id = 0;
  std::uint16_t listen_port = 0;
  std::uint64_t seed = 1;  // reconnect jitter stream
  std::uint64_t heartbeat_interval_ms = 250;
  std::uint32_t heartbeat_miss_limit = 8;
  std::size_t send_queue_cap_bytes = 32u << 20;  // per peer
  std::size_t recv_queue_cap_bytes = 64u << 20;  // whole endpoint
  std::uint64_t backpressure_stall_ms = 10'000;  // Send() stall budget
  std::uint64_t backoff_min_ms = 1;
  std::uint64_t backoff_max_ms = 1'000;
};

class AsyncTcpEndpoint : public Transport {
 public:
  explicit AsyncTcpEndpoint(AsyncTcpOptions opts);
  ~AsyncTcpEndpoint() override;

  AsyncTcpEndpoint(const AsyncTcpEndpoint&) = delete;
  AsyncTcpEndpoint& operator=(const AsyncTcpEndpoint&) = delete;

  // Registers where a peer listens. Must happen before sending to that peer.
  void AddPeer(std::uint32_t peer_id, std::uint16_t port);

  // Thread-safe. Never throws for an unreachable peer: frames queue across
  // reconnects and are dropped (counted) only past the backpressure budget,
  // mirroring the loss semantics every protocol layer already handles.
  void Send(Message msg) override;
  std::optional<Message> Receive() override;
  // Blocks up to timeout_ms for a message (the paper's bounded-delay wait).
  // Does NOT count a deadline expiry -- idle polling is not a missed RPC;
  // callers waiting on a specific response count expiries themselves.
  std::optional<Message> ReceiveWait(int timeout_ms);
  std::uint32_t id() const override { return opts_.id; }

  // Whether `peer` was heard from (message or heartbeat) within the
  // supervision window. Unknown peers are unhealthy.
  bool PeerHealthy(std::uint32_t peer_id) const;

  struct PeerStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t frames_dropped = 0;
  };
  PeerStats StatsFor(std::uint32_t peer_id) const;

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t heartbeat_misses() const { return heartbeat_misses_; }
  std::uint64_t backpressure_stalls() const { return backpressure_stalls_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Peer {
    std::uint16_t port = 0;
    int fd = -1;  // outbound connection (send side)
    enum class State { kDown, kConnecting, kConnected } state = State::kDown;
    std::deque<Bytes> queue;  // framed bytes awaiting write
    std::size_t queue_bytes = 0;
    std::size_t write_off = 0;  // progress into queue.front()
    bool supervised = false;
    bool ever_connected = false;
    std::uint64_t backoff_ms = 0;
    std::uint64_t retry_timer = 0;  // nonzero while a reconnect is scheduled
    std::uint64_t last_heard_ms = 0;
    std::uint64_t last_miss_mark_ms = 0;
    PeerStats stats;
  };

  struct Inbound {
    int fd = -1;
    Bytes buf;  // unparsed stream bytes
  };

  // --- reactor-thread only ---
  void LoopMain();
  void OnListenReady();
  void OnInboundReady(int fd, std::uint32_t events);
  void CloseInbound(int fd);
  void ParseInbound(Inbound& in);
  void StartConnect(std::uint32_t peer_id);
  void OnOutboundReady(std::uint32_t peer_id, std::uint32_t events);
  void DrainSendQueue(std::uint32_t peer_id);
  void CloseOutbound(std::uint32_t peer_id, bool reschedule);
  void ScheduleReconnect(std::uint32_t peer_id);
  void HeartbeatTick();
  void UpdateReadInterest();

  // --- shared helpers ---
  void EnqueueLocked(Peer& p, Bytes frame);  // caller holds mutex_
  Peer& TouchPeerLocked(std::uint32_t peer_id);
  std::uint64_t NowMs() const;

  AsyncTcpOptions opts_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;  // guards peers_ map contents + recv queue
  std::condition_variable send_cv_;  // backpressure stall/resume
  std::map<std::uint32_t, Peer> peers_;

  std::condition_variable recv_cv_;
  std::deque<Message> recv_queue_;
  std::size_t recv_queue_bytes_ = 0;
  bool reading_paused_ = false;

  // Reactor-owned: live inbound connections and the jitter stream.
  std::unordered_map<int, Inbound> inbound_;
  Rng jitter_rng_;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> heartbeat_misses_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
};

}  // namespace pisces::net
