// Per-message-type wire-byte counters in the obs registry.
//
// net.bytes_sent / net.bytes_received used to exist only as span instant
// events (obs::NetEvent), so reconciling bytes-on-the-wire required tracing
// to be enabled. These counters make wire bytes a first-class, always-on
// metric: every transport (SimNet, TcpEndpoint, AsyncTcpEndpoint) accounts
// each message under both the aggregate counter and a per-MsgType counter
// ("net.bytes_sent.ShareResponse", ...), so BENCH_comm.json and the CSV can
// attribute traffic to protocol phases from a plain snapshot delta.
//
// Counter references are resolved once per (direction, type) into a static
// table -- a delivery costs two relaxed atomic adds, nothing else.
#pragma once

#include "net/message.h"
#include "obs/registry.h"

namespace pisces::net {

// Aggregate counters across all message types.
obs::Counter& BytesSentTotal();
obs::Counter& BytesReceivedTotal();

// Per-type counters, e.g. net.bytes_sent.MaskedShare. `type` must be a
// valid MsgType (callers hold a parsed Message, so this is structural).
obs::Counter& BytesSentCounter(MsgType type);
obs::Counter& BytesReceivedCounter(MsgType type);

// One send/receive accounting step: aggregate + per-type bump of `wire`
// bytes. The single entry point every transport calls.
void CountSend(MsgType type, std::size_t wire);
void CountReceive(MsgType type, std::size_t wire);

}  // namespace pisces::net
