#include "net/net_obs.h"

#include <array>

namespace pisces::net {

namespace {

constexpr std::size_t kTypes = static_cast<std::size_t>(kMaxMsgType) + 1;

std::array<obs::Counter*, kTypes> BuildTable(const char* direction) {
  std::array<obs::Counter*, kTypes> table{};
  for (std::size_t i = 0; i < kTypes; ++i) {
    const MsgType t = static_cast<MsgType>(i);
    table[i] = &obs::RegisterCounter(
        std::string("net.") + direction + "." + MsgTypeName(t),
        std::string("wire bytes (header + payload) of ") + MsgTypeName(t) +
            " messages, " + direction + " direction");
  }
  return table;
}

}  // namespace

obs::Counter& BytesSentTotal() {
  static obs::Counter& c = obs::RegisterCounter(
      "net.bytes_sent", "wire bytes sent across all transports");
  return c;
}

obs::Counter& BytesReceivedTotal() {
  static obs::Counter& c = obs::RegisterCounter(
      "net.bytes_received", "wire bytes received across all transports");
  return c;
}

obs::Counter& BytesSentCounter(MsgType type) {
  static std::array<obs::Counter*, kTypes> table = BuildTable("bytes_sent");
  return *table[static_cast<std::size_t>(type)];
}

obs::Counter& BytesReceivedCounter(MsgType type) {
  static std::array<obs::Counter*, kTypes> table = BuildTable("bytes_received");
  return *table[static_cast<std::size_t>(type)];
}

void CountSend(MsgType type, std::size_t wire) {
  BytesSentTotal().Add(wire);
  BytesSentCounter(type).Add(wire);
}

void CountReceive(MsgType type, std::size_t wire) {
  BytesReceivedTotal().Add(wire);
  BytesReceivedCounter(type).Add(wire);
}

}  // namespace pisces::net
