#include "net/message.h"

#include <sstream>

namespace pisces::net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kSetShares: return "SetShares";
    case MsgType::kReconstructRequest: return "ReconstructRequest";
    case MsgType::kShareResponse: return "ShareResponse";
    case MsgType::kStartRefresh: return "StartRefresh";
    case MsgType::kStartRecovery: return "StartRecovery";
    case MsgType::kHostCert: return "HostCert";
    case MsgType::kDeleteFile: return "DeleteFile";
    case MsgType::kDeal: return "Deal";
    case MsgType::kCheckShare: return "CheckShare";
    case MsgType::kVerdict: return "Verdict";
    case MsgType::kMaskedShare: return "MaskedShare";
    case MsgType::kPhaseDone: return "PhaseDone";
    case MsgType::kBootHost: return "BootHost";
    case MsgType::kHaltHost: return "HaltHost";
    case MsgType::kStatusRequest: return "StatusRequest";
    case MsgType::kStatusReport: return "StatusReport";
    case MsgType::kAbortStuck: return "AbortStuck";
    case MsgType::kServingRequest: return "ServingRequest";
    case MsgType::kServingResponse: return "ServingResponse";
  }
  return "Unknown";
}

Bytes Message::Serialize() const {
  Require(payload.size() <= kMaxPayload, "Message: payload exceeds wire cap");
  ByteWriter w;
  w.U32(from);
  w.U32(to);
  w.U8(static_cast<std::uint8_t>(type));
  w.U64(file_id);
  w.U32(epoch);
  w.U32(batch);
  w.U32(row);
  w.Blob(payload);
  return w.Take();
}

Message Message::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Message m;
  m.from = r.U32();
  m.to = r.U32();
  auto raw_type = r.U8();
  if (raw_type > kMaxMsgType) {
    throw ParseError("Message: unknown type");
  }
  m.type = static_cast<MsgType>(raw_type);
  m.file_id = r.U64();
  m.epoch = r.U32();
  m.batch = r.U32();
  m.row = r.U32();
  // Inlined Blob() so a lying length field fails the cap check explicitly
  // (not just by underflow against however many bytes happen to follow).
  const std::uint32_t plen = r.U32();
  if (plen > kMaxPayload) throw ParseError("Message: payload exceeds wire cap");
  auto p = r.Raw(plen);
  m.payload.assign(p.begin(), p.end());
  if (!r.AtEnd()) throw ParseError("Message: trailing bytes");
  return m;
}

std::size_t Message::WireSize() const {
  return kWireHeaderSize + payload.size();
}

std::string Message::Describe() const {
  std::ostringstream out;
  out << MsgTypeName(type) << " " << from << "->" << to << " file=" << file_id
      << " epoch=" << epoch << " batch=" << batch << " row=" << row
      << " payload=" << payload.size() << "B";
  return out.str();
}

}  // namespace pisces::net
