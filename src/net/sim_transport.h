// Deterministic in-process network fabric.
//
// SimNet owns one mailbox per endpoint. Send() serializes the message (so
// wire size is the real wire size), meters it, applies fault injection, and
// appends to the destination mailbox; delivery order is deterministic given
// deterministic send order, which keeps every experiment reproducible.
//
// Fault injection models the paper's failure assumptions and beyond:
//  * an offline host (crashed or mid-reboot) drops all traffic. In-flight
//    traffic addressed to a host going offline is lost with it (the bytes
//    were on the dead machine's NIC), and a host coming back online always
//    starts from a clean mailbox -- both directions of that asymmetry are
//    deliberate and regression-tested;
//  * a message mutator models a corrupt-but-active host for the VSS
//    verification tests (the paper's adversary is passive; active corruption
//    here exists to exercise the verification machinery);
//  * a seeded FaultPlan adds per-link drop/duplicate/reorder probabilities,
//    fixed+jittered delivery delay measured in synchrony sweeps, crash-at-
//    Nth-message triggers, and network partitions. Every probabilistic
//    decision is drawn from one deterministic stream in delivery order, so a
//    fixed seed reproduces the identical fault trace.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"

namespace pisces::net {

class SimNet;

class SimEndpoint : public Transport {
 public:
  SimEndpoint(SimNet& net, std::uint32_t id) : net_(net), id_(id) {}

  void Send(Message msg) override;
  std::optional<Message> Receive() override;
  std::uint32_t id() const override { return id_; }

 private:
  SimNet& net_;
  std::uint32_t id_;
};

// Fault knobs for one directed link.
struct LinkFault {
  double drop_prob = 0.0;     // message silently lost
  double dup_prob = 0.0;      // message delivered twice
  double reorder_prob = 0.0;  // message inserted ahead of queued traffic
  std::uint32_t delay_sweeps = 0;  // fixed delivery delay (synchrony sweeps)
  std::uint32_t delay_jitter = 0;  // extra uniform delay in [0, jitter]

  bool Active() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           delay_sweeps > 0 || delay_jitter > 0;
  }
};

// A complete, seeded fault schedule. `all_links` applies to every directed
// link unless overridden in `links`; `crash_after[id] = N` takes endpoint id
// offline the moment it sends its Nth message (the message dies with it).
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFault all_links;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFault> links;
  std::map<std::uint32_t, std::uint64_t> crash_after;

  const LinkFault& For(std::uint32_t from, std::uint32_t to) const {
    auto it = links.find({from, to});
    return it == links.end() ? all_links : it->second;
  }
};

class SimNet {
 public:
  struct EndpointStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_received = 0;
    // Fault counters. Drops/dups/delays are attributed to the sender (the
    // owner of the faulty link) except mailbox purges on SetOffline, which
    // are charged to the endpoint that went offline.
    std::uint64_t msgs_dropped = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_delayed = 0;
    std::uint64_t msgs_reordered = 0;
    std::uint64_t crashes = 0;  // crash-at-N triggers fired
  };

  // Creates an endpoint; ids may be arbitrary (host ids, kClientId, ...).
  // The returned object is owned by the net.
  SimEndpoint* AddEndpoint(std::uint32_t id);

  // --- fault injection ---
  // An offline endpoint silently loses everything sent to or from it,
  // including messages already queued or staged toward it (in-flight traffic
  // to a dead host is lost). Coming back online starts from a clean mailbox.
  void SetOffline(std::uint32_t id, bool offline);
  bool IsOffline(std::uint32_t id) const;
  // Mutator applied to every in-flight message; return false to drop it.
  using Mutator = std::function<bool(Message&)>;
  void SetMutator(Mutator mutator) { mutator_ = std::move(mutator); }
  // Installs a seeded fault schedule (replacing any previous one) and resets
  // the fault randomness stream to plan.seed.
  void SetFaultPlan(FaultPlan plan);
  void ClearFaults() { SetFaultPlan(FaultPlan{}); }
  const FaultPlan& fault_plan() const { return plan_; }
  // Partitions `island` away from every other endpoint: messages crossing
  // the boundary (either direction) are dropped until ClearPartition().
  void PartitionOff(std::span<const std::uint32_t> island);
  void ClearPartition() { island_.clear(); }
  bool PartitionActive() const { return !island_.empty(); }

  // --- sweep clock (delayed delivery) ---
  // Advances the delivery clock one synchrony sweep and releases matured
  // delayed messages into their mailboxes. SyncNetwork calls this once per
  // sweep; tests driving SimNet directly call it by hand.
  void AdvanceSweep();
  std::uint64_t sweep() const { return sweep_; }

  // --- observation ---
  const EndpointStats& StatsFor(std::uint32_t id) const;
  std::uint64_t TotalBytes() const { return total_bytes_; }
  std::uint64_t TotalMessages() const { return total_msgs_; }
  std::uint64_t TotalDropped() const { return total_dropped_; }
  bool AnyPending() const;
  std::size_t PendingFor(std::uint32_t id) const;
  std::size_t StagedCount() const { return staged_.size(); }
  void ResetStats();

  // Wiretap for the adversary simulator: invoked on every delivered message
  // (the paper's adversary sees traffic of corrupted hosts only; the
  // adversary module applies that filter).
  using Tap = std::function<void(const Message&)>;
  void SetTap(Tap tap) { tap_ = std::move(tap); }

 private:
  friend class SimEndpoint;
  void Deliver(Message msg);
  std::optional<Message> Pop(std::uint32_t id);

  struct Mailbox {
    std::unique_ptr<SimEndpoint> endpoint;
    std::deque<Message> queue;
    EndpointStats stats;
    bool offline = false;
  };

  struct StagedMessage {
    std::uint64_t release_sweep;
    Message msg;
  };

  Mailbox& BoxFor(std::uint32_t id);
  const Mailbox& BoxFor(std::uint32_t id) const;
  bool Chance(double p);
  bool CrossesPartition(std::uint32_t from, std::uint32_t to) const;
  void DropMessage(Mailbox& src);
  void Enqueue(Mailbox& src, Mailbox& dst, Message msg, double reorder_prob);

  std::unordered_map<std::uint32_t, Mailbox> boxes_;
  Mutator mutator_;
  Tap tap_;
  FaultPlan plan_;
  Rng fault_rng_{1};
  std::set<std::uint32_t> island_;
  std::vector<StagedMessage> staged_;
  std::uint64_t sweep_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_msgs_ = 0;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace pisces::net
