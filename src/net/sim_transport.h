// Deterministic in-process network fabric.
//
// SimNet owns one mailbox per endpoint. Send() serializes the message (so
// wire size is the real wire size), meters it, applies fault injection, and
// appends to the destination mailbox; delivery order is deterministic given
// deterministic send order, which keeps every experiment reproducible.
//
// Fault injection knobs model the paper's failure assumptions: an offline
// host (crashed or mid-reboot) drops all traffic; a message mutator models a
// corrupt-but-active host for the VSS verification tests. The adversary in
// the paper is passive (honest-but-curious); active corruption here exists to
// exercise the verification machinery.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace pisces::net {

class SimNet;

class SimEndpoint : public Transport {
 public:
  SimEndpoint(SimNet& net, std::uint32_t id) : net_(net), id_(id) {}

  void Send(Message msg) override;
  std::optional<Message> Receive() override;
  std::uint32_t id() const override { return id_; }

 private:
  SimNet& net_;
  std::uint32_t id_;
};

class SimNet {
 public:
  struct EndpointStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_received = 0;
  };

  // Creates an endpoint; ids may be arbitrary (host ids, kClientId, ...).
  // The returned object is owned by the net.
  SimEndpoint* AddEndpoint(std::uint32_t id);

  // --- fault injection ---
  // An offline endpoint silently loses everything sent to or from it.
  void SetOffline(std::uint32_t id, bool offline);
  bool IsOffline(std::uint32_t id) const;
  // Mutator applied to every in-flight message; return false to drop it.
  using Mutator = std::function<bool(Message&)>;
  void SetMutator(Mutator mutator) { mutator_ = std::move(mutator); }

  // --- observation ---
  const EndpointStats& StatsFor(std::uint32_t id) const;
  std::uint64_t TotalBytes() const { return total_bytes_; }
  std::uint64_t TotalMessages() const { return total_msgs_; }
  bool AnyPending() const;
  std::size_t PendingFor(std::uint32_t id) const;
  void ResetStats();

  // Wiretap for the adversary simulator: invoked on every delivered message
  // (the paper's adversary sees traffic of corrupted hosts only; the
  // adversary module applies that filter).
  using Tap = std::function<void(const Message&)>;
  void SetTap(Tap tap) { tap_ = std::move(tap); }

 private:
  friend class SimEndpoint;
  void Deliver(Message msg);
  std::optional<Message> Pop(std::uint32_t id);

  struct Mailbox {
    std::unique_ptr<SimEndpoint> endpoint;
    std::deque<Message> queue;
    EndpointStats stats;
    bool offline = false;
  };

  Mailbox& BoxFor(std::uint32_t id);
  const Mailbox& BoxFor(std::uint32_t id) const;

  std::unordered_map<std::uint32_t, Mailbox> boxes_;
  Mutator mutator_;
  Tap tap_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_msgs_ = 0;
};

}  // namespace pisces::net
