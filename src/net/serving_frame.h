// Multiplexed serving-plane request framing.
//
// The serving plane carries many logical client sessions over one physical
// connection: every request/response is a ServingFrame travelling as the
// payload of a kServingRequest / kServingResponse net::Message. The frame
// header names the session, the per-session request ordinal, and the shard
// the sender routed the file to, so a gateway can demultiplex thousands of
// concurrent uploads/downloads arriving on a single persistent endpoint and
// fan them out to independent PSS groups without re-hashing every file id
// (the routing header is validated, never trusted blindly).
//
// Parsing follows the wire-hardening discipline of net/message.h: every
// length field is validated against a hard cap BEFORE any allocation, a
// frame must consume its buffer exactly (no trailing bytes), and unknown
// opcodes or status codes are a ParseError, never a silent default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/message.h"

namespace pisces::net {

// Client-visible operations a serving request can carry.
enum class ServingOp : std::uint8_t {
  kUpload = 0,    // payload = file bytes
  kDownload,      // payload empty; response payload = file bytes
  kDelete,        // payload empty
  kPing,          // liveness / session keep-open; payload echoed back
  kCloseSession,  // explicit end of the logical session
};
inline constexpr std::uint8_t kMaxServingOp =
    static_cast<std::uint8_t>(ServingOp::kCloseSession);

// Outcome of a serving request: the unified status vocabulary of
// common/status.h. Only codes up through kFailed are legal on the wire --
// exactly the byte values the pre-unification ServingStatus enum carried, so
// golden vectors and fuzzer reject paths are unchanged. Names come from
// pisces::StatusName.
using ServingStatus = ::pisces::StatusCode;
inline constexpr std::uint8_t kMaxServingStatus = ::pisces::kMaxWireStatus;

const char* ServingOpName(ServingOp op);

// Upper bound on the file payload carried inside one serving frame. The
// frame itself must fit a net::Message payload, so the cap leaves headroom
// for the fixed frame header inside kMaxPayload.
inline constexpr std::size_t kMaxServingPayload = kMaxPayload - 64;

// Fixed header bytes preceding the length-prefixed payload of a request:
// session(8) + request(8) + epoch(8) + shard(4) + op(1) + file_id(8) +
// len(4). The epoch sits between the ordinal and the routing header so the
// whole "which fleet shape am I talking to" block (epoch + shard) is
// contiguous on the wire; the layout is frozen by an exact-bytes test.
inline constexpr std::size_t kServingRequestHeaderSize =
    8 + 8 + 8 + 4 + 1 + 8 + 4;
// Response: session(8) + request(8) + status(1) + retry_after_ms(4) + len(4).
inline constexpr std::size_t kServingResponseHeaderSize = 8 + 8 + 1 + 4 + 4;

struct ServingRequestFrame {
  std::uint64_t session = 0;  // logical session id (multiplexing key)
  std::uint64_t request = 0;  // per-session ordinal, strictly increasing
  // Routing-map version the sender routed under. 0 means "unversioned":
  // a legacy client that has never seen a map; the plane accepts it and
  // validates only the shard header. Any non-zero value must equal the
  // plane's current epoch or the request is refused with kBadRoute (and the
  // response carries the current RoutingMap so the client can re-route).
  std::uint64_t epoch = 0;
  std::uint32_t shard = 0;  // routing header: ShardRouter::ShardOf(file)
  ServingOp op = ServingOp::kPing;
  std::uint64_t file_id = 0;
  Bytes payload;

  Bytes Serialize() const;
  static ServingRequestFrame Deserialize(std::span<const std::uint8_t> data);
  std::string Describe() const;
};

struct ServingResponseFrame {
  std::uint64_t session = 0;
  std::uint64_t request = 0;
  ServingStatus status = ServingStatus::kOk;
  // Backpressure hint: when status == kRejected, the client should hold off
  // at least this long before re-offering load (0 otherwise).
  std::uint32_t retry_after_ms = 0;
  Bytes payload;

  Bytes Serialize() const;
  static ServingResponseFrame Deserialize(std::span<const std::uint8_t> data);
  std::string Describe() const;
};

// Hard cap on the shard count a routing map may announce; checked before any
// allocation when parsing, like every other length field on the wire.
inline constexpr std::uint32_t kMaxRoutingShards = 4096;

// Per-shard entry of a RoutingMap: the group shape serving that shard.
struct RoutingShard {
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  // 1 while the shard is mid-migration (drained, not yet cut over); clients
  // should expect kRejected backpressure. Any wire value other than 0/1 is a
  // ParseError -- the spare byte is not an extension point.
  std::uint8_t migrating = 0;
};

// Versioned routing map pushed to clients inside kBadRoute responses (and
// fetchable out of band). The epoch is monotone: a map with a lower epoch
// than one already adopted must be discarded by the client (rollback).
//
// Wire layout (frozen): epoch(8) + shard_count(4) + shard_count x
// { n(4) + t(4) + migrating(1) }, exact consume.
struct RoutingMap {
  std::uint64_t epoch = 0;
  std::vector<RoutingShard> shards;

  Bytes Serialize() const;
  static RoutingMap Deserialize(std::span<const std::uint8_t> data);
  std::string Describe() const;
};

inline constexpr std::size_t kRoutingMapHeaderSize = 8 + 4;
inline constexpr std::size_t kRoutingShardSize = 4 + 4 + 1;

}  // namespace pisces::net
