#include "net/sync_network.h"

#include <algorithm>

namespace pisces::net {

void SyncNetwork::Register(std::uint32_t id, Transport* transport,
                           MessageHandler* handler) {
  Require(transport != nullptr && handler != nullptr,
          "SyncNetwork::Register: null transport/handler");
  Require(entries_.find(id) == entries_.end(),
          "SyncNetwork::Register: duplicate id");
  entries_[id] = Entry{transport, handler};
  order_.push_back(id);
}

void SyncNetwork::Unregister(std::uint32_t id) {
  entries_.erase(id);
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
}

SyncNetwork::PumpResult SyncNetwork::RunToQuiescence(std::uint64_t max_sweeps) {
  PumpResult result;
  while (net_.AnyPending()) {
    Invariant(result.sweeps < max_sweeps,
              "SyncNetwork: exceeded max sweeps (livelock?)");
    ++result.sweeps;
    // Advance the fabric's delivery clock: fault-delayed messages staged for
    // this sweep mature into their mailboxes before endpoints drain.
    net_.AdvanceSweep();
    // One sweep: every endpoint drains the messages that were pending at the
    // start of its turn. Messages sent during the sweep land next sweep (or
    // later this sweep for later-ordered endpoints; either way the sweep
    // count lower-bounds real synchronous rounds).
    // Iterate over a snapshot: handlers may (un)register endpoints while
    // processing (e.g. a host rebooting).
    const std::vector<std::uint32_t> ids = order_;
    for (std::uint32_t id : ids) {
      if (entries_.find(id) == entries_.end()) continue;
      std::size_t pending = net_.PendingFor(id);
      for (std::size_t i = 0; i < pending; ++i) {
        auto it = entries_.find(id);
        if (it == entries_.end()) break;
        auto msg = it->second.transport->Receive();
        if (!msg) break;
        ++result.deliveries;
        it->second.handler->HandleMessage(*msg);
      }
    }
  }
  total_sweeps_ += result.sweeps;
  return result;
}

}  // namespace pisces::net
