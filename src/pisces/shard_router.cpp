#include "pisces/shard_router.h"

#include "common/error.h"

namespace pisces {

namespace {
// splitmix64 finalizer (same mix the trace ids use): full-avalanche, so file
// ids that differ in one bit land on unrelated shards.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

ShardRouter::ShardRouter(std::uint32_t shard_count) : shards_(shard_count) {
  Require(shard_count > 0, "ShardRouter: shard_count must be positive");
}

std::uint32_t ShardRouter::ShardOf(std::uint64_t file_id) const {
  return Route(file_id, shards_);
}

std::uint32_t ShardRouter::Route(std::uint64_t file_id,
                                 std::uint32_t shard_count) {
  Require(shard_count > 0, "ShardRouter: shard_count must be positive");
  return static_cast<std::uint32_t>(Mix(file_id) % shard_count);
}

}  // namespace pisces
