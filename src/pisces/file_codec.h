// File <-> field-element codec (paper SectionVI-E "Lifecycle of Stored Data
// and Files", step 1: "a user divides the file into blocks to be converted to
// packed shares").
//
// Layout: an 8-byte little-endian length header, the file bytes, then zero
// padding up to a whole number of field elements; each element carries
// payload_bytes() = floor((g-1)/8) bytes so the chunk value is always below
// the modulus. Elements are grouped into blocks of l (the packing parameter);
// the last block is padded with zero elements. The codec also carries a
// SHA-256 checksum so the client can verify end-to-end integrity after
// reconstruction.
//
// The padding accounting here is what drives the paper's observation that
// per-byte cost *decreases* slightly with file size (SectionVII-B).
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "field/fp.h"

namespace pisces {

struct FileMeta {
  std::uint64_t file_id = 0;
  std::uint64_t raw_size = 0;    // original byte length
  std::uint64_t num_elems = 0;   // field elements after chunking
  std::uint64_t num_blocks = 0;  // ceil(num_elems / l)
  crypto::Digest checksum{};     // SHA-256 of the original bytes

  Bytes Serialize() const;
  static FileMeta Deserialize(std::span<const std::uint8_t> data);
};

class FileCodec {
 public:
  FileCodec(const field::FpCtx& ctx, std::size_t packing)
      : ctx_(&ctx), l_(packing) {}

  // Number of elements/blocks a file of `size` bytes occupies.
  std::uint64_t ElemsFor(std::uint64_t size) const;
  std::uint64_t BlocksFor(std::uint64_t size) const;
  // Padding overhead: total element payload bytes minus raw size.
  std::uint64_t PaddingFor(std::uint64_t size) const;

  // Encodes a file into blocks of exactly l elements each (zero padded).
  // The per-element Montgomery conversions fan out over the global task pool;
  // extra_cpu_ns accumulates pool-worker CPU (see common/task_pool.h).
  std::pair<FileMeta, std::vector<field::FpElem>> Encode(
      std::uint64_t file_id, std::span<const std::uint8_t> data,
      std::uint64_t* extra_cpu_ns = nullptr) const;

  // Inverse of Encode; validates the length header and checksum. Throws
  // ParseError on corrupted input.
  Bytes Decode(const FileMeta& meta, std::span<const field::FpElem> elems,
               std::uint64_t* extra_cpu_ns = nullptr) const;

 private:
  const field::FpCtx* ctx_;
  std::size_t l_;
};

}  // namespace pisces
