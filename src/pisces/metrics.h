// Per-phase measurement counters, attributed the way the paper reports them:
// "Computing" time is real CPU time spent in the protocol's share operations;
// "Sending" is metered bytes (converted to modeled wire time by the driver).
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "obs/trace.h"

namespace pisces {

struct PhaseMetrics {
  // Total CPU consumed by the phase's compute sections, across every thread
  // (ambient CpuTimer + pool-worker extra). Invariant under thread count.
  std::uint64_t cpu_ns = 0;
  // Wall-clock spent inside the same sections. This is what shrinks when the
  // task pool fans work out (--threads); cpu_ns does not.
  std::uint64_t wall_ns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_sent = 0;

  void Add(const PhaseMetrics& o) {
    cpu_ns += o.cpu_ns;
    wall_ns += o.wall_ns;
    bytes_sent += o.bytes_sent;
    msgs_sent += o.msgs_sent;
  }
};

// RAII meter for one compute section: on destruction adds the calling
// thread's CPU plus any pool-worker CPU (reported through extra()) to cpu_ns,
// and the elapsed monotonic time to wall_ns. Pass extra() as the
// extra_cpu_ns argument of task-pool-backed calls inside the section.
//
// Every section is also a trace span of the given kind (a/b are the span's
// protocol args; see obs/trace.h). The span is closed with THIS meter's
// wall/cpu numbers, so span durations in an exported trace reconcile exactly
// with the PhaseMetrics sums the CSV reports. The clock reads are the same
// with tracing on or off -- metrics are byte-identical either way.
class ComputeSection {
 public:
  ComputeSection(PhaseMetrics& m, obs::SpanKind kind, std::uint64_t a = 0,
                 std::uint64_t b = 0)
      : m_(m),
        span_(kind, a, b),
        cpu_start_(ThreadCpuNanos()),
        wall_start_(MonotonicNanos()) {}
  ~ComputeSection() {
    const std::uint64_t cpu = ThreadCpuNanos() - cpu_start_ + extra_;
    const std::uint64_t wall = MonotonicNanos() - wall_start_;
    m_.cpu_ns += cpu;
    m_.wall_ns += wall;
    span_.CloseWithTimes(wall, cpu);
  }
  ComputeSection(const ComputeSection&) = delete;
  ComputeSection& operator=(const ComputeSection&) = delete;

  std::uint64_t* extra() { return &extra_; }

 private:
  PhaseMetrics& m_;
  obs::Span span_;
  std::uint64_t extra_ = 0;
  std::uint64_t cpu_start_;
  std::uint64_t wall_start_;
};

// Robustness counters: how often the fault-tolerance machinery had to act.
struct FaultMetrics {
  // Dealer slots excluded from refresh rounds this host joined (a round with
  // m < n participants counts n - m exclusions once per session).
  std::uint64_t deals_excluded = 0;
  // Protocol rounds or client operations re-attempted after a failure.
  std::uint64_t retries = 0;
  // Bounded-delay timeouts: sessions aborted because quiescence arrived
  // without completion.
  std::uint64_t timeouts_fired = 0;

  void Add(const FaultMetrics& o) {
    deals_excluded += o.deals_excluded;
    retries += o.retries;
    timeouts_fired += o.timeouts_fired;
  }
};

struct HostMetrics {
  PhaseMetrics rerandomize;  // refresh: dealing, transform, verification
  PhaseMetrics recover;      // recovery: masks, masked shares, interpolation
  PhaseMetrics serve;        // set / reconstruct traffic
  FaultMetrics faults;       // robustness machinery activity
  void Reset() { *this = HostMetrics{}; }
};

// Field-substrate observability for one measurement window: which kernel
// path the cluster's field context dispatched to and how hard the lazy-dot
// and weight-cache layers worked. Filled by the driver from one obs registry
// snapshot delta ("field.*" / "math.*" counters) taken around the window;
// carried into the experiment CSV.
struct SubstrateMetrics {
  // Compile-time limb count of the bound kernels (0 = generic runtime path).
  std::uint64_t kernel_width = 0;
  std::uint64_t dot_calls = 0;       // lazy dot outputs produced
  std::uint64_t dot_products = 0;    // products accumulated unreduced
  std::uint64_t dot_reductions = 0;  // wide reductions (== dot outputs)
  std::uint64_t wc_hits = 0;         // weight/Vandermonde cache hits
  std::uint64_t wc_misses = 0;
};

}  // namespace pisces
