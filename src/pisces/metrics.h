// Per-phase measurement counters, attributed the way the paper reports them:
// "Computing" time is real CPU time spent in the protocol's share operations;
// "Sending" is metered bytes (converted to modeled wire time by the driver).
#pragma once

#include <cstdint>

namespace pisces {

struct PhaseMetrics {
  std::uint64_t cpu_ns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_sent = 0;

  void Add(const PhaseMetrics& o) {
    cpu_ns += o.cpu_ns;
    bytes_sent += o.bytes_sent;
    msgs_sent += o.msgs_sent;
  }
};

struct HostMetrics {
  PhaseMetrics rerandomize;  // refresh: dealing, transform, verification
  PhaseMetrics recover;      // recovery: masks, masked shares, interpolation
  PhaseMetrics serve;        // set / reconstruct traffic
  void Reset() { *this = HostMetrics{}; }
};

}  // namespace pisces
