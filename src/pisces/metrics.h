// Per-phase measurement counters, attributed the way the paper reports them:
// "Computing" time is real CPU time spent in the protocol's share operations;
// "Sending" is metered bytes (converted to modeled wire time by the driver).
#pragma once

#include <cstdint>

namespace pisces {

struct PhaseMetrics {
  std::uint64_t cpu_ns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_sent = 0;

  void Add(const PhaseMetrics& o) {
    cpu_ns += o.cpu_ns;
    bytes_sent += o.bytes_sent;
    msgs_sent += o.msgs_sent;
  }
};

// Robustness counters: how often the fault-tolerance machinery had to act.
struct FaultMetrics {
  // Dealer slots excluded from refresh rounds this host joined (a round with
  // m < n participants counts n - m exclusions once per session).
  std::uint64_t deals_excluded = 0;
  // Protocol rounds or client operations re-attempted after a failure.
  std::uint64_t retries = 0;
  // Bounded-delay timeouts: sessions aborted because quiescence arrived
  // without completion.
  std::uint64_t timeouts_fired = 0;

  void Add(const FaultMetrics& o) {
    deals_excluded += o.deals_excluded;
    retries += o.retries;
    timeouts_fired += o.timeouts_fired;
  }
};

struct HostMetrics {
  PhaseMetrics rerandomize;  // refresh: dealing, transform, verification
  PhaseMetrics recover;      // recovery: masks, masked shares, interpolation
  PhaseMetrics serve;        // set / reconstruct traffic
  FaultMetrics faults;       // robustness machinery activity
  void Reset() { *this = HostMetrics{}; }
};

}  // namespace pisces
