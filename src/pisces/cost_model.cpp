#include "pisces/cost_model.h"

#include <algorithm>

namespace pisces {

namespace {
// Table I of the paper (m1.small, c1.medium, m1.large).
constexpr InstanceSpec kSpecs[] = {
    {"Small", 1, 1.7, 160.0, 0.048, 0.0071, 1.0},
    {"Medium", 2, 1.7, 350.0, 0.143, 0.0162, 2.5},
    {"Large", 2, 7.5, 840.0, 0.193, 0.025, 2.0},
};
}  // namespace

const InstanceSpec& SpecOf(InstanceType type) {
  return kSpecs[static_cast<int>(type)];
}

InstanceType InstanceFromName(const std::string& name) {
  for (int i = 0; i < 3; ++i) {
    if (name == kSpecs[i].name) return static_cast<InstanceType>(i);
  }
  throw InvalidArgument("InstanceFromName: unknown instance '" + name + "'");
}

double MachineModel::InstanceSeconds(double cpu_seconds,
                                     std::uint32_t threads) const {
  const InstanceSpec& spec = SpecOf(instance);
  const std::uint32_t usable = std::min(threads, spec.vcpus);
  // Work in ECU-seconds, spread over usable cores of per_vcpu_speed each.
  double ecu_seconds = cpu_seconds * build_machine_ecu;
  return ecu_seconds / (spec.per_vcpu_speed * usable);
}

double CostModel::ComputeCost(std::size_t n, double seconds, bool spot) const {
  const InstanceSpec& spec = SpecOf(machine.instance);
  double hourly = spot ? spec.spot_per_hour : spec.dedicated_per_hour;
  return static_cast<double>(n) * hourly * seconds / 3600.0;
}

double CostModel::WindowCost(std::size_t n, double seconds, bool spot) const {
  double cost = ComputeCost(n, seconds, spot);
  if (!spot) cost += kDedicatedRegionFeePerHour * seconds / 3600.0;
  return cost;
}

double CostModel::ReconstructBytes(std::size_t n, std::size_t need,
                                   std::size_t contacts, double share_bytes,
                                   bool staircase,
                                   double per_contact_overhead) {
  if (!staircase) {
    return static_cast<double>(n) * (share_bytes + per_contact_overhead);
  }
  // Striped: each of the `contacts` hosts ships a need/contacts fraction of
  // its vector, so the share payload totals exactly `need` vectors' worth.
  return static_cast<double>(need) * share_bytes +
         static_cast<double>(contacts) * per_contact_overhead;
}

ReadPlanChoice CostModel::PlanRead(std::size_t n, std::size_t need,
                                   double share_bytes,
                                   double per_contact_overhead) const {
  ReadPlanChoice best;
  best.staircase = false;
  best.share_bytes =
      ReconstructBytes(n, need, n, share_bytes, false, per_contact_overhead);
  best.dollars_per_read = EgressCost(best.share_bytes);
  // Feasible staircase budgets run from the degenerate d = need (every
  // contact ships everything it is asked for, minimal overhead) up to d = n
  // (widest stripe, most parallelism). Egress for the share payload is flat
  // in d; only the request overhead grows, so scanning widest-first makes
  // ties resolve toward parallelism.
  for (std::size_t d = n; d >= need && d > 0; --d) {
    const double bytes =
        ReconstructBytes(n, need, d, share_bytes, true, per_contact_overhead);
    const double dollars = EgressCost(bytes);
    if (dollars < best.dollars_per_read) {
      best.staircase = true;
      best.contacts = d;
      best.share_bytes = bytes;
      best.dollars_per_read = dollars;
    }
  }
  return best;
}

}  // namespace pisces
