#include "pisces/cost_model.h"

#include <algorithm>

namespace pisces {

namespace {
// Table I of the paper (m1.small, c1.medium, m1.large).
constexpr InstanceSpec kSpecs[] = {
    {"Small", 1, 1.7, 160.0, 0.048, 0.0071, 1.0},
    {"Medium", 2, 1.7, 350.0, 0.143, 0.0162, 2.5},
    {"Large", 2, 7.5, 840.0, 0.193, 0.025, 2.0},
};
}  // namespace

const InstanceSpec& SpecOf(InstanceType type) {
  return kSpecs[static_cast<int>(type)];
}

InstanceType InstanceFromName(const std::string& name) {
  for (int i = 0; i < 3; ++i) {
    if (name == kSpecs[i].name) return static_cast<InstanceType>(i);
  }
  throw InvalidArgument("InstanceFromName: unknown instance '" + name + "'");
}

double MachineModel::InstanceSeconds(double cpu_seconds,
                                     std::uint32_t threads) const {
  const InstanceSpec& spec = SpecOf(instance);
  const std::uint32_t usable = std::min(threads, spec.vcpus);
  // Work in ECU-seconds, spread over usable cores of per_vcpu_speed each.
  double ecu_seconds = cpu_seconds * build_machine_ecu;
  return ecu_seconds / (spec.per_vcpu_speed * usable);
}

double CostModel::ComputeCost(std::size_t n, double seconds, bool spot) const {
  const InstanceSpec& spec = SpecOf(machine.instance);
  double hourly = spot ? spec.spot_per_hour : spec.dedicated_per_hour;
  return static_cast<double>(n) * hourly * seconds / 3600.0;
}

double CostModel::WindowCost(std::size_t n, double seconds, bool spot) const {
  double cost = ComputeCost(n, seconds, spot);
  if (!spot) cost += kDedicatedRegionFeePerHour * seconds / 3600.0;
  return cost;
}

}  // namespace pisces
