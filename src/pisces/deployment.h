// Deployment planning: how the n share storage hosts are distributed across
// cloud providers (paper SectionI "Envisioned Use Cases", Figures 1-3).
//
//  * SingleCloud: all hosts at one CSP (the prototyped configuration).
//  * MultiCloud:  n hosts split evenly across M CSPs; data survives the full
//    compromise of any single provider when M > 3.
//  * Hybrid:      a trusted local server holds n/3 of the shares, the
//    remaining 2n/3 are split across M CSPs; the local server alone can never
//    reconstruct, and no coalition lacking it reaches the threshold unless
//    more than half of the remote shares are taken.
//
// The analysis helpers answer the paper's confidentiality questions: which
// provider coalitions can breach the corruption threshold t, and can any
// single provider do so alone.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace pisces {

enum class DeploymentKind { kSingleCloud, kMultiCloud, kHybrid };

struct Deployment {
  DeploymentKind kind = DeploymentKind::kSingleCloud;
  // provider_of_host[i] = provider index of host i. Provider 0 is the local
  // server in hybrid deployments.
  std::vector<std::uint32_t> provider_of_host;
  std::uint32_t providers = 1;

  static Deployment SingleCloud(std::size_t n);
  static Deployment MultiCloud(std::size_t n, std::uint32_t m);
  static Deployment Hybrid(std::size_t n, std::uint32_t m_remote);

  std::size_t n() const { return provider_of_host.size(); }
  std::vector<std::uint32_t> HostsOf(std::uint32_t provider) const;
  std::size_t SharesAt(std::uint32_t provider) const;

  // Can compromising exactly this provider coalition expose > t shares?
  bool CoalitionBreaches(std::span<const std::uint32_t> providers_compromised,
                         std::size_t t) const;
  // Smallest number of providers whose total shares exceed t (greedy over
  // provider sizes) -- the paper's "at least t/n different CSPs" guidance.
  std::size_t MinProvidersToBreach(std::size_t t) const;

  std::string Describe() const;
};

}  // namespace pisces
