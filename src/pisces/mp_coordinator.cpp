#include "pisces/mp_coordinator.h"

#include <algorithm>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/registry.h"

namespace pisces {

namespace {

obs::Counter& DeadlineExpiries() {
  static obs::Counter& c = obs::RegisterCounter(
      "net.deadline_expiries",
      "bounded-delay RPC deadlines that fired at the coordinator");
  return c;
}

std::uint64_t NowMs() { return MonotonicNanos() / 1'000'000; }

}  // namespace

MpCoordinator::MpCoordinator(MpConfig cfg, net::AsyncTcpEndpoint& endpoint)
    : cfg_(std::move(cfg)),
      ep_(endpoint),
      rng_(cfg_.seed ^ 0xC0FFEEull),
      ca_(crypto::SchnorrGroup::Default(), rng_) {
  cfg_.Validate();
  DeadlineExpiries();  // register before the first snapshot
}

Bytes MpCoordinator::ca_pk() const { return ca_.public_key(); }

std::pair<crypto::HostCert, Bytes> MpCoordinator::IssueClient() {
  auto issued = ca_.IssueHostKey(net::kClientId, 0, rng_);
  directory_[net::kClientId] = issued.first;
  return issued;
}

void MpCoordinator::RegisterUpload(const FileMeta& meta) {
  catalog_[meta.file_id] = meta;
}

std::uint32_t MpCoordinator::MinQuorum() const {
  const pss::Params p = cfg_.ToParams();
  return std::max<std::uint32_t>(2 * p.t + 1,
                                 static_cast<std::uint32_t>(p.degree()) + 1);
}

// ---- receive plumbing ------------------------------------------------------

void MpCoordinator::Absorb(const net::Message& msg) {
  if (msg.type == net::MsgType::kStatusReport && msg.row == 0) {
    // Unsolicited announcement: a fresh (crash-restarted) hostd asking for
    // boot material, or a periodic "still unbooted" retry. Queue it for the
    // next ProcessAnnouncements; do not recurse into a reboot mid-operation.
    try {
      const HostStatus s = HostStatus::Deserialize(msg.payload);
      if (!s.online && msg.from < cfg_.n) needs_boot_.insert(msg.from);
    } catch (const ParseError&) {
      LogWarn() << "coordinator: malformed announcement from " << msg.from;
    }
    return;
  }
  stash_.push_back(msg);
  if (stash_.size() > 10000) stash_.pop_front();  // stale completions
}

std::optional<net::Message> MpCoordinator::WaitMatch(
    const Pred& pred, std::uint64_t deadline_ms, bool count_expiry) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (pred(*it)) {
      net::Message m = std::move(*it);
      stash_.erase(it);
      return m;
    }
  }
  const std::uint64_t deadline = NowMs() + deadline_ms;
  for (;;) {
    if (tick_) tick_();
    const std::uint64_t now = NowMs();
    if (now >= deadline) break;
    const int slice = static_cast<int>(std::min<std::uint64_t>(
        50, deadline - now));
    auto msg = ep_.ReceiveWait(slice);
    if (!msg) continue;
    if (pred(*msg)) return msg;
    Absorb(*msg);
  }
  if (count_expiry) {
    ++deadline_expiries_;
    DeadlineExpiries().Add();
  }
  return std::nullopt;
}

std::optional<HostStatus> MpCoordinator::WaitAck(std::uint32_t from,
                                                 std::uint32_t token) {
  auto msg = WaitMatch(
      [from, token](const net::Message& m) {
        return m.type == net::MsgType::kStatusReport && m.from == from &&
               m.row == token;
      },
      cfg_.deadline_ms);
  if (!msg) return std::nullopt;
  try {
    return HostStatus::Deserialize(msg->payload);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

void MpCoordinator::Pump(int ms) {
  // An idle drain is not a missed RPC: no expiry accounting.
  WaitMatch([](const net::Message&) { return false; },
            static_cast<std::uint64_t>(ms), /*count_expiry=*/false);
}

// ---- lifecycle -------------------------------------------------------------

StatusCode MpCoordinator::SendBoot(std::uint32_t id, std::uint32_t epoch) {
  auto [cert, sk] = ca_.IssueHostKey(id, epoch, rng_);
  directory_[id] = cert;

  BootMaterial boot;
  boot.ca_pk = ca_.public_key();
  boot.epoch = epoch;
  boot.cert = cert;
  boot.sk = std::move(sk);
  for (std::uint32_t j = 0; j < cfg_.n; ++j) boot.peers.push_back(j);
  boot.peers.push_back(net::kClientId);
  for (const auto& [peer, c] : directory_) boot.directory.push_back(c);

  const std::uint32_t token = next_token_++;
  net::Message m;
  m.from = net::kHypervisorId;
  m.to = id;
  m.type = net::MsgType::kBootHost;
  m.row = token;
  m.payload = boot.Serialize();
  ep_.Send(std::move(m));

  auto ack = WaitAck(id, token);
  const StatusCode status = !ack ? StatusCode::kTimeout
                           : (!ack->online || ack->epoch != epoch)
                               ? StatusCode::kFailed
                               : StatusCode::kOk;
  if (status != StatusCode::kOk) {
    LogWarn() << "coordinator: boot of host " << id << ": "
              << StatusName(status);
    return status;
  }
  needs_boot_.erase(id);
  return StatusCode::kOk;
}

StatusCode MpCoordinator::HaltHost(std::uint32_t id) {
  const std::uint32_t token = next_token_++;
  net::Message m;
  m.from = net::kHypervisorId;
  m.to = id;
  m.type = net::MsgType::kHaltHost;
  m.row = token;
  ep_.Send(std::move(m));
  auto ack = WaitAck(id, token);
  if (!ack) return StatusCode::kTimeout;
  return ack->online ? StatusCode::kFailed : StatusCode::kOk;
}

bool MpCoordinator::BootAll() {
  // Fresh hostds announce themselves; wait for each, then boot it. Hosts may
  // announce in any order and repeatedly -- announcements are idempotent.
  const std::uint64_t deadline = NowMs() + cfg_.deadline_ms * cfg_.n;
  std::set<std::uint32_t> booted;
  while (booted.size() < cfg_.n && NowMs() < deadline) {
    std::uint32_t candidate = cfg_.n;
    for (std::uint32_t id : needs_boot_) {
      if (booted.count(id) == 0) {
        candidate = id;
        break;
      }
    }
    if (candidate == cfg_.n) {
      Pump(50);  // wait for more announcements
      continue;
    }
    if (SendBoot(candidate, next_epoch_) == StatusCode::kOk) {
      booted.insert(candidate);
    }
  }
  if (booted.size() == cfg_.n) {
    ++next_epoch_;  // all initial boots share one epoch
    return true;
  }
  return false;
}

bool MpCoordinator::BootHost(std::uint32_t id) {
  const StatusCode halt = HaltHost(id);
  if (halt != StatusCode::kOk) {
    // A freshly exec'd process has nothing to halt and still acks; a dead
    // process cannot ack at all -- the boot below will fail and be retried
    // after its supervisor restarts it.
    LogWarn() << "coordinator: halt of host " << id << ": "
              << StatusName(halt);
  }
  return SendBoot(id, next_epoch_++) == StatusCode::kOk;
}

std::optional<HostStatus> MpCoordinator::QueryStatus(std::uint32_t id) {
  const std::uint32_t token = next_token_++;
  net::Message m;
  m.from = net::kHypervisorId;
  m.to = id;
  m.type = net::MsgType::kStatusRequest;
  m.row = token;
  ep_.Send(std::move(m));
  return WaitAck(id, token);
}

void MpCoordinator::AbortStuck(const std::vector<std::uint32_t>& hosts) {
  // Fire-and-forget: retries use fresh (file, seq) keys, so a slow abort
  // cannot collide with the next attempt, and a dead host cannot ack anyway.
  for (std::uint32_t id : hosts) {
    net::Message m;
    m.from = net::kHypervisorId;
    m.to = id;
    m.type = net::MsgType::kAbortStuck;
    m.row = next_token_++;
    ep_.Send(std::move(m));
  }
}

// ---- refresh ---------------------------------------------------------------

bool MpCoordinator::RefreshFile(std::uint64_t file_id,
                                const std::vector<std::uint32_t>& participants,
                                std::set<std::uint32_t>* applied,
                                std::set<std::uint32_t>* wedged) {
  const std::uint32_t seq = next_seq_++;
  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(participants.size()));
  for (std::uint32_t id : participants) w.U32(id);
  const Bytes plist = w.Take();

  for (std::uint32_t id : participants) {
    net::Message m;
    m.from = net::kHypervisorId;
    m.to = id;
    m.type = net::MsgType::kStartRefresh;
    m.file_id = file_id;
    m.epoch = seq;
    m.payload = plist;
    ep_.Send(std::move(m));
  }
  if (mid_window_hook_) {
    // Fire exactly once, mid-protocol: deals are in flight, nothing is done.
    auto hook = std::move(mid_window_hook_);
    mid_window_hook_ = nullptr;
    hook();
  }

  std::set<std::uint32_t> pending(participants.begin(), participants.end());
  bool all_ok = true;
  while (!pending.empty()) {
    auto msg = WaitMatch(
        [&](const net::Message& m) {
          return m.type == net::MsgType::kPhaseDone && m.row == 0 &&
                 m.file_id == file_id && m.epoch == seq &&
                 pending.count(m.from) != 0;
        },
        cfg_.deadline_ms);
    if (!msg) break;  // bounded delay fired; the rest are wedged or dead
    pending.erase(msg->from);
    const bool ok = !msg->payload.empty() && msg->payload[0] == 1;
    if (ok) {
      applied->insert(msg->from);
    } else {
      all_ok = false;  // verification failure: treated like a wedge (retry)
      wedged->insert(msg->from);
    }
  }
  for (std::uint32_t id : pending) wedged->insert(id);
  return all_ok && pending.empty();
}

MpWindowReport MpCoordinator::RunWindow() {
  MpWindowReport report;
  const std::uint64_t expiries_before = deadline_expiries_;
  report.hosts_rebooted += ProcessAnnouncements();

  // Dealer-exclusion style retry budget, mirroring the in-process
  // hypervisor: t+2 attempts always suffice against <= t crash faults.
  const std::uint32_t max_attempts = cfg_.t + 2;
  std::set<std::uint64_t> remaining;
  for (const auto& [fid, meta] : catalog_) remaining.insert(fid);

  for (std::uint32_t attempt = 0;
       attempt < max_attempts && !remaining.empty(); ++attempt) {
    ++report.refresh_attempts;

    // Who is alive and what do they hold? Hosts that fail the status RPC
    // are excluded from this attempt (bounded-delay synchrony: a silent
    // host is treated as crashed for the rest of the window).
    std::map<std::uint32_t, HostStatus> alive;
    for (std::uint32_t id = 0; id < cfg_.n; ++id) {
      if (needs_boot_.count(id) != 0) continue;
      auto s = QueryStatus(id);
      if (s && s->online) alive.emplace(id, std::move(*s));
    }

    std::set<std::uint64_t> still_remaining;
    for (std::uint64_t fid : remaining) {
      std::vector<std::uint32_t> holders;
      for (const auto& [id, s] : alive) {
        if (std::find(s.files.begin(), s.files.end(), fid) != s.files.end()) {
          holders.push_back(id);
        }
      }
      if (holders.size() < MinQuorum()) {
        LogWarn() << "coordinator: file " << fid << " has " << holders.size()
                  << " live holders, below quorum; deferring";
        still_remaining.insert(fid);
        continue;
      }

      std::set<std::uint32_t> applied, wedged;
      if (RefreshFile(fid, holders, &applied, &wedged)) continue;

      // The attempt failed. Clean the wedged slate, then repair a partial
      // apply: whichever side holds a quorum recovers the other side. Hosts
      // that already announced a crash-restart have no state to abort or
      // resync -- the reboot path below handles them.
      std::vector<std::uint32_t> wedged_list;
      for (std::uint32_t id : wedged) {
        if (needs_boot_.count(id) == 0) wedged_list.push_back(id);
      }
      AbortStuck(wedged_list);
      if (!applied.empty() && !wedged.empty()) {
        std::vector<std::uint32_t> applied_list(applied.begin(),
                                                applied.end());
        const bool fresh_majority = applied.size() >= MinQuorum();
        const auto& survivors =
            fresh_majority ? applied_list : wedged_list;
        const auto& stale = fresh_majority ? wedged_list : applied_list;
        if (survivors.size() >= MinQuorum()) {
          LogWarn() << "coordinator: file " << fid << " partially applied ("
                    << applied.size() << "/" << holders.size()
                    << "); resyncing the minority side";
          if (RecoverTargets(stale, survivors)) ++report.stale_resyncs;
        }
      }
      still_remaining.insert(fid);
    }
    remaining.swap(still_remaining);
    // Crash-restarted hosts announced during the attempt: reboot + recover
    // them now so the next attempt can include them again.
    report.hosts_rebooted += ProcessAnnouncements();
  }

  report.refresh_ok = remaining.empty();
  report.hosts_rebooted += ProcessAnnouncements();
  report.deadline_expiries =
      static_cast<std::uint32_t>(deadline_expiries_ - expiries_before);
  return report;
}

// ---- recovery --------------------------------------------------------------

bool MpCoordinator::RecoverTargets(const std::vector<std::uint32_t>& targets,
                                   const std::vector<std::uint32_t>& survivors) {
  if (targets.empty()) return true;
  if (survivors.size() < MinQuorum()) return false;
  bool all_ok = true;
  for (const auto& [fid, meta] : catalog_) {
    const std::uint32_t seq = next_seq_++;
    ByteWriter w;
    w.Blob(meta.Serialize());
    w.U32(static_cast<std::uint32_t>(targets.size()));
    for (std::uint32_t id : targets) w.U32(id);
    w.U32(static_cast<std::uint32_t>(survivors.size()));
    for (std::uint32_t id : survivors) w.U32(id);
    const Bytes payload = w.Take();

    std::set<std::uint32_t> recipients(survivors.begin(), survivors.end());
    recipients.insert(targets.begin(), targets.end());
    for (std::uint32_t id : recipients) {
      net::Message m;
      m.from = net::kHypervisorId;
      m.to = id;
      m.type = net::MsgType::kStartRecovery;
      m.file_id = fid;
      m.epoch = seq;
      m.payload = payload;
      ep_.Send(std::move(m));
    }

    std::set<std::uint32_t> pending(targets.begin(), targets.end());
    bool file_ok = true;
    while (!pending.empty()) {
      auto msg = WaitMatch(
          [&](const net::Message& m) {
            return m.type == net::MsgType::kPhaseDone && m.row == 1 &&
                   m.file_id == fid && m.epoch == seq &&
                   pending.count(m.from) != 0;
          },
          cfg_.deadline_ms);
      if (!msg) {
        file_ok = false;
        break;
      }
      pending.erase(msg->from);
      if (msg->payload.empty() || msg->payload[0] != 1) file_ok = false;
    }
    if (!file_ok) {
      std::vector<std::uint32_t> all(recipients.begin(), recipients.end());
      AbortStuck(all);
      all_ok = false;
    }
  }
  return all_ok;
}

bool MpCoordinator::RebootAndRecover(const std::vector<std::uint32_t>& targets) {
  if (targets.empty()) return true;
  // Reboot-rate bound: at most r hosts leave the share-holding set per batch,
  // and only while the rest still form a recovery quorum.
  for (std::size_t base = 0; base < targets.size(); base += cfg_.r) {
    std::vector<std::uint32_t> batch(
        targets.begin() + static_cast<long>(base),
        targets.begin() + static_cast<long>(
                              std::min(base + cfg_.r, targets.size())));

    bool booted = true;
    for (std::uint32_t id : batch) {
      if (!BootHost(id)) booted = false;
    }
    if (!booted) return false;
    // Let the fresh kHostCert broadcasts land before recovery traffic: a
    // survivor sealing masked shares against the old cert would only cost a
    // retry, but the pause makes the common path deterministic.
    Pump(300);

    if (catalog_.empty()) continue;
    // Survivors: live hosts outside this batch that hold the catalog files.
    std::vector<std::uint32_t> survivors;
    for (std::uint32_t id = 0; id < cfg_.n; ++id) {
      if (std::find(batch.begin(), batch.end(), id) != batch.end()) continue;
      if (needs_boot_.count(id) != 0) continue;
      auto s = QueryStatus(id);
      if (s && s->online && !s->files.empty()) survivors.push_back(id);
    }
    if (!RecoverTargets(batch, survivors)) return false;
  }
  return true;
}

std::uint32_t MpCoordinator::ProcessAnnouncements() {
  std::uint32_t processed = 0;
  // RebootAndRecover can itself surface new announcements; loop to a fixed
  // point but never revisit a host twice in one call (a host that keeps
  // crashing is its supervisor's problem, not an infinite loop here).
  std::set<std::uint32_t> visited;
  for (;;) {
    std::vector<std::uint32_t> todo;
    for (std::uint32_t id : needs_boot_) {
      if (visited.count(id) == 0) todo.push_back(id);
    }
    if (todo.empty()) return processed;
    visited.insert(todo.begin(), todo.end());
    if (RebootAndRecover(todo)) {
      processed += static_cast<std::uint32_t>(todo.size());
    }
  }
}

}  // namespace pisces
