// The user's client: uploads files as packed shares and reassembles them on
// download (paper SectionI use cases; SectionVI-E lifecycle steps 1 and 3).
//
// The client is stateless between sessions: it keeps no share material, only
// an enrolled keypair (in a real deployment, the user's TLS identity). Upload
// shares every block to every host; download requests shares from all hosts
// and reconstructs from the first d+1 responses, so up to n-(d+1) hosts may
// be offline or withholding without affecting availability.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/clock.h"
#include "crypto/ca.h"
#include "crypto/channel.h"
#include "net/sync_network.h"
#include "pisces/file_codec.h"
#include "pisces/metrics.h"
#include "pisces/read_spec.h"
#include "pss/comm_efficient.h"
#include "pss/packed_shamir.h"

namespace pisces {

struct ClientConfig {
  std::uint32_t id = net::kClientId;
  pss::Params params;
  std::shared_ptr<const field::FpCtx> ctx;
  bool encrypt_links = true;
  std::uint64_t rng_seed = 7;
};

class Client : public net::MessageHandler {
 public:
  Client(ClientConfig cfg, net::Transport& transport,
         const crypto::SchnorrGroup& group, Bytes ca_pk,
         crypto::HostCert cert, Bytes sk);

  std::uint32_t id() const { return cfg_.id; }

  // Accept a host's cert (via broadcast message or direct install).
  void InstallPeerCert(const crypto::HostCert& cert);

  // Splits `data` into packed shares and sends one kSetShares to each host.
  // Caller pumps the network, then checks UploadAcks == n.
  FileMeta BeginUpload(std::uint64_t file_id,
                       std::span<const std::uint8_t> data);
  std::size_t UploadAcks(std::uint64_t file_id) const;
  // Re-sends the CACHED share payloads to hosts that have not acked yet (an
  // upload must never re-encode: fresh randomness would hand different
  // polynomials to hosts that already stored the first attempt). Returns the
  // number of hosts re-targeted. Caller pumps again.
  std::size_t RetryUpload(std::uint64_t file_id);
  // Drops the cached upload payloads once the caller is done retrying.
  void FinishUpload(std::uint64_t file_id);

  // Starts the download described by `spec` (pisces/read_spec.h). On the
  // full-share path this asks every host for its whole share vector; on the
  // staircase path it contacts spec.policy.contacts hosts (0 = all n) and
  // each ships only its assigned stripe. An infeasible staircase budget
  // degrades to the full-share path when the spec's fallback allows it and
  // throws InvalidArgument otherwise. Caller pumps, then calls TryAssemble.
  void BeginDownload(const ReadSpec& spec);
  // Re-requests only from hosts whose response is still missing, keeping the
  // responses already received. Returns the number of hosts re-asked.
  std::size_t RetryDownload(const ReadSpec& spec);
  std::size_t ResponsesFor(std::uint64_t file_id) const;
  // Reconstructs and decodes; nullopt when the active path is still missing
  // responses. Throws ParseError if reconstruction succeeds but integrity
  // checks fail (classic path: inconsistent shares above threshold;
  // staircase path: any corrupted stripe -- the caller decides whether to
  // fall back to the full-share oracle).
  std::optional<Bytes> TryAssemble(std::uint64_t file_id);

  void RequestDelete(std::uint64_t file_id);

  // Retargets the client at a resharded fleet (Hypervisor::Reshare). The
  // packing l must match -- the codec's chunking depends only on l, so every
  // stored FileMeta stays valid across the migration. Refuses while uploads
  // or downloads are in flight (their share vectors are sized for the old
  // fleet).
  void AdoptParams(const pss::Params& params);

  void HandleMessage(const net::Message& msg) override;

  const PhaseMetrics& metrics() const { return metrics_; }
  // Upload/download re-sends issued after missing acks or responses.
  std::uint64_t retries() const { return retries_; }

 private:
  Bytes SealFor(std::uint32_t peer, std::span<const std::uint8_t> pt);
  Bytes OpenFrom(std::uint32_t peer, std::span<const std::uint8_t> ct);
  crypto::SecureChannel& ChannelTo(std::uint32_t peer);
  // Berlekamp-Welch fallback over all responses when the fast path fails its
  // integrity check (a minority of hosts returned corrupted shares).
  Bytes AssembleRobust(const FileMeta& meta,
                       std::uint64_t* extra_cpu_ns = nullptr);

  ClientConfig cfg_;
  net::Transport& transport_;
  const crypto::SchnorrGroup& group_;
  Bytes ca_pk_;
  crypto::HostCert my_cert_;
  Bytes sk_;
  Rng rng_;

  std::shared_ptr<pss::PackedShamir> shamir_;
  FileCodec codec_;

  std::map<std::uint32_t, crypto::HostCert> peer_certs_;
  struct CachedChannel {
    std::uint64_t epoch_pair;
    crypto::SecureChannel channel;
  };
  std::map<std::uint32_t, CachedChannel> channels_;

  // Hosts that acked the upload, plus the per-host plaintext payloads kept
  // for retries (sealed fresh on each send; the share material is fixed).
  struct PendingUpload {
    std::set<std::uint32_t> acked;
    std::vector<Bytes> payloads;  // [host] serialized meta + shares
  };
  std::map<std::uint64_t, PendingUpload> uploads_;
  struct ShareResponse {
    FileMeta meta;
    std::vector<field::FpElem> elems;
    bool striped = false;  // stripe (row=1) vs full share vector (row=0)
  };
  struct PendingDownload {
    ReadPolicy policy;  // resolved policy this download runs under
    // Staircase only: contacted host ids in contact-index order. Empty on
    // the full-share path (which asks all n hosts).
    std::vector<std::uint32_t> contacted;
    std::map<std::uint32_t, ShareResponse> responses;
  };
  std::map<std::uint64_t, PendingDownload> downloads_;

  void SendReconstructRequest(std::uint64_t file_id, std::uint32_t host,
                              const PendingDownload& dl);
  std::optional<Bytes> AssembleStaircase(std::uint64_t file_id,
                                         PendingDownload& dl);

  PhaseMetrics metrics_;
  std::uint64_t retries_ = 0;
};

}  // namespace pisces
