// Child-process supervision for the process-per-host deployment.
//
// The launcher (pisces_mp) and the crash-restart drill both use this class to
// spawn one pisces_hostd per host, detect child death (waitpid WNOHANG --
// polled from the coordinator's tick, so restarts happen while RPCs wait),
// and restart crashed hosts after a short backoff. A restarted process comes
// up with no key material; it announces itself to the coordinator, which
// drives it through the secure-reboot + recovery path -- the supervisor only
// manages processes, never protocol state.
//
// Runtime artifacts: each child's pid lands in run_dir/host<i>.pid and its
// stdout/stderr in run_dir/host<i>.log (append across restarts, so a crash
// loop is diagnosable from one file).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pisces/mp_config.h"

namespace pisces {

class MpSupervisor {
 public:
  // `config_path` is handed to every child (--config); cfg.hostd names the
  // binary to exec. Creates run_dir if missing.
  MpSupervisor(MpConfig cfg, std::string config_path);
  ~MpSupervisor();

  MpSupervisor(const MpSupervisor&) = delete;
  MpSupervisor& operator=(const MpSupervisor&) = delete;

  void StartAll();
  void Start(std::uint32_t id);

  // Reaps exited children and restarts the ones past the restart backoff.
  // Cheap when nothing happened; safe to call from a coordinator tick.
  // Returns the number of restarts performed by this call.
  std::uint32_t Poll();

  // Sends `sig` to a child (the drill's SIGKILL). False if not running.
  bool Signal(std::uint32_t id, int sig);

  // Stops restarting `id` (used before deliberate teardown).
  void Disown(std::uint32_t id);

  // SIGTERM all children, then reap them (SIGKILL stragglers).
  void StopAll();

  pid_t PidOf(std::uint32_t id) const;
  bool Running(std::uint32_t id) const;
  std::uint64_t restarts() const { return restarts_; }

 private:
  void Spawn(std::uint32_t id);

  MpConfig cfg_;
  std::string config_path_;
  struct Child {
    pid_t pid = -1;
    bool want = false;           // should be running (restart on death)
    std::uint64_t died_at_ms = 0;  // 0 = alive or never started
  };
  std::vector<Child> children_;
  std::uint64_t restarts_ = 0;
};

}  // namespace pisces
