// Active Byzantine adversary engine (paper SectionIII-A, active variant).
//
// The honest-but-curious Adversary (pisces/adversary.h) only reads; this
// engine makes corrupted hosts LIE. A seeded ByzantinePlan -- mirroring
// net::FaultPlan's shape -- assigns each corrupted host a ByzantineStrategy;
// a per-host ByzantineActor implements the strategy at the protocol layer:
//
//   kEquivocate   as a VSS dealer, send inconsistent dealing rows to
//                 different receivers (no single polynomial explains them);
//   kCorruptDeal  deal a consistent degree-<=d sharing that does NOT vanish
//                 on the required point set (a corrupted zero-sharing);
//   kWrongShare   serve perturbed shares to client reconstruction and
//                 perturbed masked shares to recovering targets;
//   kWithhold     silently withhold refresh dealings and recovery masked
//                 shares (verdicts and check shares still flow; withholding
//                 those is indistinguishable from the message loss the fault
//                 fabric already models, and is handled by timeouts).
//
// Injection is the pss::DealTamper seam plus three Host call sites, all
// behind a null-checked pointer: with no plan armed the protocol bytes are
// identical to a build without the engine (tested by the armed-vs-unarmed
// differential test). Corrupted hosts lie on the wire but their stored
// shares stay honest -- the mobile adversary of the paper corrupts and
// leaves; persistent store corruption beyond the Reed-Solomon radius is out
// of scope (docs/adversary_model.md).
//
// Every action bumps a `byz.*` counter in the obs registry and, when tracing
// is enabled, opens a byz.action span; the matching detection sites
// (attribution, robust decode, dispute strikes) record byz.* detection
// counters, giving the seed-sweep harness an exact ledger of
// attack-vs-detection events.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "pss/params.h"
#include "pss/tamper.h"

namespace pisces {

enum class ByzantineStrategy : std::uint8_t {
  kHonest = 0,
  kEquivocate,
  kCorruptDeal,
  kWrongShare,
  kWithhold,
};

const char* StrategyName(ByzantineStrategy s);

// Seeded, declarative corruption schedule: which hosts are actively corrupt
// this window and how they cheat. Mirrors net::FaultPlan so campaigns draw
// both from the same seed stream.
struct ByzantinePlan {
  std::uint64_t seed = 1;
  std::map<std::uint32_t, ByzantineStrategy> hosts;

  ByzantineStrategy For(std::uint32_t host) const {
    auto it = hosts.find(host);
    return it == hosts.end() ? ByzantineStrategy::kHonest : it->second;
  }
  bool Armed() const {
    for (const auto& [h, s] : hosts) {
      if (s != ByzantineStrategy::kHonest) return true;
    }
    return false;
  }
};

// Draws a corruption schedule for one campaign window: at most t corrupt
// hosts with strategies drawn uniformly, except that wrong-share hosts are
// capped at the recovery masked-share decoding radius
// (survivors - degree - 1) / 2 with survivors = n - r, so every drawn
// schedule is within what the dispute machinery guarantees to absorb
// (docs/adversary_model.md discusses the cap).
ByzantinePlan DrawByzantinePlan(std::uint64_t seed, const pss::Params& p);

// One corrupted host's behaviour. Implements the pss::DealTamper seam for
// dealer-side attacks; Host consults the other hooks at its send sites. All
// calls happen on the simulator's control thread in protocol order, so the
// actor's private RNG stream is deterministic.
class ByzantineActor final : public pss::DealTamper {
 public:
  ByzantineActor(std::uint32_t host, ByzantineStrategy strategy,
                 std::uint64_t seed, const field::FpCtx& ctx);

  std::uint32_t host() const { return host_; }
  ByzantineStrategy strategy() const { return strategy_; }

  // Dealer-side seam (refresh zero-sharings). Recovery-mask dealings are
  // left honest: the recovery-phase attack surface is the masked share
  // (TamperShares) and withholding, matching the dispute machinery.
  void TamperDeal(std::span<const std::uint32_t> holders, bool recovery,
                  std::vector<std::vector<field::FpElem>>& deal) override;

  // Wrong-share hook: perturbs each element by an independent nonzero
  // offset. Returns true if the vector was modified (kWrongShare only).
  bool TamperShares(std::vector<field::FpElem>& elems);

  // Withholding hook: true when this host silently skips the send it is
  // about to perform (a refresh dealing or a recovery masked share). Each
  // true return is one withheld message, counted in byz.messages_withheld.
  bool WithholdSend();

 private:
  std::uint32_t host_;
  ByzantineStrategy strategy_;
  const field::FpCtx* ctx_;
  Rng rng_;
};

// Owns one actor per corrupted host in a plan. The cluster arms each Host
// with its actor (hosts with no entry stay un-armed: a null pointer).
class ByzantineEngine {
 public:
  ByzantineEngine(const ByzantinePlan& plan, const field::FpCtx& ctx);

  // nullptr for hosts the plan leaves honest.
  ByzantineActor* ActorFor(std::uint32_t host);
  const ByzantinePlan& plan() const { return plan_; }

 private:
  ByzantinePlan plan_;
  std::map<std::uint32_t, std::unique_ptr<ByzantineActor>> actors_;
};

}  // namespace pisces
