#include "pisces/serving_client.h"

#include "common/log.h"
#include "obs/registry.h"

namespace pisces {

namespace {

struct WireClientCounters {
  obs::Counter& reroutes = obs::RegisterCounter(
      "serving.reroutes",
      "requests re-sent under a fresher routing map after kBadRoute");
  obs::Counter& reroutes_exhausted = obs::RegisterCounter(
      "serving.reroutes_exhausted",
      "kBadRoute refusals delivered terminally after the re-route budget");
  obs::Counter& maps_adopted = obs::RegisterCounter(
      "serving.maps_adopted", "routing maps adopted by wire clients");
  obs::Counter& maps_rejected = obs::RegisterCounter(
      "serving.maps_rejected",
      "routing maps discarded as stale or rolled back by wire clients");
};

WireClientCounters& Counters() {
  static WireClientCounters* c = new WireClientCounters();
  return *c;
}

}  // namespace

ServingWireClient::ServingWireClient(WireClientConfig cfg,
                                     net::Transport& transport)
    : cfg_(std::move(cfg)), transport_(transport) {}

bool ServingWireClient::AdoptMap(const net::RoutingMap& map) {
  // Strictly newer only: adopting an equal epoch is a no-op and an OLDER
  // epoch is a rollback -- a refusal or out-of-band push must never drag the
  // client back to a routing view the plane has already superseded.
  if (map.epoch <= map_.epoch) {
    Counters().maps_rejected.Add(1);
    return false;
  }
  map_ = map;
  Counters().maps_adopted.Add(1);
  return true;
}

std::uint64_t ServingWireClient::Send(std::uint64_t session, net::ServingOp op,
                                      std::uint64_t file_id, Bytes payload) {
  const std::uint64_t ordinal = ++next_request_[session];
  net::ServingRequestFrame f;
  f.session = session;
  f.request = ordinal;
  f.epoch = map_.epoch;  // 0 before the first adoption: unversioned
  f.shard = map_.shards.empty()
                ? 0
                : ShardRouter::Route(
                      file_id, static_cast<std::uint32_t>(map_.shards.size()));
  f.op = op;
  f.file_id = file_id;
  f.payload = std::move(payload);

  PendingRequest p;
  p.frame = f;
  p.reroutes_left = cfg_.reroute_budget;
  pending_[{session, ordinal}] = std::move(p);
  Transmit(f);
  return ordinal;
}

void ServingWireClient::HandleMessage(const net::Message& msg) {
  if (msg.type != net::MsgType::kServingResponse) return;  // not for us
  net::ServingResponseFrame resp;
  try {
    resp = net::ServingResponseFrame::Deserialize(msg.payload);
  } catch (const ParseError& e) {
    LogWarn() << "wire client: dropping unparseable serving response: "
              << e.what();
    return;
  }

  auto it = pending_.find({resp.session, resp.request});
  if (it == pending_.end()) {
    // Unsolicited (or already-terminal) response: surface it rather than
    // silently dropping; callers decide what a stray frame means.
    responses_.push_back(std::move(resp));
    return;
  }

  if (resp.status == net::ServingStatus::kBadRoute) {
    // The plane refused our routing stamp and (from a gateway) pushed its
    // current map. The refused ordinal was never consumed, so re-sending
    // the same ordinal under the fresh stamp is not a replay.
    if (!resp.payload.empty()) {
      try {
        AdoptMap(net::RoutingMap::Deserialize(resp.payload));
      } catch (const ParseError& e) {
        LogWarn() << "wire client: kBadRoute carried an unparseable map: "
                  << e.what();
      }
    }
    // Re-route whenever the adopted map would change the request's stamp --
    // not only when THIS refusal's map was the one adopted. Two stale
    // requests in flight share one epoch bump: the first refusal adopts the
    // new map, and the second must still re-send under it even though its
    // own AdoptMap is a no-op. If re-stamping changes nothing, re-sending
    // would only be refused again, so the refusal is terminal instead.
    net::ServingRequestFrame& f = it->second.frame;
    const std::uint32_t fresh_shard =
        map_.shards.empty()
            ? 0
            : ShardRouter::Route(
                  f.file_id, static_cast<std::uint32_t>(map_.shards.size()));
    const bool restamp_changes =
        f.epoch != map_.epoch || f.shard != fresh_shard;
    if (restamp_changes && it->second.reroutes_left > 0) {
      it->second.reroutes_left -= 1;
      reroutes_ += 1;
      Counters().reroutes.Add(1);
      f.epoch = map_.epoch;
      f.shard = fresh_shard;
      Transmit(f);
      return;  // absorbed: the caller never sees the refusal
    }
    // No fresher stamp to try, or budget exhausted: terminal.
    reroutes_exhausted_ += 1;
    Counters().reroutes_exhausted.Add(1);
  }

  pending_.erase(it);
  responses_.push_back(std::move(resp));
}

std::vector<net::ServingResponseFrame> ServingWireClient::TakeResponses() {
  std::vector<net::ServingResponseFrame> out;
  out.swap(responses_);
  return out;
}

void ServingWireClient::Transmit(const net::ServingRequestFrame& frame) {
  net::Message m;
  m.from = cfg_.id;
  m.to = cfg_.gateway;
  m.type = net::MsgType::kServingRequest;
  m.file_id = frame.file_id;
  m.payload = frame.Serialize();
  transport_.Send(std::move(m));
}

}  // namespace pisces
