#include "pisces/mp_supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"

namespace pisces {

namespace {

std::uint64_t NowMs() { return MonotonicNanos() / 1'000'000; }

// waitpid with EINTR retry (a signal mid-reap must not lose the child).
pid_t WaitPidRetry(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, options);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

}  // namespace

MpSupervisor::MpSupervisor(MpConfig cfg, std::string config_path)
    : cfg_(std::move(cfg)), config_path_(std::move(config_path)) {
  Require(!cfg_.hostd.empty(), "MpSupervisor: cfg.hostd must name the binary");
  children_.resize(cfg_.n);
  if (::mkdir(cfg_.run_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error("MpSupervisor: cannot create run_dir " + cfg_.run_dir);
  }
}

MpSupervisor::~MpSupervisor() {
  try {
    StopAll();
  } catch (...) {
    // Destructor: best effort; leaked children die with the test harness.
  }
}

void MpSupervisor::StartAll() {
  for (std::uint32_t id = 0; id < cfg_.n; ++id) Start(id);
}

void MpSupervisor::Start(std::uint32_t id) {
  Require(id < cfg_.n, "MpSupervisor: host id out of range");
  Child& c = children_[id];
  c.want = true;
  if (c.pid > 0) return;  // already running
  Spawn(id);
}

void MpSupervisor::Spawn(std::uint32_t id) {
  const std::string log_path = cfg_.LogPath(id);
  const std::string id_str = std::to_string(id);

  const pid_t pid = ::fork();
  Require(pid >= 0, "MpSupervisor: fork failed");
  if (pid == 0) {
    // Child. Only async-signal-safe calls until execv. Logs append across
    // restarts so a crash loop reads as one file.
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    const char* argv[] = {cfg_.hostd.c_str(),       "--config",
                          config_path_.c_str(),     "--id",
                          id_str.c_str(),           nullptr};
    ::execv(cfg_.hostd.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // exec failed; _exit, never unwind the parent's state
  }

  Child& c = children_[id];
  c.pid = pid;
  c.died_at_ms = 0;
  std::ofstream(cfg_.PidPath(id), std::ios::trunc) << pid << "\n";
}

std::uint32_t MpSupervisor::Poll() {
  // Reap everything that exited.
  for (;;) {
    int status = 0;
    const pid_t pid = WaitPidRetry(-1, &status, WNOHANG);
    if (pid <= 0) break;
    for (std::uint32_t id = 0; id < cfg_.n; ++id) {
      Child& c = children_[id];
      if (c.pid != pid) continue;
      c.pid = -1;
      c.died_at_ms = NowMs();
      if (c.want) {
        LogWarn() << "supervisor: host " << id << " died ("
                  << (WIFSIGNALED(status) ? "signal" : "exit") << " "
                  << (WIFSIGNALED(status) ? WTERMSIG(status)
                                          : WEXITSTATUS(status))
                  << "); restart pending";
      }
      break;
    }
  }
  // Restart crashed children past the backoff.
  std::uint32_t restarted = 0;
  const std::uint64_t now = NowMs();
  for (std::uint32_t id = 0; id < cfg_.n; ++id) {
    Child& c = children_[id];
    if (c.pid > 0 || !c.want || c.died_at_ms == 0) continue;
    if (now - c.died_at_ms < cfg_.restart_backoff_ms) continue;
    Spawn(id);
    ++restarts_;
    ++restarted;
  }
  return restarted;
}

bool MpSupervisor::Signal(std::uint32_t id, int sig) {
  Require(id < cfg_.n, "MpSupervisor: host id out of range");
  const Child& c = children_[id];
  if (c.pid <= 0) return false;
  return ::kill(c.pid, sig) == 0;
}

void MpSupervisor::Disown(std::uint32_t id) {
  Require(id < cfg_.n, "MpSupervisor: host id out of range");
  children_[id].want = false;
}

void MpSupervisor::StopAll() {
  for (auto& c : children_) {
    c.want = false;
    if (c.pid > 0) ::kill(c.pid, SIGTERM);
  }
  const std::uint64_t deadline = NowMs() + 2000;
  for (auto& c : children_) {
    if (c.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = WaitPidRetry(c.pid, &status, WNOHANG);
      if (r == c.pid || (r < 0 && errno == ECHILD)) break;
      if (NowMs() >= deadline) {
        ::kill(c.pid, SIGKILL);
        WaitPidRetry(c.pid, &status, 0);
        break;
      }
      ::usleep(10'000);
    }
    c.pid = -1;
  }
}

}  // namespace pisces
