// Deployment configuration for the process-per-host plane (docs/deployment.md).
//
// One config file describes a whole deployment: the PSS parameters, the
// loopback port map, the supervision timing knobs, and where runtime
// artifacts (pid files, per-host logs) land. The launcher (pisces_mp), each
// host daemon (pisces_hostd), and the crash-restart drill all parse the same
// file, so a deployment is reproducible from one artifact.
//
// Format: `key = value` lines, `#` comments, unknown keys rejected (a typo'd
// knob must fail loudly, not silently default).
//
// Port map (all loopback): host i listens on base_port + i, the
// hypervisor/coordinator on base_port + n, the client on base_port + n + 1.
#pragma once

#include <cstdint>
#include <string>

#include "pss/params.h"

namespace pisces {

struct MpConfig {
  // PSS parameters (pss::Params semantics; validated on parse).
  std::uint32_t n = 7;
  std::uint32_t t = 1;
  std::uint32_t l = 2;
  std::uint32_t r = 1;
  std::uint32_t field_bits = 256;

  std::uint16_t base_port = 46000;
  std::uint64_t seed = 1;       // root seed; derived per process
  bool encrypt = true;          // per-peer channel encryption on the links
  std::uint64_t heartbeat_ms = 100;   // transport supervision interval
  std::uint64_t deadline_ms = 8000;   // per-RPC bounded-delay deadline
  std::uint64_t restart_backoff_ms = 50;  // supervisor restart pacing
  std::string run_dir = "/tmp/pisces-mp";  // pid files, logs
  std::string hostd = "";  // path to the pisces_hostd binary (launcher only)

  static MpConfig Parse(const std::string& text);
  static MpConfig Load(const std::string& path);
  std::string Format() const;
  void Save(const std::string& path) const;

  // Throws InvalidArgument when the parameters are inconsistent.
  void Validate() const;
  pss::Params ToParams() const;

  std::uint16_t HostPort(std::uint32_t host_id) const;
  std::uint16_t HypervisorPort() const;
  std::uint16_t ClientPort() const;

  // Runtime artifact locations under run_dir.
  std::string PidPath(std::uint32_t host_id) const;
  std::string LogPath(std::uint32_t host_id) const;
};

}  // namespace pisces
