#include "pisces/host.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "math/berlekamp_welch.h"
#include "obs/registry.h"
#include "pisces/byzantine.h"
#include "pss/comm_efficient.h"

namespace pisces {

using field::FpElem;
using net::Message;
using net::MsgType;

namespace {

// Detection-side counters for the active-adversary model. They count causes,
// not strategies: any corrupted input trips them, whether it came from a
// ByzantineActor or from wire-level fault injection.
obs::Counter& VssCheckFailures() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.vss_check_failures",
      "hyperinvertible check rows rejected by verifiers");
  return c;
}
obs::Counter& RecoveryInconsistent() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.recovery_inconsistent",
      "masked-share blocks failing the target consistency check");
  return c;
}
obs::Counter& RecoverySharesCorrected() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.recovery_shares_corrected",
      "wrong masked shares decoded through by the recovery target");
  return c;
}

}  // namespace

Host::Host(HostConfig cfg, net::Transport& transport,
           const crypto::SchnorrGroup& group, Bytes ca_pk)
    : cfg_(std::move(cfg)),
      transport_(transport),
      group_(group),
      ca_pk_(std::move(ca_pk)),
      rng_(cfg_.rng_seed ^ (std::uint64_t{cfg_.id} << 32)),
      shamir_(std::make_shared<pss::PackedShamir>(cfg_.ctx, cfg_.params)),
      store_(*cfg_.ctx) {}

void Host::Boot(std::uint32_t epoch, crypto::HostCert cert, Bytes sk,
                std::span<const std::uint32_t> peers) {
  Require(cert.host_id == cfg_.id, "Host::Boot: cert for a different host");
  Require(crypto::CertAuthority::VerifyCert(group_, ca_pk_, cert),
          "Host::Boot: cert does not verify against the CA");
  online_ = true;
  epoch_ = epoch;
  my_cert_ = std::move(cert);
  sk_ = std::move(sk);
  refresh_.clear();
  survivor_.clear();
  target_.clear();
  pending_.clear();
  channels_.clear();
  failed_refresh_.clear();
  refresh_started_.clear();
  recovery_started_.clear();
  // Broadcast the hypervisor-signed key so peers accept this host back into
  // the network (paper SectionIV-A "Secure Reboot").
  for (std::uint32_t peer : peers) {
    if (peer == cfg_.id) continue;
    Message m;
    m.from = cfg_.id;
    m.to = peer;
    m.type = MsgType::kHostCert;
    m.epoch = epoch_;
    m.payload = my_cert_.Serialize();
    SendMetered(std::move(m), metrics_.recover);
  }
}

void Host::Shutdown() {
  online_ = false;
  // Secure disassociation: nothing from this incarnation survives.
  store_.WipeAll();
  sk_.clear();
  my_cert_ = crypto::HostCert{};
  peer_certs_.clear();
  channels_.clear();
  refresh_.clear();
  survivor_.clear();
  target_.clear();
  pending_.clear();
  failed_refresh_.clear();
  refresh_started_.clear();
  recovery_started_.clear();
}

void Host::InstallPeerCert(const crypto::HostCert& cert) {
  Require(crypto::CertAuthority::VerifyCert(group_, ca_pk_, cert),
          "Host::InstallPeerCert: bad cert");
  auto it = peer_certs_.find(cert.host_id);
  if (it != peer_certs_.end() && it->second.epoch > cert.epoch) return;
  peer_certs_[cert.host_id] = cert;
  channels_.erase(cert.host_id);  // rebuild with the new epoch keys
}

crypto::SecureChannel& Host::ChannelTo(std::uint32_t peer) {
  auto cert_it = peer_certs_.find(peer);
  Require(cert_it != peer_certs_.end(),
          "Host: no cert for peer (reboot announcement lost?)");
  const crypto::HostCert& pc = cert_it->second;
  const bool i_am_lo = cfg_.id < peer;
  const std::uint32_t lo_epoch = i_am_lo ? epoch_ : pc.epoch;
  const std::uint32_t hi_epoch = i_am_lo ? pc.epoch : epoch_;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(lo_epoch) << 32) | hi_epoch;
  auto it = channels_.find(peer);
  if (it == channels_.end() || it->second.epoch_pair != pair) {
    crypto::SecureChannel ch = crypto::MakeChannel(
        group_, sk_, pc.host_pk, (lo_epoch << 16) ^ hi_epoch, cfg_.id, peer);
    it = channels_.insert_or_assign(peer, CachedChannel{pair, std::move(ch)})
             .first;
  }
  return it->second.channel;
}

Bytes Host::SealFor(std::uint32_t peer, std::span<const std::uint8_t> pt) {
  if (!cfg_.encrypt_links) return Bytes(pt.begin(), pt.end());
  return ChannelTo(peer).Seal(pt);
}

Bytes Host::OpenFrom(std::uint32_t peer, std::span<const std::uint8_t> ct) {
  if (!cfg_.encrypt_links) return Bytes(ct.begin(), ct.end());
  auto pt = ChannelTo(peer).Open(ct);
  if (!pt) throw ParseError("Host: channel authentication failed");
  return std::move(*pt);
}

void Host::SendMetered(Message msg, PhaseMetrics& bucket) {
  bucket.msgs_sent += 1;
  bucket.bytes_sent += msg.WireSize();
  transport_.Send(std::move(msg));
}

void Host::ReportPhaseDone(std::uint64_t file_id, std::uint32_t epoch,
                           std::uint32_t kind, bool ok, PhaseMetrics& bucket,
                           const std::vector<std::uint32_t>& accused) {
  Message m;
  m.from = cfg_.id;
  m.to = net::kHypervisorId;
  m.type = MsgType::kPhaseDone;
  m.file_id = file_id;
  m.epoch = epoch;
  m.row = kind;
  if (accused.empty()) {
    m.payload = Bytes{static_cast<std::uint8_t>(ok ? 1 : 0)};
  } else {
    // Dispute report: ok byte, then the survivors whose masked shares the
    // robust decode rejected. Only non-empty lists change the wire format.
    ByteWriter w;
    w.U8(ok ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(accused.size()));
    for (std::uint32_t id : accused) w.U32(id);
    m.payload = w.bytes();
  }
  SendMetered(std::move(m), bucket);
}

void Host::HandleMessage(const Message& msg) {
  if (!online_) return;
  try {
    switch (msg.type) {
      case MsgType::kSetShares: OnSetShares(msg); break;
      case MsgType::kReconstructRequest: OnReconstructRequest(msg); break;
      case MsgType::kDeleteFile: OnDeleteFile(msg); break;
      case MsgType::kStartRefresh: OnStartRefresh(msg); break;
      case MsgType::kStartRecovery: OnStartRecovery(msg); break;
      case MsgType::kHostCert: OnHostCert(msg); break;
      case MsgType::kVerdict: OnVerdictPlain(msg); break;
      case MsgType::kDeal:
      case MsgType::kCheckShare:
      case MsgType::kMaskedShare: {
        // Decrypt immediately: channel counters advance in receive order, so
        // deferring decryption of buffered messages would break replay
        // protection. Everything downstream sees plaintext payloads.
        Message plain = msg;
        plain.payload = OpenFrom(msg.from, msg.payload);
        if (msg.type == MsgType::kDeal) {
          OnDealPlain(plain);
        } else if (msg.type == MsgType::kCheckShare) {
          OnCheckSharePlain(plain);
        } else {
          OnMaskedSharePlain(plain);
        }
        break;
      }
      case MsgType::kShareResponse:
      case MsgType::kPhaseDone:
      // Process-lifecycle control is handled by the HostProcess wrapper (a
      // bare in-process Host has no process to manage); reaching here means a
      // peer sent control traffic to the wrong layer.
      case MsgType::kBootHost:
      case MsgType::kHaltHost:
      case MsgType::kStatusRequest:
      case MsgType::kStatusReport:
      case MsgType::kAbortStuck:
      // Serving frames terminate at a ServingGateway, never at a host.
      case MsgType::kServingRequest:
      case MsgType::kServingResponse:
        LogWarn() << "host " << cfg_.id << ": unexpected " << msg.Describe();
        break;
    }
  } catch (const ParseError& e) {
    LogWarn() << "host " << cfg_.id << ": dropping message (" << e.what()
              << "): " << msg.Describe();
  } catch (const InvalidArgument& e) {
    // Malformed or unauthorized input (unknown peer, bad sizes): drop it.
    // InternalError is deliberately NOT caught -- invariant violations are
    // bugs and must surface.
    LogWarn() << "host " << cfg_.id << ": rejecting message (" << e.what()
              << "): " << msg.Describe();
  }
}

void Host::OnHostCert(const Message& msg) {
  crypto::HostCert cert = crypto::HostCert::Deserialize(msg.payload);
  if (cert.host_id != msg.from) {
    LogWarn() << "host " << cfg_.id << ": cert/id mismatch from " << msg.from;
    return;
  }
  if (!crypto::CertAuthority::VerifyCert(group_, ca_pk_, cert)) {
    LogWarn() << "host " << cfg_.id << ": rejecting unsigned cert from "
              << msg.from;
    return;
  }
  InstallPeerCert(cert);
}

// ---------------------------------------------------------------------------
// Client-facing plane (Fig 5 events "Set" and "Reconstruct")
// ---------------------------------------------------------------------------

void Host::OnSetShares(const Message& msg) {
  FileMeta meta;
  {
    ComputeSection section(metrics_.serve, obs::SpanKind::kServe, cfg_.id,
                           msg.file_id);
    Bytes pt = OpenFrom(msg.from, msg.payload);
    ByteReader r(pt);
    meta = FileMeta::Deserialize(r.Blob());
    std::vector<FpElem> shares =
        field::DeserializeElems(*cfg_.ctx, r.Raw(r.Remaining()));
    Require(shares.size() == meta.num_blocks, "SetShares: wrong share count");
    store_.Put(meta, std::move(shares));
  }

  Message ack;
  ack.from = cfg_.id;
  ack.to = msg.from;
  ack.type = MsgType::kPhaseDone;
  ack.file_id = meta.file_id;
  ack.epoch = epoch_;
  ack.row = 2;  // set-ack
  ack.payload = Bytes{1};
  SendMetered(std::move(ack), metrics_.serve);
}

void Host::OnReconstructRequest(const Message& msg) {
  if (!store_.Has(msg.file_id)) {
    Message nak;
    nak.from = cfg_.id;
    nak.to = msg.from;
    nak.type = MsgType::kPhaseDone;
    nak.file_id = msg.file_id;
    nak.row = 3;  // reconstruct-nak
    nak.payload = Bytes{0};
    SendMetered(std::move(nak), metrics_.serve);
    return;
  }
  // Empty payload = classic full-share read (wire bytes unchanged).
  // Non-empty = staircase descriptor {contact index, contacts, need}: serve
  // only the blocks this host's contact index covers (docs/bandwidth.md).
  bool striped = false;
  std::vector<std::size_t> assigned;
  if (!msg.payload.empty()) {
    ByteReader r(msg.payload);
    const std::uint32_t index = r.U32();
    const std::uint32_t contacts = r.U32();
    const std::uint32_t need = r.U32();
    Require(r.AtEnd(), "ReconstructRequest: trailing bytes");
    Require(need == cfg_.params.degree() + 1,
            "ReconstructRequest: need must be degree+1");
    Require(contacts <= cfg_.params.n && index < contacts,
            "ReconstructRequest: bad contact window");
    const pss::StripeLayout layout(contacts, need);
    assigned = layout.BlocksFor(index, store_.MetaOf(msg.file_id).num_blocks);
    striped = true;
  }

  Bytes sealed;
  {
    ComputeSection section(metrics_.serve, obs::SpanKind::kServe, cfg_.id,
                           msg.file_id);
    const FileMeta& meta = store_.MetaOf(msg.file_id);
    std::vector<FpElem>& shares = store_.Load(msg.file_id);
    ByteWriter w;
    w.Blob(meta.Serialize());
    std::vector<FpElem> served;
    if (striped) {
      served.reserve(assigned.size());
      for (std::size_t b : assigned) served.push_back(shares[b]);
    } else {
      served = shares;
    }
    if (byz_ != nullptr) {
      // Wrong-share attack on client reconstruction: lie on the wire while
      // the stored shares stay honest (the mobile adversary corrupts and
      // leaves; it does not get to rot the store beyond the decode radius).
      byz_->TamperShares(served);
    }
    w.Raw(field::SerializeElems(*cfg_.ctx, served));
    sealed = SealFor(msg.from, w.bytes());
    store_.Stash(msg.file_id);
  }

  Message resp;
  resp.from = cfg_.id;
  resp.to = msg.from;
  resp.type = MsgType::kShareResponse;
  resp.file_id = msg.file_id;
  resp.epoch = epoch_;
  resp.row = striped ? 1 : 0;  // stripe vs full share vector
  resp.payload = std::move(sealed);
  SendMetered(std::move(resp), metrics_.serve);
}

void Host::OnDeleteFile(const Message& msg) {
  // Destructive request: must open on an authenticated channel and the inner
  // file id must match the header (prevents splicing a sealed delete onto a
  // different file). Unknown senders throw and are dropped upstream.
  Bytes pt = OpenFrom(msg.from, msg.payload);
  ByteReader r(pt);
  std::uint64_t confirmed = r.U64();
  Require(confirmed == msg.file_id, "DeleteFile: id mismatch");
  store_.Delete(msg.file_id);
}

// ---------------------------------------------------------------------------
// Refresh (rerandomization)
// ---------------------------------------------------------------------------

void Host::OnStartRefresh(const Message& msg) {
  // Control plane: only the hypervisor may start update phases (in a real
  // CSP this arrives over the privileged management channel).
  Require(msg.from == net::kHypervisorId,
          "StartRefresh: not from the hypervisor");
  const RefreshKey key{msg.file_id, msg.epoch};
  // Start-once: a duplicated (fault-injected) control message must not
  // resurrect a session that already ran and completed under this key.
  if (!refresh_started_.insert(key).second) return;

  // Empty payload means "all n hosts" (the original protocol); otherwise the
  // hypervisor names the agreed participant set for a dealer-exclusion round.
  std::vector<std::uint32_t> participants;
  if (msg.payload.empty()) {
    participants.resize(cfg_.params.n);
    for (std::uint32_t i = 0; i < cfg_.params.n; ++i) participants[i] = i;
  } else {
    ByteReader r(msg.payload);
    const std::uint32_t count = r.U32();
    participants.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) participants.push_back(r.U32());
  }
  const bool i_participate =
      std::find(participants.begin(), participants.end(), cfg_.id) !=
      participants.end();
  if (!i_participate) return;  // excluded this round; shares refresh without us

  if (!store_.Has(msg.file_id)) {
    ReportPhaseDone(msg.file_id, msg.epoch, 0, true, metrics_.rerandomize);
    return;
  }
  const FileMeta& meta = store_.MetaOf(msg.file_id);

  RefreshSession s;
  std::vector<std::vector<FpElem>> deal;
  {
    ComputeSection section(metrics_.rerandomize, obs::SpanKind::kRefreshDeal,
                           cfg_.id, msg.file_id);
    s.plan = pss::RefreshPlan::For(meta.num_blocks, cfg_.params,
                                   participants.size());
    s.batch.emplace(pss::MakeRefreshBatch(*shamir_, meta.num_blocks,
                                          participants));
    s.deals_by_dealer.resize(participants.size());
    s.deal_seen.assign(participants.size(), false);
    if (participants.size() < cfg_.params.n) {
      metrics_.faults.deals_excluded += cfg_.params.n - participants.size();
    }
    // The optional tamper hook is the dealer-side attack seam (equivocation,
    // corrupted zero-sharings); nullptr on honest hosts.
    deal = s.batch->Deal(rng_, section.extra(), byz_);
  }

  auto [it, inserted] = refresh_.emplace(key, std::move(s));
  RefreshSession& session = it->second;

  for (std::size_t k = 0; k < participants.size(); ++k) {
    const std::uint32_t holder = participants[k];
    if (holder == cfg_.id) continue;
    if (byz_ != nullptr && byz_->WithholdSend()) continue;
    Message m;
    m.from = cfg_.id;
    m.to = holder;
    m.type = MsgType::kDeal;
    m.file_id = msg.file_id;
    m.epoch = msg.epoch;
    m.row = kRefreshMarker;
    m.payload = SealFor(holder, field::SerializeElems(*cfg_.ctx, deal[k]));
    SendMetered(std::move(m), metrics_.rerandomize);
  }
  // Self-deal, delivered locally.
  const std::size_t my_idx = session.batch->IndexOf(cfg_.id);
  Invariant(my_idx != pss::VssBatch::npos, "participant not in own batch");
  session.deals_by_dealer[my_idx] = std::move(deal[my_idx]);
  session.deal_seen[my_idx] = true;
  session.deals += 1;
  if (session.deals == session.batch->dealers()) {
    RefreshTransformAndCheck(key, session);
  }
  ReplayPending();
}

void Host::OnDealPlain(const Message& msg) {
  if (msg.row == kRefreshMarker) {
    const RefreshKey key{msg.file_id, msg.epoch};
    auto it = refresh_.find(key);
    if (it == refresh_.end()) {
      pending_.push_back(msg);
      return;
    }
    RefreshSession& s = it->second;
    std::vector<FpElem> elems = field::DeserializeElems(*cfg_.ctx, msg.payload);
    const std::size_t idx = s.batch->IndexOf(msg.from);
    Require(idx != pss::VssBatch::npos, "OnDeal: dealer not a participant");
    Require(elems.size() == s.batch->groups(), "OnDeal: wrong group count");
    if (s.deal_seen[idx]) return;  // duplicate
    s.deals_by_dealer[idx] = std::move(elems);
    s.deal_seen[idx] = true;
    s.deals += 1;
    if (s.deals == s.batch->dealers()) RefreshTransformAndCheck(key, s);
    return;
  }

  // Recovery deal toward target msg.row.
  const SurvivorKey key{msg.file_id, msg.epoch, msg.row};
  auto it = survivor_.find(key);
  if (it == survivor_.end()) {
    pending_.push_back(msg);
    return;
  }
  SurvivorSession& s = it->second;
  std::vector<FpElem> elems = field::DeserializeElems(*cfg_.ctx, msg.payload);
  std::size_t idx = s.batch->IndexOf(msg.from);
  Require(idx != pss::VssBatch::npos, "OnDeal: dealer not a survivor");
  Require(elems.size() == s.batch->groups(), "OnDeal: wrong group count");
  if (s.deal_seen[idx]) return;
  s.deals_by_dealer[idx] = std::move(elems);
  s.deal_seen[idx] = true;
  s.deals += 1;
  if (s.deals == s.plan.survivors.size()) SurvivorTransformAndCheck(key, s);
}

void Host::RefreshTransformAndCheck(RefreshKey key, RefreshSession& s) {
  {
    ComputeSection section(metrics_.rerandomize,
                           obs::SpanKind::kRefreshTransform, cfg_.id,
                           key.first);
    s.outputs =
        s.batch->Transform(s.deals_by_dealer, cfg_.params.b, section.extra());
  }
  // deals_by_dealer is deliberately kept: if verification fails, the raw
  // columns are archived so the hypervisor can attribute the corrupt dealer.

  for (std::uint32_t a = 0; a < s.batch->check_rows(); ++a) {
    std::uint32_t verifier = s.batch->VerifierOf(a);
    Message m;
    m.from = cfg_.id;
    m.to = verifier;
    m.type = MsgType::kCheckShare;
    m.file_id = key.first;
    m.epoch = key.second;
    m.row = a;
    m.batch = kRefreshMarker;
    if (verifier == cfg_.id) {
      m.payload = field::SerializeElems(*cfg_.ctx, s.outputs[a]);
      OnCheckSharePlain(m);
      // The local hand-off may have completed (and erased) this session.
      if (refresh_.find(key) == refresh_.end()) return;
    } else {
      m.payload =
          SealFor(verifier, field::SerializeElems(*cfg_.ctx, s.outputs[a]));
      SendMetered(std::move(m), metrics_.rerandomize);
    }
  }
}

void Host::OnCheckSharePlain(const Message& msg) {
  if (msg.batch == kRefreshMarker) {
    const RefreshKey key{msg.file_id, msg.epoch};
    auto it = refresh_.find(key);
    if (it == refresh_.end()) {
      pending_.push_back(msg);
      return;
    }
    RefreshSession& s = it->second;
    std::vector<FpElem> elems = field::DeserializeElems(*cfg_.ctx, msg.payload);
    auto& mat = s.check_vals[msg.row];
    if (mat.empty()) mat.resize(s.batch->dealers());
    std::size_t idx = s.batch->IndexOf(msg.from);
    Require(idx != pss::VssBatch::npos, "OnCheckShare: unknown holder");
    if (!mat[idx].empty()) return;  // duplicate
    Require(elems.size() == s.batch->groups(), "OnCheckShare: group mismatch");
    mat[idx] = std::move(elems);
    s.check_counts[msg.row] += 1;
    if (s.check_counts[msg.row] == s.batch->dealers()) {
      MaybeVerifyRefreshRow(key, s, msg.row);
    }
    return;
  }

  const SurvivorKey key{msg.file_id, msg.epoch, msg.batch};
  auto it = survivor_.find(key);
  if (it == survivor_.end()) {
    pending_.push_back(msg);
    return;
  }
  SurvivorSession& s = it->second;
  std::vector<FpElem> elems = field::DeserializeElems(*cfg_.ctx, msg.payload);
  auto& mat = s.check_vals[msg.row];
  if (mat.empty()) mat.resize(s.plan.survivors.size());
  std::size_t idx = s.batch->IndexOf(msg.from);
  Require(idx != pss::VssBatch::npos, "OnCheckShare: unknown survivor");
  if (!mat[idx].empty()) return;
  Require(elems.size() == s.batch->groups(), "OnCheckShare: group mismatch");
  mat[idx] = std::move(elems);
  s.check_counts[msg.row] += 1;
  if (s.check_counts[msg.row] == s.plan.survivors.size()) {
    MaybeVerifySurvivorRow(key, s, msg.row);
  }
}

namespace {
// Shared verification: per-holder group vectors -> all groups well formed.
bool VerifyRow(const pss::VssBatch& batch,
               const std::vector<std::vector<FpElem>>& mat,
               const field::FpCtx& ctx) {
  obs::Span span(obs::SpanKind::kVssVerify, mat.size(), batch.groups());
  for (std::size_t g = 0; g < batch.groups(); ++g) {
    std::vector<FpElem> column(mat.size(), ctx.Zero());
    for (std::size_t k = 0; k < mat.size(); ++k) column[k] = mat[k][g];
    if (!batch.VerifyCheckVector(column)) return false;
  }
  return true;
}
}  // namespace

void Host::MaybeVerifyRefreshRow(RefreshKey key, RefreshSession& s,
                                 std::uint32_t row) {
  bool ok;
  {
    ComputeSection section(metrics_.rerandomize, obs::SpanKind::kRefreshVerify,
                           cfg_.id, row);
    ok = VerifyRow(*s.batch, s.check_vals[row], *cfg_.ctx);
  }
  s.check_vals.erase(row);
  if (!ok) {
    verdicts_rejected_ += 1;
    VssCheckFailures().Add(1);
    obs::Span span(obs::SpanKind::kByzDetect, cfg_.id, row);
  }

  // Deliver to every other holder first: our own verdict may complete (and
  // erase) the session, and peers still need this row's verdict.
  for (std::uint32_t holder : s.batch->holders()) {
    if (holder == cfg_.id) continue;
    Message m;
    m.from = cfg_.id;
    m.to = holder;
    m.type = MsgType::kVerdict;
    m.file_id = key.first;
    m.epoch = key.second;
    m.row = row;
    m.batch = kRefreshMarker;
    m.payload = Bytes{static_cast<std::uint8_t>(ok ? 1 : 0)};
    SendMetered(std::move(m), metrics_.rerandomize);
  }
  AcceptRefreshVerdict(key, s, row, ok);
}

void Host::OnVerdictPlain(const Message& msg) {
  const bool ok = !msg.payload.empty() && msg.payload[0] == 1;
  if (msg.batch == kRefreshMarker) {
    const RefreshKey key{msg.file_id, msg.epoch};
    auto it = refresh_.find(key);
    if (it == refresh_.end()) {
      pending_.push_back(msg);
      return;
    }
    AcceptRefreshVerdict(key, it->second, msg.row, ok);
    return;
  }
  const SurvivorKey key{msg.file_id, msg.epoch, msg.batch};
  auto it = survivor_.find(key);
  if (it == survivor_.end()) {
    pending_.push_back(msg);
    return;
  }
  AcceptSurvivorVerdict(key, it->second, msg.row, ok);
}

void Host::AcceptRefreshVerdict(RefreshKey key, RefreshSession& s,
                                std::uint32_t row, bool ok) {
  if (!ok) s.failed = true;
  s.verdict_rows.insert(row);
  if (s.verdict_rows.size() == s.batch->check_rows()) MaybeApplyRefresh(key, s);
}

void Host::MaybeApplyRefresh(RefreshKey key, RefreshSession& s) {
  if (s.done) return;
  s.done = true;
  bool ok = !s.failed;
  if (!ok) {
    // Archive the raw dealing columns: the hypervisor cross-references them
    // across hosts to attribute which dealer's polynomials were malformed.
    FailedRefresh fr;
    fr.participants = s.batch->holders();
    fr.deals_by_dealer = std::move(s.deals_by_dealer);
    fr.deal_seen = std::move(s.deal_seen);
    failed_refresh_[key] = std::move(fr);
  }
  if (ok) {
    ComputeSection section(metrics_.rerandomize, obs::SpanKind::kRefreshApply,
                           cfg_.id, key.first);
    std::vector<FpElem>& shares = store_.Load(key.first);
    const std::size_t base = s.batch->check_rows();
    for (std::size_t g = 0; g < s.batch->groups(); ++g) {
      for (std::size_t a_rel = 0; a_rel < s.batch->usable_rows(); ++a_rel) {
        auto blk = s.plan.BlockFor(a_rel, g);
        if (!blk) continue;
        shares[*blk] = cfg_.ctx->Add(shares[*blk], s.outputs[base + a_rel][g]);
      }
    }
    // Stash persists the new shares and destroys the old serialized copy:
    // the proactive "delete old shares" step.
    store_.Stash(key.first);
  }
  ReportPhaseDone(key.first, key.second, 0, ok, metrics_.rerandomize);
  refresh_.erase(key);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void Host::OnStartRecovery(const Message& msg) {
  Require(msg.from == net::kHypervisorId,
          "StartRecovery: not from the hypervisor");
  ByteReader r(msg.payload);
  FileMeta meta = FileMeta::Deserialize(r.Blob());
  std::uint32_t count = r.U32();
  std::vector<std::uint32_t> targets;
  targets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) targets.push_back(r.U32());

  // Start-once per (file, seq): duplicated control messages are ignored.
  if (!recovery_started_.insert({meta.file_id, msg.epoch}).second) return;

  // Optional trailing survivor list: the hypervisor restricts dealing to
  // hosts that are reachable and hold consistent shares. Absent (legacy
  // format) means every non-target host.
  pss::RecoveryPlan plan;
  if (r.Remaining() >= 4) {
    std::uint32_t scount = r.U32();
    std::vector<std::uint32_t> available;
    available.reserve(scount + targets.size());
    for (std::uint32_t i = 0; i < scount; ++i) available.push_back(r.U32());
    // Targets are implicitly "available" for plan construction (they are
    // filtered out of the survivor set again inside For).
    available.insert(available.end(), targets.begin(), targets.end());
    plan = pss::RecoveryPlan::For(meta.num_blocks, cfg_.params, targets,
                                  available);
  } else {
    plan = pss::RecoveryPlan::For(meta.num_blocks, cfg_.params, targets);
  }

  // Optional trailing repair-mode section (after the survivor list): mode
  // byte 1 = reduced masking with a per-block point budget, so survivors
  // stripe their masked vectors instead of each shipping all blocks.
  // Absent (legacy / retry format) means full masked vectors.
  std::size_t mask_budget = 0;
  if (r.Remaining() >= 5) {
    const std::uint8_t mode = r.U8();
    const std::uint32_t budget = r.U32();
    Require(mode <= 1, "StartRecovery: unknown repair mode");
    if (mode == 1) {
      Require(budget >= cfg_.params.degree() + 1 &&
                  budget <= plan.survivors.size(),
              "StartRecovery: repair budget out of range");
      if (budget < plan.survivors.size()) mask_budget = budget;
    }
  }

  const bool i_am_target =
      std::find(targets.begin(), targets.end(), cfg_.id) != targets.end();
  if (i_am_target) {
    TargetSession s;
    s.meta = meta;
    s.plan = plan;
    s.mask_budget = mask_budget;
    target_[{meta.file_id, msg.epoch}] = std::move(s);
    ReplayPending();
    return;
  }

  const bool i_survive =
      std::find(plan.survivors.begin(), plan.survivors.end(), cfg_.id) !=
      plan.survivors.end();
  if (!i_survive) return;  // not in the dealing set this round

  // Survivor: one sub-session per target, all sharing this plan.
  for (std::uint32_t target : targets) {
    const SurvivorKey key{meta.file_id, msg.epoch, target};
    Require(survivor_.find(key) == survivor_.end(),
            "OnStartRecovery: duplicate session");
    SurvivorSession s;
    std::vector<std::vector<FpElem>> deal;
    {
      ComputeSection section(metrics_.recover, obs::SpanKind::kRecoverDeal,
                             cfg_.id, target);
      s.plan = plan;
      s.target = target;
      s.mask_budget = mask_budget;
      s.batch.emplace(pss::MakeRecoveryBatch(*shamir_, plan, target));
      s.deals_by_dealer.resize(plan.survivors.size());
      s.deal_seen.assign(plan.survivors.size(), false);
      deal = s.batch->Deal(rng_, section.extra());
    }

    auto [it, inserted] = survivor_.emplace(key, std::move(s));
    SurvivorSession& session = it->second;

    const std::size_t my_idx = session.batch->IndexOf(cfg_.id);
    Invariant(my_idx != pss::VssBatch::npos, "survivor not in own batch");
    for (std::size_t k = 0; k < plan.survivors.size(); ++k) {
      std::uint32_t holder = plan.survivors[k];
      if (holder == cfg_.id) continue;
      if (byz_ != nullptr && byz_->WithholdSend()) continue;
      Message m;
      m.from = cfg_.id;
      m.to = holder;
      m.type = MsgType::kDeal;
      m.file_id = meta.file_id;
      m.epoch = msg.epoch;
      m.row = target;
      m.payload = SealFor(holder, field::SerializeElems(*cfg_.ctx, deal[k]));
      SendMetered(std::move(m), metrics_.recover);
    }
    session.deals_by_dealer[my_idx] = std::move(deal[my_idx]);
    session.deal_seen[my_idx] = true;
    session.deals += 1;
    if (session.deals == plan.survivors.size()) {
      SurvivorTransformAndCheck(key, session);
    }
  }
  ReplayPending();
}

void Host::SurvivorTransformAndCheck(SurvivorKey key, SurvivorSession& s) {
  {
    ComputeSection section(metrics_.recover,
                           obs::SpanKind::kRecoverTransform, cfg_.id,
                           std::get<2>(key));
    s.outputs =
        s.batch->Transform(s.deals_by_dealer, cfg_.params.b, section.extra());
  }
  s.deals_by_dealer.clear();
  s.deals_by_dealer.shrink_to_fit();

  for (std::uint32_t a = 0; a < s.batch->check_rows(); ++a) {
    std::uint32_t verifier = s.batch->VerifierOf(a);
    Message m;
    m.from = cfg_.id;
    m.to = verifier;
    m.type = MsgType::kCheckShare;
    m.file_id = std::get<0>(key);
    m.epoch = std::get<1>(key);
    m.row = a;
    m.batch = std::get<2>(key);  // target id
    if (verifier == cfg_.id) {
      m.payload = field::SerializeElems(*cfg_.ctx, s.outputs[a]);
      OnCheckSharePlain(m);
      // The local hand-off may have completed (and erased) this session.
      if (survivor_.find(key) == survivor_.end()) return;
    } else {
      m.payload =
          SealFor(verifier, field::SerializeElems(*cfg_.ctx, s.outputs[a]));
      SendMetered(std::move(m), metrics_.recover);
    }
  }
}

void Host::MaybeVerifySurvivorRow(SurvivorKey key, SurvivorSession& s,
                                  std::uint32_t row) {
  bool ok;
  {
    ComputeSection section(metrics_.recover, obs::SpanKind::kRecoverVerify,
                           cfg_.id, row);
    ok = VerifyRow(*s.batch, s.check_vals[row], *cfg_.ctx);
  }
  s.check_vals.erase(row);
  if (!ok) {
    verdicts_rejected_ += 1;
    VssCheckFailures().Add(1);
    obs::Span span(obs::SpanKind::kByzDetect, cfg_.id, row);
  }

  // Deliver to every other survivor first: our own verdict may complete (and
  // erase) the session, and peers still need this row's verdict.
  for (std::uint32_t holder : s.plan.survivors) {
    if (holder == cfg_.id) continue;
    Message m;
    m.from = cfg_.id;
    m.to = holder;
    m.type = MsgType::kVerdict;
    m.file_id = std::get<0>(key);
    m.epoch = std::get<1>(key);
    m.row = row;
    m.batch = std::get<2>(key);
    m.payload = Bytes{static_cast<std::uint8_t>(ok ? 1 : 0)};
    SendMetered(std::move(m), metrics_.recover);
  }
  AcceptSurvivorVerdict(key, s, row, ok);
}

void Host::AcceptSurvivorVerdict(SurvivorKey key, SurvivorSession& s,
                                 std::uint32_t row, bool ok) {
  if (!ok) s.failed = true;
  s.verdict_rows.insert(row);
  if (s.verdict_rows.size() == s.batch->check_rows()) {
    MaybeSendMaskedShares(key, s);
  }
}

void Host::MaybeSendMaskedShares(SurvivorKey key, SurvivorSession& s) {
  if (s.done) return;
  s.done = true;
  const std::uint64_t file_id = std::get<0>(key);
  const std::uint32_t epoch = std::get<1>(key);
  const std::uint32_t target = std::get<2>(key);
  if (s.failed) {
    ReportPhaseDone(file_id, epoch, 1, false, metrics_.recover);
    survivor_.erase(key);
    return;
  }

  Bytes sealed;
  {
    ComputeSection section(metrics_.recover, obs::SpanKind::kRecoverMask,
                           cfg_.id, target);
    std::vector<FpElem>& shares = store_.Load(file_id);
    const std::size_t base = s.batch->check_rows();
    // Reduced mode: ship only the stripe this survivor's rank covers (the
    // target needs just `budget` points per block); classic mode masks and
    // ships every block.
    std::vector<std::size_t> blocks_to_send;
    if (s.mask_budget > 0) {
      const std::size_t rank =
          static_cast<std::size_t>(std::find(s.plan.survivors.begin(),
                                             s.plan.survivors.end(), cfg_.id) -
                                   s.plan.survivors.begin());
      const pss::StripeLayout layout(s.plan.survivors.size(), s.mask_budget);
      blocks_to_send = layout.BlocksFor(rank, s.plan.blocks);
    } else {
      blocks_to_send.resize(s.plan.blocks);
      for (std::size_t blk = 0; blk < s.plan.blocks; ++blk) {
        blocks_to_send[blk] = blk;
      }
    }
    std::vector<FpElem> masked(blocks_to_send.size(), cfg_.ctx->Zero());
    for (std::size_t i = 0; i < blocks_to_send.size(); ++i) {
      const std::size_t blk = blocks_to_send[i];
      std::size_t g = blk / s.plan.usable;
      std::size_t a_rel = blk % s.plan.usable;
      masked[i] = cfg_.ctx->Add(shares[blk], s.outputs[base + a_rel][g]);
    }
    store_.Stash(file_id);
    // Wrong-share attack on recovery: the target's consistency check and
    // robust decode are responsible for catching this.
    if (byz_ != nullptr) byz_->TamperShares(masked);
    sealed = SealFor(target, field::SerializeElems(*cfg_.ctx, masked));
  }

  if (byz_ != nullptr && byz_->WithholdSend()) {
    survivor_.erase(key);
    return;
  }
  Message m;
  m.from = cfg_.id;
  m.to = target;
  m.type = MsgType::kMaskedShare;
  m.file_id = file_id;
  m.epoch = epoch;
  m.row = target;
  m.payload = std::move(sealed);
  SendMetered(std::move(m), metrics_.recover);
  survivor_.erase(key);
}

void Host::OnMaskedSharePlain(const Message& msg) {
  auto it = target_.find({msg.file_id, msg.epoch});
  if (it == target_.end()) {
    pending_.push_back(msg);
    return;
  }
  TargetSession& s = it->second;
  std::vector<FpElem> elems;
  {
    ComputeSection section(metrics_.recover, obs::SpanKind::kRecoverMask,
                           cfg_.id, msg.from);
    elems = field::DeserializeElems(*cfg_.ctx, msg.payload);
  }
  const auto sender_it =
      std::find(s.plan.survivors.begin(), s.plan.survivors.end(), msg.from);
  Require(sender_it != s.plan.survivors.end(),
          "MaskedShare: sender is not a survivor");
  std::size_t expected = s.meta.num_blocks;
  if (s.mask_budget > 0) {
    const pss::StripeLayout layout(s.plan.survivors.size(), s.mask_budget);
    expected = layout.CountFor(
        static_cast<std::size_t>(sender_it - s.plan.survivors.begin()),
        s.meta.num_blocks);
  }
  Require(elems.size() == expected, "MaskedShare: wrong block count");
  if (!s.masked_by_sender.emplace(msg.from, std::move(elems)).second) return;
  if (s.masked_by_sender.size() == s.plan.survivors.size()) {
    MaybeFinishTarget(msg.file_id, msg.epoch, s);
    target_.erase({msg.file_id, msg.epoch});
  }
}

void Host::MaybeFinishTarget(std::uint64_t file_id, std::uint32_t seq,
                             TargetSession& s) {
  ComputeSection section(metrics_.recover, obs::SpanKind::kRecoverFinish,
                         cfg_.id, file_id);
  const std::size_t d = cfg_.params.degree();
  const FpElem alpha_me = shamir_->points().alpha(cfg_.id);
  bool ok = true;
  std::set<std::uint32_t> accused_set;
  std::vector<FpElem> shares(s.meta.num_blocks, cfg_.ctx->Zero());

  if (s.mask_budget > 0) {
    // Reduced repair: each survivor shipped only its stripe, so each block
    // interpolates from exactly `budget` points. Blocks with the same
    // residue mod |survivors| share a sender set, hence one interpolation
    // system (checker + weights + decode radius) per residue class.
    const std::size_t S = s.plan.survivors.size();
    const pss::StripeLayout layout(S, s.mask_budget);
    std::vector<const std::vector<FpElem>*> rows(S, nullptr);
    for (std::size_t k = 0; k < S; ++k) {
      auto rit = s.masked_by_sender.find(s.plan.survivors[k]);
      Invariant(rit != s.masked_by_sender.end(),
                "MaybeFinishTarget: missing reduced row");
      rows[k] = &rit->second;
    }
    struct ClassInterp {
      std::vector<std::uint32_t> ranks;
      std::vector<FpElem> xs;
      std::optional<math::PointChecker> checker;
      std::vector<FpElem> w;
    };
    const std::size_t classes = std::min<std::size_t>(S, s.meta.num_blocks);
    std::vector<ClassInterp> cls(classes);
    for (std::size_t rc = 0; rc < classes; ++rc) {
      cls[rc].ranks = layout.SendersFor(rc);
      for (std::uint32_t k : cls[rc].ranks) {
        cls[rc].xs.push_back(shamir_->points().alpha(s.plan.survivors[k]));
      }
      cls[rc].checker.emplace(*cfg_.ctx, cls[rc].xs, d);
      cls[rc].w = cls[rc].checker->WeightsAt(alpha_me);
    }
    // The budget's slack over d+1 buys a small decode radius; a corruption
    // beyond it fails the phase and the hypervisor retries in full mode.
    const std::size_t max_errors =
        s.mask_budget > d + 1 ? (s.mask_budget - d - 1) / 2 : 0;
    std::vector<std::size_t> cursor(S, 0);
    std::vector<FpElem> ys(s.mask_budget, cfg_.ctx->Zero());
    for (std::size_t blk = 0; blk < s.meta.num_blocks && ok; ++blk) {
      const ClassInterp& c = cls[blk % S];
      for (std::size_t i = 0; i < c.ranks.size(); ++i) {
        ys[i] = (*rows[c.ranks[i]])[cursor[c.ranks[i]]++];
      }
      if (c.checker->Consistent(ys)) {
        shares[blk] = math::PointChecker::Apply(*cfg_.ctx, c.w, ys);
        continue;
      }
      RecoveryInconsistent().Add(1);
      obs::Span span(obs::SpanKind::kByzDetect, cfg_.id, blk);
      auto f = math::RobustInterpolate(*cfg_.ctx, c.xs, ys, d, max_errors);
      if (!f.has_value()) {
        ok = false;
        break;
      }
      std::vector<std::size_t> bad = math::Mismatches(*cfg_.ctx, *f, c.xs, ys);
      RecoverySharesCorrected().Add(bad.size());
      for (std::size_t b : bad) {
        accused_set.insert(s.plan.survivors[c.ranks[b]]);
      }
      shares[blk] = f->Eval(*cfg_.ctx, alpha_me);
    }
    if (ok) store_.Put(s.meta, std::move(shares));
    std::vector<std::uint32_t> accused(accused_set.begin(), accused_set.end());
    ReportPhaseDone(file_id, seq, 1, ok, metrics_.recover, accused);
    return;
  }

  // Senders arrive keyed by id; the map iterates in ascending order, matching
  // plan.survivors (also ascending).
  std::vector<FpElem> xs;
  std::vector<std::uint32_t> senders;
  std::vector<const std::vector<FpElem>*> rows;
  xs.reserve(s.masked_by_sender.size());
  for (const auto& [sender, elems] : s.masked_by_sender) {
    xs.push_back(shamir_->points().alpha(sender));
    senders.push_back(sender);
    rows.push_back(&elems);
  }
  math::PointChecker checker(*cfg_.ctx, xs, d);
  std::vector<FpElem> w = checker.WeightsAt(alpha_me);
  // Unique-decoding radius of the masked-share code: with all survivors
  // responding and 3t + l < n there is slack for e wrong values per block.
  const std::size_t max_errors = xs.size() > d + 1 ? (xs.size() - d - 1) / 2 : 0;

  std::vector<FpElem> ys(xs.size(), cfg_.ctx->Zero());
  for (std::size_t blk = 0; blk < s.meta.num_blocks; ++blk) {
    for (std::size_t k = 0; k < rows.size(); ++k) ys[k] = (*rows[k])[blk];
    // The masked polynomial f + q has degree <= d; inconsistency means a
    // corrupted survivor (caught here even though verification passed for
    // the masks, since the share component is unverified).
    if (checker.Consistent(ys)) {
      shares[blk] = math::PointChecker::Apply(*cfg_.ctx, w, ys);
      continue;
    }
    // Dispute path: decode through the wrong values with Berlekamp-Welch and
    // accuse the senders whose points the decoded polynomial rejects. The
    // fast path above is byte-identical to the pre-dispute behaviour.
    RecoveryInconsistent().Add(1);
    obs::Span span(obs::SpanKind::kByzDetect, cfg_.id, blk);
    auto f = math::RobustInterpolate(*cfg_.ctx, xs, ys, d, max_errors);
    if (!f.has_value()) {
      // Beyond the decoding radius: fail the phase; the hypervisor retries
      // with a survivor set that excludes the accused/stuck hosts.
      ok = false;
      break;
    }
    std::vector<std::size_t> bad = math::Mismatches(*cfg_.ctx, *f, xs, ys);
    RecoverySharesCorrected().Add(bad.size());
    for (std::size_t b : bad) accused_set.insert(senders[b]);
    shares[blk] = f->Eval(*cfg_.ctx, alpha_me);
  }
  if (ok) store_.Put(s.meta, std::move(shares));
  std::vector<std::uint32_t> accused(accused_set.begin(), accused_set.end());
  ReportPhaseDone(file_id, seq, 1, ok, metrics_.recover, accused);
}

// ---------------------------------------------------------------------------
// Buffering / diagnostics
// ---------------------------------------------------------------------------

void Host::ReplayPending() {
  if (pending_.empty()) return;
  std::vector<Message> queue;
  queue.swap(pending_);
  for (Message& m : queue) {
    // Buffered payloads are already plaintext.
    switch (m.type) {
      case MsgType::kDeal: OnDealPlain(m); break;
      case MsgType::kCheckShare: OnCheckSharePlain(m); break;
      case MsgType::kMaskedShare: OnMaskedSharePlain(m); break;
      case MsgType::kVerdict: OnVerdictPlain(m); break;
      default:
        LogWarn() << "host " << cfg_.id << ": unexpected buffered "
                  << m.Describe();
    }
  }
}

std::vector<Host::StuckRefresh> Host::StuckRefreshSessions() const {
  std::vector<StuckRefresh> out;
  for (const auto& [key, s] : refresh_) {
    StuckRefresh info;
    info.file_id = key.first;
    info.epoch = key.second;
    const auto& holders = s.batch->holders();
    for (std::size_t i = 0; i < holders.size(); ++i) {
      if (i < s.deal_seen.size() && !s.deal_seen[i]) {
        info.missing_dealers.push_back(holders[i]);
      }
    }
    info.waiting_verdicts = info.missing_dealers.empty();
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<Host::StuckRecovery> Host::StuckRecoverySessions() const {
  std::vector<StuckRecovery> out;
  for (const auto& [key, s] : survivor_) {
    StuckRecovery info;
    info.file_id = std::get<0>(key);
    info.epoch = std::get<1>(key);
    info.target = std::get<2>(key);
    if (s.batch.has_value()) {
      const auto& holders = s.batch->holders();
      for (std::size_t i = 0; i < holders.size(); ++i) {
        if (i < s.deal_seen.size() && !s.deal_seen[i]) {
          info.missing_dealers.push_back(holders[i]);
        }
      }
    }
    out.push_back(std::move(info));
  }
  for (const auto& [key, s] : target_) {
    StuckRecovery info;
    info.file_id = key.first;
    info.epoch = key.second;
    info.target = cfg_.id;
    for (std::uint32_t sv : s.plan.survivors) {
      if (s.masked_by_sender.count(sv) == 0) {
        info.missing_senders.push_back(sv);
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<Host::FailedRefresh> Host::TakeFailedRefresh(
    std::uint64_t file_id, std::uint32_t epoch) {
  auto it = failed_refresh_.find({file_id, epoch});
  if (it == failed_refresh_.end()) return std::nullopt;
  FailedRefresh fr = std::move(it->second);
  failed_refresh_.erase(it);
  return fr;
}

std::vector<std::string> Host::AbortStuckSessions() {
  std::vector<std::string> out;
  auto describe = [&](const char* kind, std::uint64_t file,
                      std::uint32_t epoch, std::uint32_t extra) {
    std::ostringstream os;
    os << "host " << cfg_.id << ": stuck " << kind << " file=" << file
       << " epoch=" << epoch << " aux=" << extra;
    out.push_back(os.str());
  };
  for (const auto& [key, s] : refresh_) {
    describe("refresh", key.first, key.second, 0);
  }
  for (const auto& [key, s] : survivor_) {
    describe("recovery-survivor", std::get<0>(key), std::get<1>(key),
             std::get<2>(key));
  }
  for (const auto& [key, s] : target_) {
    describe("recovery-target", key.first, key.second, 0);
  }
  for (const auto& m : pending_) {
    describe("pending-msg", m.file_id, m.epoch, m.row);
  }
  metrics_.faults.timeouts_fired +=
      refresh_.size() + survivor_.size() + target_.size();
  refresh_.clear();
  survivor_.clear();
  target_.clear();
  pending_.clear();
  return out;
}

bool Host::HasActiveSessions() const {
  return !refresh_.empty() || !survivor_.empty() || !target_.empty();
}

std::optional<std::vector<std::vector<field::FpElem>>> Host::ComputeReshare(
    std::uint64_t file_id, const pss::ResharePublic& pub,
    std::size_t ordinal) {
  if (!online_ || !store_.Has(file_id)) return std::nullopt;
  if (byz_ != nullptr && byz_->WithholdSend()) return std::nullopt;
  ComputeSection section(metrics_.rerandomize, obs::SpanKind::kReshareFile,
                         cfg_.id, file_id);
  const std::vector<field::FpElem>& shares = store_.Load(file_id);
  return pss::ReshareContribution(pub, ordinal, shares, rng_, byz_);
}

void Host::AdoptParams(const pss::Params& params) {
  Require(!HasActiveSessions(),
          "Host::AdoptParams: refresh/recovery sessions still active");
  params.Validate();
  Require(params.l == cfg_.params.l,
          "Host::AdoptParams: packing must match (re-pack via the codec)");
  cfg_.params = params;
  shamir_ = std::make_shared<pss::PackedShamir>(cfg_.ctx, cfg_.params);
  // The old-scheme share state is obsolete the moment the fleet reshapes;
  // keeping it would hand a mobile adversary a second, stale sharing to
  // collect. Keys and channels survive: resharing rotates share state, not
  // identities.
  store_.WipeAll();
  pending_.clear();
  failed_refresh_.clear();
  refresh_started_.clear();
  recovery_started_.clear();
}

void Host::InstallShares(const FileMeta& meta,
                         std::vector<field::FpElem> shares) {
  Require(online_, "Host::InstallShares: host is offline");
  Require(shares.size() == meta.num_blocks,
          "Host::InstallShares: share count does not match meta");
  store_.Put(meta, std::move(shares));
}

}  // namespace pisces
