#include "pisces/client.h"

#include "common/log.h"
#include "common/task_pool.h"
#include "obs/registry.h"

namespace pisces {

using field::FpElem;
using net::Message;
using net::MsgType;

namespace {

// Detection-side byz.* counters for client reconstruction: the fast path
// failing its integrity check and the number of share values Berlekamp-Welch
// decoding had to override. Counters are atomic, so per-block bumps from the
// task pool are safe (totals are pool-size invariant; only interleaving is
// not).
obs::Counter& RobustFallbacks() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.client_robust_fallbacks",
      "downloads that fell back to robust (Berlekamp-Welch) reconstruction");
  return c;
}
obs::Counter& ClientSharesCorrected() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.client_shares_corrected",
      "share values overridden by robust decoding during downloads");
  return c;
}
obs::Counter& StaircaseInfeasible() {
  static obs::Counter& c = obs::RegisterCounter(
      "comm.staircase_infeasible",
      "staircase reads degraded to full-share because the contact budget "
      "cannot cover degree+1 senders per block");
  return c;
}

}  // namespace

Client::Client(ClientConfig cfg, net::Transport& transport,
               const crypto::SchnorrGroup& group, Bytes ca_pk,
               crypto::HostCert cert, Bytes sk)
    : cfg_(std::move(cfg)),
      transport_(transport),
      group_(group),
      ca_pk_(std::move(ca_pk)),
      my_cert_(std::move(cert)),
      sk_(std::move(sk)),
      rng_(cfg_.rng_seed ^ 0xC11E47ULL),
      shamir_(std::make_shared<pss::PackedShamir>(cfg_.ctx, cfg_.params)),
      codec_(*cfg_.ctx, cfg_.params.l) {}

void Client::InstallPeerCert(const crypto::HostCert& cert) {
  Require(crypto::CertAuthority::VerifyCert(group_, ca_pk_, cert),
          "Client::InstallPeerCert: bad cert");
  auto it = peer_certs_.find(cert.host_id);
  if (it != peer_certs_.end() && it->second.epoch > cert.epoch) return;
  peer_certs_[cert.host_id] = cert;
  channels_.erase(cert.host_id);
}

crypto::SecureChannel& Client::ChannelTo(std::uint32_t peer) {
  auto cert_it = peer_certs_.find(peer);
  Require(cert_it != peer_certs_.end(), "Client: no cert for host");
  const crypto::HostCert& pc = cert_it->second;
  // The client id is numerically the largest, so the client is always "hi".
  const std::uint32_t lo_epoch = pc.epoch;
  const std::uint32_t hi_epoch = my_cert_.epoch;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(lo_epoch) << 32) | hi_epoch;
  auto it = channels_.find(peer);
  if (it == channels_.end() || it->second.epoch_pair != pair) {
    crypto::SecureChannel ch = crypto::MakeChannel(
        group_, sk_, pc.host_pk, (lo_epoch << 16) ^ hi_epoch, cfg_.id, peer);
    it = channels_.insert_or_assign(peer, CachedChannel{pair, std::move(ch)})
             .first;
  }
  return it->second.channel;
}

Bytes Client::SealFor(std::uint32_t peer, std::span<const std::uint8_t> pt) {
  if (!cfg_.encrypt_links) return Bytes(pt.begin(), pt.end());
  return ChannelTo(peer).Seal(pt);
}

Bytes Client::OpenFrom(std::uint32_t peer, std::span<const std::uint8_t> ct) {
  if (!cfg_.encrypt_links) return Bytes(ct.begin(), ct.end());
  auto pt = ChannelTo(peer).Open(ct);
  if (!pt) throw ParseError("Client: channel authentication failed");
  return std::move(*pt);
}

FileMeta Client::BeginUpload(std::uint64_t file_id,
                             std::span<const std::uint8_t> data) {
  const std::size_t n = cfg_.params.n;
  const std::size_t l = cfg_.params.l;
  FileMeta meta;
  std::vector<std::vector<FpElem>> shares_for_host;
  {
    ComputeSection section(metrics_, obs::SpanKind::kClientSet, file_id,
                           data.size());
    std::vector<FpElem> elems;
    std::tie(meta, elems) = codec_.Encode(file_id, data, section.extra());

    std::vector<std::vector<FpElem>> blocks(
        meta.num_blocks, std::vector<FpElem>(l, cfg_.ctx->Zero()));
    for (std::size_t blk = 0; blk < meta.num_blocks; ++blk) {
      for (std::size_t j = 0; j < l; ++j) blocks[blk][j] = elems[blk * l + j];
    }
    // Per-block sharing fans out over the task pool; the rng is consumed
    // serially inside ShareBlocks, so the shares match a serial run.
    auto shares_by_block = shamir_->ShareBlocks(blocks, rng_, section.extra());

    // shares_for_host[i][blk]
    shares_for_host.assign(n,
                           std::vector<FpElem>(meta.num_blocks, cfg_.ctx->Zero()));
    for (std::size_t blk = 0; blk < meta.num_blocks; ++blk) {
      for (std::size_t i = 0; i < n; ++i) {
        shares_for_host[i][blk] = shares_by_block[blk][i];
      }
    }
  }

  PendingUpload& up = uploads_[file_id];
  up.acked.clear();
  up.payloads.clear();
  up.payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ByteWriter w;
    w.Blob(meta.Serialize());
    w.Raw(field::SerializeElems(*cfg_.ctx, shares_for_host[i]));
    up.payloads.push_back(Bytes(w.bytes().begin(), w.bytes().end()));
    Message m;
    m.from = cfg_.id;
    m.to = static_cast<std::uint32_t>(i);
    m.type = MsgType::kSetShares;
    m.file_id = file_id;
    m.payload = SealFor(static_cast<std::uint32_t>(i), up.payloads.back());
    metrics_.msgs_sent += 1;
    metrics_.bytes_sent += m.WireSize();
    transport_.Send(std::move(m));
  }
  return meta;
}

std::size_t Client::UploadAcks(std::uint64_t file_id) const {
  auto it = uploads_.find(file_id);
  return it == uploads_.end() ? 0 : it->second.acked.size();
}

std::size_t Client::RetryUpload(std::uint64_t file_id) {
  auto it = uploads_.find(file_id);
  if (it == uploads_.end() || it->second.payloads.empty()) return 0;
  std::size_t resent = 0;
  for (std::size_t i = 0; i < it->second.payloads.size(); ++i) {
    const std::uint32_t host = static_cast<std::uint32_t>(i);
    if (it->second.acked.count(host) != 0) continue;
    // Storing shares is idempotent: a host whose ACK (rather than the upload
    // itself) was lost simply overwrites with identical values.
    Message m;
    m.from = cfg_.id;
    m.to = host;
    m.type = MsgType::kSetShares;
    m.file_id = file_id;
    m.payload = SealFor(host, it->second.payloads[i]);
    metrics_.msgs_sent += 1;
    metrics_.bytes_sent += m.WireSize();
    transport_.Send(std::move(m));
    ++resent;
  }
  if (resent > 0) ++retries_;
  return resent;
}

void Client::FinishUpload(std::uint64_t file_id) {
  auto it = uploads_.find(file_id);
  if (it != uploads_.end()) {
    it->second.payloads.clear();
    it->second.payloads.shrink_to_fit();
  }
}

void Client::SendReconstructRequest(std::uint64_t file_id, std::uint32_t host,
                                    const PendingDownload& dl) {
  Message m;
  m.from = cfg_.id;
  m.to = host;
  m.type = MsgType::kReconstructRequest;
  m.file_id = file_id;
  if (!dl.contacted.empty()) {
    // Staircase read descriptor: the host only needs its own window of the
    // rotation to compute its stripe. Classic requests keep the empty
    // payload, byte-identical to the pre-ReadSpec protocol.
    std::uint32_t index = 0;
    for (; index < dl.contacted.size(); ++index) {
      if (dl.contacted[index] == host) break;
    }
    Invariant(index < dl.contacted.size(),
              "Client: staircase request to a host outside the contact set");
    ByteWriter w;
    w.U32(index);
    w.U32(static_cast<std::uint32_t>(dl.contacted.size()));
    w.U32(static_cast<std::uint32_t>(cfg_.params.degree() + 1));
    m.payload = w.Take();
  }
  metrics_.msgs_sent += 1;
  metrics_.bytes_sent += m.WireSize();
  transport_.Send(std::move(m));
}

void Client::BeginDownload(const ReadSpec& spec) {
  PendingDownload dl;
  dl.policy = spec.policy;
  if (spec.policy.path == ReadPath::kStaircase) {
    const std::size_t d =
        pss::ResolveContacts(cfg_.params, spec.policy.contacts);
    if (d == 0) {
      if (spec.policy.fallback == ReadFallback::kFail) {
        throw InvalidArgument(
            "Client::BeginDownload: staircase contact budget infeasible");
      }
      StaircaseInfeasible().Add(1);
      dl.policy.path = ReadPath::kFullShare;
    } else {
      dl.contacted.reserve(d);
      for (std::size_t i = 0; i < d; ++i) {
        dl.contacted.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  auto [it, _] =
      downloads_.insert_or_assign(spec.file_id, std::move(dl));
  if (it->second.contacted.empty()) {
    for (std::size_t i = 0; i < cfg_.params.n; ++i) {
      SendReconstructRequest(spec.file_id, static_cast<std::uint32_t>(i),
                             it->second);
    }
  } else {
    for (std::uint32_t host : it->second.contacted) {
      SendReconstructRequest(spec.file_id, host, it->second);
    }
  }
}

std::size_t Client::RetryDownload(const ReadSpec& spec) {
  auto it = downloads_.find(spec.file_id);
  if (it == downloads_.end()) {
    BeginDownload(spec);
    ++retries_;
    return cfg_.params.n;
  }
  const PendingDownload& dl = it->second;
  std::size_t asked = 0;
  if (dl.contacted.empty()) {
    for (std::size_t i = 0; i < cfg_.params.n; ++i) {
      const std::uint32_t host = static_cast<std::uint32_t>(i);
      if (dl.responses.count(host) != 0) continue;
      SendReconstructRequest(spec.file_id, host, dl);
      ++asked;
    }
  } else {
    for (std::uint32_t host : dl.contacted) {
      if (dl.responses.count(host) != 0) continue;
      SendReconstructRequest(spec.file_id, host, dl);
      ++asked;
    }
  }
  if (asked > 0) ++retries_;
  return asked;
}

std::size_t Client::ResponsesFor(std::uint64_t file_id) const {
  auto it = downloads_.find(file_id);
  return it == downloads_.end() ? 0 : it->second.responses.size();
}

std::optional<Bytes> Client::TryAssemble(std::uint64_t file_id) {
  auto it = downloads_.find(file_id);
  if (it == downloads_.end()) return std::nullopt;
  if (!it->second.contacted.empty()) {
    return AssembleStaircase(file_id, it->second);
  }
  const auto& responses = it->second.responses;
  const std::size_t need = cfg_.params.degree() + 1;
  if (responses.size() < need) return std::nullopt;

  ComputeSection section(metrics_, obs::SpanKind::kClientReconstruct,
                         file_id);
  // Adopt the majority meta (all honest hosts agree; a corrupted meta from a
  // minority cannot win).
  std::map<Bytes, std::size_t> meta_votes;
  for (const auto& [host, resp] : responses) {
    meta_votes[resp.meta.Serialize()] += 1;
  }
  const Bytes* best = nullptr;
  std::size_t best_votes = 0;
  for (const auto& [blob, votes] : meta_votes) {
    if (votes > best_votes) {
      best = &blob;
      best_votes = votes;
    }
  }
  FileMeta meta = FileMeta::Deserialize(*best);

  // First d+1 hosts (ascending ids) whose response matches the block count.
  // Striped rows (stale responses from an abandoned staircase attempt on the
  // same file id) are never full share vectors, so the length filter also
  // keeps them out of the oracle path.
  std::vector<std::uint32_t> parties;
  std::vector<const std::vector<FpElem>*> rows;
  for (const auto& [host, resp] : responses) {
    if (resp.striped || resp.elems.size() != meta.num_blocks) continue;
    parties.push_back(host);
    rows.push_back(&resp.elems);
    if (parties.size() == need) break;
  }
  if (parties.size() < need) return std::nullopt;

  auto weights = shamir_->ReconstructionWeights(parties);
  std::vector<FpElem> elems(meta.num_blocks * cfg_.params.l, cfg_.ctx->Zero());
  // Blocks are independent and each writes only its own elems slots, so the
  // per-block weighted sums fan out over the task pool deterministically.
  GlobalPool().ParallelFor(
      0, meta.num_blocks,
      [&](std::size_t blk) {
        for (std::size_t j = 0; j < cfg_.params.l; ++j) {
          FpElem acc = cfg_.ctx->Zero();
          for (std::size_t k = 0; k < need; ++k) {
            acc = cfg_.ctx->Add(
                acc, cfg_.ctx->Mul((*weights)[j][k], (*rows[k])[blk]));
          }
          elems[blk * cfg_.params.l + j] = acc;
        }
      },
      section.extra());
  Bytes out;
  try {
    out = codec_.Decode(meta, elems, section.extra());
  } catch (const ParseError&) {
    // Fast path failed the integrity check: some host returned corrupted
    // shares. Fall back to Berlekamp-Welch decoding over ALL responses,
    // which tolerates a minority of wrong values per block. Throws
    // ParseError (propagated) if even robust decoding cannot explain the
    // responses.
    out = AssembleRobust(meta, section.extra());
  }
  downloads_.erase(file_id);
  return out;
}

std::optional<Bytes> Client::AssembleStaircase(std::uint64_t file_id,
                                               PendingDownload& dl) {
  // Striping has no redundancy inside one read: every contact's stripe is
  // load-bearing, so assembly waits for the FULL contact set. Whether to
  // keep pumping, re-ask, or fall back is the caller's policy decision.
  const pss::StripeLayout layout(dl.contacted.size(),
                                 cfg_.params.degree() + 1);
  std::vector<const ShareResponse*> by_contact(dl.contacted.size(), nullptr);
  for (std::size_t j = 0; j < dl.contacted.size(); ++j) {
    auto rit = dl.responses.find(dl.contacted[j]);
    if (rit == dl.responses.end() || !rit->second.striped) return std::nullopt;
    by_contact[j] = &rit->second;
  }

  ComputeSection section(metrics_, obs::SpanKind::kClientReconstruct, file_id);
  std::map<Bytes, std::size_t> meta_votes;
  for (const ShareResponse* resp : by_contact) {
    meta_votes[resp->meta.Serialize()] += 1;
  }
  const Bytes* best = nullptr;
  std::size_t best_votes = 0;
  for (const auto& [blob, votes] : meta_votes) {
    if (votes > best_votes) {
      best = &blob;
      best_votes = votes;
    }
  }
  FileMeta meta = FileMeta::Deserialize(*best);

  std::vector<std::vector<FpElem>> rows(dl.contacted.size());
  for (std::size_t j = 0; j < dl.contacted.size(); ++j) {
    if (by_contact[j]->elems.size() != layout.CountFor(j, meta.num_blocks)) {
      // Wrong stripe length (host disagreed about the file's block count or
      // sent garbage): drop the response so a retry re-asks that host.
      dl.responses.erase(dl.contacted[j]);
      return std::nullopt;
    }
    rows[j] = by_contact[j]->elems;
  }

  std::vector<FpElem> elems = pss::StripedReconstruct(
      *shamir_, layout, dl.contacted, rows, meta.num_blocks, section.extra());
  // No robust fallback on this path: a stripe carries exactly degree+1
  // points per block, so a corrupted contribution surfaces as a codec
  // integrity failure (ParseError) and the caller falls back per policy.
  Bytes out = codec_.Decode(meta, elems, section.extra());
  downloads_.erase(file_id);
  return out;
}

Bytes Client::AssembleRobust(const FileMeta& meta, std::uint64_t* extra_cpu_ns) {
  auto it = downloads_.find(meta.file_id);
  Invariant(it != downloads_.end(), "AssembleRobust: no pending download");
  RobustFallbacks().Add(1);
  std::vector<std::uint32_t> parties;
  std::vector<const std::vector<FpElem>*> rows;
  for (const auto& [host, resp] : it->second.responses) {
    if (resp.striped || resp.elems.size() != meta.num_blocks) continue;
    parties.push_back(host);
    rows.push_back(&resp.elems);
  }
  std::vector<FpElem> elems(meta.num_blocks * cfg_.params.l, cfg_.ctx->Zero());
  // Berlekamp-Welch decoding is the expensive path; each block decodes
  // independently on the task pool (a failed block throws, which the pool
  // rethrows on this thread).
  GlobalPool().ParallelFor(
      0, meta.num_blocks,
      [&](std::size_t blk) {
        std::vector<FpElem> shares(parties.size(), cfg_.ctx->Zero());
        for (std::size_t k = 0; k < parties.size(); ++k) {
          shares[k] = (*rows[k])[blk];
        }
        std::vector<std::size_t> corrupted;
        auto secrets =
            shamir_->RobustReconstructBlock(parties, shares, &corrupted);
        if (!secrets) {
          throw ParseError("Client: robust reconstruction failed for a block");
        }
        if (!corrupted.empty()) ClientSharesCorrected().Add(corrupted.size());
        for (std::size_t j = 0; j < cfg_.params.l; ++j) {
          elems[blk * cfg_.params.l + j] = (*secrets)[j];
        }
      },
      extra_cpu_ns);
  return codec_.Decode(meta, elems, extra_cpu_ns);
}

void Client::AdoptParams(const pss::Params& params) {
  params.Validate();
  Require(params.l == cfg_.params.l,
          "Client::AdoptParams: packing must match (re-pack via the codec)");
  Require(params.field_bits == cfg_.params.field_bits,
          "Client::AdoptParams: field must match");
  // Finished uploads keep a payload-less entry behind for UploadAcks; only
  // cached retry payloads or an open download mean in-flight work.
  for (const auto& [id, up] : uploads_) {
    Require(up.payloads.empty(),
            "Client::AdoptParams: upload " + std::to_string(id) +
                " still in flight");
  }
  Require(downloads_.empty(),
          "Client::AdoptParams: downloads still in flight");
  cfg_.params = params;
  shamir_ = std::make_shared<pss::PackedShamir>(cfg_.ctx, cfg_.params);
  // codec_ depends only on l, which is fixed across a reshare; the ack
  // bookkeeping named hosts of the old fleet, so it goes.
  uploads_.clear();
}

void Client::RequestDelete(std::uint64_t file_id) {
  for (std::size_t i = 0; i < cfg_.params.n; ++i) {
    Message m;
    m.from = cfg_.id;
    m.to = static_cast<std::uint32_t>(i);
    m.type = MsgType::kDeleteFile;
    m.file_id = file_id;
    // Deletion is destructive: authenticate it by sealing the file id on the
    // client's channel so strangers cannot destroy shares.
    ByteWriter w;
    w.U64(file_id);
    m.payload = SealFor(static_cast<std::uint32_t>(i), w.bytes());
    metrics_.msgs_sent += 1;
    metrics_.bytes_sent += m.WireSize();
    transport_.Send(std::move(m));
  }
}

void Client::HandleMessage(const Message& msg) {
  try {
    switch (msg.type) {
      case MsgType::kHostCert: {
        crypto::HostCert cert = crypto::HostCert::Deserialize(msg.payload);
        if (cert.host_id != msg.from) return;
        if (!crypto::CertAuthority::VerifyCert(group_, ca_pk_, cert)) return;
        InstallPeerCert(cert);
        return;
      }
      case MsgType::kPhaseDone: {
        if (msg.row == 2 && !msg.payload.empty() && msg.payload[0] == 1) {
          uploads_[msg.file_id].acked.insert(msg.from);
        }
        return;
      }
      case MsgType::kShareResponse: {
        auto it = downloads_.find(msg.file_id);
        if (it == downloads_.end()) return;  // stale response
        Bytes pt = OpenFrom(msg.from, msg.payload);
        ByteReader r(pt);
        ShareResponse resp;
        resp.meta = FileMeta::Deserialize(r.Blob());
        resp.elems = field::DeserializeElems(*cfg_.ctx, r.Raw(r.Remaining()));
        resp.striped = msg.row == 1;  // row 0 = full share vector
        it->second.responses.insert_or_assign(msg.from, std::move(resp));
        return;
      }
      default:
        LogWarn() << "client: unexpected " << msg.Describe();
    }
  } catch (const ParseError& e) {
    LogWarn() << "client: dropping message (" << e.what()
              << "): " << msg.Describe();
  } catch (const InvalidArgument& e) {
    LogWarn() << "client: rejecting message (" << e.what()
              << "): " << msg.Describe();
  }
}

}  // namespace pisces
