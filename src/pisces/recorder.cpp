#include "pisces/recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pisces {

Recorder::Recorder(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  Require(!columns_.empty(), "Recorder: no columns");
}

std::size_t Recorder::ColumnIndex(const std::string& col) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == col) return c;
  }
  throw InvalidArgument("Recorder: unknown column '" + col + "'");
}

Recorder::Row::Row(Recorder& rec)
    : rec_(&rec),
      cells_(rec.columns_.size()),
      filled_(rec.columns_.size(), false) {}

Recorder::Row& Recorder::Row::SetCell(const std::string& col,
                                      std::string value) {
  Require(!committed_, "Recorder::Row: row already committed");
  const std::size_t c = rec_->ColumnIndex(col);
  Require(!filled_[c], "Recorder::Row: column '" + col + "' set twice");
  cells_[c] = std::move(value);
  filled_[c] = true;
  return *this;
}

Recorder::Row& Recorder::Row::Set(const std::string& col, double value) {
  return SetCell(col, Num(value));
}

void Recorder::Row::Commit() {
  Require(!committed_, "Recorder::Row: row already committed");
  for (std::size_t c = 0; c < filled_.size(); ++c) {
    Require(filled_[c],
            "Recorder: missing column '" + rec_->columns_[c] + "'");
  }
  committed_ = true;
  rec_->rows_.push_back(std::move(cells_));
}

std::string Recorder::ToCsv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out << ",";
    out << columns_[c];
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  }
  return out.str();
}

void Recorder::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  Require(f.good(), "Recorder: cannot open '" + path + "'");
  f << ToCsv();
}

std::string Recorder::Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace pisces
