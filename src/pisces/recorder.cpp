#include "pisces/recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pisces {

Recorder::Recorder(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  Require(!columns_.empty(), "Recorder: no columns");
}

void Recorder::AddRow(const std::map<std::string, std::string>& values) {
  std::vector<std::string> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) {
    auto it = values.find(col);
    Require(it != values.end(), "Recorder: missing column '" + col + "'");
    row.push_back(it->second);
  }
  Require(values.size() == columns_.size(), "Recorder: unexpected extra column");
  rows_.push_back(std::move(row));
}

std::string Recorder::ToCsv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out << ",";
    out << columns_[c];
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  }
  return out.str();
}

void Recorder::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  Require(f.good(), "Recorder: cannot open '" + path + "'");
  f << ToCsv();
}

std::string Recorder::Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace pisces
