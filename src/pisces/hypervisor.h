// The hypervisor: chief organizing agent of the virtual hosts (paper
// SectionIV-A and Fig 4).
//
// Responsibilities implemented here, mirroring the paper's minimal required
// hypervisor functionality:
//   * Public Key Installation -- owns the CA; generates, signs and installs a
//     fresh host keypair at every (re)boot;
//   * Secure Reboot -- shuts a host down (secure disassociation wipes all
//     state), brings it back with fresh keys, re-provisions the public cert
//     directory, and triggers share recovery;
//   * Restart Schedule -- executes a complete (round-robin) or randomized
//     schedule in batches of r hosts per recovery phase;
//   * Update orchestration -- one update window = rerandomize every stored
//     file, then reboot every host per the schedule with recovery after each
//     batch (paper SectionVI-E step 2);
//   * Fault tolerance -- a refresh or recovery round that loses a dealer to a
//     crash, a dropped message, or a corrupted dealing is re-run with the
//     offending dealer excluded instead of failing the window. The window
//     aborts only when more than t dealers are unavailable (the paper's
//     corruption bound).
//
// Dealer exclusion works in three tiers:
//   1. availability: hosts that are offline (crashed) never join a round;
//   2. attribution: when hyperinvertible verification rejects a round, the
//      hosts' archived dealing columns are cross-checked per dealer (each
//      column must be a degree-<=d polynomial vanishing on the betas across
//      the holder points); dealers whose columns are inconsistent are
//      excluded immediately;
//   3. strikes: a live dealer whose dealing repeatedly fails to arrive
//      (dropped by the network) is excluded after two strikes.
// A reboot wipes a host's exclusion record: the fresh image is trusted again.
//
// Rounds that partially applied (some hosts committed the new sharing, the
// rest lost their verdicts) are NOT re-run -- re-randomizing an inconsistent
// base would corrupt the sharing permanently. Instead the hosts that missed
// the apply are marked stale and re-synchronized through share recovery from
// the fresh quorum; stale hosts are barred from acting as recovery survivors
// until they have been resynced.
//
// The hypervisor drives hosts through the same message fabric as everyone
// else for protocol traffic, but uses direct method calls for the privileged
// lifecycle operations a real CSP performs out-of-band.
#pragma once

#include <memory>
#include <set>

#include "pisces/host.h"
#include "pisces/read_spec.h"
#include "pisces/schedule.h"

namespace pisces {

struct WindowReport {
  bool ok = true;
  std::vector<std::string> failures;
  std::uint64_t sweeps_refresh = 0;
  std::uint64_t sweeps_recovery = 0;
  std::size_t reboots = 0;
  // Scheduled reboots skipped because wiping the batch would have dropped a
  // file below the recovery quorum (fleet already degraded); retried in a
  // later window once recovery has healed enough holders.
  std::size_t reboots_deferred = 0;
  std::size_t files_refreshed = 0;
  // Aggregate per-phase metrics summed over all hosts (delta for this
  // window).
  PhaseMetrics rerandomize_total;
  PhaseMetrics recover_total;
  // Robustness activity during this window (host-metric deltas plus the
  // hypervisor's own retry counters).
  std::uint64_t deals_excluded = 0;
  std::uint64_t refresh_retries = 0;
  std::uint64_t recovery_retries = 0;
  std::uint64_t timeouts_fired = 0;
};

// Outcome of one Hypervisor::Reshare migration (docs/resharding.md).
struct ReshareReport {
  bool ok = true;
  std::vector<std::string> failures;
  std::size_t files = 0;          // files migrated to the new shape
  std::size_t hosts_added = 0;    // fleet slots created or revived
  std::size_t hosts_retired = 0;  // fleet slots shut down (shrink)
  std::uint64_t contributions = 0;
  std::uint64_t contributions_rejected = 0;  // failed public verification
  std::uint64_t contributions_withheld = 0;  // silent contributors (strikes)
  std::uint64_t retries = 0;  // per-file rounds re-run with offenders excluded
};

struct HypervisorConfig {
  pss::Params params;
  std::shared_ptr<const field::FpCtx> ctx;
  bool encrypt_links = true;
  std::string schedule = "round-robin";
  std::uint64_t seed = 1;
  // Repair read policy (docs/bandwidth.md): kStaircase asks survivors to
  // ship reduced masked-share stripes (budget points per block instead of
  // every survivor's full vector); `contacts` overrides the per-block point
  // budget (0 = DefaultRecoveryBudget). With fallback kClassic only the
  // first attempt of a chunk runs reduced -- retries use full vectors, so a
  // corruption beyond the reduced decode radius heals at classic cost.
  ReadPolicy repair;
};

class Hypervisor : public net::MessageHandler {
 public:
  // Creates the CA, n hosts with endpoints on `net`, registers everything
  // with `sync`, and boots all hosts (epoch 1). The client id is part of the
  // peer directory so hosts learn client certs.
  Hypervisor(HypervisorConfig cfg, net::SimNet& net, net::SyncNetwork& sync,
             const crypto::SchnorrGroup& group);
  ~Hypervisor() override;

  Host& host(std::size_t i) { return *hosts_.at(i); }
  const Host& host(std::size_t i) const { return *hosts_.at(i); }
  // Logical fleet size: the current group shape's n. After a shrink the
  // hosts_ vector keeps retired slots parked (offline, wiped) for reuse by a
  // later grow, so hosts_.size() may exceed n().
  std::size_t n() const { return cfg_.params.n; }
  // Physical slot count including parked ones (>= n() after a shrink).
  // Anything that plants per-host state -- e.g. arming fault injectors --
  // must cover every slot, or a parked host revived by a later grow comes
  // back holding stale pointers.
  std::size_t host_slots() const { return hosts_.size(); }
  const pss::Params& params() const { return cfg_.params; }
  Bytes ca_public_key() const { return ca_.public_key(); }
  // Public cert directory (hypervisor-signed; used to provision newcomers).
  const std::map<std::uint32_t, crypto::HostCert>& directory() const {
    return directory_;
  }

  // Issues a signed keypair for an external participant (the client) and
  // registers its cert in the directory of every host.
  std::pair<crypto::HostCert, Bytes> EnrollExternal(std::uint32_t id);

  // --- update orchestration (paper SectionVI-E) ---
  // Rerandomizes every stored file, retrying with failed dealers excluded
  // (up to t+2 attempts) and resyncing stale hosts afterwards. Returns false
  // only when a file could not be refreshed within the corruption bound.
  bool RefreshAllFiles(WindowReport* report = nullptr);
  // Rerandomizes exactly `file_ids` (the serving plane's batch-refresh
  // scheduler feeds shard-local batches through this). All sessions of a
  // call launch before a single network pump, so a batch of F files costs
  // one round-trip structure, not F of them. Byte-identity with F
  // sequential single-file calls is a tested contract (differential_test):
  // per-host refresh randomness is drawn once per session at kStartRefresh
  // receipt, and start messages are delivered in launch order.
  bool RefreshFiles(std::span<const std::uint64_t> file_ids,
                    WindowReport* report = nullptr);
  // Reboots `batch` (secure disassociation + fresh keys) and runs share
  // recovery for every stored file toward the rebooted hosts.
  bool RebootAndRecover(std::span<const std::uint32_t> batch,
                        WindowReport* report = nullptr);
  // One full proactive update window: refresh, then every schedule batch.
  WindowReport RunUpdateWindow();

  // --- live resharing (docs/resharding.md) ---
  // Migrates every stored file to the new group shape `to` (same packing l,
  // same field) WITHOUT reconstructing: each of d_old+1 contributor hosts
  // deals a masked sub-sharing from its own share (pss/reshare.h), the
  // hypervisor publicly verifies every contribution (corrupt contributors
  // are excluded and the file's round retried, silent ones accrue strikes),
  // and only when every file's new sharing is ready does the fleet reshape:
  // surviving hosts wipe-and-adopt the new scheme, grown slots boot fresh
  // (parked slots from an earlier shrink are revived), shrunk slots shut
  // down, and every slot <n' -- including previously crashed ones -- ends
  // online with the fresh sharing installed (re-provisioning through
  // reshare, not recovery). Returns false, fleet untouched, when any file
  // cannot gather d_old+1 verified contributions within the corruption
  // bound.
  bool Reshare(const pss::Params& to, ReshareReport* report = nullptr);

  void HandleMessage(const net::Message& msg) override;

  std::uint32_t windows_run() const { return window_; }

  // Diagnostics: phase-done failures observed since construction.
  std::uint64_t failures_seen() const { return failures_seen_; }
  // Hosts currently barred from dealing (corrupt or repeatedly silent).
  const std::set<std::uint32_t>& excluded_dealers() const { return excluded_; }
  // Hosts barred from acting as recovery survivors: accused by a recovery
  // target's robust decode (wrong masked shares) or repeatedly silent during
  // recovery (withheld dealings/masked shares, two strikes). Cleared by
  // reboot, like the dealer exclusion record.
  const std::set<std::uint32_t>& suspected_hosts() const { return suspects_; }
  // Hosts holding shares that missed the latest rerandomization (awaiting
  // resync through recovery).
  const std::set<std::uint32_t>& stale_hosts() const { return stale_; }

  // Marks a file as intentionally deleted. Without this signal the file
  // catalog would report the disappearance as data loss and fail every
  // subsequent window.
  void ForgetFile(std::uint64_t file_id) { catalog_.erase(file_id); }

  // Swaps the repair read policy at runtime (benchmarks and ablations flip
  // between classic and reduced repair on a live fleet).
  void set_repair_policy(const ReadPolicy& p) { cfg_.repair = p; }
  const ReadPolicy& repair_policy() const { return cfg_.repair; }

 private:
  // A kPhaseDone record: host reported the end of a protocol phase.
  // kind: 0 = refresh, 1 = recovery (see Host::ReportPhaseDone callers).
  struct PhaseReport {
    std::uint32_t host = 0;
    std::uint32_t kind = 0;
    std::uint64_t file = 0;
    std::uint32_t seq = 0;
    bool ok = false;
  };

  void BootHost(std::uint32_t id);
  // Shared body of RefreshAllFiles / RefreshFiles; `audit_catalog` enables
  // the fleet-wide lost-file check (full-namespace refresh only).
  bool RefreshFilesInternal(std::vector<std::uint64_t> files,
                            bool audit_catalog, WindowReport* report);
  std::vector<std::uint64_t> AllFileIds() const;
  std::optional<FileMeta> MetaFromAnyHost(
      std::uint64_t file_id, std::span<const std::uint32_t> exclude) const;
  HostMetrics TotalHostMetrics() const;

  // Hosts that are booted and reachable (not net-offline), ascending.
  std::vector<std::uint32_t> ReachableHosts() const;
  // Whether wiping `batch` still leaves every stored file enough fresh
  // reachable holders to satisfy the recovery quorum.
  bool BatchSafeToReboot(std::span<const std::uint32_t> batch) const;
  // Aborts stuck sessions on every host, appending their descriptions to
  // `sink` (nullptr discards them).
  void AbortStuckFleet(std::vector<std::string>* sink);
  // Cross-checks archived dealing columns of failed refresh rounds and
  // returns the dealers whose columns are provably inconsistent.
  std::set<std::uint32_t> AttributeCorruptDealers(
      std::uint32_t seq,
      const std::map<std::uint64_t, std::vector<std::uint32_t>>&
          parts_by_file);
  // Recovers every stored file toward `targets` (chunked by r, retried with
  // a shrinking survivor set). Erases recovered targets from stale_. Appends
  // its failures to recent_failures_.
  bool RunRecovery(std::vector<std::uint32_t> targets, WindowReport* report);

  HypervisorConfig cfg_;
  net::SimNet& net_;
  net::SyncNetwork& sync_;
  const crypto::SchnorrGroup& group_;
  Rng rng_;
  crypto::CertAuthority ca_;
  net::SimEndpoint* endpoint_ = nullptr;

  std::vector<net::SimEndpoint*> host_endpoints_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::uint32_t> peer_ids_;  // hosts + enrolled externals
  std::map<std::uint32_t, crypto::HostCert> directory_;

  std::unique_ptr<RestartSchedule> schedule_;
  std::uint32_t boot_epoch_ = 0;
  std::uint32_t op_seq_ = 100;  // session correlation counter
  std::uint32_t window_ = 0;
  std::uint64_t failures_seen_ = 0;
  std::vector<std::string> recent_failures_;
  std::vector<PhaseReport> phase_reports_;  // cleared per attempt
  std::set<std::uint32_t> excluded_;
  std::map<std::uint32_t, std::uint32_t> dealer_strikes_;
  // Recovery dispute state: suspects are excluded from the survivor set (base
  // AND reserve -- their verified-at-target contribution is exactly what was
  // rejected); strikes accumulate toward suspicion for silent survivors.
  std::set<std::uint32_t> suspects_;
  std::map<std::uint32_t, std::uint32_t> suspect_strikes_;
  std::set<std::uint32_t> stale_;
  // Every file id ever observed on a host. Host stores are the only file
  // directory, so once the last holder is wiped a file would silently vanish
  // from AllFileIds() and refresh/recovery would succeed vacuously; the
  // catalog turns that into a reported loss instead.
  std::set<std::uint64_t> catalog_;
};

}  // namespace pisces
