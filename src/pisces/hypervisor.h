// The hypervisor: chief organizing agent of the virtual hosts (paper
// SectionIV-A and Fig 4).
//
// Responsibilities implemented here, mirroring the paper's minimal required
// hypervisor functionality:
//   * Public Key Installation -- owns the CA; generates, signs and installs a
//     fresh host keypair at every (re)boot;
//   * Secure Reboot -- shuts a host down (secure disassociation wipes all
//     state), brings it back with fresh keys, re-provisions the public cert
//     directory, and triggers share recovery;
//   * Restart Schedule -- executes a complete (round-robin) or randomized
//     schedule in batches of r hosts per recovery phase;
//   * Update orchestration -- one update window = rerandomize every stored
//     file, then reboot every host per the schedule with recovery after each
//     batch (paper SectionVI-E step 2).
//
// The hypervisor drives hosts through the same message fabric as everyone
// else for protocol traffic, but uses direct method calls for the privileged
// lifecycle operations a real CSP performs out-of-band.
#pragma once

#include <memory>

#include "pisces/host.h"
#include "pisces/schedule.h"

namespace pisces {

struct WindowReport {
  bool ok = true;
  std::vector<std::string> failures;
  std::uint64_t sweeps_refresh = 0;
  std::uint64_t sweeps_recovery = 0;
  std::size_t reboots = 0;
  std::size_t files_refreshed = 0;
  // Aggregate per-phase metrics summed over all hosts (delta for this
  // window).
  PhaseMetrics rerandomize_total;
  PhaseMetrics recover_total;
};

struct HypervisorConfig {
  pss::Params params;
  std::shared_ptr<const field::FpCtx> ctx;
  bool encrypt_links = true;
  std::string schedule = "round-robin";
  std::uint64_t seed = 1;
};

class Hypervisor : public net::MessageHandler {
 public:
  // Creates the CA, n hosts with endpoints on `net`, registers everything
  // with `sync`, and boots all hosts (epoch 1). The client id is part of the
  // peer directory so hosts learn client certs.
  Hypervisor(HypervisorConfig cfg, net::SimNet& net, net::SyncNetwork& sync,
             const crypto::SchnorrGroup& group);
  ~Hypervisor() override;

  Host& host(std::size_t i) { return *hosts_.at(i); }
  const Host& host(std::size_t i) const { return *hosts_.at(i); }
  std::size_t n() const { return hosts_.size(); }
  Bytes ca_public_key() const { return ca_.public_key(); }
  // Public cert directory (hypervisor-signed; used to provision newcomers).
  const std::map<std::uint32_t, crypto::HostCert>& directory() const {
    return directory_;
  }

  // Issues a signed keypair for an external participant (the client) and
  // registers its cert in the directory of every host.
  std::pair<crypto::HostCert, Bytes> EnrollExternal(std::uint32_t id);

  // --- update orchestration (paper SectionVI-E) ---
  // Rerandomizes every stored file once. Returns false if any host reported
  // failure.
  bool RefreshAllFiles(WindowReport* report = nullptr);
  // Reboots `batch` (secure disassociation + fresh keys) and runs share
  // recovery for every stored file toward the rebooted hosts.
  bool RebootAndRecover(std::span<const std::uint32_t> batch,
                        WindowReport* report = nullptr);
  // One full proactive update window: refresh, then every schedule batch.
  WindowReport RunUpdateWindow();

  void HandleMessage(const net::Message& msg) override;

  std::uint32_t windows_run() const { return window_; }

  // Diagnostics: phase-done failures observed since construction.
  std::uint64_t failures_seen() const { return failures_seen_; }

 private:
  void BootHost(std::uint32_t id);
  std::vector<std::uint64_t> AllFileIds() const;
  std::optional<FileMeta> MetaFromAnyHost(
      std::uint64_t file_id, std::span<const std::uint32_t> exclude) const;
  HostMetrics TotalHostMetrics() const;

  HypervisorConfig cfg_;
  net::SimNet& net_;
  net::SyncNetwork& sync_;
  const crypto::SchnorrGroup& group_;
  Rng rng_;
  crypto::CertAuthority ca_;
  net::SimEndpoint* endpoint_ = nullptr;

  std::vector<net::SimEndpoint*> host_endpoints_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::uint32_t> peer_ids_;  // hosts + enrolled externals
  std::map<std::uint32_t, crypto::HostCert> directory_;

  std::unique_ptr<RestartSchedule> schedule_;
  std::uint32_t boot_epoch_ = 0;
  std::uint32_t op_seq_ = 100;  // session correlation counter
  std::uint32_t window_ = 0;
  std::uint64_t failures_seen_ = 0;
  std::vector<std::string> recent_failures_;
};

}  // namespace pisces
