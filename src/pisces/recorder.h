// Experiment result recorder.
//
// The paper's driver "records the results in a sqlite database for easier
// result exploration"; our stand-in writes CSV (one row per measurement,
// stable column order) to memory and optionally to a file, which the bench
// binaries use to dump the series behind every figure.
//
// Rows are built through the typed `Recorder::Row` builder: `NewRow()` hands
// out a builder bound to the recorder's column set, `Set(col, value)` formats
// the value with the same rules everywhere (integers via std::to_string,
// doubles via Num's "%.6g", bools as "1"/"0"), and `Commit()` appends the
// row. Unknown or duplicate columns fail at Set time, missing columns at
// Commit time, so a schema drift between a bench and its recorder is an
// immediate InvalidArgument instead of a silently shifted CSV.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace pisces {

class Recorder {
 public:
  // A single pending row. Cells may be set in any order; every column must
  // be set exactly once before Commit(). The builder holds a reference to
  // its Recorder and must not outlive it.
  class Row {
   public:
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;
    Row(Row&&) = default;

    Row& Set(const std::string& col, const std::string& value) {
      return SetCell(col, value);
    }
    Row& Set(const std::string& col, const char* value) {
      return SetCell(col, value);
    }
    Row& Set(const std::string& col, double value);
    Row& Set(const std::string& col, bool value) {
      return SetCell(col, value ? "1" : "0");
    }
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                               int> = 0>
    Row& Set(const std::string& col, T value) {
      return SetCell(col, std::to_string(value));
    }

    // Appends the row to the recorder. Throws InvalidArgument if any column
    // is still unset; the builder is spent afterwards.
    void Commit();

   private:
    friend class Recorder;
    explicit Row(Recorder& rec);
    Row& SetCell(const std::string& col, std::string value);

    Recorder* rec_;
    std::vector<std::string> cells_;
    std::vector<bool> filled_;
    bool committed_ = false;
  };

  // Columns are fixed at construction; rows must supply every column.
  explicit Recorder(std::vector<std::string> columns);

  Row NewRow() { return Row(*this); }

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& raw_rows() const {
    return rows_;
  }

  std::string ToCsv() const;
  void WriteFile(const std::string& path) const;

  // Convenience formatting for numeric cells ("%.6g").
  static std::string Num(double v);

 private:
  std::size_t ColumnIndex(const std::string& col) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pisces
