// Experiment result recorder.
//
// The paper's driver "records the results in a sqlite database for easier
// result exploration"; our stand-in writes CSV (one row per measurement,
// stable column order) to memory and optionally to a file, which the bench
// binaries use to dump the series behind every figure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace pisces {

class Recorder {
 public:
  // Columns are fixed at construction; rows must supply every column.
  explicit Recorder(std::vector<std::string> columns);

  void AddRow(const std::map<std::string, std::string>& values);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& raw_rows() const {
    return rows_;
  }

  std::string ToCsv() const;
  void WriteFile(const std::string& path) const;

  // Convenience formatting for numeric cells.
  static std::string Num(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pisces
