// Sharded serving plane: the front-end that turns one-protocol clusters into
// a multi-file, multi-user storage service (docs/serving.md).
//
// Four pieces, layered:
//   * ShardRouter      -- deterministic file-id -> shard map (shard_router.h);
//   * session layer    -- many logical client sessions multiplex over one
//                         plane (and, through ServingGateway, over one
//                         persistent transport connection) instead of a
//                         one-shot Client object per operation;
//   * admission control-- per-shard bounded request queues; a full queue
//                         rejects with a retry-after hint instead of
//                         buffering without bound (the same stall-then-shed
//                         discipline as net/async_tcp's send queues);
//   * batch refresh    -- the proactive-window scheduler launches refresh for
//                         a whole shard's file population per batch (one
//                         round-trip structure for F files) instead of one
//                         pump per file; byte-identity with sequential
//                         per-file refresh is a tested contract.
//
// The plane is deterministic given its config seed and the submission order:
// no internal RNG, no wall-clock dependence in any control decision (clocks
// feed latency METRICS only). That is what lets determinism_test.cpp pin
// routing and batched-refresh outputs across task-pool sizes and restarts.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/serving_frame.h"
#include "pisces/cluster.h"
#include "pisces/shard_router.h"

namespace pisces {

struct ServingConfig {
  std::uint32_t shards = 2;
  // Per-shard PSS group shape; every shard runs an independent cluster.
  pss::Params params = pss::Params::Natural(8, 256);
  std::uint64_t seed = 1;
  bool encrypt_links = true;
  std::string schedule = "round-robin";
  // Admission control: at most this many queued requests per shard; the
  // next submit is rejected with a retry-after hint.
  std::size_t admission_capacity = 64;
  // Requests serviced per shard per Poll() call.
  std::size_t max_inflight = 4;
  // Base unit of the reject hint; the hint scales with queue depth.
  std::uint32_t retry_after_ms = 5;
  // Files per batched refresh launch (bounds peak session memory on a
  // shard); 0 = the whole shard population in one launch.
  std::size_t refresh_batch = 0;
  // Default read policy for download ops. A download frame may override it
  // per-request by carrying a serialized ReadPolicy as its payload (empty
  // payload = this default); see docs/bandwidth.md.
  ReadPolicy read_policy;
};

// One finished request, delivered out of Poll()/Drain() via TakeCompletions.
struct ServingCompletion {
  std::uint64_t session = 0;
  std::uint64_t request = 0;
  net::ServingOp op = net::ServingOp::kPing;
  std::uint64_t file_id = 0;
  net::ServingStatus status = net::ServingStatus::kOk;
  Bytes payload;               // download data / ping echo
  std::uint64_t queue_ns = 0;  // admission -> execution start
  std::uint64_t latency_ns = 0;  // admission -> completion
};

// Deterministic counters mirrored into the obs registry (serving.*).
struct ServingStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t accepted = 0;   // admitted into a queue (or immediate ops)
  std::uint64_t rejected = 0;   // admission control: queue full
  std::uint64_t refused = 0;    // semantic: duplicate/not-found/bad route/...
  std::uint64_t completed = 0;  // accepted requests finished ok
  std::uint64_t failed = 0;     // accepted requests that failed in execution
  std::uint64_t queue_peak = 0;  // deepest any shard queue ever got
  std::uint64_t refresh_batches = 0;
  std::uint64_t refresh_files = 0;
  std::uint64_t reshards = 0;     // completed shard migrations (epoch bumps)
  std::uint64_t stale_epoch = 0;  // requests refused for a stale route epoch
};

class ServingPlane {
 public:
  explicit ServingPlane(ServingConfig cfg);
  ~ServingPlane();

  ServingPlane(const ServingPlane&) = delete;
  ServingPlane& operator=(const ServingPlane&) = delete;

  const ServingConfig& config() const { return cfg_; }

  // --- shard namespace ---
  std::uint32_t shard_count() const { return cfg_.shards; }
  std::uint32_t ShardOf(std::uint64_t file_id) const {
    return router_.ShardOf(file_id);
  }
  Cluster& shard(std::uint32_t i) { return *shards_.at(i); }
  // Live file namespace: id -> owning shard.
  const std::map<std::uint64_t, std::uint32_t>& files() const {
    return files_;
  }
  // Group shape currently serving shard `i` (diverges from cfg_.params once
  // that shard has been resharded).
  const pss::Params& shard_params(std::uint32_t i) const {
    return shard_params_.at(i);
  }

  // --- versioned routing ---
  // Monotone routing-map version. Starts at 1 (0 is the wire's "unversioned"
  // sentinel) and bumps on every completed Reshard, so a frame stamped with
  // an old epoch is refused with kBadRoute instead of landing on a shard
  // whose group shape changed under it.
  std::uint64_t route_epoch() const { return route_epoch_; }
  // Snapshot of the current routing map (pushed to wire clients inside
  // kBadRoute responses; see ServingGateway). The plane migrates shards
  // synchronously inside Reshard(), so an emitted map never shows a shard
  // mid-migration: `migrating` is always 0 here. The wire field exists so an
  // asynchronous cutover can use it without a layout change.
  net::RoutingMap routing_map() const;

  // Live migration of one shard's PSS group to the shape `to` (same packing
  // l and field): drains only that shard's admission queue, reshares every
  // file through Cluster::Reshare (no reconstruction -- docs/resharding.md),
  // then bumps the route epoch. Untouched shards keep their queues and keep
  // serving. Returns false (fleet and epoch untouched) when the migration
  // fails.
  bool Reshard(std::uint32_t shard, const pss::Params& to);

  // --- session layer ---
  std::uint64_t OpenSession();
  bool CloseSession(std::uint64_t session);
  bool SessionOpen(std::uint64_t session) const;

  // --- admission ---
  // Result of offering a request. status == kOk means ACCEPTED: the request
  // is queued (or already completed, for immediate ops) and its outcome
  // arrives as a ServingCompletion. Any other status is a synchronous
  // reject; kRejected carries the backpressure hint.
  struct Admission {
    net::ServingStatus status = net::ServingStatus::kOk;
    std::uint32_t retry_after_ms = 0;
  };
  // In-process convenience: assigns the next per-session request ordinal and
  // routes by the deterministic shard map.
  Admission Submit(std::uint64_t session, net::ServingOp op,
                   std::uint64_t file_id, Bytes payload = {});
  // Wire entry point: validates the frame's shard routing header against the
  // router and its request ordinal against the session's sequence (implicit
  // session open on first use -- the gateway's session lifecycle).
  Admission SubmitFrame(const net::ServingRequestFrame& frame);

  // --- execution ---
  // Services up to max_inflight queued requests per shard, in admission
  // order. Shards execute concurrently on the global task pool (a shard's
  // own batch stays sequential; shards never share a file, so cross-shard
  // work is independent); completions are merged in shard order, so the
  // completion stream is bit-identical to a sequential shard-by-shard poll
  // for any pool size. Returns the number of requests executed.
  std::size_t Poll();
  // Polls until every queue is empty; returns total requests executed.
  std::size_t Drain();
  std::vector<ServingCompletion> TakeCompletions();
  std::size_t QueueDepth(std::uint32_t shard) const {
    return queues_.at(shard).size();
  }
  std::size_t TotalQueued() const;

  // --- proactive plane ---
  // Batched refresh of every live file, shard by shard: files are launched
  // in refresh_batch-sized groups, each group's sessions pumped together
  // (Hypervisor::RefreshFiles). Refresh-only; reboots stay with
  // RunProactiveWindow.
  bool BatchRefresh();
  // One proactive window per shard: batched refresh of the shard population
  // plus the full secure-reboot schedule with recovery.
  bool RunProactiveWindow();

  const ServingStats& stats() const { return stats_; }

 private:
  struct Session {
    bool open = false;
    std::uint64_t last_request = 0;  // highest ordinal accepted
  };
  struct Pending {
    std::uint64_t session = 0;
    std::uint64_t request = 0;
    net::ServingOp op = net::ServingOp::kPing;
    std::uint64_t file_id = 0;
    Bytes payload;
    std::uint64_t accept_ns = 0;
  };

  Admission Offer(std::uint64_t session, std::uint64_t request,
                  net::ServingOp op, std::uint64_t file_id, Bytes payload);
  // One executed request: the completion record plus its deferred namespace
  // effect. Execute mutates no plane state (only the shard's own cluster and
  // the atomic obs counters), so Poll can run whole shards concurrently and
  // apply the effects serially in shard order.
  struct Executed {
    ServingCompletion completion;
    bool erase_file = false;  // committed delete, or failed-upload rollback
  };
  Executed Execute(std::uint32_t shard, Pending p);
  void CompleteImmediate(const Pending& p, net::ServingStatus status,
                         Bytes payload);
  std::uint32_t RetryHint(std::uint32_t shard) const;

  ServingConfig cfg_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Cluster>> shards_;
  std::vector<pss::Params> shard_params_;  // current shape per shard
  std::uint64_t route_epoch_ = 1;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;
  std::map<std::uint64_t, std::uint32_t> files_;  // live: id -> shard
  std::vector<std::deque<Pending>> queues_;       // per shard
  std::vector<ServingCompletion> completions_;
  ServingStats stats_;
};

// Wire-facing front door: demultiplexes kServingRequest frames arriving on
// one transport endpoint into a ServingPlane and answers each with a
// kServingResponse frame -- admission rejects synchronously, completions
// after Pump(). One gateway serves many concurrent sessions over however
// many connections the transport carries; with net::AsyncTcpEndpoint that
// is the persistent-connection serving path of docs/serving.md.
class ServingGateway : public net::MessageHandler {
 public:
  ServingGateway(ServingPlane& plane, net::Transport& transport,
                 std::uint32_t id = net::kGatewayId);

  void HandleMessage(const net::Message& msg) override;

  // Executes queued work (plane.Poll) and flushes every completion to its
  // session's peer. Returns the number of responses sent.
  std::size_t Pump();

  std::uint64_t bad_frames() const { return bad_frames_; }

 private:
  void Respond(std::uint32_t peer, std::uint64_t file_id,
               const net::ServingResponseFrame& frame);

  ServingPlane& plane_;
  net::Transport& transport_;
  std::uint32_t id_;
  // Wire session -> plane session and response route. Wire ids are
  // per-peer (two clients may both call their first session "1").
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> wire_to_;
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>> plane_to_;
  std::uint64_t bad_frames_ = 0;
};

}  // namespace pisces
