// Per-host share storage with the paper's two-tier model (SectionIV-C):
// inactive shares live serialized in "secondary storage"; a refresh or
// recovery loads them into the RAM tier, operates, and stashes them back.
// Secure disassociation (reboot) wipes both tiers.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "pisces/file_codec.h"

namespace pisces {

class ShareStore {
 public:
  explicit ShareStore(const field::FpCtx& ctx) : ctx_(&ctx) {}

  // Installs shares for a file (one element per block). Overwrites.
  void Put(const FileMeta& meta, std::vector<field::FpElem> shares);

  bool Has(std::uint64_t file_id) const;
  std::vector<std::uint64_t> FileIds() const;
  const FileMeta& MetaOf(std::uint64_t file_id) const;

  // Loads shares into RAM (deserializing from the secondary tier if needed)
  // and returns a mutable reference for in-place refresh.
  std::vector<field::FpElem>& Load(std::uint64_t file_id);

  // Serializes the RAM copy back to the secondary tier and drops the RAM
  // copy. The previous secondary blob is destroyed -- this is the "old shares
  // are deleted" step that makes captured shares obsolete.
  void Stash(std::uint64_t file_id);

  void Delete(std::uint64_t file_id);

  // Secure disassociation: destroy everything (reboot path).
  void WipeAll();

  // Bytes at rest in the secondary tier (storage cost accounting).
  std::uint64_t SecondaryBytes() const;

 private:
  struct Entry {
    FileMeta meta;
    Bytes secondary;                               // serialized, at rest
    std::optional<std::vector<field::FpElem>> ram;  // loaded working copy
  };

  const field::FpCtx* ctx_;
  std::map<std::uint64_t, Entry> entries_;
};

}  // namespace pisces
