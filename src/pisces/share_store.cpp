#include "pisces/share_store.h"

namespace pisces {

void ShareStore::Put(const FileMeta& meta, std::vector<field::FpElem> shares) {
  Require(shares.size() == meta.num_blocks,
          "ShareStore::Put: one share per block expected");
  Entry e;
  e.meta = meta;
  e.secondary = field::SerializeElems(*ctx_, shares);
  entries_[meta.file_id] = std::move(e);
}

bool ShareStore::Has(std::uint64_t file_id) const {
  return entries_.find(file_id) != entries_.end();
}

std::vector<std::uint64_t> ShareStore::FileIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, e] : entries_) ids.push_back(id);
  return ids;
}

const FileMeta& ShareStore::MetaOf(std::uint64_t file_id) const {
  auto it = entries_.find(file_id);
  Require(it != entries_.end(), "ShareStore: unknown file");
  return it->second.meta;
}

std::vector<field::FpElem>& ShareStore::Load(std::uint64_t file_id) {
  auto it = entries_.find(file_id);
  Require(it != entries_.end(), "ShareStore: unknown file");
  Entry& e = it->second;
  if (!e.ram) {
    e.ram = field::DeserializeElems(*ctx_, e.secondary);
  }
  return *e.ram;
}

void ShareStore::Stash(std::uint64_t file_id) {
  auto it = entries_.find(file_id);
  Require(it != entries_.end(), "ShareStore: unknown file");
  Entry& e = it->second;
  if (e.ram) {
    e.secondary = field::SerializeElems(*ctx_, *e.ram);
    e.ram.reset();
  }
}

void ShareStore::Delete(std::uint64_t file_id) { entries_.erase(file_id); }

void ShareStore::WipeAll() { entries_.clear(); }

std::uint64_t ShareStore::SecondaryBytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, e] : entries_) total += e.secondary.size();
  return total;
}

}  // namespace pisces
