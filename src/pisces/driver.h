// Experiment driver: the automated benchmarking system of paper SectionVI-B.
//
// RunRefreshExperiment stands in for the paper's driver machine: it builds a
// cluster for one parameter configuration, uploads a synthetic file, runs a
// full proactive update window (rerandomization plus the complete restart
// schedule with recovery), verifies the file still downloads bit-exactly,
// and reports measured CPU/bytes plus instance-modeled time and dollar cost.
// Every figure bench is a sweep of this function.
#pragma once

#include "pisces/cluster.h"
#include "pisces/metrics.h"
#include "pisces/recorder.h"

namespace pisces {

struct ExperimentConfig {
  pss::Params params;
  std::size_t file_bytes = 100 * 1024;
  std::uint64_t seed = 42;
  InstanceType instance = InstanceType::kMedium;
  double build_machine_ecu = 25.0;
  bool encrypt_links = true;
  std::string schedule = "round-robin";
  net::NetworkModel net_model;
  bool run_recovery = true;  // false: measure rerandomization only
  // Worker threads for the global task pool (and the paper's per-host b).
  // 0 keeps the current pool and params.b untouched. Thread count never
  // changes any computed value -- only wall time (see docs/parallelism.md).
  std::size_t threads = 0;
};

struct ExperimentResult {
  pss::Params params;
  std::size_t file_bytes = 0;
  std::size_t file_blocks = 0;
  bool ok = false;

  std::size_t threads = 1;  // task-pool size the window ran with

  // Measured on the build machine (totals across all hosts).
  double cpu_rerand_s = 0;
  double cpu_recover_s = 0;
  // Wall-clock inside the same compute sections: shrinks with --threads
  // while the cpu_* totals stay constant, so wall/cpu exposes the speedup.
  double wall_rerand_s = 0;
  double wall_recover_s = 0;
  std::uint64_t bytes_rerand = 0;
  std::uint64_t bytes_recover = 0;
  std::uint64_t msgs_rerand = 0;
  std::uint64_t msgs_recover = 0;
  std::uint64_t sweeps_rerand = 0;
  std::uint64_t sweeps_recover = 0;

  // Modeled per-server averages on the configured instance (paper: "average
  // time spent on each server").
  double compute_rerand_s = 0;
  double compute_recover_s = 0;
  double send_rerand_s = 0;
  double send_recover_s = 0;

  double refresh_time_s = 0;  // rerandomization only (compute + send)
  double window_time_s = 0;   // rerandomization + full recovery schedule
  double cost_dedicated = 0;  // one update window, all n machines
  double cost_spot = 0;

  // Field-substrate counters for the window (kernel dispatch width, lazy-dot
  // reductions, weight-cache hits/misses); see pisces/metrics.h.
  SubstrateMetrics substrate;

  // Robustness counters for the window (zero on a fault-free run).
  std::uint64_t deals_excluded = 0;
  std::uint64_t retries = 0;        // hypervisor round + client op retries
  std::uint64_t timeouts_fired = 0;
  std::uint64_t msgs_dropped = 0;   // fabric-level drops (faults + crashes)

  // Byzantine dispute counters for the window, read as registry deltas over
  // the byz.* namespace (all zero unless a ByzantinePlan is armed). Actions
  // are what the adversary did; detections are what the protocol caught.
  std::uint64_t byz_actions = 0;
  std::uint64_t byz_detections = 0;
  std::uint64_t byz_dealers_attributed = 0;
  std::uint64_t byz_survivors_suspected = 0;

  // Deployment-plane network counters for the window, read as registry
  // deltas over the net.* namespace. All zero on the SimNet substrate (the
  // async transport owns these counters); nonzero when the experiment runs
  // against real sockets in the same process.
  std::uint64_t net_reconnects = 0;
  std::uint64_t net_heartbeat_misses = 0;
  std::uint64_t net_deadline_expiries = 0;
  std::uint64_t net_backpressure_stalls = 0;
  std::uint64_t net_frames_dropped = 0;

  double WindowTimePerByte() const {
    return window_time_s / static_cast<double>(file_bytes);
  }
  double RerandTimePerByte() const {
    return refresh_time_s / static_cast<double>(file_bytes);
  }
  double TotalBytes() const {
    return static_cast<double>(bytes_rerand + bytes_recover);
  }
};

ExperimentResult RunRefreshExperiment(const ExperimentConfig& cfg);

// Columns shared by the figure benches' CSV output.
Recorder MakeExperimentRecorder();
void RecordExperiment(Recorder& rec, const std::string& series,
                      const ExperimentResult& r);

}  // namespace pisces
