// PiSCES -- Proactively Secure Cloud-Enabled Storage.
//
// Umbrella header: include this to get the full public API.
//
//   Cluster / ClusterConfig   a complete deployment (hosts, hypervisor, client)
//   pss::Params               protocol parameters (n, t, l, r, b, g)
//   Deployment                single-cloud / multi-cloud / hybrid planning
//   Adversary                 mobile-adversary simulation & attack attempts
//   RunRefreshExperiment      the paper's benchmarking driver
#pragma once

#include "pisces/adversary.h"
#include "pisces/cluster.h"
#include "pisces/cost_model.h"
#include "pisces/deployment.h"
#include "pisces/driver.h"
#include "pisces/file_codec.h"
#include "pisces/recorder.h"
#include "pisces/schedule.h"
#include "pisces/serving.h"
#include "pisces/shard_router.h"
