#include "pisces/serving.h"

#include <algorithm>
#include <set>

#include "common/clock.h"
#include "common/log.h"
#include "common/task_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace pisces {

namespace {

using net::ServingOp;
using net::ServingStatus;

struct ServingCounters {
  obs::Counter& sessions_opened =
      obs::RegisterCounter("serving.sessions_opened", "logical sessions opened");
  obs::Counter& sessions_closed =
      obs::RegisterCounter("serving.sessions_closed", "logical sessions closed");
  obs::Counter& accepted =
      obs::RegisterCounter("serving.accepted", "requests admitted to a queue");
  obs::Counter& rejected = obs::RegisterCounter(
      "serving.rejected", "requests shed by admission control (queue full)");
  obs::Counter& refused = obs::RegisterCounter(
      "serving.refused", "requests refused semantically (dup/not-found/route)");
  obs::Counter& completed =
      obs::RegisterCounter("serving.completed", "accepted requests finished ok");
  obs::Counter& failed = obs::RegisterCounter(
      "serving.failed", "accepted requests that failed in execution");
  obs::Counter& uploads =
      obs::RegisterCounter("serving.uploads", "upload requests executed");
  obs::Counter& downloads =
      obs::RegisterCounter("serving.downloads", "download requests executed");
  obs::Counter& deletes =
      obs::RegisterCounter("serving.deletes", "delete requests executed");
  obs::Counter& refresh_batches = obs::RegisterCounter(
      "serving.refresh_batches", "batched refresh launches across all shards");
  obs::Counter& refresh_files = obs::RegisterCounter(
      "serving.refresh_files", "files refreshed through the batch scheduler");
  obs::Counter& bad_frames = obs::RegisterCounter(
      "serving.bad_frames", "serving frames dropped as unparseable");
  obs::Counter& reshards = obs::RegisterCounter(
      "serving.reshards", "completed shard migrations (route epoch bumps)");
  obs::Counter& stale_epoch = obs::RegisterCounter(
      "serving.stale_epoch", "requests refused for a stale route epoch");
  obs::Gauge& queue_peak = obs::RegisterGauge(
      "serving.queue_peak", "deepest admission queue observed on any shard");
};

ServingCounters& Counters() {
  static ServingCounters* c = new ServingCounters();
  return *c;
}

// splitmix64 step for deriving per-shard cluster seeds.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool IsRoutedOp(ServingOp op) {
  return op == ServingOp::kUpload || op == ServingOp::kDownload ||
         op == ServingOp::kDelete;
}

}  // namespace

ServingPlane::ServingPlane(ServingConfig cfg)
    : cfg_(std::move(cfg)), router_(cfg_.shards) {
  Require(cfg_.shards > 0, "ServingPlane: need at least one shard");
  Require(cfg_.admission_capacity > 0,
          "ServingPlane: admission capacity must be positive");
  Require(cfg_.max_inflight > 0, "ServingPlane: max_inflight must be positive");
  cfg_.params.Validate();
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    ClusterConfig cc;
    cc.params = cfg_.params;
    // Independent PSS groups: every shard gets its own derived seed, so
    // share randomness never correlates across shards.
    cc.seed = MixSeed(cfg_.seed ^ (std::uint64_t{s} << 32 | s));
    cc.encrypt_links = cfg_.encrypt_links;
    cc.schedule = cfg_.schedule;
    shards_.push_back(std::make_unique<Cluster>(std::move(cc)));
  }
  shard_params_.assign(cfg_.shards, cfg_.params);
  queues_.resize(cfg_.shards);
}

ServingPlane::~ServingPlane() = default;

std::uint64_t ServingPlane::OpenSession() {
  // Skip ids the wire path implicitly opened (clients pick their own).
  while (sessions_.count(next_session_) != 0) ++next_session_;
  const std::uint64_t id = next_session_++;
  sessions_[id].open = true;
  stats_.sessions_opened += 1;
  Counters().sessions_opened.Add(1);
  return id;
}

bool ServingPlane::CloseSession(std::uint64_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) return false;
  it->second.open = false;  // tombstoned: the id is never reused as-open
  stats_.sessions_closed += 1;
  Counters().sessions_closed.Add(1);
  return true;
}

bool ServingPlane::SessionOpen(std::uint64_t session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.open;
}

std::uint32_t ServingPlane::RetryHint(std::uint32_t shard) const {
  // Deterministic queueing-delay estimate: depth/max_inflight is the number
  // of Poll rounds before a newly admitted request would run.
  const std::uint64_t rounds =
      queues_[shard].size() / std::max<std::size_t>(1, cfg_.max_inflight);
  return static_cast<std::uint32_t>(cfg_.retry_after_ms * (1 + rounds));
}

ServingPlane::Admission ServingPlane::Submit(std::uint64_t session,
                                             ServingOp op,
                                             std::uint64_t file_id,
                                             Bytes payload) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open) {
    stats_.refused += 1;
    Counters().refused.Add(1);
    return {ServingStatus::kBadSession, 0};
  }
  return Offer(session, it->second.last_request + 1, op, file_id,
               std::move(payload));
}

ServingPlane::Admission ServingPlane::SubmitFrame(
    const net::ServingRequestFrame& frame) {
  // Epoch check first: a frame stamped with any epoch other than the current
  // one was routed under a different fleet shape, so its shard header is
  // meaningless -- refuse before validating it. Epoch 0 is the unversioned
  // sentinel (a client that has never seen a map) and is always accepted; a
  // FUTURE epoch is refused too, since this plane cannot honor a map it has
  // not published. The gateway attaches the current RoutingMap to every
  // kBadRoute response so the sender can re-route instead of failing.
  if (frame.epoch != 0 && frame.epoch != route_epoch_) {
    stats_.refused += 1;
    stats_.stale_epoch += 1;
    Counters().refused.Add(1);
    Counters().stale_epoch.Add(1);
    return {ServingStatus::kBadRoute, 0};
  }
  // Routing header is validated, never trusted: a client that hashed with a
  // stale shard map must learn about it instead of landing on a wrong group.
  if (IsRoutedOp(frame.op) && frame.shard != router_.ShardOf(frame.file_id)) {
    stats_.refused += 1;
    Counters().refused.Add(1);
    return {ServingStatus::kBadRoute, 0};
  }
  auto it = sessions_.find(frame.session);
  if (it == sessions_.end()) {
    // Implicit open on first use: the wire session lifecycle.
    it = sessions_.emplace(frame.session, Session{true, 0}).first;
    stats_.sessions_opened += 1;
    Counters().sessions_opened.Add(1);
  }
  if (!it->second.open || frame.request <= it->second.last_request) {
    // Closed session, or a replayed/reordered ordinal: the per-session
    // sequence is strictly increasing by contract.
    stats_.refused += 1;
    Counters().refused.Add(1);
    return {ServingStatus::kBadSession, 0};
  }
  return Offer(frame.session, frame.request, frame.op, frame.file_id,
               frame.payload);
}

ServingPlane::Admission ServingPlane::Offer(std::uint64_t session,
                                            std::uint64_t request,
                                            ServingOp op,
                                            std::uint64_t file_id,
                                            Bytes payload) {
  Session& sess = sessions_.at(session);
  auto refuse = [&](ServingStatus st) -> Admission {
    stats_.refused += 1;
    Counters().refused.Add(1);
    return {st, 0};
  };

  Pending p;
  p.session = session;
  p.request = request;
  p.op = op;
  p.file_id = file_id;
  p.payload = std::move(payload);
  p.accept_ns = MonotonicNanos();

  // Immediate ops never touch a queue: they carry no backend work.
  if (op == ServingOp::kPing) {
    sess.last_request = request;
    stats_.accepted += 1;
    Counters().accepted.Add(1);
    CompleteImmediate(p, ServingStatus::kOk, std::move(p.payload));
    return {ServingStatus::kOk, 0};
  }
  if (op == ServingOp::kCloseSession) {
    sess.last_request = request;
    stats_.accepted += 1;
    Counters().accepted.Add(1);
    CloseSession(session);
    CompleteImmediate(p, ServingStatus::kOk, {});
    return {ServingStatus::kOk, 0};
  }

  // Semantic validation against the live namespace. Uploads claim their id
  // at admission so two queued uploads of one id cannot both be accepted;
  // downloads/deletes of a queued-but-unexecuted upload are admitted and
  // ordered behind it by the shard's FIFO queue.
  const std::uint32_t shard = router_.ShardOf(file_id);
  if (op == ServingOp::kUpload) {
    if (files_.count(file_id) != 0) return refuse(ServingStatus::kDuplicate);
    if (p.payload.empty()) return refuse(ServingStatus::kFailed);
  } else {
    auto f = files_.find(file_id);
    if (f == files_.end()) return refuse(ServingStatus::kNotFound);
  }

  // Admission control: bounded queue, reject-with-retry-after.
  if (queues_[shard].size() >= cfg_.admission_capacity) {
    stats_.rejected += 1;
    Counters().rejected.Add(1);
    return {ServingStatus::kRejected, RetryHint(shard)};
  }

  sess.last_request = request;
  if (op == ServingOp::kUpload) files_.emplace(file_id, shard);
  queues_[shard].push_back(std::move(p));
  stats_.accepted += 1;
  Counters().accepted.Add(1);
  const std::uint64_t depth = queues_[shard].size();
  if (depth > stats_.queue_peak) {
    stats_.queue_peak = depth;
    Counters().queue_peak.Set(depth);
  }
  return {ServingStatus::kOk, 0};
}

void ServingPlane::CompleteImmediate(const Pending& p, ServingStatus status,
                                     Bytes payload) {
  ServingCompletion c;
  c.session = p.session;
  c.request = p.request;
  c.op = p.op;
  c.file_id = p.file_id;
  c.status = status;
  c.payload = std::move(payload);
  c.queue_ns = 0;
  c.latency_ns = MonotonicNanos() - p.accept_ns;
  completions_.push_back(std::move(c));
  if (status == ServingStatus::kOk) {
    stats_.completed += 1;
    Counters().completed.Add(1);
  } else {
    stats_.failed += 1;
    Counters().failed.Add(1);
  }
}

ServingPlane::Executed ServingPlane::Execute(std::uint32_t shard, Pending p) {
  obs::Span span(obs::SpanKind::kServingRequest, p.session, p.file_id);
  Cluster& cluster = *shards_[shard];
  const std::uint64_t start_ns = MonotonicNanos();

  Executed r;
  ServingCompletion& c = r.completion;
  c.session = p.session;
  c.request = p.request;
  c.op = p.op;
  c.file_id = p.file_id;
  c.queue_ns = start_ns - p.accept_ns;
  c.status = ServingStatus::kOk;
  try {
    switch (p.op) {
      case ServingOp::kUpload:
        cluster.Upload(p.file_id, p.payload);
        Counters().uploads.Add(1);
        break;
      case ServingOp::kDownload: {
        // Policy-driven read: the plane's configured default, overridden
        // per-request when the frame carried a serialized ReadPolicy. The
        // request ordinal rides along as the spec's freshness tag.
        ReadSpec spec;
        spec.file_id = p.file_id;
        spec.policy = p.payload.empty() ? cfg_.read_policy
                                        : ReadPolicy::Deserialize(p.payload);
        spec.ordinal = p.request;
        c.payload = cluster.Download(spec);
        Counters().downloads.Add(1);
        break;
      }
      case ServingOp::kDelete:
        cluster.Delete(p.file_id);
        r.erase_file = true;
        Counters().deletes.Add(1);
        break;
      default:
        // Immediate ops never reach a queue.
        c.status = ServingStatus::kFailed;
        break;
    }
  } catch (const Error& e) {
    LogWarn() << "serving: " << net::ServingOpName(p.op) << " file "
              << p.file_id << " failed: " << e.what();
    c.status = ServingStatus::kFailed;
    // A failed upload surrenders its namespace claim.
    if (p.op == ServingOp::kUpload) r.erase_file = true;
  }
  c.latency_ns = MonotonicNanos() - p.accept_ns;
  return r;
}

std::size_t ServingPlane::Poll() {
  // Phase 1 (serial): pop this poll's batch per shard, in admission order.
  std::vector<std::vector<Pending>> batches(cfg_.shards);
  std::size_t executed = 0;
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    for (std::size_t k = 0; k < cfg_.max_inflight && !queues_[s].empty();
         ++k) {
      batches[s].push_back(std::move(queues_[s].front()));
      queues_[s].pop_front();
      ++executed;
    }
  }
  if (executed == 0) return 0;

  // Phase 2 (parallel): shards execute concurrently; each writes only its
  // own results slot. A shard's batch stays sequential (same-shard requests
  // may touch the same file), and shards never share a file (the router
  // partitions the namespace), so cross-shard execution is independent pure
  // compute against disjoint clusters. Nested pool use inside Cluster runs
  // inline on the worker (common/task_pool.h contract).
  std::vector<std::vector<Executed>> results(cfg_.shards);
  GlobalPool().ParallelFor(0, cfg_.shards, [&](std::size_t s) {
    results[s].reserve(batches[s].size());
    for (Pending& p : batches[s]) {
      results[s].push_back(Execute(static_cast<std::uint32_t>(s),
                                   std::move(p)));
    }
  });

  // Phase 3 (serial): apply effects and emit completions in shard order --
  // exactly the order the old sequential shard-by-shard loop produced, so
  // the completion stream is bit-identical for any pool size.
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    for (Executed& r : results[s]) {
      if (r.erase_file) files_.erase(r.completion.file_id);
      if (r.completion.status == ServingStatus::kOk) {
        stats_.completed += 1;
        Counters().completed.Add(1);
      } else {
        stats_.failed += 1;
        Counters().failed.Add(1);
      }
      completions_.push_back(std::move(r.completion));
    }
  }
  return executed;
}

std::size_t ServingPlane::Drain() {
  std::size_t executed = 0;
  while (TotalQueued() > 0) executed += Poll();
  return executed;
}

std::vector<ServingCompletion> ServingPlane::TakeCompletions() {
  std::vector<ServingCompletion> out;
  out.swap(completions_);
  return out;
}

std::size_t ServingPlane::TotalQueued() const {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

bool ServingPlane::BatchRefresh() {
  // An admitted-but-unexecuted upload has claimed its id in files_ but the
  // hosts hold nothing yet; launching refresh for it would both fail ("not
  // enough holders") and poison the hypervisor catalog with an id it never
  // stored. Those ids refresh in the next window, after their upload runs.
  std::vector<std::set<std::uint64_t>> queued_uploads(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    for (const Pending& p : queues_[s]) {
      if (p.op == ServingOp::kUpload) queued_uploads[s].insert(p.file_id);
    }
  }

  // Shard-local sorted populations: launch order is a pure function of the
  // live namespace, never of submission interleaving.
  std::vector<std::vector<std::uint64_t>> per_shard(cfg_.shards);
  for (const auto& [id, shard] : files_) {
    if (queued_uploads[shard].count(id) == 0) per_shard[shard].push_back(id);
  }

  bool ok = true;
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    std::vector<std::uint64_t>& population = per_shard[s];
    if (population.empty()) continue;
    const std::size_t batch =
        cfg_.refresh_batch == 0 ? population.size() : cfg_.refresh_batch;
    for (std::size_t pos = 0; pos < population.size(); pos += batch) {
      const std::size_t end = std::min(pos + batch, population.size());
      std::span<const std::uint64_t> chunk(population.data() + pos, end - pos);
      obs::Span span(obs::SpanKind::kServingRefresh, s, chunk.size());
      ok = shards_[s]->hypervisor().RefreshFiles(chunk) && ok;
      stats_.refresh_batches += 1;
      stats_.refresh_files += chunk.size();
      Counters().refresh_batches.Add(1);
      Counters().refresh_files.Add(chunk.size());
    }
  }
  return ok;
}

bool ServingPlane::RunProactiveWindow() {
  // One full window per shard: the hypervisor's refresh pass launches the
  // whole shard population before a single pump (Hypervisor::RefreshFiles),
  // so the per-window cost is one batched round-trip structure plus the
  // reboot schedule -- never a pump per file.
  bool ok = true;
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    ok = shards_[s]->RunUpdateWindow().ok && ok;
  }
  return ok;
}

net::RoutingMap ServingPlane::routing_map() const {
  net::RoutingMap map;
  map.epoch = route_epoch_;
  map.shards.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    net::RoutingShard entry;
    entry.n = static_cast<std::uint32_t>(shard_params_[s].n);
    entry.t = static_cast<std::uint32_t>(shard_params_[s].t);
    entry.migrating = 0;  // migrations are synchronous; see the header
    map.shards.push_back(entry);
  }
  return map;
}

bool ServingPlane::Reshard(std::uint32_t shard, const pss::Params& to) {
  Require(shard < cfg_.shards, "ServingPlane::Reshard: no such shard");
  obs::Span span(obs::SpanKind::kReshardShard, shard, route_epoch_ + 1);

  // Drain only the migrating shard's queue: admitted work must execute
  // against a consistent group, and the namespace claims of queued uploads
  // must resolve before the cutover. Other shards' queues are untouched --
  // they keep serving through Poll() while this shard migrates.
  while (!queues_[shard].empty()) {
    Pending p = std::move(queues_[shard].front());
    queues_[shard].pop_front();
    Executed r = Execute(shard, std::move(p));
    if (r.erase_file) files_.erase(r.completion.file_id);
    if (r.completion.status == ServingStatus::kOk) {
      stats_.completed += 1;
      Counters().completed.Add(1);
    } else {
      stats_.failed += 1;
      Counters().failed.Add(1);
    }
    completions_.push_back(std::move(r.completion));
  }

  try {
    shards_[shard]->Reshare(to);
  } catch (const Error& e) {
    // Failed migrations leave the old group serving (Hypervisor::Reshare
    // mutates nothing on failure), so the epoch must not move either.
    LogWarn() << "serving: reshard of shard " << shard << " failed: "
              << e.what();
    return false;
  }
  shard_params_[shard] = to;
  ++route_epoch_;
  stats_.reshards += 1;
  Counters().reshards.Add(1);
  return true;
}

// ---- gateway --------------------------------------------------------------

ServingGateway::ServingGateway(ServingPlane& plane, net::Transport& transport,
                               std::uint32_t id)
    : plane_(plane), transport_(transport), id_(id) {}

void ServingGateway::HandleMessage(const net::Message& msg) {
  if (msg.type != net::MsgType::kServingRequest) return;  // not for us
  net::ServingRequestFrame frame;
  try {
    frame = net::ServingRequestFrame::Deserialize(msg.payload);
  } catch (const ParseError& e) {
    ++bad_frames_;
    Counters().bad_frames.Add(1);
    LogWarn() << "gateway: dropping unparseable serving frame from "
              << msg.from << ": " << e.what();
    return;
  }

  // Translate the per-peer wire session into a plane session (two clients
  // may both call their first session "1").
  const auto wire_key = std::make_pair(msg.from, frame.session);
  auto it = wire_to_.find(wire_key);
  if (it == wire_to_.end()) {
    const std::uint64_t plane_session = plane_.OpenSession();
    it = wire_to_.emplace(wire_key, plane_session).first;
    plane_to_.emplace(plane_session, wire_key);
  }
  net::ServingRequestFrame routed = frame;
  routed.session = it->second;

  const ServingPlane::Admission adm = plane_.SubmitFrame(routed);
  if (adm.status != net::ServingStatus::kOk) {
    net::ServingResponseFrame resp;
    resp.session = frame.session;
    resp.request = frame.request;
    resp.status = adm.status;
    resp.retry_after_ms = adm.retry_after_ms;
    if (adm.status == net::ServingStatus::kBadRoute) {
      // Push the current routing map with the refusal so the sender can
      // re-stamp and re-route instead of failing the operation (the
      // bounded-retry loop in ServingWireClient).
      resp.payload = plane_.routing_map().Serialize();
    }
    Respond(msg.from, frame.file_id, resp);
  }
  // Accepted requests answer through Pump() once their completion lands.
}

std::size_t ServingGateway::Pump() {
  plane_.Poll();
  std::size_t sent = 0;
  for (ServingCompletion& c : plane_.TakeCompletions()) {
    auto route = plane_to_.find(c.session);
    if (route == plane_to_.end()) continue;  // in-process session, not ours
    net::ServingResponseFrame resp;
    resp.session = route->second.second;
    resp.request = c.request;
    resp.status = c.status;
    resp.payload = std::move(c.payload);
    Respond(route->second.first, c.file_id, resp);
    ++sent;
    if (c.op == net::ServingOp::kCloseSession) {
      wire_to_.erase(route->second);
      plane_to_.erase(route);
    }
  }
  return sent;
}

void ServingGateway::Respond(std::uint32_t peer, std::uint64_t file_id,
                             const net::ServingResponseFrame& frame) {
  net::Message m;
  m.from = id_;
  m.to = peer;
  m.type = net::MsgType::kServingResponse;
  m.file_id = file_id;
  m.payload = frame.Serialize();
  transport_.Send(std::move(m));
}

}  // namespace pisces
