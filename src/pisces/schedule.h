// Restart schedules (paper SectionVI-D).
//
// PiSCES does not rely on adversary detection: hosts are rebooted on a
// predetermined schedule. A *complete* schedule guarantees every host reboots
// every round (the paper's choice, realized as round robin in batches of r);
// a *randomized* schedule picks r hosts per step uniformly, trading the
// guarantee for unpredictability ("an analysis is left for future work" --
// we implement both and benchmark the difference in the ablation).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"

namespace pisces {

class RestartSchedule {
 public:
  virtual ~RestartSchedule() = default;

  // Batches of hosts to reboot (sequentially) during one update window.
  virtual std::vector<std::vector<std::uint32_t>> BatchesForWindow(
      std::uint32_t window) = 0;

  virtual const char* Name() const = 0;
};

// Round robin: every window reboots all n hosts in ceil(n/r) batches of at
// most r; the batch boundaries rotate with the window index so host i is not
// always grouped with the same peers.
class RoundRobinSchedule : public RestartSchedule {
 public:
  RoundRobinSchedule(std::size_t n, std::size_t r);
  std::vector<std::vector<std::uint32_t>> BatchesForWindow(
      std::uint32_t window) override;
  const char* Name() const override { return "round-robin"; }

 private:
  std::size_t n_;
  std::size_t r_;
};

// Randomized: each window picks ceil(n/r) batches of r hosts uniformly
// without replacement within the window (so expected coverage is complete
// but any particular host may be skipped across windows when n % r != 0).
class RandomizedSchedule : public RestartSchedule {
 public:
  RandomizedSchedule(std::size_t n, std::size_t r, std::uint64_t seed);
  std::vector<std::vector<std::uint32_t>> BatchesForWindow(
      std::uint32_t window) override;
  const char* Name() const override { return "randomized"; }

 private:
  std::size_t n_;
  std::size_t r_;
  Rng rng_;
};

std::unique_ptr<RestartSchedule> MakeSchedule(const std::string& name,
                                              std::size_t n, std::size_t r,
                                              std::uint64_t seed);

}  // namespace pisces
