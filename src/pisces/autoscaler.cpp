#include "pisces/autoscaler.h"

#include <algorithm>

#include "common/log.h"
#include "obs/registry.h"

namespace pisces {

namespace {

struct ElasticCounters {
  obs::Counter& grows = obs::RegisterCounter(
      "elastic.grows", "shard fleets grown by the autoscaler");
  obs::Counter& shrinks = obs::RegisterCounter(
      "elastic.shrinks", "shard fleets shrunk by the autoscaler");
  obs::Counter& reprovisions = obs::RegisterCounter(
      "elastic.reprovisions",
      "dead slots re-provisioned through a degenerate reshare");
  obs::Counter& holds = obs::RegisterCounter(
      "elastic.holds", "autoscaler sweeps that left a shard unchanged");
  obs::Counter& denied = obs::RegisterCounter(
      "elastic.denied", "scale decisions denied by budget or a failed reshard");
};

ElasticCounters& Counters() {
  static ElasticCounters* c = new ElasticCounters();
  return *c;
}

}  // namespace

const char* ScaleActionName(ScaleAction action) {
  switch (action) {
    case ScaleAction::kHold: return "hold";
    case ScaleAction::kGrow: return "grow";
    case ScaleAction::kShrink: return "shrink";
    case ScaleAction::kReprovision: return "reprovision";
  }
  return "unknown";
}

ElasticAutoscaler::ElasticAutoscaler(AutoscalerConfig cfg)
    : cfg_(std::move(cfg)) {
  Require(cfg_.min_n >= 4, "ElasticAutoscaler: min_n below any valid group");
  Require(cfg_.min_n <= cfg_.max_n, "ElasticAutoscaler: min_n > max_n");
  Require(cfg_.grow_step > 0, "ElasticAutoscaler: grow_step must be positive");
  Require(cfg_.grow_pressure > cfg_.shrink_pressure,
          "ElasticAutoscaler: grow threshold must sit above shrink");
}

pss::Params ElasticAutoscaler::ScaledParams(const pss::Params& base,
                                            std::size_t n) {
  pss::Params p = base;
  p.n = n;
  // Largest t with 3t + l < n AND r + l < n - 3t, i.e. the most corruption
  // tolerance the packed constraints allow at this fleet size.
  for (std::size_t t = (n - 1) / 3 + 1; t-- > 1;) {
    p.t = t;
    if (p.IsValid()) return p;
  }
  throw Error("ElasticAutoscaler: no valid threshold at n=" +
              std::to_string(n) + " for l=" + std::to_string(base.l) +
              " r=" + std::to_string(base.r));
}

double ElasticAutoscaler::HourlyCost(std::size_t n) const {
  const InstanceSpec& spec = SpecOf(cfg_.instance);
  return static_cast<double>(n) *
         (cfg_.spot ? spec.spot_per_hour : spec.dedicated_per_hour);
}

ScaleDecision ElasticAutoscaler::Decide(const ShardSignal& signal,
                                        std::uint64_t tick) {
  ScaleDecision d;
  d.target = signal.params;

  auto it = applied_tick_.find(signal.shard);
  if (it != applied_tick_.end() && tick - it->second < cfg_.cooldown_ticks) {
    d.reason = "cooldown";
    return d;
  }

  // Health first: a fleet with dead slots is losing redundancy every tick it
  // waits, so re-provisioning outranks any demand signal. The degenerate
  // reshare (same shape) re-deals every file across the full fleet, which
  // boots and refills the dead slots without reconstructing anything --
  // redistribution-as-recovery.
  if (signal.dead_hosts > 0) {
    d.action = ScaleAction::kReprovision;
    d.reason = std::to_string(signal.dead_hosts) +
               " dead slot(s); re-provision via degenerate reshare";
    return d;
  }

  const double pressure =
      signal.capacity == 0
          ? 0.0
          : static_cast<double>(signal.queue_depth) /
                static_cast<double>(signal.capacity);

  if (pressure > cfg_.grow_pressure && signal.params.n < cfg_.max_n) {
    const std::size_t n2 =
        std::min(cfg_.max_n, signal.params.n + cfg_.grow_step);
    const double cost2 = HourlyCost(n2);
    if (cfg_.budget_per_hour > 0.0 && cost2 > cfg_.budget_per_hour) {
      d.reason = "grow denied: $" + std::to_string(cost2) +
                 "/h exceeds budget $" + std::to_string(cfg_.budget_per_hour) +
                 "/h";
      Counters().denied.Add(1);
      return d;
    }
    d.action = ScaleAction::kGrow;
    d.target = ScaledParams(signal.params, n2);
    d.dollars_per_hour_delta = cost2 - HourlyCost(signal.params.n);
    d.reason = "pressure " + std::to_string(pressure) + " above grow threshold";
    return d;
  }

  if (pressure < cfg_.shrink_pressure && signal.params.n > cfg_.min_n) {
    const std::size_t n2 = std::max(
        cfg_.min_n, signal.params.n > cfg_.grow_step
                        ? signal.params.n - cfg_.grow_step
                        : cfg_.min_n);
    try {
      d.target = ScaledParams(signal.params, n2);
    } catch (const Error&) {
      d.reason = "shrink infeasible: no valid threshold at n=" +
                 std::to_string(n2);
      return d;
    }
    d.action = ScaleAction::kShrink;
    d.dollars_per_hour_delta = HourlyCost(n2) - HourlyCost(signal.params.n);
    d.reason =
        "pressure " + std::to_string(pressure) + " below shrink threshold";
    return d;
  }

  d.reason = "pressure in band";
  return d;
}

void ElasticAutoscaler::NoteApplied(std::uint32_t shard, std::uint64_t tick) {
  applied_tick_[shard] = tick;
}

AutoscaleReport RunAutoscaler(ServingPlane& plane, ElasticAutoscaler& scaler,
                              std::uint64_t tick) {
  AutoscaleReport rep;
  for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
    ShardSignal sig;
    sig.shard = s;
    sig.queue_depth = plane.QueueDepth(s);
    sig.capacity = plane.config().admission_capacity;
    sig.params = plane.shard_params(s);
    Cluster& cluster = plane.shard(s);
    for (std::uint32_t i = 0; i < sig.params.n; ++i) {
      if (!cluster.host(i).online() || cluster.net().IsOffline(i)) {
        sig.dead_hosts += 1;
      }
    }

    const ScaleDecision d = scaler.Decide(sig, tick);
    if (d.action == ScaleAction::kHold) {
      rep.holds += 1;
      Counters().holds.Add(1);
      continue;
    }
    LogInfo() << "autoscaler: shard " << s << " " << ScaleActionName(d.action)
              << " to n=" << d.target.n << " t=" << d.target.t << " ("
              << d.reason << ", $" << d.dollars_per_hour_delta << "/h)";
    if (!plane.Reshard(s, d.target)) {
      rep.denied += 1;
      Counters().denied.Add(1);
      continue;
    }
    scaler.NoteApplied(s, tick);
    switch (d.action) {
      case ScaleAction::kGrow:
        rep.grows += 1;
        Counters().grows.Add(1);
        break;
      case ScaleAction::kShrink:
        rep.shrinks += 1;
        Counters().shrinks.Add(1);
        break;
      case ScaleAction::kReprovision:
        rep.reprovisions += 1;
        Counters().reprovisions.Add(1);
        break;
      case ScaleAction::kHold:
        break;
    }
  }
  return rep;
}

}  // namespace pisces
