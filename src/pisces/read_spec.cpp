#include "pisces/read_spec.h"

namespace pisces {

Bytes ReadPolicy::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(path));
  w.U32(contacts);
  w.U8(static_cast<std::uint8_t>(fallback));
  return w.Take();
}

ReadPolicy ReadPolicy::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ReadPolicy p;
  const std::uint8_t raw_path = r.U8();
  if (raw_path > static_cast<std::uint8_t>(ReadPath::kStaircase)) {
    throw ParseError("ReadPolicy: unknown read path");
  }
  p.path = static_cast<ReadPath>(raw_path);
  p.contacts = r.U32();
  const std::uint8_t raw_fb = r.U8();
  if (raw_fb > static_cast<std::uint8_t>(ReadFallback::kFail)) {
    throw ParseError("ReadPolicy: unknown fallback");
  }
  p.fallback = static_cast<ReadFallback>(raw_fb);
  if (!r.AtEnd()) throw ParseError("ReadPolicy: trailing bytes");
  return p;
}

ReadSpec ReadSpec::Classic(std::uint64_t file_id) {
  ReadSpec s;
  s.file_id = file_id;
  return s;
}

ReadSpec ReadSpec::Staircase(std::uint64_t file_id, std::uint32_t contacts,
                             ReadFallback fallback) {
  ReadSpec s;
  s.file_id = file_id;
  s.policy.path = ReadPath::kStaircase;
  s.policy.contacts = contacts;
  s.policy.fallback = fallback;
  return s;
}

}  // namespace pisces
