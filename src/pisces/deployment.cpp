#include "pisces/deployment.h"

#include <algorithm>
#include <sstream>

namespace pisces {

Deployment Deployment::SingleCloud(std::size_t n) {
  Deployment d;
  d.kind = DeploymentKind::kSingleCloud;
  d.provider_of_host.assign(n, 0);
  d.providers = 1;
  return d;
}

Deployment Deployment::MultiCloud(std::size_t n, std::uint32_t m) {
  Require(m >= 1, "MultiCloud: need at least one provider");
  Deployment d;
  d.kind = DeploymentKind::kMultiCloud;
  d.providers = m;
  d.provider_of_host.resize(n);
  // Round-robin gives the most even split.
  for (std::size_t i = 0; i < n; ++i) {
    d.provider_of_host[i] = static_cast<std::uint32_t>(i % m);
  }
  return d;
}

Deployment Deployment::Hybrid(std::size_t n, std::uint32_t m_remote) {
  Require(m_remote >= 1, "Hybrid: need at least one remote provider");
  Deployment d;
  d.kind = DeploymentKind::kHybrid;
  d.providers = m_remote + 1;  // provider 0 = trusted local server
  d.provider_of_host.resize(n);
  const std::size_t local = n / 3;  // paper: local server holds n/3 shares
  for (std::size_t i = 0; i < n; ++i) {
    if (i < local) {
      d.provider_of_host[i] = 0;
    } else {
      d.provider_of_host[i] = 1 + static_cast<std::uint32_t>((i - local) % m_remote);
    }
  }
  return d;
}

std::vector<std::uint32_t> Deployment::HostsOf(std::uint32_t provider) const {
  std::vector<std::uint32_t> hosts;
  for (std::size_t i = 0; i < provider_of_host.size(); ++i) {
    if (provider_of_host[i] == provider) {
      hosts.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return hosts;
}

std::size_t Deployment::SharesAt(std::uint32_t provider) const {
  return HostsOf(provider).size();
}

bool Deployment::CoalitionBreaches(
    std::span<const std::uint32_t> providers_compromised, std::size_t t) const {
  std::size_t exposed = 0;
  for (std::uint32_t p : providers_compromised) exposed += SharesAt(p);
  return exposed > t;
}

std::size_t Deployment::MinProvidersToBreach(std::size_t t) const {
  std::vector<std::size_t> sizes;
  for (std::uint32_t p = 0; p < providers; ++p) sizes.push_back(SharesAt(p));
  std::sort(sizes.rbegin(), sizes.rend());
  std::size_t exposed = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    exposed += sizes[i];
    if (exposed > t) return i + 1;
  }
  return sizes.size() + 1;  // unreachable threshold: no coalition suffices
}

std::string Deployment::Describe() const {
  std::ostringstream out;
  switch (kind) {
    case DeploymentKind::kSingleCloud: out << "single-cloud"; break;
    case DeploymentKind::kMultiCloud: out << "multi-cloud"; break;
    case DeploymentKind::kHybrid: out << "hybrid"; break;
  }
  out << " n=" << n() << " providers=" << providers << " [";
  for (std::uint32_t p = 0; p < providers; ++p) {
    if (p) out << ",";
    out << SharesAt(p);
  }
  out << "]";
  return out.str();
}

}  // namespace pisces
