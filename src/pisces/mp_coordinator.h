// Wire-driving hypervisor for the process-per-host deployment.
//
// The in-process Hypervisor (pisces/hypervisor.h) drives its hosts through
// direct privileged calls; across process boundaries the same lifecycle
// travels the control message types (kBootHost/kHaltHost/kStatusRequest/
// kStatusReport/kAbortStuck). MpCoordinator owns the certificate authority,
// the cert directory, and the file catalog, and runs the proactive window
// over real sockets with the paper's bounded-delay discipline: every RPC wait
// carries a deadline (MpConfig::deadline_ms); an expiry is counted as
// net.deadline_expiries, the wedged sessions are aborted over the wire, and
// the operation is retried against the hosts that are actually alive.
//
// Crash-restart handling (the drills in tests/mp_drill.cpp): a SIGKILLed
// host's supervisor restarts the process; the fresh hostd owns no key
// material and announces itself with kStatusReport(online=false). The
// coordinator queues that announcement and, between operations, puts the
// host through the secure-reboot path -- halt (idempotent wipe), boot with
// fresh CA-signed keys for a new epoch, then share recovery from surviving
// holders, at most r hosts per batch (the paper's reboot-rate bound).
//
// Partial refresh application (some holders applied the new shares, some
// wedged with the old ones -- possible when a crash lands mid-verdict) is
// repaired the way the in-process hypervisor repairs stale hosts: whichever
// side of the split holds a recovery quorum becomes the survivor set and the
// minority side is recovered from it before the refresh is retried.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "crypto/ca.h"
#include "net/async_tcp.h"
#include "pisces/file_codec.h"
#include "pisces/host_process.h"
#include "pisces/mp_config.h"

namespace pisces {

struct MpWindowReport {
  bool refresh_ok = false;
  std::uint32_t refresh_attempts = 0;
  std::uint32_t hosts_rebooted = 0;
  std::uint32_t deadline_expiries = 0;
  std::uint32_t stale_resyncs = 0;  // partial-apply repairs
};

class MpCoordinator {
 public:
  MpCoordinator(MpConfig cfg, net::AsyncTcpEndpoint& endpoint);

  // Runs inside every deadline wait; the launcher installs the supervisor's
  // child-reaping poll here so restarts happen while the coordinator blocks.
  void SetTick(std::function<void()> tick) { tick_ = std::move(tick); }
  // Test seam: fires once, right after the first refresh attempt of the next
  // window is launched (the drill SIGKILLs hosts here, mid-protocol).
  void SetMidWindowHook(std::function<void()> hook) {
    mid_window_hook_ = std::move(hook);
  }

  Bytes ca_pk() const;
  // Current cert directory (hosts + client). Rebooted hosts re-broadcast
  // their fresh certs over the wire, so a snapshot is only a starting point.
  const std::map<std::uint32_t, crypto::HostCert>& directory() const {
    return directory_;
  }
  // Issues (and adds to the directory) the client identity. Must run before
  // BootAll so hosts learn the client cert with their boot material.
  std::pair<crypto::HostCert, Bytes> IssueClient();

  // Initial bring-up: waits for every hostd's announcement, then boots it.
  bool BootAll();
  // Secure-reboots one host: halt, fresh keys for a new epoch, boot.
  bool BootHost(std::uint32_t id);

  // Registers an uploaded file so refresh/recovery cover it.
  void RegisterUpload(const FileMeta& meta);

  std::optional<HostStatus> QueryStatus(std::uint32_t id);

  // One proactive window: service pending restarts, refresh every catalog
  // file (with retries, wedge-abort, and stale-resync), service restarts
  // discovered meanwhile.
  MpWindowReport RunWindow();

  // Reboots + recovers every host that announced "needs boot", r at a time.
  // Returns the number of hosts put through the path.
  std::uint32_t ProcessAnnouncements();

  // Drains announcements/stray traffic for `ms` without driving an operation.
  void Pump(int ms);

  std::uint64_t deadline_expiries() const { return deadline_expiries_; }

 private:
  using Pred = std::function<bool(const net::Message&)>;

  // Receives until `pred` matches or the bounded-delay deadline fires.
  // Non-matching traffic is stashed (protocol completions) or absorbed
  // (announcements); a nullopt return has already counted the expiry.
  std::optional<net::Message> WaitMatch(const Pred& pred,
                                        std::uint64_t deadline_ms,
                                        bool count_expiry = true);
  void Absorb(const net::Message& msg);  // announcement bookkeeping
  std::optional<HostStatus> WaitAck(std::uint32_t from, std::uint32_t token);

  // Lifecycle RPCs report pisces::StatusCode (common/status.h): kOk on an
  // acknowledged transition, kTimeout when no ack arrived before the
  // bounded-delay deadline, kFailed when the ack contradicts the request
  // (wrong epoch, still online after halt). Logs carry StatusName().
  StatusCode SendBoot(std::uint32_t id, std::uint32_t epoch);
  StatusCode HaltHost(std::uint32_t id);
  void AbortStuck(const std::vector<std::uint32_t>& hosts);

  // One refresh pass over one file; fills ok/timeout splits for the caller.
  bool RefreshFile(std::uint64_t file_id,
                   const std::vector<std::uint32_t>& participants,
                   std::set<std::uint32_t>* applied,
                   std::set<std::uint32_t>* wedged);
  // Recovers `targets`' shares of every catalog file from `survivors`.
  bool RecoverTargets(const std::vector<std::uint32_t>& targets,
                      const std::vector<std::uint32_t>& survivors);
  bool RebootAndRecover(const std::vector<std::uint32_t>& targets);
  std::uint32_t MinQuorum() const;

  MpConfig cfg_;
  net::AsyncTcpEndpoint& ep_;
  Rng rng_;
  crypto::CertAuthority ca_;
  std::map<std::uint32_t, crypto::HostCert> directory_;
  std::map<std::uint64_t, FileMeta> catalog_;
  std::uint32_t next_epoch_ = 1;
  std::uint32_t next_seq_ = 1000;   // op sequence for kStartRefresh/Recovery
  std::uint32_t next_token_ = 1;    // row echo token for control acks
  std::set<std::uint32_t> needs_boot_;
  std::deque<net::Message> stash_;  // completions received out of band
  std::function<void()> tick_;
  std::function<void()> mid_window_hook_;
  std::uint64_t deadline_expiries_ = 0;
};

}  // namespace pisces
