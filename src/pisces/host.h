// Share storage host S_i: the paper's Fig 5 control flow as a message-driven
// state machine.
//
// A host consumes events from its transport: Set (share upload),
// Reconstruct (share download), Update/rerandomization (refresh), Recovery,
// and Process Message (the data-plane messages of the PSS protocols). Heavy
// share operations are spread over a pool of b workers (the paper's
// "process pool", realized as threads since there is no GIL to dodge here).
//
// The hypervisor drives the host lifecycle through direct Boot/Shutdown calls
// (modeling the CSP's privileged control channel, Fig 4): Shutdown wipes all
// state -- secure disassociation -- and Boot installs a fresh hypervisor-
// signed keypair which the host broadcasts to rejoin the network.
//
// All data-plane payloads are encrypted and authenticated with per-peer,
// per-epoch channel keys derived from the hypervisor-signed host keys
// (paper SectionIII-C.3 "Key Secrecy").
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/clock.h"
#include "common/rng.h"
#include "crypto/ca.h"
#include "crypto/channel.h"
#include "net/sync_network.h"
#include "pisces/metrics.h"
#include "pisces/share_store.h"
#include "pss/recovery.h"
#include "pss/refresh.h"
#include "pss/reshare.h"

namespace pisces {

class ByzantineActor;

// `row` marker distinguishing refresh sub-sessions from per-target recovery
// sub-sessions in kDeal/kCheckShare/kVerdict headers.
inline constexpr std::uint32_t kRefreshMarker = 0xFFFFFFFF;

struct HostConfig {
  std::uint32_t id = 0;
  pss::Params params;
  std::shared_ptr<const field::FpCtx> ctx;
  bool encrypt_links = true;
  std::uint64_t rng_seed = 1;
};

class Host : public net::MessageHandler {
 public:
  Host(HostConfig cfg, net::Transport& transport,
       const crypto::SchnorrGroup& group, Bytes ca_pk);

  std::uint32_t id() const { return cfg_.id; }
  bool online() const { return online_; }
  std::uint32_t epoch() const { return epoch_; }

  // --- hypervisor control plane (direct privileged calls, Fig 4) ---
  // Installs a fresh signed keypair, clears session state, and broadcasts the
  // cert to `peers` (all other endpoints that need to talk to this host).
  void Boot(std::uint32_t epoch, crypto::HostCert cert, Bytes sk,
            std::span<const std::uint32_t> peers);
  // Secure disassociation: wipes shares, keys, channels, and sessions.
  void Shutdown();

  void HandleMessage(const net::Message& msg) override;

  // Registers a peer cert without the network (used for initial bring-up of
  // the client, whose cert hosts must know before the first upload).
  void InstallPeerCert(const crypto::HostCert& cert);

  // Aborts sessions that cannot complete (bounded-delay timeout fired by the
  // synchrony layer). Returns human-readable descriptions of what was stuck.
  std::vector<std::string> AbortStuckSessions();

  bool HasActiveSessions() const;

  // --- dealer-exclusion diagnostics (privileged hypervisor calls) ---
  // Snapshot of a refresh session wedged at the bounded-delay timeout: which
  // dealers' dealings never arrived. Call before AbortStuckSessions.
  struct StuckRefresh {
    std::uint64_t file_id = 0;
    std::uint32_t epoch = 0;  // hypervisor op sequence
    std::vector<std::uint32_t> missing_dealers;
    bool waiting_verdicts = false;  // all deals arrived; stuck later
  };
  std::vector<StuckRefresh> StuckRefreshSessions() const;

  // Same idea for recovery sessions wedged at the bounded-delay timeout:
  // which survivors' mask dealings never arrived (survivor side) and which
  // survivors' masked shares never arrived (target side). The hypervisor
  // applies the dealer-exclusion strike rule to both.
  struct StuckRecovery {
    std::uint64_t file_id = 0;
    std::uint32_t epoch = 0;  // hypervisor op sequence
    std::uint32_t target = 0;
    std::vector<std::uint32_t> missing_dealers;  // survivor-session view
    std::vector<std::uint32_t> missing_senders;  // target-session view
  };
  std::vector<StuckRecovery> StuckRecoverySessions() const;

  // Arms (or disarms, with nullptr) the active-adversary hooks: a non-null
  // actor makes this host cheat per its ByzantineStrategy. Stored state stays
  // honest; the actor only perturbs what leaves on the wire. With no actor
  // armed every code path is a null-pointer check away from the honest
  // build (the armed-vs-unarmed differential test pins this down).
  void ArmByzantine(ByzantineActor* actor) { byz_ = actor; }

  // Raw dealing columns of a refresh session that failed hyperinvertible
  // verification, archived so the hypervisor can attribute the corrupt
  // dealer: deals_by_dealer[i][g] is the value this host received from
  // participants[i] for group g. Consumed (erased) by the call.
  struct FailedRefresh {
    std::vector<std::uint32_t> participants;
    std::vector<std::vector<field::FpElem>> deals_by_dealer;
    std::vector<bool> deal_seen;
  };
  std::optional<FailedRefresh> TakeFailedRefresh(std::uint64_t file_id,
                                                 std::uint32_t epoch);

  // --- resharing (privileged hypervisor calls; docs/resharding.md) ---
  // Computes this host's masked reshare contribution toward the new group
  // from nothing but its OWN stored share vector of `file_id`. Returns
  // nullopt when the host is offline, does not hold the file, or (armed with
  // a withholding actor) silently skips the send. The finished matrix passes
  // through the Byzantine deal-tamper seam before it leaves the host, so the
  // verification path downstream faces the same adversary as refresh.
  std::optional<std::vector<std::vector<field::FpElem>>> ComputeReshare(
      std::uint64_t file_id, const pss::ResharePublic& pub,
      std::size_t ordinal);

  // Adopts a new group shape: wipes every stored share (the old-scheme share
  // state is obsolete after a reshare -- proactive obsolescence) and rebuilds
  // the local scheme. Keys, certs, and channels survive: resharing is a
  // share-state operation; key rotation stays with secure reboot.
  void AdoptParams(const pss::Params& params);

  // Installs a reshared file (privileged re-provisioning; the reshare analog
  // of the recovery target's apply step).
  void InstallShares(const FileMeta& meta,
                     std::vector<field::FpElem> shares);

  ShareStore& store() { return store_; }
  const ShareStore& store() const { return store_; }
  HostMetrics& metrics() { return metrics_; }
  const HostMetrics& metrics() const { return metrics_; }
  const pss::PackedShamir& shamir() const { return *shamir_; }

  // Number of refresh/recovery verifications this host rejected (nonzero only
  // under fault injection).
  std::uint64_t verdicts_rejected() const { return verdicts_rejected_; }

 private:
  struct RefreshSession {
    pss::RefreshPlan plan;
    std::optional<pss::VssBatch> batch;
    std::vector<std::vector<field::FpElem>> deals_by_dealer;  // [n][G]
    std::vector<bool> deal_seen;
    std::size_t deals = 0;
    std::vector<std::vector<field::FpElem>> outputs;  // [n][G] after transform
    // Verifier role: check_row -> per-holder values ([k][G]).
    std::map<std::uint32_t, std::vector<std::vector<field::FpElem>>> check_vals;
    std::map<std::uint32_t, std::size_t> check_counts;
    std::set<std::uint32_t> verdict_rows;
    bool failed = false;
    bool done = false;
  };

  struct SurvivorSession {  // one per (file, target)
    pss::RecoveryPlan plan;
    std::uint32_t target = 0;
    // Reduced-repair point budget per block (pss/comm_efficient.h); 0 means
    // classic full masked vectors from every survivor.
    std::size_t mask_budget = 0;
    std::optional<pss::VssBatch> batch;
    std::vector<std::vector<field::FpElem>> deals_by_dealer;
    std::vector<bool> deal_seen;
    std::size_t deals = 0;
    std::vector<std::vector<field::FpElem>> outputs;
    std::map<std::uint32_t, std::vector<std::vector<field::FpElem>>> check_vals;
    std::map<std::uint32_t, std::size_t> check_counts;
    std::set<std::uint32_t> verdict_rows;
    bool failed = false;
    bool done = false;
  };

  struct TargetSession {  // rebooted host waiting for masked shares
    FileMeta meta;
    pss::RecoveryPlan plan;
    std::size_t mask_budget = 0;  // 0 = full masked vectors
    std::map<std::uint32_t, std::vector<field::FpElem>> masked_by_sender;
    bool failed = false;
    bool done = false;
  };

  using RefreshKey = std::pair<std::uint64_t, std::uint32_t>;  // file, epoch
  using SurvivorKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;

  // --- message handlers (the *Plain variants take decrypted payloads and
  // are also the replay targets for buffered out-of-order messages) ---
  void OnSetShares(const net::Message& msg);
  void OnReconstructRequest(const net::Message& msg);
  void OnDeleteFile(const net::Message& msg);
  void OnStartRefresh(const net::Message& msg);
  void OnStartRecovery(const net::Message& msg);
  void OnDealPlain(const net::Message& msg);
  void OnCheckSharePlain(const net::Message& msg);
  void OnVerdictPlain(const net::Message& msg);
  void OnMaskedSharePlain(const net::Message& msg);
  void OnHostCert(const net::Message& msg);

  // --- refresh steps ---
  void RefreshTransformAndCheck(RefreshKey key, RefreshSession& s);
  void MaybeVerifyRefreshRow(RefreshKey key, RefreshSession& s,
                             std::uint32_t row);
  void AcceptRefreshVerdict(RefreshKey key, RefreshSession& s,
                            std::uint32_t row, bool ok);
  void MaybeApplyRefresh(RefreshKey key, RefreshSession& s);

  // --- recovery steps ---
  void SurvivorTransformAndCheck(SurvivorKey key, SurvivorSession& s);
  void MaybeVerifySurvivorRow(SurvivorKey key, SurvivorSession& s,
                              std::uint32_t row);
  void AcceptSurvivorVerdict(SurvivorKey key, SurvivorSession& s,
                             std::uint32_t row, bool ok);
  void MaybeSendMaskedShares(SurvivorKey key, SurvivorSession& s);
  void MaybeFinishTarget(std::uint64_t file_id, std::uint32_t seq,
                         TargetSession& s);

  // --- plumbing ---
  void SendMetered(net::Message msg, PhaseMetrics& bucket);
  Bytes SealFor(std::uint32_t peer, std::span<const std::uint8_t> plaintext);
  Bytes OpenFrom(std::uint32_t peer, std::span<const std::uint8_t> payload);
  crypto::SecureChannel& ChannelTo(std::uint32_t peer);
  // When `accused` is non-empty the report carries the accused host ids after
  // the ok byte (recovery dispute); an empty list keeps the legacy one-byte
  // payload, so honest-path bytes are unchanged.
  void ReportPhaseDone(std::uint64_t file_id, std::uint32_t epoch,
                       std::uint32_t kind, bool ok, PhaseMetrics& bucket,
                       const std::vector<std::uint32_t>& accused = {});
  void ReplayPending();

  HostConfig cfg_;
  net::Transport& transport_;
  const crypto::SchnorrGroup& group_;
  Bytes ca_pk_;
  Rng rng_;

  std::shared_ptr<pss::PackedShamir> shamir_;
  ShareStore store_;
  HostMetrics metrics_;

  bool online_ = false;
  std::uint32_t epoch_ = 0;
  Bytes sk_;
  crypto::HostCert my_cert_;
  std::map<std::uint32_t, crypto::HostCert> peer_certs_;
  // Channel cache keyed by peer; entry remembers the epoch pair it was
  // derived for and is rebuilt when either side's cert changes.
  struct CachedChannel {
    std::uint64_t epoch_pair;
    crypto::SecureChannel channel;
  };
  std::map<std::uint32_t, CachedChannel> channels_;

  std::map<RefreshKey, RefreshSession> refresh_;
  std::map<SurvivorKey, SurvivorSession> survivor_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, TargetSession> target_;
  std::vector<net::Message> pending_;  // out-of-order protocol messages
  std::uint64_t verdicts_rejected_ = 0;
  // Failed-verification archives for hypervisor-side dealer attribution.
  std::map<RefreshKey, FailedRefresh> failed_refresh_;
  // Start-once guards: duplicated control messages (fault injection) must not
  // resurrect sessions that already ran under the same (file, seq) key.
  std::set<RefreshKey> refresh_started_;
  std::set<std::pair<std::uint64_t, std::uint32_t>> recovery_started_;
  // Active-adversary hooks; nullptr on honest hosts (pisces/byzantine.h).
  ByzantineActor* byz_ = nullptr;
};

}  // namespace pisces
