// Wire-side serving client with versioned routing.
//
// ServingWireClient is the sender half of the serving plane's re-route
// protocol (docs/resharding.md): it caches the most recently adopted
// net::RoutingMap, stamps its epoch and the ShardRouter shard into every
// outgoing ServingRequestFrame, and when the plane refuses a frame with
// kBadRoute it adopts the map pushed back in the refusal payload and
// re-sends the SAME request ordinal under the new stamp. Refused ordinals
// are never consumed by the plane, so the re-send is not a replay.
//
// The re-route loop is bounded: each request may be re-stamped at most
// cfg.reroute_budget times before the kBadRoute is delivered to the caller
// as a terminal response (counted in obs as serving.reroutes_exhausted). A
// refusal triggers a re-send whenever the adopted map would CHANGE the
// request's stamp -- including when a sibling request's refusal already
// adopted the fresher map -- and is terminal when re-stamping would change
// nothing (re-sending could only be refused again). A map whose epoch is
// not strictly newer than the adopted one is discarded -- rollback to an
// older routing view is never accepted, even when a refusal carries it.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/serving_frame.h"
#include "net/sync_network.h"
#include "pisces/shard_router.h"

namespace pisces {

struct WireClientConfig {
  std::uint32_t id = net::kGatewayId + 1;
  std::uint32_t gateway = net::kGatewayId;
  // Re-sends allowed per request after a kBadRoute refusal. 0 disables
  // re-routing (every kBadRoute is terminal).
  std::size_t reroute_budget = 3;
};

class ServingWireClient : public net::MessageHandler {
 public:
  ServingWireClient(WireClientConfig cfg, net::Transport& transport);

  std::uint32_t id() const { return cfg_.id; }

  // Adopts a routing map (initial provisioning, or a push from a kBadRoute
  // refusal). Returns false and changes nothing when map.epoch is not
  // strictly newer than the adopted epoch (monotone-epoch contract).
  bool AdoptMap(const net::RoutingMap& map);
  const net::RoutingMap& map() const { return map_; }

  // Wire session ids are client-chosen; the gateway namespaces them per
  // peer, so a simple local counter suffices.
  std::uint64_t OpenSession() { return next_session_++; }

  // Stamps epoch + shard from the adopted map (epoch 0 / shard 0 before any
  // map is adopted -- the unversioned legacy path), assigns the session's
  // next ordinal, and sends. Returns the ordinal used.
  std::uint64_t Send(std::uint64_t session, net::ServingOp op,
                     std::uint64_t file_id, Bytes payload = {});

  void HandleMessage(const net::Message& msg) override;

  // Terminal responses, in arrival order: everything except kBadRoute
  // refusals that were absorbed by a successful re-route.
  std::vector<net::ServingResponseFrame> TakeResponses();

  std::uint64_t reroutes() const { return reroutes_; }
  std::uint64_t reroutes_exhausted() const { return reroutes_exhausted_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  void Transmit(const net::ServingRequestFrame& frame);

  WireClientConfig cfg_;
  net::Transport& transport_;
  net::RoutingMap map_;  // epoch 0 until first adoption
  std::uint64_t next_session_ = 1;
  std::map<std::uint64_t, std::uint64_t> next_request_;  // per session

  struct PendingRequest {
    net::ServingRequestFrame frame;  // as last sent (for re-stamping)
    std::size_t reroutes_left = 0;
  };
  // Keyed by (session, ordinal): the gateway echoes both back unchanged.
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingRequest> pending_;

  std::vector<net::ServingResponseFrame> responses_;
  std::uint64_t reroutes_ = 0;
  std::uint64_t reroutes_exhausted_ = 0;
};

}  // namespace pisces
