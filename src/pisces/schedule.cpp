#include "pisces/schedule.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace pisces {

RoundRobinSchedule::RoundRobinSchedule(std::size_t n, std::size_t r)
    : n_(n), r_(r) {
  Require(n >= 1 && r >= 1 && r < n, "RoundRobinSchedule: bad n/r");
}

std::vector<std::vector<std::uint32_t>> RoundRobinSchedule::BatchesForWindow(
    std::uint32_t window) {
  std::vector<std::vector<std::uint32_t>> batches;
  // Rotate the starting host by window so pairings change over time.
  std::size_t start = (static_cast<std::size_t>(window) * r_) % n_;
  std::vector<std::uint32_t> order(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    order[i] = static_cast<std::uint32_t>((start + i) % n_);
  }
  for (std::size_t off = 0; off < n_; off += r_) {
    std::size_t end = std::min(n_, off + r_);
    batches.emplace_back(order.begin() + off, order.begin() + end);
  }
  return batches;
}

RandomizedSchedule::RandomizedSchedule(std::size_t n, std::size_t r,
                                       std::uint64_t seed)
    : n_(n), r_(r), rng_(seed) {
  Require(n >= 1 && r >= 1 && r < n, "RandomizedSchedule: bad n/r");
}

std::vector<std::vector<std::uint32_t>> RandomizedSchedule::BatchesForWindow(
    std::uint32_t /*window*/) {
  std::vector<std::uint32_t> order(n_);
  for (std::size_t i = 0; i < n_; ++i) order[i] = static_cast<std::uint32_t>(i);
  // Fisher-Yates.
  for (std::size_t i = n_; i-- > 1;) {
    std::size_t j = rng_.Below(i + 1);
    std::swap(order[i], order[j]);
  }
  std::vector<std::vector<std::uint32_t>> batches;
  for (std::size_t off = 0; off < n_; off += r_) {
    std::size_t end = std::min(n_, off + r_);
    batches.emplace_back(order.begin() + off, order.begin() + end);
  }
  return batches;
}

std::unique_ptr<RestartSchedule> MakeSchedule(const std::string& name,
                                              std::size_t n, std::size_t r,
                                              std::uint64_t seed) {
  if (name == "round-robin") return std::make_unique<RoundRobinSchedule>(n, r);
  if (name == "randomized") {
    return std::make_unique<RandomizedSchedule>(n, r, seed);
  }
  throw InvalidArgument("MakeSchedule: unknown schedule '" + name + "'");
}

}  // namespace pisces
