// Deterministic sharded file namespace.
//
// The serving plane routes every file id to exactly one shard -- one
// independent PSS group with its own (n, t, l) cluster -- by hashing the id
// through the splitmix64 finalizer and reducing modulo the shard count. The
// map is a pure function of (file_id, shard_count): no state, no RNG, no
// dependence on upload order, task-pool size, or process lifetime, so a
// restarted gateway routes every file to the same shard it was stored on
// (tested in determinism_test.cpp). Raw modulo over sequential ids would
// stripe adjacent ids onto adjacent shards -- fine for balance, terrible for
// hot ranges -- so the id is mixed first; the balance test in
// serving_test.cpp pins the spread.
#pragma once

#include <cstdint>

namespace pisces {

class ShardRouter {
 public:
  explicit ShardRouter(std::uint32_t shard_count);

  std::uint32_t shard_count() const { return shards_; }
  std::uint32_t ShardOf(std::uint64_t file_id) const;

  // The stateless core, usable without an instance.
  static std::uint32_t Route(std::uint64_t file_id, std::uint32_t shard_count);

 private:
  std::uint32_t shards_;
};

}  // namespace pisces
