#include "pisces/adversary.h"

#include "obs/registry.h"

namespace pisces {
namespace {

// Mobile-adversary activity ledger (adv.* namespace; the active engine's
// counters live under byz.*). Drills and the chaos suite read these as
// registry deltas instead of threading bespoke getters around.
obs::Counter& HostsCorrupted() {
  static obs::Counter& c = obs::RegisterCounter(
      "adv.hosts_corrupted", "host corruption events (mobile adversary)");
  return c;
}
obs::Counter& SharesCaptured() {
  static obs::Counter& c = obs::RegisterCounter(
      "adv.shares_captured", "share elements exfiltrated from corrupted hosts");
  return c;
}
obs::Counter& ReconstructionAttempts() {
  static obs::Counter& c = obs::RegisterCounter(
      "adv.reconstruction_attempts",
      "same-period reconstruction attempts by the adversary");
  return c;
}
obs::Counter& MixedAttempts() {
  static obs::Counter& c = obs::RegisterCounter(
      "adv.mixed_reconstruction_attempts",
      "cross-period (mixed-share) reconstruction attempts");
  return c;
}

}  // namespace

void Adversary::Corrupt(std::uint32_t host) {
  Require(host < cluster_->config().params.n, "Adversary: no such host");
  corrupted_.insert(host);
  HostsCorrupted().Add(1);
  SnapshotHost(host);
}

void Adversary::SnapshotHost(std::uint32_t host) {
  Host& h = cluster_->host(host);
  if (!h.online()) return;
  for (std::uint64_t file_id : h.store().FileIds()) {
    const FileMeta& meta = h.store().MetaOf(file_id);
    metas_[file_id] = meta;
    std::vector<field::FpElem> shares = h.store().Load(file_id);
    h.store().Stash(file_id);
    SharesCaptured().Add(shares.size());
    captures_[file_id][period_][host] = std::move(shares);
  }
}

void Adversary::ObserveWindow() {
  ++period_;
  // Reboots expel the adversary: with a complete schedule every host reboots
  // every window, so the corruption set empties unless re-established.
  // (We model expulsion by checking the host's key epoch advanced; with the
  // complete schedule that is every host.)
  corrupted_.clear();
}

std::size_t Adversary::MaxSamePeriodShares(std::uint64_t file_id) const {
  auto it = captures_.find(file_id);
  if (it == captures_.end()) return 0;
  std::size_t best = 0;
  for (const auto& [period, by_host] : it->second) {
    best = std::max(best, by_host.size());
  }
  return best;
}

bool Adversary::ExceedsPrivacyThreshold(std::uint64_t file_id) const {
  return MaxSamePeriodShares(file_id) > cluster_->config().params.t;
}

std::optional<Bytes> Adversary::AttemptReconstruction(
    std::uint64_t file_id) const {
  ReconstructionAttempts().Add(1);
  auto it = captures_.find(file_id);
  if (it == captures_.end()) return std::nullopt;
  auto meta_it = metas_.find(file_id);
  if (meta_it == metas_.end()) return std::nullopt;
  const FileMeta& meta = meta_it->second;
  const pss::Params& p = cluster_->config().params;
  const auto& ctx = cluster_->ctx();
  pss::PackedShamir shamir(cluster_->ctx_ptr(), p);
  FileCodec codec(ctx, p.l);

  for (const auto& [period, by_host] : it->second) {
    if (by_host.size() < p.degree() + 1) continue;
    std::vector<std::uint32_t> parties;
    std::vector<const std::vector<field::FpElem>*> rows;
    for (const auto& [host, shares] : by_host) {
      if (shares.size() != meta.num_blocks) continue;
      parties.push_back(host);
      rows.push_back(&shares);
    }
    if (parties.size() < p.degree() + 1) continue;
    parties.resize(p.degree() + 1);
    rows.resize(p.degree() + 1);

    auto weights = shamir.ReconstructionWeights(parties);
    std::vector<field::FpElem> elems(meta.num_blocks * p.l, ctx.Zero());
    for (std::size_t blk = 0; blk < meta.num_blocks; ++blk) {
      for (std::size_t j = 0; j < p.l; ++j) {
        field::FpElem acc = ctx.Zero();
        for (std::size_t k = 0; k < parties.size(); ++k) {
          acc = ctx.Add(acc, ctx.Mul((*weights)[j][k], (*rows[k])[blk]));
        }
        elems[blk * p.l + j] = acc;
      }
    }
    try {
      return codec.Decode(meta, elems);
    } catch (const ParseError&) {
      continue;  // garbage -- not actually a consistent period
    }
  }
  return std::nullopt;
}

std::optional<Bytes> Adversary::AttemptMixedReconstruction(
    std::uint64_t file_id) const {
  MixedAttempts().Add(1);
  auto it = captures_.find(file_id);
  if (it == captures_.end()) return std::nullopt;
  auto meta_it = metas_.find(file_id);
  if (meta_it == metas_.end()) return std::nullopt;
  const FileMeta& meta = meta_it->second;
  const pss::Params& p = cluster_->config().params;
  const auto& ctx = cluster_->ctx();

  // Flatten captures across periods, one (most recent) vector per host.
  std::map<std::uint32_t, const std::vector<field::FpElem>*> latest;
  for (const auto& [period, by_host] : it->second) {
    for (const auto& [host, shares] : by_host) {
      if (shares.size() == meta.num_blocks) latest[host] = &shares;
    }
  }
  if (latest.size() < p.degree() + 1) return std::nullopt;

  pss::PackedShamir shamir(cluster_->ctx_ptr(), p);
  FileCodec codec(ctx, p.l);
  std::vector<std::uint32_t> parties;
  std::vector<const std::vector<field::FpElem>*> rows;
  for (const auto& [host, shares] : latest) {
    parties.push_back(host);
    rows.push_back(shares);
    if (parties.size() == p.degree() + 1) break;
  }
  auto weights = shamir.ReconstructionWeights(parties);
  std::vector<field::FpElem> elems(meta.num_blocks * p.l, ctx.Zero());
  for (std::size_t blk = 0; blk < meta.num_blocks; ++blk) {
    for (std::size_t j = 0; j < p.l; ++j) {
      field::FpElem acc = ctx.Zero();
      for (std::size_t k = 0; k < parties.size(); ++k) {
        acc = ctx.Add(acc, ctx.Mul((*weights)[j][k], (*rows[k])[blk]));
      }
      elems[blk * p.l + j] = acc;
    }
  }
  try {
    return codec.Decode(meta, elems);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace pisces
