// Policy-driven read API: every download in the system is described by a
// ReadSpec instead of a bag of positional arguments.
//
// The spec names WHAT to read (file id, freshness ordinal) and HOW to read
// it (which reconstruct codepoint, how many hosts to contact, what to do
// when the cheap path cannot complete). Client::BeginDownload,
// Cluster::Download, the serving plane's download op, and the hypervisor's
// repair reads all consume the same vocabulary, so a bandwidth experiment is
// a one-line policy change at any layer instead of a new overload.
//
// Read paths (docs/bandwidth.md):
//   kFullShare  -- the classic oracle: ask every host for its full share
//                  vector, reconstruct from the first degree+1 responses.
//                  Wire bytes are unchanged from the pre-ReadSpec protocol.
//   kStaircase  -- staircase-style striped read: contact d in (t, n] hosts
//                  and download only the needed fraction of each share
//                  (pss/comm_efficient.h). Total share traffic drops from
//                  n full vectors to exactly degree+1 vectors' worth.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace pisces {

enum class ReadPath : std::uint8_t {
  kFullShare = 0,
  kStaircase = 1,
};

// What a reader does when the selected path cannot complete (not enough
// striped responses, integrity failure on the striped reconstruct, or an
// infeasible contact budget).
enum class ReadFallback : std::uint8_t {
  kClassic = 0,  // retry on the full-share oracle path
  kFail = 1,     // surface the failure to the caller
};

// The HOW of a read, independent of any particular file. Layers that apply
// one policy to many files (serving config, hypervisor repair) hold this.
struct ReadPolicy {
  ReadPath path = ReadPath::kFullShare;
  // Staircase contact budget d; 0 means "all n hosts" (the widest stripe,
  // which minimizes per-host download). Ignored on the full-share path.
  std::uint32_t contacts = 0;
  ReadFallback fallback = ReadFallback::kClassic;

  // Wire form carried in a serving download frame's payload (empty payload =
  // the plane's configured default policy). Fixed 6 bytes: path, contacts,
  // fallback -- an explicit ablation codepoint on the serving wire.
  Bytes Serialize() const;
  static ReadPolicy Deserialize(std::span<const std::uint8_t> data);
};

// One concrete read: a policy applied to a file.
struct ReadSpec {
  std::uint64_t file_id = 0;
  ReadPolicy policy;
  // Freshness tag (per-session request ordinal on the serving plane, 0 for
  // ad-hoc reads); carried into traces so a completion can be matched to
  // the request that priced it.
  std::uint64_t ordinal = 0;

  static ReadSpec Classic(std::uint64_t file_id);
  static ReadSpec Staircase(std::uint64_t file_id, std::uint32_t contacts = 0,
                            ReadFallback fallback = ReadFallback::kClassic);
};

}  // namespace pisces
