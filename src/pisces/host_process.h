// One storage host as an operating-system process: the Host state machine
// wrapped with a wire control plane (docs/deployment.md).
//
// In-process clusters drive Host lifecycle through direct privileged calls
// (Boot/Shutdown, the paper's Fig 4 management channel). A process-per-host
// deployment cannot: the hypervisor lives in another process. HostProcess is
// the adapter -- it owns the async TCP endpoint and the Host, services the
// control message types (kBootHost/kHaltHost/kStatusRequest/kAbortStuck) by
// calling the privileged methods, and forwards everything else to the Host.
//
// Control messages are only honored from the hypervisor endpoint id; the boot
// payload carries the CA public key (trust-on-first-boot over the loopback
// management link, the deployment doc spells out the threat model).
//
// A freshly exec'd hostd owns no key material and announces itself by
// repeating kStatusReport(online=false) to the hypervisor until booted --
// that announcement is what lets the coordinator detect a crash-restarted
// host and put it through the secure-reboot + recovery path.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "crypto/ca.h"
#include "net/async_tcp.h"
#include "pisces/host.h"
#include "pisces/mp_config.h"

namespace pisces {

// kBootHost payload: everything a fresh host needs to rejoin the network.
struct BootMaterial {
  Bytes ca_pk;
  std::uint32_t epoch = 0;
  crypto::HostCert cert;
  Bytes sk;
  std::vector<std::uint32_t> peers;
  std::vector<crypto::HostCert> directory;  // peer certs (client included)

  Bytes Serialize() const;
  static BootMaterial Deserialize(std::span<const std::uint8_t> data);
};

// kStatusReport payload. `row` of the carrying message echoes the row of the
// request it answers (0 for unsolicited announcements).
struct HostStatus {
  bool online = false;
  std::uint32_t epoch = 0;
  std::vector<std::uint64_t> files;

  Bytes Serialize() const;
  static HostStatus Deserialize(std::span<const std::uint8_t> data);
};

class HostProcess {
 public:
  HostProcess(MpConfig cfg, std::uint32_t id);

  // Serves until Stop() (tests) or process death (deployment). Announces
  // "needs boot" every announce interval while not booted.
  void Serve();
  void Stop() { running_ = false; }

  // One service step, factored out so tests can drive it synchronously.
  void HandleMessage(const net::Message& msg);

  net::AsyncTcpEndpoint& endpoint() { return *endpoint_; }
  Host* host() { return host_.get(); }

 private:
  void OnBootHost(const net::Message& msg);
  void OnHaltHost(const net::Message& msg);
  void SendStatus(std::uint32_t echo_row);

  MpConfig cfg_;
  std::uint32_t id_;
  std::shared_ptr<const field::FpCtx> ctx_;
  std::unique_ptr<net::AsyncTcpEndpoint> endpoint_;
  std::unique_ptr<Host> host_;
  Bytes ca_pk_;  // learned at first boot
  bool running_ = true;
};

// Entry point for the pisces_hostd binary.
int RunHostProcess(const std::string& config_path, std::uint32_t id);

}  // namespace pisces
