// EC2 instance specifications and pricing (paper Table I) plus the machine
// model that converts measured CPU time on the build machine into modeled
// time on a paper-era instance.
//
// The paper's dollar figures are (number of instances) x (hourly price) x
// (time). We measure real CPU time of the real protocol, scale it by a
// calibration factor (modern core vs. 2016 EC2 compute unit) and by the
// instance's per-core speed, then price the result. Absolute dollars are
// therefore calibration-dependent; ratios and trends are not.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace pisces {

enum class InstanceType { kSmall, kMedium, kLarge };

struct InstanceSpec {
  const char* name;
  std::uint32_t vcpus;
  double memory_gib;
  double storage_gb;
  double dedicated_per_hour;  // USD, Table I
  double spot_per_hour;       // USD, Table I
  // Relative per-vCPU compute throughput (EC2 compute units per vCPU):
  // m1.small 1 ECU/1 vCPU, c1.medium 5 ECU/2 vCPU, m1.large 4 ECU/2 vCPU.
  double per_vcpu_speed;
};

const InstanceSpec& SpecOf(InstanceType type);
InstanceType InstanceFromName(const std::string& name);

// Flat additional fee "per hour incurred any hour any instance is used"
// (Table I note).
inline constexpr double kDedicatedRegionFeePerHour = 2.0;

struct MachineModel {
  InstanceType instance = InstanceType::kMedium;
  // How many EC2 compute units one CPU-second on the build machine is worth.
  // Default calibrated for a ~2020s x86 core running this codebase vs. the
  // 2007-era 1.0-1.2 GHz Opteron behind one ECU.
  double build_machine_ecu = 25.0;

  // Modeled seconds an instance needs for `cpu_seconds` of measured work
  // using `threads` workers (capped by the instance's vCPUs; the paper's b).
  double InstanceSeconds(double cpu_seconds, std::uint32_t threads) const;
};

// A priced read plan: which download codepoint the planner picked for a
// deployment and what one reconstruct costs in egress dollars under it.
// Produced by CostModel::PlanRead for the deployment planner's
// dollars-vs-download-bandwidth trade (docs/bandwidth.md).
struct ReadPlanChoice {
  bool staircase = false;      // false = classic full-share read
  std::size_t contacts = 0;    // d for the staircase path (0 on classic)
  double share_bytes = 0.0;    // share evaluations billed per reconstruct
  double dollars_per_read = 0.0;
};

struct CostModel {
  MachineModel machine;
  // Egress is billed per GB leaving the provider; EC2-era internet-out price
  // ~$0.09/GB. Download bandwidth is the one cost that scales with every
  // read, which is what the staircase read path trades against.
  double egress_per_gb = 0.09;

  // Dollars to keep n instances busy for `seconds` (no flat fee).
  double ComputeCost(std::size_t n, double seconds, bool spot) const;
  // Dollars for one full operation window including the flat dedicated fee
  // amortized over the billing hour.
  double WindowCost(std::size_t n, double seconds, bool spot) const;
  // Storage is billed per GB-month; EBS-era price ~$0.10/GB-month.
  double StorageCostPerMonth(double gigabytes) const { return 0.10 * gigabytes; }
  // Dollars for `bytes` of egress.
  double EgressCost(double bytes) const {
    return egress_per_gb * bytes / (1024.0 * 1024.0 * 1024.0);
  }
  // Share bytes one reconstruct of a `share_bytes`-per-host file downloads:
  // the classic path bills all n full share vectors; a staircase read at d
  // contacts bills exactly `need` vectors' worth regardless of d, plus
  // per-contact request overhead.
  static double ReconstructBytes(std::size_t n, std::size_t need,
                                 std::size_t contacts, double share_bytes,
                                 bool staircase,
                                 double per_contact_overhead = 0.0);
  // Picks the cheapest feasible read plan for a group of n hosts needing
  // `need` = degree+1 evaluations per block. Ties prefer wider contact sets
  // (more parallelism at equal dollars).
  ReadPlanChoice PlanRead(std::size_t n, std::size_t need, double share_bytes,
                          double per_contact_overhead = 0.0) const;
};

}  // namespace pisces
