#include "pisces/cluster.h"

#include "common/log.h"
#include "common/task_pool.h"
#include "obs/registry.h"

namespace pisces {

namespace {

obs::Counter& StaircaseFallbacks() {
  static obs::Counter& c = obs::RegisterCounter(
      "comm.staircase_fallbacks",
      "staircase reads that fell back to the classic full-share path");
  return c;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.params.Validate();
  // Honor the paper's per-host worker count b: grow (never shrink) the
  // process-wide pool so Transform's fan-out can actually run b-wide. Pool
  // size affects wall time only, never results.
  EnsureGlobalPoolThreads(cfg_.params.b);
  ctx_ = std::make_shared<const field::FpCtx>(
      field::StandardPrimeBe(cfg_.params.field_bits));
  deployment_ = cfg_.deployment.value_or(Deployment::SingleCloud(cfg_.params.n));
  Require(deployment_.n() == cfg_.params.n,
          "Cluster: deployment size must match n");

  net_ = std::make_unique<net::SimNet>();
  sync_ = std::make_unique<net::SyncNetwork>(*net_);

  HypervisorConfig hc;
  hc.params = cfg_.params;
  hc.ctx = ctx_;
  hc.encrypt_links = cfg_.encrypt_links;
  hc.schedule = cfg_.schedule;
  hc.seed = cfg_.seed;
  hc.repair = cfg_.repair;
  hypervisor_ = std::make_unique<Hypervisor>(hc, *net_, *sync_,
                                             crypto::SchnorrGroup::Default());

  client_endpoint_ = net_->AddEndpoint(net::kClientId);
  auto [cert, sk] = hypervisor_->EnrollExternal(net::kClientId);
  ClientConfig cc;
  cc.id = net::kClientId;
  cc.params = cfg_.params;
  cc.ctx = ctx_;
  cc.encrypt_links = cfg_.encrypt_links;
  cc.rng_seed = cfg_.seed ^ 0xC11E;
  client_ = std::make_unique<Client>(cc, *client_endpoint_,
                                     crypto::SchnorrGroup::Default(),
                                     hypervisor_->ca_public_key(),
                                     std::move(cert), std::move(sk));
  sync_->Register(net::kClientId, client_endpoint_, client_.get());
  // Hosts announced their certs during hypervisor construction, before the
  // client endpoint existed; provision the client from the hypervisor's cert
  // directory (certs are public, hypervisor-signed objects). Later reboots
  // reach the client through the normal kHostCert broadcast.
  for (const auto& [id, cert] : hypervisor_->directory()) {
    if (id != net::kClientId) client_->InstallPeerCert(cert);
  }
  ResetMetrics();
}

Cluster::~Cluster() = default;

FileMeta Cluster::Upload(std::uint64_t file_id,
                         std::span<const std::uint8_t> data) {
  FileMeta meta = client_->BeginUpload(file_id, data);
  sync_->RunToQuiescence();
  // Retry with backoff: the sweep-synchronous fabric models backoff as one
  // full pump per attempt, and each attempt re-sends the cached payloads to
  // unacked hosts only (storing shares twice is idempotent).
  const std::size_t n = cfg_.params.n;
  const std::size_t max_attempts = cfg_.params.t + 2;
  for (std::size_t a = 0;
       a < max_attempts && client_->UploadAcks(file_id) < n; ++a) {
    if (client_->RetryUpload(file_id) == 0) break;
    sync_->RunToQuiescence();
  }
  client_->FinishUpload(file_id);
  // Crashed hosts cannot ack; they receive the file through recovery at
  // their next reboot. The upload stands as long as every reachable host
  // stored it and the missing set stays within the corruption bound.
  std::size_t reachable = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (hypervisor_->host(i).online() && !net_->IsOffline(i)) ++reachable;
  }
  const std::size_t acks = client_->UploadAcks(file_id);
  Require(acks >= reachable && acks + cfg_.params.t >= n,
          "Cluster::Upload: not every reachable host acknowledged");
  return meta;
}

std::optional<Bytes> Cluster::DownloadAttempt(const ReadSpec& spec) {
  client_->BeginDownload(spec);
  sync_->RunToQuiescence();
  auto data = client_->TryAssemble(spec.file_id);
  const std::size_t max_attempts = cfg_.params.t + 2;
  for (std::size_t a = 0; a < max_attempts && !data.has_value(); ++a) {
    client_->RetryDownload(spec);
    sync_->RunToQuiescence();
    data = client_->TryAssemble(spec.file_id);
  }
  return data;
}

Bytes Cluster::Download(const ReadSpec& spec) {
  if (spec.policy.path == ReadPath::kStaircase) {
    try {
      if (auto data = DownloadAttempt(spec)) return std::move(*data);
    } catch (const ParseError& e) {
      // A stripe has no redundancy: any corrupted contribution surfaces as
      // a codec integrity failure here rather than a robust decode.
      LogWarn() << "Cluster: staircase reconstruct failed integrity ("
                << e.what() << ")";
    }
    Require(spec.policy.fallback == ReadFallback::kClassic,
            "Cluster::Download: staircase read failed (fallback disabled)");
    StaircaseFallbacks().Add(1);
    ReadSpec classic = ReadSpec::Classic(spec.file_id);
    classic.ordinal = spec.ordinal;
    auto data = DownloadAttempt(classic);
    Require(data.has_value(), "Cluster::Download: not enough responses");
    return std::move(*data);
  }
  auto data = DownloadAttempt(spec);
  Require(data.has_value(), "Cluster::Download: not enough responses");
  return std::move(*data);
}

void Cluster::Delete(std::uint64_t file_id) {
  client_->RequestDelete(file_id);
  sync_->RunToQuiescence();
  hypervisor_->ForgetFile(file_id);
}

WindowReport Cluster::RunUpdateWindow() { return hypervisor_->RunUpdateWindow(); }

bool Cluster::RefreshAllFiles() { return hypervisor_->RefreshAllFiles(); }

ReshareReport Cluster::Reshare(const pss::Params& to) {
  ReshareReport report;
  if (!hypervisor_->Reshare(to, &report)) {
    std::string detail = "Cluster::Reshare: migration failed";
    for (const std::string& f : report.failures) detail += "; " + f;
    throw Error(detail);
  }
  // The fleet has already adopted `to`; retarget everything fleet-shaped.
  cfg_.params = to;
  deployment_ = Deployment::SingleCloud(to.n);
  EnsureGlobalPoolThreads(to.b);
  client_->AdoptParams(to);
  return report;
}

void Cluster::ArmByzantine(const ByzantinePlan& plan) {
  // Disarm before replacing: hosts must never hold a pointer into an engine
  // that is about to be destroyed.
  DisarmByzantine();
  byzantine_ = std::make_unique<ByzantineEngine>(plan, *ctx_);
  // Cover every physical slot, not just the current n: after a shrink the
  // parked hosts outlive the group shape, and a later grow revives them --
  // they must never come back holding an actor from a destroyed engine.
  for (std::uint32_t i = 0; i < hypervisor_->host_slots(); ++i) {
    hypervisor_->host(i).ArmByzantine(byzantine_->ActorFor(i));
  }
}

void Cluster::DisarmByzantine() {
  for (std::uint32_t i = 0; i < hypervisor_->host_slots(); ++i) {
    hypervisor_->host(i).ArmByzantine(nullptr);
  }
  byzantine_.reset();
}

CostModel Cluster::cost_model() const {
  CostModel model;
  model.machine.instance = cfg_.instance;
  model.machine.build_machine_ecu = cfg_.build_machine_ecu;
  return model;
}

HostMetrics Cluster::TotalMetrics() const {
  HostMetrics total;
  for (std::size_t i = 0; i < cfg_.params.n; ++i) {
    const HostMetrics& m = hypervisor_->host(i).metrics();
    total.rerandomize.Add(m.rerandomize);
    total.recover.Add(m.recover);
    total.serve.Add(m.serve);
    total.faults.Add(m.faults);
  }
  return total;
}

void Cluster::ResetMetrics() {
  for (std::size_t i = 0; i < cfg_.params.n; ++i) {
    hypervisor_->host(i).metrics().Reset();
  }
}

}  // namespace pisces
