#include "pisces/host_process.h"

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "field/primes.h"

namespace pisces {

namespace {
constexpr std::uint64_t kAnnounceIntervalMs = 200;
}

// ---- wire formats ----------------------------------------------------------

Bytes BootMaterial::Serialize() const {
  ByteWriter w;
  w.Blob(ca_pk);
  w.U32(epoch);
  w.Blob(cert.Serialize());
  w.Blob(sk);
  w.U32(static_cast<std::uint32_t>(peers.size()));
  for (std::uint32_t p : peers) w.U32(p);
  w.U32(static_cast<std::uint32_t>(directory.size()));
  for (const auto& c : directory) w.Blob(c.Serialize());
  return w.Take();
}

BootMaterial BootMaterial::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  BootMaterial b;
  const auto ca_pk = r.Blob();
  b.ca_pk.assign(ca_pk.begin(), ca_pk.end());
  b.epoch = r.U32();
  b.cert = crypto::HostCert::Deserialize(r.Blob());
  const auto sk = r.Blob();
  b.sk.assign(sk.begin(), sk.end());
  const std::uint32_t np = r.U32();
  b.peers.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) b.peers.push_back(r.U32());
  const std::uint32_t nc = r.U32();
  b.directory.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    b.directory.push_back(crypto::HostCert::Deserialize(r.Blob()));
  }
  Require(r.AtEnd(), "BootMaterial: trailing bytes");
  return b;
}

Bytes HostStatus::Serialize() const {
  ByteWriter w;
  w.U8(online ? 1 : 0);
  w.U32(epoch);
  w.U32(static_cast<std::uint32_t>(files.size()));
  for (std::uint64_t f : files) w.U64(f);
  return w.Take();
}

HostStatus HostStatus::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HostStatus s;
  s.online = r.U8() != 0;
  s.epoch = r.U32();
  const std::uint32_t nf = r.U32();
  s.files.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) s.files.push_back(r.U64());
  Require(r.AtEnd(), "HostStatus: trailing bytes");
  return s;
}

// ---- HostProcess -----------------------------------------------------------

HostProcess::HostProcess(MpConfig cfg, std::uint32_t id)
    : cfg_(std::move(cfg)), id_(id) {
  cfg_.Validate();
  Require(id_ < cfg_.n, "HostProcess: host id out of range");
  ctx_ = std::make_shared<const field::FpCtx>(
      field::StandardPrimeBe(cfg_.field_bits));

  net::AsyncTcpOptions topts;
  topts.id = id_;
  topts.listen_port = cfg_.HostPort(id_);
  topts.seed = cfg_.seed ^ (0xA5A5u + id_);
  topts.heartbeat_interval_ms = cfg_.heartbeat_ms;
  endpoint_ = std::make_unique<net::AsyncTcpEndpoint>(topts);
  for (std::uint32_t j = 0; j < cfg_.n; ++j) {
    if (j != id_) endpoint_->AddPeer(j, cfg_.HostPort(j));
  }
  endpoint_->AddPeer(net::kHypervisorId, cfg_.HypervisorPort());
  endpoint_->AddPeer(net::kClientId, cfg_.ClientPort());
}

void HostProcess::Serve() {
  std::uint64_t next_announce = 0;
  while (running_) {
    const std::uint64_t now = MonotonicNanos() / 1'000'000;
    const bool booted = host_ != nullptr && host_->online();
    if (!booted && now >= next_announce) {
      SendStatus(0);  // "I exist and need boot material"
      next_announce = now + kAnnounceIntervalMs;
    }
    auto msg = endpoint_->ReceiveWait(50);
    if (msg) HandleMessage(*msg);
  }
}

void HostProcess::HandleMessage(const net::Message& msg) {
  try {
    switch (msg.type) {
      case net::MsgType::kBootHost:
        Require(msg.from == net::kHypervisorId,
                "BootHost: not from the hypervisor");
        OnBootHost(msg);
        return;
      case net::MsgType::kHaltHost:
        Require(msg.from == net::kHypervisorId,
                "HaltHost: not from the hypervisor");
        OnHaltHost(msg);
        return;
      case net::MsgType::kStatusRequest:
        Require(msg.from == net::kHypervisorId,
                "StatusRequest: not from the hypervisor");
        SendStatus(msg.row);
        return;
      case net::MsgType::kAbortStuck: {
        Require(msg.from == net::kHypervisorId,
                "AbortStuck: not from the hypervisor");
        if (host_ != nullptr) {
          for (const auto& what : host_->AbortStuckSessions()) {
            LogWarn() << "hostd " << id_ << ": aborted stuck session: " << what;
          }
        }
        SendStatus(msg.row);  // ack so the coordinator knows the slate is clean
        return;
      }
      default:
        if (host_ != nullptr) host_->HandleMessage(msg);
        return;
    }
  } catch (const ParseError& e) {
    LogWarn() << "hostd " << id_ << ": dropping control message (" << e.what()
              << "): " << msg.Describe();
  } catch (const InvalidArgument& e) {
    LogWarn() << "hostd " << id_ << ": rejecting control message (" << e.what()
              << "): " << msg.Describe();
  }
}

void HostProcess::OnBootHost(const net::Message& msg) {
  BootMaterial boot = BootMaterial::Deserialize(msg.payload);
  Require(boot.cert.host_id == id_, "BootHost: cert is for another host");
  if (ca_pk_.empty()) {
    // Trust-on-first-boot: the CA key rides the privileged management link.
    ca_pk_ = boot.ca_pk;
  } else {
    Require(ca_pk_ == boot.ca_pk, "BootHost: CA key changed across boots");
  }
  if (host_ == nullptr) {
    HostConfig hc;
    hc.id = id_;
    hc.params = cfg_.ToParams();
    hc.ctx = ctx_;
    hc.encrypt_links = cfg_.encrypt;
    hc.rng_seed = cfg_.seed + 7 + id_;
    host_ = std::make_unique<Host>(hc, *endpoint_,
                                   crypto::SchnorrGroup::Default(), ca_pk_);
  }
  if (host_->online()) host_->Shutdown();  // re-boot = disassociate first
  host_->Boot(boot.epoch, boot.cert, std::move(boot.sk), boot.peers);
  for (const auto& cert : boot.directory) {
    if (cert.host_id != id_) host_->InstallPeerCert(cert);
  }
  SendStatus(msg.row);  // boot ack
}

void HostProcess::OnHaltHost(const net::Message& msg) {
  if (host_ != nullptr && host_->online()) host_->Shutdown();
  SendStatus(msg.row);  // halt ack (reports online=false)
}

void HostProcess::SendStatus(std::uint32_t echo_row) {
  HostStatus s;
  if (host_ != nullptr && host_->online()) {
    s.online = true;
    s.epoch = host_->epoch();
    s.files = host_->store().FileIds();
  }
  net::Message m;
  m.from = id_;
  m.to = net::kHypervisorId;
  m.type = net::MsgType::kStatusReport;
  m.row = echo_row;
  m.payload = s.Serialize();
  endpoint_->Send(std::move(m));
}

int RunHostProcess(const std::string& config_path, std::uint32_t id) {
  try {
    HostProcess hp(MpConfig::Load(config_path), id);
    hp.Serve();
    return 0;
  } catch (const Error& e) {
    LogError() << "hostd " << id << ": fatal: " << e.what();
    return 1;
  }
}

}  // namespace pisces
