#include "pisces/file_codec.h"

#include "common/task_pool.h"
#include "obs/trace.h"

namespace pisces {

Bytes FileMeta::Serialize() const {
  ByteWriter w;
  w.U64(file_id);
  w.U64(raw_size);
  w.U64(num_elems);
  w.U64(num_blocks);
  w.Raw(checksum);
  return w.Take();
}

FileMeta FileMeta::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  FileMeta m;
  m.file_id = r.U64();
  m.raw_size = r.U64();
  m.num_elems = r.U64();
  m.num_blocks = r.U64();
  auto cs = r.Raw(m.checksum.size());
  std::copy(cs.begin(), cs.end(), m.checksum.begin());
  return m;
}

std::uint64_t FileCodec::ElemsFor(std::uint64_t size) const {
  const std::uint64_t payload = ctx_->payload_bytes();
  return (8 + size + payload - 1) / payload;
}

std::uint64_t FileCodec::BlocksFor(std::uint64_t size) const {
  return (ElemsFor(size) + l_ - 1) / l_;
}

std::uint64_t FileCodec::PaddingFor(std::uint64_t size) const {
  return BlocksFor(size) * l_ * ctx_->payload_bytes() - size;
}

std::pair<FileMeta, std::vector<field::FpElem>> FileCodec::Encode(
    std::uint64_t file_id, std::span<const std::uint8_t> data,
    std::uint64_t* extra_cpu_ns) const {
  const std::size_t payload = ctx_->payload_bytes();
  FileMeta meta;
  meta.file_id = file_id;
  meta.raw_size = data.size();
  meta.num_elems = ElemsFor(data.size());
  meta.num_blocks = BlocksFor(data.size());
  meta.checksum = crypto::Sha256Hash(data);

  obs::Span span(obs::SpanKind::kCodecEncode, meta.num_blocks);
  Bytes framed(meta.num_blocks * l_ * payload, 0);
  StoreLe64(data.size(), framed.data());
  std::copy(data.begin(), data.end(), framed.begin() + 8);

  // One Montgomery conversion per element, each writing its own slot.
  std::vector<field::FpElem> elems(meta.num_blocks * l_, ctx_->Zero());
  GlobalPool().ParallelFor(
      0, elems.size(),
      [&](std::size_t i) {
        elems[i] = ctx_->FromBytes(
            std::span<const std::uint8_t>(framed).subspan(i * payload, payload));
      },
      extra_cpu_ns);
  return {meta, std::move(elems)};
}

Bytes FileCodec::Decode(const FileMeta& meta,
                        std::span<const field::FpElem> elems,
                        std::uint64_t* extra_cpu_ns) const {
  const std::size_t payload = ctx_->payload_bytes();
  if (elems.size() < meta.num_elems) {
    throw ParseError("FileCodec::Decode: missing elements");
  }
  obs::Span span(obs::SpanKind::kCodecDecode, meta.num_blocks);
  Bytes framed(elems.size() * payload, 0);
  GlobalPool().ParallelFor(
      0, elems.size(),
      [&](std::size_t i) {
        Bytes full = ctx_->ToBytes(elems[i]);  // elem_bytes(), little-endian
        // High bytes beyond the payload must be zero for well-formed elements.
        for (std::size_t j = payload; j < full.size(); ++j) {
          if (full[j] != 0) {
            throw ParseError("FileCodec::Decode: element overflow");
          }
        }
        std::copy(full.begin(), full.begin() + payload,
                  framed.begin() + i * payload);
      },
      extra_cpu_ns);
  if (framed.size() < 8) throw ParseError("FileCodec::Decode: truncated");
  std::uint64_t len = LoadLe64(framed.data());
  if (len != meta.raw_size || framed.size() < 8 + len) {
    throw ParseError("FileCodec::Decode: length mismatch");
  }
  Bytes out(framed.begin() + 8, framed.begin() + 8 + len);
  if (crypto::Sha256Hash(out) != meta.checksum) {
    throw ParseError("FileCodec::Decode: checksum mismatch");
  }
  return out;
}

}  // namespace pisces
