#include "pisces/file_codec.h"

namespace pisces {

Bytes FileMeta::Serialize() const {
  ByteWriter w;
  w.U64(file_id);
  w.U64(raw_size);
  w.U64(num_elems);
  w.U64(num_blocks);
  w.Raw(checksum);
  return w.Take();
}

FileMeta FileMeta::Deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  FileMeta m;
  m.file_id = r.U64();
  m.raw_size = r.U64();
  m.num_elems = r.U64();
  m.num_blocks = r.U64();
  auto cs = r.Raw(m.checksum.size());
  std::copy(cs.begin(), cs.end(), m.checksum.begin());
  return m;
}

std::uint64_t FileCodec::ElemsFor(std::uint64_t size) const {
  const std::uint64_t payload = ctx_->payload_bytes();
  return (8 + size + payload - 1) / payload;
}

std::uint64_t FileCodec::BlocksFor(std::uint64_t size) const {
  return (ElemsFor(size) + l_ - 1) / l_;
}

std::uint64_t FileCodec::PaddingFor(std::uint64_t size) const {
  return BlocksFor(size) * l_ * ctx_->payload_bytes() - size;
}

std::pair<FileMeta, std::vector<field::FpElem>> FileCodec::Encode(
    std::uint64_t file_id, std::span<const std::uint8_t> data) const {
  const std::size_t payload = ctx_->payload_bytes();
  FileMeta meta;
  meta.file_id = file_id;
  meta.raw_size = data.size();
  meta.num_elems = ElemsFor(data.size());
  meta.num_blocks = BlocksFor(data.size());
  meta.checksum = crypto::Sha256Hash(data);

  Bytes framed(meta.num_blocks * l_ * payload, 0);
  StoreLe64(data.size(), framed.data());
  std::copy(data.begin(), data.end(), framed.begin() + 8);

  std::vector<field::FpElem> elems;
  elems.reserve(meta.num_blocks * l_);
  for (std::size_t off = 0; off < framed.size(); off += payload) {
    elems.push_back(
        ctx_->FromBytes(std::span<const std::uint8_t>(framed).subspan(off, payload)));
  }
  return {meta, std::move(elems)};
}

Bytes FileCodec::Decode(const FileMeta& meta,
                        std::span<const field::FpElem> elems) const {
  const std::size_t payload = ctx_->payload_bytes();
  if (elems.size() < meta.num_elems) {
    throw ParseError("FileCodec::Decode: missing elements");
  }
  Bytes framed;
  framed.reserve(elems.size() * payload);
  for (const auto& e : elems) {
    Bytes full = ctx_->ToBytes(e);  // elem_bytes(), little-endian
    // High bytes beyond the payload must be zero for well-formed elements.
    for (std::size_t i = payload; i < full.size(); ++i) {
      if (full[i] != 0) throw ParseError("FileCodec::Decode: element overflow");
    }
    framed.insert(framed.end(), full.begin(), full.begin() + payload);
  }
  if (framed.size() < 8) throw ParseError("FileCodec::Decode: truncated");
  std::uint64_t len = LoadLe64(framed.data());
  if (len != meta.raw_size || framed.size() < 8 + len) {
    throw ParseError("FileCodec::Decode: length mismatch");
  }
  Bytes out(framed.begin() + 8, framed.begin() + 8 + len);
  if (crypto::Sha256Hash(out) != meta.checksum) {
    throw ParseError("FileCodec::Decode: checksum mismatch");
  }
  return out;
}

}  // namespace pisces
