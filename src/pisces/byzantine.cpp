#include "pisces/byzantine.h"

#include "obs/registry.h"
#include "obs/trace.h"

namespace pisces {
namespace {

// Action-side counters: what the adversary actually did. The detection-side
// byz.* counters live at the sites that catch these actions (host,
// hypervisor, client, packed_shamir).
obs::Counter& DealsTampered() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.deals_tampered", "refresh dealings tampered by byzantine dealers");
  return c;
}
obs::Counter& Equivocations() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.equivocations",
      "dealings equivocated (inconsistent rows to different receivers)");
  return c;
}
obs::Counter& SharesTampered() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.shares_tampered",
      "share elements perturbed before serving (client + recovery paths)");
  return c;
}
obs::Counter& MessagesWithheld() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.messages_withheld",
      "protocol messages silently withheld by byzantine hosts");
  return c;
}

}  // namespace

const char* StrategyName(ByzantineStrategy s) {
  switch (s) {
    case ByzantineStrategy::kHonest: return "honest";
    case ByzantineStrategy::kEquivocate: return "equivocate";
    case ByzantineStrategy::kCorruptDeal: return "corrupt_deal";
    case ByzantineStrategy::kWrongShare: return "wrong_share";
    case ByzantineStrategy::kWithhold: return "withhold";
  }
  return "unknown";
}

ByzantinePlan DrawByzantinePlan(std::uint64_t seed, const pss::Params& p) {
  ByzantinePlan plan;
  plan.seed = seed;
  Rng rng(seed);
  // 0..t active corruptions; every drawn schedule stays within what the
  // protocol guarantees to absorb.
  const std::size_t k = rng.Below(p.t + 1);
  // Wrong-share hosts are capped at the masked-share unique-decoding radius
  // for the smallest survivor set recovery uses (n - r survivors): radius =
  // (survivors - d - 1) / 2. Dealer-side strategies have no such cap -- a
  // tampered dealing is detected and the dealer excluded regardless of how
  // many points it corrupts.
  const std::size_t survivors = p.n > p.r ? p.n - p.r : 0;
  std::size_t wrong_share_budget =
      survivors > p.degree() + 1 ? (survivors - p.degree() - 1) / 2 : 0;
  while (plan.hosts.size() < k) {
    auto h = static_cast<std::uint32_t>(rng.Below(p.n));
    if (plan.hosts.count(h) != 0) continue;
    auto s = static_cast<ByzantineStrategy>(1 + rng.Below(4));
    if (s == ByzantineStrategy::kWrongShare) {
      if (wrong_share_budget == 0) {
        constexpr ByzantineStrategy alt[] = {ByzantineStrategy::kEquivocate,
                                             ByzantineStrategy::kCorruptDeal,
                                             ByzantineStrategy::kWithhold};
        s = alt[rng.Below(3)];
      } else {
        --wrong_share_budget;
      }
    }
    plan.hosts[h] = s;
  }
  return plan;
}

ByzantineActor::ByzantineActor(std::uint32_t host, ByzantineStrategy strategy,
                               std::uint64_t seed, const field::FpCtx& ctx)
    : host_(host),
      strategy_(strategy),
      ctx_(&ctx),
      // Mix the host id into the seed so co-corrupted hosts draw
      // independent offset streams.
      rng_(seed ^ (0x9e3779b97f4a7c15ull * (host + 1))) {}

void ByzantineActor::TamperDeal(std::span<const std::uint32_t> holders,
                                bool recovery,
                                std::vector<std::vector<field::FpElem>>& deal) {
  // Recovery-mask dealings stay honest: the recovery-phase attacks are
  // wrong masked shares and withholding (see header).
  if (recovery || deal.empty()) return;
  switch (strategy_) {
    case ByzantineStrategy::kEquivocate: {
      // Perturb one receiver's row: the per-receiver evaluations are no
      // longer explained by any single degree-<=d polynomial, which is
      // exactly what cross-host attribution checks.
      obs::Span span(obs::SpanKind::kByzAction, host_,
                     static_cast<std::uint64_t>(strategy_));
      std::size_t idx = rng_.Below(deal.size());
      if (deal.size() > 1 && holders[idx] == host_) idx = (idx + 1) % deal.size();
      field::FpElem off = ctx_->RandomNonZero(rng_);
      for (auto& v : deal[idx]) v = ctx_->Add(v, off);
      DealsTampered().Add(1);
      Equivocations().Add(1);
      return;
    }
    case ByzantineStrategy::kCorruptDeal: {
      // Add one constant to every receiver's group-0 evaluation: still a
      // consistent degree-<=d polynomial, but it no longer vanishes on the
      // required point set -- a corrupted zero-sharing that would shift the
      // stored secrets if applied.
      obs::Span span(obs::SpanKind::kByzAction, host_,
                     static_cast<std::uint64_t>(strategy_));
      field::FpElem off = ctx_->RandomNonZero(rng_);
      for (auto& row : deal) row[0] = ctx_->Add(row[0], off);
      DealsTampered().Add(1);
      return;
    }
    case ByzantineStrategy::kHonest:
    case ByzantineStrategy::kWrongShare:
    case ByzantineStrategy::kWithhold:
      return;
  }
}

bool ByzantineActor::TamperShares(std::vector<field::FpElem>& elems) {
  if (strategy_ != ByzantineStrategy::kWrongShare || elems.empty()) {
    return false;
  }
  obs::Span span(obs::SpanKind::kByzAction, host_,
                 static_cast<std::uint64_t>(strategy_));
  for (auto& e : elems) e = ctx_->Add(e, ctx_->RandomNonZero(rng_));
  SharesTampered().Add(elems.size());
  return true;
}

bool ByzantineActor::WithholdSend() {
  if (strategy_ != ByzantineStrategy::kWithhold) return false;
  MessagesWithheld().Add(1);
  return true;
}

ByzantineEngine::ByzantineEngine(const ByzantinePlan& plan,
                                 const field::FpCtx& ctx)
    : plan_(plan) {
  for (const auto& [host, strategy] : plan_.hosts) {
    if (strategy == ByzantineStrategy::kHonest) continue;
    actors_.emplace(host, std::make_unique<ByzantineActor>(host, strategy,
                                                           plan_.seed, ctx));
  }
}

ByzantineActor* ByzantineEngine::ActorFor(std::uint32_t host) {
  auto it = actors_.find(host);
  return it == actors_.end() ? nullptr : it->second.get();
}

}  // namespace pisces
