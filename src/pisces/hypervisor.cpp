#include "pisces/hypervisor.h"

#include <algorithm>

#include "common/log.h"

namespace pisces {

using net::Message;
using net::MsgType;

Hypervisor::Hypervisor(HypervisorConfig cfg, net::SimNet& net,
                       net::SyncNetwork& sync,
                       const crypto::SchnorrGroup& group)
    : cfg_(std::move(cfg)),
      net_(net),
      sync_(sync),
      group_(group),
      rng_(cfg_.seed ^ 0x9D15CE5ULL),
      ca_(group, rng_) {
  cfg_.params.Validate();
  endpoint_ = net_.AddEndpoint(net::kHypervisorId);
  sync_.Register(net::kHypervisorId, endpoint_, this);

  const std::size_t n = cfg_.params.n;
  hosts_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    net::SimEndpoint* ep = net_.AddEndpoint(i);
    host_endpoints_.push_back(ep);
    HostConfig hc;
    hc.id = i;
    hc.params = cfg_.params;
    hc.ctx = cfg_.ctx;
    hc.encrypt_links = cfg_.encrypt_links;
    hc.rng_seed = cfg_.seed;
    hosts_.push_back(std::make_unique<Host>(hc, *ep, group_, ca_.public_key()));
    sync_.Register(i, ep, hosts_.back().get());
    peer_ids_.push_back(i);
  }
  schedule_ = MakeSchedule(cfg_.schedule, n, cfg_.params.r, cfg_.seed ^ 0x5C4ED);

  for (std::uint32_t i = 0; i < n; ++i) BootHost(i);
  sync_.RunToQuiescence();
}

Hypervisor::~Hypervisor() = default;

void Hypervisor::BootHost(std::uint32_t id) {
  ++boot_epoch_;
  auto [cert, sk] = ca_.IssueHostKey(id, boot_epoch_, rng_);
  directory_[id] = cert;
  net_.SetOffline(id, false);
  hosts_[id]->Boot(boot_epoch_, cert, std::move(sk), peer_ids_);
  // Provision the current public-key directory onto the fresh image (the
  // hypervisor acts as the cert directory; a rebooted host lost everything).
  for (const auto& [peer, peer_cert] : directory_) {
    if (peer != id) hosts_[id]->InstallPeerCert(peer_cert);
  }
}

std::pair<crypto::HostCert, Bytes> Hypervisor::EnrollExternal(
    std::uint32_t id) {
  auto [cert, sk] = ca_.IssueHostKey(id, 0, rng_);
  directory_[id] = cert;
  if (std::find(peer_ids_.begin(), peer_ids_.end(), id) == peer_ids_.end()) {
    peer_ids_.push_back(id);
  }
  for (auto& host : hosts_) host->InstallPeerCert(cert);
  return {cert, std::move(sk)};
}

std::vector<std::uint64_t> Hypervisor::AllFileIds() const {
  std::vector<std::uint64_t> ids;
  for (const auto& host : hosts_) {
    if (!host->online()) continue;
    for (std::uint64_t id : host->store().FileIds()) {
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<FileMeta> Hypervisor::MetaFromAnyHost(
    std::uint64_t file_id, std::span<const std::uint32_t> exclude) const {
  for (const auto& host : hosts_) {
    if (!host->online()) continue;
    if (std::find(exclude.begin(), exclude.end(), host->id()) != exclude.end())
      continue;
    if (host->store().Has(file_id)) return host->store().MetaOf(file_id);
  }
  return std::nullopt;
}

HostMetrics Hypervisor::TotalHostMetrics() const {
  HostMetrics total;
  for (const auto& host : hosts_) {
    total.rerandomize.Add(host->metrics().rerandomize);
    total.recover.Add(host->metrics().recover);
    total.serve.Add(host->metrics().serve);
  }
  return total;
}

bool Hypervisor::RefreshAllFiles(WindowReport* report) {
  const HostMetrics before = TotalHostMetrics();
  recent_failures_.clear();
  const std::uint32_t seq = ++op_seq_;
  for (std::uint64_t file_id : AllFileIds()) {
    for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
      Message m;
      m.from = net::kHypervisorId;
      m.to = i;
      m.type = MsgType::kStartRefresh;
      m.file_id = file_id;
      m.epoch = seq;
      endpoint_->Send(std::move(m));
    }
  }
  auto pump = sync_.RunToQuiescence();
  bool ok = recent_failures_.empty();
  for (const auto& host : hosts_) {
    if (host->HasActiveSessions()) {
      ok = false;
      for (auto& desc : hosts_[host->id()]->AbortStuckSessions()) {
        recent_failures_.push_back(desc);
      }
    }
  }
  if (report != nullptr) {
    report->sweeps_refresh += pump.sweeps;
    report->files_refreshed += AllFileIds().size();
    const HostMetrics after = TotalHostMetrics();
    report->rerandomize_total.cpu_ns +=
        after.rerandomize.cpu_ns - before.rerandomize.cpu_ns;
    report->rerandomize_total.bytes_sent +=
        after.rerandomize.bytes_sent - before.rerandomize.bytes_sent;
    report->rerandomize_total.msgs_sent +=
        after.rerandomize.msgs_sent - before.rerandomize.msgs_sent;
    report->failures.insert(report->failures.end(), recent_failures_.begin(),
                            recent_failures_.end());
    report->ok = report->ok && ok;
  }
  return ok;
}

bool Hypervisor::RebootAndRecover(std::span<const std::uint32_t> batch,
                                  WindowReport* report) {
  const HostMetrics before = TotalHostMetrics();
  recent_failures_.clear();

  // Collect file metadata before shutting anyone down. A file whose only
  // copies live inside the reboot batch cannot be recovered; report it
  // rather than wedging the window.
  std::vector<std::uint64_t> files = AllFileIds();
  std::vector<FileMeta> metas;
  metas.reserve(files.size());
  std::vector<std::uint64_t> recoverable;
  for (std::uint64_t f : files) {
    if (auto meta = MetaFromAnyHost(f, batch)) {
      metas.push_back(*meta);
      recoverable.push_back(f);
    } else {
      recent_failures_.push_back("file " + std::to_string(f) +
                                 " has no copy outside the reboot batch");
    }
  }
  files = std::move(recoverable);

  // Secure disassociation: kill the batch.
  for (std::uint32_t id : batch) {
    hosts_[id]->Shutdown();
    net_.SetOffline(id, true);
  }
  // Fresh keys + reintegration broadcast.
  for (std::uint32_t id : batch) BootHost(id);
  auto pump_boot = sync_.RunToQuiescence();

  // Share recovery for every file toward the rebooted hosts.
  const std::uint32_t seq = ++op_seq_;
  for (const FileMeta& meta : metas) {
    Message proto;
    proto.from = net::kHypervisorId;
    proto.type = MsgType::kStartRecovery;
    proto.epoch = seq;
    proto.file_id = meta.file_id;
    ByteWriter w;
    w.Blob(meta.Serialize());
    w.U32(static_cast<std::uint32_t>(batch.size()));
    for (std::uint32_t id : batch) w.U32(id);
    proto.payload = w.Take();
    for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
      Message m = proto;
      m.to = i;
      endpoint_->Send(std::move(m));
    }
  }
  auto pump = sync_.RunToQuiescence();

  bool ok = recent_failures_.empty();
  // Verify every target holds every file again.
  for (std::uint32_t id : batch) {
    for (std::uint64_t f : files) {
      if (!hosts_[id]->store().Has(f)) {
        ok = false;
        recent_failures_.push_back("host " + std::to_string(id) +
                                   " missing file after recovery");
      }
    }
  }
  for (const auto& host : hosts_) {
    if (host->HasActiveSessions()) {
      ok = false;
      for (auto& desc : hosts_[host->id()]->AbortStuckSessions()) {
        recent_failures_.push_back(desc);
      }
    }
  }

  if (report != nullptr) {
    report->sweeps_recovery += pump_boot.sweeps + pump.sweeps;
    report->reboots += batch.size();
    const HostMetrics after = TotalHostMetrics();
    report->recover_total.cpu_ns +=
        after.recover.cpu_ns - before.recover.cpu_ns;
    report->recover_total.bytes_sent +=
        after.recover.bytes_sent - before.recover.bytes_sent;
    report->recover_total.msgs_sent +=
        after.recover.msgs_sent - before.recover.msgs_sent;
    report->failures.insert(report->failures.end(), recent_failures_.begin(),
                            recent_failures_.end());
    report->ok = report->ok && ok;
  }
  return ok;
}

WindowReport Hypervisor::RunUpdateWindow() {
  WindowReport report;
  RefreshAllFiles(&report);
  for (const auto& batch : schedule_->BatchesForWindow(window_)) {
    RebootAndRecover(batch, &report);
  }
  ++window_;
  return report;
}

void Hypervisor::HandleMessage(const Message& msg) {
  if (msg.type != MsgType::kPhaseDone) {
    LogWarn() << "hypervisor: unexpected " << msg.Describe();
    return;
  }
  const bool ok = !msg.payload.empty() && msg.payload[0] == 1;
  if (!ok) {
    ++failures_seen_;
    recent_failures_.push_back("host " + std::to_string(msg.from) +
                               " reported failure (kind=" +
                               std::to_string(msg.row) +
                               ", file=" + std::to_string(msg.file_id) + ")");
  }
}

}  // namespace pisces
