#include "pisces/hypervisor.h"

#include <algorithm>

#include "common/log.h"
#include "math/poly.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "pss/comm_efficient.h"

namespace pisces {

using field::FpElem;
using net::Message;
using net::MsgType;

namespace {

// Detection-side dispute counters (the matching action-side byz.* counters
// live in pisces/byzantine.cpp).
obs::Counter& DealersAttributed() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.dealers_attributed",
      "dealers attributed as corrupt from archived dealing columns");
  return c;
}
obs::Counter& SurvivorsSuspected() {
  static obs::Counter& c = obs::RegisterCounter(
      "byz.survivors_suspected",
      "survivors barred from recovery (accused by robust decode or "
      "repeatedly silent)");
  return c;
}

// Reshare migration counters (reshare.*): the no-reconstruction invariant is
// asserted against these plus the absence of kReconstructRequest wire bytes
// (net/net_obs.h) during a migration.
struct ReshareCounters {
  obs::Counter& migrations = obs::RegisterCounter(
      "reshare.migrations", "completed fleet migrations to a new group shape");
  obs::Counter& files = obs::RegisterCounter(
      "reshare.files", "files migrated to a new sharing without reconstruction");
  obs::Counter& contributions = obs::RegisterCounter(
      "reshare.contributions", "reshare sub-sharings received from contributors");
  obs::Counter& rejected = obs::RegisterCounter(
      "reshare.contributions_rejected",
      "reshare sub-sharings rejected by public verification");
  obs::Counter& withheld = obs::RegisterCounter(
      "reshare.contributions_withheld",
      "reshare sub-sharings withheld by silent contributors");
  obs::Counter& retries = obs::RegisterCounter(
      "reshare.retries", "per-file reshare rounds re-run with offenders excluded");
  obs::Counter& hosts_added = obs::RegisterCounter(
      "reshare.hosts_added", "fleet slots created or revived by a migration");
  obs::Counter& hosts_retired = obs::RegisterCounter(
      "reshare.hosts_retired", "fleet slots shut down by a shrink migration");
};

ReshareCounters& ReshareObs() {
  static ReshareCounters* c = new ReshareCounters();
  return *c;
}

}  // namespace

Hypervisor::Hypervisor(HypervisorConfig cfg, net::SimNet& net,
                       net::SyncNetwork& sync,
                       const crypto::SchnorrGroup& group)
    : cfg_(std::move(cfg)),
      net_(net),
      sync_(sync),
      group_(group),
      rng_(cfg_.seed ^ 0x9D15CE5ULL),
      ca_(group, rng_) {
  cfg_.params.Validate();
  endpoint_ = net_.AddEndpoint(net::kHypervisorId);
  sync_.Register(net::kHypervisorId, endpoint_, this);

  const std::size_t n = cfg_.params.n;
  hosts_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    net::SimEndpoint* ep = net_.AddEndpoint(i);
    host_endpoints_.push_back(ep);
    HostConfig hc;
    hc.id = i;
    hc.params = cfg_.params;
    hc.ctx = cfg_.ctx;
    hc.encrypt_links = cfg_.encrypt_links;
    hc.rng_seed = cfg_.seed;
    hosts_.push_back(std::make_unique<Host>(hc, *ep, group_, ca_.public_key()));
    sync_.Register(i, ep, hosts_.back().get());
    peer_ids_.push_back(i);
  }
  schedule_ = MakeSchedule(cfg_.schedule, n, cfg_.params.r, cfg_.seed ^ 0x5C4ED);

  for (std::uint32_t i = 0; i < n; ++i) BootHost(i);
  sync_.RunToQuiescence();
}

Hypervisor::~Hypervisor() = default;

void Hypervisor::BootHost(std::uint32_t id) {
  ++boot_epoch_;
  auto [cert, sk] = ca_.IssueHostKey(id, boot_epoch_, rng_);
  directory_[id] = cert;
  net_.SetOffline(id, false);
  hosts_[id]->Boot(boot_epoch_, cert, std::move(sk), peer_ids_);
  // Provision the current public-key directory onto the fresh image (the
  // hypervisor acts as the cert directory; a rebooted host lost everything).
  for (const auto& [peer, peer_cert] : directory_) {
    if (peer != id) hosts_[id]->InstallPeerCert(peer_cert);
  }
  // The fresh image is trusted again: wipe its exclusion record.
  excluded_.erase(id);
  dealer_strikes_.erase(id);
  suspects_.erase(id);
  suspect_strikes_.erase(id);
}

std::pair<crypto::HostCert, Bytes> Hypervisor::EnrollExternal(
    std::uint32_t id) {
  auto [cert, sk] = ca_.IssueHostKey(id, 0, rng_);
  directory_[id] = cert;
  if (std::find(peer_ids_.begin(), peer_ids_.end(), id) == peer_ids_.end()) {
    peer_ids_.push_back(id);
  }
  for (auto& host : hosts_) host->InstallPeerCert(cert);
  return {cert, std::move(sk)};
}

std::vector<std::uint64_t> Hypervisor::AllFileIds() const {
  std::vector<std::uint64_t> ids;
  for (const auto& host : hosts_) {
    if (!host->online()) continue;
    for (std::uint64_t id : host->store().FileIds()) {
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<FileMeta> Hypervisor::MetaFromAnyHost(
    std::uint64_t file_id, std::span<const std::uint32_t> exclude) const {
  for (const auto& host : hosts_) {
    if (!host->online()) continue;
    if (std::find(exclude.begin(), exclude.end(), host->id()) != exclude.end())
      continue;
    if (host->store().Has(file_id)) return host->store().MetaOf(file_id);
  }
  return std::nullopt;
}

HostMetrics Hypervisor::TotalHostMetrics() const {
  HostMetrics total;
  for (const auto& host : hosts_) {
    total.rerandomize.Add(host->metrics().rerandomize);
    total.recover.Add(host->metrics().recover);
    total.serve.Add(host->metrics().serve);
    total.faults.Add(host->metrics().faults);
  }
  return total;
}

std::vector<std::uint32_t> Hypervisor::ReachableHosts() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->online() && !net_.IsOffline(i)) out.push_back(i);
  }
  return out;
}

void Hypervisor::AbortStuckFleet(std::vector<std::string>* sink) {
  // Visit every host, not just those with active sessions: a host that
  // missed a start message has no session but buffers its peers' traffic as
  // pending, and those stale buffers must not survive into the next attempt.
  for (const auto& host : hosts_) {
    for (auto& desc : hosts_[host->id()]->AbortStuckSessions()) {
      if (sink != nullptr) sink->push_back(std::move(desc));
    }
  }
}

std::set<std::uint32_t> Hypervisor::AttributeCorruptDealers(
    std::uint32_t seq,
    const std::map<std::uint64_t, std::vector<std::uint32_t>>& parts_by_file) {
  std::set<std::uint32_t> corrupt;
  const field::FpCtx& ctx = *cfg_.ctx;
  const pss::PackedShamir& shamir = hosts_[0]->shamir();
  const std::size_t d = cfg_.params.degree();

  for (const auto& [file, parts] : parts_by_file) {
    // Drain every participant's archived dealing columns for this round.
    std::map<std::uint32_t, Host::FailedRefresh> archives;
    for (std::uint32_t id : parts) {
      if (auto fr = hosts_[id]->TakeFailedRefresh(file, seq)) {
        archives.emplace(id, std::move(*fr));
      }
    }
    if (archives.empty()) continue;
    const std::vector<std::uint32_t>& dealers =
        archives.begin()->second.participants;

    // A dealer's column across holder evaluation points must be a
    // degree-<=d polynomial vanishing on every beta; an honest holder's
    // archive is its received value at its own alpha, so with >= d+2
    // independent points any fabricated dealing is caught.
    for (std::size_t i = 0; i < dealers.size(); ++i) {
      std::vector<FpElem> xs;
      std::vector<const std::vector<FpElem>*> cols;
      for (const auto& [holder, fr] : archives) {
        if (i < fr.deal_seen.size() && fr.deal_seen[i] &&
            !fr.deals_by_dealer[i].empty()) {
          xs.push_back(shamir.points().alpha(holder));
          cols.push_back(&fr.deals_by_dealer[i]);
        }
      }
      if (xs.size() < d + 2) continue;  // not enough evidence to judge
      math::PointChecker checker(ctx, xs, d);
      std::vector<std::vector<FpElem>> beta_w;
      beta_w.reserve(cfg_.params.l);
      for (std::size_t j = 0; j < cfg_.params.l; ++j) {
        beta_w.push_back(checker.WeightsAt(shamir.points().beta(j)));
      }
      const std::size_t groups = cols.front()->size();
      std::vector<FpElem> ys(xs.size(), ctx.Zero());
      bool bad = false;
      for (std::size_t g = 0; g < groups && !bad; ++g) {
        for (std::size_t k = 0; k < cols.size(); ++k) {
          if (g >= cols[k]->size()) { bad = true; break; }
          ys[k] = (*cols[k])[g];
        }
        if (bad) break;
        if (!checker.Consistent(ys)) {
          bad = true;
          break;
        }
        for (const auto& w : beta_w) {
          if (!ctx.IsZero(math::PointChecker::Apply(ctx, w, ys))) {
            bad = true;
            break;
          }
        }
      }
      if (bad && corrupt.insert(dealers[i]).second) {
        DealersAttributed().Add(1);
        obs::Span span(obs::SpanKind::kByzDetect, dealers[i], file);
      }
    }
  }
  return corrupt;
}

bool Hypervisor::RefreshAllFiles(WindowReport* report) {
  return RefreshFilesInternal(AllFileIds(), /*audit_catalog=*/true, report);
}

bool Hypervisor::RefreshFiles(std::span<const std::uint64_t> file_ids,
                              WindowReport* report) {
  // Subset refresh (the serving plane's batch scheduler): only the named
  // files are launched, and the fleet-wide loss audit is skipped -- a batch
  // of B files must not fail because a file in a LATER batch is degraded.
  return RefreshFilesInternal(
      std::vector<std::uint64_t>(file_ids.begin(), file_ids.end()),
      /*audit_catalog=*/false, report);
}

bool Hypervisor::RefreshFilesInternal(std::vector<std::uint64_t> files,
                                      bool audit_catalog,
                                      WindowReport* report) {
  const HostMetrics before = TotalHostMetrics();
  recent_failures_.clear();
  catalog_.insert(files.begin(), files.end());

  std::vector<std::string> fatal;  // non-retryable failures
  // A catalogued file that no booted host holds any more is lost data and
  // must fail the window loudly: an empty holder list looks exactly like
  // "nothing stored yet", and every later phase would succeed vacuously.
  if (audit_catalog) {
    for (std::uint64_t f : catalog_) {
      if (std::find(files.begin(), files.end(), f) == files.end()) {
        fatal.push_back("file " + std::to_string(f) +
                        " lost: no booted host holds a share");
      }
    }
  }
  if (files.empty() && fatal.empty()) return true;

  const std::size_t n = cfg_.params.n;
  const std::size_t max_attempts = cfg_.params.t + 2;

  std::vector<std::uint64_t> todo = files;
  // file -> hosts holding the post-refresh sharing.
  std::map<std::uint64_t, std::set<std::uint32_t>> fresh_for;
  std::vector<std::string> last_failures;  // diagnostics of the last attempt
  std::uint64_t sweeps = 0;

  for (std::size_t attempt = 0; !todo.empty() && attempt < max_attempts;
       ++attempt) {
    std::vector<std::uint32_t> base;
    for (std::uint32_t id : ReachableHosts()) {
      if (excluded_.count(id) == 0) base.push_back(id);
    }
    if (n - base.size() > cfg_.params.t) {
      // Corruption bound exceeded: completing the round could hand control
      // of the sharing to the adversary, so the window aborts atomically.
      fatal.push_back("refresh aborted: " + std::to_string(n - base.size()) +
                      " dealers unavailable or excluded exceeds bound t=" +
                      std::to_string(cfg_.params.t));
      break;
    }
    if (attempt > 0 && report != nullptr) report->refresh_retries += 1;

    phase_reports_.clear();
    recent_failures_.clear();
    const std::uint32_t seq = ++op_seq_;
    // One span per refresh attempt over the still-pending files; the message
    // pump below runs every host's dealing/transform/verify under it.
    obs::Span session_span(obs::SpanKind::kRefreshSession, seq, todo.size());

    // Launch one session per pending file among the holders that are
    // reachable and not excluded.
    std::map<std::uint64_t, std::vector<std::uint32_t>> parts_by_file;
    std::vector<std::uint64_t> launched;
    for (std::uint64_t f : todo) {
      std::vector<std::uint32_t> parts;
      for (std::uint32_t id : base) {
        if (hosts_[id]->store().Has(f)) parts.push_back(id);
      }
      if (parts.size() <= cfg_.params.check_rows() ||
          parts.size() < cfg_.params.degree() + 1) {
        fatal.push_back("file " + std::to_string(f) +
                        ": not enough holders to rerandomize");
        continue;
      }
      ByteWriter w;
      w.U32(static_cast<std::uint32_t>(parts.size()));
      for (std::uint32_t id : parts) w.U32(id);
      const Bytes payload = w.Take();
      for (std::uint32_t id : parts) {
        Message m;
        m.from = net::kHypervisorId;
        m.to = id;
        m.type = MsgType::kStartRefresh;
        m.file_id = f;
        m.epoch = seq;
        m.payload = payload;
        endpoint_->Send(std::move(m));
      }
      parts_by_file.emplace(f, std::move(parts));
      launched.push_back(f);
    }
    if (launched.empty()) {
      todo.clear();
      break;
    }
    auto pump = sync_.RunToQuiescence();
    sweeps += pump.sweeps;

    // Classify each file's outcome from the phase reports of this round.
    std::map<std::uint64_t, std::set<std::uint32_t>> ok_by_file;
    for (const PhaseReport& pr : phase_reports_) {
      if (pr.kind != 0 || pr.seq != seq) continue;
      if (pr.ok) ok_by_file[pr.file].insert(pr.host);
    }
    // Bounded-delay timeout: snapshot wedged sessions (which dealers never
    // arrived) before aborting them fleet-wide. A dealer is only suspected
    // when its dealing is missing at more than half of a file's wedged
    // holders -- a single lost deal points at the link, not the dealer, and
    // must not earn strikes (random loss would otherwise exclude the whole
    // fleet within two attempts).
    std::map<std::uint64_t, std::size_t> stuck_holders;
    std::map<std::uint64_t, std::map<std::uint32_t, std::size_t>> missing_at;
    for (std::uint32_t id : base) {
      for (const auto& stuck : hosts_[id]->StuckRefreshSessions()) {
        if (stuck.epoch != seq) continue;
        stuck_holders[stuck.file_id] += 1;
        for (std::uint32_t dealer : stuck.missing_dealers) {
          missing_at[stuck.file_id][dealer] += 1;
        }
      }
    }
    std::set<std::uint32_t> missing_dealers;
    for (const auto& [f, counts] : missing_at) {
      for (const auto& [dealer, cnt] : counts) {
        if (cnt * 2 > stuck_holders[f]) missing_dealers.insert(dealer);
      }
    }
    AbortStuckFleet(&recent_failures_);

    std::vector<std::uint64_t> next_todo;
    for (std::uint64_t f : launched) {
      const std::vector<std::uint32_t>& parts = parts_by_file[f];
      const std::set<std::uint32_t>& okset = ok_by_file[f];
      if (okset.size() == parts.size()) {
        fresh_for[f] = std::set<std::uint32_t>(parts.begin(), parts.end());
        continue;
      }
      if (!okset.empty()) {
        // Partial apply: the okset already committed the new sharing. A
        // re-run on this inconsistent base would corrupt the file for good,
        // so the remaining holders are marked stale and resynced through
        // recovery from the fresh quorum instead.
        fresh_for[f] = okset;
        continue;
      }
      next_todo.push_back(f);  // nobody applied: safe to retry
    }

    // Exclusion: provably corrupt dealers first, then repeat silent ones.
    for (std::uint32_t dealer : AttributeCorruptDealers(seq, parts_by_file)) {
      excluded_.insert(dealer);
      recent_failures_.push_back("dealer " + std::to_string(dealer) +
                                 " excluded: inconsistent dealing");
    }
    for (std::uint32_t dealer : missing_dealers) {
      if (net_.IsOffline(dealer)) continue;  // crash: availability covers it
      if (++dealer_strikes_[dealer] >= 2 && excluded_.insert(dealer).second) {
        recent_failures_.push_back("dealer " + std::to_string(dealer) +
                                   " excluded: dealings repeatedly missing");
      }
    }
    last_failures = recent_failures_;
    todo = std::move(next_todo);
  }

  bool ok = todo.empty() && fatal.empty();

  // Staleness bookkeeping: holders outside a file's fresh set still carry
  // the pre-refresh polynomial and must not serve as recovery survivors.
  std::set<std::uint32_t> stale_now;
  for (const auto& [f, fresh] : fresh_for) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (hosts_[i]->store().Has(f) && fresh.count(i) == 0) {
        stale_now.insert(i);
      }
    }
  }
  stale_.insert(stale_now.begin(), stale_now.end());

  recent_failures_ = std::move(fatal);
  if (!ok) {
    recent_failures_.insert(recent_failures_.end(), last_failures.begin(),
                            last_failures.end());
  }

  // Resync reachable stale hosts now; crashed ones keep the mark until their
  // reboot-and-recover heals them.
  std::vector<std::uint32_t> resync;
  for (std::uint32_t id : stale_now) {
    if (hosts_[id]->online() && !net_.IsOffline(id)) resync.push_back(id);
  }
  if (!resync.empty() && !RunRecovery(std::move(resync), report)) ok = false;

  if (report != nullptr) {
    report->sweeps_refresh += sweeps;
    report->files_refreshed += files.size();
    const HostMetrics after = TotalHostMetrics();
    report->rerandomize_total.cpu_ns +=
        after.rerandomize.cpu_ns - before.rerandomize.cpu_ns;
    report->rerandomize_total.wall_ns +=
        after.rerandomize.wall_ns - before.rerandomize.wall_ns;
    report->rerandomize_total.bytes_sent +=
        after.rerandomize.bytes_sent - before.rerandomize.bytes_sent;
    report->rerandomize_total.msgs_sent +=
        after.rerandomize.msgs_sent - before.rerandomize.msgs_sent;
    report->deals_excluded +=
        after.faults.deals_excluded - before.faults.deals_excluded;
    report->timeouts_fired +=
        after.faults.timeouts_fired - before.faults.timeouts_fired;
    report->failures.insert(report->failures.end(), recent_failures_.begin(),
                            recent_failures_.end());
    report->ok = report->ok && ok;
  }
  return ok;
}

bool Hypervisor::RunRecovery(std::vector<std::uint32_t> targets,
                             WindowReport* report) {
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  if (targets.empty()) return true;

  const std::size_t max_attempts = cfg_.params.t + 2;
  bool all_ok = true;
  std::vector<std::string> failures;

  for (std::size_t pos = 0; pos < targets.size(); pos += cfg_.params.r) {
    const std::size_t end = std::min(pos + cfg_.params.r, targets.size());
    const std::vector<std::uint32_t> chunk(targets.begin() + pos,
                                           targets.begin() + end);
    bool chunk_ok = false;
    for (std::size_t attempt = 0; attempt < max_attempts && !chunk_ok;
         ++attempt) {
      if (attempt > 0 && report != nullptr) report->recovery_retries += 1;
      phase_reports_.clear();
      recent_failures_.clear();

      // Fresh survivors: reachable, consistent (not stale), and outside the
      // chunk being recovered. Excluded hosts are kept in a reserve pool:
      // exclusion distrusts their *dealing*, but a recovery contribution is
      // verified at the target (PointChecker consistency), so they may top
      // up a survivor set that would otherwise fall below quorum -- without
      // this, strike-exclusions plus stale hosts can starve recovery forever
      // and leave the fleet unable to heal after a partition.
      std::vector<std::uint32_t> base;
      std::vector<std::uint32_t> reserve;
      for (std::uint32_t id : ReachableHosts()) {
        if (stale_.count(id) != 0) continue;
        // Suspects never serve as survivors -- not even reserve. Exclusion
        // distrusts a host's dealing (which the target re-verifies), but a
        // suspect's verified-at-target contribution is exactly what a robust
        // decode convicted, or it starved sessions by withholding.
        if (suspects_.count(id) != 0) continue;
        if (std::find(chunk.begin(), chunk.end(), id) != chunk.end()) continue;
        (excluded_.count(id) != 0 ? reserve : base).push_back(id);
      }

      const std::uint32_t seq = ++op_seq_;
      // One span per recovery attempt of this target chunk; the pump runs
      // every survivor/target session under it.
      obs::Span batch_span(obs::SpanKind::kRecoveryBatch, seq, chunk.size());
      std::vector<std::uint64_t> launched;
      bool quorum_fatal = false;
      const std::vector<std::uint64_t> stored = AllFileIds();
      catalog_.insert(stored.begin(), stored.end());
      for (std::uint64_t f : catalog_) {
        if (std::find(stored.begin(), stored.end(), f) == stored.end()) {
          // Catalogued file with no holder left: report the loss instead of
          // succeeding vacuously over an empty file list.
          recent_failures_.push_back("file " + std::to_string(f) +
                                     " lost: no booted host holds a share");
          quorum_fatal = true;
        }
      }
      for (std::uint64_t f : stored) {
        std::vector<std::uint32_t> survivors;
        for (std::uint32_t id : base) {
          if (hosts_[id]->store().Has(f)) survivors.push_back(id);
        }
        const std::size_t quorum = std::max<std::size_t>(
            cfg_.params.check_rows() + 1, cfg_.params.degree() + 1);
        for (std::uint32_t id : reserve) {
          if (survivors.size() >= quorum) break;
          if (hosts_[id]->store().Has(f)) survivors.push_back(id);
        }
        if (survivors.size() <= cfg_.params.check_rows() ||
            survivors.size() < cfg_.params.degree() + 1) {
          recent_failures_.push_back(
              "file " + std::to_string(f) +
              ": not enough fresh survivors for recovery");
          quorum_fatal = true;
          continue;
        }
        const FileMeta meta = hosts_[survivors.front()]->store().MetaOf(f);
        // Reduced repair (cfg_.repair): with fallback kClassic only the
        // first attempt ships stripes; a failed attempt (corruption beyond
        // the reduced decode radius, or a wedged session) retries with full
        // masked vectors, byte-identical to the legacy format.
        const bool want_reduced =
            cfg_.repair.path == ReadPath::kStaircase &&
            (attempt == 0 || cfg_.repair.fallback == ReadFallback::kFail);
        std::size_t budget = 0;
        if (want_reduced) {
          budget = cfg_.repair.contacts != 0
                       ? std::min<std::size_t>(cfg_.repair.contacts,
                                               survivors.size())
                       : pss::DefaultRecoveryBudget(cfg_.params,
                                                    survivors.size());
          // A budget below degree+1 or covering every survivor is not a
          // reduction; fall back to the classic full-vector format.
          if (budget < cfg_.params.degree() + 1 || budget >= survivors.size())
            budget = 0;
        }
        Message proto;
        proto.from = net::kHypervisorId;
        proto.type = MsgType::kStartRecovery;
        proto.epoch = seq;
        proto.file_id = f;
        ByteWriter w;
        w.Blob(meta.Serialize());
        w.U32(static_cast<std::uint32_t>(chunk.size()));
        for (std::uint32_t id : chunk) w.U32(id);
        w.U32(static_cast<std::uint32_t>(survivors.size()));
        for (std::uint32_t id : survivors) w.U32(id);
        if (budget != 0) {
          // Optional trailing repair-mode section (Host::OnStartRecovery).
          w.U8(1);
          w.U32(static_cast<std::uint32_t>(budget));
        }
        proto.payload = w.Take();
        for (std::uint32_t id : survivors) {
          Message m = proto;
          m.to = id;
          endpoint_->Send(std::move(m));
        }
        for (std::uint32_t id : chunk) {
          Message m = proto;
          m.to = id;
          endpoint_->Send(std::move(m));
        }
        launched.push_back(f);
      }
      auto pump = sync_.RunToQuiescence();
      if (report != nullptr) report->sweeps_recovery += pump.sweeps;

      bool bad = quorum_fatal;
      for (const PhaseReport& pr : phase_reports_) {
        if (pr.kind == 1 && pr.seq == seq && !pr.ok) bad = true;
      }
      for (std::uint32_t id : chunk) {
        for (std::uint64_t f : launched) {
          if (!hosts_[id]->store().Has(f)) {
            recent_failures_.push_back("host " + std::to_string(id) +
                                       " missing file after recovery");
            bad = true;
          }
        }
      }
      // Sessions still active at quiescence are wedged (bounded-delay
      // timeout). Judge only live sessions: stale pending buffers from a
      // previous attempt are cleaned below but say nothing about this one.
      for (const auto& host : hosts_) {
        if (host->HasActiveSessions()) {
          bad = true;
          break;
        }
      }
      // Snapshot wedged recovery sessions before aborting them, mirroring the
      // refresh dealer-strike rule: a survivor whose dealing or masked share
      // is missing at more than half of a (file, target)'s wedged sessions
      // earns a strike; two strikes mark it suspect. A single missing message
      // blames the link, not the host.
      std::map<std::pair<std::uint64_t, std::uint32_t>, std::size_t> stuck_cnt;
      std::map<std::pair<std::uint64_t, std::uint32_t>,
               std::map<std::uint32_t, std::size_t>>
          missing_at;
      for (const auto& host : hosts_) {
        for (const auto& stuck : host->StuckRecoverySessions()) {
          if (stuck.epoch != seq) continue;
          const auto key = std::make_pair(stuck.file_id, stuck.target);
          stuck_cnt[key] += 1;
          for (std::uint32_t id : stuck.missing_dealers) missing_at[key][id]++;
          for (std::uint32_t id : stuck.missing_senders) missing_at[key][id]++;
        }
      }
      std::set<std::uint32_t> silent;
      for (const auto& [key, counts] : missing_at) {
        for (const auto& [id, cnt] : counts) {
          if (cnt * 2 > stuck_cnt[key]) silent.insert(id);
        }
      }
      for (std::uint32_t id : silent) {
        if (net_.IsOffline(id)) continue;  // crash: availability covers it
        if (++suspect_strikes_[id] >= 2 && suspects_.insert(id).second) {
          SurvivorsSuspected().Add(1);
          obs::Span span(obs::SpanKind::kByzDetect, id, seq);
          recent_failures_.push_back(
              "host " + std::to_string(id) +
              " suspected: recovery traffic repeatedly missing");
        }
      }
      AbortStuckFleet(&recent_failures_);

      if (!bad) {
        chunk_ok = true;
        for (std::uint32_t id : chunk) stale_.erase(id);
      } else if (quorum_fatal) {
        // Deterministic shortage: retrying with the same survivor pool
        // cannot succeed.
        failures.insert(failures.end(), recent_failures_.begin(),
                        recent_failures_.end());
        break;
      } else if (attempt + 1 == max_attempts) {
        failures.insert(failures.end(), recent_failures_.begin(),
                        recent_failures_.end());
      }
    }
    if (!chunk_ok) all_ok = false;
  }
  recent_failures_ = std::move(failures);
  return all_ok;
}

bool Hypervisor::BatchSafeToReboot(
    std::span<const std::uint32_t> batch) const {
  // Mirror RunRecovery's survivor selection: recovery toward the wiped batch
  // draws on reachable non-stale holders (excluded hosts included -- they
  // may serve as reserve survivors). If any file would fall below that
  // quorum the reboot is unsafe: an outage already degraded the fleet, and
  // wiping more hosts would destroy the last consistent copies.
  for (std::uint64_t f : AllFileIds()) {
    std::size_t survivors = 0;
    for (std::uint32_t id : ReachableHosts()) {
      if (stale_.count(id) != 0) continue;
      if (std::find(batch.begin(), batch.end(), id) != batch.end()) continue;
      if (hosts_[id]->store().Has(f)) ++survivors;
    }
    if (survivors <= cfg_.params.check_rows() ||
        survivors < cfg_.params.degree() + 1) {
      return false;
    }
  }
  return true;
}

bool Hypervisor::RebootAndRecover(std::span<const std::uint32_t> batch,
                                  WindowReport* report) {
  const HostMetrics before = TotalHostMetrics();
  recent_failures_.clear();

  // Secure disassociation: kill the batch. Until recovery completes the
  // rebooted stores are empty, so the batch is stale by definition.
  for (std::uint32_t id : batch) {
    hosts_[id]->Shutdown();
    net_.SetOffline(id, true);
    stale_.insert(id);
  }
  // Fresh keys + reintegration broadcast.
  for (std::uint32_t id : batch) BootHost(id);
  auto pump_boot = sync_.RunToQuiescence();

  bool ok = RunRecovery(
      std::vector<std::uint32_t>(batch.begin(), batch.end()), report);

  if (report != nullptr) {
    report->sweeps_recovery += pump_boot.sweeps;
    report->reboots += batch.size();
    const HostMetrics after = TotalHostMetrics();
    report->recover_total.cpu_ns +=
        after.recover.cpu_ns - before.recover.cpu_ns;
    report->recover_total.wall_ns +=
        after.recover.wall_ns - before.recover.wall_ns;
    report->recover_total.bytes_sent +=
        after.recover.bytes_sent - before.recover.bytes_sent;
    report->recover_total.msgs_sent +=
        after.recover.msgs_sent - before.recover.msgs_sent;
    report->deals_excluded +=
        after.faults.deals_excluded - before.faults.deals_excluded;
    report->timeouts_fired +=
        after.faults.timeouts_fired - before.faults.timeouts_fired;
    report->failures.insert(report->failures.end(), recent_failures_.begin(),
                            recent_failures_.end());
    report->ok = report->ok && ok;
  }
  return ok;
}

WindowReport Hypervisor::RunUpdateWindow() {
  // Root trace span of the whole update window; every refresh session,
  // recovery batch, and host compute section below nests under it, and its
  // ordinal tags all contained events for the per-window flame summary.
  obs::Span window_span(obs::SpanKind::kWindow, window_);
  WindowReport report;
  RefreshAllFiles(&report);
  for (const auto& batch : schedule_->BatchesForWindow(window_)) {
    if (!BatchSafeToReboot(batch)) {
      // Proactivity yields to durability: skip this batch rather than wipe
      // hosts a degraded fleet cannot re-provision. The schedule revisits
      // every host, so the reboot happens once recovery has healed enough
      // holders; until then the window is reported as incomplete.
      std::string line = "reboot deferred (recovery quorum at risk): hosts";
      for (std::uint32_t id : batch) line += " " + std::to_string(id);
      report.failures.push_back(std::move(line));
      report.reboots_deferred += batch.size();
      report.ok = false;
      continue;
    }
    RebootAndRecover(batch, &report);
  }
  ++window_;
  return report;
}

bool Hypervisor::Reshare(const pss::Params& to, ReshareReport* report) {
  to.Validate();
  Require(to.l == cfg_.params.l,
          "Hypervisor::Reshare: packing must match (re-pack via the codec)");
  Require(to.field_bits == cfg_.params.field_bits,
          "Hypervisor::Reshare: field must match");
  const pss::Params from = cfg_.params;
  ReshareReport local;
  ReshareReport& rep = report != nullptr ? *report : local;
  obs::Span span(obs::SpanKind::kReshare, window_, to.n);

  const pss::PackedShamir& from_scheme = hosts_[0]->shamir();
  pss::PackedShamir to_scheme(cfg_.ctx, to);
  const std::size_t d_old = from.degree();

  // Phase 1: per file, gather d_old+1 publicly verified contributions and
  // sum them into the new sharing. Nothing in the fleet mutates until every
  // file has a complete new sharing, so a failed migration leaves the old
  // group serving untouched.
  const std::vector<std::uint64_t> files = AllFileIds();
  for (std::uint64_t id : catalog_) {
    if (std::find(files.begin(), files.end(), id) == files.end()) {
      rep.failures.push_back("reshare: file " + std::to_string(id) +
                             " lost before migration (no online holder)");
      rep.ok = false;
    }
  }
  if (!rep.ok) return false;

  std::map<std::uint64_t, std::vector<std::vector<FpElem>>> new_shares;
  std::map<std::uint64_t, FileMeta> metas;
  const std::size_t max_attempts = from.t + 2;
  for (std::uint64_t file : files) {
    auto meta = MetaFromAnyHost(file, {});
    if (!meta.has_value()) {
      rep.failures.push_back("reshare: file " + std::to_string(file) +
                             " has no readable meta");
      rep.ok = false;
      continue;
    }
    bool migrated = false;
    for (std::size_t attempt = 0; attempt < max_attempts && !migrated;
         ++attempt) {
      obs::Span round(obs::SpanKind::kReshareFile, file, attempt);
      // Contributors: fresh (non-stale), non-excluded holders of the current
      // sharing, ascending -- deterministic given the exclusion state.
      std::vector<std::uint32_t> holders;
      for (std::uint32_t i : ReachableHosts()) {
        if (excluded_.count(i) != 0 || stale_.count(i) != 0) continue;
        if (hosts_[i]->store().Has(file)) holders.push_back(i);
      }
      if (holders.size() < d_old + 1) break;
      holders.resize(d_old + 1);
      pss::ResharePublic pub =
          pss::MakeResharePublic(from_scheme, to_scheme, holders);

      std::vector<std::vector<FpElem>> acc;
      bool round_ok = true;
      for (std::size_t ordinal = 0; ordinal < holders.size(); ++ordinal) {
        const std::uint32_t c = holders[ordinal];
        auto contribution = hosts_[c]->ComputeReshare(file, pub, ordinal);
        rep.contributions += 1;
        ReshareObs().contributions.Add(1);
        if (!contribution.has_value()) {
          // Silent contributor: same two-strike rule as refresh dealers.
          rep.contributions_withheld += 1;
          ReshareObs().withheld.Add(1);
          if (++dealer_strikes_[c] >= 2) {
            excluded_.insert(c);
            recent_failures_.push_back("host " + std::to_string(c) +
                                       " excluded: silent reshare contributor");
          }
          round_ok = false;
          continue;
        }
        if (!pss::VerifyReshareContribution(pub, ordinal, *contribution)) {
          // Provably corrupt sub-sharing: exclude immediately, like a dealer
          // whose archived dealing column fails attribution.
          rep.contributions_rejected += 1;
          ReshareObs().rejected.Add(1);
          obs::Span detect(obs::SpanKind::kByzDetect, c, file);
          excluded_.insert(c);
          recent_failures_.push_back(
              "host " + std::to_string(c) +
              " excluded: corrupt reshare contribution (file " +
              std::to_string(file) + ")");
          round_ok = false;
          continue;
        }
        if (round_ok) pss::AccumulateReshare(*cfg_.ctx, acc, *contribution);
      }
      if (!round_ok) {
        rep.retries += 1;
        ReshareObs().retries.Add(1);
        continue;
      }
      new_shares[file] = std::move(acc);
      metas[file] = *meta;
      migrated = true;
    }
    if (!migrated) {
      rep.failures.push_back("reshare: file " + std::to_string(file) +
                             " could not gather " + std::to_string(d_old + 1) +
                             " verified contributions");
      rep.ok = false;
    }
  }
  if (!rep.ok) return false;

  // Phase 2: reshape the fleet. Surviving slots wipe-and-adopt the new
  // scheme; grown slots boot fresh (reviving parked slots from an earlier
  // shrink); every slot < n' that is offline -- crashed, parked, or spot-
  // killed -- is re-provisioned with a fresh boot. Shrunk slots shut down
  // and park for a later grow.
  const std::size_t n_old = from.n;
  cfg_.params = to;
  for (std::uint32_t i = hosts_.size(); i < to.n; ++i) {
    net::SimEndpoint* ep = net_.AddEndpoint(i);
    host_endpoints_.push_back(ep);
    HostConfig hc;
    hc.id = i;
    hc.params = to;
    hc.ctx = cfg_.ctx;
    hc.encrypt_links = cfg_.encrypt_links;
    hc.rng_seed = cfg_.seed;
    hosts_.push_back(std::make_unique<Host>(hc, *ep, group_, ca_.public_key()));
    sync_.Register(i, ep, hosts_.back().get());
    peer_ids_.push_back(i);
  }
  for (std::uint32_t i = 0; i < to.n; ++i) {
    hosts_[i]->AdoptParams(to);
    if (!hosts_[i]->online() || net_.IsOffline(i)) {
      BootHost(i);
      rep.hosts_added += 1;
      ReshareObs().hosts_added.Add(1);
    }
  }
  for (std::uint32_t i = to.n; i < n_old && i < hosts_.size(); ++i) {
    if (!hosts_[i]->online()) continue;
    hosts_[i]->Shutdown();
    net_.SetOffline(i, true);
    rep.hosts_retired += 1;
    ReshareObs().hosts_retired.Add(1);
  }
  schedule_ = MakeSchedule(cfg_.schedule, to.n, to.r, cfg_.seed ^ 0x5C4ED);
  // Every slot is about to receive the fresh sharing: nobody is stale.
  stale_.clear();
  sync_.RunToQuiescence();  // deliver the boot cert broadcasts

  // Phase 3: install the new sharings (privileged re-provisioning, the same
  // control channel BootHost uses).
  for (const auto& [file, shares] : new_shares) {
    for (std::uint32_t rho = 0; rho < to.n; ++rho) {
      hosts_[rho]->InstallShares(metas.at(file), shares[rho]);
    }
    rep.files += 1;
    ReshareObs().files.Add(1);
  }
  ReshareObs().migrations.Add(1);
  return rep.ok;
}

void Hypervisor::HandleMessage(const Message& msg) {
  if (msg.type != MsgType::kPhaseDone) {
    LogWarn() << "hypervisor: unexpected " << msg.Describe();
    return;
  }
  const bool ok = !msg.payload.empty() && msg.payload[0] == 1;
  phase_reports_.push_back({msg.from, msg.row, msg.file_id, msg.epoch, ok});
  // Recovery targets append the survivor ids their robust decode convicted
  // of serving wrong masked shares (Host::ReportPhaseDone); honest reports
  // keep the legacy one-byte payload. An accusation comes from one (possibly
  // lying) host, so its effect is bounded: the suspect only loses its
  // survivor role until its next reboot re-establishes trust.
  if (msg.row == 1 && msg.payload.size() > 1) {
    try {
      ByteReader r(msg.payload);
      r.U8();  // ok byte, already consumed above
      const std::uint32_t count = r.U32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t id = r.U32();
        if (id >= hosts_.size() || id == msg.from) continue;
        if (suspects_.insert(id).second) {
          SurvivorsSuspected().Add(1);
          obs::Span span(obs::SpanKind::kByzDetect, id, msg.from);
          recent_failures_.push_back(
              "host " + std::to_string(id) +
              " suspected: wrong masked shares (accused by target " +
              std::to_string(msg.from) + ")");
        }
      }
    } catch (const ParseError&) {
      LogWarn() << "hypervisor: malformed accusation list from host "
                << msg.from;
    }
  }
  if (!ok) {
    ++failures_seen_;
    recent_failures_.push_back("host " + std::to_string(msg.from) +
                               " reported failure (kind=" +
                               std::to_string(msg.row) +
                               ", file=" + std::to_string(msg.file_id) + ")");
  }
}

}  // namespace pisces
