#include "pisces/driver.h"

#include "common/task_pool.h"
#include "obs/registry.h"

namespace pisces {

ExperimentResult RunRefreshExperiment(const ExperimentConfig& cfg) {
  ClusterConfig cc;
  cc.params = cfg.params;
  if (cfg.threads > 0) {
    // --threads N: size the process-wide pool AND model N workers per host
    // (the paper's b). Pool size affects wall time only, never results.
    cc.params.b = cfg.threads;
    SetGlobalPoolThreads(cfg.threads);
  }
  cc.seed = cfg.seed;
  cc.encrypt_links = cfg.encrypt_links;
  cc.schedule = cfg.schedule;
  cc.net_model = cfg.net_model;
  cc.instance = cfg.instance;
  cc.build_machine_ecu = cfg.build_machine_ecu;
  Cluster cluster(cc);

  Rng rng(cfg.seed ^ 0xF11E);
  Bytes file = rng.RandomBytes(cfg.file_bytes);
  FileMeta meta = cluster.Upload(1, file);
  cluster.ResetMetrics();

  ExperimentResult r;
  r.params = cc.params;
  r.file_bytes = cfg.file_bytes;
  r.file_blocks = meta.num_blocks;
  r.threads = GlobalPoolThreads();

  // Substrate counters are process-wide; one registry delta around the
  // window attributes lazy-dot and weight-cache activity to this experiment.
  const obs::Snapshot snap0 = obs::TakeSnapshot();

  WindowReport report;
  if (cfg.run_recovery) {
    report = cluster.RunUpdateWindow();
  } else {
    report.ok = cluster.hypervisor().RefreshAllFiles(&report);
  }

  const obs::Snapshot delta = obs::Delta(snap0, obs::TakeSnapshot());
  r.substrate.kernel_width = cluster.ctx().kernel_width();
  r.substrate.dot_calls = obs::Value(delta, "field.dot_calls");
  r.substrate.dot_products = obs::Value(delta, "field.dot_products");
  r.substrate.dot_reductions = obs::Value(delta, "field.dot_reductions");
  r.substrate.wc_hits = obs::Value(delta, "math.wc_hits");
  r.substrate.wc_misses = obs::Value(delta, "math.wc_misses");

  // Byzantine ledger for the window: absent counters read as zero, so an
  // honest build reports all-zero columns without registering anything.
  r.byz_actions = obs::Value(delta, "byz.deals_tampered") +
                  obs::Value(delta, "byz.shares_tampered") +
                  obs::Value(delta, "byz.messages_withheld");
  r.byz_detections = obs::Value(delta, "byz.vss_check_failures") +
                     obs::Value(delta, "byz.recovery_inconsistent") +
                     obs::Value(delta, "byz.recovery_shares_corrected") +
                     obs::Value(delta, "byz.client_robust_fallbacks") +
                     obs::Value(delta, "byz.client_shares_corrected");
  r.byz_dealers_attributed = obs::Value(delta, "byz.dealers_attributed");
  r.byz_survivors_suspected = obs::Value(delta, "byz.survivors_suspected");

  // Deployment-plane counters: zero on SimNet, live when the window shares
  // the process with async-TCP endpoints (the multiprocess coordinator).
  r.net_reconnects = obs::Value(delta, "net.reconnects");
  r.net_heartbeat_misses = obs::Value(delta, "net.heartbeat_misses");
  r.net_deadline_expiries = obs::Value(delta, "net.deadline_expiries");
  r.net_backpressure_stalls = obs::Value(delta, "net.backpressure_stalls");
  r.net_frames_dropped = obs::Value(delta, "net.frames_dropped");

  r.cpu_rerand_s = static_cast<double>(report.rerandomize_total.cpu_ns) * 1e-9;
  r.cpu_recover_s = static_cast<double>(report.recover_total.cpu_ns) * 1e-9;
  r.wall_rerand_s =
      static_cast<double>(report.rerandomize_total.wall_ns) * 1e-9;
  r.wall_recover_s = static_cast<double>(report.recover_total.wall_ns) * 1e-9;
  r.bytes_rerand = report.rerandomize_total.bytes_sent;
  r.bytes_recover = report.recover_total.bytes_sent;
  r.msgs_rerand = report.rerandomize_total.msgs_sent;
  r.msgs_recover = report.recover_total.msgs_sent;
  r.sweeps_rerand = report.sweeps_refresh;
  r.sweeps_recover = report.sweeps_recovery;

  const std::size_t n = cfg.params.n;
  const CostModel cost = cluster.cost_model();
  const auto& netm = cfg.net_model;

  const double cpu_rerand_per_host = r.cpu_rerand_s / static_cast<double>(n);
  const double cpu_recover_per_host = r.cpu_recover_s / static_cast<double>(n);
  r.compute_rerand_s = cost.machine.InstanceSeconds(
      cpu_rerand_per_host, static_cast<std::uint32_t>(cc.params.b));
  r.compute_recover_s = cost.machine.InstanceSeconds(
      cpu_recover_per_host, static_cast<std::uint32_t>(cc.params.b));
  r.send_rerand_s = netm.TransferTime(
      r.bytes_rerand / std::max<std::uint64_t>(1, n), r.sweeps_rerand);
  r.send_recover_s = netm.TransferTime(
      r.bytes_recover / std::max<std::uint64_t>(1, n), r.sweeps_recover);

  r.refresh_time_s = r.compute_rerand_s + r.send_rerand_s;
  r.window_time_s = r.refresh_time_s + r.compute_recover_s + r.send_recover_s;
  r.cost_dedicated = cost.WindowCost(n, r.window_time_s, /*spot=*/false);
  r.cost_spot = cost.WindowCost(n, r.window_time_s, /*spot=*/true);

  // End-to-end validation: the refreshed, recovered file must still download
  // bit-exactly.
  Bytes back = cluster.Download(ReadSpec::Classic(1));
  r.ok = report.ok && back == file;

  r.deals_excluded = report.deals_excluded;
  r.retries = report.refresh_retries + report.recovery_retries +
              cluster.client().retries();
  r.timeouts_fired = report.timeouts_fired;
  r.msgs_dropped = cluster.net().TotalDropped();
  return r;
}

Recorder MakeExperimentRecorder() {
  return Recorder({"series", "n", "t", "l", "r", "b", "g", "threads",
                   "file_bytes", "blocks", "ok", "cpu_rerand_s",
                   "cpu_recover_s", "wall_rerand_s", "wall_recover_s",
                   "bytes_rerand", "bytes_recover", "compute_rerand_s",
                   "compute_recover_s", "send_rerand_s", "send_recover_s",
                   "refresh_time_s", "window_time_s", "cost_dedicated_usd",
                   "cost_spot_usd", "deals_excluded", "retries",
                   "timeouts_fired", "msgs_dropped", "kernel_width",
                   "dot_calls", "dot_products", "dot_reductions", "wc_hits",
                   "wc_misses", "byz_actions", "byz_detections",
                   "byz_dealers_attributed", "byz_survivors_suspected",
                   "net_reconnects", "net_heartbeat_misses",
                   "net_deadline_expiries", "net_backpressure_stalls",
                   "net_frames_dropped"});
}

void RecordExperiment(Recorder& rec, const std::string& series,
                      const ExperimentResult& r) {
  rec.NewRow()
      .Set("series", series)
      .Set("n", r.params.n)
      .Set("t", r.params.t)
      .Set("l", r.params.l)
      .Set("r", r.params.r)
      .Set("b", r.params.b)
      .Set("g", r.params.field_bits)
      .Set("threads", r.threads)
      .Set("file_bytes", r.file_bytes)
      .Set("blocks", r.file_blocks)
      .Set("ok", r.ok)
      .Set("cpu_rerand_s", r.cpu_rerand_s)
      .Set("cpu_recover_s", r.cpu_recover_s)
      .Set("wall_rerand_s", r.wall_rerand_s)
      .Set("wall_recover_s", r.wall_recover_s)
      .Set("bytes_rerand", r.bytes_rerand)
      .Set("bytes_recover", r.bytes_recover)
      .Set("compute_rerand_s", r.compute_rerand_s)
      .Set("compute_recover_s", r.compute_recover_s)
      .Set("send_rerand_s", r.send_rerand_s)
      .Set("send_recover_s", r.send_recover_s)
      .Set("refresh_time_s", r.refresh_time_s)
      .Set("window_time_s", r.window_time_s)
      .Set("cost_dedicated_usd", r.cost_dedicated)
      .Set("cost_spot_usd", r.cost_spot)
      .Set("deals_excluded", r.deals_excluded)
      .Set("retries", r.retries)
      .Set("timeouts_fired", r.timeouts_fired)
      .Set("msgs_dropped", r.msgs_dropped)
      .Set("kernel_width", r.substrate.kernel_width)
      .Set("dot_calls", r.substrate.dot_calls)
      .Set("dot_products", r.substrate.dot_products)
      .Set("dot_reductions", r.substrate.dot_reductions)
      .Set("wc_hits", r.substrate.wc_hits)
      .Set("wc_misses", r.substrate.wc_misses)
      .Set("byz_actions", r.byz_actions)
      .Set("byz_detections", r.byz_detections)
      .Set("byz_dealers_attributed", r.byz_dealers_attributed)
      .Set("byz_survivors_suspected", r.byz_survivors_suspected)
      .Set("net_reconnects", r.net_reconnects)
      .Set("net_heartbeat_misses", r.net_heartbeat_misses)
      .Set("net_deadline_expiries", r.net_deadline_expiries)
      .Set("net_backpressure_stalls", r.net_backpressure_stalls)
      .Set("net_frames_dropped", r.net_frames_dropped)
      .Commit();
}

}  // namespace pisces
