#include "pisces/driver.h"

#include "common/task_pool.h"
#include "math/weight_cache.h"

namespace pisces {

ExperimentResult RunRefreshExperiment(const ExperimentConfig& cfg) {
  ClusterConfig cc;
  cc.params = cfg.params;
  if (cfg.threads > 0) {
    // --threads N: size the process-wide pool AND model N workers per host
    // (the paper's b). Pool size affects wall time only, never results.
    cc.params.b = cfg.threads;
    SetGlobalPoolThreads(cfg.threads);
  }
  cc.seed = cfg.seed;
  cc.encrypt_links = cfg.encrypt_links;
  cc.schedule = cfg.schedule;
  cc.net_model = cfg.net_model;
  cc.instance = cfg.instance;
  cc.build_machine_ecu = cfg.build_machine_ecu;
  Cluster cluster(cc);

  Rng rng(cfg.seed ^ 0xF11E);
  Bytes file = rng.RandomBytes(cfg.file_bytes);
  FileMeta meta = cluster.Upload(1, file);
  cluster.ResetMetrics();

  ExperimentResult r;
  r.params = cc.params;
  r.file_bytes = cfg.file_bytes;
  r.file_blocks = meta.num_blocks;
  r.threads = GlobalPoolThreads();

  // Substrate counters are process-wide; the deltas around the window
  // attribute lazy-dot and weight-cache activity to this experiment.
  const field::KernelStatsSnapshot ks0 = field::GetKernelStats();
  const math::WeightCacheStats wc0 = math::GetWeightCacheStats();

  WindowReport report;
  if (cfg.run_recovery) {
    report = cluster.RunUpdateWindow();
  } else {
    report.ok = cluster.hypervisor().RefreshAllFiles(&report);
  }

  const field::KernelStatsSnapshot ks1 = field::GetKernelStats();
  const math::WeightCacheStats wc1 = math::GetWeightCacheStats();
  r.substrate.kernel_width = cluster.ctx().kernel_width();
  r.substrate.dot_calls = ks1.dot_calls - ks0.dot_calls;
  r.substrate.dot_products = ks1.dot_products - ks0.dot_products;
  r.substrate.dot_reductions = ks1.dot_reductions - ks0.dot_reductions;
  r.substrate.wc_hits = wc1.hits - wc0.hits;
  r.substrate.wc_misses = wc1.misses - wc0.misses;

  r.cpu_rerand_s = static_cast<double>(report.rerandomize_total.cpu_ns) * 1e-9;
  r.cpu_recover_s = static_cast<double>(report.recover_total.cpu_ns) * 1e-9;
  r.wall_rerand_s =
      static_cast<double>(report.rerandomize_total.wall_ns) * 1e-9;
  r.wall_recover_s = static_cast<double>(report.recover_total.wall_ns) * 1e-9;
  r.bytes_rerand = report.rerandomize_total.bytes_sent;
  r.bytes_recover = report.recover_total.bytes_sent;
  r.msgs_rerand = report.rerandomize_total.msgs_sent;
  r.msgs_recover = report.recover_total.msgs_sent;
  r.sweeps_rerand = report.sweeps_refresh;
  r.sweeps_recover = report.sweeps_recovery;

  const std::size_t n = cfg.params.n;
  const CostModel cost = cluster.cost_model();
  const auto& netm = cfg.net_model;

  const double cpu_rerand_per_host = r.cpu_rerand_s / static_cast<double>(n);
  const double cpu_recover_per_host = r.cpu_recover_s / static_cast<double>(n);
  r.compute_rerand_s = cost.machine.InstanceSeconds(
      cpu_rerand_per_host, static_cast<std::uint32_t>(cc.params.b));
  r.compute_recover_s = cost.machine.InstanceSeconds(
      cpu_recover_per_host, static_cast<std::uint32_t>(cc.params.b));
  r.send_rerand_s = netm.TransferTime(
      r.bytes_rerand / std::max<std::uint64_t>(1, n), r.sweeps_rerand);
  r.send_recover_s = netm.TransferTime(
      r.bytes_recover / std::max<std::uint64_t>(1, n), r.sweeps_recover);

  r.refresh_time_s = r.compute_rerand_s + r.send_rerand_s;
  r.window_time_s = r.refresh_time_s + r.compute_recover_s + r.send_recover_s;
  r.cost_dedicated = cost.WindowCost(n, r.window_time_s, /*spot=*/false);
  r.cost_spot = cost.WindowCost(n, r.window_time_s, /*spot=*/true);

  // End-to-end validation: the refreshed, recovered file must still download
  // bit-exactly.
  Bytes back = cluster.Download(1);
  r.ok = report.ok && back == file;

  r.deals_excluded = report.deals_excluded;
  r.retries = report.refresh_retries + report.recovery_retries +
              cluster.client().retries();
  r.timeouts_fired = report.timeouts_fired;
  r.msgs_dropped = cluster.net().TotalDropped();
  return r;
}

Recorder MakeExperimentRecorder() {
  return Recorder({"series", "n", "t", "l", "r", "b", "g", "threads",
                   "file_bytes", "blocks", "ok", "cpu_rerand_s",
                   "cpu_recover_s", "wall_rerand_s", "wall_recover_s",
                   "bytes_rerand", "bytes_recover", "compute_rerand_s",
                   "compute_recover_s", "send_rerand_s", "send_recover_s",
                   "refresh_time_s", "window_time_s", "cost_dedicated_usd",
                   "cost_spot_usd", "deals_excluded", "retries",
                   "timeouts_fired", "msgs_dropped", "kernel_width",
                   "dot_calls", "dot_products", "dot_reductions", "wc_hits",
                   "wc_misses"});
}

void RecordExperiment(Recorder& rec, const std::string& series,
                      const ExperimentResult& r) {
  rec.AddRow({
      {"series", series},
      {"n", std::to_string(r.params.n)},
      {"t", std::to_string(r.params.t)},
      {"l", std::to_string(r.params.l)},
      {"r", std::to_string(r.params.r)},
      {"b", std::to_string(r.params.b)},
      {"g", std::to_string(r.params.field_bits)},
      {"threads", std::to_string(r.threads)},
      {"file_bytes", std::to_string(r.file_bytes)},
      {"blocks", std::to_string(r.file_blocks)},
      {"ok", r.ok ? "1" : "0"},
      {"cpu_rerand_s", Recorder::Num(r.cpu_rerand_s)},
      {"cpu_recover_s", Recorder::Num(r.cpu_recover_s)},
      {"wall_rerand_s", Recorder::Num(r.wall_rerand_s)},
      {"wall_recover_s", Recorder::Num(r.wall_recover_s)},
      {"bytes_rerand", std::to_string(r.bytes_rerand)},
      {"bytes_recover", std::to_string(r.bytes_recover)},
      {"compute_rerand_s", Recorder::Num(r.compute_rerand_s)},
      {"compute_recover_s", Recorder::Num(r.compute_recover_s)},
      {"send_rerand_s", Recorder::Num(r.send_rerand_s)},
      {"send_recover_s", Recorder::Num(r.send_recover_s)},
      {"refresh_time_s", Recorder::Num(r.refresh_time_s)},
      {"window_time_s", Recorder::Num(r.window_time_s)},
      {"cost_dedicated_usd", Recorder::Num(r.cost_dedicated)},
      {"cost_spot_usd", Recorder::Num(r.cost_spot)},
      {"deals_excluded", std::to_string(r.deals_excluded)},
      {"retries", std::to_string(r.retries)},
      {"timeouts_fired", std::to_string(r.timeouts_fired)},
      {"msgs_dropped", std::to_string(r.msgs_dropped)},
      {"kernel_width", std::to_string(r.substrate.kernel_width)},
      {"dot_calls", std::to_string(r.substrate.dot_calls)},
      {"dot_products", std::to_string(r.substrate.dot_products)},
      {"dot_reductions", std::to_string(r.substrate.dot_reductions)},
      {"wc_hits", std::to_string(r.substrate.wc_hits)},
      {"wc_misses", std::to_string(r.substrate.wc_misses)},
  });
}

}  // namespace pisces
