// Mobile honest-but-curious adversary simulator (paper SectionIII-A).
//
// The adversary corrupts hosts (reading everything they store), moves between
// hosts across time periods, and is expelled from a host when the hypervisor
// reboots it. It wins if it ever holds enough same-period shares of a file:
//   * > t shares of one period: perfect privacy is lost (partial information);
//   * >= d+1 shares of one period: full reconstruction.
// Because refresh rerandomizes every share each period, shares captured in
// different periods do not combine -- which is precisely the proactive
// security property, and AttemptReconstruction demonstrates it by actually
// running the attack.
#pragma once

#include <optional>
#include <set>

#include "pisces/cluster.h"

namespace pisces {

class Adversary {
 public:
  explicit Adversary(Cluster& cluster) : cluster_(&cluster) {}

  // Corrupts a host now: snapshots every stored share at the current share
  // version. The host stays corrupted (and is re-read by ObserveWindow) until
  // a reboot expels the adversary.
  void Corrupt(std::uint32_t host);

  // Call once after each cluster.RunUpdateWindow(): hosts rebooted during the
  // window expel the adversary; hosts still corrupted are read again (their
  // shares now belong to the new period).
  void ObserveWindow();

  const std::set<std::uint32_t>& corrupted() const { return corrupted_; }

  // Most same-period shares ever captured for the file.
  std::size_t MaxSamePeriodShares(std::uint64_t file_id) const;
  // True when the capture history violates perfect privacy (> t shares of
  // one period).
  bool ExceedsPrivacyThreshold(std::uint64_t file_id) const;

  // Runs the real attack: for every captured period with >= d+1 shares,
  // reconstructs and decodes (checksum-verified). nullopt = the adversary
  // cannot recover the file.
  std::optional<Bytes> AttemptReconstruction(std::uint64_t file_id) const;

  // Deliberately mixes shares from different periods (ignoring the version
  // bookkeeping) and tries to decode -- used by tests to show stale shares
  // are useless.
  std::optional<Bytes> AttemptMixedReconstruction(std::uint64_t file_id) const;

 private:
  void SnapshotHost(std::uint32_t host);

  Cluster* cluster_;
  std::set<std::uint32_t> corrupted_;
  // Epoch counters per corrupted host at capture time let us group captures
  // by share period: captures[file][period][host] = shares.
  std::map<std::uint64_t,
           std::map<std::uint64_t,
                    std::map<std::uint32_t, std::vector<field::FpElem>>>>
      captures_;
  std::map<std::uint64_t, FileMeta> metas_;
  std::uint64_t period_ = 0;
};

}  // namespace pisces
