// Elastic-fleet autoscaler: policy layer that turns serving-plane pressure
// and EC2 pricing into reshare decisions (docs/resharding.md).
//
// The autoscaler closes the loop the paper leaves to the operator: admission
// queues measure demand, the CostModel prices supply, and the live reshare
// subsystem (ServingPlane::Reshard -> Hypervisor::Reshare) applies the
// chosen group shape without reconstructing a single file. Three stimuli,
// in priority order:
//
//   * dead fleet slots (spot churn, crashes)  -> kReprovision: a degenerate
//     reshare to the SAME shape re-deals every file to the full fleet,
//     reviving dead slots through redistribution instead of per-file
//     recovery sessions;
//   * sustained queue pressure above grow_pressure -> kGrow to n + grow_step
//     (t scales to the largest valid threshold, so a bigger fleet also
//     tolerates more corruptions), unless the hourly bill would exceed
//     budget_per_hour;
//   * pressure below shrink_pressure -> kShrink by grow_step, never below
//     min_n, returning rented instances to the provider.
//
// Decisions are pure and deterministic: same signal + same tick -> same
// decision, no RNG, no wall clock. A per-shard cooldown keeps the policy
// from thrashing between grow and shrink on a noisy queue.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "pisces/cost_model.h"
#include "pisces/serving.h"

namespace pisces {

enum class ScaleAction { kHold, kGrow, kShrink, kReprovision };

const char* ScaleActionName(ScaleAction action);

struct AutoscalerConfig {
  // Queue pressure = depth / admission_capacity. Grow above, shrink below.
  double grow_pressure = 0.75;
  double shrink_pressure = 0.10;
  // Fleet-size step per grow/shrink decision.
  std::size_t grow_step = 4;
  std::size_t min_n = 4;
  std::size_t max_n = 64;
  // Hard hourly budget for one shard's fleet (0 = unlimited). A grow whose
  // hourly bill would cross it is denied and logged, not clamped.
  double budget_per_hour = 0.0;
  bool spot = true;  // price against the spot or dedicated column
  InstanceType instance = InstanceType::kMedium;
  // Ticks a shard must wait after any applied action before the next one.
  std::uint64_t cooldown_ticks = 2;
};

// Per-shard demand/health snapshot fed into Decide.
struct ShardSignal {
  std::uint32_t shard = 0;
  std::size_t queue_depth = 0;
  std::size_t capacity = 1;
  pss::Params params;           // shape currently serving the shard
  std::size_t dead_hosts = 0;   // offline/unreachable fleet slots
};

struct ScaleDecision {
  ScaleAction action = ScaleAction::kHold;
  pss::Params target;  // meaningful when action != kHold
  // Hourly compute-bill change this decision causes (negative for shrink).
  double dollars_per_hour_delta = 0.0;
  std::string reason;
};

class ElasticAutoscaler {
 public:
  explicit ElasticAutoscaler(AutoscalerConfig cfg);

  const AutoscalerConfig& config() const { return cfg_; }

  // Largest-threshold shape at fleet size `n` keeping base's packing l,
  // recovery chunk r, pool width b, and field: t' = max t with the packed
  // constraints (3t + l < n, r + l < n - 3t) still satisfied. Throws when
  // no valid t exists for this n.
  static pss::Params ScaledParams(const pss::Params& base, std::size_t n);

  // Pure policy decision for one shard at `tick`. Never mutates a fleet;
  // RunAutoscaler applies it.
  ScaleDecision Decide(const ShardSignal& signal, std::uint64_t tick);

  // Marks `shard`'s decision as applied at `tick`, starting its cooldown.
  void NoteApplied(std::uint32_t shard, std::uint64_t tick);

  // Hourly compute bill for an n-instance fleet under this config's pricing
  // column (flat region fee excluded: it is per-deployment, not per-shard).
  double HourlyCost(std::size_t n) const;

 private:
  AutoscalerConfig cfg_;
  std::map<std::uint32_t, std::uint64_t> applied_tick_;
};

struct AutoscaleReport {
  std::size_t grows = 0;
  std::size_t shrinks = 0;
  std::size_t reprovisions = 0;
  std::size_t holds = 0;
  std::size_t denied = 0;   // grow blocked by budget, or any reshard failure
};

// One autoscaler sweep: reads every shard's queue depth and fleet health off
// the plane, asks `scaler` for a decision, and applies non-hold decisions
// through ServingPlane::Reshard (which re-routes sessions via the epoch
// bump). Deterministic given the plane state and tick.
AutoscaleReport RunAutoscaler(ServingPlane& plane, ElasticAutoscaler& scaler,
                              std::uint64_t tick);

}  // namespace pisces
