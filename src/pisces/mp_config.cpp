#include "pisces/mp_config.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace pisces {

namespace {

std::string Trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::uint64_t ParseU64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    Require(used == value.size(), "MpConfig: trailing junk");
    return v;
  } catch (const Error&) {
    throw;
  } catch (...) {
    throw InvalidArgument("MpConfig: bad numeric value for '" + key + "'");
  }
}

}  // namespace

MpConfig MpConfig::Parse(const std::string& text) {
  MpConfig cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    Require(eq != std::string::npos, "MpConfig: expected 'key = value': " + line);
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    Require(!value.empty(), "MpConfig: empty value for '" + key + "'");

    if (key == "n") {
      cfg.n = static_cast<std::uint32_t>(ParseU64(key, value));
    } else if (key == "t") {
      cfg.t = static_cast<std::uint32_t>(ParseU64(key, value));
    } else if (key == "l") {
      cfg.l = static_cast<std::uint32_t>(ParseU64(key, value));
    } else if (key == "r") {
      cfg.r = static_cast<std::uint32_t>(ParseU64(key, value));
    } else if (key == "field_bits") {
      cfg.field_bits = static_cast<std::uint32_t>(ParseU64(key, value));
    } else if (key == "base_port") {
      const std::uint64_t p = ParseU64(key, value);
      Require(p > 0 && p < 65536, "MpConfig: base_port out of range");
      cfg.base_port = static_cast<std::uint16_t>(p);
    } else if (key == "seed") {
      cfg.seed = ParseU64(key, value);
    } else if (key == "encrypt") {
      cfg.encrypt = ParseU64(key, value) != 0;
    } else if (key == "heartbeat_ms") {
      cfg.heartbeat_ms = ParseU64(key, value);
    } else if (key == "deadline_ms") {
      cfg.deadline_ms = ParseU64(key, value);
    } else if (key == "restart_backoff_ms") {
      cfg.restart_backoff_ms = ParseU64(key, value);
    } else if (key == "run_dir") {
      cfg.run_dir = value;
    } else if (key == "hostd") {
      cfg.hostd = value;
    } else {
      throw InvalidArgument("MpConfig: unknown key '" + key + "'");
    }
  }
  cfg.Validate();
  return cfg;
}

MpConfig MpConfig::Load(const std::string& path) {
  std::ifstream in(path);
  Require(in.good(), "MpConfig: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

std::string MpConfig::Format() const {
  std::ostringstream out;
  out << "# PiSCES multiprocess deployment (docs/deployment.md)\n"
      << "n = " << n << "\n"
      << "t = " << t << "\n"
      << "l = " << l << "\n"
      << "r = " << r << "\n"
      << "field_bits = " << field_bits << "\n"
      << "base_port = " << base_port << "\n"
      << "seed = " << seed << "\n"
      << "encrypt = " << (encrypt ? 1 : 0) << "\n"
      << "heartbeat_ms = " << heartbeat_ms << "\n"
      << "deadline_ms = " << deadline_ms << "\n"
      << "restart_backoff_ms = " << restart_backoff_ms << "\n"
      << "run_dir = " << run_dir << "\n";
  if (!hostd.empty()) out << "hostd = " << hostd << "\n";
  return out.str();
}

void MpConfig::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  Require(out.good(), "MpConfig: cannot write " + path);
  out << Format();
  Require(out.good(), "MpConfig: write failed for " + path);
}

void MpConfig::Validate() const {
  ToParams().Validate();
  Require(heartbeat_ms > 0, "MpConfig: heartbeat_ms must be positive");
  Require(deadline_ms > 0, "MpConfig: deadline_ms must be positive");
  Require(!run_dir.empty(), "MpConfig: run_dir must be set");
  // The port map must fit: hosts, hypervisor, client.
  Require(static_cast<std::uint32_t>(base_port) + n + 1 < 65536,
          "MpConfig: port map exceeds the port space");
}

pss::Params MpConfig::ToParams() const {
  pss::Params p;
  p.n = n;
  p.t = t;
  p.l = l;
  p.r = r;
  p.field_bits = field_bits;
  return p;
}

std::uint16_t MpConfig::HostPort(std::uint32_t host_id) const {
  Require(host_id < n, "MpConfig: host id out of range");
  return static_cast<std::uint16_t>(base_port + host_id);
}

std::uint16_t MpConfig::HypervisorPort() const {
  return static_cast<std::uint16_t>(base_port + n);
}

std::uint16_t MpConfig::ClientPort() const {
  return static_cast<std::uint16_t>(base_port + n + 1);
}

std::string MpConfig::PidPath(std::uint32_t host_id) const {
  return run_dir + "/host" + std::to_string(host_id) + ".pid";
}

std::string MpConfig::LogPath(std::uint32_t host_id) const {
  return run_dir + "/host" + std::to_string(host_id) + ".log";
}

}  // namespace pisces
