// Public API facade: a complete PiSCES deployment in one object.
//
// Cluster wires together the deterministic network fabric, the hypervisor
// (with its n share storage hosts), and a client, and exposes the paper's
// user-visible operations: Upload, Download, Delete, and RunUpdateWindow
// (one proactive time step). Examples and benches use this class; tests also
// reach through it to the underlying components.
//
//   pisces::ClusterConfig cfg;
//   cfg.params = pisces::pss::Params::Natural(21);
//   pisces::Cluster cluster(cfg);
//   cluster.Upload(1, file_bytes);
//   cluster.RunUpdateWindow();             // refresh + reboot everyone
//   pisces::Bytes back = cluster.Download(pisces::ReadSpec::Classic(1));
#pragma once

#include <memory>

#include "field/primes.h"
#include "pisces/byzantine.h"
#include "pisces/client.h"
#include "pisces/cost_model.h"
#include "pisces/deployment.h"
#include "pisces/hypervisor.h"

namespace pisces {

struct ClusterConfig {
  pss::Params params = pss::Params::Natural(13, 256);
  std::uint64_t seed = 1;
  bool encrypt_links = true;
  std::string schedule = "round-robin";
  net::NetworkModel net_model;
  InstanceType instance = InstanceType::kMedium;
  double build_machine_ecu = 25.0;
  std::optional<Deployment> deployment;  // defaults to single-cloud
  // Repair read policy forwarded to the hypervisor (reduced masked-share
  // stripes when kStaircase; see HypervisorConfig::repair).
  ReadPolicy repair;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- user operations (each pumps the network to completion) ---
  // Uploads and waits for all n acks; throws Error if any host missed it.
  FileMeta Upload(std::uint64_t file_id, std::span<const std::uint8_t> data);
  // Downloads and reassembles under the spec's read policy; throws Error
  // when unavailable (or when a staircase read fails and the spec forbids
  // falling back to the full-share path). All call sites name their policy:
  // ReadSpec::Classic(id) is the oracle path, ReadSpec::Staircase(id, d)
  // the communication-efficient one (docs/bandwidth.md).
  Bytes Download(const ReadSpec& spec);
  void Delete(std::uint64_t file_id);

  // --- proactive operations ---
  WindowReport RunUpdateWindow();
  bool RefreshAllFiles();
  // Live migration to a new group shape (n', t') without reconstructing any
  // file (docs/resharding.md). The packing l and field must match the
  // current params. Throws Error when the migration cannot complete; the
  // old fleet keeps serving in that case. Returns the hypervisor's report.
  ReshareReport Reshare(const pss::Params& to);

  // --- active adversary (tests, seed sweeps) ---
  // Arms every host named in `plan` with a seeded ByzantineActor; honest
  // hosts stay untouched (byte-identical behaviour when the plan is empty).
  // Re-arming replaces the previous engine; Disarm restores the honest fleet.
  void ArmByzantine(const ByzantinePlan& plan);
  void DisarmByzantine();
  const ByzantineEngine* byzantine_engine() const { return byzantine_.get(); }

  // --- accessors for tests, benches, adversary simulations ---
  const ClusterConfig& config() const { return cfg_; }
  const field::FpCtx& ctx() const { return *ctx_; }
  std::shared_ptr<const field::FpCtx> ctx_ptr() const { return ctx_; }
  Hypervisor& hypervisor() { return *hypervisor_; }
  Client& client() { return *client_; }
  Host& host(std::size_t i) { return hypervisor_->host(i); }
  net::SimNet& net() { return *net_; }
  net::SyncNetwork& sync() { return *sync_; }
  const Deployment& deployment() const { return deployment_; }
  CostModel cost_model() const;

  // Sum of host metrics across the fleet.
  HostMetrics TotalMetrics() const;
  void ResetMetrics();

 private:
  // One begin-pump-retry cycle under `spec`'s path; nullopt when responses
  // never sufficed, ParseError when reconstruction failed integrity.
  std::optional<Bytes> DownloadAttempt(const ReadSpec& spec);

  ClusterConfig cfg_;
  std::shared_ptr<const field::FpCtx> ctx_;
  Deployment deployment_;
  std::unique_ptr<net::SimNet> net_;
  std::unique_ptr<net::SyncNetwork> sync_;
  std::unique_ptr<Hypervisor> hypervisor_;
  net::SimEndpoint* client_endpoint_ = nullptr;
  std::unique_ptr<Client> client_;
  std::unique_ptr<ByzantineEngine> byzantine_;
};

}  // namespace pisces
