#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/error.h"

namespace obs {
namespace {

using std::uint64_t;

// ---- static span metadata ------------------------------------------------

struct KindInfo {
  const char* name;
  const char* cat;
  const char* phase;  // PhaseMetrics bucket for metric-backed closes
};

constexpr KindInfo kKinds[static_cast<std::size_t>(SpanKind::kCount)] = {
    {"window", "proto", nullptr},
    {"refresh.session", "proto", nullptr},
    {"recovery.batch", "proto", nullptr},
    {"refresh.deal", "proto", "rerand"},
    {"refresh.transform", "proto", "rerand"},
    {"refresh.verify", "proto", "rerand"},
    {"refresh.apply", "proto", "rerand"},
    {"recovery.deal", "proto", "recover"},
    {"recovery.transform", "proto", "recover"},
    {"recovery.verify", "proto", "recover"},
    {"recovery.mask", "proto", "recover"},
    {"recovery.finish", "proto", "recover"},
    {"host.serve", "proto", "serve"},
    {"vss.deal", "vss", nullptr},
    {"vss.transform", "vss", nullptr},
    {"vss.verify", "vss", nullptr},
    {"client.set", "client", "client"},
    {"client.reconstruct", "client", "client"},
    {"codec.encode", "codec", nullptr},
    {"codec.decode", "codec", nullptr},
    {"pool.chunk", "pool", nullptr},
    {"byz.action", "byz", nullptr},
    {"byz.detect", "byz", nullptr},
    {"net.connect", "net", nullptr},
    {"serving.request", "serving", nullptr},
    {"serving.refresh_batch", "serving", nullptr},
    {"reshare.session", "proto", nullptr},
    {"reshare.file", "proto", nullptr},
    {"serving.reshard", "serving", nullptr},
};

const KindInfo& Info(SpanKind k) {
  return kKinds[static_cast<std::size_t>(k)];
}

// ---- event storage -------------------------------------------------------

struct Event {
  const char* name;
  const char* cat;
  const char* phase;  // nullptr unless metric-backed
  char type;          // 'X' complete, 'i' instant
  std::uint32_t tid;
  uint64_t id, parent;
  uint64_t a, b;
  uint64_t window;
  uint64_t ts_ns;
  uint64_t wall_ns;  // dur for 'X'; unused for 'i'
  uint64_t cpu_ns;
  uint64_t bytes;  // net events only
};

std::atomic<bool> g_enabled{false};

struct Store {
  std::mutex mu;
  std::vector<Event> events;
  std::string path;  // from EnableTracing, for WriteTrace("")
};

Store& GetStore() {
  static Store* s = new Store();  // leaked: usable during static destruction
  return *s;
}

std::atomic<std::uint32_t> g_next_tid{0};
thread_local std::uint32_t t_tid = 0xFFFFFFFFu;

std::uint32_t Tid() {
  if (t_tid == 0xFFFFFFFFu)
    t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void Record(const Event& e) {
  Store& s = GetStore();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.push_back(e);
}

// ---- per-thread span bookkeeping ----------------------------------------

// Open-span stack of the calling thread. `children` numbers protocol
// siblings so repeated (parent, kind, a, b) tuples -- retry attempts -- get
// distinct ids; `saved_window` restores the window ordinal when a window
// span closes. Only touched while tracing is enabled.
struct Frame {
  uint64_t id;
  uint64_t children;
  uint64_t saved_window;
};

thread_local std::vector<Frame>* t_stack = nullptr;
thread_local uint64_t t_ctx_parent = 0;  // installed by ScopedTraceContext
thread_local uint64_t t_window = 0;
thread_local uint64_t t_root_children = 0;

// Frees the lazily-allocated stack when its thread exits. The store above
// can lean on a reachable static pointer, but a pool worker's stack has no
// root once the thread is gone and would be reported as leaked.
struct StackOwner {
  ~StackOwner() {
    delete t_stack;
    t_stack = nullptr;
  }
};
thread_local StackOwner t_stack_owner;

std::vector<Frame>& Stack() {
  if (t_stack == nullptr) {
    t_stack = new std::vector<Frame>();
    (void)&t_stack_owner;  // odr-use: registers the thread-exit cleanup
  }
  return *t_stack;
}

uint64_t CurrentParent() {
  std::vector<Frame>* st = t_stack;
  if (st != nullptr && !st->empty()) return st->back().id;
  return t_ctx_parent;
}

// splitmix64 finalizer: the id mix is a pure function of its inputs, so ids
// are reproducible wherever span open order is (control thread) or ids are
// order-free by construction (pool chunks).
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t MixId(uint64_t parent, uint64_t kind, uint64_t a, uint64_t b,
               uint64_t seq) {
  uint64_t h = Mix(parent ^ Mix(kind + 1));
  h = Mix(h ^ a);
  h = Mix(h ^ b);
  h = Mix(h ^ seq);
  return h | 1;  // never 0 (0 = "no id" / root)
}

void AppendHex(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                static_cast<unsigned long long>(v));
  out += buf;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendMicros(std::string& out, uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

const char* SpanName(SpanKind k) { return Info(k).name; }
const char* SpanCategory(SpanKind k) { return Info(k).cat; }

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void EnableTracing(const std::string& path) {
  Store& s = GetStore();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = path;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() { g_enabled.store(false, std::memory_order_relaxed); }

void ResetTrace() {
  Store& s = GetStore();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.events.clear();
    s.events.shrink_to_fit();
  }
  if (t_stack != nullptr) t_stack->clear();
  t_ctx_parent = 0;
  t_window = 0;
  t_root_children = 0;
}

// ---- Span ----------------------------------------------------------------

Span::Span(SpanKind kind, uint64_t a, uint64_t b) {
  if (!TraceEnabled()) return;
  active_ = true;
  kind_ = kind;
  a_ = a;
  b_ = b;
  parent_ = CurrentParent();
  uint64_t seq = 0;
  if (kind != SpanKind::kPoolChunk) {
    // Sibling ordinal. Chunk spans skip this: their count depends on the
    // pool split, and bumping a shared counter from them would shift the ids
    // of protocol siblings opened after a parallel region.
    std::vector<Frame>& st = Stack();
    seq = st.empty() ? t_root_children++ : st.back().children++;
  }
  id_ = MixId(parent_, static_cast<uint64_t>(kind), a, b, seq);
  Stack().push_back({id_, 0, t_window});
  if (kind == SpanKind::kWindow) t_window = a;
  ts0_ = pisces::MonotonicNanos();
  cpu0_ = pisces::ThreadCpuNanos();
}

Span::~Span() {
  if (!active_) return;
  Close(pisces::MonotonicNanos() - ts0_, pisces::ThreadCpuNanos() - cpu0_,
        /*metric_backed=*/false);
}

void Span::CloseWithTimes(uint64_t wall_ns, uint64_t cpu_ns) {
  if (!active_) return;
  Close(wall_ns, cpu_ns, /*metric_backed=*/true);
}

void Span::Close(uint64_t wall_ns, uint64_t cpu_ns, bool metric_backed) {
  active_ = false;
  std::vector<Frame>& st = Stack();
  // Pop our own frame; tolerate a stack perturbed by enable/disable races in
  // tests by searching from the top.
  while (!st.empty()) {
    const Frame f = st.back();
    st.pop_back();
    if (f.id == id_) {
      if (kind_ == SpanKind::kWindow) t_window = f.saved_window;
      break;
    }
  }
  const KindInfo& info = Info(kind_);
  Event e{};
  e.name = info.name;
  e.cat = info.cat;
  e.phase = metric_backed ? info.phase : nullptr;
  e.type = 'X';
  e.tid = Tid();
  e.id = id_;
  e.parent = parent_;
  e.a = a_;
  e.b = b_;
  e.window = kind_ == SpanKind::kWindow ? a_ : t_window;
  e.ts_ns = ts0_;
  e.wall_ns = wall_ns;
  e.cpu_ns = cpu_ns;
  Record(e);
}

void NetEvent(const char* dir, uint64_t from, uint64_t to, uint64_t bytes) {
  if (!TraceEnabled()) return;
  Event e{};
  e.name = dir[0] == 's' ? "net.send" : "net.recv";
  e.cat = "net";
  e.type = 'i';
  e.tid = Tid();
  e.parent = CurrentParent();
  e.a = from;
  e.b = to;
  e.window = t_window;
  e.ts_ns = pisces::MonotonicNanos();
  e.bytes = bytes;
  Record(e);
}

// ---- context propagation -------------------------------------------------

TraceContext CurrentTraceContext() {
  if (!TraceEnabled()) return {};
  return {CurrentParent(), t_window};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  if (!TraceEnabled()) return;
  active_ = true;
  saved_parent_ = t_ctx_parent;
  saved_window_ = t_window;
  t_ctx_parent = ctx.parent_id;
  t_window = ctx.window;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!active_) return;
  t_ctx_parent = saved_parent_;
  t_window = saved_window_;
}

// ---- export --------------------------------------------------------------

std::string TraceToJson() {
  Store& s = GetStore();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    events = s.events;
  }
  uint64_t t0 = ~0ull;
  for (const Event& e : events) t0 = e.ts_ns < t0 ? e.ts_ns : t0;
  if (events.empty()) t0 = 0;

  std::string out;
  out.reserve(events.size() * 192 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat;
    out += "\",\"ph\":\"";
    out += e.type == 'X' ? "X" : "i";
    out += "\",\"pid\":1,\"tid\":";
    AppendU64(out, e.tid);
    out += ",\"ts\":";
    AppendMicros(out, e.ts_ns - t0);
    if (e.type == 'X') {
      out += ",\"dur\":";
      AppendMicros(out, e.wall_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{";
    if (e.type == 'X') {
      out += "\"id\":";
      AppendHex(out, e.id);
      out += ",\"parent\":";
      AppendHex(out, e.parent);
      out += ",\"a\":";
      AppendU64(out, e.a);
      out += ",\"b\":";
      AppendU64(out, e.b);
      out += ",\"window\":";
      AppendU64(out, e.window);
      out += ",\"wall_ns\":";
      AppendU64(out, e.wall_ns);
      out += ",\"cpu_ns\":";
      AppendU64(out, e.cpu_ns);
      if (e.phase != nullptr) {
        out += ",\"phase\":\"";
        out += e.phase;
        out += "\"";
      }
    } else {
      out += "\"parent\":";
      AppendHex(out, e.parent);
      out += ",\"from\":";
      AppendU64(out, e.a);
      out += ",\"to\":";
      AppendU64(out, e.b);
      out += ",\"bytes\":";
      AppendU64(out, e.bytes);
      out += ",\"window\":";
      AppendU64(out, e.window);
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void WriteTrace(const std::string& path) {
  std::string p = path;
  if (p.empty()) {
    Store& s = GetStore();
    std::lock_guard<std::mutex> lock(s.mu);
    p = s.path;
  }
  pisces::Require(!p.empty(), "obs::WriteTrace: no path");
  std::ofstream f(p);
  pisces::Require(f.good(), "obs::WriteTrace: cannot open '" + p + "'");
  f << TraceToJson();
}

std::string FlameSummary() {
  Store& s = GetStore();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    events = s.events;
  }
  struct Agg {
    uint64_t count = 0;
    uint64_t wall_ns = 0;
    uint64_t cpu_ns = 0;
    uint64_t bytes = 0;
  };
  std::map<std::pair<uint64_t, std::string>, Agg> agg;
  for (const Event& e : events) {
    Agg& a = agg[{e.window, e.name}];
    a.count++;
    if (e.type == 'X') {
      a.wall_ns += e.wall_ns;
      a.cpu_ns += e.cpu_ns;
    } else {
      a.bytes += e.bytes;
    }
  }
  std::string out;
  out += "window  span                 count      wall_ms       cpu_ms"
         "        bytes\n";
  char line[160];
  for (const auto& [key, a] : agg) {
    std::snprintf(line, sizeof(line),
                  "%6llu  %-20s %5llu %12.3f %12.3f %12llu\n",
                  static_cast<unsigned long long>(key.first),
                  key.second.c_str(), static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.wall_ns) * 1e-6,
                  static_cast<double>(a.cpu_ns) * 1e-6,
                  static_cast<unsigned long long>(a.bytes));
    out += line;
  }
  return out;
}

std::size_t TraceEventCount() {
  Store& s = GetStore();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.events.size();
}

std::size_t TraceHeapBytes() {
  Store& s = GetStore();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.events.capacity() * sizeof(Event);
}

}  // namespace obs
