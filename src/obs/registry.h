// Process-wide telemetry registry.
//
// Subsystems register named counters/gauges once (at static-init or first
// use) and bump them from hot paths with a single relaxed atomic op. The
// driver takes whole-registry snapshots around a measurement window and
// attributes activity to the window via the snapshot delta -- replacing the
// per-subsystem getter plumbing (field::GetKernelStats,
// math::GetWeightCacheStats) that previously had to be threaded through by
// hand for every new counter.
//
// Contract:
//  - Registration is idempotent by name and returns a reference with stable
//    address for the life of the process.
//  - Counter::Add / Gauge::Set are lock-free and allocation-free.
//  - Snapshots list metrics in registration order, so Delta can walk two
//    snapshots pairwise.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace obs {

// Monotonic event count. Reset exists only so legacy Reset*Stats wrappers
// (used by tests) keep working; production readers use snapshot deltas.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Load() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written-value metric (pool size, bound kernel width, ...).
class Gauge {
 public:
  void Set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t Load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Registers (or looks up) a metric by name. The returned reference is valid
// forever; call once and cache it where the update site is hot. Registering
// the same name with both kinds is a programming error and throws.
Counter& RegisterCounter(const std::string& name, const std::string& help);
Gauge& RegisterGauge(const std::string& name, const std::string& help);

struct MetricValue {
  std::string name;
  std::uint64_t value = 0;
};

// Point-in-time values of every registered metric, in registration order.
using Snapshot = std::vector<MetricValue>;

Snapshot TakeSnapshot();

// after - before, pairwise. Metrics registered after `before` was taken are
// carried over from `after` at full value (their "before" is zero). Gauges
// are not differenced: the delta reports the `after` value.
Snapshot Delta(const Snapshot& before, const Snapshot& after);

// Value of `name` in a snapshot; 0 when absent.
std::uint64_t Value(const Snapshot& snap, const std::string& name);

// name -> help text for every registered metric, registration order.
std::vector<std::pair<std::string, std::string>> ListMetrics();

}  // namespace obs
