#include "obs/registry.h"

#include <deque>
#include <mutex>

#include "common/error.h"

namespace obs {
namespace {

enum class Kind { kCounter, kGauge };

struct Entry {
  std::string name;
  std::string help;
  Kind kind;
  Counter counter;  // exactly one of the two is live, by kind
  Gauge gauge;
};

// Deque: stable addresses across registration (entries are never removed).
struct Registry {
  std::mutex mu;
  std::deque<Entry> entries;
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: outlive all static dtors
  return *r;
}

Entry& RegisterEntry(const std::string& name, const std::string& help,
                     Kind kind) {
  pisces::Require(!name.empty(), "obs: metric name empty");
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (Entry& e : reg.entries) {
    if (e.name == name) {
      pisces::Require(e.kind == kind,
                      "obs: metric '" + name +
                          "' re-registered with a different kind");
      return e;
    }
  }
  reg.entries.emplace_back();
  Entry& e = reg.entries.back();
  e.name = name;
  e.help = help;
  e.kind = kind;
  return e;
}

}  // namespace

Counter& RegisterCounter(const std::string& name, const std::string& help) {
  return RegisterEntry(name, help, Kind::kCounter).counter;
}

Gauge& RegisterGauge(const std::string& name, const std::string& help) {
  return RegisterEntry(name, help, Kind::kGauge).gauge;
}

Snapshot TakeSnapshot() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  Snapshot snap;
  snap.reserve(reg.entries.size());
  for (const Entry& e : reg.entries) {
    snap.push_back({e.name, e.kind == Kind::kCounter ? e.counter.Load()
                                                     : e.gauge.Load()});
  }
  return snap;
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  // Names are append-only and ordered, so `before` is a prefix of `after`.
  pisces::Require(before.size() <= after.size(),
                  "obs::Delta: snapshots out of order");
  Snapshot out;
  out.reserve(after.size());
  // Gauge entries report the latest value rather than a difference; look the
  // kind up once under the registry lock.
  std::vector<bool> is_gauge(after.size(), false);
  {
    Registry& reg = Reg();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t i = 0; i < after.size() && i < reg.entries.size(); ++i) {
      is_gauge[i] = reg.entries[i].kind == Kind::kGauge;
    }
  }
  for (std::size_t i = 0; i < after.size(); ++i) {
    std::uint64_t base = 0;
    if (i < before.size()) {
      pisces::Require(
          before[i].name == after[i].name,
          "obs::Delta: snapshot name mismatch at '" + after[i].name + "'");
      base = before[i].value;
    }
    out.push_back(
        {after[i].name, is_gauge[i] ? after[i].value : after[i].value - base});
  }
  return out;
}

std::uint64_t Value(const Snapshot& snap, const std::string& name) {
  for (const MetricValue& m : snap) {
    if (m.name == name) return m.value;
  }
  return 0;
}

std::vector<std::pair<std::string, std::string>> ListMetrics() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(reg.entries.size());
  for (const Entry& e : reg.entries) out.emplace_back(e.name, e.help);
  return out;
}

}  // namespace obs
