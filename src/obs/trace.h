// Structured protocol tracing: RAII spans with deterministic ids.
//
// Spans cover the protocol's unit structure -- update window -> refresh
// session -> deal/transform/verify, recovery batch, VSS round, client
// set/reconstruct, codec encode/decode, task-pool chunks -- plus instant
// events for every transport send/recv with byte counts. The recorded trace
// exports as Chrome-trace-viewer JSON ({"traceEvents": [...]}; load in
// chrome://tracing or ui.perfetto.dev) and as a per-window flame summary.
//
// Determinism contract (tested in determinism_test.cpp):
//  - A span's id is a splitmix64 mix of (parent id, kind, two protocol args,
//    per-parent sibling ordinal). All protocol spans open on the simulator's
//    single control thread in protocol order, so ids are bit-identical across
//    runs and across any --threads / pool size.
//  - Task-pool chunk spans (category "pool") are the one exception: their
//    COUNT varies with pool size (the static chunk split). Each chunk's id is
//    still a pure function of (parent id, chunk index) -- execution order
//    never matters -- but identity tests must filter category "pool".
//  - Net send/recv are instant events (no id); they fire on the control
//    thread in sweep order.
//
// Cost contract: when tracing is disabled (the default) every entry point is
// one relaxed atomic load and an early return -- no allocation, no clock
// reads, no locks. ComputeSection keeps its own clock reads either way, so
// cpu_ns/wall_ns metrics are byte-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <string>

namespace obs {

enum class SpanKind : std::uint32_t {
  kWindow = 0,         // one hypervisor update window; a = window ordinal
  kRefreshSession,     // one refresh attempt over all files; a = attempt seq
  kRecoveryBatch,      // one recovery batch; a = attempt seq, b = #targets
  kRefreshDeal,        // host deals its refresh VSS batch; a = host, b = file
  kRefreshTransform,   // share transform + check-vector work; a = host, b = file
  kRefreshVerify,      // row verification; a = host, b = row
  kRefreshApply,       // applying the refreshed shares; a = host, b = file
  kRecoverDeal,        // survivor deals recovery masks; a = host, b = file
  kRecoverTransform,   // survivor transform + check; a = host, b = file
  kRecoverVerify,      // survivor row verification; a = host, b = row
  kRecoverMask,        // masked-share production / parse; a = host, b = target
  kRecoverFinish,      // target-side interpolation; a = host, b = file
  kServe,              // host set/reconstruct service work; a = host, b = file
  kVssDeal,            // VssBatch::DealFrom; a = dealer, b = #groups
  kVssTransform,       // VssBatch::Transform; a = #rows, b = #cols
  kVssVerify,          // VssBatch check-vector verification; a = row
  kClientSet,          // client encode+share upload; a = file, b = bytes
  kClientReconstruct,  // client reconstruct/decode; a = file, b = robust
  kCodecEncode,        // file -> field blocks; a = #blocks
  kCodecDecode,        // field blocks -> file; a = #blocks
  kPoolChunk,          // one task-pool chunk; a = chunk index, b = #chunks
  kByzAction,          // byzantine actor cheats; a = host, b = strategy
  kByzDetect,          // cheat detected/attributed; a = host, b = site
  kNetConnect,         // async-TCP (re)connect; a = self, b = peer
  kServingRequest,     // one serving-plane request; a = session, b = file
  kServingRefresh,     // one batched shard refresh launch; a = shard, b = #files
  kReshare,            // one fleet migration to (n', t'); a = #files, b = n'
  kReshareFile,        // one file's reshare round; a = file, b = attempt
  kReshardShard,       // one serving-plane shard reshard; a = shard, b = epoch
  kCount
};

const char* SpanName(SpanKind k);      // e.g. "refresh.deal"
const char* SpanCategory(SpanKind k);  // "proto", "vss", "client", "codec", "pool"

// --- global switch -------------------------------------------------------
bool TraceEnabled();
// Enables collection. `path` is remembered for WriteTrace(""); pass empty to
// collect in memory only.
void EnableTracing(const std::string& path);
void DisableTracing();
// Drops collected events and resets the id/window bookkeeping of the calling
// thread. (Worker-thread bookkeeping resets itself: contexts are scoped.)
void ResetTrace();

// --- spans ---------------------------------------------------------------
class Span {
 public:
  explicit Span(SpanKind kind, std::uint64_t a = 0, std::uint64_t b = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Close the span now, stamping measured wall/cpu nanos from an external
  // meter (ComputeSection) instead of the tracer's own clocks. The event is
  // tagged with the metric phase its kind accumulates into ("rerand",
  // "recover", "serve", "client"), keeping trace durations reconcilable, to
  // the nanosecond, with the PhaseMetrics the CSV reports.
  void CloseWithTimes(std::uint64_t wall_ns, std::uint64_t cpu_ns);

  // 0 when tracing is disabled.
  std::uint64_t id() const { return id_; }

 private:
  void Close(std::uint64_t wall_ns, std::uint64_t cpu_ns, bool metric_backed);
  bool active_ = false;
  SpanKind kind_ = SpanKind::kCount;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t a_ = 0, b_ = 0;
  std::uint64_t ts0_ = 0;   // monotonic ns at open
  std::uint64_t cpu0_ = 0;  // thread cpu ns at open
};

// Instant event for one transport message. `dir` is "send" or "recv".
void NetEvent(const char* dir, std::uint64_t from, std::uint64_t to,
              std::uint64_t bytes);

// --- cross-thread context ------------------------------------------------
// The task pool captures the dispatching thread's context and installs it in
// each worker so chunk spans parent correctly and carry the window ordinal.
struct TraceContext {
  std::uint64_t parent_id = 0;
  std::uint64_t window = 0;
};
TraceContext CurrentTraceContext();

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  bool active_ = false;
  std::uint64_t saved_parent_ = 0;
  std::uint64_t saved_window_ = 0;
};

// --- export --------------------------------------------------------------
// Chrome trace viewer JSON ({"traceEvents":[...]}). Ids are hex strings
// (JSON numbers are doubles; 64-bit ids would lose bits). ts/dur are in
// microseconds as the format requires; exact nanosecond wall/cpu live in
// args.wall_ns / args.cpu_ns.
std::string TraceToJson();
// Writes TraceToJson() to `path`, or to the EnableTracing path when empty.
void WriteTrace(const std::string& path = "");

// Per-window flame summary: for each (window, span name), the call count and
// total wall/cpu, aligned for terminal reading.
std::string FlameSummary();

// Introspection for tests.
std::size_t TraceEventCount();
// Bytes of heap owned by the trace event buffer (0 when tracing never ran).
std::size_t TraceHeapBytes();

}  // namespace obs
