#!/usr/bin/env bash
# Line-coverage gate over the protocol core (src/pss + src/pisces): builds a
# dedicated tree with PISCES_COVERAGE=ON, runs the unit suite, aggregates
# per-file line coverage with plain gcov (gcovr/lcov are not in the image),
# and fails if the aggregate drops below scripts/coverage_baseline.txt.
#
# When coverage legitimately rises, ratchet the baseline up in the same
# change; never lower it to make a regression pass.
#
# Usage: scripts/check_coverage.sh [build-dir]   (default: build-cov)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-cov}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPISCES_COVERAGE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pisces_tests

# Fresh counters each run; stale .gcda from an earlier source revision makes
# gcov mis-attribute lines.
find "$BUILD_DIR" -name '*.gcda' -delete

"$BUILD_DIR/tests/pisces_tests" --gtest_brief=1

# gcov -n prints, for every source a .gcda touches:
#   File '<path>'
#   Lines executed:<pct>% of <total>
# The same header can appear under several objects; keep the best-covered
# record per file so shared templates are not double counted.
report=$(find "$BUILD_DIR" -name '*.gcda' -print0 |
  xargs -0 -n 64 gcov -n 2>/dev/null || true)

summary=$(printf '%s\n' "$report" | awk '
  /^File / {
    f = $0
    sub(/^File '\''/, "", f); sub(/'\''$/, "", f)
    keep = (f ~ /src\/(pss|pisces)\//)
    next
  }
  keep && /^Lines executed:/ {
    line = $0
    sub(/^Lines executed:/, "", line)
    split(line, a, /% of /)
    exec_lines = a[1] * a[2] / 100.0
    if (!(f in tot) || exec_lines > covered[f]) {
      covered[f] = exec_lines; tot[f] = a[2]
    }
    keep = 0
  }
  END {
    te = 0; tt = 0
    for (f in tot) {
      short = f; sub(/^.*src\//, "src/", short)
      printf "  %6.2f%%  %5d lines  %s\n", 100.0 * covered[f] / tot[f], tot[f], short
      te += covered[f]; tt += tot[f]
    }
    if (tt == 0) { print "TOTAL 0.00 0"; exit }
    printf "TOTAL %.2f %d\n", 100.0 * te / tt, tt
  }' | sort -k3)

printf '%s\n' "$summary" | grep -v '^TOTAL'
pct=$(printf '%s\n' "$summary" | awk '/^TOTAL/ { print $2 }')
lines=$(printf '%s\n' "$summary" | awk '/^TOTAL/ { print $3 }')
baseline=$(cat scripts/coverage_baseline.txt)

echo "protocol-core line coverage: ${pct}% of ${lines} lines (baseline ${baseline}%)"
if ! awk -v p="$pct" -v b="$baseline" 'BEGIN { exit !(p + 0 >= b + 0) }'; then
  echo "FAIL: coverage ${pct}% is below the checked-in baseline ${baseline}%" >&2
  exit 1
fi
echo "coverage gate passed"
