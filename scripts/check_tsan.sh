#!/usr/bin/env bash
# ThreadSanitizer check: configures a dedicated build tree with PISCES_TSAN=ON
# and runs the suites that exercise the task pool hardest -- the pool/PSS unit
# tests, the threaded determinism tests, and the chaos drill -- with a
# multi-thread global pool so races in parallel bodies actually interleave.
# The event-loop and async-TCP suites ride along: the reactor thread vs
# application thread locking discipline (net/async_tcp.h) is exactly the kind
# of contract TSan can falsify.
# Any report is fatal (-fno-sanitize-recover=all + halt_on_error).
#
# The determinism contract (docs/parallelism.md) says parallel bodies write
# only index-owned state; TSan is the tool that proves every call site keeps
# that promise instead of merely asserting it.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPISCES_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target pisces_tests serving_drill reshare_drill

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
# Run the pool-heavy suites with a wide pool (PISCES_THREADS is honored by the
# benches; the tests size the pool themselves via SetGlobalPoolThreads /
# params.b, so the filters below are what matters).
"$BUILD_DIR/tests/pisces_tests" --gtest_filter='Determinism.*:*VssBatchTest*:*PssGridTest*:RobustShamir.*:*FieldPropertyTest*:*FieldKernelTest*:FieldKernelFallback.*:DifferentialTest.*:PolyEngine.*:BatchInv.*:Chaos.*:Cluster.*:LongHorizon.*:Registry.*:Trace.*:Byzantine*:Fuzz.*:EventLoop.*:AsyncTcp.*:TransportConformance.*:Serving.*:ServingDifferential.*:CommStripe.*:CommReadSpec.*:CommDifferential.*:CommBytes.*:CommRecovery.*:CommServing.*:CommStatus.*:Reshare*:Elastic*'

# The open-loop serving drill: many protocol sessions pumped through the
# task pool per tick while admission queues churn -- the serving lane's
# pool-contention shape, distinct from the unit suites above.
"$BUILD_DIR/tests/serving_drill"

# The combined resharding drill: live migrations (Reshard drains + reshapes
# one shard on the pool while the others keep serving) interleaved with the
# open-loop generator, churn, and a batched refresh -- the shape-change
# locking discipline the Reshare*/Elastic* unit filters above can't reach
# at drill concurrency.
"$BUILD_DIR/tests/reshare_drill"
