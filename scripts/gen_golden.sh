#!/usr/bin/env bash
# Regenerates the golden known-answer vectors under tests/data/.
#
# Run this ONLY after an intentional numeric change (RNG draw order, field
# arithmetic, share/VSS pipeline) and review the resulting data-file diff:
# every changed line is a vector that moved. golden_test fails until the
# checked-in vectors match the code again.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_gen -j"$(nproc)"

mkdir -p tests/data
"$BUILD_DIR/tests/golden_gen" tests/data
echo "golden vectors regenerated; review: git diff tests/data"
