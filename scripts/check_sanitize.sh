#!/usr/bin/env bash
# ASan+UBSan check: configures a dedicated build tree with PISCES_SANITIZE=ON
# and runs the full test suite under both sanitizers -- including the chaos
# drill, the multiprocess crash-restart drill (ctest -L mp_drill), whose
# pisces_hostd children are themselves sanitized binaries, the serving
# lane (ctest -L serving: the open-loop load drill plus the wall-clock bench
# smoke), and the combined resharding drill (ctest -L reshare_drill: live
# migrations + churn + Byzantine contributor under open-loop load), so
# host-process, serving-plane, and shape-change code paths get the same
# memory-safety scrutiny as in-process ones. Any report is fatal
# (-fno-sanitize-recover=all + halt_on_error).
#
# Usage: scripts/check_sanitize.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPISCES_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
# Longer structured-fuzz soak under the sanitizers: the message-deserializer
# fuzzer honors PISCES_FUZZ_ITERS (default 2000 in a plain test run).
export PISCES_FUZZ_ITERS="${PISCES_FUZZ_ITERS:-20000}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
