#!/usr/bin/env bash
# Serving-plane throughput harness: builds the release tree and runs the
# open-loop load generator against the sharded serving plane twice --
#
#   sustainable   an offered rate the plane absorbs without shedding, so the
#                 p50/p99 columns measure protocol latency, not queueing;
#   overload      an offered rate well past the service rate, so admission
#                 control sheds (bounded queues, retry-after) and the p99
#                 column measures honest open-loop queueing delay.
#
# BENCH_serving.json at the repo root combines both runs plus the ISSUE's
# acceptance gate: >= 2 shards, ops/sec and p50/p99 reported, and rejection
# counts present (zero in the sustainable run, nonzero under overload).
#
# Usage: scripts/bench_serving.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT_JSON="BENCH_serving.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target throughput_serving

BIN="$BUILD_DIR/bench/throughput_serving"
SUSTAIN_JSON="$BUILD_DIR/serving_sustain.json"
OVERLOAD_JSON="$BUILD_DIR/serving_overload.json"

"$BIN" --shards 2 --rate 400 --duration-ms 3000 --json "$SUSTAIN_JSON"
"$BIN" --shards 2 --rate 20000 --duration-ms 2000 --json "$OVERLOAD_JSON"

python3 - "$SUSTAIN_JSON" "$OVERLOAD_JSON" "$OUT_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sustain = json.load(f)
with open(sys.argv[2]) as f:
    overload = json.load(f)

result = {
    "benchmark": "throughput_serving",
    "description": "open-loop load vs the 2-shard serving plane; latency "
                   "from scheduled arrival (coordinated-omission-safe)",
    "sustainable": sustain,
    "overload": overload,
    "acceptance": {
        "shards": sustain["shards"],
        "shards_ok": sustain["shards"] >= 2 and overload["shards"] >= 2,
        # Accounting sanity: the measured window can never admit more than
        # the open loop offered (preload is reported separately).
        "accounting_ok": (
            sustain["accepted"] <= sustain["offered_ops"]
            and overload["accepted"] <= overload["offered_ops"]),
        "ops_per_sec": overload["ops_per_sec"],
        "p50_ms": sustain["p50_ms"],
        "p99_ms": sustain["p99_ms"],
        "rejections_reported": overload["rejected"],
        "overload_shed_ok": overload["rejected"] > 0,
        "no_accepted_request_lost": bool(
            sustain["ok"] and overload["ok"]),
    },
}
result["acceptance"]["ok"] = all(
    result["acceptance"][k]
    for k in ("shards_ok", "accounting_ok", "overload_shed_ok",
              "no_accepted_request_lost"))

with open(sys.argv[3], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[3]}")
print(json.dumps(result["acceptance"], indent=2))
EOF
