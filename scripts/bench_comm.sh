#!/usr/bin/env bash
# Communication-bytes harness: configures and builds a Release tree, runs the
# comm_bytes bench (staircase striped read vs the classic full-share oracle,
# reduced vs full masked-share recovery, n = 16 fleet) and distills its JSON
# into BENCH_comm.json at the repo root with the acceptance gates spelled out
# as fields: ShareResponse bytes per staircase download <= 0.70x classic, and
# MaskedShare bytes per reduced repair <= 0.85x full.
#
# The byte counters are deterministic -- the bench still runs with
# repetitions and keeps the min so an incidental retry can only make the
# reported reduction more conservative, never flatter. The post-pass
# HARD-FAILS unless the binary was built with NDEBUG: it gates on the
# `pisces_build_type` context key comm_bytes emits itself, the same
# discipline as bench_micro.sh.
#
# Usage: scripts/bench_comm.sh [build-dir]   (default: build-rel)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-rel}"
RAW_JSON="$BUILD_DIR/comm_bytes_raw.json"
OUT_JSON="BENCH_comm.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target comm_bytes

# Belt and braces: the configured build type must be a release flavor even
# before we look at the binary's own context key.
if ! grep -q '^CMAKE_BUILD_TYPE:[^=]*=Rel' "$BUILD_DIR/CMakeCache.txt"; then
  echo "bench_comm.sh: $BUILD_DIR is not a release build" >&2
  exit 1
fi

# The binary enforces its own gates (exit nonzero on a missed reduction, a
# non-identical download, or any silent staircase fallback); capture the JSON
# regardless so a failure leaves the evidence behind.
"$BUILD_DIR/bench/comm_bytes" --file-bytes 16384 --reps 3 --json "$RAW_JSON"

python3 - "$RAW_JSON" "$OUT_JSON" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# HARD GATE: numbers from a non-release build are not publishable. The key
# is emitted by the bench's own translation unit (NDEBUG check).
build_type = raw.get("context", {}).get("pisces_build_type")
if build_type != "release":
    sys.exit(f"bench_comm.sh: refusing non-release numbers "
             f"(pisces_build_type={build_type!r}); build with NDEBUG")

dl = raw["download"]
rp = raw["repair"]
result = dict(raw)
result["acceptance"] = {
    "build_type": "release",
    "download_share_ratio": dl["share_ratio"],
    "download_target": 0.70,
    "download_ok": dl["share_ratio"] <= 0.70,
    "repair_masked_ratio": rp["masked_ratio"],
    "repair_target": 0.85,
    "repair_ok": rp["masked_ratio"] <= 0.85,
    "honest": bool(raw["acceptance"]["bit_identical_and_healed"]
                   and raw["acceptance"]["zero_staircase_fallbacks"]),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(result["acceptance"], indent=2))
if not (result["acceptance"]["download_ok"]
        and result["acceptance"]["repair_ok"]
        and result["acceptance"]["honest"]):
    sys.exit("bench_comm.sh: acceptance gate failed")
EOF
