#!/usr/bin/env bash
# Field-kernel microbenchmark harness: builds the release tree, runs the
# mul/sqr/dot benchmarks at every standard prime size, and distills the
# google-benchmark JSON into BENCH_field.json at the repo root --
# machine-readable specialized-vs-generic numbers plus speedup ratios, with
# the ISSUE's acceptance gate (>= 1.5x Montgomery multiply at g=256) spelled
# out as a field.
#
# Usage: scripts/bench_micro.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
RAW_JSON="$BUILD_DIR/micro_field_raw.json"
OUT_JSON="BENCH_field.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_field_ops

# Repetitions with a min-selecting post-pass: on a shared host, interference
# is one-sided (it only ever slows a rep down), so the minimum across reps is
# the faithful estimate of the kernel's cost.
"$BUILD_DIR/bench/micro_field_ops" \
  --benchmark_filter='BM_Field(Mul|Sqr|Dot)' \
  --benchmark_out="$RAW_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=5

python3 - "$RAW_JSON" "$OUT_JSON" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Keep the MIN across repetitions of each benchmark/size pair (interference
# on a shared host only ever inflates a rep).
ns = {}
for b in raw["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name, arg = b["run_name"].split("/")
    d = ns.setdefault(name, {})
    g = int(arg)
    d[g] = min(d.get(g, float("inf")), b["real_time"])

def ratio(num, den):
    return round(num / den, 3) if den else None

sizes = sorted(ns.get("BM_FieldMul", {}))
result = {
    "benchmark": "micro_field_ops",
    "dot_length": 32,
    "unit": "ns_min_of_5_reps",
    "context": raw.get("context", {}),
    "sizes": {},
}
for g in sizes:
    mul = ns["BM_FieldMul"][g]
    mul_gen = ns["BM_FieldMulGeneric"][g]
    sqr = ns["BM_FieldSqr"][g]
    sqr_gen = ns["BM_FieldSqrGeneric"][g]
    dot = ns["BM_FieldDot"][g]
    dot_naive = ns["BM_FieldDotNaive"][g]
    result["sizes"][str(g)] = {
        "mul_ns": mul,
        "mul_generic_ns": mul_gen,
        "mul_speedup": ratio(mul_gen, mul),
        "sqr_ns": sqr,
        "sqr_generic_ns": sqr_gen,
        "sqr_speedup": ratio(sqr_gen, sqr),
        "sqr_vs_mul": ratio(mul, sqr),
        "dot32_ns": dot,
        "dot32_naive_ns": dot_naive,
        "dot_speedup": ratio(dot_naive, dot),
    }

mul256 = result["sizes"].get("256", {}).get("mul_speedup")
result["acceptance"] = {
    "mul256_speedup": mul256,
    "mul256_target": 1.5,
    "mul256_ok": bool(mul256 and mul256 >= 1.5),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(result["acceptance"], indent=2))
EOF
