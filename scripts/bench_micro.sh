#!/usr/bin/env bash
# Field-kernel + polynomial-engine microbenchmark harness: configures and
# builds a Release tree, runs the mul/sqr/dot kernels at every standard prime
# size plus the subproduct-tree eval/interp/batch-inversion benchmarks at
# n in {16, 64, 256, 1024}, and distills the google-benchmark JSON into
# BENCH_field.json at the repo root -- machine-readable specialized-vs-generic
# numbers plus speedup ratios, with the acceptance gates (>= 1.5x Montgomery
# multiply at g=256; >= 5x tree interpolation vs the Lagrange oracle at
# n=1024) spelled out as fields.
#
# The post-pass HARD-FAILS unless the benchmark binary was built with NDEBUG:
# it gates on the custom context key `pisces_build_type` emitted by
# micro_field_ops itself. google-benchmark's own `library_build_type` key is
# untrustworthy for this (it reports how the installed benchmark LIBRARY was
# compiled -- "debug" for the distro package -- not how our code was).
#
# Usage: scripts/bench_micro.sh [build-dir]   (default: build-rel)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-rel}"
RAW_FIELD_JSON="$BUILD_DIR/micro_field_raw.json"
RAW_POLY_JSON="$BUILD_DIR/micro_poly_raw.json"
OUT_JSON="BENCH_field.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_field_ops

# Belt and braces: the configured build type must be a release flavor even
# before we look at the binary's own context key.
if ! grep -q '^CMAKE_BUILD_TYPE:[^=]*=Rel' "$BUILD_DIR/CMakeCache.txt"; then
  echo "bench_micro.sh: $BUILD_DIR is not a release build" >&2
  exit 1
fi

# Repetitions with a min-selecting post-pass: on a shared host, interference
# is one-sided (it only ever slows a rep down), so the minimum across reps is
# the faithful estimate of the kernel's cost.
"$BUILD_DIR/bench/micro_field_ops" \
  --benchmark_filter='BM_Field(Mul|Sqr|Dot)' \
  --benchmark_out="$RAW_FIELD_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=5

# The poly-engine benches include the O(n^2) Lagrange oracle at n=1024
# (hundreds of ms per iteration), so fewer repetitions keep the harness
# tractable; min-of-3 retains the one-sided-noise property.
"$BUILD_DIR/bench/micro_field_ops" \
  --benchmark_filter='BM_(Poly|BatchInv)' \
  --benchmark_out="$RAW_POLY_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3

python3 - "$RAW_FIELD_JSON" "$RAW_POLY_JSON" "$OUT_JSON" <<'EOF'
import json
import sys

field_path, poly_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(field_path) as f:
    raw_field = json.load(f)
with open(poly_path) as f:
    raw_poly = json.load(f)

# HARD GATE: numbers from a non-release build are not publishable. The key is
# emitted by our own translation unit (NDEBUG check), because the library's
# own library_build_type describes the distro libbenchmark, not our code.
for raw in (raw_field, raw_poly):
    build_type = raw.get("context", {}).get("pisces_build_type")
    if build_type != "release":
        sys.exit(f"bench_micro.sh: refusing non-release numbers "
                 f"(pisces_build_type={build_type!r}); build with NDEBUG")

# Keep the MIN across repetitions of each benchmark/size pair (interference
# on a shared host only ever inflates a rep).
ns = {}
for raw in (raw_field, raw_poly):
    for b in raw["benchmarks"]:
        if b.get("run_type") != "iteration":
            continue
        name, arg = b["run_name"].split("/")
        d = ns.setdefault(name, {})
        g = int(arg)
        d[g] = min(d.get(g, float("inf")), b["real_time"])

def ratio(num, den):
    return round(num / den, 3) if den else None

sizes = sorted(ns.get("BM_FieldMul", {}))
result = {
    "benchmark": "micro_field_ops",
    "dot_length": 32,
    "unit": "ns_min_of_reps",
    "context": raw_field.get("context", {}),
    "sizes": {},
    "poly": {},
}
for g in sizes:
    mul = ns["BM_FieldMul"][g]
    mul_gen = ns["BM_FieldMulGeneric"][g]
    sqr = ns["BM_FieldSqr"][g]
    sqr_gen = ns["BM_FieldSqrGeneric"][g]
    dot = ns["BM_FieldDot"][g]
    dot_naive = ns["BM_FieldDotNaive"][g]
    result["sizes"][str(g)] = {
        "mul_ns": mul,
        "mul_generic_ns": mul_gen,
        "mul_speedup": ratio(mul_gen, mul),
        "sqr_ns": sqr,
        "sqr_generic_ns": sqr_gen,
        "sqr_speedup": ratio(sqr_gen, sqr),
        "sqr_vs_mul": ratio(mul, sqr),
        "dot32_ns": dot,
        "dot32_naive_ns": dot_naive,
        "dot_speedup": ratio(dot_naive, dot),
    }

# Polynomial engine (256-bit field, domain size n): subproduct-tree
# eval/interp vs the generic oracles, plus domain build and batch inversion.
# eval_speedup < 1 through n=1024 is EXPECTED and recorded honestly -- it is
# the measurement behind the high PolyEvalCrossover default (see
# docs/polynomial_engine.md).
for n in sorted(ns.get("BM_PolyInterpTree", {})):
    result["poly"][str(n)] = {
        "eval_tree_ns": ns["BM_PolyEvalTree"][n],
        "eval_horner_ns": ns["BM_PolyEvalHorner"][n],
        "eval_speedup": ratio(ns["BM_PolyEvalHorner"][n],
                              ns["BM_PolyEvalTree"][n]),
        "interp_tree_ns": ns["BM_PolyInterpTree"][n],
        "interp_lagrange_ns": ns["BM_PolyInterpLagrange"][n],
        "interp_speedup": ratio(ns["BM_PolyInterpLagrange"][n],
                                ns["BM_PolyInterpTree"][n]),
        "domain_build_ns": ns["BM_PolyDomainBuild"][n],
        "batchinv_ns": ns["BM_BatchInv"][n],
    }

mul256 = result["sizes"].get("256", {}).get("mul_speedup")
interp1024 = result["poly"].get("1024", {}).get("interp_speedup")
result["acceptance"] = {
    "build_type": "release",
    "mul256_speedup": mul256,
    "mul256_target": 1.5,
    "mul256_ok": bool(mul256 and mul256 >= 1.5),
    "interp1024_speedup": interp1024,
    "interp1024_target": 5.0,
    "interp1024_ok": bool(interp1024 and interp1024 >= 5.0),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(result["acceptance"], indent=2))
if not (result["acceptance"]["mul256_ok"]
        and result["acceptance"]["interp1024_ok"]):
    sys.exit("bench_micro.sh: acceptance gate failed")
EOF
