file(REMOVE_RECURSE
  "libpisces_core.a"
)
