
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/pisces_core.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/CMakeFiles/pisces_core.dir/common/clock.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/common/clock.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/pisces_core.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/pisces_core.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/common/rng.cpp.o.d"
  "/root/repo/src/crypto/ca.cpp" "src/CMakeFiles/pisces_core.dir/crypto/ca.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/ca.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/CMakeFiles/pisces_core.dir/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/channel.cpp" "src/CMakeFiles/pisces_core.dir/crypto/channel.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/channel.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/CMakeFiles/pisces_core.dir/crypto/hkdf.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/pisces_core.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/CMakeFiles/pisces_core.dir/crypto/schnorr.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/pisces_core.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/field/fp.cpp" "src/CMakeFiles/pisces_core.dir/field/fp.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/field/fp.cpp.o.d"
  "/root/repo/src/field/limbs.cpp" "src/CMakeFiles/pisces_core.dir/field/limbs.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/field/limbs.cpp.o.d"
  "/root/repo/src/field/primes.cpp" "src/CMakeFiles/pisces_core.dir/field/primes.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/field/primes.cpp.o.d"
  "/root/repo/src/math/berlekamp_welch.cpp" "src/CMakeFiles/pisces_core.dir/math/berlekamp_welch.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/math/berlekamp_welch.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/CMakeFiles/pisces_core.dir/math/matrix.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/math/matrix.cpp.o.d"
  "/root/repo/src/math/poly.cpp" "src/CMakeFiles/pisces_core.dir/math/poly.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/math/poly.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/pisces_core.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/net/message.cpp.o.d"
  "/root/repo/src/net/sim_transport.cpp" "src/CMakeFiles/pisces_core.dir/net/sim_transport.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/net/sim_transport.cpp.o.d"
  "/root/repo/src/net/sync_network.cpp" "src/CMakeFiles/pisces_core.dir/net/sync_network.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/net/sync_network.cpp.o.d"
  "/root/repo/src/net/tcp_transport.cpp" "src/CMakeFiles/pisces_core.dir/net/tcp_transport.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/net/tcp_transport.cpp.o.d"
  "/root/repo/src/pisces/adversary.cpp" "src/CMakeFiles/pisces_core.dir/pisces/adversary.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/adversary.cpp.o.d"
  "/root/repo/src/pisces/client.cpp" "src/CMakeFiles/pisces_core.dir/pisces/client.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/client.cpp.o.d"
  "/root/repo/src/pisces/cluster.cpp" "src/CMakeFiles/pisces_core.dir/pisces/cluster.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/cluster.cpp.o.d"
  "/root/repo/src/pisces/cost_model.cpp" "src/CMakeFiles/pisces_core.dir/pisces/cost_model.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/cost_model.cpp.o.d"
  "/root/repo/src/pisces/deployment.cpp" "src/CMakeFiles/pisces_core.dir/pisces/deployment.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/deployment.cpp.o.d"
  "/root/repo/src/pisces/driver.cpp" "src/CMakeFiles/pisces_core.dir/pisces/driver.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/driver.cpp.o.d"
  "/root/repo/src/pisces/file_codec.cpp" "src/CMakeFiles/pisces_core.dir/pisces/file_codec.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/file_codec.cpp.o.d"
  "/root/repo/src/pisces/host.cpp" "src/CMakeFiles/pisces_core.dir/pisces/host.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/host.cpp.o.d"
  "/root/repo/src/pisces/hypervisor.cpp" "src/CMakeFiles/pisces_core.dir/pisces/hypervisor.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/hypervisor.cpp.o.d"
  "/root/repo/src/pisces/recorder.cpp" "src/CMakeFiles/pisces_core.dir/pisces/recorder.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/recorder.cpp.o.d"
  "/root/repo/src/pisces/schedule.cpp" "src/CMakeFiles/pisces_core.dir/pisces/schedule.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/schedule.cpp.o.d"
  "/root/repo/src/pisces/share_store.cpp" "src/CMakeFiles/pisces_core.dir/pisces/share_store.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pisces/share_store.cpp.o.d"
  "/root/repo/src/pss/baseline.cpp" "src/CMakeFiles/pisces_core.dir/pss/baseline.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/baseline.cpp.o.d"
  "/root/repo/src/pss/packed_shamir.cpp" "src/CMakeFiles/pisces_core.dir/pss/packed_shamir.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/packed_shamir.cpp.o.d"
  "/root/repo/src/pss/params.cpp" "src/CMakeFiles/pisces_core.dir/pss/params.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/params.cpp.o.d"
  "/root/repo/src/pss/recovery.cpp" "src/CMakeFiles/pisces_core.dir/pss/recovery.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/recovery.cpp.o.d"
  "/root/repo/src/pss/refresh.cpp" "src/CMakeFiles/pisces_core.dir/pss/refresh.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/refresh.cpp.o.d"
  "/root/repo/src/pss/reshare.cpp" "src/CMakeFiles/pisces_core.dir/pss/reshare.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/reshare.cpp.o.d"
  "/root/repo/src/pss/vss.cpp" "src/CMakeFiles/pisces_core.dir/pss/vss.cpp.o" "gcc" "src/CMakeFiles/pisces_core.dir/pss/vss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
