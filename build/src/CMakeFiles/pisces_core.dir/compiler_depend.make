# Empty compiler generated dependencies file for pisces_core.
# This may be replaced when dependencies are built.
