# Empty compiler generated dependencies file for pisces_tests.
# This may be replaced when dependencies are built.
