
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adversary_test.cpp" "tests/CMakeFiles/pisces_tests.dir/adversary_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/adversary_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/pisces_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/pisces_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/codec_test.cpp" "tests/CMakeFiles/pisces_tests.dir/codec_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/codec_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/pisces_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/cost_test.cpp" "tests/CMakeFiles/pisces_tests.dir/cost_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/cost_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/pisces_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/deployment_test.cpp" "tests/CMakeFiles/pisces_tests.dir/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/deployment_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/pisces_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/e2e_test.cpp" "tests/CMakeFiles/pisces_tests.dir/e2e_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/e2e_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/pisces_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/field_test.cpp" "tests/CMakeFiles/pisces_tests.dir/field_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/field_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/pisces_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/host_test.cpp" "tests/CMakeFiles/pisces_tests.dir/host_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/host_test.cpp.o.d"
  "/root/repo/tests/math_test.cpp" "tests/CMakeFiles/pisces_tests.dir/math_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/math_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/pisces_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/pss_test.cpp" "tests/CMakeFiles/pisces_tests.dir/pss_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/pss_test.cpp.o.d"
  "/root/repo/tests/recorder_test.cpp" "tests/CMakeFiles/pisces_tests.dir/recorder_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/recorder_test.cpp.o.d"
  "/root/repo/tests/reshare_test.cpp" "tests/CMakeFiles/pisces_tests.dir/reshare_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/reshare_test.cpp.o.d"
  "/root/repo/tests/robust_test.cpp" "tests/CMakeFiles/pisces_tests.dir/robust_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/robust_test.cpp.o.d"
  "/root/repo/tests/schedule_test.cpp" "tests/CMakeFiles/pisces_tests.dir/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/schedule_test.cpp.o.d"
  "/root/repo/tests/store_test.cpp" "tests/CMakeFiles/pisces_tests.dir/store_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/store_test.cpp.o.d"
  "/root/repo/tests/tcp_test.cpp" "tests/CMakeFiles/pisces_tests.dir/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/pisces_tests.dir/tcp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pisces_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
