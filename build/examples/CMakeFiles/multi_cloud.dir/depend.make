# Empty dependencies file for multi_cloud.
# This may be replaced when dependencies are built.
