file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud.dir/multi_cloud.cpp.o"
  "CMakeFiles/multi_cloud.dir/multi_cloud.cpp.o.d"
  "multi_cloud"
  "multi_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
