file(REMOVE_RECURSE
  "CMakeFiles/tcp_cluster.dir/tcp_cluster.cpp.o"
  "CMakeFiles/tcp_cluster.dir/tcp_cluster.cpp.o.d"
  "tcp_cluster"
  "tcp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
