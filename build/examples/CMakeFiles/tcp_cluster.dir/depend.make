# Empty dependencies file for tcp_cluster.
# This may be replaced when dependencies are built.
