# Empty dependencies file for mobile_adversary_drill.
# This may be replaced when dependencies are built.
