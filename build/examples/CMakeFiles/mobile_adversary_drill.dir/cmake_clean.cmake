file(REMOVE_RECURSE
  "CMakeFiles/mobile_adversary_drill.dir/mobile_adversary_drill.cpp.o"
  "CMakeFiles/mobile_adversary_drill.dir/mobile_adversary_drill.cpp.o.d"
  "mobile_adversary_drill"
  "mobile_adversary_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_adversary_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
