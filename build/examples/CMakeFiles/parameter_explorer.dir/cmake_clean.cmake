file(REMOVE_RECURSE
  "CMakeFiles/parameter_explorer.dir/parameter_explorer.cpp.o"
  "CMakeFiles/parameter_explorer.dir/parameter_explorer.cpp.o.d"
  "parameter_explorer"
  "parameter_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
