# Empty compiler generated dependencies file for parameter_explorer.
# This may be replaced when dependencies are built.
