file(REMOVE_RECURSE
  "CMakeFiles/ablation_encryption.dir/ablation_encryption.cpp.o"
  "CMakeFiles/ablation_encryption.dir/ablation_encryption.cpp.o.d"
  "ablation_encryption"
  "ablation_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
