# Empty dependencies file for ablation_encryption.
# This may be replaced when dependencies are built.
