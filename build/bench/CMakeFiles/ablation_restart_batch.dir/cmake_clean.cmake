file(REMOVE_RECURSE
  "CMakeFiles/ablation_restart_batch.dir/ablation_restart_batch.cpp.o"
  "CMakeFiles/ablation_restart_batch.dir/ablation_restart_batch.cpp.o.d"
  "ablation_restart_batch"
  "ablation_restart_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restart_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
