# Empty compiler generated dependencies file for ablation_restart_batch.
# This may be replaced when dependencies are built.
