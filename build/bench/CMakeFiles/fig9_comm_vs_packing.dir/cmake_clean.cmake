file(REMOVE_RECURSE
  "CMakeFiles/fig9_comm_vs_packing.dir/fig9_comm_vs_packing.cpp.o"
  "CMakeFiles/fig9_comm_vs_packing.dir/fig9_comm_vs_packing.cpp.o.d"
  "fig9_comm_vs_packing"
  "fig9_comm_vs_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comm_vs_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
