# Empty compiler generated dependencies file for fig9_comm_vs_packing.
# This may be replaced when dependencies are built.
