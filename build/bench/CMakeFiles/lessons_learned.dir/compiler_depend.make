# Empty compiler generated dependencies file for lessons_learned.
# This may be replaced when dependencies are built.
