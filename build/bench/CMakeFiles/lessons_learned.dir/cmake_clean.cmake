file(REMOVE_RECURSE
  "CMakeFiles/lessons_learned.dir/lessons_learned.cpp.o"
  "CMakeFiles/lessons_learned.dir/lessons_learned.cpp.o.d"
  "lessons_learned"
  "lessons_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lessons_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
