file(REMOVE_RECURSE
  "CMakeFiles/fig10_comm_vs_threshold.dir/fig10_comm_vs_threshold.cpp.o"
  "CMakeFiles/fig10_comm_vs_threshold.dir/fig10_comm_vs_threshold.cpp.o.d"
  "fig10_comm_vs_threshold"
  "fig10_comm_vs_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_comm_vs_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
