# Empty compiler generated dependencies file for fig10_comm_vs_threshold.
# This may be replaced when dependencies are built.
