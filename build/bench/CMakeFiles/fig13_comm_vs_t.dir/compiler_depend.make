# Empty compiler generated dependencies file for fig13_comm_vs_t.
# This may be replaced when dependencies are built.
