file(REMOVE_RECURSE
  "CMakeFiles/fig13_comm_vs_t.dir/fig13_comm_vs_t.cpp.o"
  "CMakeFiles/fig13_comm_vs_t.dir/fig13_comm_vs_t.cpp.o.d"
  "fig13_comm_vs_t"
  "fig13_comm_vs_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_comm_vs_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
