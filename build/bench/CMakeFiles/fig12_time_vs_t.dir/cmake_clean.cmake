file(REMOVE_RECURSE
  "CMakeFiles/fig12_time_vs_t.dir/fig12_time_vs_t.cpp.o"
  "CMakeFiles/fig12_time_vs_t.dir/fig12_time_vs_t.cpp.o.d"
  "fig12_time_vs_t"
  "fig12_time_vs_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_time_vs_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
