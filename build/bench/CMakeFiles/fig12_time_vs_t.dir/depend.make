# Empty dependencies file for fig12_time_vs_t.
# This may be replaced when dependencies are built.
