file(REMOVE_RECURSE
  "CMakeFiles/ablation_file_size.dir/ablation_file_size.cpp.o"
  "CMakeFiles/ablation_file_size.dir/ablation_file_size.cpp.o.d"
  "ablation_file_size"
  "ablation_file_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_file_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
