# Empty dependencies file for ablation_file_size.
# This may be replaced when dependencies are built.
