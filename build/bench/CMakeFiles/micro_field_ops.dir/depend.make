# Empty dependencies file for micro_field_ops.
# This may be replaced when dependencies are built.
