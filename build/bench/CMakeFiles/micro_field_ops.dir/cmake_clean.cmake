file(REMOVE_RECURSE
  "CMakeFiles/micro_field_ops.dir/micro_field_ops.cpp.o"
  "CMakeFiles/micro_field_ops.dir/micro_field_ops.cpp.o.d"
  "micro_field_ops"
  "micro_field_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_field_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
