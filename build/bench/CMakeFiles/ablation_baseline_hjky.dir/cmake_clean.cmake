file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_hjky.dir/ablation_baseline_hjky.cpp.o"
  "CMakeFiles/ablation_baseline_hjky.dir/ablation_baseline_hjky.cpp.o.d"
  "ablation_baseline_hjky"
  "ablation_baseline_hjky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_hjky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
