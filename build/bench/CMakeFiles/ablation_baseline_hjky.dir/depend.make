# Empty dependencies file for ablation_baseline_hjky.
# This may be replaced when dependencies are built.
