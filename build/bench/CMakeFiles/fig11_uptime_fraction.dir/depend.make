# Empty dependencies file for fig11_uptime_fraction.
# This may be replaced when dependencies are built.
