file(REMOVE_RECURSE
  "CMakeFiles/fig11_uptime_fraction.dir/fig11_uptime_fraction.cpp.o"
  "CMakeFiles/fig11_uptime_fraction.dir/fig11_uptime_fraction.cpp.o.d"
  "fig11_uptime_fraction"
  "fig11_uptime_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_uptime_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
