# Empty dependencies file for fig6_cost_vs_threshold.
# This may be replaced when dependencies are built.
