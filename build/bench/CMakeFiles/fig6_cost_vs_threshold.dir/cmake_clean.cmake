file(REMOVE_RECURSE
  "CMakeFiles/fig6_cost_vs_threshold.dir/fig6_cost_vs_threshold.cpp.o"
  "CMakeFiles/fig6_cost_vs_threshold.dir/fig6_cost_vs_threshold.cpp.o.d"
  "fig6_cost_vs_threshold"
  "fig6_cost_vs_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cost_vs_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
