# Empty dependencies file for fig7_time_split_n37.
# This may be replaced when dependencies are built.
