file(REMOVE_RECURSE
  "CMakeFiles/fig7_time_split_n37.dir/fig7_time_split_n37.cpp.o"
  "CMakeFiles/fig7_time_split_n37.dir/fig7_time_split_n37.cpp.o.d"
  "fig7_time_split_n37"
  "fig7_time_split_n37.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_time_split_n37.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
