# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_time_split_n37.
