# Empty dependencies file for table1_instances.
# This may be replaced when dependencies are built.
