file(REMOVE_RECURSE
  "CMakeFiles/table1_instances.dir/table1_instances.cpp.o"
  "CMakeFiles/table1_instances.dir/table1_instances.cpp.o.d"
  "table1_instances"
  "table1_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
