file(REMOVE_RECURSE
  "CMakeFiles/ablation_field_size.dir/ablation_field_size.cpp.o"
  "CMakeFiles/ablation_field_size.dir/ablation_field_size.cpp.o.d"
  "ablation_field_size"
  "ablation_field_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_field_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
