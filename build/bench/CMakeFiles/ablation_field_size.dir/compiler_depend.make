# Empty compiler generated dependencies file for ablation_field_size.
# This may be replaced when dependencies are built.
