# Empty compiler generated dependencies file for fig8_time_vs_packing.
# This may be replaced when dependencies are built.
