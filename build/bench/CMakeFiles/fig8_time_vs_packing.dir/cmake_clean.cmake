file(REMOVE_RECURSE
  "CMakeFiles/fig8_time_vs_packing.dir/fig8_time_vs_packing.cpp.o"
  "CMakeFiles/fig8_time_vs_packing.dir/fig8_time_vs_packing.cpp.o.d"
  "fig8_time_vs_packing"
  "fig8_time_vs_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_time_vs_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
