// Transport conformance: the same behavioral contract, asserted against
// every substrate the protocol stack can run on.
//
//  * SimEndpoint/SimNet -- the deterministic testing substrate;
//  * TcpEndpoint        -- the synchronous loopback transport;
//  * AsyncTcpEndpoint   -- the supervised deployment transport.
//
// The contract the host/client/coordinator layers actually rely on:
//  1. per-link FIFO: messages between a live pair arrive in send order;
//  2. timeout semantics: a bounded receive on a silent link returns empty
//     (it never blocks forever and never fabricates a message);
//  3. reconnect-after-restart: after an endpoint crashes and a replacement
//     comes up at the same address, resent traffic eventually flows again
//     (individual in-flight messages MAY be lost -- every protocol layer
//     already tolerates loss, so the suite asserts eventual delivery under
//     resends, not lossless handoff);
//  4. backpressure: a sender outrunning a non-draining receiver stalls
//     (counted) instead of buffering unboundedly, and drains completely once
//     the receiver resumes. Only the async transport implements explicit
//     backpressure (SimNet mailboxes are unbounded by design -- determinism
//     outranks memory bounds in tests; sync TCP delegates to kernel socket
//     buffers), so fabrics advertise the capability.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "net/async_tcp.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"

namespace pisces::net {
namespace {

std::uint16_t BasePort() {
  // Offset +200 keeps clear of tcp_test.cpp and async_tcp_test.cpp ranges.
  return static_cast<std::uint16_t>(40200 + (::getpid() % 2000) * 10);
}

Message Make(std::uint32_t from, std::uint32_t to, Bytes payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = MsgType::kDeal;
  m.payload = std::move(payload);
  return m;
}

// One fabric = two endpoints (ids 1 and 2) over one substrate.
class Fabric {
 public:
  virtual ~Fabric() = default;
  virtual const char* name() const = 0;
  virtual void Send(std::uint32_t from, std::uint32_t to, Bytes payload) = 0;
  virtual std::optional<Message> Recv(std::uint32_t at, int timeout_ms) = 0;
  // Crash endpoint `at` and bring a replacement up at the same address.
  virtual void Restart(std::uint32_t at) = 0;
  virtual bool HasBackpressure() const { return false; }
};

class SimFabric : public Fabric {
 public:
  SimFabric() {
    eps_[0] = net_.AddEndpoint(1);
    eps_[1] = net_.AddEndpoint(2);
  }
  const char* name() const override { return "sim"; }
  void Send(std::uint32_t from, std::uint32_t to, Bytes payload) override {
    eps_[from - 1]->Send(Make(from, to, std::move(payload)));
  }
  std::optional<Message> Recv(std::uint32_t at, int) override {
    // Delivery is synchronous: an empty mailbox IS the timeout.
    return eps_[at - 1]->Receive();
  }
  void Restart(std::uint32_t at) override {
    // Crash semantics: mailbox purged, replacement starts clean.
    net_.SetOffline(at, true);
    net_.SetOffline(at, false);
  }

 private:
  SimNet net_;
  SimEndpoint* eps_[2];
};

class SyncTcpFabric : public Fabric {
 public:
  explicit SyncTcpFabric(std::uint16_t base) : base_(base) {
    for (std::uint32_t id : {1u, 2u}) Boot(id);
  }
  const char* name() const override { return "sync-tcp"; }
  void Send(std::uint32_t from, std::uint32_t to, Bytes payload) override {
    eps_[from - 1]->Send(Make(from, to, std::move(payload)));
  }
  std::optional<Message> Recv(std::uint32_t at, int timeout_ms) override {
    return eps_[at - 1]->ReceiveWait(timeout_ms);
  }
  void Restart(std::uint32_t at) override {
    eps_[at - 1].reset();
    Boot(at);
  }

 private:
  void Boot(std::uint32_t id) {
    eps_[id - 1] = std::make_unique<TcpEndpoint>(
        id, static_cast<std::uint16_t>(base_ + id));
    const std::uint32_t other = 3 - id;
    eps_[id - 1]->AddPeer(other, static_cast<std::uint16_t>(base_ + other));
  }
  std::uint16_t base_;
  std::unique_ptr<TcpEndpoint> eps_[2];
};

class AsyncTcpFabric : public Fabric {
 public:
  explicit AsyncTcpFabric(std::uint16_t base, std::size_t send_cap = 32u << 20,
                          std::size_t recv_cap = 64u << 20,
                          std::uint64_t stall_ms = 10'000)
      : base_(base), send_cap_(send_cap), recv_cap_(recv_cap),
        stall_ms_(stall_ms) {
    for (std::uint32_t id : {1u, 2u}) Boot(id);
  }
  const char* name() const override { return "async-tcp"; }
  void Send(std::uint32_t from, std::uint32_t to, Bytes payload) override {
    eps_[from - 1]->Send(Make(from, to, std::move(payload)));
  }
  std::optional<Message> Recv(std::uint32_t at, int timeout_ms) override {
    return eps_[at - 1]->ReceiveWait(timeout_ms);
  }
  void Restart(std::uint32_t at) override {
    eps_[at - 1].reset();
    Boot(at);
  }
  bool HasBackpressure() const override { return true; }
  AsyncTcpEndpoint& ep(std::uint32_t id) { return *eps_[id - 1]; }

 private:
  void Boot(std::uint32_t id) {
    AsyncTcpOptions o;
    o.id = id;
    o.listen_port = static_cast<std::uint16_t>(base_ + id);
    o.seed = 11 + id;
    o.heartbeat_interval_ms = 50;
    o.backoff_max_ms = 100;
    o.send_queue_cap_bytes = send_cap_;
    o.recv_queue_cap_bytes = recv_cap_;
    o.backpressure_stall_ms = stall_ms_;
    eps_[id - 1] = std::make_unique<AsyncTcpEndpoint>(o);
    const std::uint32_t other = 3 - id;
    eps_[id - 1]->AddPeer(other, static_cast<std::uint16_t>(base_ + other));
  }
  std::uint16_t base_;
  std::size_t send_cap_, recv_cap_;
  std::uint64_t stall_ms_;
  std::unique_ptr<AsyncTcpEndpoint> eps_[2];
};

// Fabric factories, so each check gets a fresh substrate on fresh ports.
using Factory = std::function<std::unique_ptr<Fabric>(std::uint16_t base)>;
std::vector<Factory> AllFabrics() {
  return {
      [](std::uint16_t) { return std::make_unique<SimFabric>(); },
      [](std::uint16_t base) { return std::make_unique<SyncTcpFabric>(base); },
      [](std::uint16_t base) { return std::make_unique<AsyncTcpFabric>(base); },
  };
}

TEST(TransportConformance, PerLinkOrdering) {
  std::uint16_t base = BasePort();
  for (const auto& make : AllFabrics()) {
    auto f = make(base);
    base = static_cast<std::uint16_t>(base + 3);
    SCOPED_TRACE(f->name());
    for (std::uint8_t i = 0; i < 30; ++i) f->Send(1, 2, Bytes{i});
    for (std::uint8_t i = 0; i < 30; ++i) {
      auto m = f->Recv(2, 3000);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->from, 1u);
      EXPECT_EQ(m->payload[0], i);
    }
    // And the reverse direction is independent.
    f->Send(2, 1, Bytes{0xEE});
    auto back = f->Recv(1, 3000);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->payload[0], 0xEE);
  }
}

TEST(TransportConformance, TimeoutOnSilentLink) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 20);
  for (const auto& make : AllFabrics()) {
    auto f = make(base);
    base = static_cast<std::uint16_t>(base + 3);
    SCOPED_TRACE(f->name());
    EXPECT_FALSE(f->Recv(1, 50).has_value());
    EXPECT_FALSE(f->Recv(2, 50).has_value());
  }
}

TEST(TransportConformance, ReconnectAfterRestart) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 40);
  for (const auto& make : AllFabrics()) {
    auto f = make(base);
    base = static_cast<std::uint16_t>(base + 3);
    SCOPED_TRACE(f->name());

    f->Send(1, 2, Bytes{1});
    ASSERT_TRUE(f->Recv(2, 3000).has_value());

    // Receiver crashes and restarts at the same address. Messages in flight
    // across the crash may be lost; resent traffic must eventually flow.
    f->Restart(2);
    bool delivered = false;
    for (int attempt = 0; attempt < 40 && !delivered; ++attempt) {
      f->Send(1, 2, Bytes{2});
      auto m = f->Recv(2, 250);
      delivered = m.has_value() && m->payload[0] == 2;
    }
    EXPECT_TRUE(delivered) << "no delivery after receiver restart";

    // Sender crashes and restarts: the replacement can reach the peer.
    f->Restart(1);
    delivered = false;
    for (int attempt = 0; attempt < 40 && !delivered; ++attempt) {
      f->Send(1, 2, Bytes{3});
      auto m = f->Recv(2, 250);
      delivered = m.has_value() && m->payload[0] == 3;
    }
    EXPECT_TRUE(delivered) << "no delivery after sender restart";
  }
}

TEST(TransportConformance, BackpressureStallsAndResumes) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 60);
  // Small user-space queues (256 KiB send, 64 KiB recv) against an 8 MiB
  // burst: with the receiver paused, kernel socket buffers hold at most a
  // few hundred KiB (autotuning only grows them for a *reading* app), so the
  // sender must hit its queue cap and stall. The 30 s stall budget is never
  // reached -- the drainer resumes long before.
  auto f = std::make_unique<AsyncTcpFabric>(base, 256 * 1024, 64 * 1024,
                                            30'000);
  ASSERT_TRUE(f->HasBackpressure());

  constexpr int kCount = 128;
  const Bytes chunk(64 * 1024, 0xCD);
  std::thread drainer([&] {
    // Let the sender hit the wall first, then drain everything.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (int i = 0; i < kCount; ++i) {
      auto m = f->Recv(2, 10'000);
      ASSERT_TRUE(m.has_value()) << "lost frame " << i << " under stall";
      EXPECT_EQ(m->payload.size(), chunk.size());
    }
  });
  for (int i = 0; i < kCount; ++i) f->Send(1, 2, chunk);  // stalls mid-burst
  drainer.join();

  EXPECT_GE(f->ep(1).backpressure_stalls(), 1u);  // it did stall...
  EXPECT_EQ(f->ep(1).frames_dropped(), 0u);       // ...but dropped nothing
}

}  // namespace
}  // namespace pisces::net
