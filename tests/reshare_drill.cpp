// Combined live-resharding campaign drill (ctest label: reshare_drill).
//
// The open-loop serving generator from serving_drill runs over the REAL wire
// path -- ServingWireClient -> SimNet -> ServingGateway -> ServingPlane --
// while the drill fires every disruptive subsystem at once:
//
//   * a Byzantine plan armed on shard 0 (an equivocating contributor whose
//     reshare deals must be rejected, the host excluded, the round retried);
//   * a mild link-fault plan (duplicates + reordering + delivery jitter) on
//     every shard's internal fabric for the whole drill;
//   * a mid-drill batched proactive refresh on top of live queued work;
//   * spot churn: a host is killed through the fault fabric, and the elastic
//     autoscaler re-provisions the slot through a DEGENERATE reshare (no
//     reconstruction) instead of recovery;
//   * a demand burst that drives one shard's admission queue over the grow
//     threshold, so the autoscaler grows the fleet through a live reshare
//     while the generator keeps offering load.
//
// Every migration bumps the routing epoch, so in-flight wire clients are
// refused with kBadRoute + the new map and must re-route within their
// bounded retry budget. Asserts, on top of serving_drill's no-loss /
// bounded-shed contract:
//
//   zero lost or duplicated files across all migrations (reference model);
//   bit-identical downloads before and after each migration;
//   zero full-file reconstructions spent on any migration (obs deltas of
//     net.bytes_sent.kReconstructRequest / kMaskedShare are exactly 0
//     across each autoscaler sweep);
//   every kBadRoute absorbed by a bounded re-route (no exhausted budgets),
//     with at least one re-route actually exercised;
//   route epoch == 1 + completed migrations, and the plane's reshard
//     counter agrees.
//
// Replay: seed-deterministic; run tests/reshare_drill --seed S --verbose.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/net_obs.h"
#include "net/sim_transport.h"
#include "net/sync_network.h"
#include "obs/registry.h"
#include "pisces/autoscaler.h"
#include "pisces/byzantine.h"
#include "pisces/pisces.h"
#include "pisces/serving_client.h"

namespace pisces {
namespace {

using net::ServingOp;
using net::ServingStatus;

struct DrillOptions {
  std::uint64_t seed = 2027;
  std::size_t ticks = 80;
  std::size_t ops_per_tick = 6;  // offered load; service rate is 4/tick
  bool verbose = false;
};

#define DRILL_CHECK(cond, ...)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);    \
      std::printf("  " __VA_ARGS__);                                 \
      std::printf("\n");                                             \
      return false;                                                  \
    }                                                                \
  } while (0)

// One request the wire client has in flight, as the reference model sees it.
struct Expected {
  ServingOp op = ServingOp::kPing;
  std::uint64_t file_id = 0;
};

// Recovery traffic a redistribution-based migration must never spend.
// kMaskedShare exists ONLY on the reboot-recovery path, so its delta is
// assertable even while queued downloads execute; kReconstructRequest is
// also the ordinary client read path, so it can only be asserted zero
// across a window with no download traffic in it.
std::uint64_t MaskedDelta(const obs::Snapshot& before) {
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  return obs::Value(delta, std::string("net.bytes_sent.") +
                               net::MsgTypeName(net::MsgType::kMaskedShare));
}

std::uint64_t ReconDelta(const obs::Snapshot& before) {
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  return obs::Value(delta, std::string("net.bytes_sent.") +
                               net::MsgTypeName(
                                   net::MsgType::kReconstructRequest)) +
         MaskedDelta(before);
}

bool RunDrill(const DrillOptions& opt) {
  ServingConfig cfg;
  cfg.shards = 2;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;  // l >= 2: reshare contributions are fully verifiable
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = opt.seed;
  cfg.admission_capacity = 16;
  cfg.max_inflight = 2;
  cfg.retry_after_ms = 5;
  ServingPlane plane(cfg);
  Rng rng(opt.seed ^ 0xD411);

  // Byzantine plan on shard 0: host 2 equivocates on every deal it makes,
  // including its reshare contributions. t = 1 absorbs it everywhere.
  {
    ByzantinePlan plan;
    plan.seed = opt.seed ^ 0xB12;
    plan.hosts[2] = ByzantineStrategy::kEquivocate;
    plane.shard(0).ArmByzantine(plan);
  }
  // Mild fabric faults on every shard's internal links for the whole drill.
  for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
    net::FaultPlan fp;
    fp.seed = opt.seed ^ (0xFA57 + s);
    fp.all_links.dup_prob = 0.02;
    fp.all_links.reorder_prob = 0.005;
    fp.all_links.delay_jitter = 1;
    plane.shard(s).net().SetFaultPlan(fp);
  }

  // The serving wire: gateway and client on their own fault-free SimNet (the
  // re-route protocol under test is the deterministic part).
  net::SimNet wire;
  net::SimEndpoint* gw_ep = wire.AddEndpoint(net::kGatewayId);
  WireClientConfig ccfg;  // reroute_budget = 3
  net::SimEndpoint* cl_ep = wire.AddEndpoint(ccfg.id);
  ServingGateway gateway(plane, *gw_ep);
  ServingWireClient client(ccfg, *cl_ep);
  net::SyncNetwork sync(wire);
  sync.Register(net::kGatewayId, gw_ep, &gateway);
  sync.Register(ccfg.id, cl_ep, &client);
  client.AdoptMap(plane.routing_map());  // initial provisioning

  const std::uint64_t session = client.OpenSession();

  // Reference model. `content` keeps every byte ever uploaded; `live` holds
  // ids whose upload was CONFIRMED (kOk response) and whose delete has not
  // been sent; `expect` tracks one entry per in-flight wire request.
  std::map<std::uint64_t, Bytes> content;
  std::set<std::uint64_t> live;
  std::map<std::uint64_t, Expected> expect;  // ordinal -> request
  std::uint64_t next_file = 1;
  std::uint64_t offered = 0, rejected_seen = 0, not_found_seen = 0;

  auto send_upload = [&]() {
    const std::uint64_t id = next_file++;
    content[id] = rng.RandomBytes(256 + rng.Below(1024));
    const std::uint64_t ord =
        client.Send(session, ServingOp::kUpload, id, content[id]);
    expect[ord] = {ServingOp::kUpload, id};
    ++offered;
  };
  auto send_download = [&](std::uint64_t id) {
    const std::uint64_t ord = client.Send(session, ServingOp::kDownload, id);
    expect[ord] = {ServingOp::kDownload, id};
    ++offered;
  };
  auto pick_live = [&]() -> std::uint64_t {
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.Below(live.size())));
    return *it;
  };

  // Absorb every terminal response against the reference model.
  auto absorb = [&]() -> bool {
    for (const net::ServingResponseFrame& r : client.TakeResponses()) {
      auto it = expect.find(r.request);
      DRILL_CHECK(it != expect.end(), "response for unknown ordinal %llu",
                  static_cast<unsigned long long>(r.request));
      const Expected ex = it->second;
      expect.erase(it);
      // A kBadRoute must never reach the model: the client's bounded
      // re-route absorbs every one (budget 3 vs at most one bump in flight).
      DRILL_CHECK(r.status != ServingStatus::kBadRoute,
                  "kBadRoute escaped the re-route loop (file %llu)",
                  static_cast<unsigned long long>(ex.file_id));
      if (r.status == ServingStatus::kRejected) {
        ++rejected_seen;
        // Rejected upload: the id never became live. Rejected delete: the
        // file is still alive after all.
        if (ex.op == ServingOp::kUpload) content.erase(ex.file_id);
        if (ex.op == ServingOp::kDelete) live.insert(ex.file_id);
        continue;
      }
      DRILL_CHECK(r.status == ServingStatus::kOk,
                  "request %llu (file %llu) failed: %s",
                  static_cast<unsigned long long>(r.request),
                  static_cast<unsigned long long>(ex.file_id),
                  pisces::StatusName(r.status));
      switch (ex.op) {
        case ServingOp::kUpload:
          live.insert(ex.file_id);
          break;
        case ServingOp::kDownload:
          DRILL_CHECK(r.payload == content.at(ex.file_id),
                      "download of file %llu not bit-exact",
                      static_cast<unsigned long long>(ex.file_id));
          break;
        case ServingOp::kDelete:
          break;  // already removed from `live` at send time
        default:
          break;
      }
    }
    return true;
  };

  auto pump = [&]() -> bool {
    sync.RunToQuiescence();
    gateway.Pump();
    sync.RunToQuiescence();
    return absorb();
  };

  // Preload a namespace so downloads have targets from tick zero.
  for (int k = 0; k < 10; ++k) send_upload();
  if (!pump()) return false;
  while (plane.TotalQueued() > 0) {
    if (!pump()) return false;
  }
  DRILL_CHECK(live.size() == 10, "preload uploads did not all land");

  // Elastic policy: grow at 75% queue pressure, re-provision dead slots
  // first, never exceed 16 slots.
  AutoscalerConfig acfg;
  acfg.grow_pressure = 0.75;
  acfg.shrink_pressure = 0.0;  // no shrinks mid-drill (0 disables: never <)
  acfg.grow_step = 4;
  acfg.min_n = 4;
  acfg.max_n = 16;
  acfg.cooldown_ticks = 2;
  ElasticAutoscaler scaler(acfg);

  std::uint64_t reprovisions = 0, grows = 0;
  bool refreshed = false;
  const std::uint32_t churn_victim = 4;  // shard 1, killed at ticks/2

  for (std::size_t tick = 0; tick < opt.ticks; ++tick) {
    // Open loop: ops_per_tick arrivals regardless of backlog.
    for (std::size_t k = 0; k < opt.ops_per_tick; ++k) {
      const std::uint64_t dice = rng.Below(100);
      if (dice < 15 || live.empty()) {
        send_upload();
      } else if (dice < 90) {
        send_download(pick_live());
      } else {
        const std::uint64_t id = pick_live();
        const std::uint64_t ord = client.Send(session, ServingOp::kDelete, id);
        expect[ord] = {ServingOp::kDelete, id};
        live.erase(id);  // nothing sent later may observe it alive
        ++offered;
      }
    }
    if (!pump()) return false;
    for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
      DRILL_CHECK(plane.QueueDepth(s) <= cfg.admission_capacity,
                  "shard %u queue exceeded capacity", s);
    }

    // Mid-drill proactive refresh on top of live queued work.
    if (!refreshed && tick == opt.ticks / 4) {
      DRILL_CHECK(plane.BatchRefresh(), "mid-drill batched refresh failed");
      refreshed = true;
    }

    // Spot churn: kill one slot (process gone, link dark) through the fault
    // fabric, then let the autoscaler re-provision it through a DEGENERATE
    // reshare -- redistribution-as-recovery, zero reconstruction traffic.
    if (tick == opt.ticks / 2) {
      // Drain first so the sweep's obs window holds ONLY migration traffic:
      // with empty queues the strict no-reconstruction delta (reconstruct
      // requests AND masked shares) is assertable.
      for (int guard = 0; plane.TotalQueued() > 0; ++guard) {
        DRILL_CHECK(guard < 1000, "pre-churn drain wedged");
        if (!pump()) return false;
      }
      plane.shard(1).host(churn_victim).Shutdown();
      plane.shard(1).net().SetOffline(churn_victim, true);
      const obs::Snapshot before = obs::TakeSnapshot();
      const AutoscaleReport rep = RunAutoscaler(plane, scaler, tick);
      DRILL_CHECK(rep.reprovisions == 1, "churned slot was not re-provisioned");
      DRILL_CHECK(rep.denied == 0, "autoscaler sweep denied under churn");
      DRILL_CHECK(ReconDelta(before) == 0,
                  "re-provisioning spent reconstruction traffic");
      DRILL_CHECK(plane.shard(1).host(churn_victim).online() &&
                      !plane.shard(1).net().IsOffline(churn_victim),
                  "churned slot still dark after the sweep");
      reprovisions += rep.reprovisions;
      grows += rep.grows;
      if (opt.verbose) {
        std::printf("tick %3zu: churn -> reprovision (epoch %llu)\n", tick,
                    static_cast<unsigned long long>(plane.route_epoch()));
      }
    }

    // Demand burst: drive one shard's queue over the grow threshold and let
    // the autoscaler grow it through a live reshare.
    if (tick == 3 * opt.ticks / 4) {
      DRILL_CHECK(!live.empty(), "no live file to burst against");
      const std::uint64_t burst_file = *live.begin();
      const std::uint32_t home = plane.ShardOf(burst_file);
      for (int k = 0; k < 14; ++k) send_download(burst_file);
      sync.RunToQuiescence();  // deliver the burst (no Pump: keep it queued)
      if (!absorb()) return false;  // admission rejects answer synchronously
      DRILL_CHECK(plane.QueueDepth(home) >
                      cfg.admission_capacity * 3 / 4,
                  "burst did not build grow pressure on shard %u", home);
      const std::size_t n_before = plane.shard_params(home).n;
      const obs::Snapshot before = obs::TakeSnapshot();
      const AutoscaleReport rep = RunAutoscaler(plane, scaler, tick);
      DRILL_CHECK(rep.grows >= 1, "pressured shard was not grown");
      // The queue is deliberately full here, so the drain inside Reshard
      // legitimately sends reconstruct-request reads; only the
      // recovery-exclusive masked-share counter must stay at zero.
      DRILL_CHECK(MaskedDelta(before) == 0,
                  "grow migration spent recovery traffic");
      DRILL_CHECK(plane.shard_params(home).n > n_before,
                  "grown shard kept its old fleet size");
      reprovisions += rep.reprovisions;
      grows += rep.grows;
      if (!pump()) return false;  // flush the burst completions
      if (opt.verbose) {
        std::printf("tick %3zu: burst -> grow shard %u to n=%zu (epoch %llu)\n",
                    tick, home, plane.shard_params(home).n,
                    static_cast<unsigned long long>(plane.route_epoch()));
      }
    }

    if (opt.verbose && tick % 20 == 0) {
      std::printf("tick %3zu: offered=%llu live=%zu queued=%zu reroutes=%llu\n",
                  tick, static_cast<unsigned long long>(offered), live.size(),
                  plane.TotalQueued(),
                  static_cast<unsigned long long>(client.reroutes()));
    }
  }

  // Drain everything still queued or in flight.
  for (int guard = 0; plane.TotalQueued() > 0 || !expect.empty(); ++guard) {
    DRILL_CHECK(guard < 1000, "drill failed to drain");
    if (!pump()) return false;
  }
  DRILL_CHECK(client.pending() == 0, "wire client left requests pending");

  const ServingStats& st = plane.stats();
  const std::uint64_t migrations = reprovisions + grows;

  // --- accounting: nothing lost, nothing invented -------------------------
  DRILL_CHECK(st.failed == 0, "accepted requests failed in execution");
  DRILL_CHECK(st.completed == st.accepted,
              "accepted=%llu completed=%llu: requests lost or duplicated",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.completed));

  // --- migrations really happened, and were routed ------------------------
  DRILL_CHECK(reprovisions >= 1 && grows >= 1,
              "drill did not exercise both migration kinds");
  DRILL_CHECK(st.reshards == migrations,
              "plane reshard counter (%llu) != observed migrations (%llu)",
              static_cast<unsigned long long>(st.reshards),
              static_cast<unsigned long long>(migrations));
  DRILL_CHECK(plane.route_epoch() == 1 + migrations,
              "route epoch %llu after %llu migrations",
              static_cast<unsigned long long>(plane.route_epoch()),
              static_cast<unsigned long long>(migrations));

  // --- bounded kBadRoute retries ------------------------------------------
  DRILL_CHECK(client.reroutes() >= 1,
              "no stale-epoch traffic ever re-routed (drill too gentle)");
  DRILL_CHECK(client.reroutes_exhausted() == 0,
              "a request exhausted its re-route budget");
  DRILL_CHECK(st.stale_epoch == client.reroutes(),
              "stale-epoch refusals (%llu) != client re-routes (%llu)",
              static_cast<unsigned long long>(st.stale_epoch),
              static_cast<unsigned long long>(client.reroutes()));
  DRILL_CHECK(client.reroutes() <= migrations * (opt.ops_per_tick + 16),
              "re-route volume out of proportion to migrations");

  // --- shed happened under overload, but bounded --------------------------
  DRILL_CHECK(rejected_seen > 0,
              "open-loop overload never tripped admission control");
  DRILL_CHECK(st.queue_peak <= cfg.admission_capacity,
              "queue peak exceeded capacity");

  // --- zero lost / duplicated files, bit-exact after every migration ------
  DRILL_CHECK(plane.files().size() == live.size(),
              "plane namespace (%zu) disagrees with the reference (%zu)",
              plane.files().size(), live.size());
  const std::uint64_t check_session = plane.OpenSession();
  for (const std::uint64_t id : live) {
    auto adm = plane.Submit(check_session, ServingOp::kDownload, id);
    DRILL_CHECK(adm.status == ServingStatus::kOk,
                "post-drill download of live file %llu refused",
                static_cast<unsigned long long>(id));
    plane.Drain();
    auto done = plane.TakeCompletions();
    DRILL_CHECK(done.size() == 1 && done[0].status == ServingStatus::kOk &&
                    done[0].payload == content.at(id),
                "post-drill download of file %llu not bit-exact",
                static_cast<unsigned long long>(id));
    const std::uint32_t home = plane.ShardOf(id);
    for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
      const std::uint32_t n =
          static_cast<std::uint32_t>(plane.shard_params(s).n);
      for (std::uint32_t h = 0; h < n; ++h) {
        DRILL_CHECK(plane.shard(s).host(h).store().Has(id) == (s == home),
                    "file %llu misplaced: shard %u host %u",
                    static_cast<unsigned long long>(id), s, h);
      }
    }
  }

  DRILL_CHECK(refreshed && st.refresh_batches > 0,
              "mid-drill refresh did not launch");

  // The armed equivocator must have been caught somewhere: either its
  // reshare contributions were rejected by the verifier, or the batched
  // refresh attributed it dealer-side first (and the reshare then simply
  // never picked an excluded host).
  const obs::Snapshot snap = obs::TakeSnapshot();
  DRILL_CHECK(obs::Value(snap, "reshare.contributions_rejected") >= 1 ||
                  obs::Value(snap, "byz.dealers_attributed") >= 1,
              "armed equivocator was never detected");
  std::printf(
      "reshare_drill: seed=%llu offered=%llu accepted=%llu completed=%llu "
      "rejected=%llu migrations=%llu (grow=%llu reprovision=%llu) "
      "epoch=%llu reroutes=%llu reshare_files=%llu rejected_contribs=%llu "
      "live_files=%zu\n",
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(st.accepted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(rejected_seen),
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(grows),
      static_cast<unsigned long long>(reprovisions),
      static_cast<unsigned long long>(plane.route_epoch()),
      static_cast<unsigned long long>(client.reroutes()),
      static_cast<unsigned long long>(obs::Value(snap, "reshare.files")),
      static_cast<unsigned long long>(
          obs::Value(snap, "reshare.contributions_rejected")),
      live.size());
  (void)not_found_seen;
  return true;
}

int Main(int argc, char** argv) {
  DrillOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ticks") == 0) {
      opt.ticks = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops-per-tick") == 0) {
      opt.ops_per_tick = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!RunDrill(opt)) {
    std::printf("REPLAY: tests/reshare_drill --seed %llu --verbose\n",
                static_cast<unsigned long long>(opt.seed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
