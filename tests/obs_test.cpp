// Telemetry registry + protocol tracing tests: snapshot/delta semantics,
// trace JSON validity, span nesting, CSV reconciliation, and the
// disabled-tracing zero-cost contract.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/task_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "pisces/pisces.h"
#include "trace_util.h"

namespace pisces {
namespace {

// Tracing is process-global; every test that enables it must leave it off
// and empty so unrelated tests (and the disabled-cost test below) see the
// default state.
struct TraceGuard {
  TraceGuard() {
    obs::DisableTracing();
    obs::ResetTrace();
  }
  ~TraceGuard() {
    obs::DisableTracing();
    obs::ResetTrace();
  }
};

ClusterConfig SmallConfig(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = seed;
  return cfg;
}

// --- registry -------------------------------------------------------------

TEST(Registry, RegistrationIsIdempotentByName) {
  obs::Counter& a = obs::RegisterCounter("test.idem", "test counter");
  obs::Counter& b = obs::RegisterCounter("test.idem", "test counter");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindMismatchThrows) {
  obs::RegisterCounter("test.kind", "a counter");
  EXPECT_THROW(obs::RegisterGauge("test.kind", "now a gauge"), InvalidArgument);
}

TEST(Registry, SnapshotDeltaAttributesCounterActivity) {
  obs::Counter& c = obs::RegisterCounter("test.delta", "test counter");
  c.Add(5);
  const obs::Snapshot before = obs::TakeSnapshot();
  c.Add(3);
  c.Add();
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_EQ(obs::Value(delta, "test.delta"), 4u);
  EXPECT_EQ(obs::Value(delta, "test.absent"), 0u);
}

TEST(Registry, GaugeDeltaReportsLatestValue) {
  obs::Gauge& g = obs::RegisterGauge("test.gauge", "test gauge");
  g.Set(7);
  const obs::Snapshot before = obs::TakeSnapshot();
  g.Set(9);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_EQ(obs::Value(delta, "test.gauge"), 9u);
}

TEST(Registry, SubstrateCountersAreRegistered) {
  std::set<std::string> names;
  for (const auto& [name, help] : obs::ListMetrics()) names.insert(name);
  EXPECT_TRUE(names.count("field.dot_calls"));
  EXPECT_TRUE(names.count("field.dot_products"));
  EXPECT_TRUE(names.count("field.dot_reductions"));
  EXPECT_TRUE(names.count("math.wc_hits"));
  EXPECT_TRUE(names.count("math.wc_misses"));
}

// --- tracing --------------------------------------------------------------

TEST(Trace, DisabledTracingRecordsNothingAndAllocatesNothing) {
  TraceGuard guard;
  ASSERT_FALSE(obs::TraceEnabled());
  ASSERT_EQ(obs::TraceHeapBytes(), 0u);
  Cluster cluster(SmallConfig(17));
  Rng rng(23);
  cluster.Upload(1, rng.RandomBytes(900));
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  EXPECT_EQ(obs::TraceHeapBytes(), 0u);
}

TEST(Trace, JsonParsesAndSpansNest) {
  TraceGuard guard;
  Cluster cluster(SmallConfig(19));
  Rng rng(29);
  cluster.Upload(1, rng.RandomBytes(900));
  obs::EnableTracing("");  // collect in memory
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  obs::DisableTracing();

  const std::string json = obs::TraceToJson();
  EXPECT_TRUE(test::JsonChecker(json).Valid());

  const std::vector<test::TraceEv> evs = test::ParseTraceEvents(json);
  ASSERT_FALSE(evs.empty());

  // Every recorded parent id resolves to a recorded span.
  std::map<std::uint64_t, const test::TraceEv*> by_id;
  for (const auto& e : evs) {
    if (e.ph == 'X' && e.id != 0) by_id[e.id] = &e;
  }
  std::size_t net_events = 0;
  for (const auto& e : evs) {
    if (e.ph == 'i') {
      ++net_events;
      EXPECT_GT(e.bytes, 0u);
    }
    if (e.parent != 0) {
      EXPECT_TRUE(by_id.count(e.parent))
          << e.name << " has unknown parent 0x" << std::hex << e.parent;
    }
  }
  EXPECT_GT(net_events, 0u);

  // The protocol hierarchy is represented: a refresh.deal span chains up
  // through refresh.session to the window root.
  bool found_chain = false;
  for (const auto& e : evs) {
    if (e.name != "refresh.deal") continue;
    std::set<std::string> ancestors;
    std::uint64_t p = e.parent;
    // Bounded walk: a cycle would indicate corrupted parent links.
    for (int hops = 0; hops < 16 && p != 0; ++hops) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      ancestors.insert(it->second->name);
      p = it->second->parent;
    }
    if (ancestors.count("refresh.session") && ancestors.count("window")) {
      found_chain = true;
      break;
    }
  }
  EXPECT_TRUE(found_chain);

  // Pool chunk spans parent under protocol spans, never float free.
  for (const auto& e : evs) {
    if (e.cat == "pool") EXPECT_NE(e.parent, 0u) << "orphan pool chunk";
  }
}

TEST(Trace, PhaseDurationsReconcileExactlyWithMetrics) {
  TraceGuard guard;
  Cluster cluster(SmallConfig(21));
  Rng rng(31);
  cluster.Upload(1, rng.RandomBytes(900));
  cluster.ResetMetrics();
  obs::EnableTracing("");
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  obs::DisableTracing();

  // ComputeSection stamps its own measured wall/cpu into the span event, so
  // the per-phase sums must equal the PhaseMetrics totals to the nanosecond
  // -- the property that makes the trace reconcile with the CSV columns.
  std::uint64_t rerand_wall = 0, rerand_cpu = 0;
  std::uint64_t recover_wall = 0, recover_cpu = 0;
  for (const auto& e : test::ParseTraceEvents(obs::TraceToJson())) {
    if (e.phase == "rerand") {
      rerand_wall += e.wall_ns;
      rerand_cpu += e.cpu_ns;
    } else if (e.phase == "recover") {
      recover_wall += e.wall_ns;
      recover_cpu += e.cpu_ns;
    }
  }
  const HostMetrics m = cluster.TotalMetrics();
  EXPECT_EQ(rerand_wall, m.rerandomize.wall_ns);
  EXPECT_EQ(rerand_cpu, m.rerandomize.cpu_ns);
  EXPECT_EQ(recover_wall, m.recover.wall_ns);
  EXPECT_EQ(recover_cpu, m.recover.cpu_ns);
  EXPECT_GT(rerand_cpu, 0u);
  EXPECT_GT(recover_cpu, 0u);
}

TEST(Trace, MetricsAreIdenticalWithTracingOnAndOff) {
  // Tracing must observe, never perturb: exact counters (bytes, messages)
  // match between a traced and an untraced run of the same seeded window.
  TraceGuard guard;
  auto run = [](bool traced) {
    if (traced) {
      obs::EnableTracing("");
    } else {
      obs::DisableTracing();
    }
    Cluster cluster(SmallConfig(23));
    Rng rng(37);
    Bytes file = rng.RandomBytes(900);
    cluster.Upload(1, file);
    cluster.ResetMetrics();
    WindowReport report = cluster.RunUpdateWindow();
    HostMetrics m = cluster.TotalMetrics();
    obs::DisableTracing();
    obs::ResetTrace();
    return std::tuple{report.ok, m.rerandomize.bytes_sent,
                      m.rerandomize.msgs_sent, m.recover.bytes_sent,
                      m.recover.msgs_sent, cluster.Download(pisces::ReadSpec::Classic(1))};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Trace, FlameSummaryCoversRecordedWindows) {
  TraceGuard guard;
  Cluster cluster(SmallConfig(27));
  Rng rng(41);
  cluster.Upload(1, rng.RandomBytes(900));
  obs::EnableTracing("");
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  obs::DisableTracing();
  const std::string flame = obs::FlameSummary();
  EXPECT_NE(flame.find("window"), std::string::npos);
  EXPECT_NE(flame.find("refresh.deal"), std::string::npos);
  EXPECT_NE(flame.find("net.send"), std::string::npos);
}

}  // namespace
}  // namespace pisces
