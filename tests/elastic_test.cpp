// Elastic-fleet autoscaler tests (docs/resharding.md): the policy layer that
// turns admission-queue pressure, dead slots, and the EC2 cost model into
// grow/shrink/re-provision decisions, applied through live resharding. The
// combined serving + churn + autoscaler drill lives in reshare_drill.cpp
// (ctest -L reshare_drill).
#include <gtest/gtest.h>

#include <map>

#include "net/net_obs.h"
#include "obs/registry.h"
#include "pisces/autoscaler.h"
#include "pisces/pisces.h"

namespace pisces {
namespace {

using net::ServingOp;
using net::ServingStatus;

// Same shape as the serving suite: n = 8, t = 1, l = 2, r = 2, 256-bit.
pss::Params BaseParams() {
  pss::Params p;
  p.n = 8;
  p.t = 1;
  p.l = 2;
  p.r = 2;
  p.field_bits = 256;
  return p;
}

ServingConfig OneShardConfig(std::uint64_t seed) {
  ServingConfig cfg;
  cfg.shards = 1;
  cfg.params = BaseParams();
  cfg.seed = seed;
  return cfg;
}

TEST(Elastic, ScaledParamsMaximisesToleranceWithinPackedConstraints) {
  const pss::Params base = BaseParams();

  // At each fleet size the policy picks the LARGEST t with 3t + l < n and
  // r + l <= n - 3t (most corruption tolerance the packed constraints allow).
  const pss::Params at12 = ElasticAutoscaler::ScaledParams(base, 12);
  EXPECT_EQ(at12.n, 12u);
  EXPECT_EQ(at12.t, 2u);  // t = 3 would leave r + l = 4 > 12 - 9
  EXPECT_EQ(at12.l, base.l);
  EXPECT_EQ(at12.r, base.r);
  EXPECT_TRUE(at12.IsValid());

  const pss::Params at16 = ElasticAutoscaler::ScaledParams(base, 16);
  EXPECT_EQ(at16.t, 4u);  // r + l = 4 sits exactly at n - 3t = 4
  EXPECT_TRUE(at16.IsValid());

  // No valid threshold at n = 4 for l = 2, r = 2: the policy refuses rather
  // than emit an invalid group.
  EXPECT_THROW(ElasticAutoscaler::ScaledParams(base, 4), Error);
}

TEST(Elastic, DecideHealthOutranksPressureAndHonoursCooldownAndBudget) {
  AutoscalerConfig acfg;
  acfg.grow_pressure = 0.75;
  acfg.shrink_pressure = 0.10;
  acfg.grow_step = 4;
  acfg.min_n = 8;
  acfg.max_n = 16;
  acfg.cooldown_ticks = 2;
  ElasticAutoscaler scaler(acfg);

  ShardSignal sig;
  sig.shard = 0;
  sig.params = BaseParams();
  sig.capacity = 64;

  // Dead slots outrank any demand signal: a full queue still yields a
  // re-provision (degenerate reshare, same shape) rather than a grow.
  sig.queue_depth = 64;
  sig.dead_hosts = 2;
  ScaleDecision d = scaler.Decide(sig, 10);
  EXPECT_EQ(d.action, ScaleAction::kReprovision);
  EXPECT_EQ(d.target.n, sig.params.n);
  EXPECT_EQ(d.target.t, sig.params.t);

  // Pressure above the grow threshold: grow by grow_step with the scaled
  // threshold, at a positive spot-cost delta.
  sig.dead_hosts = 0;
  sig.queue_depth = 60;  // 0.9375
  d = scaler.Decide(sig, 10);
  EXPECT_EQ(d.action, ScaleAction::kGrow);
  EXPECT_EQ(d.target.n, 12u);
  EXPECT_EQ(d.target.t, 2u);
  EXPECT_GT(d.dollars_per_hour_delta, 0.0);

  // Pressure below the shrink threshold at n = 12: shrink back to min_n.
  sig.params = ElasticAutoscaler::ScaledParams(BaseParams(), 12);
  sig.queue_depth = 2;  // 0.03
  d = scaler.Decide(sig, 10);
  EXPECT_EQ(d.action, ScaleAction::kShrink);
  EXPECT_EQ(d.target.n, 8u);
  EXPECT_LT(d.dollars_per_hour_delta, 0.0);

  // In-band pressure holds; so does full pressure at max_n (nowhere to go)
  // and idle pressure at min_n.
  sig.queue_depth = 30;
  EXPECT_EQ(scaler.Decide(sig, 10).action, ScaleAction::kHold);
  sig.params = ElasticAutoscaler::ScaledParams(BaseParams(), 16);
  sig.queue_depth = 64;
  EXPECT_EQ(scaler.Decide(sig, 10).action, ScaleAction::kHold);
  sig.params = BaseParams();  // n == min_n
  sig.queue_depth = 0;
  EXPECT_EQ(scaler.Decide(sig, 10).action, ScaleAction::kHold);

  // Cooldown: after an applied action the shard holds until cooldown_ticks
  // have elapsed, even under grow pressure -- and even with dead slots.
  scaler.NoteApplied(0, 20);
  sig.queue_depth = 60;
  sig.dead_hosts = 1;
  EXPECT_EQ(scaler.Decide(sig, 21).action, ScaleAction::kHold);
  EXPECT_EQ(scaler.Decide(sig, 21).reason, "cooldown");
  EXPECT_EQ(scaler.Decide(sig, 22).action, ScaleAction::kReprovision);

  // Budget: a grow whose hourly cost exceeds the budget is denied (held and
  // counted), not scaled down silently.
  AutoscalerConfig tight = acfg;
  tight.budget_per_hour = 0.0001;
  ElasticAutoscaler broke(tight);
  sig.dead_hosts = 0;
  const obs::Snapshot snap = obs::TakeSnapshot();
  d = broke.Decide(sig, 30);
  EXPECT_EQ(d.action, ScaleAction::kHold);
  EXPECT_NE(d.reason.find("denied"), std::string::npos) << d.reason;
  const obs::Snapshot delta = obs::Delta(snap, obs::TakeSnapshot());
  EXPECT_EQ(obs::Value(delta, "elastic.denied"), 1u);
}

TEST(Elastic, RunAutoscalerGrowsAShardUnderQueuePressure) {
  ServingConfig cfg = OneShardConfig(51);
  cfg.admission_capacity = 8;
  ServingPlane plane(cfg);
  const std::uint64_t session = plane.OpenSession();
  Rng rng(52);
  const Bytes data = rng.RandomBytes(700);
  ASSERT_EQ(plane.Submit(session, ServingOp::kUpload, 1, data).status,
            ServingStatus::kOk);
  plane.Drain();
  plane.TakeCompletions();

  // Seven queued downloads against a capacity-8 queue: pressure 0.875.
  for (int k = 0; k < 7; ++k) {
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, 1).status,
              ServingStatus::kOk);
  }

  AutoscalerConfig acfg;
  acfg.min_n = 4;
  acfg.max_n = 16;
  acfg.grow_step = 4;
  acfg.cooldown_ticks = 1;
  ElasticAutoscaler scaler(acfg);

  const AutoscaleReport rep = RunAutoscaler(plane, scaler, /*tick=*/1);
  EXPECT_EQ(rep.grows, 1u);
  EXPECT_EQ(rep.holds, 0u);
  EXPECT_EQ(rep.denied, 0u);
  EXPECT_EQ(plane.shard_params(0).n, 12u);
  EXPECT_EQ(plane.shard_params(0).t, 2u);
  EXPECT_EQ(plane.route_epoch(), 2u);
  EXPECT_EQ(plane.stats().reshards, 1u);

  // The migration drained the pressured queue first: all seven downloads
  // completed, bit-exactly, and the grown fleet keeps serving.
  auto done = plane.TakeCompletions();
  ASSERT_EQ(done.size(), 7u);
  for (const auto& c : done) {
    EXPECT_EQ(c.status, ServingStatus::kOk);
    EXPECT_EQ(c.payload, data);
  }
  ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, 1).status,
            ServingStatus::kOk);
  plane.Drain();
  done = plane.TakeCompletions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].payload, data);
}

TEST(Elastic, RunAutoscalerReprovisionsDeadSlotsWithoutReconstruction) {
  ServingPlane plane(OneShardConfig(53));
  const std::uint64_t session = plane.OpenSession();
  Rng rng(54);
  std::map<std::uint64_t, Bytes> reference;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    reference[id] = rng.RandomBytes(400 + 11 * id);
    ASSERT_EQ(plane.Submit(session, ServingOp::kUpload, id,
                           reference[id]).status,
              ServingStatus::kOk);
  }
  plane.Drain();
  plane.TakeCompletions();

  // Spot churn: two slots die (process gone AND link dark). t = 1 holders
  // still leave d + 1 = 4 live contributors, so redistribution can refill
  // the slots without any reconstruction.
  Cluster& cluster = plane.shard(0);
  for (std::uint32_t id : {2u, 5u}) {
    cluster.host(id).Shutdown();
    cluster.net().SetOffline(id, true);
  }

  AutoscalerConfig acfg;
  acfg.min_n = 4;
  acfg.max_n = 16;
  acfg.cooldown_ticks = 2;
  ElasticAutoscaler scaler(acfg);

  const obs::Snapshot snap = obs::TakeSnapshot();
  const AutoscaleReport rep = RunAutoscaler(plane, scaler, /*tick=*/7);
  const obs::Snapshot delta = obs::Delta(snap, obs::TakeSnapshot());

  EXPECT_EQ(rep.reprovisions, 1u);
  EXPECT_EQ(plane.shard_params(0).n, 8u);  // degenerate: same shape
  EXPECT_EQ(plane.route_epoch(), 2u);      // still a routed migration

  // Redistribution-as-recovery: the dead slots are live again and NO
  // reconstruction traffic was spent reviving them.
  for (std::uint32_t id : {2u, 5u}) {
    EXPECT_TRUE(cluster.host(id).online());
    EXPECT_FALSE(cluster.net().IsOffline(id));
  }
  EXPECT_EQ(obs::Value(delta, std::string("net.bytes_sent.") +
                                  net::MsgTypeName(
                                      net::MsgType::kReconstructRequest)),
            0u);
  EXPECT_EQ(obs::Value(delta, std::string("net.bytes_sent.") +
                                  net::MsgTypeName(net::MsgType::kMaskedShare)),
            0u);
  EXPECT_EQ(obs::Value(delta, "elastic.reprovisions"), 1u);
  EXPECT_EQ(obs::Value(delta, "reshare.migrations"), 1u);

  for (const auto& [id, data] : reference) {
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, id).status,
              ServingStatus::kOk);
    plane.Drain();
    auto done = plane.TakeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].payload, data) << "file " << id;
  }

  // Within cooldown the shard holds no matter what the signals say.
  EXPECT_EQ(RunAutoscaler(plane, scaler, /*tick=*/8).holds, 1u);

  // After cooldown an idle 8-slot fleet WANTS to shrink toward min_n = 4,
  // but n = 4 has no valid threshold for l = 2, r = 2 -- the infeasible
  // shrink is refused (held), never applied as an invalid group.
  const AutoscaleReport later = RunAutoscaler(plane, scaler, /*tick=*/9);
  EXPECT_EQ(later.shrinks, 0u);
  EXPECT_EQ(later.holds, 1u);
  EXPECT_EQ(plane.shard_params(0).n, 8u);
  EXPECT_EQ(plane.route_epoch(), 2u);
  EXPECT_TRUE(plane.shard_params(0).IsValid());
}

}  // namespace
}  // namespace pisces
