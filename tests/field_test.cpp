// Unit and property tests for the multiprecision prime-field substrate.
#include <gtest/gtest.h>

#include "field/fp.h"
#include "field/limbs.h"
#include "field/primes.h"

namespace pisces::field {
namespace {

TEST(Limbs, AddSubRoundTrip) {
  std::uint64_t a[4] = {~0ull, ~0ull, 5, 0};
  std::uint64_t b[4] = {1, 0, 0, 0};
  std::uint64_t r[4];
  std::uint64_t carry = AddN(r, a, b, 4);
  EXPECT_EQ(carry, 0u);
  EXPECT_EQ(r[0], 0u);
  EXPECT_EQ(r[1], 0u);
  EXPECT_EQ(r[2], 6u);
  std::uint64_t s[4];
  std::uint64_t borrow = SubN(s, r, b, 4);
  EXPECT_EQ(borrow, 0u);
  EXPECT_EQ(CmpN(s, a, 4), 0);
}

TEST(Limbs, AddCarryOut) {
  std::uint64_t a[2] = {~0ull, ~0ull};
  std::uint64_t b[2] = {1, 0};
  std::uint64_t r[2];
  EXPECT_EQ(AddN(r, a, b, 2), 1u);
  EXPECT_TRUE(IsZeroN(r, 2));
}

TEST(Limbs, SubBorrowOut) {
  std::uint64_t a[2] = {0, 0};
  std::uint64_t b[2] = {1, 0};
  std::uint64_t r[2];
  EXPECT_EQ(SubN(r, a, b, 2), 1u);
  EXPECT_EQ(r[0], ~0ull);
  EXPECT_EQ(r[1], ~0ull);
}

TEST(Limbs, MulSchoolbook) {
  std::uint64_t a[2] = {~0ull, 0};
  std::uint64_t b[2] = {~0ull, 0};
  std::uint64_t r[4];
  MulN(r, a, b, 2);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[1], ~0ull - 1);
  EXPECT_EQ(r[2], 0u);
  EXPECT_EQ(r[3], 0u);
}

TEST(Limbs, BitLength) {
  std::uint64_t a[4] = {0, 0, 0, 0};
  EXPECT_EQ(BitLengthN(a, 4), 0u);
  a[0] = 1;
  EXPECT_EQ(BitLengthN(a, 4), 1u);
  a[2] = 0x8000000000000000ull;
  EXPECT_EQ(BitLengthN(a, 4), 192u);
}

TEST(Limbs, MontgomeryN0Inv) {
  for (std::uint64_t m : {3ull, 0xFFFFFFFFFFFFFF43ull, 12345677ull}) {
    std::uint64_t inv = MontgomeryN0Inv(m);
    EXPECT_EQ(static_cast<std::uint64_t>(m * (~inv + 1)), 1ull) << m;
  }
}

TEST(Primes, AllStandardPrimesArePrime) {
  Rng rng(2024);
  for (std::size_t bits : kStandardFieldBits) {
    Bytes p = StandardPrimeBe(bits);
    EXPECT_EQ(p.size(), bits / 8);
    EXPECT_TRUE(MillerRabinIsPrime(p, 30, rng)) << bits;
    FpCtx ctx(p);
    EXPECT_EQ(ctx.bits(), bits);
  }
}

TEST(Primes, MillerRabinRejectsComposites) {
  Rng rng(7);
  // 2^256 - 190 is even; 2^256 - 191 has small factors with high probability;
  // test some knowns instead.
  Bytes even{0x10};  // 16
  EXPECT_FALSE(MillerRabinIsPrime(even, 10, rng));
  Bytes nine{0x09};
  EXPECT_FALSE(MillerRabinIsPrime(nine, 10, rng));
  Bytes carmichael;  // 561 = 0x231, a Carmichael number
  carmichael = {0x02, 0x31};
  EXPECT_FALSE(MillerRabinIsPrime(carmichael, 20, rng));
  Bytes small_prime{0x61};  // 97
  EXPECT_TRUE(MillerRabinIsPrime(small_prime, 20, rng));
}

TEST(Primes, UnsupportedSizeThrows) {
  EXPECT_THROW(StandardPrimeBe(128), InvalidArgument);
}

class FpCtxTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  FpCtxTest() : ctx_(StandardPrimeBe(GetParam())), rng_(GetParam()) {}
  FpCtx ctx_;
  Rng rng_;
};

TEST_P(FpCtxTest, FieldAxioms) {
  for (int iter = 0; iter < 10; ++iter) {
    FpElem a = ctx_.Random(rng_);
    FpElem b = ctx_.Random(rng_);
    FpElem c = ctx_.Random(rng_);
    // commutativity
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(a, b), ctx_.Add(b, a)));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, b), ctx_.Mul(b, a)));
    // associativity
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(ctx_.Add(a, b), c), ctx_.Add(a, ctx_.Add(b, c))));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(ctx_.Mul(a, b), c), ctx_.Mul(a, ctx_.Mul(b, c))));
    // distributivity
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, ctx_.Add(b, c)),
                        ctx_.Add(ctx_.Mul(a, b), ctx_.Mul(a, c))));
    // identities
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(a, ctx_.Zero()), a));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, ctx_.One()), a));
    // inverses
    EXPECT_TRUE(ctx_.IsZero(ctx_.Add(a, ctx_.Neg(a))));
    if (!ctx_.IsZero(b)) {
      EXPECT_TRUE(ctx_.Eq(ctx_.Mul(ctx_.Mul(a, b), ctx_.Inv(b)), a));
    }
  }
}

TEST_P(FpCtxTest, SerializationRoundTrip) {
  for (int iter = 0; iter < 10; ++iter) {
    FpElem a = ctx_.Random(rng_);
    Bytes bytes = ctx_.ToBytes(a);
    EXPECT_EQ(bytes.size(), ctx_.elem_bytes());
    EXPECT_TRUE(ctx_.Eq(ctx_.FromBytes(bytes), a));
  }
}

TEST_P(FpCtxTest, VectorSerialization) {
  std::vector<FpElem> elems;
  for (int i = 0; i < 7; ++i) elems.push_back(ctx_.Random(rng_));
  Bytes data = SerializeElems(ctx_, elems);
  EXPECT_EQ(data.size(), elems.size() * ctx_.elem_bytes());
  auto back = DeserializeElems(ctx_, data);
  ASSERT_EQ(back.size(), elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i) {
    EXPECT_TRUE(ctx_.Eq(back[i], elems[i]));
  }
}

TEST_P(FpCtxTest, PowMatchesRepeatedMul) {
  FpElem a = ctx_.RandomNonZero(rng_);
  FpElem acc = ctx_.One();
  for (std::uint64_t e = 0; e < 17; ++e) {
    EXPECT_TRUE(ctx_.Eq(ctx_.PowUint64(a, e), acc)) << e;
    acc = ctx_.Mul(acc, a);
  }
}

TEST_P(FpCtxTest, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0; PowBytes with exponent p-2 gives inverses which
  // multiply back to 1 (checked in FieldAxioms); here check a^p == a via
  // a^(p-2) * a^2 == a.
  FpElem a = ctx_.RandomNonZero(rng_);
  FpElem lhs = ctx_.Mul(ctx_.Inv(a), ctx_.Mul(a, a));
  EXPECT_TRUE(ctx_.Eq(lhs, a));
}

TEST_P(FpCtxTest, BatchInvMatchesInv) {
  std::vector<FpElem> elems;
  for (int i = 0; i < 9; ++i) elems.push_back(ctx_.RandomNonZero(rng_));
  std::vector<FpElem> expected;
  for (const auto& e : elems) expected.push_back(ctx_.Inv(e));
  ctx_.BatchInv(elems);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    EXPECT_TRUE(ctx_.Eq(elems[i], expected[i]));
  }
}

TEST_P(FpCtxTest, FromBytesRejectsModulus) {
  Bytes mod_be = ctx_.ModulusBytes();
  Bytes mod_le(mod_be.rbegin(), mod_be.rend());
  mod_le.resize(ctx_.elem_bytes(), 0);
  EXPECT_THROW(ctx_.FromBytes(mod_le), InvalidArgument);
}

TEST_P(FpCtxTest, ToUint64) {
  EXPECT_EQ(ctx_.ToUint64(ctx_.FromUint64(123456789)), 123456789u);
  FpElem big = ctx_.Neg(ctx_.One());  // p - 1 never fits in 64 bits
  EXPECT_THROW(ctx_.ToUint64(big), InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, FpCtxTest,
                         ::testing::Values(256, 512, 1024, 2048));

TEST(FpCtx, RejectsEvenModulus) {
  Bytes even{0x10, 0x00};
  EXPECT_THROW(FpCtx ctx(even), InvalidArgument);
}

TEST(FpCtx, PayloadBytesLeaveHeadroom) {
  FpCtx ctx(StandardPrimeBe(256));
  EXPECT_EQ(ctx.payload_bytes(), 31u);
  EXPECT_EQ(ctx.elem_bytes(), 32u);
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(42);
  Rng child = c.Fork();
  EXPECT_NE(child.Next(), c.Next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(9);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.Below(7);
    ASSERT_LT(v, 7u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace pisces::field
