// Serving-plane unit tests: shard routing, session multiplexing, admission
// control, the wire gateway, and the batched refresh scheduler
// (docs/serving.md). The open-loop load drill lives in serving_drill.cpp
// (ctest -L serving); determinism pins are in determinism_test.cpp and the
// batched-vs-sequential refresh differential in differential_test.cpp.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "net/serving_frame.h"
#include "net/sim_transport.h"
#include "net/sync_network.h"
#include "obs/registry.h"
#include "pisces/pisces.h"
#include "pisces/serving_client.h"

namespace pisces {
namespace {

using net::ServingOp;
using net::ServingStatus;

// Small-but-real per-shard group: n = 8, t = 1, l = 2, r = 2 over the
// 256-bit field (same shape as the determinism suite).
ServingConfig SmallConfig(std::uint64_t seed, std::uint32_t shards = 2) {
  ServingConfig cfg;
  cfg.shards = shards;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = seed;
  return cfg;
}

// Admission result of an upload, submitted and immediately drained.
ServingStatus UploadNow(ServingPlane& plane, std::uint64_t session,
                        std::uint64_t file_id, const Bytes& data) {
  auto adm = plane.Submit(session, ServingOp::kUpload, file_id, data);
  plane.Drain();
  return adm.status;
}

TEST(Serving, RouterIsPureBalancedAndStable) {
  ShardRouter a(4);
  ShardRouter b(4);
  std::array<std::size_t, 4> buckets{};
  for (std::uint64_t id = 0; id < 4096; ++id) {
    const std::uint32_t shard = a.ShardOf(id);
    EXPECT_EQ(shard, b.ShardOf(id));                  // instance-free
    EXPECT_EQ(shard, ShardRouter::Route(id, 4));      // static core agrees
    EXPECT_EQ(ShardRouter::Route(id, 1), 0u);         // single shard: all
    ASSERT_LT(shard, 4u);
    buckets[shard] += 1;
  }
  // splitmix64 mixing: every shard gets a healthy cut of a sequential id
  // range (raw modulo would stripe, which is fine here, but the mixed map
  // must not be degenerate either).
  for (std::size_t n : buckets) {
    EXPECT_GT(n, 4096u / 4 / 2) << "unbalanced shard";
    EXPECT_LT(n, 4096u / 4 * 2) << "unbalanced shard";
  }
}

TEST(Serving, FramesRoundTripOnBytes) {
  net::ServingRequestFrame req;
  req.session = 0x1122334455667788ull;
  req.request = 42;
  req.shard = 3;
  req.op = ServingOp::kUpload;
  req.file_id = 0xDEADBEEFull;
  req.payload = {1, 2, 3, 4, 5};
  const Bytes wire = req.Serialize();
  EXPECT_EQ(wire.size(), net::kServingRequestHeaderSize + req.payload.size());
  const auto back = net::ServingRequestFrame::Deserialize(wire);
  EXPECT_EQ(back.Serialize(), wire);
  EXPECT_EQ(back.session, req.session);
  EXPECT_EQ(back.request, req.request);
  EXPECT_EQ(back.shard, req.shard);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.file_id, req.file_id);
  EXPECT_EQ(back.payload, req.payload);

  net::ServingResponseFrame resp;
  resp.session = 7;
  resp.request = 9;
  resp.status = ServingStatus::kRejected;
  resp.retry_after_ms = 15;
  resp.payload = {0xAA};
  const Bytes rwire = resp.Serialize();
  EXPECT_EQ(rwire.size(),
            net::kServingResponseHeaderSize + resp.payload.size());
  const auto rback = net::ServingResponseFrame::Deserialize(rwire);
  EXPECT_EQ(rback.Serialize(), rwire);
  EXPECT_EQ(rback.status, resp.status);
  EXPECT_EQ(rback.retry_after_ms, resp.retry_after_ms);
}

TEST(Serving, SessionLifecycle) {
  ServingPlane plane(SmallConfig(1));
  const std::uint64_t s1 = plane.OpenSession();
  const std::uint64_t s2 = plane.OpenSession();
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(plane.SessionOpen(s1));
  EXPECT_TRUE(plane.SessionOpen(s2));

  // Ping is an immediate op: accepted, completed without Poll, echoes.
  auto adm = plane.Submit(s1, ServingOp::kPing, 0, Bytes{9, 8, 7});
  EXPECT_EQ(adm.status, ServingStatus::kOk);
  auto done = plane.TakeCompletions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].session, s1);
  EXPECT_EQ(done[0].payload, (Bytes{9, 8, 7}));

  EXPECT_TRUE(plane.CloseSession(s1));
  EXPECT_FALSE(plane.CloseSession(s1));  // tombstoned, not reopenable
  EXPECT_FALSE(plane.SessionOpen(s1));
  EXPECT_EQ(plane.Submit(s1, ServingOp::kPing, 0).status,
            ServingStatus::kBadSession);
  EXPECT_EQ(plane.Submit(999, ServingOp::kPing, 0).status,
            ServingStatus::kBadSession);  // never opened

  EXPECT_EQ(plane.stats().sessions_opened, 2u);
  EXPECT_EQ(plane.stats().sessions_closed, 1u);
}

TEST(Serving, UploadDownloadDeleteAcrossShards) {
  ServingPlane plane(SmallConfig(2));
  const std::uint64_t session = plane.OpenSession();
  Rng rng(31);

  std::map<std::uint64_t, Bytes> reference;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    reference[id] = rng.RandomBytes(600 + 37 * id);
    EXPECT_EQ(UploadNow(plane, session, id, reference[id]),
              ServingStatus::kOk);
  }
  plane.TakeCompletions();

  // The hashed namespace spreads six sequential ids over both shards.
  std::array<std::size_t, 2> owned{};
  for (const auto& [id, shard] : plane.files()) owned[shard] += 1;
  EXPECT_EQ(owned[0] + owned[1], 6u);
  EXPECT_GT(owned[0], 0u);
  EXPECT_GT(owned[1], 0u);

  // Every file downloads bit-exactly and lives ONLY on its routed shard.
  const std::uint32_t n = plane.shard(0).config().params.n;
  for (const auto& [id, data] : reference) {
    auto adm = plane.Submit(session, ServingOp::kDownload, id);
    ASSERT_EQ(adm.status, ServingStatus::kOk);
    plane.Drain();
    auto done = plane.TakeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].status, ServingStatus::kOk);
    EXPECT_EQ(done[0].payload, data);

    const std::uint32_t home = plane.ShardOf(id);
    for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
      for (std::uint32_t h = 0; h < n; ++h) {
        EXPECT_EQ(plane.shard(s).host(h).store().Has(id), s == home)
            << "file " << id << " shard " << s << " host " << h;
      }
    }
  }

  // Delete removes the file from the namespace and from every host.
  ASSERT_EQ(plane.Submit(session, ServingOp::kDelete, 3).status,
            ServingStatus::kOk);
  plane.Drain();
  EXPECT_EQ(plane.files().count(3), 0u);
  EXPECT_EQ(plane.Submit(session, ServingOp::kDownload, 3).status,
            ServingStatus::kNotFound);
  for (std::uint32_t h = 0; h < n; ++h) {
    EXPECT_FALSE(plane.shard(plane.ShardOf(3)).host(h).store().Has(3));
  }
}

TEST(Serving, DuplicateAndInvalidRequestsRefusedAtAdmission) {
  ServingPlane plane(SmallConfig(3));
  const std::uint64_t session = plane.OpenSession();
  Rng rng(5);
  const Bytes data = rng.RandomBytes(256);

  EXPECT_EQ(UploadNow(plane, session, 10, data), ServingStatus::kOk);
  // Duplicate of a stored file.
  EXPECT_EQ(plane.Submit(session, ServingOp::kUpload, 10, data).status,
            ServingStatus::kDuplicate);
  // Duplicate of a QUEUED upload: the id is claimed at admission, so two
  // queued uploads of one id can never both be accepted.
  EXPECT_EQ(plane.Submit(session, ServingOp::kUpload, 11, data).status,
            ServingStatus::kOk);
  EXPECT_EQ(plane.Submit(session, ServingOp::kUpload, 11, data).status,
            ServingStatus::kDuplicate);
  plane.Drain();

  EXPECT_EQ(plane.Submit(session, ServingOp::kUpload, 12, Bytes{}).status,
            ServingStatus::kFailed);  // empty upload carries no file
  EXPECT_EQ(plane.Submit(session, ServingOp::kDownload, 404).status,
            ServingStatus::kNotFound);
  EXPECT_EQ(plane.Submit(session, ServingOp::kDelete, 404).status,
            ServingStatus::kNotFound);
  EXPECT_EQ(plane.stats().refused, 5u);  // two dups, empty, two not-found
  EXPECT_EQ(plane.stats().rejected, 0u);  // none of these is backpressure
}

TEST(Serving, AdmissionQueueIsBoundedAndRejectsWithRetryAfter) {
  ServingConfig cfg = SmallConfig(4, /*shards=*/1);
  cfg.admission_capacity = 4;
  cfg.max_inflight = 2;
  cfg.retry_after_ms = 5;
  ServingPlane plane(cfg);
  const std::uint64_t session = plane.OpenSession();
  Rng rng(6);
  const Bytes data = rng.RandomBytes(512);
  ASSERT_EQ(UploadNow(plane, session, 1, data), ServingStatus::kOk);
  plane.TakeCompletions();

  // Offer 12 downloads against a capacity-4 queue without polling: exactly
  // 4 admitted, 8 shed, and the queue never grows past the bound.
  std::size_t accepted = 0, rejected = 0;
  std::uint32_t last_hint = 0;
  for (int k = 0; k < 12; ++k) {
    auto adm = plane.Submit(session, ServingOp::kDownload, 1);
    if (adm.status == ServingStatus::kOk) {
      ++accepted;
    } else {
      ASSERT_EQ(adm.status, ServingStatus::kRejected);
      ++rejected;
      EXPECT_GE(adm.retry_after_ms, cfg.retry_after_ms);
      last_hint = adm.retry_after_ms;
    }
    EXPECT_LE(plane.QueueDepth(0), cfg.admission_capacity);
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 8u);
  // Full queue: depth/max_inflight = 2 extra service rounds in the hint.
  EXPECT_EQ(last_hint, cfg.retry_after_ms * 3);
  EXPECT_EQ(plane.stats().queue_peak, 4u);
  EXPECT_EQ(plane.stats().rejected, 8u);

  // Backpressure is advisory, not fatal: drain and the retry succeeds.
  EXPECT_EQ(plane.Drain(), 4u);
  auto done = plane.TakeCompletions();
  ASSERT_EQ(done.size(), 4u);
  for (const auto& c : done) {
    EXPECT_EQ(c.status, ServingStatus::kOk);
    EXPECT_EQ(c.payload, data);
  }
  EXPECT_EQ(plane.Submit(session, ServingOp::kDownload, 1).status,
            ServingStatus::kOk);
  plane.Drain();
}

TEST(Serving, SubmitFrameValidatesRouteAndOrdinals) {
  ServingPlane plane(SmallConfig(7));
  Rng rng(8);

  net::ServingRequestFrame f;
  f.session = 77;
  f.request = 1;
  f.op = ServingOp::kUpload;
  f.file_id = 5;
  f.payload = rng.RandomBytes(128);
  f.shard = 1 - plane.ShardOf(5);  // deliberately wrong (2 shards)
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadRoute);
  EXPECT_FALSE(plane.SessionOpen(77));  // a bad route never opens a session

  f.shard = plane.ShardOf(5);
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);  // implicit open
  EXPECT_TRUE(plane.SessionOpen(77));
  plane.Drain();

  // Replayed and reordered ordinals are refused: strictly increasing.
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadSession);
  f.request = 0;
  f.op = ServingOp::kPing;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadSession);

  // Gaps are fine (the client may have burned ordinals on rejects).
  f.request = 9;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);

  f.request = 10;
  f.op = ServingOp::kCloseSession;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);
  f.request = 11;
  f.op = ServingOp::kPing;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadSession);
}

// Two wire sessions multiplexed over ONE SimNet endpoint through a
// ServingGateway: the persistent-connection serving path in miniature.
TEST(Serving, GatewayMultiplexesWireSessionsOverOneEndpoint) {
  ServingPlane plane(SmallConfig(9));

  net::SimNet simnet;
  net::SimEndpoint* gw_ep = simnet.AddEndpoint(net::kGatewayId);
  const std::uint32_t client_id = net::kGatewayId + 1;
  net::SimEndpoint* cl_ep = simnet.AddEndpoint(client_id);

  ServingGateway gateway(plane, *gw_ep);

  struct Capture : net::MessageHandler {
    std::vector<net::ServingResponseFrame> responses;
    void HandleMessage(const net::Message& msg) override {
      ASSERT_EQ(msg.type, net::MsgType::kServingResponse);
      responses.push_back(net::ServingResponseFrame::Deserialize(msg.payload));
    }
  } capture;

  net::SyncNetwork sync(simnet);
  sync.Register(net::kGatewayId, gw_ep, &gateway);
  sync.Register(client_id, cl_ep, &capture);

  Rng rng(10);
  const Bytes file_a = rng.RandomBytes(700);
  const Bytes file_b = rng.RandomBytes(300);

  auto send = [&](std::uint64_t session, std::uint64_t request, ServingOp op,
                  std::uint64_t file_id, Bytes payload = {}) {
    net::ServingRequestFrame f;
    f.session = session;
    f.request = request;
    f.shard = plane.ShardOf(file_id);
    f.op = op;
    f.file_id = file_id;
    f.payload = std::move(payload);
    net::Message m;
    m.from = client_id;
    m.to = net::kGatewayId;
    m.type = net::MsgType::kServingRequest;
    m.file_id = file_id;
    m.payload = f.Serialize();
    cl_ep->Send(std::move(m));
  };

  // Interleave two logical sessions (both client-named, distinct files).
  send(1, 1, ServingOp::kUpload, 100, file_a);
  send(2, 1, ServingOp::kUpload, 200, file_b);
  send(1, 2, ServingOp::kPing, 0);
  sync.RunToQuiescence();  // deliver requests into the gateway
  gateway.Pump();          // execute + flush completions
  sync.RunToQuiescence();  // deliver responses back

  ASSERT_EQ(capture.responses.size(), 3u);
  for (const auto& r : capture.responses) {
    EXPECT_EQ(r.status, ServingStatus::kOk) << "session " << r.session;
  }
  capture.responses.clear();

  // Downloads come back with the right bytes to the right wire session.
  send(1, 3, ServingOp::kDownload, 100);
  send(2, 2, ServingOp::kDownload, 200);
  sync.RunToQuiescence();
  gateway.Pump();
  sync.RunToQuiescence();
  ASSERT_EQ(capture.responses.size(), 2u);
  for (const auto& r : capture.responses) {
    EXPECT_EQ(r.status, ServingStatus::kOk);
    EXPECT_EQ(r.payload, r.session == 1 ? file_a : file_b);
  }
  capture.responses.clear();

  // A bad routing header is answered synchronously, before any Pump.
  {
    net::ServingRequestFrame f;
    f.session = 1;
    f.request = 4;
    f.file_id = 100;
    f.shard = 1 - plane.ShardOf(100);
    f.op = ServingOp::kDownload;
    net::Message m;
    m.from = client_id;
    m.to = net::kGatewayId;
    m.type = net::MsgType::kServingRequest;
    m.payload = f.Serialize();
    cl_ep->Send(std::move(m));
  }
  sync.RunToQuiescence();
  ASSERT_EQ(capture.responses.size(), 1u);
  EXPECT_EQ(capture.responses[0].status, ServingStatus::kBadRoute);
  capture.responses.clear();

  // Unparseable frames are counted and dropped, never answered or fatal.
  net::Message junk;
  junk.from = client_id;
  junk.to = net::kGatewayId;
  junk.type = net::MsgType::kServingRequest;
  junk.payload = Bytes{1, 2, 3};
  cl_ep->Send(std::move(junk));
  sync.RunToQuiescence();
  EXPECT_EQ(gateway.bad_frames(), 1u);
  EXPECT_TRUE(capture.responses.empty());

  // The plane namespaced the two wire sessions separately.
  EXPECT_EQ(plane.stats().sessions_opened, 2u);
}

TEST(Serving, BatchRefreshPreservesEveryFileAndChunksPopulations) {
  ServingConfig cfg = SmallConfig(11, /*shards=*/1);
  cfg.refresh_batch = 2;
  ServingPlane plane(cfg);
  const std::uint64_t session = plane.OpenSession();
  Rng rng(12);

  std::map<std::uint64_t, Bytes> reference;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    reference[id] = rng.RandomBytes(400);
    ASSERT_EQ(UploadNow(plane, session, id, reference[id]),
              ServingStatus::kOk);
  }
  plane.TakeCompletions();

  EXPECT_TRUE(plane.BatchRefresh());
  // 5 files in chunks of 2 -> 3 launches, every file covered exactly once.
  EXPECT_EQ(plane.stats().refresh_batches, 3u);
  EXPECT_EQ(plane.stats().refresh_files, 5u);

  for (const auto& [id, data] : reference) {
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, id).status,
              ServingStatus::kOk);
    plane.Drain();
    auto done = plane.TakeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].payload, data) << "file " << id;
  }
}

TEST(Serving, ProactiveWindowKeepsNamespaceAlive) {
  ServingPlane plane(SmallConfig(13));
  const std::uint64_t session = plane.OpenSession();
  Rng rng(14);
  const Bytes a = rng.RandomBytes(900);
  const Bytes b = rng.RandomBytes(450);
  ASSERT_EQ(UploadNow(plane, session, 21, a), ServingStatus::kOk);
  ASSERT_EQ(UploadNow(plane, session, 22, b), ServingStatus::kOk);
  plane.TakeCompletions();

  // Full proactive window on every shard: batched refresh + secure reboots.
  EXPECT_TRUE(plane.RunProactiveWindow());

  for (const auto& [id, want] : std::map<std::uint64_t, Bytes>{{21, a},
                                                               {22, b}}) {
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, id).status,
              ServingStatus::kOk);
    plane.Drain();
    auto done = plane.TakeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].payload, want);
  }
}

// --- versioned routing + live resharding (docs/resharding.md) ---

// Grow target for the SmallConfig shape: same packing (l = 2) and rate
// (r = 2), four more slots, and the extra corruption tolerance the packed
// constraints allow at n = 12 (3t + l < n and r + l < n - 3t).
pss::Params GrownParams() {
  pss::Params p;
  p.n = 12;
  p.t = 2;
  p.l = 2;
  p.r = 2;
  p.field_bits = 256;
  return p;
}

TEST(ReshareServing, StaleEpochRefusedWithoutConsumingTheOrdinal) {
  ServingPlane plane(SmallConfig(41));
  EXPECT_EQ(plane.route_epoch(), 1u);

  net::ServingRequestFrame f;
  f.session = 77;
  f.request = 1;
  f.op = ServingOp::kPing;
  f.file_id = 0;
  f.shard = plane.ShardOf(0);

  // The current epoch and the unversioned sentinel (0) are both accepted.
  f.epoch = plane.route_epoch();
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);

  // A future epoch (client ahead of the plane: impossible under monotone
  // maps, so it can only be corruption) is refused just like a stale one.
  f.request = 2;
  f.epoch = 999;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadRoute);
  EXPECT_EQ(plane.stats().stale_epoch, 1u);

  // The refused ordinal was NOT consumed: the same request re-sent under an
  // acceptable stamp is a re-route, not a replay.
  f.epoch = 0;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);

  // After a reshard the old epoch goes stale; the new one is accepted.
  ASSERT_TRUE(plane.Reshard(0, GrownParams()));
  EXPECT_EQ(plane.route_epoch(), 2u);
  EXPECT_EQ(plane.stats().reshards, 1u);
  f.request = 3;
  f.epoch = 1;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kBadRoute);
  EXPECT_EQ(plane.stats().stale_epoch, 2u);
  f.epoch = 2;
  EXPECT_EQ(plane.SubmitFrame(f).status, ServingStatus::kOk);
}

TEST(ReshareServing, ReshardMigratesOneShardWhileTheOtherKeepsItsQueue) {
  ServingPlane plane(SmallConfig(42));
  const std::uint64_t session = plane.OpenSession();
  Rng rng(43);

  std::map<std::uint64_t, Bytes> reference;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    reference[id] = rng.RandomBytes(500 + 13 * id);
    ASSERT_EQ(UploadNow(plane, session, id, reference[id]),
              ServingStatus::kOk);
  }
  plane.TakeCompletions();
  // The hashed namespace must populate both shards for this to test
  // anything; six sequential ids always do (RouterIsPureBalancedAndStable).
  std::array<std::size_t, 2> owned{};
  for (const auto& [id, shard] : plane.files()) owned[shard] += 1;
  ASSERT_GT(owned[0], 0u);
  ASSERT_GT(owned[1], 0u);

  // Queue (without draining) a download for every file homed on shard 1,
  // then migrate shard 0 under it.
  std::size_t queued = 0;
  for (const auto& [id, data] : reference) {
    if (plane.ShardOf(id) != 1) continue;
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, id).status,
              ServingStatus::kOk);
    ++queued;
  }
  ASSERT_EQ(plane.QueueDepth(1), queued);

  ASSERT_TRUE(plane.Reshard(0, GrownParams()));
  EXPECT_EQ(plane.route_epoch(), 2u);
  EXPECT_EQ(plane.shard_params(0).n, 12u);
  EXPECT_EQ(plane.shard_params(0).t, 2u);
  EXPECT_EQ(plane.shard_params(1).n, 8u);   // untouched shard keeps shape...
  EXPECT_EQ(plane.QueueDepth(1), queued);   // ...and its queued work
  EXPECT_EQ(plane.QueueDepth(0), 0u);       // migrating shard was drained

  // The routing-map snapshot mirrors the per-shard shapes and the epoch.
  const net::RoutingMap map = plane.routing_map();
  EXPECT_EQ(map.epoch, 2u);
  ASSERT_EQ(map.shards.size(), 2u);
  EXPECT_EQ(map.shards[0].n, 12u);
  EXPECT_EQ(map.shards[0].t, 2u);
  EXPECT_EQ(map.shards[1].n, 8u);
  EXPECT_EQ(map.shards[0].migrating, 0u);  // migrations are synchronous

  // The queued downloads execute against the untouched shard and every file
  // on BOTH shards still downloads bit-exactly.
  plane.Drain();
  auto done = plane.TakeCompletions();
  ASSERT_EQ(done.size(), queued);
  for (const auto& c : done) {
    EXPECT_EQ(c.status, ServingStatus::kOk);
    EXPECT_EQ(c.payload, reference.at(c.file_id));
  }
  for (const auto& [id, data] : reference) {
    ASSERT_EQ(plane.Submit(session, ServingOp::kDownload, id).status,
              ServingStatus::kOk);
    plane.Drain();
    done = plane.TakeCompletions();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].payload, data) << "file " << id;
  }

  // A failed migration (wrong field) leaves the epoch and shapes untouched.
  pss::Params bad = GrownParams();
  bad.field_bits = 512;
  EXPECT_FALSE(plane.Reshard(1, bad));
  EXPECT_EQ(plane.route_epoch(), 2u);
  EXPECT_EQ(plane.shard_params(1).n, 8u);
}

// End-to-end wire re-route: a ServingWireClient with no routing map sends a
// request that lands on the wrong shard, the gateway refuses it with
// kBadRoute carrying the current map, the client adopts the map and re-sends
// the SAME ordinal, and the request completes. Then a live reshard bumps the
// epoch and the client's next request re-routes the same way.
TEST(ReshareServing, GatewayPushesMapAndWireClientReroutes) {
  ServingPlane plane(SmallConfig(44));

  net::SimNet simnet;
  net::SimEndpoint* gw_ep = simnet.AddEndpoint(net::kGatewayId);
  WireClientConfig ccfg;
  net::SimEndpoint* cl_ep = simnet.AddEndpoint(ccfg.id);

  ServingGateway gateway(plane, *gw_ep);
  ServingWireClient client(ccfg, *cl_ep);

  net::SyncNetwork sync(simnet);
  sync.Register(net::kGatewayId, gw_ep, &gateway);
  sync.Register(ccfg.id, cl_ep, &client);

  // A file homed on shard 1: with no map the client stamps shard 0, which
  // the plane must refuse.
  std::uint64_t file = 0;
  while (plane.ShardOf(file) != 1) ++file;
  Rng rng(45);
  const Bytes data = rng.RandomBytes(640);

  const std::uint64_t session = client.OpenSession();
  client.Send(session, ServingOp::kUpload, file, data);
  // One quiescence round covers the whole refusal loop: request -> kBadRoute
  // + map (synchronous at the gateway) -> adopt -> re-send -> accepted.
  sync.RunToQuiescence();
  gateway.Pump();
  sync.RunToQuiescence();

  EXPECT_EQ(client.reroutes(), 1u);
  EXPECT_EQ(client.reroutes_exhausted(), 0u);
  EXPECT_EQ(client.map().epoch, 1u);
  auto responses = client.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServingStatus::kOk);
  EXPECT_EQ(plane.stats().stale_epoch, 0u);  // shard header, not epoch

  // Reshard shard 1 under the live client: its adopted map (epoch 1) goes
  // stale, the next request is refused once, re-stamped with epoch 2, and
  // completes with the bit-exact payload.
  ASSERT_TRUE(plane.Reshard(1, GrownParams()));
  client.Send(session, ServingOp::kDownload, file);
  sync.RunToQuiescence();
  gateway.Pump();
  sync.RunToQuiescence();

  EXPECT_EQ(client.reroutes(), 2u);
  EXPECT_EQ(client.map().epoch, 2u);
  EXPECT_EQ(plane.stats().stale_epoch, 1u);
  responses = client.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServingStatus::kOk);
  EXPECT_EQ(responses[0].payload, data);
  EXPECT_EQ(client.pending(), 0u);

  const obs::Snapshot snap = obs::TakeSnapshot();
  EXPECT_GE(obs::Value(snap, "serving.reroutes"), 2u);
}

TEST(ReshareServing, RerouteBudgetZeroMakesBadRouteTerminal) {
  ServingPlane plane(SmallConfig(46));

  net::SimNet simnet;
  net::SimEndpoint* gw_ep = simnet.AddEndpoint(net::kGatewayId);
  WireClientConfig ccfg;
  ccfg.reroute_budget = 0;
  net::SimEndpoint* cl_ep = simnet.AddEndpoint(ccfg.id);

  ServingGateway gateway(plane, *gw_ep);
  ServingWireClient client(ccfg, *cl_ep);

  net::SyncNetwork sync(simnet);
  sync.Register(net::kGatewayId, gw_ep, &gateway);
  sync.Register(ccfg.id, cl_ep, &client);

  // Routed op homed on shard 1: with no adopted map the client stamps
  // shard 0, which the plane refuses.
  std::uint64_t file = 0;
  while (plane.ShardOf(file) != 1) ++file;
  Rng rng(47);
  const Bytes data = rng.RandomBytes(320);

  const std::uint64_t session = client.OpenSession();
  client.Send(session, ServingOp::kUpload, file, data);
  sync.RunToQuiescence();

  // Budget 0: the refusal is delivered to the caller instead of re-sent.
  auto responses = client.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServingStatus::kBadRoute);
  EXPECT_EQ(client.reroutes(), 0u);
  EXPECT_EQ(client.reroutes_exhausted(), 1u);

  // The pushed map was still adopted, so the NEXT request routes correctly.
  EXPECT_EQ(client.map().epoch, 1u);
  client.Send(session, ServingOp::kUpload, file, data);
  sync.RunToQuiescence();
  gateway.Pump();
  sync.RunToQuiescence();
  responses = client.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServingStatus::kOk);
}

}  // namespace
}  // namespace pisces
