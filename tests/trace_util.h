// Test-side helpers for the obs trace export: a minimal strict JSON syntax
// checker (no external deps) and a line-oriented extractor for the fields the
// tests assert on. The extractor leans on TraceToJson's one-event-per-line
// layout, which the syntax checker independently validates as real JSON.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace pisces::test {

// --- minimal JSON validator ----------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;  // accept any escaped char (the emitter never writes \u)
      }
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- event extraction -----------------------------------------------------

struct TraceEv {
  std::string name;
  std::string cat;
  std::string phase;  // "" unless metric-backed
  char ph = '?';      // 'X' or 'i'
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t window = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t bytes = 0;
};

inline std::string FindStr(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return "";
  const std::size_t v = p + pat.size();
  return line.substr(v, line.find('"', v) - v);
}

inline std::uint64_t FindU64(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return 0;
  return std::strtoull(line.c_str() + p + pat.size(), nullptr, 10);
}

inline std::uint64_t FindHex(const std::string& line, const std::string& key) {
  const std::string v = FindStr(line, key);  // hex ids are quoted "0x..."
  if (v.empty()) return 0;
  return std::strtoull(v.c_str(), nullptr, 16);
}

inline std::vector<TraceEv> ParseTraceEvents(const std::string& json) {
  std::vector<TraceEv> out;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    TraceEv e;
    e.name = FindStr(line, "name");
    e.cat = FindStr(line, "cat");
    e.phase = FindStr(line, "phase");
    e.ph = FindStr(line, "ph").empty() ? '?' : FindStr(line, "ph")[0];
    e.id = FindHex(line, "id");
    e.parent = FindHex(line, "parent");
    e.window = FindU64(line, "window");
    e.wall_ns = FindU64(line, "wall_ns");
    e.cpu_ns = FindU64(line, "cpu_ns");
    e.bytes = FindU64(line, "bytes");
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace pisces::test
